package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"powerroute/internal/experiments"
	"powerroute/internal/timeseries"
)

// buildReplayBodies pre-renders the full 39-month replay as binary batch
// bodies (price chunks and demand chunks, interleaved), so the benchmark
// measures the daemon side only: HTTP handling, batch parsing, price-feed
// maintenance, and one routing decision per hourly interval.
func buildReplayBodies(b *testing.B, batch int) (priceBodies, demandBodies [][]byte, steps int) {
	b.Helper()
	env, err := experiments.SharedEnv()
	if err != nil {
		b.Fatal(err)
	}
	sys := env.System
	hubs := sys.Market.Hubs()
	hubIDs := make([]string, len(hubs))
	rts := make([]*timeseries.Series, len(hubs))
	for i, h := range hubs {
		hubIDs[i] = h.ID
		s, err := sys.Market.RT(h.ID)
		if err != nil {
			b.Fatal(err)
		}
		rts[i] = s
	}
	ns := len(sys.Fleet.States)
	start := sys.Market.Start
	steps = sys.Market.Hours

	priceRow := make([]float64, len(hubIDs))
	demandRow := make([]float64, ns)
	for off := 0; off < steps; off += batch {
		n := min(batch, steps-off)
		chunkStart := start.Add(time.Duration(off) * time.Hour)

		var pb bytes.Buffer
		if err := WriteBatchHeader(&pb, "prices", chunkStart, time.Hour, n, len(hubIDs), hubIDs); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j, rt := range rts {
				priceRow[j] = rt.Values[off+i]
			}
			pb.Write(AppendRow(nil, priceRow))
		}
		priceBodies = append(priceBodies, pb.Bytes())

		var db bytes.Buffer
		if err := WriteBatchHeader(&db, "demand", chunkStart, time.Hour, n, ns, nil); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			demandRow = sys.LongRun.Rates(chunkStart.Add(time.Duration(i)*time.Hour), demandRow)
			db.Write(AppendRow(nil, demandRow))
		}
		demandBodies = append(demandBodies, db.Bytes())
	}
	return priceBodies, demandBodies, steps
}

// BenchmarkReplayThroughput replays the full 39-month hourly horizon
// through a powerrouted server over loopback HTTP in binary batches and
// reports sustained routed steps per second — the daemon's headline
// decision throughput (BENCH_pr3.json records it per machine).
func BenchmarkReplayThroughput(b *testing.B) {
	const batch = 2048
	priceBodies, demandBodies, steps := buildReplayBodies(b, batch)
	env, err := experiments.SharedEnv()
	if err != nil {
		b.Fatal(err)
	}
	client := &http.Client{}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := New(Config{Engine: testEngine(b, env.System)})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		b.StartTimer()

		for c := range priceBodies {
			postBench(b, client, ts.URL+"/v1/prices", ContentTypePricesBatch, priceBodies[c])
			postBench(b, client, ts.URL+"/v1/demand", ContentTypeDemandBatch, demandBodies[c])
		}

		b.StopTimer()
		if got := mustFinalizeSteps(b, srv); got != steps {
			b.Fatalf("routed %d steps, want %d", got, steps)
		}
		ts.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}

func postBench(b *testing.B, client *http.Client, url, contentType string, body []byte) {
	b.Helper()
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("%s: %d", url, resp.StatusCode)
	}
}

func mustFinalizeSteps(b *testing.B, srv *Server) int {
	b.Helper()
	res, err := srv.Finalize()
	if err != nil {
		b.Fatal(err)
	}
	return res.Steps
}
