package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"powerroute/internal/cluster"
)

// priceView is one immutable consolidated snapshot of the ingested price
// feed: per-cluster vectors (fleet order — the exact shape routing needs)
// keyed by the instants they took effect, chronological. A view is
// published through shardedFeed's atomic pointer and never mutated
// afterwards, so readers — the demand path resolving bill and decision
// prices, the status and metrics endpoints counting entries — work from
// whatever view they loaded without taking any lock.
type priceView struct {
	at  []time.Time
	vec [][]float64
}

func (v *priceView) len() int { return len(v.at) }

// last returns the newest consolidated vector, or nil when the feed is
// empty.
func (v *priceView) last() []float64 {
	if len(v.vec) == 0 {
		return nil
	}
	return v.vec[len(v.vec)-1]
}

// lookup returns the vector covering instant at — the newest entry at or
// before it, clamped to the first entry for pre-feed instants, exactly as
// the batch engine clamps decision times to the start of market data.
// Returns nil when the view is empty.
func (v *priceView) lookup(at time.Time) []float64 {
	n := len(v.at)
	if n == 0 {
		return nil
	}
	// Common case for chronological stepping: at covers the newest entry.
	if !at.Before(v.at[n-1]) {
		return v.vec[n-1]
	}
	i := sort.Search(n, func(i int) bool { return v.at[i].After(at) })
	if i == 0 {
		return v.vec[0]
	}
	return v.vec[i-1]
}

// feedShard is one hub's ingested price history: instants ascending, one
// price per instant. Every hub gets its own shard with its own lock, so
// recording one hub's series never touches another hub's state.
type feedShard struct {
	mu sync.Mutex
	at []time.Time // guarded_by: mu
	px []float64   // guarded_by: mu
}

// record appends one posted price; a re-post at the hub's newest instant
// replaces it (feed corrections). Chronology against the consolidated
// feed is the committer's job — shard instants can only trail it.
func (sh *feedShard) record(at time.Time, price float64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.recordLocked(at, price)
}

// recordSeries appends one batch column: rows instants of start + i·step,
// prices read from the column's stride through the staged batch floats.
// One shard lock covers the whole column.
func (sh *feedShard) recordSeries(start time.Time, step time.Duration, flat []float64, col, cols, rows int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := 0; i < rows; i++ {
		sh.recordLocked(start.Add(time.Duration(i)*step), flat[i*cols+col])
	}
}

//lint:held mu record and recordSeries lock the shard around the append
func (sh *feedShard) recordLocked(at time.Time, price float64) {
	if n := len(sh.at); n > 0 && at.Equal(sh.at[n-1]) {
		sh.px[n-1] = price
		return
	}
	sh.at = append(sh.at, at)
	sh.px = append(sh.px, price)
}

// prune drops history that can never influence a consolidated vector
// again: everything strictly older than the newest entry at or before
// oldest (that entry itself stays — it defines the hub's price at oldest
// and later instants up to its successor).
func (sh *feedShard) prune(oldest time.Time) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := len(sh.at)
	if n == 0 {
		return
	}
	i := sort.Search(n, func(i int) bool { return sh.at[i].After(oldest) })
	if i <= 1 {
		return
	}
	sh.at = append(sh.at[:0], sh.at[i-1:]...)
	sh.px = append(sh.px[:0], sh.px[i-1:]...)
	clear(sh.at[len(sh.at):n])
}

func (sh *feedShard) reset() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.at, sh.px = nil, nil
}

// entries returns the shard's retained history length.
func (sh *feedShard) entries() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.at)
}

// shardedFeed is the daemon's price store, split for concurrency:
//
//   - per-hub feedShards hold the raw posted history, each under its own
//     lock;
//   - the consolidated history routing consumes is published as an
//     immutable priceView through an atomic pointer — RCU-style: readers
//     Load and never lock, writers build a successor view and Store it;
//   - commitMu serializes writers: chronology checks, shard recording,
//     the canonical at/vec arrays behind the view, and the swap itself.
//
// Lock order: Server.mu → commitMu → feedShard.mu (the demand path and
// checkpoint restore reach the feed while holding Server.mu; price
// ingestion takes commitMu without ever touching Server.mu, which is what
// lets POST /v1/prices and POST /v1/demand run concurrently). View
// readers take no lock at all.
//
// The canonical at/vec arrays grow by append: writes land strictly beyond
// every published view's length, so sharing their backing arrays with
// views is race-free. The two mutations that would touch a published
// region — replacing the newest vector and pruning the front — re-back
// the arrays instead (see push and prune).
type shardedFeed struct {
	fleet       *cluster.Fleet
	hubClusters map[string][]int      // hub id → cluster indices; fixed at construction
	shards      map[string]*feedShard // per hub; key set fixed at construction

	commitMu sync.Mutex
	at       []time.Time // guarded_by: commitMu
	vec      [][]float64 // guarded_by: commitMu
	view     atomic.Pointer[priceView]
}

func newShardedFeed(fleet *cluster.Fleet, hubClusters map[string][]int) *shardedFeed {
	f := &shardedFeed{
		fleet:       fleet,
		hubClusters: hubClusters,
		shards:      make(map[string]*feedShard, len(hubClusters)),
	}
	for hub := range hubClusters {
		f.shards[hub] = &feedShard{}
	}
	f.view.Store(&priceView{})
	return f
}

// current returns the latest published consolidated view. Never nil.
func (f *shardedFeed) current() *priceView { return f.view.Load() }

// entries returns the consolidated entry count — what feed_entries
// responses and the price_feed_entries metric report.
func (f *shardedFeed) entries() int { return f.current().len() }

// ingest applies one JSON price post: hub prices taking effect at an
// instant, overlaid on the newest consolidated vector. Hubs hosting no
// cluster are counted as ignored; every cluster must be covered once the
// overlay is applied. On failure nothing is recorded and code carries the
// HTTP status to report.
func (f *shardedFeed) ingest(at time.Time, prices map[string]float64) (ignored, entries, code int, err error) {
	f.commitMu.Lock()
	defer f.commitMu.Unlock()
	nc := len(f.fleet.Clusters)
	vec := make([]float64, nc)
	covered := make([]bool, nc)
	if last := f.last(); last != nil {
		copy(vec, last)
		for c := range covered {
			covered[c] = true
		}
	}
	for hub, price := range prices {
		idxs, ok := f.hubClusters[hub]
		if !ok {
			ignored++
			continue
		}
		for _, c := range idxs {
			vec[c] = price
			covered[c] = true
		}
	}
	for c, ok := range covered {
		if !ok {
			return ignored, 0, http.StatusBadRequest,
				fmt.Errorf("no price yet for cluster %s (hub %s)", f.fleet.Clusters[c].Code, f.fleet.Clusters[c].HubID)
		}
	}
	if err := f.push(at, vec); err != nil {
		return ignored, 0, http.StatusConflict, err
	}
	for hub, price := range prices {
		if sh, ok := f.shards[hub]; ok {
			sh.record(at, price)
		}
	}
	return ignored, f.publish(), 0, nil
}

// ingestBatch commits one staged binary prices batch atomically: flat
// holds the batch's rows×cols prices, already decoded and validated, and
// nothing publishes unless the whole batch passes chronology and
// coverage — a failed batch leaves the feed exactly as it was.
func (f *shardedFeed) ingestBatch(h *BatchHeader, flat []float64) (entries, code int, err error) {
	f.commitMu.Lock()
	defer f.commitMu.Unlock()
	// Instants within a batch are strictly increasing (the header enforces
	// step > 0), so only the first row can violate chronology.
	if n := len(f.at); n > 0 && h.Start.Before(f.at[n-1]) {
		return 0, http.StatusConflict,
			fmt.Errorf("price row 0: server: price at %v precedes newest feed entry %v", h.Start, f.at[n-1])
	}
	nc := len(f.fleet.Clusters)
	colClusters := make([][]int, h.Cols)
	covered := make([]bool, nc)
	if f.last() != nil {
		for c := range covered {
			covered[c] = true
		}
	}
	for i, hub := range h.Hubs {
		colClusters[i] = f.hubClusters[hub]
		for _, c := range colClusters[i] {
			covered[c] = true
		}
	}
	for c, ok := range covered {
		if !ok {
			return 0, http.StatusBadRequest,
				fmt.Errorf("no price for cluster %s (hub %s) in batch", f.fleet.Clusters[c].Code, f.fleet.Clusters[c].HubID)
		}
	}
	// Record each hub's column in its shard — one shard lock per column —
	// then roll the consolidated vectors forward and publish once.
	for col, hub := range h.Hubs {
		if sh, ok := f.shards[hub]; ok {
			sh.recordSeries(h.Start, h.Step, flat, col, h.Cols, h.Rows)
		}
	}
	prev := f.last()
	for i := 0; i < h.Rows; i++ {
		vec := make([]float64, nc)
		if prev != nil {
			copy(vec, prev)
		}
		for col, price := range flat[i*h.Cols : (i+1)*h.Cols] {
			for _, c := range colClusters[col] {
				vec[c] = price
			}
		}
		if err := f.push(h.Start.Add(time.Duration(i)*h.Step), vec); err != nil {
			return 0, http.StatusConflict, fmt.Errorf("price row %d: %v", i, err)
		}
		prev = vec
	}
	return f.publish(), 0, nil
}

// prune drops consolidated entries that can never be looked up again —
// everything strictly older than the newest entry at or before oldest —
// trims every hub shard the same way, and publishes the shortened view.
// Readers still holding an older view keep its arrays alive until they
// return (the RCU bargain), but the canonical arrays are re-backed so the
// feed itself retains nothing it pruned.
func (f *shardedFeed) prune(oldest time.Time) {
	f.commitMu.Lock()
	defer f.commitMu.Unlock()
	n := len(f.at)
	if n == 0 {
		return
	}
	i := sort.Search(n, func(i int) bool { return f.at[i].After(oldest) })
	if i <= 1 {
		return
	}
	at := make([]time.Time, n-i+1)
	copy(at, f.at[i-1:])
	vec := make([][]float64, n-i+1)
	copy(vec, f.vec[i-1:])
	f.at, f.vec = at, vec
	for _, sh := range f.shards {
		sh.prune(oldest)
	}
	f.publish()
}

// reset drops everything — the feed belonged to a replaced run
// (checkpoint restore) — and publishes an empty view.
func (f *shardedFeed) reset() {
	f.commitMu.Lock()
	defer f.commitMu.Unlock()
	f.at, f.vec = nil, nil
	for _, sh := range f.shards {
		sh.reset()
	}
	f.view.Store(&priceView{})
}

// last returns the newest canonical vector, or nil when the feed is
// empty.
//
//lint:held commitMu callers hold the commit lock
func (f *shardedFeed) last() []float64 {
	if n := len(f.vec); n > 0 {
		return f.vec[n-1]
	}
	return nil
}

// push appends one consolidated vector without publishing it. Entries
// must arrive in chronological order; a re-post at the newest instant
// replaces it (feed corrections).
//
//lint:held commitMu callers hold the commit lock across validate+publish
func (f *shardedFeed) push(at time.Time, perCluster []float64) error {
	if n := len(f.at); n > 0 {
		switch {
		case at.Equal(f.at[n-1]):
			// Replacing in place would mutate the newest published view;
			// re-back the vector array so existing views stay frozen.
			vec := make([][]float64, n)
			copy(vec, f.vec)
			vec[n-1] = perCluster
			f.vec = vec
			return nil
		case at.Before(f.at[n-1]):
			return fmt.Errorf("server: price at %v precedes newest feed entry %v", at, f.at[n-1])
		}
	}
	f.at = append(f.at, at)
	f.vec = append(f.vec, perCluster)
	return nil
}

// publish swaps in a view of the canonical arrays (capped at the current
// length, so later appends can share the backing without touching any
// published element) and returns the entry count.
//
//lint:held commitMu callers hold the commit lock
func (f *shardedFeed) publish() int {
	n := len(f.at)
	f.view.Store(&priceView{at: f.at[:n:n], vec: f.vec[:n:n]})
	return n
}
