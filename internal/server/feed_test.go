package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestBatchIngestRejectsNonFinite: a NaN or ±Inf price/demand row in a
// binary batch must be rejected with a 400 before it reaches the engine or
// the price feed — the JSON ingest path cannot even express non-finite
// numbers, and one poisoned sample would corrupt meters, p95 bills, and
// every checkpoint downstream.
func TestBatchIngestRejectsNonFinite(t *testing.T) {
	srv, ts, sys := testServer(t)
	start := srv.eng.Start()
	hubIDs := make([]string, len(sys.Fleet.Clusters))
	for i, cl := range sys.Fleet.Clusters {
		hubIDs[i] = cl.HubID
	}
	ns := len(sys.Fleet.States)

	postBatch := func(t *testing.T, path, contentType string, body *bytes.Buffer, wantCode int) []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+path, contentType, body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		_, _ = out.ReadFrom(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("POST %s: got %d want %d: %s", path, resp.StatusCode, wantCode, out.String())
		}
		return out.Bytes()
	}

	for _, tc := range []struct {
		name string
		bad  float64
	}{
		{"nan", math.NaN()},
		{"+inf", math.Inf(1)},
		{"-inf", math.Inf(-1)},
	} {
		t.Run("prices-"+tc.name, func(t *testing.T) {
			row := make([]float64, len(hubIDs))
			for i := range row {
				row[i] = 30
			}
			row[len(row)/2] = tc.bad
			var b bytes.Buffer
			if err := WriteBatchHeader(&b, "prices", start, time.Hour, 1, len(hubIDs), hubIDs); err != nil {
				t.Fatal(err)
			}
			b.Write(AppendRow(nil, row))
			out := postBatch(t, "/v1/prices", ContentTypePricesBatch, &b, http.StatusBadRequest)
			if !strings.Contains(string(out), "non-finite") {
				t.Fatalf("rejected for the wrong reason: %s", out)
			}
			if srv.feed.entries() != 0 {
				t.Fatalf("poisoned price row entered the feed (%d entries)", srv.feed.entries())
			}
		})
	}

	// Demand: good prices in, then a batch whose second row carries a NaN.
	var pb bytes.Buffer
	if err := WriteBatchHeader(&pb, "prices", start, time.Hour, 4, len(hubIDs), hubIDs); err != nil {
		t.Fatal(err)
	}
	priceRow := make([]float64, len(hubIDs))
	for i := range priceRow {
		priceRow[i] = 25
	}
	for i := 0; i < 4; i++ {
		pb.Write(AppendRow(nil, priceRow))
	}
	postBatch(t, "/v1/prices", ContentTypePricesBatch, &pb, http.StatusOK)

	rows := [][]float64{flatDemand(ns, 500), flatDemand(ns, 500)}
	rows[1][ns/2] = math.NaN()
	var db bytes.Buffer
	if err := WriteBatchHeader(&db, "demand", start, time.Hour, len(rows), ns, nil); err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		db.Write(AppendRow(nil, row))
	}
	out := postBatch(t, "/v1/demand", ContentTypeDemandBatch, &db, http.StatusBadRequest)
	var errResp struct {
		Error  string `json:"error"`
		Routed int    `json:"routed"`
	}
	if err := json.Unmarshal(out, &errResp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errResp.Error, "non-finite") {
		t.Fatalf("rejected for the wrong reason: %s", out)
	}
	// The clean first row committed; the poisoned one must not have.
	if got := srv.eng.StepsRun(); got != 1 {
		t.Fatalf("engine advanced %d steps, want 1 (rows before the NaN commit, the NaN row must not)", got)
	}
	for _, s := range srv.eng.Snapshot().ClusterRate {
		if math.IsNaN(s) {
			t.Fatal("NaN reached the engine's cluster rates")
		}
	}
}

// TestParseBatchHeaderRejectsBadHubs: duplicate hub names would let the
// last column silently win a cluster's price assignment, and "hubs="
// splits to one empty name; both must be 400s, end to end included.
func TestParseBatchHeaderRejectsBadHubs(t *testing.T) {
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	header := func(hubs string, cols int) string {
		return fmt.Sprintf("%s kind=prices start=%d step=%d rows=1 cols=%d hubs=%s\n",
			batchMagic, start.UnixNano(), int64(time.Hour), cols, hubs)
	}
	for _, tc := range []struct {
		name    string
		header  string
		wantErr string
	}{
		{"duplicate-hub", header("MISO,MISO", 2), "twice"},
		{"empty-hub-list", header("", 1), "empty hub name"},
		{"empty-hub-mid", header("A,,B", 3), "empty hub name"},
		{"trailing-empty", header("A,B,", 3), "empty hub name"},
		{"ok", header("A,B", 2), ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h, err := ParseBatchHeader(bufio.NewReader(strings.NewReader(tc.header)))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid header rejected: %v", err)
				}
				if len(h.Hubs) != h.Cols {
					t.Fatalf("parsed %d hubs for %d cols", len(h.Hubs), h.Cols)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}

	// End to end: the handler must 400 a duplicated hub before any row is
	// ingested.
	srv, ts, sys := testServer(t)
	hub := sys.Fleet.Clusters[0].HubID
	body := header(hub+","+hub, 2) + string(AppendRow(nil, []float64{1, 2}))
	resp, err := http.Post(ts.URL+"/v1/prices", ContentTypePricesBatch, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate hub batch: got %d want 400", resp.StatusCode)
	}
	if srv.feed.entries() != 0 {
		t.Fatal("duplicate hub batch entered the feed")
	}
}

// FuzzParseBatchHeader hammers the batch header parser with arbitrary
// header lines: it must never panic, and anything it accepts must satisfy
// the documented invariants (known kind, positive dimensions under the
// row cap, positive step, non-zero start, and — for prices — exactly cols
// unique non-empty hub names).
func FuzzParseBatchHeader(f *testing.F) {
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	f.Add(fmt.Sprintf("%s kind=demand start=%d step=%d rows=4 cols=9\n", batchMagic, start.UnixNano(), int64(time.Hour)))
	f.Add(fmt.Sprintf("%s kind=prices start=%d step=%d rows=1 cols=2 hubs=A,B\n", batchMagic, start.UnixNano(), int64(time.Hour)))
	f.Add(batchMagic + " kind=prices start=1 step=1 rows=1 cols=2 hubs=MISO,MISO\n")
	f.Add(batchMagic + " kind=demand start=0 step=3600000000000 rows=1048577 cols=1\n")
	f.Add(batchMagic + " kind=demand start=1 step=-1 rows=-1 cols=-1\n")
	f.Add(batchMagic + " kind=demand start=-9223372036854775808 step=1 rows=1 cols=1\n")
	f.Add(batchMagic + " kind=demand start=1 step=1 rows=9223372036854775807 cols=9223372036854775807\n")
	f.Add(batchMagic + " kind= start= step= rows= cols= hubs=\n")
	f.Add(batchMagic + " kind=prices start=1 step=1 rows=1 cols=1 hubs=A kind=demand\n")
	f.Add("not a batch\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, line string) {
		h, err := ParseBatchHeader(bufio.NewReader(strings.NewReader(line)))
		if err != nil {
			return
		}
		if h.Kind != "demand" && h.Kind != "prices" {
			t.Fatalf("accepted kind %q", h.Kind)
		}
		if h.Rows <= 0 || h.Rows > maxBatchRows || h.Cols <= 0 {
			t.Fatalf("accepted dimensions %dx%d", h.Rows, h.Cols)
		}
		if h.Step <= 0 {
			t.Fatalf("accepted step %v", h.Step)
		}
		if h.Start.IsZero() {
			t.Fatal("accepted zero start")
		}
		if h.Kind == "prices" {
			if len(h.Hubs) != h.Cols {
				t.Fatalf("accepted %d hubs for %d cols", len(h.Hubs), h.Cols)
			}
			seen := map[string]bool{}
			for _, hub := range h.Hubs {
				if hub == "" || seen[hub] {
					t.Fatalf("accepted empty or duplicate hub in %v", h.Hubs)
				}
				seen[hub] = true
			}
		} else if h.Hubs != nil {
			t.Fatalf("demand batch accepted hubs %v", h.Hubs)
		}
	})
}
