package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// priceFeed is the daemon's ingested price history: per-cluster price
// vectors keyed by the instant they took effect, append-only and
// chronological. Lookups resolve an instant to the newest vector at or
// before it (clamping to the first vector for pre-feed instants, exactly
// as the batch engine clamps decision times to the start of market data).
type priceFeed struct {
	at  []time.Time
	vec [][]float64 // per-cluster, fleet order
}

func (f *priceFeed) len() int { return len(f.at) }

// last returns the newest ingested vector, or nil when the feed is empty.
func (f *priceFeed) last() []float64 {
	if len(f.vec) == 0 {
		return nil
	}
	return f.vec[len(f.vec)-1]
}

// add appends one vector. Entries must arrive in chronological order; a
// re-post at the newest instant replaces it (feed corrections).
func (f *priceFeed) add(at time.Time, perCluster []float64) error {
	if n := len(f.at); n > 0 {
		switch {
		case at.Equal(f.at[n-1]):
			f.vec[n-1] = perCluster
			return nil
		case at.Before(f.at[n-1]):
			return fmt.Errorf("server: price at %v precedes newest feed entry %v", at, f.at[n-1])
		}
	}
	f.at = append(f.at, at)
	f.vec = append(f.vec, perCluster)
	return nil
}

// prune drops entries that can never be looked up again: everything
// strictly older than the newest entry at or before `oldest` (that entry
// itself must stay — it covers `oldest` and later instants up to its
// successor). The daemon calls this with its oldest future lookup instant
// (next interval minus reaction delay) so a long-running feed holds O(delay
// ÷ feed cadence) vectors instead of growing without bound.
func (f *priceFeed) prune(oldest time.Time) {
	n := len(f.at)
	if n == 0 {
		return
	}
	i := sort.Search(n, func(i int) bool { return f.at[i].After(oldest) })
	// f.at[i-1] covers `oldest`; drop [0, i-1).
	if i <= 1 {
		return
	}
	f.at = append(f.at[:0], f.at[i-1:]...)
	f.vec = append(f.vec[:0], f.vec[i-1:]...)
	// The compaction shifted the live entries down but left the dropped
	// tail slots pointing at their old per-cluster vectors, reachable
	// through the backing array — a steady leak of one vector per pruned
	// entry on a long-running feed. Clear [len, oldLen) so the garbage
	// collector can actually take them.
	clear(f.at[len(f.at):n])
	clear(f.vec[len(f.vec):n])
}

// lookup returns the vector covering instant at, clamped to the first
// entry. Returns nil when the feed is empty.
func (f *priceFeed) lookup(at time.Time) []float64 {
	n := len(f.at)
	if n == 0 {
		return nil
	}
	// Common case for chronological stepping: at covers the newest entry.
	if !at.Before(f.at[n-1]) {
		return f.vec[n-1]
	}
	i := sort.Search(n, func(i int) bool { return f.at[i].After(at) })
	if i == 0 {
		return f.vec[0]
	}
	return f.vec[i-1]
}

// Binary batch bodies: the high-throughput ingest path the trace-replay
// load generator uses. A batch is one text header line followed by
// rows×cols little-endian float64s:
//
//	powerroute-batch v1 kind=<demand|prices> start=<unixnano> step=<ns> rows=<n> cols=<m> [hubs=<id,id,...>]\n
//
// Demand columns are the fleet's states in order; price columns are the
// named hubs. The header is self-describing, so a chunked replay can POST
// any number of batches back to back.
const (
	batchMagic = "powerroute-batch v1"

	// ContentTypeDemandBatch and ContentTypePricesBatch select the binary
	// batch parser on POST /v1/demand and /v1/prices.
	ContentTypeDemandBatch = "application/x-powerroute-demand-batch"
	ContentTypePricesBatch = "application/x-powerroute-prices-batch"

	// maxBatchRows bounds one batch body (a protective cap, not a
	// throughput limit — replays just send more batches).
	maxBatchRows = 1 << 20
)

// BatchHeader is the parsed first line of a binary batch body. It is
// exported, with ParseBatchHeader, for the shard coordinator and the load
// generator, which split and re-emit batches along shard boundaries.
type BatchHeader struct {
	Kind  string
	Start time.Time
	Step  time.Duration
	Rows  int
	Cols  int
	Hubs  []string // Kind == "prices" only
}

// ParseBatchHeader reads and validates one batch header line.
func ParseBatchHeader(r *bufio.Reader) (*BatchHeader, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("server: reading batch header: %w", err)
	}
	line = strings.TrimSuffix(line, "\n")
	if !strings.HasPrefix(line, batchMagic+" ") {
		return nil, fmt.Errorf("server: batch header missing %q magic", batchMagic)
	}
	h := &BatchHeader{}
	for _, field := range strings.Fields(line[len(batchMagic)+1:]) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("server: malformed batch header field %q", field)
		}
		switch key {
		case "kind":
			h.Kind = val
		case "start":
			ns, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("server: batch start: %w", err)
			}
			h.Start = time.Unix(0, ns).UTC()
		case "step":
			ns, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("server: batch step: %w", err)
			}
			h.Step = time.Duration(ns)
		case "rows":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("server: batch rows: %w", err)
			}
			h.Rows = n
		case "cols":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("server: batch cols: %w", err)
			}
			h.Cols = n
		case "hubs":
			h.Hubs = strings.Split(val, ",")
		default:
			return nil, fmt.Errorf("server: unknown batch header field %q", key)
		}
	}
	if h.Kind != "demand" && h.Kind != "prices" {
		return nil, fmt.Errorf("server: batch kind %q", h.Kind)
	}
	// A missing start would silently anchor the batch at the Unix epoch —
	// and for prices there is no downstream alignment check to catch it.
	if h.Start.IsZero() {
		return nil, fmt.Errorf("server: batch header missing start")
	}
	if h.Rows <= 0 || h.Rows > maxBatchRows || h.Cols <= 0 {
		return nil, fmt.Errorf("server: batch dimensions %dx%d out of range", h.Rows, h.Cols)
	}
	if h.Step <= 0 {
		return nil, fmt.Errorf("server: non-positive batch step %v", h.Step)
	}
	if h.Kind == "demand" && h.Hubs != nil {
		return nil, errors.New("server: demand batch must not name hubs")
	}
	if h.Kind == "prices" {
		if len(h.Hubs) != h.Cols {
			return nil, fmt.Errorf("server: %d hub names for %d price columns", len(h.Hubs), h.Cols)
		}
		// strings.Split never returns an empty slice, so "hubs=" yields
		// one empty name; and a duplicated hub (hubs=MISO,MISO) would let
		// the last column silently win the cluster assignment.
		seen := make(map[string]bool, len(h.Hubs))
		for _, hub := range h.Hubs {
			if hub == "" {
				return nil, errors.New("server: batch header has an empty hub name")
			}
			if seen[hub] {
				return nil, fmt.Errorf("server: batch header names hub %q twice", hub)
			}
			seen[hub] = true
		}
	}
	return h, nil
}

// readRow fills dst (len = header cols) with the next row of the batch
// body, reusing buf as the byte scratch (grown as needed). Rows carrying
// NaN or ±Inf are rejected: the JSON ingest path cannot even express
// them, and one non-finite price or demand sample would poison meters,
// p95 bills, and every checkpoint downstream.
func readRow(r *bufio.Reader, dst []float64, buf []byte) ([]byte, error) {
	need := len(dst) * 8
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, fmt.Errorf("server: batch body truncated: %w", err)
	}
	return buf, DecodeRow(buf, dst)
}

// DecodeRow decodes one batch row of little-endian float64s from b into
// dst, rejecting NaN and ±Inf. Exported for the shard coordinator, which
// re-splits demand rows along shard boundaries.
func DecodeRow(b []byte, dst []float64) error {
	if len(b) != 8*len(dst) {
		return fmt.Errorf("server: batch row is %d bytes for %d columns", len(b), len(dst))
	}
	for i := range dst {
		v := math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("server: batch row has non-finite value in column %d", i)
		}
		dst[i] = v
	}
	return nil
}

// WriteBatchHeader writes the batch header line for a binary batch body.
// It is exported for the load generator (cmd/tracegen) so the two sides
// share one definition of the format.
func WriteBatchHeader(w io.Writer, kind string, start time.Time, step time.Duration, rows, cols int, hubs []string) error {
	if kind == "prices" {
		_, err := fmt.Fprintf(w, "%s kind=prices start=%d step=%d rows=%d cols=%d hubs=%s\n",
			batchMagic, start.UnixNano(), int64(step), rows, cols, strings.Join(hubs, ","))
		return err
	}
	_, err := fmt.Fprintf(w, "%s kind=%s start=%d step=%d rows=%d cols=%d\n",
		batchMagic, kind, start.UnixNano(), int64(step), rows, cols)
	return err
}

// AppendRow appends one row of little-endian float64s to b. Exported for
// the load generator.
func AppendRow(b []byte, row []float64) []byte {
	for _, v := range row {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}
