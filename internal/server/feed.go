package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// The daemon's price store lives in shardfeed.go: per-hub feedShards plus
// atomically published consolidated priceViews. This file holds the
// binary batch wire format shared with the load generator and the shard
// coordinator.

// Binary batch bodies: the high-throughput ingest path the trace-replay
// load generator uses. A batch is one text header line followed by
// rows×cols little-endian float64s:
//
//	powerroute-batch v1 kind=<demand|prices> start=<unixnano> step=<ns> rows=<n> cols=<m> [hubs=<id,id,...>]\n
//
// Demand columns are the fleet's states in order; price columns are the
// named hubs. The header is self-describing, so a chunked replay can POST
// any number of batches back to back.
const (
	batchMagic = "powerroute-batch v1"

	// ContentTypeDemandBatch and ContentTypePricesBatch select the binary
	// batch parser on POST /v1/demand and /v1/prices.
	ContentTypeDemandBatch = "application/x-powerroute-demand-batch"
	ContentTypePricesBatch = "application/x-powerroute-prices-batch"

	// maxBatchRows bounds one batch body (a protective cap, not a
	// throughput limit — replays just send more batches).
	maxBatchRows = 1 << 20

	// maxJobsPerRow bounds the deferrable-job block a jobs=1 demand row
	// may carry (same protective role as maxBatchRows).
	maxJobsPerRow = 1 << 16

	// wireJobBytes is the fixed encoded size of one WireJob record.
	wireJobBytes = 24
)

// BatchHeader is the parsed first line of a binary batch body. It is
// exported, with ParseBatchHeader, for the shard coordinator and the load
// generator, which split and re-emit batches along shard boundaries.
type BatchHeader struct {
	Kind  string
	Start time.Time
	Step  time.Duration
	Rows  int
	Cols  int
	Hubs  []string // Kind == "prices" only
	// Jobs marks a demand batch whose rows each carry a deferrable-job
	// block before the rate columns (header field jobs=1). Builds that
	// predate the batch class reject the unknown field loudly instead of
	// misparsing the body.
	Jobs bool
}

// ParseBatchHeader reads and validates one batch header line.
func ParseBatchHeader(r *bufio.Reader) (*BatchHeader, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("server: reading batch header: %w", err)
	}
	line = strings.TrimSuffix(line, "\n")
	if !strings.HasPrefix(line, batchMagic+" ") {
		return nil, fmt.Errorf("server: batch header missing %q magic", batchMagic)
	}
	h := &BatchHeader{}
	for _, field := range strings.Fields(line[len(batchMagic)+1:]) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("server: malformed batch header field %q", field)
		}
		switch key {
		case "kind":
			h.Kind = val
		case "start":
			ns, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("server: batch start: %w", err)
			}
			h.Start = time.Unix(0, ns).UTC()
		case "step":
			ns, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("server: batch step: %w", err)
			}
			h.Step = time.Duration(ns)
		case "rows":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("server: batch rows: %w", err)
			}
			h.Rows = n
		case "cols":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("server: batch cols: %w", err)
			}
			h.Cols = n
		case "hubs":
			h.Hubs = strings.Split(val, ",")
		case "jobs":
			if val != "1" {
				return nil, fmt.Errorf("server: batch jobs flag %q (only jobs=1 is defined)", val)
			}
			h.Jobs = true
		default:
			return nil, fmt.Errorf("server: unknown batch header field %q", key)
		}
	}
	if h.Kind != "demand" && h.Kind != "prices" {
		return nil, fmt.Errorf("server: batch kind %q", h.Kind)
	}
	// A missing start would silently anchor the batch at the Unix epoch —
	// and for prices there is no downstream alignment check to catch it.
	if h.Start.IsZero() {
		return nil, fmt.Errorf("server: batch header missing start")
	}
	if h.Rows <= 0 || h.Rows > maxBatchRows || h.Cols <= 0 {
		return nil, fmt.Errorf("server: batch dimensions %dx%d out of range", h.Rows, h.Cols)
	}
	if h.Step <= 0 {
		return nil, fmt.Errorf("server: non-positive batch step %v", h.Step)
	}
	if h.Kind == "demand" && h.Hubs != nil {
		return nil, errors.New("server: demand batch must not name hubs")
	}
	if h.Jobs && h.Kind != "demand" {
		return nil, fmt.Errorf("server: jobs flag on a %q batch (jobs ride demand batches)", h.Kind)
	}
	if h.Kind == "prices" {
		if len(h.Hubs) != h.Cols {
			return nil, fmt.Errorf("server: %d hub names for %d price columns", len(h.Hubs), h.Cols)
		}
		// strings.Split never returns an empty slice, so "hubs=" yields
		// one empty name; and a duplicated hub (hubs=MISO,MISO) would let
		// the last column silently win the cluster assignment.
		seen := make(map[string]bool, len(h.Hubs))
		for _, hub := range h.Hubs {
			if hub == "" {
				return nil, errors.New("server: batch header has an empty hub name")
			}
			if seen[hub] {
				return nil, fmt.Errorf("server: batch header names hub %q twice", hub)
			}
			seen[hub] = true
		}
	}
	return h, nil
}

// decodeRows stages a whole batch body: rows×cols little-endian float64s
// decoded into one flat slice, rejecting NaN and ±Inf. The body streams
// through a bounded chunk buffer and the decode loop runs over contiguous
// memory — no per-row reads, no per-row allocation. On error the second
// return is the offending row (truncation reports the first incomplete
// row). Rows carrying non-finite values are rejected for the same reason
// the JSON path cannot express them: one poisoned sample would corrupt
// meters, p95 bills, and every checkpoint downstream.
func decodeRows(r io.Reader, rows, cols int) ([]float64, int, error) {
	rowBytes := cols * 8
	flat := make([]float64, rows*cols)
	chunk := max(1, (1<<16)/rowBytes)
	buf := make([]byte, min(chunk, rows)*rowBytes)
	for done := 0; done < rows; {
		n := min(chunk, rows-done)
		b := buf[:n*rowBytes]
		read, err := io.ReadFull(r, b)
		complete := read / rowBytes
		for i := 0; i < complete; i++ {
			row := done + i
			if derr := DecodeRow(b[i*rowBytes:(i+1)*rowBytes], flat[row*cols:(row+1)*cols]); derr != nil {
				return nil, row, derr
			}
		}
		if err != nil {
			return nil, done + complete, fmt.Errorf("server: batch body truncated: %w", err)
		}
		done += n
	}
	return flat, 0, nil
}

// DecodeRow decodes one batch row of little-endian float64s from b into
// dst, rejecting NaN and ±Inf. Exported for the shard coordinator, which
// re-splits demand rows along shard boundaries.
func DecodeRow(b []byte, dst []float64) error {
	if len(b) != 8*len(dst) {
		return fmt.Errorf("server: batch row is %d bytes for %d columns", len(b), len(dst))
	}
	for i := range dst {
		v := math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("server: batch row has non-finite value in column %d", i)
		}
		dst[i] = v
	}
	return nil
}

// WriteBatchHeader writes the batch header line for a binary batch body.
// It is exported for the load generator (cmd/tracegen) so the two sides
// share one definition of the format.
func WriteBatchHeader(w io.Writer, kind string, start time.Time, step time.Duration, rows, cols int, hubs []string) error {
	if kind == "prices" {
		_, err := fmt.Fprintf(w, "%s kind=prices start=%d step=%d rows=%d cols=%d hubs=%s\n",
			batchMagic, start.UnixNano(), int64(step), rows, cols, strings.Join(hubs, ","))
		return err
	}
	_, err := fmt.Fprintf(w, "%s kind=%s start=%d step=%d rows=%d cols=%d\n",
		batchMagic, kind, start.UnixNano(), int64(step), rows, cols)
	return err
}

// AppendRow appends one row of little-endian float64s to b. Exported for
// the load generator.
func AppendRow(b []byte, row []float64) []byte {
	for _, v := range row {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// WriteJobsBatchHeader writes the header of a jobs=1 demand batch, whose
// rows each carry a job block (AppendJobs) before the rate columns.
func WriteJobsBatchHeader(w io.Writer, start time.Time, step time.Duration, rows, cols int) error {
	_, err := fmt.Fprintf(w, "%s kind=demand start=%d step=%d rows=%d cols=%d jobs=1\n",
		batchMagic, start.UnixNano(), int64(step), rows, cols)
	return err
}

// WireJob is the fixed-size wire form of one deferrable batch job riding
// a jobs=1 demand row: the home cluster's engine-local index, the
// deadline as steps after the row's interval, the job's energy, and its
// partial-execution floor.
type WireJob struct {
	Cluster       uint32
	DeadlineSteps uint32
	EnergyKWh     float64
	MinFraction   float64
}

// AppendJobs appends a row's job block to b: a uint32 count followed by
// the fixed-size records, all little-endian. Exported for the load
// generator; rows with no jobs append just the zero count.
func AppendJobs(b []byte, jobs []WireJob) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(jobs)))
	for _, j := range jobs {
		b = binary.LittleEndian.AppendUint32(b, j.Cluster)
		b = binary.LittleEndian.AppendUint32(b, j.DeadlineSteps)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(j.EnergyKWh))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(j.MinFraction))
	}
	return b
}

// decodeWireJob decodes one fixed-size job record.
func decodeWireJob(b []byte) WireJob {
	return WireJob{
		Cluster:       binary.LittleEndian.Uint32(b),
		DeadlineSteps: binary.LittleEndian.Uint32(b[4:]),
		EnergyKWh:     math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		MinFraction:   math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
	}
}
