package server

import (
	"strings"
	"testing"
	"time"

	"powerroute/internal/cluster"
)

// oneHubFeed builds a sharded feed over a single-cluster fleet whose only
// hub is "H" — the smallest world in which every consolidated semantic
// (overlay, chronology, prune, publish) is observable.
func oneHubFeed() *shardedFeed {
	fleet := &cluster.Fleet{Clusters: []cluster.Cluster{{Code: "C0", HubID: "H"}}}
	return newShardedFeed(fleet, map[string][]int{"H": {0}})
}

func mustIngest(t *testing.T, f *shardedFeed, at time.Time, price float64) {
	t.Helper()
	if _, _, _, err := f.ingest(at, map[string]float64{"H": price}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedFeedPrune: the feed retains only the covering entry at or
// before the oldest future lookup instant, lookups after pruning resolve
// exactly as before, the hub shards are trimmed in step, and a no-op
// prune publishes nothing (the view pointer is unchanged).
func TestShardedFeedPrune(t *testing.T) {
	f := oneHubFeed()
	t0 := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		mustIngest(t, f, t0.Add(time.Duration(i)*time.Hour), float64(i))
	}
	f.prune(t0.Add(5*time.Hour + 30*time.Minute))
	if f.entries() != 5 { // entries 5..9; entry 5 covers 5:30
		t.Fatalf("feed holds %d entries after prune, want 5", f.entries())
	}
	v := f.current()
	if got := v.lookup(t0.Add(5*time.Hour + 30*time.Minute)); got[0] != 5 {
		t.Fatalf("covering lookup = %v, want 5", got[0])
	}
	// Pre-threshold instants clamp to the retained covering entry.
	if got := v.lookup(t0); got[0] != 5 {
		t.Fatalf("clamped lookup = %v, want 5", got[0])
	}
	// The per-hub shard history must not outlive the consolidated window,
	// or a long-running daemon would leak one sample per post.
	if got := f.shards["H"].entries(); got != 5 {
		t.Fatalf("hub shard holds %d entries after prune, want 5", got)
	}
	// Pruning at/behind the first entry is a no-op and publishes nothing.
	before := f.current()
	f.prune(t0)
	if f.current() != before {
		t.Fatal("no-op prune published a new view")
	}
	if f.entries() != 5 {
		t.Fatalf("no-op prune changed length to %d", f.entries())
	}
}

// TestShardedFeedViewImmutable: a published view is frozen — later posts,
// corrections of the newest entry, and prunes must all build successors
// instead of mutating arrays a concurrent reader may hold. This is the
// RCU contract the lock-free demand path rests on.
func TestShardedFeedViewImmutable(t *testing.T) {
	f := oneHubFeed()
	t0 := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		mustIngest(t, f, t0.Add(time.Duration(i)*time.Hour), float64(i))
	}
	old := f.current()

	// Append beyond the old view, then correct its newest entry in the
	// successor, then prune the front away.
	mustIngest(t, f, t0.Add(3*time.Hour), 3)
	mustIngest(t, f, t0.Add(3*time.Hour), 33) // correction: replaces newest
	f.prune(t0.Add(3 * time.Hour))

	if old.len() != 3 {
		t.Fatalf("old view length changed to %d", old.len())
	}
	for i := 0; i < 3; i++ {
		if got := old.vec[i][0]; got != float64(i) {
			t.Fatalf("old view entry %d mutated to %v", i, got)
		}
	}
	now := f.current()
	if now.len() != 1 || now.last()[0] != 33 {
		t.Fatalf("successor view = %d entries, last %v; want 1 entry of 33",
			now.len(), now.last())
	}
}

// TestShardedFeedChronology: stale posts are rejected without recording
// anything, with the same error the single-mutex feed produced.
func TestShardedFeedChronology(t *testing.T) {
	f := oneHubFeed()
	t0 := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	mustIngest(t, f, t0.Add(time.Hour), 10)
	_, _, code, err := f.ingest(t0, map[string]float64{"H": 5})
	if err == nil || !strings.Contains(err.Error(), "precedes newest feed entry") {
		t.Fatalf("stale post: got %v", err)
	}
	if code != 409 {
		t.Fatalf("stale post code = %d, want 409", code)
	}
	if f.entries() != 1 || f.shards["H"].entries() != 1 {
		t.Fatal("rejected post was recorded")
	}
}
