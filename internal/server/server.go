// Package server wraps a sim.Engine in a long-running HTTP daemon: the
// online counterpart of the batch simulator, shaped like the paper's §6.1
// mapping system. Price feeds and demand reports arrive over HTTP, every
// demand interval triggers one routing decision through the engine, and
// the running bill, peaks, and battery state are queryable while the
// daemon serves.
//
//	POST /v1/prices       ingest a price vector (JSON per hub, or binary batch)
//	POST /v1/demand       ingest demand and route one interval (JSON or binary batch)
//	GET  /v1/assignments  the last interval's routing decision
//	GET  /v1/status       running cost / peak / state-of-charge totals
//	GET  /v1/world        static world description (clusters, states, policy)
//	GET  /v1/checkpoint   operator snapshot: the engine's durable state (versioned encoding)
//	PUT  /v1/checkpoint   operator restore: resume from a snapshot of this world
//	GET  /metrics         Prometheus-style text metrics
//	GET  /healthz         liveness probe
//
// All engine access is serialized behind one mutex; handlers are safe for
// concurrent use. The binary batch bodies (see feed.go) are the
// high-throughput path: a batch acquires the lock once and routes
// thousands of intervals per request.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/sim"
)

// Config assembles a Server.
type Config struct {
	// Engine is the incremental simulation engine to serve. The server
	// owns it after New; all further access must go through handlers.
	Engine *sim.Engine
}

// Server is the powerrouted HTTP daemon state. The guarded_by
// annotations are enforced by powerroute-vet's lockcheck analyzer.
type Server struct {
	mu    sync.Mutex
	eng   *sim.Engine // guarded_by: mu
	fleet *cluster.Fleet
	step  time.Duration
	delay time.Duration

	hubClusters map[string][]int
	feed        priceFeed // guarded_by: mu

	// scratch buffers for the demand path.
	rowBuf  []float64 // guarded_by: mu
	byteBuf []byte    // guarded_by: mu

	reqMu    sync.Mutex
	requests map[string]uint64 // guarded_by: reqMu
}

// New builds a Server around an engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: config missing engine")
	}
	fleet := cfg.Engine.Fleet()
	s := &Server{
		eng:         cfg.Engine,
		fleet:       fleet,
		step:        cfg.Engine.StepSize(),
		delay:       cfg.Engine.ReactionDelay(),
		hubClusters: make(map[string][]int),
		rowBuf:      make([]float64, len(fleet.States)),
		requests:    make(map[string]uint64),
	}
	for c, cl := range fleet.Clusters {
		s.hubClusters[cl.HubID] = append(s.hubClusters[cl.HubID], c)
	}
	return s, nil
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/prices", s.counted("prices", s.handlePrices))
	mux.HandleFunc("POST /v1/demand", s.counted("demand", s.handleDemand))
	mux.HandleFunc("GET /v1/assignments", s.counted("assignments", s.handleAssignments))
	mux.HandleFunc("GET /v1/status", s.counted("status", s.handleStatus))
	mux.HandleFunc("GET /v1/world", s.counted("world", s.handleWorld))
	mux.HandleFunc("GET /v1/checkpoint", s.counted("checkpoint", s.handleCheckpointGet))
	mux.HandleFunc("PUT /v1/checkpoint", s.counted("checkpoint", s.handleCheckpointPut))
	mux.HandleFunc("GET /metrics", s.counted("metrics", s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.counted("healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	return mux
}

// Finalize closes the engine's books and returns the final Result (for a
// shutdown summary). The server keeps answering reads afterwards; further
// demand ingestion fails.
func (s *Server) Finalize() (*sim.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Finalize()
}

func (s *Server) counted(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reqMu.Lock()
		s.requests[name]++
		s.reqMu.Unlock()
		h(w, r)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// batchError reports a mid-batch demand failure. Rows before the failing
// one are already committed to the engine, so the response carries the
// routed count and the engine's next expected interval — everything a
// client needs to resume instead of replaying a now-misaligned batch.
//
//lint:held mu callers lock s.mu for the whole batch
func (s *Server) batchError(w http.ResponseWriter, code, routed int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error":  fmt.Sprintf(format, args...),
		"routed": routed,
		"next":   s.eng.Next(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// --- price ingestion -------------------------------------------------------

// pricePost is the JSON body of POST /v1/prices: the hub prices taking
// effect at an instant. Hubs that host no cluster are ignored; every
// cluster must be covered once the overlay on the previous vector is
// applied.
type pricePost struct {
	At     time.Time          `json:"at"`
	Prices map[string]float64 `json:"prices"`
}

func (s *Server) handlePrices(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == ContentTypePricesBatch {
		s.handlePricesBatch(w, r)
		return
	}
	var post pricePost
	if err := json.NewDecoder(r.Body).Decode(&post); err != nil {
		httpError(w, http.StatusBadRequest, "decoding price post: %v", err)
		return
	}
	if post.At.IsZero() {
		httpError(w, http.StatusBadRequest, "price post missing \"at\"")
		return
	}
	if len(post.Prices) == 0 {
		httpError(w, http.StatusBadRequest, "price post missing \"prices\"")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	nc := len(s.fleet.Clusters)
	vec := make([]float64, nc)
	covered := make([]bool, nc)
	if last := s.feed.last(); last != nil {
		copy(vec, last)
		for c := range covered {
			covered[c] = true
		}
	}
	ignored := 0
	for hub, price := range post.Prices {
		idxs, ok := s.hubClusters[hub]
		if !ok {
			ignored++
			continue
		}
		for _, c := range idxs {
			vec[c] = price
			covered[c] = true
		}
	}
	for c, ok := range covered {
		if !ok {
			httpError(w, http.StatusBadRequest, "no price yet for cluster %s (hub %s)",
				s.fleet.Clusters[c].Code, s.fleet.Clusters[c].HubID)
			return
		}
	}
	if err := s.feed.add(post.At.UTC(), vec); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, map[string]any{
		"at":           post.At.UTC(),
		"ignored_hubs": ignored,
		"feed_entries": s.feed.len(),
	})
}

func (s *Server) handlePricesBatch(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReaderSize(r.Body, 1<<16)
	h, err := ParseBatchHeader(br)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if h.Kind != "prices" {
		httpError(w, http.StatusBadRequest, "batch kind %q on /v1/prices", h.Kind)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Resolve hub columns to cluster indices once per batch.
	nc := len(s.fleet.Clusters)
	colClusters := make([][]int, h.Cols)
	covered := make([]bool, nc)
	if s.feed.last() != nil {
		for c := range covered {
			covered[c] = true
		}
	}
	for i, hub := range h.Hubs {
		colClusters[i] = s.hubClusters[hub]
		for _, c := range colClusters[i] {
			covered[c] = true
		}
	}
	for c, ok := range covered {
		if !ok {
			httpError(w, http.StatusBadRequest, "no price for cluster %s (hub %s) in batch",
				s.fleet.Clusters[c].Code, s.fleet.Clusters[c].HubID)
			return
		}
	}
	row := make([]float64, h.Cols)
	prev := s.feed.last()
	for i := 0; i < h.Rows; i++ {
		if s.byteBuf, err = readRow(br, row, s.byteBuf); err != nil {
			httpError(w, http.StatusBadRequest, "price row %d: %v", i, err)
			return
		}
		vec := make([]float64, nc)
		if prev != nil {
			copy(vec, prev)
		}
		for col, price := range row {
			for _, c := range colClusters[col] {
				vec[c] = price
			}
		}
		if err := s.feed.add(h.Start.Add(time.Duration(i)*h.Step), vec); err != nil {
			httpError(w, http.StatusConflict, "price row %d: %v", i, err)
			return
		}
		prev = vec
	}
	writeJSON(w, map[string]any{
		"ingested":     h.Rows,
		"feed_entries": s.feed.len(),
	})
}

// --- demand ingestion / routing --------------------------------------------

// demandPost is the JSON body of POST /v1/demand: one interval's per-state
// demand (fleet state order; GET /v1/world lists the codes). A zero At
// defaults to the engine's next expected interval.
type demandPost struct {
	At    time.Time `json:"at"`
	Rates []float64 `json:"rates"`
}

func (s *Server) handleDemand(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == ContentTypeDemandBatch {
		s.handleDemandBatch(w, r)
		return
	}
	var post demandPost
	if err := json.NewDecoder(r.Body).Decode(&post); err != nil {
		httpError(w, http.StatusBadRequest, "decoding demand post: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	at := post.At.UTC()
	if post.At.IsZero() {
		at = s.eng.Next()
	} else if !at.Equal(s.eng.Next()) {
		httpError(w, http.StatusConflict, "demand at %v, engine expects %v", at, s.eng.Next())
		return
	}
	if code, err := s.routeOne(at, post.Rates); err != nil {
		httpError(w, code, "%v", err)
		return
	}
	s.feed.prune(s.eng.Next().Add(-s.delay))
	snap := s.eng.Snapshot()
	writeJSON(w, map[string]any{
		"routed":         1,
		"at":             at,
		"steps":          snap.Steps,
		"total_cost_usd": float64(snap.TotalCost),
	})
}

// routeOne advances the engine one interval at `at` using the freshest
// ingested prices (decision prices lagged by the reaction delay).
//
//lint:held mu callers lock s.mu around each routed interval
func (s *Server) routeOne(at time.Time, rates []float64) (int, error) {
	bill := s.feed.lookup(at)
	if bill == nil {
		return http.StatusConflict, fmt.Errorf("server: no prices ingested yet")
	}
	decision := s.feed.lookup(at.Add(-s.delay))
	if err := s.eng.Step(at, sim.StepPrices{Decision: decision, Bill: bill}, rates); err != nil {
		return http.StatusBadRequest, err
	}
	return 0, nil
}

func (s *Server) handleDemandBatch(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReaderSize(r.Body, 1<<16)
	h, err := ParseBatchHeader(br)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if h.Kind != "demand" {
		httpError(w, http.StatusBadRequest, "batch kind %q on /v1/demand", h.Kind)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h.Cols != len(s.fleet.States) {
		httpError(w, http.StatusBadRequest, "batch has %d state columns, fleet has %d", h.Cols, len(s.fleet.States))
		return
	}
	if h.Step != s.step {
		httpError(w, http.StatusBadRequest, "batch step %v, engine step %v", h.Step, s.step)
		return
	}
	if next := s.eng.Next(); !h.Start.Equal(next) {
		httpError(w, http.StatusConflict, "batch starts %v, engine expects %v", h.Start, next)
		return
	}
	for i := 0; i < h.Rows; i++ {
		if s.byteBuf, err = readRow(br, s.rowBuf, s.byteBuf); err != nil {
			s.batchError(w, http.StatusBadRequest, i, "demand row %d: %v", i, err)
			return
		}
		at := h.Start.Add(time.Duration(i) * h.Step)
		if code, err := s.routeOne(at, s.rowBuf); err != nil {
			s.batchError(w, code, i, "demand row %d: %v", i, err)
			return
		}
	}
	s.feed.prune(s.eng.Next().Add(-s.delay))
	snap := s.eng.Snapshot()
	writeJSON(w, map[string]any{
		"routed":         h.Rows,
		"steps":          snap.Steps,
		"total_cost_usd": float64(snap.TotalCost),
	})
}

// --- read endpoints --------------------------------------------------------

type clusterStatus struct {
	Code          string  `json:"code"`
	Hub           string  `json:"hub"`
	RateHits      float64 `json:"rate_hits_per_s"`
	PeakRateHits  float64 `json:"peak_rate_hits_per_s"`
	CostUSD       float64 `json:"cost_usd"`
	PeakGridKW    float64 `json:"peak_grid_kw,omitempty"`
	BatterySoCKWh float64 `json:"battery_soc_kwh,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := s.eng.Snapshot()
	feedEntries := s.feed.len()
	s.mu.Unlock()
	writeJSON(w, StatusPayload(s.fleet, snap, feedEntries))
}

// StatusPayload renders the /v1/status response body for an engine
// snapshot. Exported for the shard coordinator, which serves the exact
// same payload from a merged fleet-wide snapshot — the byte-for-byte
// comparison the shard-merge CI gate rests on.
func StatusPayload(fleet *cluster.Fleet, snap *sim.Snapshot, feedEntries int) map[string]any {
	clusters := make([]clusterStatus, len(fleet.Clusters))
	for c, cl := range fleet.Clusters {
		cs := clusterStatus{
			Code:         cl.Code,
			Hub:          cl.HubID,
			RateHits:     snap.ClusterRate[c],
			PeakRateHits: snap.PeakRate[c],
			CostUSD:      float64(snap.ClusterCost[c]),
		}
		if snap.PeakGridKW != nil {
			cs.PeakGridKW = snap.PeakGridKW[c]
		}
		if snap.SoCKWh != nil {
			cs.BatterySoCKWh = snap.SoCKWh[c]
		}
		clusters[c] = cs
	}
	resp := map[string]any{
		"policy":               snap.Policy,
		"steps":                snap.Steps,
		"next":                 snap.Next,
		"total_cost_usd":       float64(snap.TotalCost),
		"energy_cost_usd":      float64(snap.EnergyCost),
		"demand_charge_usd":    float64(snap.DemandCharge),
		"total_energy_mwh":     snap.TotalEnergy.MegawattHours(),
		"overload_hit_seconds": snap.OverloadHitSeconds,
		"price_feed_entries":   feedEntries,
		"clusters":             clusters,
	}
	if !snap.At.IsZero() {
		resp["at"] = snap.At
	}
	if snap.SoCKWh != nil {
		resp["storage_bought_kwh"] = snap.StorageBoughtKWh
		resp["storage_served_kwh"] = snap.StorageServedKWh
	}
	if snap.TotalCarbonKg != 0 {
		resp["carbon_kg"] = snap.TotalCarbonKg
	}
	return resp
}

func (s *Server) handleAssignments(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := s.eng.Snapshot()
	var matrix [][]float64
	if r.URL.Query().Get("matrix") == "1" {
		matrix = s.eng.Assignments(nil)
	}
	s.mu.Unlock()

	type row struct {
		Code     string  `json:"code"`
		RateHits float64 `json:"rate_hits_per_s"`
		Share    float64 `json:"share"`
	}
	var total float64
	for _, rate := range snap.ClusterRate {
		total += rate
	}
	clusters := make([]row, len(s.fleet.Clusters))
	for c, cl := range s.fleet.Clusters {
		share := 0.0
		if total > 0 {
			share = snap.ClusterRate[c] / total
		}
		clusters[c] = row{Code: cl.Code, RateHits: snap.ClusterRate[c], Share: share}
	}
	resp := map[string]any{
		"steps":           snap.Steps,
		"total_rate_hits": total,
		"clusters":        clusters,
	}
	if !snap.At.IsZero() {
		resp["at"] = snap.At
	}
	if matrix != nil {
		states := make([]string, len(s.fleet.States))
		for i, st := range s.fleet.States {
			states[i] = st.Code
		}
		resp["states"] = states
		resp["matrix"] = matrix
	}
	writeJSON(w, resp)
}

func (s *Server) handleWorld(w http.ResponseWriter, r *http.Request) {
	type clusterInfo struct {
		Code     string  `json:"code"`
		Hub      string  `json:"hub"`
		Servers  int     `json:"servers"`
		Capacity float64 `json:"capacity_hits_per_s"`
	}
	clusters := make([]clusterInfo, len(s.fleet.Clusters))
	for c, cl := range s.fleet.Clusters {
		clusters[c] = clusterInfo{Code: cl.Code, Hub: cl.HubID, Servers: cl.Servers, Capacity: float64(cl.Capacity)}
	}
	states := make([]string, len(s.fleet.States))
	for i, st := range s.fleet.States {
		states[i] = st.Code
	}
	s.mu.Lock()
	snap := s.eng.Snapshot()
	start := s.eng.Start()
	worldHash := s.eng.WorldHash()
	s.mu.Unlock()
	writeJSON(w, map[string]any{
		"policy":                 snap.Policy,
		"start":                  start,
		"step_seconds":           s.step.Seconds(),
		"reaction_delay_seconds": s.delay.Seconds(),
		"world_hash":             worldHash,
		"clusters":               clusters,
		"states":                 states,
	})
}
