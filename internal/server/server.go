// Package server wraps a sim.Engine in a long-running HTTP daemon: the
// online counterpart of the batch simulator, shaped like the paper's §6.1
// mapping system. Price feeds and demand reports arrive over HTTP, every
// demand interval triggers one routing decision through the engine, and
// the running bill, peaks, and battery state are queryable while the
// daemon serves.
//
//	POST /v1/prices       ingest a price vector (JSON per hub, or binary batch)
//	POST /v1/demand       ingest demand and route one interval (JSON or binary batch)
//	GET  /v1/assignments  the last interval's routing decision
//	GET  /v1/status       running cost / peak / state-of-charge totals
//	GET  /v1/world        static world description (clusters, states, policy)
//	GET  /v1/checkpoint   operator snapshot: the engine's durable state (versioned encoding)
//	PUT  /v1/checkpoint   operator restore: resume from a snapshot of this world
//	GET  /metrics         Prometheus-style text metrics
//	GET  /healthz         liveness probe
//
// Handlers are safe for concurrent use. Engine access is serialized
// behind one mutex, but price ingestion never takes it: the price store
// is sharded per hub and publishes immutable consolidated views through
// an atomic pointer (see shardfeed.go), so POST /v1/prices and POST
// /v1/demand run concurrently without contending — the demand path reads
// prices from whatever view is current when a row routes. The binary
// batch bodies (see feed.go) are the high-throughput path: a batch
// acquires its lock once and routes thousands of intervals per request.
package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/sched"
	"powerroute/internal/sim"
)

// Engine is the incremental simulation surface the server drives: one
// routing decision per Step, cheap snapshots for status endpoints, and a
// durable checkpoint for the operator API. *sim.Engine is the
// single-engine implementation; *sim.ParallelEngine runs the world's
// routing-closed regions concurrently behind the same contract. Only
// checkpoint *restore* is implementation-specific (see
// handleCheckpointPut): a joint checkpoint cannot be split back into
// shard engines, so PUT /v1/checkpoint requires a single engine.
type Engine interface {
	Fleet() *cluster.Fleet
	StepSize() time.Duration
	ReactionDelay() time.Duration
	Start() time.Time
	Next() time.Time
	StepsRun() int
	Step(at time.Time, prices sim.StepPrices, demand []float64) error
	Snapshot() *sim.Snapshot
	SnapshotInto(dst *sim.Snapshot) *sim.Snapshot
	Assignments(dst [][]float64) [][]float64
	WorldHash() string
	Checkpoint() (*sim.Checkpoint, error)
	Finalize() (*sim.Result, error)
}

// Config assembles a Server.
type Config struct {
	// Engine is the incremental simulation engine to serve. The server
	// owns it after New; all further access must go through handlers.
	Engine Engine

	// Leases, when non-nil, is the burst-token lease window the engine
	// reads its fleet gate bits from: the daemon accepts POST /v1/leases
	// into it (the coordinator posts each window before the demand that
	// consumes it) and prunes consumed bits as intervals route. A shard
	// of a soft-capped fleet is started with the same store wired into
	// its engine's BurstGate; a daemon with no coordinated bursts leaves
	// it nil and rejects lease posts.
	Leases *sim.LeaseStore
}

// Server is the powerrouted HTTP daemon state. The guarded_by
// annotations are enforced by powerroute-vet's lockcheck analyzer.
type Server struct {
	mu    sync.Mutex
	eng   Engine        // guarded_by: mu
	snap  *sim.Snapshot // guarded_by: mu — reusable snapshot scratch; handlers extract what they render before unlocking
	fleet *cluster.Fleet
	step  time.Duration
	delay time.Duration

	hubClusters map[string][]int
	feed        *shardedFeed    // locks itself: commitMu for writers, atomic view for readers
	leases      *sim.LeaseStore // locks itself; nil unless this daemon brokers burst-token leases

	// scratch buffers for the demand path.
	rowBuf  []float64   // guarded_by: mu
	byteBuf []byte      // guarded_by: mu
	jobBuf  []sched.Job // guarded_by: mu — decoded deferrable jobs for one row

	// clusterIdx maps cluster codes to engine-local indices for the JSON
	// job ingest path (read-only after New).
	clusterIdx map[string]int

	reqMu    sync.Mutex
	requests map[string]uint64 // guarded_by: reqMu
}

// New builds a Server around an engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: config missing engine")
	}
	fleet := cfg.Engine.Fleet()
	s := &Server{
		eng:         cfg.Engine,
		leases:      cfg.Leases,
		fleet:       fleet,
		step:        cfg.Engine.StepSize(),
		delay:       cfg.Engine.ReactionDelay(),
		hubClusters: make(map[string][]int),
		rowBuf:      make([]float64, len(fleet.States)),
		requests:    make(map[string]uint64),
		clusterIdx:  make(map[string]int, len(fleet.Clusters)),
	}
	for c, cl := range fleet.Clusters {
		s.hubClusters[cl.HubID] = append(s.hubClusters[cl.HubID], c)
		s.clusterIdx[cl.Code] = c
	}
	s.feed = newShardedFeed(fleet, s.hubClusters)
	return s, nil
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/prices", s.counted("prices", s.handlePrices))
	mux.HandleFunc("POST /v1/demand", s.counted("demand", s.handleDemand))
	mux.HandleFunc("POST /v1/leases", s.counted("leases", s.handleLeases))
	mux.HandleFunc("GET /v1/assignments", s.counted("assignments", s.handleAssignments))
	mux.HandleFunc("GET /v1/status", s.counted("status", s.handleStatus))
	mux.HandleFunc("GET /v1/world", s.counted("world", s.handleWorld))
	mux.HandleFunc("GET /v1/checkpoint", s.counted("checkpoint", s.handleCheckpointGet))
	mux.HandleFunc("PUT /v1/checkpoint", s.counted("checkpoint", s.handleCheckpointPut))
	mux.HandleFunc("GET /metrics", s.counted("metrics", s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.counted("healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	return mux
}

// Finalize closes the engine's books and returns the final Result (for a
// shutdown summary). The server keeps answering reads afterwards; further
// demand ingestion fails.
func (s *Server) Finalize() (*sim.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Finalize()
}

func (s *Server) counted(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reqMu.Lock()
		s.requests[name]++
		s.reqMu.Unlock()
		h(w, r)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// batchError reports a mid-batch demand failure. Rows before the failing
// one are already committed to the engine, so the response carries the
// routed count and the engine's next expected interval — everything a
// client needs to resume instead of replaying a now-misaligned batch.
//
//lint:held mu callers lock s.mu for the whole batch
func (s *Server) batchError(w http.ResponseWriter, code, routed int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error":  fmt.Sprintf(format, args...),
		"routed": routed,
		"next":   s.eng.Next(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// --- price ingestion -------------------------------------------------------

// pricePost is the JSON body of POST /v1/prices: the hub prices taking
// effect at an instant. Hubs that host no cluster are ignored; every
// cluster must be covered once the overlay on the previous vector is
// applied.
type pricePost struct {
	At     time.Time          `json:"at"`
	Prices map[string]float64 `json:"prices"`
}

func (s *Server) handlePrices(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == ContentTypePricesBatch {
		s.handlePricesBatch(w, r)
		return
	}
	var post pricePost
	if err := json.NewDecoder(r.Body).Decode(&post); err != nil {
		httpError(w, http.StatusBadRequest, "decoding price post: %v", err)
		return
	}
	if post.At.IsZero() {
		httpError(w, http.StatusBadRequest, "price post missing \"at\"")
		return
	}
	if len(post.Prices) == 0 {
		httpError(w, http.StatusBadRequest, "price post missing \"prices\"")
		return
	}
	// Price ingestion never touches the engine lock: the sharded feed
	// validates, records, and publishes under its own commit lock.
	ignored, entries, code, err := s.feed.ingest(post.At.UTC(), post.Prices)
	if err != nil {
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, map[string]any{
		"at":           post.At.UTC(),
		"ignored_hubs": ignored,
		"feed_entries": entries,
	})
}

func (s *Server) handlePricesBatch(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReaderSize(r.Body, 1<<16)
	h, err := ParseBatchHeader(br)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if h.Kind != "prices" {
		httpError(w, http.StatusBadRequest, "batch kind %q on /v1/prices", h.Kind)
		return
	}
	// Stage the whole payload lock-free, then commit it atomically: a
	// batch that fails to decode or validate publishes nothing.
	flat, rowIdx, err := decodeRows(br, h.Rows, h.Cols)
	if err != nil {
		httpError(w, http.StatusBadRequest, "price row %d: %v", rowIdx, err)
		return
	}
	entries, code, err := s.feed.ingestBatch(h, flat)
	if err != nil {
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, map[string]any{
		"ingested":     h.Rows,
		"feed_entries": entries,
	})
}

// --- burst-token leases ----------------------------------------------------

// leasePost is the JSON body of POST /v1/leases: a contiguous window of
// fleet burst-gate bits, one per interval, starting at absolute step
// From. The coordinator derives each bit from the full fleet demand row
// and posts the window before the demand chunk that consumes it.
type leasePost struct {
	From  int    `json:"from"`
	Gates []bool `json:"gates"`
}

func (s *Server) handleLeases(w http.ResponseWriter, r *http.Request) {
	if s.leases == nil {
		httpError(w, http.StatusBadRequest, "server: this daemon brokers no burst-token leases")
		return
	}
	var post leasePost
	if err := json.NewDecoder(r.Body).Decode(&post); err != nil {
		httpError(w, http.StatusBadRequest, "decoding lease post: %v", err)
		return
	}
	// Window-shape violations (gaps, rewinds) are ordering conflicts with
	// the stored window, like a misaligned demand batch.
	if err := s.leases.Post(post.From, post.Gates); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, map[string]any{
		"from":   post.From,
		"posted": len(post.Gates),
	})
}

// pruneLeases reclaims lease bits the engine has consumed. Expired
// windows can never be read again (the engine only asks for its current
// step), so dropping them bounds the store across long replays.
//
//lint:held mu callers read the engine cursor under s.mu
func (s *Server) pruneLeases() {
	if s.leases != nil {
		s.leases.Prune(s.eng.StepsRun())
	}
}

// --- demand ingestion / routing --------------------------------------------

// demandPost is the JSON body of POST /v1/demand: one interval's per-state
// demand (fleet state order; GET /v1/world lists the codes). A zero At
// defaults to the engine's next expected interval. Jobs optionally
// attaches deferrable batch jobs arriving with the interval; they queue
// before the interval routes, so a job may start executing immediately.
type demandPost struct {
	At    time.Time `json:"at"`
	Rates []float64 `json:"rates"`
	Jobs  []jobPost `json:"jobs,omitempty"`
}

// jobPost is one deferrable batch job in a JSON demand post.
type jobPost struct {
	// Cluster is the home cluster's code (GET /v1/world lists them).
	Cluster string `json:"cluster"`
	// DeadlineSteps is the deadline as intervals after this one; 1 means
	// the job must run entirely in the posted interval.
	DeadlineSteps int     `json:"deadline_steps"`
	EnergyKWh     float64 `json:"energy_kwh"`
	MinFraction   float64 `json:"min_fraction"`
}

// jobQueuer is the optional engine capability behind job ingest. The
// single-world sim.Engine implements it; the in-process parallel-shard
// engine does not (jobs would need cross-shard ownership routing), so
// job posts against it fail with a clear 400.
type jobQueuer interface {
	QueueJobs([]sched.Job) error
}

// queueJobs converts and enqueues one row's jobs under the engine lock.
//
//lint:held mu callers lock s.mu for the posting interval
func (s *Server) queueJobs(jobs []jobPost) error {
	jq, ok := s.eng.(jobQueuer)
	if !ok {
		return fmt.Errorf("server: this engine cannot accept batch jobs")
	}
	s.jobBuf = s.jobBuf[:0]
	base := s.eng.StepsRun()
	for i, j := range jobs {
		c, ok := s.clusterIdx[j.Cluster]
		if !ok {
			return fmt.Errorf("server: job %d names unknown cluster %q", i, j.Cluster)
		}
		if j.DeadlineSteps <= 0 {
			return fmt.Errorf("server: job %d has non-positive deadline %d steps", i, j.DeadlineSteps)
		}
		s.jobBuf = append(s.jobBuf, sched.Job{
			Cluster:     c,
			Arrival:     base,
			Deadline:    base + j.DeadlineSteps,
			EnergyKWh:   j.EnergyKWh,
			MinFraction: j.MinFraction,
		})
	}
	return jq.QueueJobs(s.jobBuf)
}

func (s *Server) handleDemand(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == ContentTypeDemandBatch {
		s.handleDemandBatch(w, r)
		return
	}
	var post demandPost
	if err := json.NewDecoder(r.Body).Decode(&post); err != nil {
		httpError(w, http.StatusBadRequest, "decoding demand post: %v", err)
		return
	}
	if oldest, ok := s.routeJSON(w, post); ok {
		// Prune off the engine lock: it only takes the feed's commit lock.
		s.feed.prune(oldest)
	}
}

// routeJSON routes one JSON-posted interval under the engine lock and
// writes the response. It returns the oldest future lookup instant so the
// caller can prune the feed after the lock is released.
func (s *Server) routeJSON(w http.ResponseWriter, post demandPost) (oldest time.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	at := post.At.UTC()
	if post.At.IsZero() {
		at = s.eng.Next()
	} else if !at.Equal(s.eng.Next()) {
		httpError(w, http.StatusConflict, "demand at %v, engine expects %v", at, s.eng.Next())
		return time.Time{}, false
	}
	if len(post.Jobs) > 0 {
		if err := s.queueJobs(post.Jobs); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return time.Time{}, false
		}
	}
	if code, err := s.routeOne(at, post.Rates); err != nil {
		httpError(w, code, "%v", err)
		return time.Time{}, false
	}
	s.pruneLeases()
	snap := s.eng.SnapshotInto(s.snap)
	s.snap = snap
	writeJSON(w, map[string]any{
		"routed":         1,
		"at":             at,
		"steps":          snap.Steps,
		"total_cost_usd": float64(snap.TotalCost),
	})
	return s.eng.Next().Add(-s.delay), true
}

// routeOne advances the engine one interval at `at` using the freshest
// published prices (decision prices lagged by the reaction delay). Both
// lookups resolve against one atomically-loaded view, so a concurrent
// price commit can never tear an interval's bill/decision pair.
//
//lint:held mu callers lock s.mu around each routed interval
func (s *Server) routeOne(at time.Time, rates []float64) (int, error) {
	v := s.feed.current()
	bill := v.lookup(at)
	if bill == nil {
		return http.StatusConflict, fmt.Errorf("server: no prices ingested yet")
	}
	decision := v.lookup(at.Add(-s.delay))
	if err := s.eng.Step(at, sim.StepPrices{Decision: decision, Bill: bill}, rates); err != nil {
		return http.StatusBadRequest, err
	}
	return 0, nil
}

func (s *Server) handleDemandBatch(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReaderSize(r.Body, 1<<16)
	h, err := ParseBatchHeader(br)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if h.Kind != "demand" {
		httpError(w, http.StatusBadRequest, "batch kind %q on /v1/demand", h.Kind)
		return
	}
	if h.Jobs {
		if oldest, ok := s.routeBatchJobs(w, br, h); ok {
			s.feed.prune(oldest)
		}
		return
	}
	if oldest, ok := s.routeBatch(w, br, h); ok {
		s.feed.prune(oldest)
	}
}

// routeBatchJobs routes a jobs=1 demand batch: each row is a uint32 job
// count, that many fixed-size job records, then the rate columns. Rows
// are variable-length, so this path reads per row instead of chunking;
// the plain routeBatch fast path is untouched for job-free replays. Jobs
// queue before their row routes (matching the JSON path), so a mid-batch
// failure leaves rows < routed committed along with their jobs.
func (s *Server) routeBatchJobs(w http.ResponseWriter, br *bufio.Reader, h *BatchHeader) (oldest time.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, isQueuer := s.eng.(jobQueuer); !isQueuer {
		httpError(w, http.StatusBadRequest, "server: this engine cannot accept batch jobs")
		return time.Time{}, false
	}
	if h.Cols != len(s.fleet.States) {
		httpError(w, http.StatusBadRequest, "batch has %d state columns, fleet has %d", h.Cols, len(s.fleet.States))
		return time.Time{}, false
	}
	if h.Step != s.step {
		httpError(w, http.StatusBadRequest, "batch step %v, engine step %v", h.Step, s.step)
		return time.Time{}, false
	}
	if next := s.eng.Next(); !h.Start.Equal(next) {
		httpError(w, http.StatusConflict, "batch starts %v, engine expects %v", h.Start, next)
		return time.Time{}, false
	}
	rowBytes := h.Cols * 8
	if cap(s.byteBuf) < rowBytes {
		s.byteBuf = make([]byte, rowBytes)
	}
	var head [4]byte
	nc := len(s.fleet.Clusters)
	for routed := 0; routed < h.Rows; routed++ {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			s.batchError(w, http.StatusBadRequest, routed, "demand row %d: server: batch body truncated: %v", routed, err)
			return time.Time{}, false
		}
		count := int(binary.LittleEndian.Uint32(head[:]))
		if count > maxJobsPerRow {
			s.batchError(w, http.StatusBadRequest, routed, "demand row %d: %d jobs exceed the per-row cap", routed, count)
			return time.Time{}, false
		}
		s.jobBuf = s.jobBuf[:0]
		if count > 0 {
			if cap(s.byteBuf) < count*wireJobBytes {
				s.byteBuf = make([]byte, count*wireJobBytes)
			}
			jb := s.byteBuf[:count*wireJobBytes]
			if _, err := io.ReadFull(br, jb); err != nil {
				s.batchError(w, http.StatusBadRequest, routed, "demand row %d: server: batch body truncated: %v", routed, err)
				return time.Time{}, false
			}
			base := s.eng.StepsRun()
			for i := 0; i < count; i++ {
				wj := decodeWireJob(jb[i*wireJobBytes:])
				if int(wj.Cluster) >= nc {
					s.batchError(w, http.StatusBadRequest, routed, "demand row %d: job %d targets cluster %d of %d", routed, i, wj.Cluster, nc)
					return time.Time{}, false
				}
				if wj.DeadlineSteps == 0 {
					s.batchError(w, http.StatusBadRequest, routed, "demand row %d: job %d has zero deadline steps", routed, i)
					return time.Time{}, false
				}
				s.jobBuf = append(s.jobBuf, sched.Job{
					Cluster:     int(wj.Cluster),
					Arrival:     base,
					Deadline:    base + int(wj.DeadlineSteps),
					EnergyKWh:   wj.EnergyKWh,
					MinFraction: wj.MinFraction,
				})
			}
			if err := s.eng.(jobQueuer).QueueJobs(s.jobBuf); err != nil {
				s.batchError(w, http.StatusBadRequest, routed, "demand row %d: %v", routed, err)
				return time.Time{}, false
			}
		}
		b := s.byteBuf[:rowBytes]
		if _, err := io.ReadFull(br, b); err != nil {
			s.batchError(w, http.StatusBadRequest, routed, "demand row %d: server: batch body truncated: %v", routed, err)
			return time.Time{}, false
		}
		if derr := DecodeRow(b, s.rowBuf); derr != nil {
			s.batchError(w, http.StatusBadRequest, routed, "demand row %d: %v", routed, derr)
			return time.Time{}, false
		}
		at := h.Start.Add(time.Duration(routed) * h.Step)
		if code, rerr := s.routeOne(at, s.rowBuf); rerr != nil {
			s.batchError(w, code, routed, "demand row %d: %v", routed, rerr)
			return time.Time{}, false
		}
	}
	s.pruneLeases()
	snap := s.eng.SnapshotInto(s.snap)
	s.snap = snap
	writeJSON(w, map[string]any{
		"routed":         h.Rows,
		"steps":          snap.Steps,
		"total_cost_usd": float64(snap.TotalCost),
	})
	return s.eng.Next().Add(-s.delay), true
}

// routeBatch decodes and routes one demand batch under the engine lock.
// Rows stream through a bounded chunk of the byte scratch and are decoded
// straight off it — no per-row reads, no per-row allocation. Rows commit
// as they route: a mid-batch failure reports the resume point (see
// batchError), and truncation after k complete rows still commits k.
func (s *Server) routeBatch(w http.ResponseWriter, br *bufio.Reader, h *BatchHeader) (oldest time.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h.Cols != len(s.fleet.States) {
		httpError(w, http.StatusBadRequest, "batch has %d state columns, fleet has %d", h.Cols, len(s.fleet.States))
		return time.Time{}, false
	}
	if h.Step != s.step {
		httpError(w, http.StatusBadRequest, "batch step %v, engine step %v", h.Step, s.step)
		return time.Time{}, false
	}
	if next := s.eng.Next(); !h.Start.Equal(next) {
		httpError(w, http.StatusConflict, "batch starts %v, engine expects %v", h.Start, next)
		return time.Time{}, false
	}
	rowBytes := h.Cols * 8
	chunk := max(1, (1<<16)/rowBytes)
	if cap(s.byteBuf) < chunk*rowBytes {
		s.byteBuf = make([]byte, chunk*rowBytes)
	}
	routed := 0
	for routed < h.Rows {
		n := min(chunk, h.Rows-routed)
		b := s.byteBuf[:n*rowBytes]
		read, err := io.ReadFull(br, b)
		complete := read / rowBytes
		for i := 0; i < complete; i++ {
			if derr := DecodeRow(b[i*rowBytes:(i+1)*rowBytes], s.rowBuf); derr != nil {
				s.batchError(w, http.StatusBadRequest, routed, "demand row %d: %v", routed, derr)
				return time.Time{}, false
			}
			at := h.Start.Add(time.Duration(routed) * h.Step)
			if code, rerr := s.routeOne(at, s.rowBuf); rerr != nil {
				s.batchError(w, code, routed, "demand row %d: %v", routed, rerr)
				return time.Time{}, false
			}
			routed++
		}
		if err != nil || complete < n {
			s.batchError(w, http.StatusBadRequest, routed, "demand row %d: server: batch body truncated: %v", routed, err)
			return time.Time{}, false
		}
	}
	s.pruneLeases()
	snap := s.eng.SnapshotInto(s.snap)
	s.snap = snap
	writeJSON(w, map[string]any{
		"routed":         h.Rows,
		"steps":          snap.Steps,
		"total_cost_usd": float64(snap.TotalCost),
	})
	return s.eng.Next().Add(-s.delay), true
}

// --- read endpoints --------------------------------------------------------

type clusterStatus struct {
	Code           string  `json:"code"`
	Hub            string  `json:"hub"`
	RateHits       float64 `json:"rate_hits_per_s"`
	PeakRateHits   float64 `json:"peak_rate_hits_per_s"`
	CostUSD        float64 `json:"cost_usd"`
	PeakGridKW     float64 `json:"peak_grid_kw,omitempty"`
	BatterySoCKWh  float64 `json:"battery_soc_kwh,omitempty"`
	BatchQueuedKWh float64 `json:"batch_queued_kwh,omitempty"`
	// Burst-token lease traffic, present only on burst-coordinated fleets.
	BurstTokensUsed    int `json:"burst_tokens_used,omitempty"`
	BurstTokensExpired int `json:"burst_tokens_expired,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	payload := s.statusPayload()
	writeJSON(w, payload)
}

// statusPayload renders the status body under the engine lock; the
// payload copies everything out of the snapshot scratch, so the caller
// can serialize it after the lock is released.
func (s *Server) statusPayload() map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.eng.SnapshotInto(s.snap)
	s.snap = snap
	return StatusPayload(s.fleet, snap, s.feed.entries())
}

// StatusPayload renders the /v1/status response body for an engine
// snapshot. Exported for the shard coordinator, which serves the exact
// same payload from a merged fleet-wide snapshot — the byte-for-byte
// comparison the shard-merge CI gate rests on.
func StatusPayload(fleet *cluster.Fleet, snap *sim.Snapshot, feedEntries int) map[string]any {
	clusters := make([]clusterStatus, len(fleet.Clusters))
	for c, cl := range fleet.Clusters {
		cs := clusterStatus{
			Code:         cl.Code,
			Hub:          cl.HubID,
			RateHits:     snap.ClusterRate[c],
			PeakRateHits: snap.PeakRate[c],
			CostUSD:      float64(snap.ClusterCost[c]),
		}
		if snap.PeakGridKW != nil {
			cs.PeakGridKW = snap.PeakGridKW[c]
		}
		if snap.SoCKWh != nil {
			cs.BatterySoCKWh = snap.SoCKWh[c]
		}
		if snap.BatchQueuedKWh != nil {
			cs.BatchQueuedKWh = snap.BatchQueuedKWh[c]
		}
		if snap.BurstLeases != nil {
			cs.BurstTokensUsed = snap.BurstLeases[c].TokensUsed
			cs.BurstTokensExpired = snap.BurstLeases[c].TokensExpired
		}
		clusters[c] = cs
	}
	resp := map[string]any{
		"policy":               snap.Policy,
		"steps":                snap.Steps,
		"next":                 snap.Next,
		"total_cost_usd":       float64(snap.TotalCost),
		"energy_cost_usd":      float64(snap.EnergyCost),
		"demand_charge_usd":    float64(snap.DemandCharge),
		"total_energy_mwh":     snap.TotalEnergy.MegawattHours(),
		"overload_hit_seconds": snap.OverloadHitSeconds,
		"price_feed_entries":   feedEntries,
		"clusters":             clusters,
	}
	if !snap.At.IsZero() {
		resp["at"] = snap.At
	}
	if snap.SoCKWh != nil {
		resp["storage_policy"] = snap.StoragePolicy
		resp["storage_bought_kwh"] = snap.StorageBoughtKWh
		resp["storage_served_kwh"] = snap.StorageServedKWh
	}
	if snap.TotalCarbonKg != 0 {
		resp["carbon_kg"] = snap.TotalCarbonKg
	}
	if snap.BatchQueuedKWh != nil {
		var queued float64
		for _, kwh := range snap.BatchQueuedKWh {
			queued += kwh
		}
		resp["batch_queued_kwh"] = queued
		resp["batch_served_kwh"] = snap.BatchServedKWh
		resp["batch_shed_kwh"] = snap.BatchShedKWh
		resp["batch_deferred_kwh_steps"] = snap.BatchDeferredKWhSteps
	}
	if snap.BurstLeases != nil {
		var granted, used, expired int
		for _, l := range snap.BurstLeases {
			granted += l.TokensGranted
			used += l.TokensUsed
			expired += l.TokensExpired
		}
		resp["burst_leases"] = map[string]int{
			"tokens_granted": granted,
			"tokens_used":    used,
			"tokens_expired": expired,
		}
	}
	return resp
}

func (s *Server) handleAssignments(w http.ResponseWriter, r *http.Request) {
	resp := s.assignmentsPayload(r.URL.Query().Get("matrix") == "1")
	writeJSON(w, resp)
}

// assignmentsPayload builds the assignments body under the engine lock,
// copying everything it renders out of the snapshot scratch.
func (s *Server) assignmentsPayload(wantMatrix bool) map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.eng.SnapshotInto(s.snap)
	s.snap = snap
	var matrix [][]float64
	if wantMatrix {
		matrix = s.eng.Assignments(nil)
	}

	type row struct {
		Code     string  `json:"code"`
		RateHits float64 `json:"rate_hits_per_s"`
		Share    float64 `json:"share"`
	}
	var total float64
	for _, rate := range snap.ClusterRate {
		total += rate
	}
	clusters := make([]row, len(s.fleet.Clusters))
	for c, cl := range s.fleet.Clusters {
		share := 0.0
		if total > 0 {
			share = snap.ClusterRate[c] / total
		}
		clusters[c] = row{Code: cl.Code, RateHits: snap.ClusterRate[c], Share: share}
	}
	resp := map[string]any{
		"steps":           snap.Steps,
		"total_rate_hits": total,
		"clusters":        clusters,
	}
	if !snap.At.IsZero() {
		resp["at"] = snap.At
	}
	if matrix != nil {
		states := make([]string, len(s.fleet.States))
		for i, st := range s.fleet.States {
			states[i] = st.Code
		}
		resp["states"] = states
		resp["matrix"] = matrix
	}
	return resp
}

func (s *Server) handleWorld(w http.ResponseWriter, r *http.Request) {
	type clusterInfo struct {
		Code     string  `json:"code"`
		Hub      string  `json:"hub"`
		Servers  int     `json:"servers"`
		Capacity float64 `json:"capacity_hits_per_s"`
	}
	clusters := make([]clusterInfo, len(s.fleet.Clusters))
	for c, cl := range s.fleet.Clusters {
		clusters[c] = clusterInfo{Code: cl.Code, Hub: cl.HubID, Servers: cl.Servers, Capacity: float64(cl.Capacity)}
	}
	states := make([]string, len(s.fleet.States))
	for i, st := range s.fleet.States {
		states[i] = st.Code
	}
	policy, storagePolicy, start, worldHash, bursts := s.worldInfo()
	resp := map[string]any{
		"policy":                 policy,
		"start":                  start,
		"step_seconds":           s.step.Seconds(),
		"reaction_delay_seconds": s.delay.Seconds(),
		"world_hash":             worldHash,
		"clusters":               clusters,
		"states":                 states,
	}
	if storagePolicy != "" {
		resp["storage_policy"] = storagePolicy
	}
	if bursts {
		// The engine meters coordinated softcap bursts; a shard daemon
		// additionally accepts the gate-bit windows via POST /v1/leases.
		resp["fleet_bursts"] = true
		resp["lease_broker"] = s.leases != nil
	}
	writeJSON(w, resp)
}

// worldInfo reads the routing and storage policy names, start instant,
// world hash, and burst-coordination flag under the engine lock.
func (s *Server) worldInfo() (policy, storagePolicy string, start time.Time, worldHash string, bursts bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.eng.SnapshotInto(s.snap)
	s.snap = snap
	return snap.Policy, snap.StoragePolicy, s.eng.Start(), s.eng.WorldHash(), snap.BurstLeases != nil
}
