package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/routing"
	"powerroute/internal/sim"
)

// regionScenario builds the test world under a 600 km optimizer — the
// tightest threshold in the fixture fleet, splitting it into 3
// routing-closed market regions.
func regionScenario(t testing.TB, sys *core.System) sim.Scenario {
	t.Helper()
	opt, err := routing.NewPriceOptimizer(sys.Fleet, 600, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Scenario{
		Fleet:         sys.Fleet,
		Policy:        opt,
		Energy:        energy.OptimisticFuture,
		Market:        sys.Market,
		Demand:        sys.LongRun,
		Start:         sys.Market.Start,
		Steps:         sys.Market.Hours,
		Step:          time.Hour,
		ReactionDelay: sim.DefaultReactionDelay,
	}
}

// TestParallelServerMatchesSingle drives two daemons over the same world
// — one on a single engine, one on in-process parallel shards — with an
// identical request sequence, and requires every read surface to answer
// with identical bytes: the parallel split must be invisible over HTTP.
// Only checkpoint restore differs by design (409 on the parallel daemon),
// while the parallel daemon's merged checkpoint restores into the
// single-engine daemon — durable state is portable across the flag.
func TestParallelServerMatchesSingle(t *testing.T) {
	sys := testWorld(t)

	singleEng, err := sim.NewEngine(regionScenario(t, sys))
	if err != nil {
		t.Fatal(err)
	}
	sc := regionScenario(t, sys)
	partition, err := sim.PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	if partition.Shards() != 3 {
		t.Fatalf("fixture world splits into %d regions at 600 km, want 3", partition.Shards())
	}
	parEng, err := sim.NewParallelEngine(sc, partition)
	if err != nil {
		t.Fatal(err)
	}

	servers := make([]*httptest.Server, 2)
	for i, eng := range []Engine{singleEng, parEng} {
		srv, err := New(Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = httptest.NewServer(srv.Handler())
		t.Cleanup(servers[i].Close)
	}
	single, parallel := servers[0], servers[1]

	// Identical traffic: interleaved price vectors and hourly demand.
	start := sys.Market.Start
	ns := len(sys.Fleet.States)
	demand := flatDemand(ns, 900)
	const steps = 12
	for _, ts := range servers {
		postJSON(t, ts.URL+"/v1/prices", pricePost{At: start, Prices: hubPrices(sys, 30)}, http.StatusOK)
		for i := 0; i < steps; i++ {
			at := start.Add(time.Duration(i) * time.Hour)
			if i%3 == 0 && i > 0 {
				postJSON(t, ts.URL+"/v1/prices", pricePost{At: at, Prices: hubPrices(sys, 28+float64(i))}, http.StatusOK)
			}
			postJSON(t, ts.URL+"/v1/demand", demandPost{At: at, Rates: demand}, http.StatusOK)
		}
	}

	for _, path := range []string{"/v1/status", "/v1/assignments?matrix=1", "/v1/world"} {
		sb := get(t, single.URL+path, http.StatusOK)
		pb := get(t, parallel.URL+path, http.StatusOK)
		if !bytes.Equal(sb, pb) {
			t.Errorf("GET %s differs across engines:\nsingle   %s\nparallel %s", path, sb, pb)
		}
	}

	// Restore is single-engine only…
	cp := get(t, parallel.URL+"/v1/checkpoint", http.StatusOK)
	req, err := http.NewRequest(http.MethodPut, parallel.URL+"/v1/checkpoint", bytes.NewReader(cp))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("PUT /v1/checkpoint on parallel daemon: got %d, want 409", resp.StatusCode)
	}
	// …but the parallel daemon's merged checkpoint restores into the
	// single-engine daemon at the same cursor.
	req, err = http.NewRequest(http.MethodPut, single.URL+"/v1/checkpoint", bytes.NewReader(cp))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var restored struct {
		RestoredSteps int `json:"restored_steps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || restored.RestoredSteps != steps {
		t.Fatalf("restoring merged checkpoint: got %d, restored_steps %d (want 200 at %d steps)",
			resp.StatusCode, restored.RestoredSteps, steps)
	}
}
