package server

import (
	"bufio"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestParseBatchHeaderTrailingSeparator pins the parser's handling of
// trailing separators: extra spaces between fields (and before the
// newline) are field separators and must be tolerated, while a trailing
// comma inside the hub list splits to an empty hub name and must be
// rejected — a silent drop would misalign every price column after it.
func TestParseBatchHeaderTrailingSeparator(t *testing.T) {
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	for _, tc := range []struct {
		name    string
		header  string
		wantErr string
	}{
		{
			"trailing-space",
			fmt.Sprintf("%s kind=demand start=%d step=%d rows=2 cols=3 \n", batchMagic, start, int64(time.Hour)),
			"",
		},
		{
			"double-space",
			fmt.Sprintf("%s kind=prices  start=%d step=%d rows=1 cols=1 hubs=NYC\n", batchMagic, start, int64(time.Hour)),
			"",
		},
		{
			"trailing-comma-hubs",
			fmt.Sprintf("%s kind=prices start=%d step=%d rows=1 cols=3 hubs=MISO,NYC,\n", batchMagic, start, int64(time.Hour)),
			"empty hub name",
		},
		{
			"lone-comma-hubs",
			fmt.Sprintf("%s kind=prices start=%d step=%d rows=1 cols=2 hubs=,\n", batchMagic, start, int64(time.Hour)),
			"empty hub name",
		},
		{
			// A bare "hubs" with no "=" is a malformed field, not a
			// missing hub list.
			"separator-no-value",
			fmt.Sprintf("%s kind=prices start=%d step=%d rows=1 cols=1 hubs\n", batchMagic, start, int64(time.Hour)),
			"malformed batch header field",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h, err := ParseBatchHeader(bufio.NewReader(strings.NewReader(tc.header)))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid header rejected: %v", err)
				}
				if h.Rows <= 0 || h.Cols <= 0 {
					t.Fatalf("parsed dimensions %dx%d", h.Rows, h.Cols)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}
