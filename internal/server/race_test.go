package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestConcurrentPricesDemandStatus drives the three hot endpoints from
// independent goroutines — a price feeder posting JSON vectors at its own
// cadence, the demand loop routing intervals, and status scrapers — the
// workload the sharded feed exists for, under -race in CI. Every
// response must be indistinguishable from some serial interleaving of
// the same requests ("single-mutex semantics"): prices land in
// chronological order, each status body is one consistent snapshot
// (steps never go backwards between reads, positive steps imply a
// positive bill), and the final step count equals what the demand loop
// ingested.
func TestConcurrentPricesDemandStatus(t *testing.T) {
	_, ts, sys := testServer(t)
	start := sys.Market.Start
	ns := len(sys.Fleet.States)
	nc := len(sys.Fleet.Clusters)
	const steps = 40

	// Seed a covering vector so routing can start immediately.
	postJSON(t, ts.URL+"/v1/prices", pricePost{At: start, Prices: hubPrices(sys, 30)}, http.StatusOK)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	// Price feeder: strictly increasing instants on a finer cadence than
	// the demand intervals, so commits land between routed rows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; !stopped(); i++ {
			at := start.Add(time.Duration(i) * time.Minute)
			body, err := json.Marshal(pricePost{At: at, Prices: hubPrices(sys, 30+float64(i%17))})
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(ts.URL+"/v1/prices", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			out, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent price post %d: got %d: %s", i, resp.StatusCode, out)
				return
			}
		}
	}()

	// Status scrapers: each sees monotonically advancing, internally
	// consistent snapshots.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastSteps := 0
			for !stopped() {
				resp, err := http.Get(ts.URL + "/v1/status")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status: got %d: %s", resp.StatusCode, body)
					return
				}
				var status struct {
					Steps       int     `json:"steps"`
					Cost        float64 `json:"total_cost_usd"`
					FeedEntries int     `json:"price_feed_entries"`
					Clusters    []json.RawMessage
				}
				if err := json.Unmarshal(body, &status); err != nil {
					t.Errorf("status body not JSON: %v: %s", err, body)
					return
				}
				if err := func() error {
					if status.Steps < lastSteps {
						return fmt.Errorf("steps went backwards: %d after %d", status.Steps, lastSteps)
					}
					if status.Steps > 0 && status.Cost <= 0 {
						return fmt.Errorf("torn snapshot: %d steps but cost %v", status.Steps, status.Cost)
					}
					if status.FeedEntries < 1 {
						return fmt.Errorf("feed entries %d, want >= 1", status.FeedEntries)
					}
					if len(status.Clusters) != nc {
						return fmt.Errorf("%d clusters in status, want %d", len(status.Clusters), nc)
					}
					return nil
				}(); err != nil {
					t.Error(err)
					return
				}
				lastSteps = status.Steps
			}
		}()
	}

	// Demand loop: the sequential spine the concurrent traffic runs
	// against.
	demand := flatDemand(ns, 1500)
	for i := 0; i < steps; i++ {
		at := start.Add(time.Duration(i) * time.Hour)
		postJSON(t, ts.URL+"/v1/demand", demandPost{At: at, Rates: demand}, http.StatusOK)
	}
	close(stop)
	wg.Wait()

	var status struct {
		Steps int     `json:"steps"`
		Cost  float64 `json:"total_cost_usd"`
	}
	if err := json.Unmarshal(get(t, ts.URL+"/v1/status", http.StatusOK), &status); err != nil {
		t.Fatal(err)
	}
	if status.Steps != steps || status.Cost <= 0 {
		t.Fatalf("final status %+v, want %d steps and positive cost", status, steps)
	}
}
