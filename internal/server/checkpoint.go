package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"

	"powerroute/internal/sim"
)

// ContentTypeCheckpoint is the media type of an encoded engine checkpoint
// (GET/PUT /v1/checkpoint bodies).
const ContentTypeCheckpoint = "application/x-powerroute-checkpoint"

// maxCheckpointBody bounds a PUT /v1/checkpoint body. The sim decoder
// enforces its own payload cap; this just keeps a hostile request from
// buffering unbounded bytes before the decoder sees them.
const maxCheckpointBody = 1<<30 + 1<<20

// handleCheckpointGet streams an operator-driven snapshot: the engine's
// complete per-run state in the versioned checkpoint encoding. The engine
// is locked only while the in-memory checkpoint is taken; encoding and the
// response write happen outside the lock.
func (s *Server) handleCheckpointGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	cp, err := s.eng.Checkpoint()
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding checkpoint: %v", err)
		return
	}
	w.Header().Set("Content-Type", ContentTypeCheckpoint)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

// handleCheckpointPut is the operator-driven restore: the body must be a
// checkpoint of this exact world (the world hash is verified), and on
// success the serving engine is replaced by one resumed at the
// checkpoint's step cursor. The ingested price feed is cleared — it
// belonged to the replaced run — so feeders must re-post prices from
// (next − reaction delay) before routing resumes.
//
// Restore requires a single engine: a joint checkpoint cannot be split
// back into per-region engines, so a daemon running parallel shards
// answers 409 (its GET side still works — merged checkpoints restore
// into single-engine daemons).
func (s *Server) handleCheckpointPut(w http.ResponseWriter, r *http.Request) {
	cp, err := sim.DecodeCheckpoint(http.MaxBytesReader(w, r.Body, maxCheckpointBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	single, ok := s.eng.(*sim.Engine)
	if !ok {
		httpError(w, http.StatusConflict, "server: checkpoint restore is not supported while serving parallel shards; restart without -parallel-shards to restore")
		return
	}
	eng, err := sim.Restore(single.Scenario(), cp)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	s.eng = eng
	s.snap = nil
	s.feed.reset()
	writeJSON(w, map[string]any{
		"restored_steps": cp.StepsRun,
		"next":           eng.Next(),
	})
}

// WriteCheckpointFile snapshots the engine under the server lock and
// atomically persists it (temp file + rename) to path. Used by the
// daemon's periodic and on-shutdown checkpointing.
func (s *Server) WriteCheckpointFile(path string) error {
	s.mu.Lock()
	cp, err := s.eng.Checkpoint()
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	return sim.WriteCheckpointFile(path, cp)
}
