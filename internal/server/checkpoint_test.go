package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/sim"
)

// routeIntervals posts a price vector and routes n JSON demand intervals.
func routeIntervals(t *testing.T, ts *httptest.Server, sys *core.System, n int) {
	t.Helper()
	postJSON(t, ts.URL+"/v1/prices", pricePost{At: sys.Market.Start, Prices: hubPrices(sys, 30)}, http.StatusOK)
	demand := flatDemand(len(sys.Fleet.States), 1500)
	for i := 0; i < n; i++ {
		postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: demand}, http.StatusOK)
	}
}

func getCheckpoint(t *testing.T, ts *httptest.Server, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET /v1/checkpoint: got %d want %d: %s", resp.StatusCode, wantCode, body)
	}
	return body
}

func putCheckpoint(t *testing.T, ts *httptest.Server, body []byte, wantCode int) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/checkpoint", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeCheckpoint)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("PUT /v1/checkpoint: got %d want %d: %s", resp.StatusCode, wantCode, out)
	}
	return out
}

// TestCheckpointEndpointRoundTrip: GET /v1/checkpoint on a mid-run daemon
// yields a decodable snapshot at the right cursor, and PUT onto a fresh
// daemon of the same world resumes it with identical books and a cleared
// price feed.
func TestCheckpointEndpointRoundTrip(t *testing.T) {
	_, tsA, sys := testServer(t)
	routeIntervals(t, tsA, sys, 3)
	statusA := get(t, tsA.URL+"/v1/status", http.StatusOK)

	snapshot := getCheckpoint(t, tsA, http.StatusOK)
	cp, err := sim.DecodeCheckpoint(bytes.NewReader(snapshot))
	if err != nil {
		t.Fatal(err)
	}
	if cp.StepsRun != 3 {
		t.Fatalf("checkpoint at step %d, want 3", cp.StepsRun)
	}

	_, tsB, _ := testServer(t)
	out := putCheckpoint(t, tsB, snapshot, http.StatusOK)
	var restored struct {
		RestoredSteps int       `json:"restored_steps"`
		Next          time.Time `json:"next"`
	}
	if err := json.Unmarshal(out, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.RestoredSteps != 3 {
		t.Fatalf("restored_steps = %d, want 3", restored.RestoredSteps)
	}
	if want := sys.Market.Start.Add(3 * time.Hour); !restored.Next.Equal(want) {
		t.Fatalf("next = %v, want %v", restored.Next, want)
	}

	// Identical books — compare the full status documents, modulo the
	// price feed (cleared by restore so feeders must re-post).
	statusB := get(t, tsB.URL+"/v1/status", http.StatusOK)
	strip := func(b []byte) map[string]any {
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "price_feed_entries")
		return m
	}
	a, b := strip(statusA), strip(statusB)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("restored status diverges:\nA: %s\nB: %s", aj, bj)
	}

	// The restored daemon keeps routing: re-post the price lookback and
	// the next interval succeeds at the restored cursor.
	routeIntervals(t, tsB, sys, 1)
}

// TestCheckpointEndpointRejections: garbage bodies, checkpoints from a
// different world, and snapshots of a finalized engine are all refused.
func TestCheckpointEndpointRejections(t *testing.T) {
	srv, ts, sys := testServer(t)
	routeIntervals(t, ts, sys, 2)
	snapshot := getCheckpoint(t, ts, http.StatusOK)

	if body := putCheckpoint(t, ts, []byte("definitely not a checkpoint"), http.StatusBadRequest); !bytes.Contains(body, []byte("checkpoint")) {
		t.Errorf("garbage PUT error unhelpful: %s", body)
	}

	// Truncated snapshot: atomic-write discipline means this can only be
	// a corrupt copy; it must never restore.
	putCheckpoint(t, ts, snapshot[:len(snapshot)-7], http.StatusBadRequest)

	// A daemon over a different world (2-month market) must refuse the
	// 1-month world's checkpoint on its world hash.
	sysOther, err := core.NewSystem(core.Options{Seed: 42, MarketMonths: 2, TraceDays: 7})
	if err != nil {
		t.Fatal(err)
	}
	srvOther, err := New(Config{Engine: testEngine(t, sysOther)})
	if err != nil {
		t.Fatal(err)
	}
	tsOther := httptest.NewServer(srvOther.Handler())
	defer tsOther.Close()
	if body := putCheckpoint(t, tsOther, snapshot, http.StatusConflict); !bytes.Contains(body, []byte("mismatch")) &&
		!bytes.Contains(body, []byte("differs")) {
		t.Errorf("foreign-world PUT error unhelpful: %s", body)
	}

	if _, err := srv.Finalize(); err != nil {
		t.Fatal(err)
	}
	body := getCheckpoint(t, ts, http.StatusConflict)
	if !strings.Contains(string(body), "finalized") {
		t.Errorf("finalized GET error unhelpful: %s", body)
	}
}

// TestWriteCheckpointFile: the daemon-side periodic writer produces a file
// that restores into an engine at the server's cursor.
func TestWriteCheckpointFile(t *testing.T) {
	srv, ts, sys := testServer(t)
	routeIntervals(t, ts, sys, 2)
	path := t.TempDir() + "/checkpoint.ckpt"
	if err := srv.WriteCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	cp, err := sim.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.StepsRun != 2 {
		t.Fatalf("file checkpoint at step %d, want 2", cp.StepsRun)
	}
	eng, err := sim.Restore(testEngine(t, sys).Scenario(), cp)
	if err != nil {
		t.Fatal(err)
	}
	if eng.StepsRun() != 2 {
		t.Fatalf("restored engine at step %d, want 2", eng.StepsRun())
	}
}
