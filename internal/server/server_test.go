package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/routing"
	"powerroute/internal/sim"
	"powerroute/internal/storage"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testWorld builds the small deterministic world every server test runs
// against: 1-month market, 7-day trace (seven days cover each hour of the
// week once, so the long-run demand profile has no holes).
func testWorld(t testing.TB) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Options{Seed: 42, MarketMonths: 1, TraceDays: 7})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func testEngine(t testing.TB, sys *core.System) *sim.Engine {
	t.Helper()
	opt, err := routing.NewPriceOptimizer(sys.Fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(sim.Scenario{
		Fleet:         sys.Fleet,
		Policy:        opt,
		Energy:        energy.OptimisticFuture,
		Market:        sys.Market,
		Demand:        sys.LongRun,
		Start:         sys.Market.Start,
		Steps:         sys.Market.Hours,
		Step:          time.Hour,
		ReactionDelay: sim.DefaultReactionDelay,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func testServer(t testing.TB) (*Server, *httptest.Server, *core.System) {
	t.Helper()
	sys := testWorld(t)
	srv, err := New(Config{Engine: testEngine(t, sys)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, sys
}

// postJSON posts v and returns the response body, failing unless the
// status is wantCode.
func postJSON(t *testing.T, url string, v any, wantCode int) []byte {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: got %d want %d: %s", url, resp.StatusCode, wantCode, out)
	}
	return out
}

func get(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: got %d want %d: %s", url, resp.StatusCode, wantCode, out)
	}
	return out
}

// hubPrices builds a full JSON price map for the fleet's hubs at a flat
// price plus a per-hub offset, so every cluster is covered and prices
// differ deterministically.
func hubPrices(sys *core.System, base float64) map[string]float64 {
	prices := make(map[string]float64)
	for i, cl := range sys.Fleet.Clusters {
		prices[cl.HubID] = base + float64(i)
	}
	return prices
}

func flatDemand(n int, rate float64) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = rate
	}
	return d
}

// checkGolden compares got against testdata/<name> (rewriting it under
// -update).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/server -update` to create goldens)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenResponses pins the exact JSON every read endpoint serves after
// a deterministic two-interval session: world description, status,
// assignments (with matrix), and a routed demand response.
func TestGoldenResponses(t *testing.T) {
	_, ts, sys := testServer(t)
	start := sys.Market.Start

	postJSON(t, ts.URL+"/v1/prices", pricePost{At: start, Prices: hubPrices(sys, 30)}, http.StatusOK)
	postJSON(t, ts.URL+"/v1/prices", pricePost{At: start.Add(time.Hour), Prices: hubPrices(sys, 60)}, http.StatusOK)

	demand := flatDemand(len(sys.Fleet.States), 2000)
	postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: demand}, http.StatusOK)
	routedBody := postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: demand}, http.StatusOK)

	checkGolden(t, "demand.golden.json", routedBody)
	checkGolden(t, "world.golden.json", get(t, ts.URL+"/v1/world", http.StatusOK))
	checkGolden(t, "status.golden.json", get(t, ts.URL+"/v1/status", http.StatusOK))
	checkGolden(t, "assignments.golden.json", get(t, ts.URL+"/v1/assignments?matrix=1", http.StatusOK))
}

// TestStoragePolicyReported: a storage-configured daemon names its battery
// dispatch policy in /v1/status and /v1/world; a storage-free one omits
// the field entirely (the golden files above pin that absence).
func TestStoragePolicyReported(t *testing.T) {
	sys := testWorld(t)
	eng := testEngine(t, sys)
	sc := eng.Scenario()
	dispatch, err := storage.NewThreshold(25, 55)
	if err != nil {
		t.Fatal(err)
	}
	sc.Storage = storage.Uniform(storage.Battery{CapacityKWh: 100, MaxChargeKW: 40, MaxDischargeKW: 40}, len(sys.Fleet.Clusters), dispatch)
	stored, err := sim.NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Engine: stored})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	for _, path := range []string{"/v1/status", "/v1/world"} {
		var resp map[string]any
		if err := json.Unmarshal(get(t, ts.URL+path, http.StatusOK), &resp); err != nil {
			t.Fatal(err)
		}
		if got := resp["storage_policy"]; got != dispatch.Name() {
			t.Errorf("%s storage_policy = %v, want %q", path, got, dispatch.Name())
		}
	}
}

// TestMetrics sanity-checks the Prometheus exposition: counters present,
// steps correct, per-cluster series labeled.
func TestMetrics(t *testing.T) {
	_, ts, sys := testServer(t)
	start := sys.Market.Start
	postJSON(t, ts.URL+"/v1/prices", pricePost{At: start, Prices: hubPrices(sys, 40)}, http.StatusOK)
	postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: flatDemand(len(sys.Fleet.States), 1000)}, http.StatusOK)

	body := string(get(t, ts.URL+"/metrics", http.StatusOK))
	for _, want := range []string{
		"powerrouted_steps_total 1\n",
		"# TYPE powerrouted_cost_dollars_total counter",
		`powerrouted_cluster_rate_hits{cluster="NY"}`,
		"powerrouted_price_feed_entries 1\n",
		`powerrouted_http_requests_total{handler="demand"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestIngestErrors drives every rejection path: demand before prices,
// mis-sized demand, time regressions, malformed bodies, batch shape
// mismatches.
func TestIngestErrors(t *testing.T) {
	_, ts, sys := testServer(t)
	start := sys.Market.Start
	ns := len(sys.Fleet.States)

	// Demand with an empty feed.
	postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: flatDemand(ns, 1)}, http.StatusConflict)
	// Price post without a timestamp, without prices, and partial coverage.
	postJSON(t, ts.URL+"/v1/prices", pricePost{Prices: hubPrices(sys, 30)}, http.StatusBadRequest)
	postJSON(t, ts.URL+"/v1/prices", pricePost{At: start}, http.StatusBadRequest)
	postJSON(t, ts.URL+"/v1/prices", pricePost{At: start, Prices: map[string]float64{"NYC": 40}}, http.StatusBadRequest)

	postJSON(t, ts.URL+"/v1/prices", pricePost{At: start, Prices: hubPrices(sys, 30)}, http.StatusOK)
	// Partial update is fine once a full vector exists.
	postJSON(t, ts.URL+"/v1/prices", pricePost{At: start.Add(time.Hour), Prices: map[string]float64{"NYC": 99}}, http.StatusOK)
	// Price time regression.
	postJSON(t, ts.URL+"/v1/prices", pricePost{At: start.Add(-time.Hour), Prices: hubPrices(sys, 30)}, http.StatusConflict)

	// Mis-sized demand vector.
	postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: flatDemand(ns-1, 1)}, http.StatusBadRequest)
	// Demand at the wrong interval.
	postJSON(t, ts.URL+"/v1/demand", demandPost{At: start.Add(5 * time.Hour), Rates: flatDemand(ns, 1)}, http.StatusConflict)

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/demand", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: got %d", resp.StatusCode)
	}
}

// demandBatch builds a binary demand batch body.
func demandBatch(start time.Time, step time.Duration, rows [][]float64) *bytes.Buffer {
	var b bytes.Buffer
	if err := WriteBatchHeader(&b, "demand", start, step, len(rows), len(rows[0]), nil); err != nil {
		panic(err)
	}
	for _, row := range rows {
		b.Write(AppendRow(nil, row))
	}
	return &b
}

// TestBinaryBatch routes a binary demand batch end to end and checks the
// rejection paths (bad magic, wrong kind, shape mismatch, misaligned
// start, truncated body).
func TestBinaryBatch(t *testing.T) {
	_, ts, sys := testServer(t)
	start := sys.Market.Start
	ns := len(sys.Fleet.States)

	// Seed prices via a binary prices batch covering 4 hours.
	hubIDs := make([]string, 0, len(sys.Fleet.Clusters))
	seen := map[string]bool{}
	for _, cl := range sys.Fleet.Clusters {
		if !seen[cl.HubID] {
			seen[cl.HubID] = true
			hubIDs = append(hubIDs, cl.HubID)
		}
	}
	var pb bytes.Buffer
	if err := WriteBatchHeader(&pb, "prices", start, time.Hour, 4, len(hubIDs), hubIDs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		row := make([]float64, len(hubIDs))
		for j := range row {
			row[j] = 30 + float64(10*i+j)
		}
		pb.Write(AppendRow(nil, row))
	}
	resp, err := http.Post(ts.URL+"/v1/prices", ContentTypePricesBatch, &pb)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prices batch: %d", resp.StatusCode)
	}

	rows := [][]float64{flatDemand(ns, 500), flatDemand(ns, 700), flatDemand(ns, 900)}
	resp, err = http.Post(ts.URL+"/v1/demand", ContentTypeDemandBatch, demandBatch(start, time.Hour, rows))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("demand batch: %d: %s", resp.StatusCode, body)
	}
	var routed struct {
		Routed int `json:"routed"`
		Steps  int `json:"steps"`
	}
	if err := json.Unmarshal(body, &routed); err != nil {
		t.Fatal(err)
	}
	if routed.Routed != 3 || routed.Steps != 3 {
		t.Fatalf("routed %+v, want 3/3", routed)
	}

	bad := []struct {
		name        string
		contentType string
		body        io.Reader
		wantCode    int
	}{
		{"bad magic", ContentTypeDemandBatch, strings.NewReader("nope v9 kind=demand\n"), http.StatusBadRequest},
		{"wrong kind", ContentTypeDemandBatch,
			func() *bytes.Buffer {
				var b bytes.Buffer
				_ = WriteBatchHeader(&b, "prices", start, time.Hour, 1, 2, []string{"A", "B"})
				b.Write(AppendRow(nil, []float64{1, 2}))
				return &b
			}(), http.StatusBadRequest},
		{"wrong cols", ContentTypeDemandBatch,
			demandBatch(start.Add(3*time.Hour), time.Hour, [][]float64{{1, 2, 3}}), http.StatusBadRequest},
		{"misaligned start", ContentTypeDemandBatch,
			demandBatch(start, time.Hour, [][]float64{flatDemand(ns, 1)}), http.StatusConflict},
		{"wrong step", ContentTypeDemandBatch,
			demandBatch(start.Add(3*time.Hour), 30*time.Minute, [][]float64{flatDemand(ns, 1)}), http.StatusBadRequest},
		{"truncated body", ContentTypeDemandBatch,
			func() io.Reader {
				full := demandBatch(start.Add(3*time.Hour), time.Hour, [][]float64{flatDemand(ns, 1)})
				return bytes.NewReader(full.Bytes()[:full.Len()-8])
			}(), http.StatusBadRequest},
	}
	for _, tc := range bad {
		resp, err := http.Post(ts.URL+"/v1/demand", tc.contentType, tc.body)
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: got %d want %d: %s", tc.name, resp.StatusCode, tc.wantCode, msg)
		}
	}

	// The engine must still be exactly where the last good batch left it.
	var status struct {
		Steps int `json:"steps"`
	}
	if err := json.Unmarshal(get(t, ts.URL+"/v1/status", http.StatusOK), &status); err != nil {
		t.Fatal(err)
	}
	if status.Steps != 3 {
		t.Fatalf("steps after rejected batches = %d, want 3", status.Steps)
	}
}

// TestConcurrentIngestAndQuery hammers the read endpoints from several
// goroutines while a single writer feeds prices and demand, under -race
// in CI. Every response must be well-formed; the final step count must
// equal what the writer ingested.
func TestConcurrentIngestAndQuery(t *testing.T) {
	_, ts, sys := testServer(t)
	start := sys.Market.Start
	ns := len(sys.Fleet.States)
	const steps = 60

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			paths := []string{"/v1/status", "/metrics", "/v1/assignments?matrix=1", "/v1/world", "/healthz"}
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + paths[(i+j)%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Error(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("read returned %d", resp.StatusCode)
					return
				}
			}
		}(i)
	}

	demand := flatDemand(ns, 1500)
	for i := 0; i < steps; i++ {
		at := start.Add(time.Duration(i) * time.Hour)
		postJSON(t, ts.URL+"/v1/prices", pricePost{At: at, Prices: hubPrices(sys, 30+float64(i))}, http.StatusOK)
		postJSON(t, ts.URL+"/v1/demand", demandPost{At: at, Rates: demand}, http.StatusOK)
	}
	close(stop)
	wg.Wait()

	var status struct {
		Steps int     `json:"steps"`
		Cost  float64 `json:"total_cost_usd"`
	}
	if err := json.Unmarshal(get(t, ts.URL+"/v1/status", http.StatusOK), &status); err != nil {
		t.Fatal(err)
	}
	if status.Steps != steps || status.Cost <= 0 {
		t.Fatalf("final status %+v, want %d steps and positive cost", status, steps)
	}
}

// TestFinalizeStopsIngest: after the daemon closes the books, reads still
// serve and demand ingestion fails cleanly.
func TestFinalizeStopsIngest(t *testing.T) {
	srv, ts, sys := testServer(t)
	start := sys.Market.Start
	ns := len(sys.Fleet.States)
	postJSON(t, ts.URL+"/v1/prices", pricePost{At: start, Prices: hubPrices(sys, 35)}, http.StatusOK)
	postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: flatDemand(ns, 800)}, http.StatusOK)

	res, err := srv.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 || res.TotalCost <= 0 {
		t.Fatalf("finalized %+v", res)
	}
	postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: flatDemand(ns, 800)}, http.StatusBadRequest)
	get(t, ts.URL+"/v1/status", http.StatusOK)
}

// TestNewRejectsNilEngine covers the constructor guard.
func TestNewRejectsNilEngine(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil engine")
	}
}

// TestDemandPruningKeepsRouting: a long JSON-fed session must not grow the
// feed without bound, and routing must be unaffected by pruning.
func TestDemandPruningKeepsRouting(t *testing.T) {
	srv, ts, sys := testServer(t)
	start := sys.Market.Start
	ns := len(sys.Fleet.States)
	const steps = 30
	for i := 0; i < steps; i++ {
		at := start.Add(time.Duration(i) * time.Hour)
		postJSON(t, ts.URL+"/v1/prices", pricePost{At: at, Prices: hubPrices(sys, 30+float64(i))}, http.StatusOK)
		postJSON(t, ts.URL+"/v1/demand", demandPost{At: at, Rates: flatDemand(ns, 1200)}, http.StatusOK)
	}
	held := srv.feed.entries()
	// Next lookup horizon is Next-delay = start+(steps-1)h; only the
	// covering entry plus newer ones survive (delay = 1h -> 2 entries).
	if held > 3 {
		t.Fatalf("feed holds %d entries after %d steps; pruning is not bounding it", held, steps)
	}
	var status struct {
		Steps int `json:"steps"`
	}
	if err := json.Unmarshal(get(t, ts.URL+"/v1/status", http.StatusOK), &status); err != nil {
		t.Fatal(err)
	}
	if status.Steps != steps {
		t.Fatalf("steps = %d, want %d", status.Steps, steps)
	}
}

// TestBatchHeaderRequiresStart: a prices batch without start= must be
// rejected, not silently anchored at the Unix epoch.
func TestBatchHeaderRequiresStart(t *testing.T) {
	_, ts, _ := testServer(t)
	body := "powerroute-batch v1 kind=prices step=3600000000000 rows=1 cols=1 hubs=NYC\n" +
		string(AppendRow(nil, []float64{42}))
	resp, err := http.Post(ts.URL+"/v1/prices", ContentTypePricesBatch, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("start-less batch: got %d: %s", resp.StatusCode, msg)
	}
	if !strings.Contains(string(msg), "missing start") {
		t.Errorf("error does not name the missing field: %s", msg)
	}
}

// leaseServer builds a burst-coordinated daemon: the unsplit test world
// under fractional soft caps, its engine's gate fed from the same
// LeaseStore the server accepts POST /v1/leases into.
func leaseServer(t *testing.T) (*httptest.Server, *core.System) {
	t.Helper()
	sys := testWorld(t)
	opt, err := routing.NewPriceOptimizer(sys.Fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := sim.FractionalCaps(sys.Fleet, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	store := &sim.LeaseStore{}
	eng, err := sim.NewEngine(sim.Scenario{
		Fleet:         sys.Fleet,
		Policy:        opt,
		Energy:        energy.OptimisticFuture,
		Market:        sys.Market,
		Demand:        sys.LongRun,
		Start:         sys.Market.Start,
		Steps:         sys.Market.Hours,
		Step:          time.Hour,
		ReactionDelay: sim.DefaultReactionDelay,
		SoftCaps:      caps,
		BurstGate:     store,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Engine: eng, Leases: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, sys
}

// TestLeaseBrokeredDaemon drives the shard-side half of the lease
// protocol over HTTP: demand cannot route past the posted gate window,
// windows extend contiguously (gaps conflict), and the lease state shows
// up in /v1/status and /v1/world.
func TestLeaseBrokeredDaemon(t *testing.T) {
	ts, sys := leaseServer(t)
	start := sys.Market.Start
	ns := len(sys.Fleet.States)
	postJSON(t, ts.URL+"/v1/prices", pricePost{At: start, Prices: hubPrices(sys, 30)}, http.StatusOK)

	// No lease window posted yet: the engine refuses to guess the bit.
	body := postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: flatDemand(ns, 900)}, http.StatusBadRequest)
	if !strings.Contains(string(body), "no burst-token lease") {
		t.Fatalf("demand before leases: %s", body)
	}

	// A two-step window covers exactly two intervals; a post that leaves a
	// gap after it is an ordering conflict.
	postJSON(t, ts.URL+"/v1/leases", leasePost{From: 0, Gates: []bool{false, false}}, http.StatusOK)
	postJSON(t, ts.URL+"/v1/leases", leasePost{From: 5, Gates: []bool{false}}, http.StatusConflict)
	postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: flatDemand(ns, 900)}, http.StatusOK)
	postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: flatDemand(ns, 900)}, http.StatusOK)
	body = postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: flatDemand(ns, 900)}, http.StatusBadRequest)
	if !strings.Contains(string(body), "no burst-token lease") {
		t.Fatalf("demand beyond the window: %s", body)
	}

	// The consumed window was pruned as the rows routed; the next post
	// re-bases at the engine's cursor.
	postJSON(t, ts.URL+"/v1/leases", leasePost{From: 2, Gates: []bool{false}}, http.StatusOK)
	postJSON(t, ts.URL+"/v1/demand", demandPost{Rates: flatDemand(ns, 900)}, http.StatusOK)

	var status struct {
		Steps       int `json:"steps"`
		BurstLeases *struct {
			Granted int `json:"tokens_granted"`
			Used    int `json:"tokens_used"`
			Expired int `json:"tokens_expired"`
		} `json:"burst_leases"`
	}
	if err := json.Unmarshal(get(t, ts.URL+"/v1/status", http.StatusOK), &status); err != nil {
		t.Fatal(err)
	}
	if status.Steps != 3 || status.BurstLeases == nil {
		t.Fatalf("status = %+v, want 3 steps with a burst_leases section", status)
	}
	var world struct {
		FleetBursts bool `json:"fleet_bursts"`
		LeaseBroker bool `json:"lease_broker"`
	}
	if err := json.Unmarshal(get(t, ts.URL+"/v1/world", http.StatusOK), &world); err != nil {
		t.Fatal(err)
	}
	if !world.FleetBursts || !world.LeaseBroker {
		t.Fatalf("world = %+v, want fleet_bursts and lease_broker", world)
	}
	metrics := string(get(t, ts.URL+"/metrics", http.StatusOK))
	if !strings.Contains(metrics, "powerrouted_burst_tokens_granted_total") {
		t.Fatalf("metrics missing burst token counters:\n%s", metrics)
	}
}

// TestLeasePostRejectedWithoutBroker: a daemon with no coordinated
// bursts refuses lease windows instead of silently dropping them.
func TestLeasePostRejectedWithoutBroker(t *testing.T) {
	_, ts, _ := testServer(t)
	body := postJSON(t, ts.URL+"/v1/leases", leasePost{From: 0, Gates: []bool{true}}, http.StatusBadRequest)
	if !strings.Contains(string(body), "brokers no burst-token leases") {
		t.Fatalf("lease post on a broker-less daemon: %s", body)
	}
	var world struct {
		FleetBursts *bool `json:"fleet_bursts"`
	}
	if err := json.Unmarshal(get(t, ts.URL+"/v1/world", http.StatusOK), &world); err != nil {
		t.Fatal(err)
	}
	if world.FleetBursts != nil {
		t.Fatal("burst-free world advertises fleet_bursts")
	}
}

// TestMidBatchErrorReportsResume: when a demand batch dies mid-way, the
// error body must carry the committed row count and the engine's next
// interval so the client can resume.
func TestMidBatchErrorReportsResume(t *testing.T) {
	_, ts, sys := testServer(t)
	start := sys.Market.Start
	ns := len(sys.Fleet.States)
	postJSON(t, ts.URL+"/v1/prices", pricePost{At: start, Prices: hubPrices(sys, 33)}, http.StatusOK)

	full := demandBatch(start, time.Hour, [][]float64{
		flatDemand(ns, 400), flatDemand(ns, 500), flatDemand(ns, 600),
	})
	truncated := full.Bytes()[:full.Len()-8] // row 2 unreadable
	resp, err := http.Post(ts.URL+"/v1/demand", ContentTypeDemandBatch, bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated batch: got %d: %s", resp.StatusCode, body)
	}
	var failure struct {
		Error  string    `json:"error"`
		Routed int       `json:"routed"`
		Next   time.Time `json:"next"`
	}
	if err := json.Unmarshal(body, &failure); err != nil {
		t.Fatalf("error body is not JSON: %s", body)
	}
	if failure.Routed != 2 || !failure.Next.Equal(start.Add(2*time.Hour)) || failure.Error == "" {
		t.Fatalf("resume info wrong: %+v", failure)
	}
	// Resuming from the reported point succeeds.
	resume := demandBatch(failure.Next, time.Hour, [][]float64{flatDemand(ns, 600)})
	resp, err = http.Post(ts.URL+"/v1/demand", ContentTypeDemandBatch, resume)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume batch: got %d", resp.StatusCode)
	}
}
