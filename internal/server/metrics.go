package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"powerroute/internal/cluster"
	"powerroute/internal/sim"
)

// handleMetrics renders the daemon's state in the Prometheus text
// exposition format (version 0.0.4). Everything is derived from one engine
// snapshot, so a scrape never tears across a routing step.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reqMu.Lock()
	requests := make(map[string]uint64, len(s.requests))
	for name, n := range s.requests {
		requests[name] = n
	}
	s.reqMu.Unlock()

	text := s.metricsText(requests)
	w.Header().Set("Content-Type", MetricsContentType)
	_, _ = w.Write([]byte(text))
}

// metricsText renders the metrics body under the engine lock — the text
// is fully built before the lock is released, so the snapshot scratch is
// never read outside it.
func (s *Server) metricsText(requests map[string]uint64) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.eng.SnapshotInto(s.snap)
	s.snap = snap
	return MetricsText(s.fleet, snap, s.feed.entries(), requests)
}

// MetricsContentType is the Prometheus text exposition media type.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsText renders the powerrouted metric families for an engine
// snapshot. Exported for the shard coordinator, which exposes the merged
// fleet-wide snapshot under the same metric names.
func MetricsText(fleet *cluster.Fleet, snap *sim.Snapshot, feedEntries int, requests map[string]uint64) string {
	var b strings.Builder
	metric := func(name, typ, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	metric("powerrouted_steps_total", "counter", "Routing intervals advanced since start.")
	fmt.Fprintf(&b, "powerrouted_steps_total %d\n", snap.Steps)

	metric("powerrouted_cost_dollars_total", "counter", "Cumulative electricity bill (energy plus demand charges).")
	fmt.Fprintf(&b, "powerrouted_cost_dollars_total %g\n", float64(snap.TotalCost))

	metric("powerrouted_energy_cost_dollars_total", "counter", "Cumulative energy component of the bill.")
	fmt.Fprintf(&b, "powerrouted_energy_cost_dollars_total %g\n", float64(snap.EnergyCost))

	metric("powerrouted_demand_charge_dollars", "gauge", "Demand charge if every open month ended now.")
	fmt.Fprintf(&b, "powerrouted_demand_charge_dollars %g\n", float64(snap.DemandCharge))

	metric("powerrouted_energy_megawatt_hours_total", "counter", "Cumulative grid energy drawn.")
	fmt.Fprintf(&b, "powerrouted_energy_megawatt_hours_total %g\n", snap.TotalEnergy.MegawattHours())

	metric("powerrouted_overload_hit_seconds_total", "counter", "Demand assigned beyond physical capacity.")
	fmt.Fprintf(&b, "powerrouted_overload_hit_seconds_total %g\n", snap.OverloadHitSeconds)

	metric("powerrouted_price_feed_entries", "gauge", "Price vectors ingested and retained.")
	fmt.Fprintf(&b, "powerrouted_price_feed_entries %d\n", feedEntries)

	metric("powerrouted_cluster_rate_hits", "gauge", "Last interval's assigned rate per cluster (hits/s).")
	for c, cl := range fleet.Clusters {
		fmt.Fprintf(&b, "powerrouted_cluster_rate_hits{cluster=%q} %g\n", cl.Code, snap.ClusterRate[c])
	}

	metric("powerrouted_cluster_cost_dollars_total", "counter", "Cumulative bill per cluster.")
	for c, cl := range fleet.Clusters {
		fmt.Fprintf(&b, "powerrouted_cluster_cost_dollars_total{cluster=%q} %g\n", cl.Code, float64(snap.ClusterCost[c]))
	}

	if snap.SoCKWh != nil {
		metric("powerrouted_battery_soc_kwh", "gauge", "Battery state of charge per cluster.")
		for c, cl := range fleet.Clusters {
			fmt.Fprintf(&b, "powerrouted_battery_soc_kwh{cluster=%q} %g\n", cl.Code, snap.SoCKWh[c])
		}
	}
	if snap.PeakGridKW != nil {
		metric("powerrouted_peak_grid_kw", "gauge", "Highest metered grid draw per cluster.")
		for c, cl := range fleet.Clusters {
			fmt.Fprintf(&b, "powerrouted_peak_grid_kw{cluster=%q} %g\n", cl.Code, snap.PeakGridKW[c])
		}
	}
	if snap.TotalCarbonKg != 0 {
		metric("powerrouted_carbon_kg_total", "counter", "Cumulative metered emissions.")
		fmt.Fprintf(&b, "powerrouted_carbon_kg_total %g\n", snap.TotalCarbonKg)
	}
	if snap.BurstLeases != nil {
		var granted, used, expired int
		for _, l := range snap.BurstLeases {
			granted += l.TokensGranted
			used += l.TokensUsed
			expired += l.TokensExpired
		}
		metric("powerrouted_burst_tokens_granted_total", "counter", "Burst tokens leased while the fleet gate was open.")
		fmt.Fprintf(&b, "powerrouted_burst_tokens_granted_total %d\n", granted)
		metric("powerrouted_burst_tokens_used_total", "counter", "Burst tokens consumed by over-cap intervals.")
		fmt.Fprintf(&b, "powerrouted_burst_tokens_used_total %d\n", used)
		metric("powerrouted_burst_tokens_expired_total", "counter", "Burst tokens reclaimed unused at step boundaries.")
		fmt.Fprintf(&b, "powerrouted_burst_tokens_expired_total %d\n", expired)
	}
	if snap.BatchQueuedKWh != nil {
		metric("powerrouted_batch_queued_kwh", "gauge", "Deferrable batch energy waiting in each cluster's queue.")
		for c, cl := range fleet.Clusters {
			fmt.Fprintf(&b, "powerrouted_batch_queued_kwh{cluster=%q} %g\n", cl.Code, snap.BatchQueuedKWh[c])
		}
		metric("powerrouted_batch_served_kwh_total", "counter", "Deferrable batch energy served fleet-wide.")
		fmt.Fprintf(&b, "powerrouted_batch_served_kwh_total %g\n", snap.BatchServedKWh)
		metric("powerrouted_batch_shed_kwh_total", "counter", "Deferrable batch energy shed at deadline expiry fleet-wide.")
		fmt.Fprintf(&b, "powerrouted_batch_shed_kwh_total %g\n", snap.BatchShedKWh)
		metric("powerrouted_batch_deferred_kwh_steps_total", "counter", "Queue-residence integral of deferred batch energy (kWh times steps).")
		fmt.Fprintf(&b, "powerrouted_batch_deferred_kwh_steps_total %g\n", snap.BatchDeferredKWhSteps)
	}

	handlers := make([]string, 0, len(requests))
	for name := range requests {
		handlers = append(handlers, name)
	}
	sort.Strings(handlers)
	metric("powerrouted_http_requests_total", "counter", "HTTP requests served per handler.")
	for _, name := range handlers {
		fmt.Fprintf(&b, "powerrouted_http_requests_total{handler=%q} %d\n", name, requests[name])
	}

	return b.String()
}
