// The offline dispatch oracle: a dynamic program over a full price trace
// with discretized state of charge. Where every Policy in this package
// decides from the current interval only, the oracle sees the whole future
// and computes the cheapest feasible dispatch outright — the yardstick the
// ext-optimal experiment measures the online policies against, and the
// "offline optimum" whose neighborhood Urgaonkar et al.'s Lyapunov
// controller provably reaches.
package storage

import (
	"fmt"
	"math"
)

// OptimalResult reports one cluster's offline-optimal dispatch.
type OptimalResult struct {
	// BaseUSD is the bill with the battery idle: Σ price·itLoad·Δ.
	BaseUSD float64
	// CostUSD is the minimal achievable bill over the trace — BaseUSD plus
	// the (usually negative) optimal arbitrage adjustment.
	CostUSD float64
	// BoughtKWh totals the grid energy bought into the battery along the
	// optimal path.
	BoughtKWh float64
	// ServedKWh totals the load energy the battery served along the
	// optimal path.
	ServedKWh float64
}

// OptimalDispatch computes the offline-optimal battery dispatch for one
// cluster by dynamic programming: prices[t] is the real-time price
// ($/MWh) and itLoadKW[t] the cluster's IT draw (kW) for each interval of
// stepHours hours, and the battery's state of charge is discretized onto
// `levels`+1 grid points spanning [0, CapacityKWh]. Per interval the
// program may hold, charge (grid draw ≤ MaxChargeKW, losses on the charge
// leg), or discharge (≤ MaxDischargeKW and ≤ the IT draw — the grid meter
// never runs backwards, same rule the engine enforces), and the returned
// CostUSD is the cheapest total bill over every feasible SoC trajectory.
//
// The discretization makes this a *restricted* optimum: the true
// continuous optimum can only be lower, and it converges as levels grows.
// At the levels the ext-optimal experiment uses, the residual is far below
// the gaps between policies. The program is deterministic — ties between
// equal-cost trajectories break toward the lower SoC index, never by map
// order or randomness — so the reported oracle bound is bit-identical
// across runs, shards, and machines.
//
// The IT-load trajectory must come from a run whose routing does not react
// to storage (Config.RoutingAware = false): then loads are independent of
// dispatch and the per-cluster bound is exact for the fleet.
func OptimalDispatch(b Battery, prices, itLoadKW []float64, stepHours float64, levels int) (OptimalResult, error) {
	var res OptimalResult
	if err := b.Validate(); err != nil {
		return res, err
	}
	if len(prices) == 0 || len(prices) != len(itLoadKW) {
		return res, fmt.Errorf("storage: oracle has %d prices for %d load samples", len(prices), len(itLoadKW))
	}
	if !(stepHours > 0) || math.IsInf(stepHours, 1) {
		return res, fmt.Errorf("storage: step length %v hours must be positive and finite", stepHours)
	}
	if levels < 1 || levels > 4096 {
		return res, fmt.Errorf("storage: SoC discretization %d outside [1, 4096]", levels)
	}
	for t := range prices {
		if math.IsNaN(prices[t]) || math.IsInf(prices[t], 0) {
			return res, fmt.Errorf("storage: non-finite price %v at step %d", prices[t], t)
		}
		if math.IsNaN(itLoadKW[t]) || math.IsInf(itLoadKW[t], 0) || itLoadKW[t] < 0 {
			return res, fmt.Errorf("storage: invalid IT load %v kW at step %d", itLoadKW[t], t)
		}
		res.BaseUSD += prices[t] * itLoadKW[t] * stepHours / 1000
	}
	if b.IsZero() || (b.MaxChargeKW == 0 && b.MaxDischargeKW == 0) {
		// No usable battery: the oracle is the idle bill.
		res.CostUSD = res.BaseUSD
		return res, nil
	}

	q := b.CapacityKWh / float64(levels) // kWh per SoC grid step
	eta := b.onewayEfficiency()
	// Per-interval reach on the SoC grid. Charging at full rate adds
	// η·Rmax·Δ of stored energy; discharging at full rate removes
	// (Dmax·Δ)/η. The floor under-uses the last fractional grid step — part
	// of the documented discretization error.
	maxUp := int(eta * b.MaxChargeKW * stepHours / q)
	maxDown := int(b.MaxDischargeKW * stepHours / (eta * q))
	if b.MaxChargeKW > 0 && maxUp == 0 {
		return res, fmt.Errorf("storage: %d SoC levels cannot resolve a %v kW charge rate over %v h (grid step %v kWh)",
			levels, b.MaxChargeKW, stepHours, q)
	}
	if b.MaxDischargeKW > 0 && maxDown == 0 {
		return res, fmt.Errorf("storage: %d SoC levels cannot resolve a %v kW discharge rate over %v h (grid step %v kWh)",
			levels, b.MaxDischargeKW, stepHours, q)
	}

	n := levels + 1
	inf := math.Inf(1)
	cur := make([]float64, n)
	next := make([]float64, n)
	// from[t*n+m] is the SoC level the optimal path to (t+1, m) left; int16
	// holds any level index (levels ≤ 4096 < 2^15).
	from := make([]int16, len(prices)*n)
	for i := range cur {
		cur[i] = inf
	}
	l0 := int(math.Round(b.InitialSoC * float64(levels)))
	cur[l0] = 0

	for t := range prices {
		price := prices[t]
		// No grid export: the battery may serve at most the IT draw.
		downT := maxDown
		if fromLoad := int(itLoadKW[t] * stepHours / (eta * q)); fromLoad < downT {
			downT = fromLoad
		}
		for i := range next {
			next[i] = inf
		}
		row := from[t*n : (t+1)*n]
		for l := 0; l < n; l++ {
			base := cur[l]
			if math.IsInf(base, 1) {
				continue
			}
			lo := l - downT
			if lo < 0 {
				lo = 0
			}
			hi := l + maxUp
			if hi > levels {
				hi = levels
			}
			for m := lo; m <= hi; m++ {
				c := base
				if m > l {
					// Grid pays for the stored gain plus the charge-leg loss.
					c += price * float64(m-l) * q / eta / 1000
				} else if m < l {
					// Served load offsets grid draw, net of the discharge-leg loss.
					c -= price * float64(l-m) * q * eta / 1000
				}
				// Strict < breaks ties toward the lower predecessor level l
				// (scanned ascending), keeping the traceback deterministic.
				if c < next[m] {
					next[m] = c
					row[m] = int16(l)
				}
			}
		}
		cur, next = next, cur
	}

	// Cheapest terminal state; ties again break toward the lower SoC index.
	best, bestL := inf, 0
	for l := 0; l < n; l++ {
		if cur[l] < best {
			best, bestL = cur[l], l
		}
	}
	res.CostUSD = res.BaseUSD + best

	// Trace the optimal trajectory back to total its energy movements.
	l := bestL
	for t := len(prices) - 1; t >= 0; t-- {
		p := int(from[t*n+l])
		if l > p {
			res.BoughtKWh += float64(l-p) * q / eta
		} else if l < p {
			res.ServedKWh += float64(p-l) * q * eta
		}
		l = p
	}
	return res, nil
}
