// Package storage models site-local energy storage: a battery behind each
// cluster's grid meter plus the dispatch policies that decide when to buy
// energy into it and when to serve load from it.
//
// The paper routes load toward cheap energy but leaves two levers on the
// table at every site. First, hourly prices dip and spike (§3), so a
// battery can buy low and serve the cluster during peaks — the arbitrage
// of Urgaonkar et al., "Optimal Power Cost Management Using Stored Energy
// in Data Centers". Second, commercial tariffs bill peak demand (kW) as
// well as energy (kWh), and peak shaving with stored energy directly cuts
// that component (Xu & Li, "Reducing Electricity Demand Charge for Data
// Centers with Partial Execution"). Both compose with geographic routing:
// the simulation engine threads a State per cluster through its step loop
// and meters grid draw = IT draw + charging − discharging.
//
// Sign convention: a positive dispatch action charges from the grid, a
// negative one discharges toward the load. The grid meter never runs
// backwards — discharge is capped at the cluster's IT draw (no export).
package storage

import (
	"errors"
	"fmt"
	"math"

	"powerroute/internal/stats"
	"powerroute/internal/timeseries"
)

// Battery describes one cluster's installation. The zero value is a valid
// "no battery" configuration: every operation on it is a no-op.
type Battery struct {
	// CapacityKWh is the usable energy capacity.
	CapacityKWh float64
	// MaxChargeKW bounds the grid-side charging draw.
	MaxChargeKW float64
	// MaxDischargeKW bounds the load-side discharging rate.
	MaxDischargeKW float64
	// RoundTripEfficiency is the fraction of energy bought into the battery
	// that comes back out, in (0, 1]. Losses are split evenly across the
	// charge and discharge legs (one-way efficiency √η). Zero defaults to 1.
	RoundTripEfficiency float64
	// InitialSoC is the starting state of charge as a fraction of capacity.
	InitialSoC float64
}

// Validate checks the battery parameters. Non-finite values are rejected
// explicitly: a NaN capacity would defeat every clamp in Charge/Discharge
// (NaN comparisons are all false), turning the battery into a silent
// infinite energy source.
func (b Battery) Validate() error {
	if !(b.CapacityKWh >= 0) || !(b.MaxChargeKW >= 0) || !(b.MaxDischargeKW >= 0) ||
		math.IsInf(b.CapacityKWh, 1) || math.IsInf(b.MaxChargeKW, 1) || math.IsInf(b.MaxDischargeKW, 1) {
		return fmt.Errorf("storage: capacity %v / rate limits %v,%v must be finite and non-negative",
			b.CapacityKWh, b.MaxChargeKW, b.MaxDischargeKW)
	}
	if !(b.RoundTripEfficiency >= 0 && b.RoundTripEfficiency <= 1) {
		return fmt.Errorf("storage: round-trip efficiency %v outside [0,1]", b.RoundTripEfficiency)
	}
	if !(b.InitialSoC >= 0 && b.InitialSoC <= 1) {
		return fmt.Errorf("storage: initial SoC %v outside [0,1]", b.InitialSoC)
	}
	return nil
}

// IsZero reports whether the battery stores nothing (disabled site).
func (b Battery) IsZero() bool { return b.CapacityKWh == 0 }

// onewayEfficiency returns √η with the zero-value default applied.
func (b Battery) onewayEfficiency() float64 {
	if b.RoundTripEfficiency == 0 {
		return 1
	}
	return math.Sqrt(b.RoundTripEfficiency)
}

// State is the mutable charge state of one battery over a run.
//
// ckpt:state Snapshot,RestoreSnapshot
type State struct {
	spec      Battery // ckpt:immutable configuration; RestoreSnapshot verifies against it, Snapshot never carries it
	socKWh    float64
	boughtKWh float64 // cumulative grid energy drawn for charging
	servedKWh float64 // cumulative load energy served by discharging
}

// NewState initializes a battery at its configured starting charge.
func NewState(b Battery) *State {
	return &State{spec: b, socKWh: b.InitialSoC * b.CapacityKWh}
}

// Spec returns the immutable battery parameters.
func (s *State) Spec() Battery { return s.spec }

// SoCKWh returns the stored energy.
func (s *State) SoCKWh() float64 { return s.socKWh }

// SoCFrac returns the state of charge as a fraction of capacity (0 for a
// zero-capacity battery).
func (s *State) SoCFrac() float64 {
	if s.spec.CapacityKWh == 0 {
		return 0
	}
	return s.socKWh / s.spec.CapacityKWh
}

// BoughtKWh returns the cumulative grid energy drawn to charge.
func (s *State) BoughtKWh() float64 { return s.boughtKWh }

// ServedKWh returns the cumulative load energy served from the battery.
func (s *State) ServedKWh() float64 { return s.servedKWh }

// Snapshot is the serializable dynamic state of one battery.
//
// ckpt:state Snapshot,RestoreSnapshot
type Snapshot struct {
	SoCKWh    float64 `json:"soc_kwh"`    // stored energy
	BoughtKWh float64 `json:"bought_kwh"` // cumulative grid energy drawn to charge
	ServedKWh float64 `json:"served_kwh"` // cumulative load energy served
}

// Snapshot exports the battery's charge state and cumulative totals.
func (s *State) Snapshot() Snapshot {
	return Snapshot{SoCKWh: s.socKWh, BoughtKWh: s.boughtKWh, ServedKWh: s.servedKWh}
}

// RestoreSnapshot loads a previously exported snapshot into a state built
// for the same battery spec. The charge must physically fit the spec —
// non-finite or negative values, or more stored energy than the capacity
// holds, mean the snapshot belongs to a different installation.
func (s *State) RestoreSnapshot(v Snapshot) error {
	for _, x := range []float64{v.SoCKWh, v.BoughtKWh, v.ServedKWh} {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return fmt.Errorf("storage: battery snapshot %+v has non-finite or negative state", v)
		}
	}
	if v.SoCKWh > s.spec.CapacityKWh {
		return fmt.Errorf("storage: snapshot SoC %v kWh exceeds capacity %v kWh", v.SoCKWh, s.spec.CapacityKWh)
	}
	s.socKWh = v.SoCKWh
	s.boughtKWh = v.BoughtKWh
	s.servedKWh = v.ServedKWh
	return nil
}

// Charge draws up to requestKW from the grid for hours, limited by the
// charge rate and the remaining headroom (after the charge-leg loss). It
// returns the grid energy actually drawn in kWh.
func (s *State) Charge(requestKW, hours float64) float64 {
	if requestKW <= 0 || hours <= 0 || s.spec.IsZero() {
		return 0
	}
	kw := math.Min(requestKW, s.spec.MaxChargeKW)
	eta := s.spec.onewayEfficiency()
	gridKWh := kw * hours
	if room := (s.spec.CapacityKWh - s.socKWh) / eta; gridKWh > room {
		gridKWh = room
	}
	if gridKWh <= 0 {
		return 0
	}
	s.socKWh += gridKWh * eta
	s.boughtKWh += gridKWh
	return gridKWh
}

// Discharge serves up to requestKW of load for hours, limited by the
// discharge rate and the stored energy (after the discharge-leg loss). It
// returns the load energy actually served in kWh.
func (s *State) Discharge(requestKW, hours float64) float64 {
	if requestKW <= 0 || hours <= 0 || s.spec.IsZero() {
		return 0
	}
	kw := math.Min(requestKW, s.spec.MaxDischargeKW)
	eta := s.spec.onewayEfficiency()
	loadKWh := kw * hours
	if avail := s.socKWh * eta; loadKWh > avail {
		loadKWh = avail
	}
	if loadKWh <= 0 {
		return 0
	}
	s.socKWh -= loadKWh / eta
	if s.socKWh < 0 { // float residue
		s.socKWh = 0
	}
	s.servedKWh += loadKWh
	return loadKWh
}

// Policy decides each interval's battery action from the cluster's current
// real-time price and IT draw. A site controller reacts locally and
// immediately, so — unlike the router — it is not subject to the
// scenario's reaction delay.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Action returns the desired battery power for cluster c at the given
	// price ($/MWh) and IT draw (kW), in kW: positive charges from the
	// grid, negative discharges toward the load. The State applies rate
	// and capacity limits; the engine additionally caps discharge at the
	// IT draw (the grid meter never runs backwards).
	Action(c int, price, itLoadKW float64, s *State) float64
}

// PriceCapper is implemented by policies that can state the price above
// which a charged battery takes over the load. The engine uses it to make
// the routing signal storage-aware: a cluster holding charge never looks
// more expensive to the router than its discharge threshold, because the
// battery pays for anything above it.
type PriceCapper interface {
	// PriceCap returns the effective price ceiling for cluster c, or +Inf
	// when the battery cannot help (empty, or no threshold).
	PriceCap(c int, s *State) float64
}

// Threshold is the greedy dispatch rule of Urgaonkar et al.'s baseline:
// charge flat out whenever the price is at or below ChargeBelow, discharge
// whenever it is at or above DischargeAbove, idle in between. The same
// thresholds apply to every cluster.
type Threshold struct {
	ChargeBelow    float64 // $/MWh
	DischargeAbove float64 // $/MWh
}

// NewThreshold validates the dead-band ordering.
func NewThreshold(chargeBelow, dischargeAbove float64) (*Threshold, error) {
	if !(dischargeAbove > chargeBelow) { // also rejects NaN thresholds
		return nil, fmt.Errorf("storage: discharge threshold %v must exceed charge threshold %v", dischargeAbove, chargeBelow)
	}
	return &Threshold{ChargeBelow: chargeBelow, DischargeAbove: dischargeAbove}, nil
}

// Name implements Policy.
func (t *Threshold) Name() string {
	return fmt.Sprintf("threshold($%.0f/$%.0f)", t.ChargeBelow, t.DischargeAbove)
}

// Action implements Policy.
func (t *Threshold) Action(_ int, price, _ float64, s *State) float64 {
	switch {
	case price <= t.ChargeBelow:
		return s.spec.MaxChargeKW
	case price >= t.DischargeAbove:
		return -s.spec.MaxDischargeKW
	default:
		return 0
	}
}

// PriceCap implements PriceCapper. The cap applies only when the battery
// can actually serve load: it holds charge and has a discharge path.
func (t *Threshold) PriceCap(_ int, s *State) float64 {
	if s.socKWh <= 0 || s.spec.MaxDischargeKW <= 0 {
		return math.Inf(1)
	}
	return t.DischargeAbove
}

// Percentile derives per-cluster charge/discharge thresholds from each
// cluster's own price history: charge below the chargeQ quantile, discharge
// above the dischargeQ quantile. Hubs with different price levels (Fig 6)
// get correspondingly different thresholds, where one global dollar
// threshold would leave cheap hubs always charging and expensive hubs
// always discharging.
type Percentile struct {
	chargeQ, dischargeQ float64
	thresholds          []Threshold // per cluster
}

// NewPercentile computes thresholds from per-cluster price series (one per
// cluster, same order as the fleet).
func NewPercentile(prices []*timeseries.Series, chargeQ, dischargeQ float64) (*Percentile, error) {
	if len(prices) == 0 {
		return nil, errors.New("storage: percentile policy needs at least one price series")
	}
	if !(chargeQ >= 0 && chargeQ < dischargeQ && dischargeQ <= 1) {
		return nil, fmt.Errorf("storage: need 0 <= chargeQ < dischargeQ <= 1, got %v/%v", chargeQ, dischargeQ)
	}
	p := &Percentile{chargeQ: chargeQ, dischargeQ: dischargeQ, thresholds: make([]Threshold, len(prices))}
	for c, s := range prices {
		qs, err := stats.Quantiles(s.Values, chargeQ, dischargeQ)
		if err != nil {
			return nil, fmt.Errorf("storage: cluster %d: %w", c, err)
		}
		if qs[1] <= qs[0] { // flat price history: no usable dead-band
			return nil, fmt.Errorf("storage: cluster %d: price quantiles %v/%v leave no dead-band", c, qs[0], qs[1])
		}
		p.thresholds[c] = Threshold{ChargeBelow: qs[0], DischargeAbove: qs[1]}
	}
	return p, nil
}

// Name implements Policy.
func (p *Percentile) Name() string {
	return fmt.Sprintf("percentile(p%.0f/p%.0f)", 100*p.chargeQ, 100*p.dischargeQ)
}

// ClusterCount implements the sizing check in Config.Validate.
func (p *Percentile) ClusterCount() int { return len(p.thresholds) }

// Action implements Policy.
func (p *Percentile) Action(c int, price, itLoadKW float64, s *State) float64 {
	return p.thresholds[c].Action(c, price, itLoadKW, s)
}

// PriceCap implements PriceCapper.
func (p *Percentile) PriceCap(c int, s *State) float64 {
	return p.thresholds[c].PriceCap(c, s)
}

// Thresholds exposes the derived per-cluster thresholds (diagnostics).
func (p *Percentile) Thresholds() []Threshold {
	return append([]Threshold(nil), p.thresholds...)
}

// PeakShaver is demand-charge dispatch: instead of chasing cheap prices it
// defends a per-cluster grid-draw ceiling. IT draw above TargetKW is
// served from the battery; the battery refills only while the total grid
// draw stays below FloorKW, so charging can never set a new monthly peak
// as long as the floor sits below the month's natural one. Price-threshold
// arbitrage raises the demand charge — it charges flat out in cheap hours,
// and the demand meter bills that draw — which is exactly the failure this
// policy exists to avoid (Xu & Li).
type PeakShaver struct {
	targetKW []float64
	floorKW  []float64
}

// NewPeakShaver builds the policy from per-cluster grid-draw targets and
// charging floors (kW, fleet order). Targets are typically a fraction of a
// no-battery run's observed PeakGridKW; floors must sit safely below any
// month's natural peak.
func NewPeakShaver(targetKW, floorKW []float64) (*PeakShaver, error) {
	if len(targetKW) == 0 || len(targetKW) != len(floorKW) {
		return nil, fmt.Errorf("storage: %d targets for %d floors", len(targetKW), len(floorKW))
	}
	for c := range targetKW {
		if !(floorKW[c] >= 0 && floorKW[c] < targetKW[c]) {
			return nil, fmt.Errorf("storage: cluster %d: need 0 <= floor %v < target %v", c, floorKW[c], targetKW[c])
		}
	}
	return &PeakShaver{
		targetKW: append([]float64(nil), targetKW...),
		floorKW:  append([]float64(nil), floorKW...),
	}, nil
}

// Name implements Policy.
func (p *PeakShaver) Name() string { return "peak-shaver" }

// ClusterCount implements the sizing check in Config.Validate.
func (p *PeakShaver) ClusterCount() int { return len(p.targetKW) }

// Action implements Policy.
func (p *PeakShaver) Action(c int, _ float64, itLoadKW float64, s *State) float64 {
	if itLoadKW > p.targetKW[c] {
		return -(itLoadKW - p.targetKW[c])
	}
	if headroom := p.floorKW[c] - itLoadKW; headroom > 0 {
		return headroom
	}
	return 0
}

// Config attaches batteries and a dispatch policy to a scenario.
type Config struct {
	// Batteries holds one installation per cluster (fleet order).
	Batteries []Battery
	// Policy dispatches every battery each interval.
	Policy Policy
	// RoutingAware, when true and Policy implements PriceCapper, caps each
	// cluster's decision price at the policy's discharge threshold while
	// its battery holds charge, so the router keeps sending load to sites
	// that can ride out a price spike on stored energy.
	RoutingAware bool
}

// Validate checks the configuration against a fleet of n clusters,
// including the dispatch policy's own per-cluster dimension when it has
// one (a Percentile or PeakShaver built for a different fleet would panic
// mid-simulation instead).
func (c *Config) Validate(n int) error {
	if len(c.Batteries) != n {
		return fmt.Errorf("storage: %d batteries for %d clusters", len(c.Batteries), n)
	}
	if c.Policy == nil {
		return errors.New("storage: config missing dispatch policy")
	}
	if p, ok := c.Policy.(interface{ ClusterCount() int }); ok && p.ClusterCount() != n {
		return fmt.Errorf("storage: policy %s sized for %d clusters, fleet has %d", c.Policy.Name(), p.ClusterCount(), n)
	}
	for i, b := range c.Batteries {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("storage: battery %d: %w", i, err)
		}
	}
	return nil
}

// Uniform builds a config installing the same battery at every one of n
// clusters.
func Uniform(b Battery, n int, p Policy) *Config {
	bs := make([]Battery, n)
	for i := range bs {
		bs[i] = b
	}
	return &Config{Batteries: bs, Policy: p}
}
