package storage

import (
	"math"
	"strings"
	"testing"
)

// TestOptimalDispatchHandComputed pins the oracle on a trace small enough
// to solve by hand: buy the valley, serve the peak, ignore the final
// valley (stored energy has no terminal value).
func TestOptimalDispatchHandComputed(t *testing.T) {
	b := Battery{CapacityKWh: 1, MaxChargeKW: 1, MaxDischargeKW: 1, RoundTripEfficiency: 1}
	prices := []float64{10, 100, 10}
	it := []float64{1, 1, 1}
	res, err := OptimalDispatch(b, prices, it, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if want := (10 + 100 + 10) * 1.0 / 1000; res.BaseUSD != want {
		t.Errorf("base bill %v, want %v", res.BaseUSD, want)
	}
	// Optimal: buy 1 kWh at $10/MWh (+$0.01), serve it at $100/MWh (−$0.10).
	if want := res.BaseUSD + 0.01 - 0.10; math.Abs(res.CostUSD-want) > 1e-12 {
		t.Errorf("oracle bill %v, want %v", res.CostUSD, want)
	}
	if res.BoughtKWh != 1 || res.ServedKWh != 1 {
		t.Errorf("oracle moved %v/%v kWh, want 1/1", res.BoughtKWh, res.ServedKWh)
	}
}

// TestOptimalDispatchNoExport: the oracle may not discharge past the IT
// draw, so a price spike over an idle cluster is worthless and the optimal
// dispatch is to do nothing at all.
func TestOptimalDispatchNoExport(t *testing.T) {
	b := Battery{CapacityKWh: 1, MaxChargeKW: 1, MaxDischargeKW: 1, RoundTripEfficiency: 1}
	res, err := OptimalDispatch(b, []float64{10, 100}, []float64{1, 0}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.CostUSD != res.BaseUSD {
		t.Errorf("oracle bill %v, want the idle bill %v (nothing to serve at the peak)", res.CostUSD, res.BaseUSD)
	}
	if res.BoughtKWh != 0 || res.ServedKWh != 0 {
		t.Errorf("oracle moved %v/%v kWh with no discharge path", res.BoughtKWh, res.ServedKWh)
	}
}

func TestOptimalDispatchZeroBattery(t *testing.T) {
	res, err := OptimalDispatch(Battery{}, []float64{10, 100}, []float64{1, 1}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.CostUSD != res.BaseUSD || res.BoughtKWh != 0 || res.ServedKWh != 0 {
		t.Errorf("zero battery oracle %+v, want the idle bill with no movement", res)
	}
}

func TestOptimalDispatchValidation(t *testing.T) {
	b := Battery{CapacityKWh: 1, MaxChargeKW: 1, MaxDischargeKW: 1}
	cases := []struct {
		name    string
		prices  []float64
		it      []float64
		hours   float64
		levels  int
		wantErr string
	}{
		{"empty", nil, nil, 1, 10, "0 prices"},
		{"mismatched", []float64{1, 2}, []float64{1}, 1, 10, "2 prices for 1"},
		{"bad step", []float64{1}, []float64{1}, 0, 10, "step length"},
		{"bad levels", []float64{1}, []float64{1}, 1, 0, "outside"},
		{"nan price", []float64{math.NaN()}, []float64{1}, 1, 10, "non-finite price"},
		{"negative load", []float64{1}, []float64{-1}, 1, 10, "invalid IT load"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := OptimalDispatch(b, tc.prices, tc.it, tc.hours, tc.levels); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
	// A grid too coarse to resolve the charge rate must refuse rather than
	// silently report the idle bill as "optimal".
	tiny := Battery{CapacityKWh: 1000, MaxChargeKW: 1, MaxDischargeKW: 1}
	if _, err := OptimalDispatch(tiny, []float64{1, 2}, []float64{1, 1}, 1, 10); err == nil || !strings.Contains(err.Error(), "cannot resolve") {
		t.Fatalf("coarse grid error = %v, want 'cannot resolve'", err)
	}
}

// lcg is a tiny deterministic generator for the property test (no
// math/rand: the package-wide wallclock analyzer bans implicitly seeded
// globals, and an explicit constant recurrence is simpler anyway).
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(*r>>11) / float64(1<<53)
}

// simulateThreshold replays the greedy threshold policy on a price/load
// trace through the real State mechanics and returns its bill.
func simulateThreshold(b Battery, p *Threshold, prices, it []float64, stepHours float64) float64 {
	s := NewState(b)
	var bill float64
	for t := range prices {
		grid := it[t] * stepHours // kWh
		if act := p.Action(0, prices[t], it[t], s); act > 0 {
			grid += s.Charge(act, stepHours)
		} else if act < 0 {
			want := -act
			if want > it[t] {
				want = it[t]
			}
			grid -= s.Discharge(want, stepHours)
		}
		bill += prices[t] * grid / 1000
	}
	return bill
}

// TestOptimalLowerBoundsGreedy: on randomized traces the oracle's bill is
// never above the online greedy policy's (up to the documented
// discretization slack), and never above the idle bill.
func TestOptimalLowerBoundsGreedy(t *testing.T) {
	b := Battery{CapacityKWh: 10, MaxChargeKW: 2, MaxDischargeKW: 2, RoundTripEfficiency: 0.85}
	greedy, err := NewThreshold(30, 70)
	if err != nil {
		t.Fatal(err)
	}
	rng := lcg(1)
	for trial := 0; trial < 5; trial++ {
		n := 400
		prices := make([]float64, n)
		it := make([]float64, n)
		for i := range prices {
			prices[i] = 5 + 95*rng.next()
			it[i] = 10 * rng.next()
		}
		res, err := OptimalDispatch(b, prices, it, 1, 200)
		if err != nil {
			t.Fatal(err)
		}
		online := simulateThreshold(b, greedy, prices, it, 1)
		// The grid restriction can cost the oracle a sliver; anything
		// beyond this slack would mean the "oracle" is not a bound at all.
		slack := 1e-3 * math.Abs(res.BaseUSD)
		if res.CostUSD > online+slack {
			t.Errorf("trial %d: oracle bill %v above greedy threshold's %v", trial, res.CostUSD, online)
		}
		if res.CostUSD > res.BaseUSD+1e-12 {
			t.Errorf("trial %d: oracle bill %v above the idle bill %v", trial, res.CostUSD, res.BaseUSD)
		}
	}
}

// TestOptimalDeterminism: two identical invocations must agree bit for
// bit — the oracle is part of a registry experiment whose output is a
// byte-identity regression gate.
func TestOptimalDeterminism(t *testing.T) {
	b := Battery{CapacityKWh: 8, MaxChargeKW: 2, MaxDischargeKW: 3, RoundTripEfficiency: 0.9, InitialSoC: 0.5}
	rng := lcg(7)
	n := 300
	prices := make([]float64, n)
	it := make([]float64, n)
	for i := range prices {
		prices[i] = 120*rng.next() - 10 // include negative prices
		it[i] = 6 * rng.next()
	}
	a, err := OptimalDispatch(b, prices, it, 1, 160)
	if err != nil {
		t.Fatal(err)
	}
	bRes, err := OptimalDispatch(b, prices, it, 1, 160)
	if err != nil {
		t.Fatal(err)
	}
	if a != bRes {
		t.Errorf("oracle not deterministic:\n%+v\n%+v", a, bRes)
	}
}
