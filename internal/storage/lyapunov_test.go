package storage

import (
	"math"
	"strings"
	"testing"
	"time"

	"powerroute/internal/timeseries"
)

var lyapunovStart = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func priceSeries(values ...float64) *timeseries.Series {
	return timeseries.FromValues(lyapunovStart, time.Hour, values)
}

func lyapunovBattery() Battery {
	return Battery{CapacityKWh: 100, MaxChargeKW: 10, MaxDischargeKW: 10, RoundTripEfficiency: 0.81}
}

func TestNewLyapunovValidation(t *testing.T) {
	good := []*timeseries.Series{priceSeries(10, 50, 90)}
	b := []Battery{lyapunovBattery()}
	cases := []struct {
		name    string
		prices  []*timeseries.Series
		batts   []Battery
		hours   float64
		v       float64
		wantErr string
	}{
		{"no series", nil, nil, 1, 0, "at least one"},
		{"mismatched", good, nil, 1, 0, "0 batteries"},
		{"bad step", good, b, 0, 0, "step length"},
		{"nan v", good, b, 1, math.NaN(), "must be finite"},
		{"flat prices", []*timeseries.Series{priceSeries(42, 42, 42)}, b, 1, 0, "no spread"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewLyapunov(tc.prices, tc.batts, tc.hours, tc.v); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("NewLyapunov error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
	if _, err := NewLyapunov(good, b, 1, 0); err != nil {
		t.Fatalf("valid construction failed: %v", err)
	}
}

// TestLyapunovBangBang checks the controller's defining behavior: an empty
// battery charges at cheap prices, a full one discharges at expensive
// ones, and the indifference threshold between them falls as the state of
// charge rises.
func TestLyapunovBangBang(t *testing.T) {
	b := lyapunovBattery()
	l, err := NewLyapunov([]*timeseries.Series{priceSeries(10, 30, 50, 70, 90)}, []Battery{b}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	empty := NewState(b)
	if act := l.Action(0, 10, 25, empty); act != b.MaxChargeKW {
		t.Errorf("empty battery at the floor price: action %v, want full charge %v", act, b.MaxChargeKW)
	}
	if act := l.Action(0, 90, 25, empty); act == -b.MaxDischargeKW {
		t.Error("an empty battery must never be the discharge choice at any SoC-consistent threshold")
	}

	full := NewState(b)
	full.socKWh = b.CapacityKWh
	if act := l.Action(0, 90, 25, full); act != -b.MaxDischargeKW {
		t.Errorf("full battery at the ceiling price: action %v, want full discharge %v", act, -b.MaxDischargeKW)
	}
	if act := l.Action(0, 10, 25, full); act == b.MaxChargeKW {
		t.Error("a full battery must not charge at any price above its indifference point scaled by η")
	}

	if lo, hi := l.Indifference(0, b.CapacityKWh), l.Indifference(0, 0); lo >= hi {
		t.Errorf("indifference price must fall with SoC: full %v >= empty %v", lo, hi)
	}
}

// TestLyapunovVClamp: an absurdly large explicit V must be clamped to the
// per-cluster feasibility bound, i.e. behave exactly like the auto form.
func TestLyapunovVClamp(t *testing.T) {
	prices := []*timeseries.Series{priceSeries(10, 50, 90)}
	b := []Battery{lyapunovBattery()}
	auto, err := NewLyapunov(prices, b, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := NewLyapunov(prices, b, 1, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	for _, soc := range []float64{0, 25, 50, 100} {
		if got, want := huge.Indifference(0, soc), auto.Indifference(0, soc); got != want {
			t.Errorf("SoC %v: clamped V threshold %v, auto %v", soc, got, want)
		}
	}
	if auto.Name() != "lyapunov(V=auto)" {
		t.Errorf("auto name %q", auto.Name())
	}
	if huge.Name() != "lyapunov(V=1e+12)" {
		t.Errorf("explicit name %q", huge.Name())
	}
}

func TestLyapunovPriceCap(t *testing.T) {
	b := lyapunovBattery()
	l, err := NewLyapunov([]*timeseries.Series{priceSeries(10, 50, 90)}, []Battery{b}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(b)
	if cap := l.PriceCap(0, s); !math.IsInf(cap, 1) {
		t.Errorf("empty battery advertises cap %v, want +Inf", cap)
	}
	s.socKWh = 40
	cap := l.PriceCap(0, s)
	if math.IsInf(cap, 1) {
		t.Error("charged battery advertises no price cap")
	}
	eta := math.Sqrt(b.RoundTripEfficiency)
	if want := l.Indifference(0, 40) / eta; cap != want {
		t.Errorf("cap %v, want indifference/η = %v", cap, want)
	}
	s.socKWh = 80
	if lower := l.PriceCap(0, s); lower >= cap {
		t.Errorf("a fuller battery must advertise a lower cap: %v >= %v", lower, cap)
	}
}

// TestLyapunovZeroCapacityIsInert: the zero-value battery produces only
// zero-magnitude actions and an infinite price cap, so a configured-but-
// empty installation cannot perturb a run (the sim-level byte-identity
// test builds on this).
func TestLyapunovZeroCapacityIsInert(t *testing.T) {
	l, err := NewLyapunov([]*timeseries.Series{priceSeries(10, 50, 90)}, []Battery{{}}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(Battery{})
	for _, price := range []float64{5, 50, 95} {
		if act := l.Action(0, price, 25, s); act != 0 {
			t.Errorf("zero battery at price %v: action %v, want 0", price, act)
		}
	}
	if cap := l.PriceCap(0, s); !math.IsInf(cap, 1) {
		t.Errorf("zero battery advertises cap %v, want +Inf", cap)
	}
}

func TestLyapunovClusterCount(t *testing.T) {
	prices := []*timeseries.Series{priceSeries(10, 90), priceSeries(20, 80)}
	b := []Battery{lyapunovBattery(), lyapunovBattery()}
	l, err := NewLyapunov(prices, b, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.ClusterCount() != 2 {
		t.Errorf("ClusterCount = %d, want 2", l.ClusterCount())
	}
	cfg := &Config{Batteries: b, Policy: l}
	if err := cfg.Validate(2); err != nil {
		t.Errorf("config validation: %v", err)
	}
	if err := cfg.Validate(3); err == nil {
		t.Error("config sized for 2 clusters validated against 3")
	}
}
