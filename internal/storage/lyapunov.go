// Lyapunov-drift online dispatch, after Urgaonkar et al., "Optimal Power
// Cost Management Using Stored Energy in Data Centers" (arXiv:1103.3099).
//
// The three shipped policies are myopic: fixed dollar thresholds
// (Threshold), fixed per-cluster quantile thresholds (Percentile), or a
// grid-draw ceiling (PeakShaver). The Lyapunov controller instead derives
// its threshold from the battery's own state of charge each interval: it
// maintains a virtual queue X = SoC − θ and minimizes the drift-plus-
// penalty expression V·P(t)·(charge − discharge) + X·(charge − discharge),
// which yields control around a SoC-dependent indifference price
// T(SoC) = (θ − SoC)/V. An empty battery is willing to buy at high prices;
// a full one discharges at low ones. No price forecast is needed — only
// the current spot price — yet the time-average cost provably approaches
// the offline optimum within O(1/V) as V grows toward its feasibility
// bound.
package storage

import (
	"fmt"
	"math"
	"sort"

	"powerroute/internal/timeseries"
)

// lyapunovCluster holds one cluster's immutable controller constants,
// derived at construction from its price series and battery spec.
type lyapunovCluster struct {
	v     float64 // effective penalty weight (kWh per $/MWh), clamped to vmax
	theta float64 // virtual-queue offset (kWh): X = SoC − theta
	eta   float64 // one-way efficiency √η, cached from the battery spec
	hours float64 // interval length, for converting energy gaps to rates
}

// Lyapunov is the fourth dispatch policy: the online drift-plus-penalty
// controller of Urgaonkar et al. Every decision is a pure function of the
// cluster index, the current spot price, and the battery's state of
// charge — the virtual queue is *derived* from SoC rather than stored —
// so the policy itself carries no mutable per-step state. That is a
// deliberate checkpoint-design choice: battery SoC already round-trips
// bit-exactly through checkpoint v2 (storage.Snapshot), therefore a
// restored engine reproduces every future Lyapunov decision bit-for-bit
// with nothing new to serialize, and shard merges stay clean because the
// controller constants are per-cluster and immutable.
//
// Unlike the textbook bang-bang rule, actions are rate-limited to the
// indifference point: the controller charges or discharges only far enough
// that the post-action SoC's threshold meets the current price, never past
// it. Overshooting is what makes naive Lyapunov dispatch churn — a
// full-rate hour can swing T(SoC) across the entire price distribution,
// buying and reselling the same energy through the round-trip loss. With
// rate-to-indifference dispatch every marginal stored kWh at SoC level s
// is bought only below T(s)·η and sold only above T(s)/η — the same T(s)
// both times — so each round trip covers at least 1/η² and the battery can
// never lose money against the storage-free bill.
type Lyapunov struct {
	requestedV float64 // the V the caller asked for (0 = auto), for Name()
	auto       bool
	perCluster []lyapunovCluster
}

// robustBounds returns low/high price anchors for the controller: the 2nd
// and 98th percentiles of the finite samples, widened back to the absolute
// extremes when the inner quantiles collapse. Spot markets are heavy-
// tailed — sizing V against a once-in-39-months spike collapses it by an
// order of magnitude and with it the arbitrage band, so the feasibility
// bound anchors to the bulk of the distribution and lets the State's
// physical clamps absorb the rare excursions outside it.
func robustBounds(values []float64) (pmin, pmax float64, ok bool) {
	finite := make([]float64, 0, len(values))
	for _, p := range values {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			continue
		}
		finite = append(finite, p)
	}
	if len(finite) == 0 {
		return 0, 0, false
	}
	sort.Float64s(finite)
	n := len(finite)
	lo := finite[int(math.Round(0.02*float64(n-1)))]
	hi := finite[int(math.Round(0.98*float64(n-1)))]
	if !(hi > lo) {
		lo, hi = finite[0], finite[n-1]
	}
	return lo, hi, hi > lo
}

// NewLyapunov builds the controller from each cluster's full real-time
// price series (fleet order — only robust price bounds are extracted, not
// the shape, so this is not a forecast), the battery fleet, and the
// interval length.
//
// v is the penalty weight trading queue stability against cost: larger v
// chases cheap prices harder but needs more capacity headroom to stay
// feasible. It is clamped per cluster to the feasibility bound
//
//	vmax = cap / (η·pmax − pmin/η)
//
// under which every in-band price maps its charge/discharge target SoC
// inside [0, cap]: the battery runs empty at the robust price ceiling and
// full at the robust floor. v <= 0 selects vmax itself for every cluster —
// the operating point where the O(1/V) optimality gap is smallest. When
// the robust spread is narrower than the round-trip loss (η²·pmax ≤ pmin)
// no profitable arbitrage exists and the controller degenerates to a
// vanishing V, holding the battery idle.
func NewLyapunov(prices []*timeseries.Series, batteries []Battery, stepHours, v float64) (*Lyapunov, error) {
	if len(prices) == 0 {
		return nil, fmt.Errorf("storage: lyapunov policy needs at least one price series")
	}
	if len(prices) != len(batteries) {
		return nil, fmt.Errorf("storage: %d price series for %d batteries", len(prices), len(batteries))
	}
	if !(stepHours > 0) || math.IsInf(stepHours, 1) {
		return nil, fmt.Errorf("storage: step length %v hours must be positive and finite", stepHours)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, fmt.Errorf("storage: penalty weight %v must be finite", v)
	}
	l := &Lyapunov{requestedV: v, auto: v <= 0, perCluster: make([]lyapunovCluster, len(prices))}
	for c, s := range prices {
		b := batteries[c]
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("storage: cluster %d: %w", c, err)
		}
		pmin, pmax, ok := robustBounds(s.Values)
		if !ok {
			return nil, fmt.Errorf("storage: cluster %d: price series spans [%v, %v], no spread to arbitrage", c, pmin, pmax)
		}
		eta := b.onewayEfficiency()
		vmax := 0.0
		if span := eta*pmax - pmin/eta; span > 0 {
			vmax = b.CapacityKWh / span
		}
		vc := v
		if l.auto || (vmax > 0 && vc > vmax) {
			vc = vmax
		}
		if !(vc > 0) {
			// Either the battery stores nothing or the robust spread is
			// inside the round-trip loss; fall back to a vanishing weight
			// (the efficiency-scaled band then excludes every in-band
			// price, so the controller stays idle).
			vc = math.SmallestNonzeroFloat64
			if b.CapacityKWh > 0 {
				vc = b.CapacityKWh / (pmax - pmin) / 1e6
			}
		}
		// θ places the queue so the discharge target SoC hits empty exactly
		// at the robust price ceiling: T(0) = η·pmax.
		l.perCluster[c] = lyapunovCluster{v: vc, theta: vc * eta * pmax, eta: eta, hours: stepHours}
	}
	return l, nil
}

// Name implements Policy. The auto form names the feasibility-bound
// operating point; an explicit V is echoed so sweeps stay distinguishable
// in reports and world hashes.
func (l *Lyapunov) Name() string {
	if l.auto {
		return "lyapunov(V=auto)"
	}
	return fmt.Sprintf("lyapunov(V=%g)", l.requestedV)
}

// ClusterCount implements the sizing check in Config.Validate.
func (l *Lyapunov) ClusterCount() int { return len(l.perCluster) }

// indifference returns cluster c's SoC-dependent threshold price
// T(SoC) = (θ − SoC)/V. Prices below it (scaled by the charge-leg
// efficiency) trigger charging, prices above it (scaled by the
// discharge-leg efficiency) trigger discharging; the efficiency scaling
// opens a dead band that keeps lossy batteries from churning.
func (l *lyapunovCluster) indifference(socKWh float64) float64 {
	return (l.theta - socKWh) / l.v
}

// Action implements Policy: rate-to-indifference control from the current
// spot price and state of charge only. The returned rate moves SoC exactly
// to the level whose threshold meets this price (capped by the spec's rate
// limits), never past it. Deterministic and allocation-free — the step hot
// path calls this once per cluster per interval, and TestStepZeroAllocs
// pins the whole path at zero heap allocations.
func (l *Lyapunov) Action(c int, price, _ float64, s *State) float64 {
	lc := &l.perCluster[c]
	t := lc.indifference(s.socKWh)
	switch {
	case price*lc.eta > t:
		// Selling stored energy down to the indifference SoC beats holding
		// it even after the discharge-leg loss.
		target := lc.theta - lc.v*price*lc.eta
		kw := (s.socKWh - target) * lc.eta / lc.hours
		return -math.Min(kw, s.spec.MaxDischargeKW)
	case price < t*lc.eta:
		// Buying up to the indifference SoC beats waiting even after the
		// charge-leg loss.
		target := lc.theta - lc.v*price/lc.eta
		kw := (target - s.socKWh) / (lc.eta * lc.hours)
		return math.Min(kw, s.spec.MaxChargeKW)
	default:
		return 0
	}
}

// PriceCap implements PriceCapper: while the battery holds charge, the
// cluster never looks more expensive to the router than the controller's
// current discharge threshold, because the battery absorbs anything above
// it. The cap moves with SoC — a fuller battery advertises a lower
// ceiling — but it is a pure function of checkpointed state, so restored
// and sharded runs reproduce the routing signal exactly.
func (l *Lyapunov) PriceCap(c int, s *State) float64 {
	if s.socKWh <= 0 || s.spec.MaxDischargeKW <= 0 {
		return math.Inf(1)
	}
	lc := &l.perCluster[c]
	return lc.indifference(s.socKWh) / lc.eta
}

// Indifference exposes cluster c's current threshold price for a given
// state of charge (diagnostics and tests).
func (l *Lyapunov) Indifference(c int, socKWh float64) float64 {
	return l.perCluster[c].indifference(socKWh)
}
