package storage

import (
	"math"
	"testing"
	"time"

	"powerroute/internal/timeseries"
)

func testBattery() Battery {
	return Battery{
		CapacityKWh:         100,
		MaxChargeKW:         40,
		MaxDischargeKW:      50,
		RoundTripEfficiency: 0.81,
	}
}

func TestBatteryValidate(t *testing.T) {
	if err := (Battery{}).Validate(); err != nil {
		t.Errorf("zero battery should validate: %v", err)
	}
	if err := testBattery().Validate(); err != nil {
		t.Errorf("test battery should validate: %v", err)
	}
	bad := []Battery{
		{CapacityKWh: -1},
		{MaxChargeKW: -1},
		{MaxDischargeKW: -1},
		{RoundTripEfficiency: 1.5},
		{RoundTripEfficiency: -0.1},
		{InitialSoC: 2},
		// Non-finite parameters defeat the Charge/Discharge clamps (every
		// NaN comparison is false), so Validate must reject them.
		{CapacityKWh: math.NaN()},
		{CapacityKWh: math.Inf(1)},
		{MaxChargeKW: math.NaN()},
		{RoundTripEfficiency: math.NaN()},
		{InitialSoC: math.NaN()},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad battery %d accepted", i)
		}
	}
}

func TestZeroBatteryNoOps(t *testing.T) {
	s := NewState(Battery{})
	if got := s.Charge(100, 1); got != 0 {
		t.Errorf("zero battery charged %v kWh", got)
	}
	if got := s.Discharge(100, 1); got != 0 {
		t.Errorf("zero battery discharged %v kWh", got)
	}
	if s.SoCKWh() != 0 || s.SoCFrac() != 0 {
		t.Errorf("zero battery SoC = %v (%v)", s.SoCKWh(), s.SoCFrac())
	}
}

func TestChargeRespectsRateAndCapacity(t *testing.T) {
	s := NewState(testBattery()) // η_oneway = 0.9
	// Request far above the rate limit: grid draw caps at 40 kW for 1 h.
	if got := s.Charge(1000, 1); got != 40 {
		t.Fatalf("charge drew %v kWh, want 40", got)
	}
	if want := 36.0; math.Abs(s.SoCKWh()-want) > 1e-9 {
		t.Errorf("SoC = %v kWh, want %v (40 kWh × 0.9)", s.SoCKWh(), want)
	}
	// Fill to the brim: headroom is (100−36)/0.9 ≈ 71.1 kWh of grid energy,
	// and no request may push the SoC past capacity.
	drawn := s.Charge(40, 10)
	if math.Abs(s.SoCKWh()-100) > 1e-9 {
		t.Errorf("SoC = %v kWh after fill, want 100", s.SoCKWh())
	}
	if math.Abs(drawn-64.0/0.9) > 1e-9 {
		t.Errorf("fill drew %v kWh, want %v", drawn, 64.0/0.9)
	}
	if got := s.Charge(40, 1); got != 0 {
		t.Errorf("full battery accepted %v kWh", got)
	}
	if got := s.BoughtKWh(); math.Abs(got-(40+64.0/0.9)) > 1e-9 {
		t.Errorf("BoughtKWh = %v", got)
	}
}

func TestDischargeRespectsRateAndStock(t *testing.T) {
	b := testBattery()
	b.InitialSoC = 1
	s := NewState(b) // 100 kWh stored, η_oneway = 0.9
	// Rate-limited: 50 kW for 1 h serves 50 kWh.
	if got := s.Discharge(1000, 1); got != 50 {
		t.Fatalf("discharge served %v kWh, want 50", got)
	}
	if want := 100 - 50/0.9; math.Abs(s.SoCKWh()-want) > 1e-9 {
		t.Errorf("SoC = %v kWh, want %v", s.SoCKWh(), want)
	}
	// Drain the rest: only SoC·η is deliverable.
	rest := s.Discharge(50, 10)
	if want := (100 - 50/0.9) * 0.9; math.Abs(rest-want) > 1e-9 {
		t.Errorf("drain served %v kWh, want %v", rest, want)
	}
	if s.SoCKWh() != 0 {
		t.Errorf("SoC = %v after drain, want 0", s.SoCKWh())
	}
	if got := s.Discharge(50, 1); got != 0 {
		t.Errorf("empty battery served %v kWh", got)
	}
}

// TestRoundTripEfficiency checks energy out = η × energy in across a full
// buy-store-serve cycle.
func TestRoundTripEfficiency(t *testing.T) {
	s := NewState(testBattery())
	in := s.Charge(40, 2) // 80 kWh from the grid
	var out float64
	for i := 0; i < 10; i++ {
		out += s.Discharge(50, 1)
	}
	if want := in * 0.81; math.Abs(out-want) > 1e-9 {
		t.Errorf("round trip returned %v of %v kWh, want %v", out, in, want)
	}
}

func TestThresholdPolicy(t *testing.T) {
	if _, err := NewThreshold(50, 50); err == nil {
		t.Error("inverted thresholds accepted")
	}
	if _, err := NewThreshold(math.NaN(), math.NaN()); err == nil {
		t.Error("NaN thresholds accepted")
	}
	pol, err := NewThreshold(20, 60)
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(testBattery())
	if got := pol.Action(0, 10, 100, s); got != 40 {
		t.Errorf("cheap hour action = %v, want +40 (charge)", got)
	}
	if got := pol.Action(0, 40, 100, s); got != 0 {
		t.Errorf("dead-band action = %v, want 0", got)
	}
	if got := pol.Action(0, 80, 100, s); got != -50 {
		t.Errorf("expensive hour action = %v, want -50 (discharge)", got)
	}
	// Price cap applies only while charge is held.
	if cap := pol.PriceCap(0, s); !math.IsInf(cap, 1) {
		t.Errorf("empty battery price cap = %v, want +Inf", cap)
	}
	s.Charge(40, 1)
	if cap := pol.PriceCap(0, s); cap != 60 {
		t.Errorf("charged battery price cap = %v, want 60", cap)
	}
	// A battery that cannot discharge cannot cap the routing signal, no
	// matter how much charge it holds.
	stuck := NewState(Battery{CapacityKWh: 100, InitialSoC: 1})
	if cap := pol.PriceCap(0, stuck); !math.IsInf(cap, 1) {
		t.Errorf("non-dischargeable battery price cap = %v, want +Inf", cap)
	}
}

func TestPercentilePolicy(t *testing.T) {
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	cheap := timeseries.FromValues(start, time.Hour, []float64{10, 20, 30, 40, 50})
	dear := timeseries.FromValues(start, time.Hour, []float64{110, 120, 130, 140, 150})
	pol, err := NewPercentile([]*timeseries.Series{cheap, dear}, 0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	th := pol.Thresholds()
	if th[0].ChargeBelow != 20 || th[0].DischargeAbove != 40 {
		t.Errorf("cheap-hub thresholds = %+v, want 20/40", th[0])
	}
	if th[1].ChargeBelow != 120 || th[1].DischargeAbove != 140 {
		t.Errorf("dear-hub thresholds = %+v, want 120/140", th[1])
	}
	// The same $35 price charges at the dear hub and idles at the cheap one.
	s := NewState(testBattery())
	if got := pol.Action(0, 35, 100, s); got != 0 {
		t.Errorf("cheap hub at $35: action %v, want 0", got)
	}
	if got := pol.Action(1, 35, 100, s); got != 40 {
		t.Errorf("dear hub at $35: action %v, want +40", got)
	}

	flat := timeseries.FromValues(start, time.Hour, []float64{25, 25, 25, 25})
	if _, err := NewPercentile([]*timeseries.Series{flat}, 0.25, 0.75); err == nil {
		t.Error("flat price history accepted (no dead-band)")
	}
	if _, err := NewPercentile([]*timeseries.Series{cheap}, 0.75, 0.25); err == nil {
		t.Error("inverted quantiles accepted")
	}
	if _, err := NewPercentile(nil, 0.25, 0.75); err == nil {
		t.Error("empty series list accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	pol, err := NewThreshold(20, 60)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Uniform(testBattery(), 3, pol)
	if err := cfg.Validate(3); err != nil {
		t.Errorf("uniform config rejected: %v", err)
	}
	if err := cfg.Validate(4); err == nil {
		t.Error("cluster count mismatch accepted")
	}
	if err := (&Config{Batteries: make([]Battery, 2)}).Validate(2); err == nil {
		t.Error("missing policy accepted")
	}
	bad := Uniform(Battery{CapacityKWh: -1}, 2, pol)
	if err := bad.Validate(2); err == nil {
		t.Error("invalid battery accepted")
	}
	// Per-cluster policies must match the fleet dimension, or dispatch
	// would panic mid-simulation.
	shaver, err := NewPeakShaver([]float64{100, 200}, []float64{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := Uniform(testBattery(), 3, shaver).Validate(3); err == nil {
		t.Error("undersized peak shaver accepted")
	}
	if err := Uniform(testBattery(), 2, shaver).Validate(2); err != nil {
		t.Errorf("correctly sized peak shaver rejected: %v", err)
	}
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	perc, err := NewPercentile([]*timeseries.Series{
		timeseries.FromValues(start, time.Hour, []float64{10, 20, 30, 40}),
	}, 0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if err := Uniform(testBattery(), 2, perc).Validate(2); err == nil {
		t.Error("undersized percentile policy accepted")
	}
}

func TestPeakShaver(t *testing.T) {
	if _, err := NewPeakShaver([]float64{100}, []float64{100}); err == nil {
		t.Error("floor >= target accepted")
	}
	if _, err := NewPeakShaver([]float64{100, 200}, []float64{50}); err == nil {
		t.Error("length mismatch accepted")
	}
	pol, err := NewPeakShaver([]float64{200, 400}, []float64{120, 300})
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(testBattery())
	// Above target: discharge exactly the excess (price is irrelevant).
	if got := pol.Action(0, 999, 250, s); got != -50 {
		t.Errorf("over-target action = %v, want -50", got)
	}
	// Below floor: charge with the headroom under the floor.
	if got := pol.Action(0, 1, 90, s); got != 30 {
		t.Errorf("under-floor action = %v, want +30", got)
	}
	// Between floor and target: idle, holding charge for the next peak.
	if got := pol.Action(0, 1, 150, s); got != 0 {
		t.Errorf("mid-band action = %v, want 0", got)
	}
	// Per-cluster limits: cluster 1 has its own band.
	if got := pol.Action(1, 1, 450, s); got != -50 {
		t.Errorf("cluster 1 over-target action = %v, want -50", got)
	}
}

// TestStateSnapshotRoundTrip: Snapshot/RestoreSnapshot reproduce the
// charge state exactly and refuse physically impossible snapshots.
func TestStateSnapshotRoundTrip(t *testing.T) {
	b := Battery{CapacityKWh: 100, MaxChargeKW: 40, MaxDischargeKW: 30, RoundTripEfficiency: 0.81}
	s := NewState(b)
	s.Charge(40, 1)
	s.Discharge(10, 1)
	snap := s.Snapshot()

	restored := NewState(b)
	if err := restored.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if restored.SoCKWh() != s.SoCKWh() || restored.BoughtKWh() != s.BoughtKWh() || restored.ServedKWh() != s.ServedKWh() {
		t.Fatalf("restored %+v, want %+v", restored.Snapshot(), snap)
	}
	// Continuation behaves identically: same charge acceptance.
	if g, w := restored.Charge(40, 1), s.Charge(40, 1); g != w {
		t.Fatalf("restored battery accepted %v kWh, original %v", g, w)
	}

	bad := []Snapshot{
		{SoCKWh: 101},
		{SoCKWh: -1},
		{SoCKWh: math.NaN()},
		{BoughtKWh: math.Inf(1)},
		{ServedKWh: -0.5},
	}
	for i, v := range bad {
		target := NewState(b)
		if err := target.RestoreSnapshot(v); err == nil {
			t.Errorf("case %d: impossible snapshot %+v accepted", i, v)
		}
	}
}
