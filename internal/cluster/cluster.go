// Package cluster models the CDN server deployment: the nine public
// cluster groups of the paper's data set (§6.1: eighteen usable cities
// grouped by electricity market hub into nine clusters, Fig 19's CA1 CA2 MA
// NY IL VA NJ TX1 TX2), their capacities, and the client-affinity weights
// that reproduce an Akamai-like baseline assignment of states to clusters.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"powerroute/internal/geo"
	"powerroute/internal/market"
	"powerroute/internal/units"
)

// HitsPerServer is the serving capacity of one server at full utilization.
// The absolute value only sets the server-count scale; percentage results
// depend on utilization ratios (§5.1).
const HitsPerServer = 400.0

// Cluster is one public cluster group located at an electricity market hub.
type Cluster struct {
	Code     string // the paper's cluster label (e.g. "NY")
	HubID    string // market hub identifier (e.g. "NYC")
	Location geo.Point
	Zone     geo.TimeZone
	Servers  int
	Capacity units.HitRate // hits/s at full utilization
}

// Utilization returns load/capacity clamped to [0, 1].
func (c Cluster) Utilization(load units.HitRate) float64 {
	if c.Capacity <= 0 {
		return 0
	}
	u := float64(load) / float64(c.Capacity)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Fleet is a set of clusters plus the precomputed state-to-cluster distance
// matrix used for routing and for the paper's client-server distance metric
// (§6.1).
type Fleet struct {
	Clusters []Cluster
	States   []geo.State

	// DistanceKm[s][c] is the population-weighted distance from state s's
	// clients to cluster c.
	DistanceKm [][]float64
}

// NewFleet builds a fleet over the given clusters with distances to every
// US state.
func NewFleet(clusters []Cluster) (*Fleet, error) {
	if len(clusters) == 0 {
		return nil, errors.New("cluster: empty fleet")
	}
	seen := map[string]bool{}
	for _, c := range clusters {
		if c.Code == "" || seen[c.Code] {
			return nil, fmt.Errorf("cluster: bad or duplicate code %q", c.Code)
		}
		seen[c.Code] = true
		if c.Capacity <= 0 || c.Servers <= 0 {
			return nil, fmt.Errorf("cluster %s: capacity %v, servers %d", c.Code, c.Capacity, c.Servers)
		}
	}
	f := &Fleet{Clusters: clusters, States: geo.States()}
	f.DistanceKm = make([][]float64, len(f.States))
	for s, st := range f.States {
		row := make([]float64, len(clusters))
		for c, cl := range clusters {
			row[c] = geo.StateDistance(st, cl.Location).Km()
		}
		f.DistanceKm[s] = row
	}
	return f, nil
}

// Subfleet carves out the sub-deployment a shard owns: the clusters at
// clusterIdx serving the client states at stateIdx, both in fleet order.
// Distances are sliced from the parent's precomputed matrix, so a
// subfleet's geometry is bit-identical to the corresponding rows and
// columns of the parent's — the property the shard-merge invariant rests
// on. Indices must be strictly increasing (preserving fleet order keeps
// allocation loops deterministic across the split) and non-empty.
func (f *Fleet) Subfleet(clusterIdx, stateIdx []int) (*Fleet, error) {
	if len(clusterIdx) == 0 || len(stateIdx) == 0 {
		return nil, errors.New("cluster: empty subfleet")
	}
	for i, c := range clusterIdx {
		if c < 0 || c >= len(f.Clusters) {
			return nil, fmt.Errorf("cluster: subfleet cluster index %d out of range", c)
		}
		if i > 0 && c <= clusterIdx[i-1] {
			return nil, fmt.Errorf("cluster: subfleet cluster indices not strictly increasing at %d", c)
		}
	}
	for i, s := range stateIdx {
		if s < 0 || s >= len(f.States) {
			return nil, fmt.Errorf("cluster: subfleet state index %d out of range", s)
		}
		if i > 0 && s <= stateIdx[i-1] {
			return nil, fmt.Errorf("cluster: subfleet state indices not strictly increasing at %d", s)
		}
	}
	sub := &Fleet{
		Clusters:   make([]Cluster, len(clusterIdx)),
		States:     make([]geo.State, len(stateIdx)),
		DistanceKm: make([][]float64, len(stateIdx)),
	}
	for i, c := range clusterIdx {
		sub.Clusters[i] = f.Clusters[c]
	}
	for i, s := range stateIdx {
		sub.States[i] = f.States[s]
		row := make([]float64, len(clusterIdx))
		for j, c := range clusterIdx {
			row[j] = f.DistanceKm[s][c]
		}
		sub.DistanceKm[i] = row
	}
	return sub, nil
}

// StateCount returns the number of client states.
func (f *Fleet) StateCount() int { return len(f.States) }

// ClusterCount returns the number of clusters.
func (f *Fleet) ClusterCount() int { return len(f.Clusters) }

// Distance returns the population-weighted distance in km from state s's
// clients to cluster c.
func (f *Fleet) Distance(s, c int) float64 { return f.DistanceKm[s][c] }

// Index returns the cluster index by code.
func (f *Fleet) Index(code string) (int, error) {
	for i, c := range f.Clusters {
		if c.Code == code {
			return i, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown cluster %q", code)
}

// TotalCapacity sums all cluster capacities.
func (f *Fleet) TotalCapacity() units.HitRate {
	var sum units.HitRate
	for _, c := range f.Clusters {
		sum += c.Capacity
	}
	return sum
}

// TotalServers sums all cluster server counts.
func (f *Fleet) TotalServers() int {
	sum := 0
	for _, c := range f.Clusters {
		sum += c.Servers
	}
	return sum
}

// NearestCluster returns the cluster index closest to state s.
func (f *Fleet) NearestCluster(s int) int {
	best, bestD := 0, math.Inf(1)
	for c, d := range f.DistanceKm[s] {
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// CandidatesWithin returns the cluster indices within the distance
// threshold of state s, sorted by distance. When none qualify it applies
// the paper's fallback: "the routing scheme finds the closest cluster and
// considers any other nearby clusters (< 50km)" — nearby to that closest
// cluster (§6.1).
func (f *Fleet) CandidatesWithin(s int, thresholdKm float64) []int {
	var out []int
	for c, d := range f.DistanceKm[s] {
		if d <= thresholdKm {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		nearest := f.NearestCluster(s)
		out = append(out, nearest)
		for c, cl := range f.Clusters {
			if c != nearest && geo.Distance(f.Clusters[nearest].Location, cl.Location).Km() < 50 {
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return f.DistanceKm[s][out[i]] < f.DistanceKm[s][out[j]]
	})
	return out
}

// AffinityWeights returns the baseline assignment weights of state s over
// clusters: an Akamai-like split that prefers nearby clusters but keeps
// secondary servers warm (network affinity and 95/5 optimization cause real
// mappings to spread, §4 "there are many cases where clients are not mapped
// to the nearest cluster geographically"). Weights decay exponentially with
// distance over the top three nearest clusters and sum to 1.
func (f *Fleet) AffinityWeights(s int) []float64 {
	type cand struct {
		idx int
		d   float64
	}
	cands := make([]cand, 0, len(f.Clusters))
	for c, d := range f.DistanceKm[s] {
		cands = append(cands, cand{c, d})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	k := 3
	if len(cands) < k {
		k = len(cands)
	}
	weights := make([]float64, len(f.Clusters))
	const decayKm = 250.0
	sum := 0.0
	for _, c := range cands[:k] {
		w := math.Exp(-c.d / decayKm)
		weights[c.idx] = w
		sum += w
	}
	for i := range weights {
		weights[i] /= sum
	}
	return weights
}

// DeriveFleet sizes the nine-cluster deployment from a demand profile: each
// cluster's capacity is set so its peak baseline load runs at the target
// utilization (the paper derives capacities from observed hit rates and
// load levels, §6.1). peakByState gives each state's peak demand in hits/s.
func DeriveFleet(peakByState []float64, targetUtilization float64) (*Fleet, error) {
	if targetUtilization <= 0 || targetUtilization > 1 {
		return nil, fmt.Errorf("cluster: target utilization %v outside (0,1]", targetUtilization)
	}
	hubs := market.ClusterHubs()
	clusters := make([]Cluster, len(hubs))
	for i, h := range hubs {
		clusters[i] = Cluster{
			Code: h.Cluster, HubID: h.ID, Location: h.Location, Zone: h.Zone,
			Servers: 1, Capacity: 1, // placeholder; sized below
		}
	}
	f, err := NewFleet(clusters)
	if err != nil {
		return nil, err
	}
	states := geo.States()
	if len(peakByState) != len(states) {
		return nil, fmt.Errorf("cluster: %d state peaks for %d states", len(peakByState), len(states))
	}
	// Peak load per cluster under the baseline affinity assignment. State
	// peaks do not align perfectly in time, so this overestimates slightly —
	// acceptable: it pads capacity headroom.
	peaks := make([]float64, len(clusters))
	for s := range states {
		w := f.AffinityWeights(s)
		for c, wc := range w {
			peaks[c] += wc * peakByState[s]
		}
	}
	for i := range f.Clusters {
		capacity := peaks[i] / targetUtilization
		if capacity < HitsPerServer {
			capacity = HitsPerServer
		}
		f.Clusters[i].Capacity = units.HitRate(capacity)
		f.Clusters[i].Servers = int(math.Ceil(capacity / HitsPerServer))
	}
	return f, nil
}
