package cluster

import (
	"math"
	"testing"

	"powerroute/internal/units"
)

// testPeaks builds a plausible per-state peak demand vector proportional to
// population: ~1M hits/s national peak.
func testPeaks(t *testing.T) []float64 {
	t.Helper()
	f, err := DeriveFleet(nil, 0.7)
	if err == nil {
		t.Fatal("DeriveFleet(nil) should fail")
	}
	_ = f
	// Build from geo data via the exported States on a fleet; simpler:
	// uniform synthetic peaks.
	peaks := make([]float64, 51)
	for i := range peaks {
		peaks[i] = 20000
	}
	return peaks
}

func TestDeriveFleet(t *testing.T) {
	peaks := testPeaks(t)
	f, err := DeriveFleet(peaks, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clusters) != 9 {
		t.Fatalf("clusters = %d, want 9", len(f.Clusters))
	}
	if len(f.States) != 51 {
		t.Fatalf("states = %d, want 51", len(f.States))
	}
	var totalPeak float64
	for _, p := range peaks {
		totalPeak += p
	}
	// Total capacity must cover the summed peaks with the target headroom.
	if float64(f.TotalCapacity()) < totalPeak {
		t.Errorf("total capacity %.0f below total peak %.0f", float64(f.TotalCapacity()), totalPeak)
	}
	for _, c := range f.Clusters {
		if c.Servers <= 0 || c.Capacity <= 0 {
			t.Errorf("cluster %s: %d servers, %v capacity", c.Code, c.Servers, c.Capacity)
		}
		// Server count is consistent with capacity.
		if math.Abs(float64(c.Servers)*HitsPerServer-float64(c.Capacity)) > HitsPerServer {
			t.Errorf("cluster %s: servers %d inconsistent with capacity %v", c.Code, c.Servers, c.Capacity)
		}
	}
	// Distance matrix populated and plausible.
	for s := range f.States {
		for c := range f.Clusters {
			d := f.DistanceKm[s][c]
			if d < 0 || d > 9000 {
				t.Fatalf("distance[%d][%d] = %v", s, c, d)
			}
		}
	}
}

func TestDeriveFleetErrors(t *testing.T) {
	peaks := testPeaks(t)
	if _, err := DeriveFleet(peaks, 0); err == nil {
		t.Error("zero utilization should fail")
	}
	if _, err := DeriveFleet(peaks, 1.5); err == nil {
		t.Error("utilization > 1 should fail")
	}
	if _, err := DeriveFleet(peaks[:5], 0.7); err == nil {
		t.Error("wrong peak vector length should fail")
	}
}

func TestNewFleetValidation(t *testing.T) {
	if _, err := NewFleet(nil); err == nil {
		t.Error("empty fleet should fail")
	}
	good := Cluster{Code: "A", HubID: "NYC", Servers: 10, Capacity: 4000}
	dup := []Cluster{good, {Code: "A", HubID: "CHI", Servers: 10, Capacity: 4000}}
	if _, err := NewFleet(dup); err == nil {
		t.Error("duplicate codes should fail")
	}
	bad := []Cluster{{Code: "B", HubID: "NYC", Servers: 0, Capacity: 4000}}
	if _, err := NewFleet(bad); err == nil {
		t.Error("zero servers should fail")
	}
}

func TestUtilization(t *testing.T) {
	c := Cluster{Capacity: 1000}
	cases := []struct {
		load units.HitRate
		want float64
	}{
		{0, 0}, {500, 0.5}, {1000, 1}, {2000, 1}, {-5, 0},
	}
	for _, cs := range cases {
		if got := c.Utilization(cs.load); got != cs.want {
			t.Errorf("Utilization(%v) = %v, want %v", cs.load, got, cs.want)
		}
	}
	if (Cluster{}).Utilization(100) != 0 {
		t.Error("zero-capacity utilization should be 0")
	}
}

func TestIndexAndTotals(t *testing.T) {
	f, err := DeriveFleet(testPeaks(t), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	i, err := f.Index("NY")
	if err != nil || f.Clusters[i].HubID != "NYC" {
		t.Errorf("Index(NY) = %d, %v", i, err)
	}
	if _, err := f.Index("XX"); err == nil {
		t.Error("unknown code should fail")
	}
	if f.TotalServers() <= 0 {
		t.Error("TotalServers should be positive")
	}
}

func TestNearestClusterGeoLocality(t *testing.T) {
	f, err := DeriveFleet(testPeaks(t), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	wantNearest := map[string]string{
		"MA": "MA",  // Massachusetts → Boston
		"IL": "IL",  // Illinois → Chicago
		"CA": "CA2", // California (centroid is south) → LA
		"TX": "TX2", // Texas centroid near Austin
		"VA": "VA",
	}
	for stateCode, clusterCode := range wantNearest {
		var s int
		for i, st := range f.States {
			if st.Code == stateCode {
				s = i
				break
			}
		}
		got := f.Clusters[f.NearestCluster(s)].Code
		if got != clusterCode {
			t.Errorf("nearest cluster for %s = %s, want %s", stateCode, got, clusterCode)
		}
	}
}

func TestCandidatesWithin(t *testing.T) {
	f, err := DeriveFleet(testPeaks(t), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	var ma int
	for i, st := range f.States {
		if st.Code == "MA" {
			ma = i
			break
		}
	}
	// Tight threshold: Boston only.
	cands := f.CandidatesWithin(ma, 100)
	if len(cands) != 1 || f.Clusters[cands[0]].Code != "MA" {
		t.Errorf("MA@100km candidates = %v", names(f, cands))
	}
	// 400 km reaches Boston + NYC area clusters.
	cands = f.CandidatesWithin(ma, 400)
	if len(cands) < 3 {
		t.Errorf("MA@400km candidates = %v, want ≥ 3 (MA, NY, NJ)", names(f, cands))
	}
	// Sorted by distance.
	for i := 1; i < len(cands); i++ {
		if f.DistanceKm[ma][cands[i-1]] > f.DistanceKm[ma][cands[i]] {
			t.Error("candidates not distance-sorted")
		}
	}
	// Continental sweep covers everything.
	if got := f.CandidatesWithin(ma, 5000); len(got) != 9 {
		t.Errorf("MA@5000km = %d candidates, want 9", len(got))
	}
}

func TestCandidatesFallback(t *testing.T) {
	// Alaska has no cluster within 1000 km: the paper's fallback gives the
	// nearest cluster plus any cluster within 50 km of it (§6.1). The NYC
	// and Newark clusters are ~16 km apart, so a Connecticut client with a
	// 0 km threshold should see both.
	f, err := DeriveFleet(testPeaks(t), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	var ak, ct int
	for i, st := range f.States {
		switch st.Code {
		case "AK":
			ak = i
		case "CT":
			ct = i
		}
	}
	cands := f.CandidatesWithin(ak, 1000)
	if len(cands) == 0 {
		t.Fatal("Alaska fallback returned nothing")
	}
	if f.Clusters[cands[0]].Code != "CA1" && f.Clusters[cands[0]].Code != "CA2" {
		t.Errorf("Alaska nearest = %s, want a California cluster", f.Clusters[cands[0]].Code)
	}
	cands = f.CandidatesWithin(ct, 0)
	if len(cands) < 1 {
		t.Fatal("CT fallback empty")
	}
	// CT's nearest is NY or NJ; the twin <50km cluster must also appear.
	if len(cands) < 2 {
		t.Errorf("CT@0km = %v, want the NYC/Newark pair via the <50km rule", names(f, cands))
	}
}

func TestAffinityWeights(t *testing.T) {
	f, err := DeriveFleet(testPeaks(t), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for s := range f.States {
		w := f.AffinityWeights(s)
		sum := 0.0
		nonZero := 0
		for _, v := range w {
			if v < 0 {
				t.Fatalf("state %d: negative weight", s)
			}
			if v > 0 {
				nonZero++
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("state %d: weights sum to %v", s, sum)
		}
		if nonZero == 0 || nonZero > 3 {
			t.Fatalf("state %d: %d nonzero weights, want 1–3", s, nonZero)
		}
	}
	// Locality: Massachusetts' heaviest weight is Boston.
	var ma int
	for i, st := range f.States {
		if st.Code == "MA" {
			ma = i
		}
	}
	w := f.AffinityWeights(ma)
	best, bestW := 0, 0.0
	for c, v := range w {
		if v > bestW {
			best, bestW = c, v
		}
	}
	if f.Clusters[best].Code != "MA" {
		t.Errorf("MA's top affinity = %s, want MA", f.Clusters[best].Code)
	}
}

func names(f *Fleet, idx []int) []string {
	out := make([]string, len(idx))
	for i, c := range idx {
		out[i] = f.Clusters[c].Code
	}
	return out
}

// TestSubfleet: a subfleet's clusters, states, and distances are the
// parent's rows and columns bit for bit; bad index lists are rejected.
func TestSubfleet(t *testing.T) {
	f, err := DeriveFleet(testPeaks(t), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := f.Subfleet([]int{0, 2}, []int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Clusters) != 2 || len(sub.States) != 3 {
		t.Fatalf("subfleet is %d×%d, want 2×3", len(sub.Clusters), len(sub.States))
	}
	for i, c := range []int{0, 2} {
		if sub.Clusters[i].Code != f.Clusters[c].Code {
			t.Errorf("cluster %d is %s, want %s", i, sub.Clusters[i].Code, f.Clusters[c].Code)
		}
	}
	for i, s := range []int{1, 3, 4} {
		if sub.States[i].Code != f.States[s].Code {
			t.Errorf("state %d is %s, want %s", i, sub.States[i].Code, f.States[s].Code)
		}
		for j, c := range []int{0, 2} {
			if sub.DistanceKm[i][j] != f.DistanceKm[s][c] {
				t.Errorf("distance [%d][%d] = %v, want parent's %v", i, j, sub.DistanceKm[i][j], f.DistanceKm[s][c])
			}
		}
	}

	for _, tc := range [][2][]int{
		{{}, {0}},        // empty clusters
		{{0}, {}},        // empty states
		{{2, 0}, {0}},    // not increasing
		{{0, 0}, {0}},    // duplicate
		{{0, 99}, {0}},   // cluster out of range
		{{0}, {-1}},      // state out of range
		{{0}, {0, 9999}}, // state out of range high
	} {
		if _, err := f.Subfleet(tc[0], tc[1]); err == nil {
			t.Errorf("Subfleet(%v, %v) accepted", tc[0], tc[1])
		}
	}
}
