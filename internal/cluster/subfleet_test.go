package cluster

import (
	"testing"
)

// TestNewFleetEmpty: a fleet with no clusters is a configuration error,
// not a degenerate-but-valid deployment — every consumer (routing,
// sharding, the vet fixtures' miniature worlds) assumes at least one
// cluster exists.
func TestNewFleetEmpty(t *testing.T) {
	if _, err := NewFleet(nil); err == nil {
		t.Fatal("NewFleet(nil) accepted an empty fleet")
	}
	if _, err := NewFleet([]Cluster{}); err == nil {
		t.Fatal("NewFleet([]) accepted an empty fleet")
	}
}

// TestSubfleetSingleClusterPartition: the finest shard split — one
// cluster per shard, every shard seeing every client state — must
// reproduce the parent's geometry exactly: each subfleet is a single
// column of the parent's distance matrix, and the shards' capacities
// and server counts sum back to the fleet's.
func TestSubfleetSingleClusterPartition(t *testing.T) {
	f, err := DeriveFleet(testPeaks(t), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	allStates := make([]int, f.StateCount())
	for i := range allStates {
		allStates[i] = i
	}
	var capSum float64
	var serverSum int
	for c := range f.Clusters {
		sub, err := f.Subfleet([]int{c}, allStates)
		if err != nil {
			t.Fatalf("cluster %d: %v", c, err)
		}
		if sub.ClusterCount() != 1 || sub.StateCount() != f.StateCount() {
			t.Fatalf("cluster %d: subfleet is %d×%d, want 1×%d",
				c, sub.ClusterCount(), sub.StateCount(), f.StateCount())
		}
		if sub.Clusters[0].Code != f.Clusters[c].Code {
			t.Fatalf("cluster %d: subfleet holds %s, want %s", c, sub.Clusters[0].Code, f.Clusters[c].Code)
		}
		for s := range allStates {
			if sub.DistanceKm[s][0] != f.DistanceKm[s][c] {
				t.Errorf("cluster %d state %d: distance %v, want parent's %v",
					c, s, sub.DistanceKm[s][0], f.DistanceKm[s][c])
			}
			// A one-cluster fleet has exactly one nearest cluster.
			if got := sub.NearestCluster(s); got != 0 {
				t.Errorf("cluster %d state %d: NearestCluster = %d, want 0", c, s, got)
			}
		}
		// Degenerate affinity: all weight on the only cluster.
		if w := sub.AffinityWeights(0); len(w) != 1 || w[0] != 1 {
			t.Errorf("cluster %d: single-cluster affinity weights %v, want [1]", c, w)
		}
		capSum += float64(sub.TotalCapacity())
		serverSum += sub.TotalServers()
	}
	if capSum != float64(f.TotalCapacity()) {
		t.Errorf("partition capacity sum %v, fleet total %v", capSum, f.TotalCapacity())
	}
	if serverSum != f.TotalServers() {
		t.Errorf("partition server sum %d, fleet total %d", serverSum, f.TotalServers())
	}
}
