// Package geo provides the geographic substrate of the simulator: great
// circle distance, coordinates for electricity market hubs and for the
// population centroids of US states, and the population-weighted
// client-to-server distance metric used by the paper (§6.1).
//
// The paper uses geographic distance as a coarse proxy for network
// performance because the Akamai trace localizes clients only to states.
// We embed public census figures (state populations and approximate
// population centroids) so the same proxy can be computed offline.
package geo

import (
	"fmt"
	"math"

	"powerroute/internal/units"
)

// EarthRadiusKm is the mean Earth radius used for great-circle distances.
const EarthRadiusKm = 6371.0

// Point is a geographic coordinate in decimal degrees.
type Point struct {
	Lat float64 // latitude, positive north
	Lon float64 // longitude, positive east (US longitudes are negative)
}

// String formats the point as "lat,lon".
func (p Point) String() string { return fmt.Sprintf("%.2f,%.2f", p.Lat, p.Lon) }

// Valid reports whether the point is a plausible Earth coordinate.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

// Distance returns the great-circle (haversine) distance between two points.
func Distance(a, b Point) units.Distance {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return units.Distance(2 * EarthRadiusKm * math.Asin(math.Sqrt(h)))
}

// TimeZone is a simplified US time zone identified by its standard-time
// offset from UTC in hours. The simulator does not model daylight saving
// time: diurnal load and price profiles are anchored to standard local time,
// which is accurate to within one hour and irrelevant to the shape of the
// results.
type TimeZone int

// Continental US time zones (standard offsets from UTC).
const (
	Eastern  TimeZone = -5
	Central  TimeZone = -6
	Mountain TimeZone = -7
	Pacific  TimeZone = -8
	Alaska   TimeZone = -9
	Hawaii   TimeZone = -10
)

// LocalHour converts an hour-of-day in UTC to the zone's standard local
// hour in [0, 24).
func (tz TimeZone) LocalHour(utcHour int) int {
	h := (utcHour + int(tz)) % 24
	if h < 0 {
		h += 24
	}
	return h
}

// String names the zone.
func (tz TimeZone) String() string {
	switch tz {
	case Eastern:
		return "ET"
	case Central:
		return "CT"
	case Mountain:
		return "MT"
	case Pacific:
		return "PT"
	case Alaska:
		return "AKT"
	case Hawaii:
		return "HT"
	default:
		return fmt.Sprintf("UTC%+d", int(tz))
	}
}
