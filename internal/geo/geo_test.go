package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Reference city coordinates used by the paper's distance discussion (§6.2).
var (
	boston     = Point{42.36, -71.06}
	chicago    = Point{41.88, -87.63}
	alexandria = Point{38.80, -77.05}
	nyc        = Point{40.71, -74.01}
	paloAlto   = Point{37.44, -122.14}
	losAngeles = Point{34.05, -118.24}
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		name     string
		a, b     Point
		wantKm   float64
		tolKm    float64
		paperRef string
	}{
		// The paper cites Boston–Alexandria ≈ 650 km and Boston–Chicago
		// ≈ 1400 km (§6.2).
		{"Boston-Alexandria", boston, alexandria, 650, 60, "§6.2"},
		{"Boston-Chicago", boston, chicago, 1400, 60, "§6.2"},
		{"Boston-NYC", boston, nyc, 300, 40, "fig 10c pair"},
		{"PaloAlto-LA", paloAlto, losAngeles, 500, 60, "fig 8 CAISO pair"},
	}
	for _, c := range cases {
		got := Distance(c.a, c.b).Km()
		if math.Abs(got-c.wantKm) > c.tolKm {
			t.Errorf("%s: distance = %.0f km, want %.0f±%.0f (%s)",
				c.name, got, c.wantKm, c.tolKm, c.paperRef)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	gen := func(seedA, seedB int64) (Point, Point) {
		a := Point{Lat: float64(seedA%9000)/100 - 45, Lon: float64(seedA%18000)/100 - 90}
		b := Point{Lat: float64(seedB%9000)/100 - 45, Lon: float64(seedB%18000)/100 - 90}
		return a, b
	}
	// Symmetry and non-negativity.
	f := func(sa, sb int64) bool {
		a, b := gen(sa, sb)
		d1 := Distance(a, b).Km()
		d2 := Distance(b, a).Km()
		return d1 >= 0 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error("symmetry:", err)
	}
	// Identity: distance to self is zero.
	g := func(sa int64) bool {
		a, _ := gen(sa, sa)
		return Distance(a, a).Km() < 1e-9
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error("identity:", err)
	}
	// Triangle inequality (with tiny numerical slack).
	h := func(sa, sb, sc int64) bool {
		a, b := gen(sa, sb)
		c, _ := gen(sc, sc)
		ab := Distance(a, b).Km()
		bc := Distance(b, c).Km()
		ac := Distance(a, c).Km()
		return ac <= ab+bc+1e-6
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error("triangle:", err)
	}
}

func TestDistanceBounds(t *testing.T) {
	// No two points on Earth are farther apart than half the circumference.
	half := math.Pi * EarthRadiusKm
	d := Distance(Point{90, 0}, Point{-90, 0}).Km()
	if math.Abs(d-half) > 1 {
		t.Errorf("pole-to-pole = %.0f km, want %.0f", d, half)
	}
}

func TestStatesTable(t *testing.T) {
	all := States()
	if len(all) != 51 {
		t.Fatalf("States() returned %d entries, want 51 (50 states + DC)", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if len(s.Code) != 2 {
			t.Errorf("state %q: bad code %q", s.Name, s.Code)
		}
		if seen[s.Code] {
			t.Errorf("duplicate state code %q", s.Code)
		}
		seen[s.Code] = true
		if s.Population <= 0 {
			t.Errorf("state %s: population %d", s.Code, s.Population)
		}
		if !s.Centroid.Valid() {
			t.Errorf("state %s: invalid centroid %v", s.Code, s.Centroid)
		}
		// All US population centroids are in the northern/western hemisphere.
		if s.Centroid.Lat < 18 || s.Centroid.Lat > 72 || s.Centroid.Lon > -66 || s.Centroid.Lon < -180 {
			t.Errorf("state %s: implausible centroid %v", s.Code, s.Centroid)
		}
	}
	// US population in 2008 was just over 300M.
	if tot := TotalUSPopulation(); tot < 290_000_000 || tot > 320_000_000 {
		t.Errorf("TotalUSPopulation() = %d, want ≈ 304M", tot)
	}
}

func TestStatesSortedAndCopied(t *testing.T) {
	a := States()
	for i := 1; i < len(a); i++ {
		if a[i-1].Code >= a[i].Code {
			t.Fatalf("States() not sorted: %q before %q", a[i-1].Code, a[i].Code)
		}
	}
	// Mutating the returned slice must not affect the package table.
	a[0].Population = -1
	b := States()
	if b[0].Population == -1 {
		t.Error("States() exposes internal storage")
	}
}

func TestStateByCode(t *testing.T) {
	ca, err := StateByCode("CA")
	if err != nil {
		t.Fatal(err)
	}
	if ca.Name != "California" || ca.Zone != Pacific {
		t.Errorf("CA = %+v", ca)
	}
	if _, err := StateByCode("ZZ"); err == nil {
		t.Error("StateByCode(ZZ) did not fail")
	}
	if _, err := StateByCode(""); err == nil {
		t.Error("StateByCode(empty) did not fail")
	}
}

func TestStateDistanceGeoLocality(t *testing.T) {
	// Massachusetts clients must be far closer to a Boston server than to a
	// Palo Alto server; the inverse for California clients.
	ma, _ := StateByCode("MA")
	ca, _ := StateByCode("CA")
	if StateDistance(ma, boston) >= StateDistance(ma, paloAlto) {
		t.Error("MA clients closer to Palo Alto than Boston")
	}
	if StateDistance(ca, paloAlto) >= StateDistance(ca, boston) {
		t.Error("CA clients closer to Boston than Palo Alto")
	}
}

func TestLocalHour(t *testing.T) {
	cases := []struct {
		tz   TimeZone
		utc  int
		want int
	}{
		{Eastern, 0, 19},  // midnight UTC is 7pm EST
		{Eastern, 12, 7},  // noon UTC is 7am EST
		{Pacific, 0, 16},  // midnight UTC is 4pm PST
		{Pacific, 8, 0},   // 8am UTC is midnight PST
		{Central, 23, 17}, // 11pm UTC is 5pm CST
		{Hawaii, 5, 19},
	}
	for _, c := range cases {
		if got := c.tz.LocalHour(c.utc); got != c.want {
			t.Errorf("%v.LocalHour(%d) = %d, want %d", c.tz, c.utc, got, c.want)
		}
	}
}

func TestLocalHourRangeProperty(t *testing.T) {
	f := func(h int) bool {
		h = ((h % 24) + 24) % 24
		for _, tz := range []TimeZone{Eastern, Central, Mountain, Pacific, Alaska, Hawaii} {
			lh := tz.LocalHour(h)
			if lh < 0 || lh > 23 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeZoneString(t *testing.T) {
	if Eastern.String() != "ET" || Pacific.String() != "PT" {
		t.Error("time zone names wrong")
	}
	if TimeZone(3).String() != "UTC+3" {
		t.Errorf("TimeZone(3) = %q", TimeZone(3).String())
	}
}
