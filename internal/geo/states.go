package geo

import (
	"fmt"
	"sort"

	"powerroute/internal/units"
)

// State describes one US state (or the District of Columbia) as a client
// population: its size and the approximate centroid of where its people
// live. The paper derives "basic population density functions for each US
// state" from census data (§6.1); a population-weighted centroid is the
// single-point equivalent and is accurate enough for the client-server
// distance proxy, whose own granularity is the state.
type State struct {
	Code       string   // two-letter postal code
	Name       string   // full name
	Population int      // ~2008 resident population
	Centroid   Point    // approximate population centroid
	Zone       TimeZone // majority time zone
}

// states embeds public census facts: ~2008 populations (thousands rounded
// to the nearest thousand) and approximate population centroids. Centroids
// are weighted toward each state's metropolitan areas, not its geometric
// center (e.g. New York's sits near NYC, Illinois' near Chicago).
var states = []State{
	{"AL", "Alabama", 4662000, Point{32.80, -86.70}, Central},
	{"AK", "Alaska", 686000, Point{61.20, -149.90}, Alaska},
	{"AZ", "Arizona", 6500000, Point{33.40, -112.00}, Mountain},
	{"AR", "Arkansas", 2855000, Point{34.80, -92.40}, Central},
	{"CA", "California", 36756000, Point{35.46, -119.35}, Pacific},
	{"CO", "Colorado", 4939000, Point{39.70, -104.90}, Mountain},
	{"CT", "Connecticut", 3501000, Point{41.50, -72.90}, Eastern},
	{"DE", "Delaware", 873000, Point{39.40, -75.60}, Eastern},
	{"DC", "District of Columbia", 592000, Point{38.90, -77.00}, Eastern},
	{"FL", "Florida", 18328000, Point{27.80, -81.60}, Eastern},
	{"GA", "Georgia", 9686000, Point{33.30, -84.40}, Eastern},
	{"HI", "Hawaii", 1288000, Point{21.30, -157.80}, Hawaii},
	{"ID", "Idaho", 1524000, Point{43.60, -116.20}, Mountain},
	{"IL", "Illinois", 12902000, Point{41.30, -88.40}, Central},
	{"IN", "Indiana", 6377000, Point{39.90, -86.30}, Eastern},
	{"IA", "Iowa", 3003000, Point{41.90, -93.40}, Central},
	{"KS", "Kansas", 2802000, Point{38.50, -96.80}, Central},
	{"KY", "Kentucky", 4269000, Point{37.80, -85.30}, Eastern},
	{"LA", "Louisiana", 4411000, Point{30.70, -91.50}, Central},
	{"ME", "Maine", 1316000, Point{44.40, -69.80}, Eastern},
	{"MD", "Maryland", 5634000, Point{39.10, -76.80}, Eastern},
	{"MA", "Massachusetts", 6498000, Point{42.27, -71.36}, Eastern},
	{"MI", "Michigan", 10003000, Point{42.87, -84.00}, Eastern},
	{"MN", "Minnesota", 5220000, Point{45.30, -93.90}, Central},
	{"MS", "Mississippi", 2939000, Point{32.60, -89.70}, Central},
	{"MO", "Missouri", 5912000, Point{38.50, -92.50}, Central},
	{"MT", "Montana", 967000, Point{46.70, -111.80}, Mountain},
	{"NE", "Nebraska", 1783000, Point{41.20, -97.00}, Central},
	{"NV", "Nevada", 2600000, Point{36.80, -115.60}, Pacific},
	{"NH", "New Hampshire", 1316000, Point{43.00, -71.50}, Eastern},
	{"NJ", "New Jersey", 8683000, Point{40.40, -74.40}, Eastern},
	{"NM", "New Mexico", 1984000, Point{34.80, -106.40}, Mountain},
	{"NY", "New York", 19490000, Point{41.20, -74.40}, Eastern},
	{"NC", "North Carolina", 9222000, Point{35.50, -79.80}, Eastern},
	{"ND", "North Dakota", 641000, Point{47.40, -100.30}, Central},
	{"OH", "Ohio", 11485000, Point{40.20, -82.70}, Eastern},
	{"OK", "Oklahoma", 3642000, Point{35.50, -97.20}, Central},
	{"OR", "Oregon", 3790000, Point{44.90, -123.00}, Pacific},
	{"PA", "Pennsylvania", 12448000, Point{40.45, -76.70}, Eastern},
	{"RI", "Rhode Island", 1051000, Point{41.80, -71.40}, Eastern},
	{"SC", "South Carolina", 4480000, Point{34.00, -81.00}, Eastern},
	{"SD", "South Dakota", 804000, Point{44.00, -100.00}, Central},
	{"TN", "Tennessee", 6215000, Point{35.80, -86.40}, Central},
	{"TX", "Texas", 24327000, Point{30.90, -97.40}, Central},
	{"UT", "Utah", 2736000, Point{40.40, -111.90}, Mountain},
	{"VT", "Vermont", 621000, Point{44.10, -72.70}, Eastern},
	{"VA", "Virginia", 7769000, Point{38.00, -77.60}, Eastern},
	{"WA", "Washington", 6549000, Point{47.40, -121.80}, Pacific},
	{"WV", "West Virginia", 1814000, Point{38.70, -80.70}, Eastern},
	{"WI", "Wisconsin", 5628000, Point{43.70, -88.70}, Central},
	{"WY", "Wyoming", 533000, Point{42.90, -107.00}, Mountain},
}

var stateByCode = func() map[string]*State {
	m := make(map[string]*State, len(states))
	for i := range states {
		m[states[i].Code] = &states[i]
	}
	return m
}()

// States returns all US states plus DC, sorted by postal code. The returned
// slice is a copy; callers may mutate it freely.
func States() []State {
	out := make([]State, len(states))
	copy(out, states)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// StateByCode looks up a state by its two-letter postal code.
func StateByCode(code string) (State, error) {
	if s, ok := stateByCode[code]; ok {
		return *s, nil
	}
	return State{}, fmt.Errorf("geo: unknown state code %q", code)
}

// TotalUSPopulation returns the sum of all state populations in the table.
func TotalUSPopulation() int {
	total := 0
	for i := range states {
		total += states[i].Population
	}
	return total
}

// StateDistance returns the population-weighted distance between the
// clients of a state and a server location: the haversine distance from the
// state's population centroid to the server point. This is the paper's
// client-server distance metric at the resolution its data permits (§6.1).
func StateDistance(s State, server Point) units.Distance {
	return Distance(s.Centroid, server)
}
