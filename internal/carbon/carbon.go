// Package carbon implements the §8 "Environmental Cost" extension: a
// time-varying carbon-intensity signal per market region, so the router can
// minimize gCO₂ instead of dollars. "The environmental impact of a service
// is time-varying ... the footprint varies depending upon what generating
// assets are active" — seasonal (hydro), weekly (fuel mix), and hourly
// (wind, demand-driven marginal units).
package carbon

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/market"
	"powerroute/internal/timeseries"
)

// Profile describes a region's generation mix for intensity synthesis.
type Profile struct {
	// BaseIntensity is the average grid intensity in gCO₂/kWh.
	BaseIntensity float64
	// DemandCoupling scales how much the marginal intensity rises with
	// daily demand (dirtier peakers at the margin during peaks).
	DemandCoupling float64
	// WindShare is the share of intermittent wind whose arrival cuts the
	// marginal intensity, mostly at night.
	WindShare float64
	// HydroSeasonal marks spring-hydro regions whose intensity dips with
	// snowmelt.
	HydroSeasonal bool
}

// RegionProfile returns the 2006-2009-era generation mix profile for an
// RTO (§2.2 sketches the mixes: ~50% coal nationally, hydro in the
// Northwest, gas-dominated Texas, nuclear/gas New England).
func RegionProfile(r market.RTO) Profile {
	switch r {
	case market.MISO:
		return Profile{BaseIntensity: 750, DemandCoupling: 0.10, WindShare: 0.08}
	case market.PJM:
		return Profile{BaseIntensity: 620, DemandCoupling: 0.12, WindShare: 0.03}
	case market.ERCOT:
		return Profile{BaseIntensity: 520, DemandCoupling: 0.15, WindShare: 0.12}
	case market.NYISO:
		return Profile{BaseIntensity: 400, DemandCoupling: 0.18, WindShare: 0.03}
	case market.ISONE:
		return Profile{BaseIntensity: 420, DemandCoupling: 0.15, WindShare: 0.04}
	case market.CAISO:
		return Profile{BaseIntensity: 350, DemandCoupling: 0.20, WindShare: 0.06, HydroSeasonal: true}
	default:
		return Profile{BaseIntensity: 550, DemandCoupling: 0.12, WindShare: 0.05}
	}
}

// Intensity synthesizes an hourly carbon-intensity series (gCO₂/kWh) for a
// hub, deterministically from the seed.
func Intensity(seed int64, hub market.Hub, start time.Time, hours int) *timeseries.Series {
	p := RegionProfile(hub.RTO)
	rng := rand.New(rand.NewSource(seed ^ hashString(hub.ID) ^ 0x0c02_9999))
	out := timeseries.New(start, timeseries.Hourly, hours)
	wind := 0.0
	const windPhi = 0.95 // wind regimes persist for days
	for t := 0; t < hours; t++ {
		at := start.Add(time.Duration(t) * time.Hour)
		localHour := hub.Zone.LocalHour(at.Hour())
		// Marginal units get dirtier toward the daily peak.
		diurnal := 1 + p.DemandCoupling*market.DiurnalFactor(1, localHour) - p.DemandCoupling
		// Wind: AR regime, strongest at night.
		wind = windPhi*wind + math.Sqrt(1-windPhi*windPhi)*rng.NormFloat64()
		nightBoost := 1.0
		if localHour <= 6 {
			nightBoost = 1.5
		}
		windCut := p.WindShare * nightBoost * (0.5 + 0.5*math.Tanh(wind))
		season := 1.0
		if p.HydroSeasonal {
			season = 1 - 0.15*math.Exp(-sq(float64(at.YearDay())-105)/(2*38*38))
		}
		v := p.BaseIntensity * diurnal * (1 - windCut) * season
		if v < 50 {
			v = 50
		}
		out.Values[t] = v
	}
	return out
}

func sq(x float64) float64 { return x * x }

func hashString(s string) int64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return int64(h)
}

// FleetSeries builds per-cluster intensity series aligned with a fleet (for
// sim.Scenario.Carbon / DecisionSeries).
func FleetSeries(seed int64, f *cluster.Fleet, start time.Time, hours int) ([]*timeseries.Series, error) {
	out := make([]*timeseries.Series, len(f.Clusters))
	for i, c := range f.Clusters {
		hub, err := market.HubByID(c.HubID)
		if err != nil {
			return nil, fmt.Errorf("carbon: cluster %s: %w", c.Code, err)
		}
		out[i] = Intensity(seed, hub, start, hours)
	}
	return out, nil
}
