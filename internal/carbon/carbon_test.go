package carbon

import (
	"testing"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/market"
	"powerroute/internal/stats"
)

var t0 = time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)

func TestRegionProfiles(t *testing.T) {
	for _, r := range market.RTOs() {
		p := RegionProfile(r)
		if p.BaseIntensity < 100 || p.BaseIntensity > 1000 {
			t.Errorf("%v: base intensity %v implausible", r, p.BaseIntensity)
		}
	}
	// Coal-heavy Midwest is dirtier than hydro/nuclear-leavened
	// California and New England (§2.2's generation mixes).
	if RegionProfile(market.MISO).BaseIntensity <= RegionProfile(market.CAISO).BaseIntensity {
		t.Error("MISO should be dirtier than CAISO")
	}
	if RegionProfile(market.PJM).BaseIntensity <= RegionProfile(market.ISONE).BaseIntensity {
		t.Error("PJM should be dirtier than ISONE")
	}
	// Unknown RTO gets a sane default.
	if RegionProfile(market.RTO(99)).BaseIntensity <= 0 {
		t.Error("default profile broken")
	}
}

func TestIntensitySeries(t *testing.T) {
	hub, err := market.HubByID("CHI")
	if err != nil {
		t.Fatal(err)
	}
	s := Intensity(1, hub, t0, 24*365)
	if s.Len() != 24*365 {
		t.Fatalf("length %d", s.Len())
	}
	for i, v := range s.Values {
		if v < 50 || v > 1500 {
			t.Fatalf("hour %d: intensity %v out of range", i, v)
		}
	}
	// Mean lands near the regional base.
	base := RegionProfile(hub.RTO).BaseIntensity
	m := stats.Mean(s.Values)
	if m < 0.6*base || m > 1.2*base {
		t.Errorf("mean intensity %v far from base %v", m, base)
	}
	// Time-varying, not constant (§8: hourly/weekly/seasonal variation).
	if stats.StdDev(s.Values) < 10 {
		t.Error("intensity barely varies")
	}
	// Deterministic.
	s2 := Intensity(1, hub, t0, 24*365)
	for i := range s.Values {
		if s.Values[i] != s2.Values[i] {
			t.Fatal("not deterministic")
		}
	}
	if s3 := Intensity(2, hub, t0, 24*365); s3.Values[0] == s.Values[0] && s3.Values[100] == s.Values[100] {
		t.Error("different seeds produced identical series")
	}
}

func TestIntensityDiurnalShape(t *testing.T) {
	hub, _ := market.HubByID("NYC")
	s := Intensity(3, hub, t0, 24*365)
	byHour := s.GroupByHourOfDay(int(hub.Zone))
	// Peak-hour marginal units are dirtier than the overnight mix.
	if stats.Mean(byHour[17]) <= stats.Mean(byHour[3]) {
		t.Error("no diurnal intensity pattern")
	}
}

func TestHydroSeasonalDip(t *testing.T) {
	hub, _ := market.HubByID("NP15") // CAISO: hydro-seasonal
	s := Intensity(4, hub, t0, 24*365)
	keys, groups := s.GroupByMonth()
	var april, annual []float64
	for _, k := range keys {
		annual = append(annual, groups[k]...)
		if k.Month == time.April {
			april = append(april, groups[k]...)
		}
	}
	if stats.Mean(april) >= stats.Mean(annual) {
		t.Error("no spring hydro dip in CAISO intensity")
	}
}

func TestFleetSeries(t *testing.T) {
	peaks := make([]float64, 51)
	for i := range peaks {
		peaks[i] = 10000
	}
	fleet, err := cluster.DeriveFleet(peaks, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	series, err := FleetSeries(7, fleet, t0, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(fleet.Clusters) {
		t.Fatalf("series count %d", len(series))
	}
	for i, s := range series {
		if s.Len() != 48 {
			t.Errorf("cluster %d: length %d", i, s.Len())
		}
	}
	// Bad fleet (unknown hub) fails.
	bad := []cluster.Cluster{{Code: "X", HubID: "NOPE", Servers: 1, Capacity: 100}}
	badFleet, err := cluster.NewFleet(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FleetSeries(7, badFleet, t0, 48); err == nil {
		t.Error("unknown hub should fail")
	}
}
