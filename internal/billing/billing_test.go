package billing

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"powerroute/internal/timeseries"
)

func TestMeterPercentile95(t *testing.T) {
	var m Meter
	for i := 1; i <= 100; i++ {
		m.Record(float64(i))
	}
	p95, err := m.Percentile95()
	if err != nil {
		t.Fatal(err)
	}
	if p95 < 94 || p95 > 97 {
		t.Errorf("p95 = %v, want ≈ 95", p95)
	}
	if m.N() != 100 {
		t.Errorf("N = %d", m.N())
	}
	if m.Peak() != 100 {
		t.Errorf("Peak = %v", m.Peak())
	}
}

func TestMeterEmpty(t *testing.T) {
	var m Meter
	if _, err := m.Percentile95(); err == nil {
		t.Error("empty meter p95 should fail")
	}
	if m.Peak() != 0 {
		t.Error("empty meter peak should be 0")
	}
}

// The 95/5 billing property: the billable rate ignores the top 5% of
// intervals, so a short burst does not raise the bill (§4).
func TestMeterIgnoresShortBursts(t *testing.T) {
	var flat, bursty Meter
	for i := 0; i < 1000; i++ {
		flat.Record(100)
		if i < 40 { // 4% of intervals burst 10×
			bursty.Record(1000)
		} else {
			bursty.Record(100)
		}
	}
	pf, _ := flat.Percentile95()
	pb, _ := bursty.Percentile95()
	if pf != 100 {
		t.Errorf("flat p95 = %v", pf)
	}
	if pb != 100 {
		t.Errorf("bursty p95 = %v, want 100 (4%% burst is free under 95/5)", pb)
	}
	// A 6% burst is not free.
	var heavy Meter
	for i := 0; i < 1000; i++ {
		if i < 60 {
			heavy.Record(1000)
		} else {
			heavy.Record(100)
		}
	}
	ph, _ := heavy.Percentile95()
	if ph <= 100 {
		t.Errorf("heavy p95 = %v, want > 100 (6%% burst is billable)", ph)
	}
}

func TestConstraintBasics(t *testing.T) {
	c, err := NewConstraint(100, 100) // budget = 100/20 − 1 = 4 intervals
	if err != nil {
		t.Fatal(err)
	}
	if !c.CanBurst() {
		t.Error("fresh constraint should allow bursting")
	}
	if c.Limit(500) != 500 {
		t.Errorf("Limit with budget = %v, want capacity 500", c.Limit(500))
	}
	// Four over-cap commits consume the budget.
	for i := 0; i < 4; i++ {
		if err := c.Commit(200); err != nil {
			t.Fatalf("burst %d rejected: %v", i, err)
		}
	}
	if c.CanBurst() {
		t.Error("budget should be exhausted")
	}
	if c.Limit(500) != 100 {
		t.Errorf("Limit without budget = %v, want cap 100", c.Limit(500))
	}
	if err := c.Commit(200); err == nil {
		t.Error("over-cap commit without budget should fail")
	}
	if err := c.Commit(99); err != nil {
		t.Errorf("under-cap commit rejected: %v", err)
	}
	if c.BurstsUsed() != 4 {
		t.Errorf("BurstsUsed = %d", c.BurstsUsed())
	}
	if c.IntervalsRun() != 6 {
		t.Errorf("IntervalsRun = %d", c.IntervalsRun())
	}
	if err := c.Verify(); err != nil {
		t.Errorf("Verify failed: %v", err)
	}
}

func TestConstraintCapBelowCapacity(t *testing.T) {
	c, _ := NewConstraint(100, 100)
	// When cap exceeds capacity, the physical limit wins.
	if c.Limit(80) != 80 {
		t.Errorf("Limit(80) = %v, want 80", c.Limit(80))
	}
	// Exhaust the budget, then check again.
	for i := 0; i < 5; i++ {
		_ = c.Commit(101)
	}
	if c.Limit(80) != 80 {
		t.Errorf("post-budget Limit(80) = %v, want 80", c.Limit(80))
	}
}

func TestConstraintErrors(t *testing.T) {
	if _, err := NewConstraint(-1, 100); err == nil {
		t.Error("negative cap should fail")
	}
	if _, err := NewConstraint(10, 0); err == nil {
		t.Error("zero intervals should fail")
	}
}

// Property: for any sequence of commits within the cap, the constraint
// never errs and never consumes budget.
func TestConstraintUnderCapProperty(t *testing.T) {
	f := func(rates []float64) bool {
		c, err := NewConstraint(100, len(rates)+20)
		if err != nil {
			return false
		}
		for _, r := range rates {
			r = math.Abs(math.Mod(r, 100))
			if err := c.Commit(r); err != nil {
				return false
			}
		}
		return c.BurstsUsed() == 0 && c.Verify() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the realized p95 stays at or below the cap whenever the
// constraint accepted every interval — the paper's "does not increase the
// 95th percentile bandwidth" invariant.
func TestConstraint95InvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 400
		c, err := NewConstraint(100, n)
		if err != nil {
			return false
		}
		var m Meter
		x := uint64(seed)
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			r := float64(x%150) + 1 // 1..150
			if r > c.Cap && !c.CanBurst() {
				r = c.Cap // a correct router clamps when no budget remains
			}
			if err := c.Commit(r); err != nil {
				return false
			}
			m.Record(r)
		}
		p95, err := m.Percentile95()
		if err != nil {
			return false
		}
		return p95 <= c.Cap+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDemandMeterMonthlyPeaks(t *testing.T) {
	var m DemandMeter
	jan := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	for h := 0; h < 24; h++ {
		m.Record(jan.Add(time.Duration(h)*time.Hour), 100+float64(h))
	}
	feb := time.Date(2006, 2, 10, 0, 0, 0, 0, time.UTC)
	m.Record(feb, 90)
	m.Record(feb.Add(time.Hour), 250)
	m.Record(feb.Add(2*time.Hour), 80)

	months, peaks := m.MonthlyPeaks()
	if len(months) != 2 {
		t.Fatalf("recorded %d months, want 2", len(months))
	}
	if months[0].String() != "2006-01" || peaks[0] != 123 {
		t.Errorf("January peak = %v (%v), want 123", peaks[0], months[0])
	}
	if months[1].String() != "2006-02" || peaks[1] != 250 {
		t.Errorf("February peak = %v (%v), want 250", peaks[1], months[1])
	}
	if m.PeakKW() != 250 {
		t.Errorf("PeakKW = %v, want 250", m.PeakKW())
	}
	// $12/kW-month: (123 + 250) × 12.
	if got, want := m.Charge(12).Dollars(), (123.0+250)*12; math.Abs(got-want) > 1e-9 {
		t.Errorf("Charge = %v, want %v", got, want)
	}
}

func TestDemandMeterEmptyAndOutOfOrder(t *testing.T) {
	var m DemandMeter
	if m.PeakKW() != 0 || m.Charge(10) != 0 {
		t.Error("empty meter should bill zero")
	}
	// A late sample for an earlier month folds into its bucket instead of
	// opening a duplicate.
	jan := time.Date(2006, 1, 5, 0, 0, 0, 0, time.UTC)
	feb := time.Date(2006, 2, 5, 0, 0, 0, 0, time.UTC)
	m.Record(jan, 10)
	m.Record(feb, 20)
	m.Record(jan, 30)
	months, peaks := m.MonthlyPeaks()
	if len(months) != 2 {
		t.Fatalf("recorded %d months, want 2", len(months))
	}
	if peaks[0] != 30 || peaks[1] != 20 {
		t.Errorf("peaks = %v, want [30 20]", peaks)
	}
}

// TestMeterSamplesRoundTrip: Samples/RestoreSamples are a faithful,
// aliasing-free copy of the meter record.
func TestMeterSamplesRoundTrip(t *testing.T) {
	var m Meter
	for _, r := range []float64{5, 2, 9, 9, 1} {
		m.Record(r)
	}
	samples := m.Samples()
	samples[0] = 999 // must not alias the meter's internal slice
	if got := m.Samples()[0]; got != 5 {
		t.Fatalf("Samples aliases the meter: got %v", got)
	}

	var restored Meter
	restored.RestoreSamples(m.Samples())
	if restored.N() != m.N() || restored.Peak() != m.Peak() {
		t.Fatalf("restored meter N=%d peak=%v, want N=%d peak=%v", restored.N(), restored.Peak(), m.N(), m.Peak())
	}
	p1, err1 := m.Percentile95()
	p2, err2 := restored.Percentile95()
	if err1 != nil || err2 != nil || p1 != p2 {
		t.Fatalf("restored p95 %v (%v), want %v (%v)", p2, err2, p1, err1)
	}
}

// TestConstraintStateRoundTrip: State/RestoreState reproduce the budget
// position exactly and refuse mismatched configuration.
func TestConstraintStateRoundTrip(t *testing.T) {
	c, err := NewConstraint(100, 200) // budget 9
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		rate := 50.0
		if i%10 == 0 {
			rate = 150 // consume 3 bursts
		}
		if err := c.Commit(rate); err != nil {
			t.Fatal(err)
		}
	}
	st := c.State()
	if st.BurstsUsed != 3 || st.IntervalsRun != 30 {
		t.Fatalf("state %+v", st)
	}

	fresh, err := NewConstraint(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if fresh.BurstsUsed() != 3 || fresh.IntervalsRun() != 30 || !fresh.CanBurst() {
		t.Fatalf("restored constraint bursts=%d intervals=%d canBurst=%v", fresh.BurstsUsed(), fresh.IntervalsRun(), fresh.CanBurst())
	}
	// Exactly the remaining budget is honored.
	for i := 0; i < 6; i++ {
		if err := fresh.Commit(150); err != nil {
			t.Fatalf("burst %d within budget refused: %v", i, err)
		}
	}
	if err := fresh.Commit(150); err == nil {
		t.Fatal("restored constraint allowed an over-budget burst")
	}

	bad := []ConstraintState{
		{Cap: 99, TotalBudget: st.TotalBudget, BurstsUsed: 0, IntervalsRun: 0},
		{Cap: 100, TotalBudget: st.TotalBudget + 1, BurstsUsed: 0, IntervalsRun: 0},
		{Cap: 100, TotalBudget: st.TotalBudget, BurstsUsed: -1, IntervalsRun: 0},
		{Cap: 100, TotalBudget: st.TotalBudget, BurstsUsed: st.TotalBudget + 1, IntervalsRun: 99},
		{Cap: 100, TotalBudget: st.TotalBudget, BurstsUsed: 2, IntervalsRun: 1},
	}
	for i, s := range bad {
		target, _ := NewConstraint(100, 200)
		if err := target.RestoreState(s); err == nil {
			t.Errorf("case %d: invalid state %+v accepted", i, s)
		}
	}
}

// TestDemandMeterStateRoundTrip: per-month peaks survive State/RestoreState
// and invalid states are refused.
func TestDemandMeterStateRoundTrip(t *testing.T) {
	var m DemandMeter
	base := time.Date(2008, time.March, 1, 0, 0, 0, 0, time.UTC)
	m.Record(base, 100)
	m.Record(base.Add(40*24*time.Hour), 220)
	m.Record(base.Add(41*24*time.Hour), 180)

	var restored DemandMeter
	if err := restored.RestoreState(m.State()); err != nil {
		t.Fatal(err)
	}
	gm, gp := restored.MonthlyPeaks()
	wm, wp := m.MonthlyPeaks()
	if !reflect.DeepEqual(gm, wm) || !reflect.DeepEqual(gp, wp) {
		t.Fatalf("restored peaks %v/%v, want %v/%v", gm, gp, wm, wp)
	}
	if restored.Charge(10) != m.Charge(10) {
		t.Fatal("restored demand charge differs")
	}

	bad := []DemandMeterState{
		{Months: []timeseries.MonthKey{{Year: 2008, Month: 3}}, Peaks: nil},
		{Months: []timeseries.MonthKey{{Year: 2008, Month: 3}, {Year: 2008, Month: 3}}, Peaks: []float64{1, 2}},
		{Months: []timeseries.MonthKey{{Year: 2008, Month: 3}}, Peaks: []float64{math.NaN()}},
		{Months: []timeseries.MonthKey{{Year: 2008, Month: 3}}, Peaks: []float64{-4}},
	}
	for i, s := range bad {
		var target DemandMeter
		if err := target.RestoreState(s); err == nil {
			t.Errorf("case %d: invalid state %+v accepted", i, s)
		}
	}
}

// TestLocalAccountBudget pins the classic 5% budget arithmetic behind the
// BurstAccount interface: totalIntervals/20 − 1 bursts, hard floor at 0.
func TestLocalAccountBudget(t *testing.T) {
	if _, err := NewLocalAccount(0); err == nil {
		t.Fatal("zero-interval account accepted")
	}
	tiny, err := NewLocalAccount(10)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.TotalBudget() != 0 || tiny.CanBurst() {
		t.Fatalf("10-interval account: budget %d, CanBurst %v", tiny.TotalBudget(), tiny.CanBurst())
	}
	if err := tiny.Consume(5, 1); err == nil {
		t.Fatal("empty budget consumed")
	}

	a, err := NewLocalAccount(200)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBudget() != 9 {
		t.Fatalf("200-interval budget %d, want 9", a.TotalBudget())
	}
	for i := 0; i < 9; i++ {
		if !a.CanBurst() {
			t.Fatalf("CanBurst false with %d bursts used", i)
		}
		if err := a.Consume(5, 1); err != nil {
			t.Fatal(err)
		}
	}
	if a.CanBurst() {
		t.Fatal("CanBurst true with budget spent")
	}
	if err := a.Consume(5, 1); err == nil {
		t.Fatal("over-budget consume accepted")
	}
	if a.BurstsUsed() != 9 {
		t.Fatalf("bursts used %d, want 9", a.BurstsUsed())
	}

	if err := a.RestoreBurstsUsed(10); err == nil {
		t.Fatal("restore beyond budget accepted")
	}
	if err := a.RestoreBurstsUsed(-1); err == nil {
		t.Fatal("negative restore accepted")
	}
	if err := a.RestoreBurstsUsed(3); err != nil {
		t.Fatal(err)
	}
	if a.BurstsUsed() != 3 || !a.CanBurst() {
		t.Fatalf("restored account: used %d, CanBurst %v", a.BurstsUsed(), a.CanBurst())
	}
}

// TestLeaseLedgerStateRoundTrip: counters survive State/RestoreState and
// the step-boundary invariant granted == used + expired is enforced.
func TestLeaseLedgerStateRoundTrip(t *testing.T) {
	var l LeaseLedger
	l.Grant()
	l.Use()
	l.Grant()
	l.Expire()
	l.Grant()
	l.Use()
	st := l.State()
	want := LeaseLedgerState{TokensGranted: 3, TokensUsed: 2, TokensExpired: 1}
	if st != want {
		t.Fatalf("ledger state %+v, want %+v", st, want)
	}

	var restored LeaseLedger
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if restored.State() != want {
		t.Fatalf("restored state %+v, want %+v", restored.State(), want)
	}

	bad := []LeaseLedgerState{
		{TokensGranted: -1, TokensUsed: 0, TokensExpired: 0},
		{TokensGranted: 2, TokensUsed: -1, TokensExpired: 3},
		{TokensGranted: 2, TokensUsed: 0, TokensExpired: -2},
		{TokensGranted: 3, TokensUsed: 1, TokensExpired: 1},
	}
	for i, s := range bad {
		var target LeaseLedger
		if err := target.RestoreState(s); err == nil {
			t.Errorf("case %d: invalid ledger state %+v accepted", i, s)
		}
	}
}
