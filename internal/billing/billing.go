// Package billing implements 95/5 bandwidth billing (§4): "traffic is
// divided into five minute intervals and the 95th percentile is used for
// billing". The simulator uses it two ways:
//
//   - Meter records a policy's per-interval cluster rates and reports the
//     billable 95th percentile.
//   - Constraint enforces the paper's re-routing rule — "constrain our
//     energy-price rerouting so that it does not increase the 95th
//     percentile bandwidth for any location" — by capping a cluster at its
//     baseline p95 while allowing the 5% of intervals that 95/5 billing
//     ignores to burst above it.
package billing

import (
	"errors"
	"fmt"

	"powerroute/internal/stats"
)

// Meter records per-interval rates for one cluster.
type Meter struct {
	samples []float64
}

// Record appends one interval's rate.
func (m *Meter) Record(rate float64) { m.samples = append(m.samples, rate) }

// N returns the number of recorded intervals.
func (m *Meter) N() int { return len(m.samples) }

// Percentile95 returns the billable rate: the 95th percentile of recorded
// intervals. It returns an error when nothing has been recorded.
func (m *Meter) Percentile95() (float64, error) {
	return stats.Quantile(m.samples, 0.95)
}

// Peak returns the maximum recorded rate.
func (m *Meter) Peak() float64 {
	peak := 0.0
	for _, s := range m.samples {
		if s > peak {
			peak = s
		}
	}
	return peak
}

// Constraint enforces a per-cluster 95/5 cap over a known number of
// intervals: the cluster may exceed Cap during at most 5% of intervals
// (its burst budget); once the budget is spent the cap is hard.
type Constraint struct {
	Cap          float64 // baseline billable rate (p95)
	budget       int     // remaining over-cap intervals
	totalBudget  int
	burstsUsed   int
	intervalsRun int
}

// NewConstraint builds a constraint for a run of totalIntervals intervals.
func NewConstraint(cap float64, totalIntervals int) (*Constraint, error) {
	if cap < 0 {
		return nil, errors.New("billing: negative cap")
	}
	if totalIntervals <= 0 {
		return nil, errors.New("billing: non-positive interval count")
	}
	// One fewer than 5% of intervals: with exactly 5% above the cap, an
	// interpolated 95th percentile would land marginally above it.
	budget := totalIntervals/20 - 1
	if budget < 0 {
		budget = 0
	}
	return &Constraint{Cap: cap, budget: budget, totalBudget: budget}, nil
}

// CanBurst reports whether an over-cap interval is still permitted.
func (c *Constraint) CanBurst() bool { return c.budget > 0 }

// Limit returns the enforceable rate limit for the next interval given a
// physical capacity: capacity when a burst is available, min(cap, capacity)
// otherwise.
func (c *Constraint) Limit(capacity float64) float64 {
	if c.CanBurst() {
		return capacity
	}
	if c.Cap < capacity {
		return c.Cap
	}
	return capacity
}

// Commit records the realized rate for one interval, consuming a burst if
// the rate exceeded the cap. It returns an error if the rate exceeded the
// cap with no budget left (a router bug).
func (c *Constraint) Commit(rate float64) error {
	c.intervalsRun++
	if rate <= c.Cap+1e-9 {
		return nil
	}
	if c.budget <= 0 {
		return fmt.Errorf("billing: over-cap interval (%.1f > %.1f) with no burst budget", rate, c.Cap)
	}
	c.budget--
	c.burstsUsed++
	return nil
}

// BurstsUsed returns the number of over-cap intervals consumed.
func (c *Constraint) BurstsUsed() int { return c.burstsUsed }

// IntervalsRun returns the number of committed intervals.
func (c *Constraint) IntervalsRun() int { return c.intervalsRun }

// Verify checks the 95/5 invariant after a run: over-cap intervals must not
// exceed the 5% budget, i.e. the realized p95 did not rise above the cap.
func (c *Constraint) Verify() error {
	if c.burstsUsed > c.totalBudget {
		return fmt.Errorf("billing: %d bursts used, budget %d", c.burstsUsed, c.totalBudget)
	}
	return nil
}
