// Package billing implements 95/5 bandwidth billing (§4): "traffic is
// divided into five minute intervals and the 95th percentile is used for
// billing". The simulator uses it two ways:
//
//   - Meter records a policy's per-interval cluster rates and reports the
//     billable 95th percentile.
//   - Constraint enforces the paper's re-routing rule — "constrain our
//     energy-price rerouting so that it does not increase the 95th
//     percentile bandwidth for any location" — by capping a cluster at its
//     baseline p95 while allowing the 5% of intervals that 95/5 billing
//     ignores to burst above it.
//
// It also implements the demand-charge side of a commercial electricity
// tariff: DemandMeter tracks each calendar month's peak average power draw
// (kW), the billing determinant utilities charge per kW-month on top of
// energy. Unlike the 95/5 bandwidth bill, a demand charge has no 5% grace —
// a single spiky interval sets the whole month's charge, which is exactly
// what peak shaving with stored energy attacks.
package billing

import (
	"errors"
	"fmt"
	"math"
	"time"

	"powerroute/internal/stats"
	"powerroute/internal/timeseries"
	"powerroute/internal/units"
)

// Meter records per-interval rates for one cluster.
//
// ckpt:state Samples,RestoreSamples
type Meter struct {
	samples []float64
}

// Record appends one interval's rate.
func (m *Meter) Record(rate float64) { m.samples = append(m.samples, rate) }

// Reserve grows the meter's capacity to hold at least n samples without
// further allocation. The simulation engine reserves the scenario horizon
// up front so a 39-month run's 28k+ Records never reallocate.
func (m *Meter) Reserve(n int) {
	if n <= cap(m.samples) {
		return
	}
	s := make([]float64, len(m.samples), n)
	copy(s, m.samples)
	m.samples = s
}

// N returns the number of recorded intervals.
func (m *Meter) N() int { return len(m.samples) }

// Percentile95 returns the billable rate: the 95th percentile of recorded
// intervals. It returns an error when nothing has been recorded.
func (m *Meter) Percentile95() (float64, error) {
	return stats.Quantile(m.samples, 0.95)
}

// Samples returns a copy of the recorded per-interval rates, oldest first
// (the checkpoint path; the 95th percentile needs every sample).
func (m *Meter) Samples() []float64 {
	return append([]float64(nil), m.samples...)
}

// RestoreSamples replaces the meter's record with a copy of samples (the
// restore path).
func (m *Meter) RestoreSamples(samples []float64) {
	m.samples = append(m.samples[:0:0], samples...)
}

// Peak returns the maximum recorded rate.
func (m *Meter) Peak() float64 {
	peak := 0.0
	for _, s := range m.samples {
		if s > peak {
			peak = s
		}
	}
	return peak
}

// BurstAccount is the budget half of a 95/5 constraint: it answers
// whether the next over-cap interval is still within the 5% grace and
// records the ones that happen. Splitting it from the cap meter lets the
// same Constraint run against different budget backings — LocalAccount
// reproduces the classic engine-local arithmetic bit for bit, while a
// coordinated fleet can meter the same budget under brokered leases (the
// gate decision arrives via sim.BurstGate; the per-cluster budget itself
// is intrinsically local, so the account stays exact either way).
type BurstAccount interface {
	// CanBurst reports whether an over-cap interval is still permitted.
	CanBurst() bool
	// Consume records one over-cap interval, failing when the budget is
	// exhausted. rate and cap are for the error message only.
	Consume(rate, cap float64) error
	// BurstsUsed returns the number of over-cap intervals consumed.
	BurstsUsed() int
	// TotalBudget returns the account's full allowance.
	TotalBudget() int
	// RestoreBurstsUsed rewinds the account to a checkpointed consumption
	// count, failing when the count is outside the budget.
	RestoreBurstsUsed(used int) error
}

// LocalAccount is the engine-local BurstAccount: a fixed allowance of
// totalIntervals/20 − 1 over-cap intervals, decremented as they happen.
// This is byte-identical to the pre-lease Constraint behavior.
type LocalAccount struct {
	budget      int // remaining over-cap intervals
	totalBudget int
	burstsUsed  int
}

// NewLocalAccount builds the classic local burst budget for a run of
// totalIntervals intervals.
func NewLocalAccount(totalIntervals int) (*LocalAccount, error) {
	if totalIntervals <= 0 {
		return nil, errors.New("billing: non-positive interval count")
	}
	// One fewer than 5% of intervals: with exactly 5% above the cap, an
	// interpolated 95th percentile would land marginally above it.
	budget := totalIntervals/20 - 1
	if budget < 0 {
		budget = 0
	}
	return &LocalAccount{budget: budget, totalBudget: budget}, nil
}

// CanBurst reports whether an over-cap interval is still permitted.
func (a *LocalAccount) CanBurst() bool { return a.budget > 0 }

// Consume spends one burst from the local budget.
func (a *LocalAccount) Consume(rate, cap float64) error {
	if a.budget <= 0 {
		return fmt.Errorf("billing: over-cap interval (%.1f > %.1f) with no burst budget", rate, cap)
	}
	a.budget--
	a.burstsUsed++
	return nil
}

// BurstsUsed returns the number of over-cap intervals consumed.
func (a *LocalAccount) BurstsUsed() int { return a.burstsUsed }

// TotalBudget returns the account's full allowance.
func (a *LocalAccount) TotalBudget() int { return a.totalBudget }

// RestoreBurstsUsed rewinds the account to a checkpointed count.
func (a *LocalAccount) RestoreBurstsUsed(used int) error {
	if used < 0 || used > a.totalBudget {
		return fmt.Errorf("billing: restored bursts used %d outside budget %d", used, a.totalBudget)
	}
	a.budget = a.totalBudget - used
	a.burstsUsed = used
	return nil
}

// Constraint enforces a per-cluster 95/5 cap over a known number of
// intervals: the cluster may exceed Cap during at most 5% of intervals
// (its burst budget); once the budget is spent the cap is hard. The cap
// comparison (the pure meter) lives here; the budget arithmetic is
// delegated to a BurstAccount.
//
// ckpt:state State,RestoreState
type Constraint struct {
	Cap          float64      // baseline billable rate (p95)
	account      BurstAccount // the budget backing; LocalAccount by default
	intervalsRun int
}

// NewConstraint builds a constraint for a run of totalIntervals intervals,
// backed by the classic engine-local budget.
func NewConstraint(cap float64, totalIntervals int) (*Constraint, error) {
	if cap < 0 {
		return nil, errors.New("billing: negative cap")
	}
	account, err := NewLocalAccount(totalIntervals)
	if err != nil {
		return nil, err
	}
	return &Constraint{Cap: cap, account: account}, nil
}

// Over reports whether rate exceeds the cap beyond the billing epsilon —
// the single definition of "this interval is a burst" that Commit and the
// engine's lease ledger both use.
func (c *Constraint) Over(rate float64) bool { return rate > c.Cap+1e-9 }

// CanBurst reports whether an over-cap interval is still permitted.
func (c *Constraint) CanBurst() bool { return c.account.CanBurst() }

// Limit returns the enforceable rate limit for the next interval given a
// physical capacity: capacity when a burst is available, min(cap, capacity)
// otherwise.
func (c *Constraint) Limit(capacity float64) float64 {
	if c.CanBurst() {
		return capacity
	}
	if c.Cap < capacity {
		return c.Cap
	}
	return capacity
}

// Commit records the realized rate for one interval, consuming a burst if
// the rate exceeded the cap. It returns an error if the rate exceeded the
// cap with no budget left (a router bug).
func (c *Constraint) Commit(rate float64) error {
	c.intervalsRun++
	if !c.Over(rate) {
		return nil
	}
	return c.account.Consume(rate, c.Cap)
}

// BurstsUsed returns the number of over-cap intervals consumed.
func (c *Constraint) BurstsUsed() int { return c.account.BurstsUsed() }

// IntervalsRun returns the number of committed intervals.
func (c *Constraint) IntervalsRun() int { return c.intervalsRun }

// Verify checks the 95/5 invariant after a run: over-cap intervals must not
// exceed the 5% budget, i.e. the realized p95 did not rise above the cap.
func (c *Constraint) Verify() error {
	if used, budget := c.account.BurstsUsed(), c.account.TotalBudget(); used > budget {
		return fmt.Errorf("billing: %d bursts used, budget %d", used, budget)
	}
	return nil
}

// ConstraintState is the serializable dynamic state of a Constraint. Cap
// and TotalBudget are configuration echoes: a restore target derives them
// from its own scenario and refuses state that disagrees, so a checkpoint
// can never smuggle a different billing contract into a run.
//
// ckpt:state State,RestoreState
type ConstraintState struct {
	Cap          float64 `json:"cap"`
	TotalBudget  int     `json:"total_budget"`
	BurstsUsed   int     `json:"bursts_used"`
	IntervalsRun int     `json:"intervals_run"`
}

// State exports the constraint's dynamic state.
func (c *Constraint) State() ConstraintState {
	return ConstraintState{
		Cap:          c.Cap,
		TotalBudget:  c.account.TotalBudget(),
		BurstsUsed:   c.account.BurstsUsed(),
		IntervalsRun: c.intervalsRun,
	}
}

// RestoreState loads a previously exported state into a freshly built
// constraint. The configuration must match exactly — same cap (bitwise),
// same total budget — and the dynamic counters must be internally
// consistent; anything else is a checkpoint from a different world.
func (c *Constraint) RestoreState(s ConstraintState) error {
	if s.Cap != c.Cap {
		return fmt.Errorf("billing: restored cap %v, constraint built with %v", s.Cap, c.Cap)
	}
	if s.TotalBudget != c.account.TotalBudget() {
		return fmt.Errorf("billing: restored burst budget %d, constraint built with %d", s.TotalBudget, c.account.TotalBudget())
	}
	if s.BurstsUsed < 0 || s.BurstsUsed > s.TotalBudget {
		return fmt.Errorf("billing: restored bursts used %d outside budget %d", s.BurstsUsed, s.TotalBudget)
	}
	if s.IntervalsRun < s.BurstsUsed {
		return fmt.Errorf("billing: restored %d intervals with %d bursts used", s.IntervalsRun, s.BurstsUsed)
	}
	if err := c.account.RestoreBurstsUsed(s.BurstsUsed); err != nil {
		return err
	}
	c.intervalsRun = s.IntervalsRun
	return nil
}

// LeaseLedger books one cluster's burst-token traffic under coordinated
// (fleet-gated) burst accounting. A token is granted when the fleet-wide
// gate opens for a cluster that still has budget; it is used when the
// cluster actually commits an over-cap interval that step, and expired —
// reclaimed by the broker at the step boundary — when it does not. The
// ledger is pure bookkeeping: it never blocks a burst (the BurstAccount
// does that), it only records how the brokered budget moved, so
// granted == used + expired holds at every step boundary.
//
// ckpt:state State,RestoreState
type LeaseLedger struct {
	granted int
	used    int
	expired int
}

// Grant books one token leased to the cluster for the current step.
func (l *LeaseLedger) Grant() { l.granted++ }

// Use books the current step's token as consumed by an over-cap interval.
func (l *LeaseLedger) Use() { l.used++ }

// Expire books the current step's token as unused — reclaimed at the step
// boundary.
func (l *LeaseLedger) Expire() { l.expired++ }

// LeaseLedgerState is the serializable state of a LeaseLedger.
//
// ckpt:state State,RestoreState
type LeaseLedgerState struct {
	TokensGranted int `json:"tokens_granted"`
	TokensUsed    int `json:"tokens_used"`
	TokensExpired int `json:"tokens_expired"`
}

// State exports the ledger's counters.
func (l *LeaseLedger) State() LeaseLedgerState {
	return LeaseLedgerState{TokensGranted: l.granted, TokensUsed: l.used, TokensExpired: l.expired}
}

// RestoreState loads a previously exported ledger, enforcing the
// step-boundary invariant granted == used + expired.
func (l *LeaseLedger) RestoreState(s LeaseLedgerState) error {
	if s.TokensGranted < 0 || s.TokensUsed < 0 || s.TokensExpired < 0 {
		return fmt.Errorf("billing: negative lease ledger counters %+v", s)
	}
	if s.TokensGranted != s.TokensUsed+s.TokensExpired {
		return fmt.Errorf("billing: lease ledger granted %d != used %d + expired %d",
			s.TokensGranted, s.TokensUsed, s.TokensExpired)
	}
	l.granted, l.used, l.expired = s.TokensGranted, s.TokensUsed, s.TokensExpired
	return nil
}

// DemandMeter tracks the billing determinant of a demand-charge tariff for
// one cluster: the peak interval-average power draw (kW) within each
// calendar month (UTC). State is O(months), so 39-month hourly runs carry
// no per-interval storage.
//
// ckpt:state State,RestoreState
type DemandMeter struct {
	months []timeseries.MonthKey
	peaks  []float64 // parallel to months
}

// Record meters one interval's average draw. Intervals are expected in
// chronological order (the simulation step loop); out-of-order months fold
// into their existing bucket.
func (m *DemandMeter) Record(at time.Time, kw float64) {
	k := timeseries.MonthKey{Year: at.UTC().Year(), Month: at.UTC().Month()}
	if n := len(m.months); n > 0 && m.months[n-1] == k {
		if kw > m.peaks[n-1] {
			m.peaks[n-1] = kw
		}
		return
	}
	for i, mk := range m.months {
		if mk == k {
			if kw > m.peaks[i] {
				m.peaks[i] = kw
			}
			return
		}
	}
	m.months = append(m.months, k)
	m.peaks = append(m.peaks, kw)
}

// MonthPeak returns the peak draw recorded so far in at's calendar
// month, or 0 when the month has no samples yet. The batch scheduler's
// peak guard uses it: grid draw below this level cannot raise the
// month's demand charge.
func (m *DemandMeter) MonthPeak(at time.Time) float64 {
	k := timeseries.MonthKey{Year: at.UTC().Year(), Month: at.UTC().Month()}
	if n := len(m.months); n > 0 && m.months[n-1] == k {
		return m.peaks[n-1]
	}
	for i, mk := range m.months {
		if mk == k {
			return m.peaks[i]
		}
	}
	return 0
}

// PeakKW returns the highest draw recorded in any month (0 when empty).
func (m *DemandMeter) PeakKW() float64 {
	peak := 0.0
	for _, p := range m.peaks {
		if p > peak {
			peak = p
		}
	}
	return peak
}

// MonthlyPeaks returns the recorded months and their peak draws, in the
// order first observed.
func (m *DemandMeter) MonthlyPeaks() ([]timeseries.MonthKey, []float64) {
	return append([]timeseries.MonthKey(nil), m.months...), append([]float64(nil), m.peaks...)
}

// DemandMeterState is the serializable state of a DemandMeter: the
// observed months and their peak draws, in first-observed order.
//
// ckpt:state State,RestoreState
type DemandMeterState struct {
	Months []timeseries.MonthKey `json:"months"`
	Peaks  []float64             `json:"peaks"`
}

// State exports the meter's per-month peaks.
func (m *DemandMeter) State() DemandMeterState {
	months, peaks := m.MonthlyPeaks()
	return DemandMeterState{Months: months, Peaks: peaks}
}

// RestoreState replaces the meter's record with a copy of s.
func (m *DemandMeter) RestoreState(s DemandMeterState) error {
	if len(s.Months) != len(s.Peaks) {
		return fmt.Errorf("billing: %d months for %d peaks", len(s.Months), len(s.Peaks))
	}
	seen := make(map[timeseries.MonthKey]bool, len(s.Months))
	for i, k := range s.Months {
		if seen[k] {
			return fmt.Errorf("billing: duplicate month %v in demand meter state", k)
		}
		seen[k] = true
		if p := s.Peaks[i]; math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return fmt.Errorf("billing: month %v peak %v invalid", k, s.Peaks[i])
		}
	}
	m.months = append(m.months[:0:0], s.Months...)
	m.peaks = append(m.peaks[:0:0], s.Peaks...)
	return nil
}

// Charge bills every month's peak at the tariff's demand rate:
// Σ months peak_kW × ratePerKWMonth.
func (m *DemandMeter) Charge(ratePerKWMonth float64) units.Money {
	var total float64
	for _, p := range m.peaks {
		total += p * ratePerKWMonth
	}
	return units.Money(total)
}
