// Package report renders experiment output: aligned text tables (the
// paper's tabular figures), CSV for external plotting, and quick text
// charts (bars and histograms) for the figure-shaped results.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are kept as-is.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted cells: each argument is rendered with %v
// unless it is a float64, which is rendered with %.4g.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var total int64
	write := func(s string) error {
		n, err := io.WriteString(w, s)
		total += int64(n)
		return err
	}
	if t.Title != "" {
		if err := write(t.Title + "\n"); err != nil {
			return total, err
		}
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				b.WriteString(pad(c, widths[i]))
			} else {
				b.WriteString(c)
			}
		}
		return strings.TrimRight(b.String(), " ") + "\n"
	}
	if len(t.Headers) > 0 {
		if err := write(line(t.Headers)); err != nil {
			return total, err
		}
		var b strings.Builder
		for i, w := range widths {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", w))
		}
		if err := write(b.String() + "\n"); err != nil {
			return total, err
		}
	}
	for _, row := range t.Rows {
		if err := write(line(row)); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// WriteCSV emits the table as CSV (headers first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Headers) > 0 {
		if err := cw.Write(t.Headers); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// pad right-pads s to width display runes.
func pad(s string, width int) string {
	n := utf8.RuneCountInString(s)
	if n >= width {
		return s
	}
	return s + strings.Repeat(" ", width-n)
}

// Bar renders value as a proportional bar of at most width characters
// against max. Negative values render with '<' characters.
func Bar(value, max float64, width int) string {
	if width <= 0 || max <= 0 {
		return ""
	}
	frac := math.Abs(value) / max
	if frac > 1 {
		frac = 1
	}
	n := int(math.Round(frac * float64(width)))
	if n == 0 && value != 0 {
		n = 1
	}
	ch := "#"
	if value < 0 {
		ch = "<"
	}
	return strings.Repeat(ch, n)
}

// Histogram renders a labeled fraction histogram, one bin per line.
func Histogram(w io.Writer, title string, labels []string, fractions []float64) error {
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	maxF := 0.0
	for _, f := range fractions {
		if f > maxF {
			maxF = f
		}
	}
	width := 0
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	for i, f := range fractions {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		if _, err := fmt.Fprintf(w, "  %s %6.2f%% %s\n", pad(label, width), 100*f, Bar(f, maxF, 50)); err != nil {
			return err
		}
	}
	return nil
}

// Series renders an (x, y) series as aligned columns, a text stand-in for
// the paper's line plots.
func Series(w io.Writer, title, xLabel, yLabel string, xs, ys []float64) error {
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %12s  %12s\n", xLabel, yLabel); err != nil {
		return err
	}
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, "  %12.4g  %12.4g\n", xs[i], ys[i]); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders values as a compact unicode block series.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
