package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Prices", "Hub", "Mean")
	tb.Add("NYC", "77.9")
	tb.Add("Chicago", "40.6")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "Prices" {
		t.Errorf("title line = %q", lines[0])
	}
	// The Mean column starts at the same offset in both data rows.
	if strings.Index(lines[3], "77.9") != strings.Index(lines[4], "40.6") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Addf(1.23456789, "x", 42)
	if tb.Rows[0][0] != "1.235" || tb.Rows[0][1] != "x" || tb.Rows[0][2] != "42" {
		t.Errorf("Addf row = %v", tb.Rows[0])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored title", "x", "y")
	tb.Add("1", "2")
	tb.Add("3", "4,with,commas")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[2][1] != "4,with,commas" {
		t.Errorf("csv rows = %v", rows)
	}
}

func TestBar(t *testing.T) {
	if Bar(50, 100, 10) != "#####" {
		t.Errorf("Bar(50,100,10) = %q", Bar(50, 100, 10))
	}
	if Bar(-50, 100, 10) != "<<<<<" {
		t.Errorf("negative bar = %q", Bar(-50, 100, 10))
	}
	if Bar(1e9, 100, 10) != "##########" {
		t.Error("bar should clamp at width")
	}
	if Bar(0.0001, 100, 10) != "#" {
		t.Error("tiny nonzero values should show one mark")
	}
	if Bar(0, 100, 10) != "" {
		t.Error("zero value should be empty")
	}
	if Bar(5, 0, 10) != "" || Bar(5, 10, 0) != "" {
		t.Error("degenerate inputs should be empty")
	}
}

func TestHistogram(t *testing.T) {
	var buf bytes.Buffer
	err := Histogram(&buf, "Durations", []string{"1h", "2h"}, []float64{0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Durations") || !strings.Contains(out, "50.00%") {
		t.Errorf("histogram output: %q", out)
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	err := Series(&buf, "Cost vs distance", "km", "cost", []float64{0, 500}, []float64{1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "km") || !strings.Contains(buf.String(), "0.9") {
		t.Errorf("series output: %q", buf.String())
	}
	// Mismatched lengths truncate instead of panicking.
	buf.Reset()
	if err := Series(&buf, "t", "x", "y", []float64{1, 2, 3}, []float64{1}); err != nil {
		t.Fatal(err)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline runes = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Error("flat sparkline length wrong")
	}
}
