package demand

import (
	"math"
	"testing"
	"time"

	"powerroute/internal/market"
	"powerroute/internal/timeseries"
	"powerroute/internal/units"
)

var t0 = time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)

func mkPrices(values ...float64) *timeseries.Series {
	s := timeseries.New(t0, timeseries.Hourly, len(values))
	copy(s.Values, values)
	return s
}

func validProgram() Program {
	return Program{
		TriggerPrice:   200,
		MaxEventHours:  4,
		CooldownHours:  2,
		EnergyCredit:   120,
		CapacityCredit: 5000,
	}
}

func TestProgramValidate(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Program{
		{TriggerPrice: 0, MaxEventHours: 1},
		{TriggerPrice: 100, MaxEventHours: 0},
		{TriggerPrice: 100, MaxEventHours: 1, CooldownHours: -1},
		{TriggerPrice: 100, MaxEventHours: 1, EnergyCredit: -1},
		{TriggerPrice: 100, MaxEventHours: 1, CapacityCredit: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestEventsDetection(t *testing.T) {
	p := validProgram()
	// Hours:        0    1    2    3    4    5    6    7    8
	prices := mkPrices(50, 250, 300, 100, 50, 220, 50, 50, 500)
	events, err := p.Events(prices)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3 (%+v)", len(events), events)
	}
	if events[0].Hours != 2 || events[0].PeakPrice != 300 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if !events[0].Start.Equal(t0.Add(time.Hour)) {
		t.Errorf("event 0 start = %v", events[0].Start)
	}
	if events[1].Hours != 1 || events[1].PeakPrice != 220 {
		t.Errorf("event 1 = %+v", events[1])
	}
}

func TestEventsMaxLengthAndCooldown(t *testing.T) {
	p := validProgram()
	p.MaxEventHours = 2
	p.CooldownHours = 3
	// Six consecutive hours above trigger: one 2h event, then 3h cooldown
	// (still above trigger, ignored), then another event starting hour 5.
	prices := mkPrices(300, 300, 300, 300, 300, 300, 300, 50)
	events, err := p.Events(prices)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Hours != 2 || events[1].Hours != 2 {
		t.Errorf("event lengths: %+v", events)
	}
	if !events[1].Start.Equal(t0.Add(5 * time.Hour)) {
		t.Errorf("second event start = %v", events[1].Start)
	}
}

func TestEventsErrors(t *testing.T) {
	p := validProgram()
	daily := timeseries.New(t0, timeseries.Daily, 10)
	if _, err := p.Events(daily); err == nil {
		t.Error("non-hourly series should fail")
	}
	p.TriggerPrice = 0
	if _, err := p.Events(mkPrices(1, 2)); err == nil {
		t.Error("invalid program should fail")
	}
}

func TestEventsOnRealPrices(t *testing.T) {
	d := market.MustGenerate(market.Config{Seed: 5})
	rt, _ := d.RT("NYC")
	p := validProgram()
	events, err := p.Events(rt)
	if err != nil {
		t.Fatal(err)
	}
	// NYC sees spikes past $200 a meaningful number of times over 39
	// months, but events must be rare (well under 2% of hours).
	if len(events) == 0 {
		t.Fatal("no events on NYC prices; spikes missing")
	}
	hours := 0
	for _, ev := range events {
		hours += ev.Hours
		if ev.Hours < 1 || ev.Hours > p.MaxEventHours {
			t.Fatalf("event length %d out of bounds", ev.Hours)
		}
		if ev.PeakPrice < p.TriggerPrice {
			t.Fatalf("event peak %v below trigger", ev.PeakPrice)
		}
	}
	if frac := float64(hours) / float64(rt.Len()); frac > 0.02 {
		t.Errorf("events cover %.1f%% of hours, want < 2%%", 100*frac)
	}
}

func TestSettle(t *testing.T) {
	p := validProgram()
	events := []Event{{Hours: 2}, {Hours: 3}}
	s, err := p.Settle(events, 10, 12) // 10 MW for a year
	if err != nil {
		t.Fatal(err)
	}
	if s.Events != 2 || s.EventHours != 5 {
		t.Errorf("settlement counts: %+v", s)
	}
	// 10 MW × 5 h = 50 MWh at $120 = $6000.
	if math.Abs(s.EnergyPay.Dollars()-6000) > 1e-9 {
		t.Errorf("energy pay = %v", s.EnergyPay)
	}
	// $5000/MW/month × 10 MW × 12 months = $600k.
	if math.Abs(s.CapacityPay.Dollars()-600000) > 1e-9 {
		t.Errorf("capacity pay = %v", s.CapacityPay)
	}
	if s.Total != s.EnergyPay+s.CapacityPay {
		t.Error("total mismatch")
	}
	if _, err := p.Settle(events, -1, 12); err == nil {
		t.Error("negative MW should fail")
	}
	if _, err := p.Settle(events, 1, -1); err == nil {
		t.Error("negative months should fail")
	}
}

func TestNegawattBid(t *testing.T) {
	da := mkPrices(40, 80, 120, 60, 150)
	bid := NegawattBid{OfferPrice: 100, MW: 5}
	res, err := bid.Evaluate(da)
	if err != nil {
		t.Fatal(err)
	}
	if res.HoursCleared != 2 {
		t.Errorf("cleared %d hours, want 2", res.HoursCleared)
	}
	// 5 MW × (120 + 150) $/MWh = $1350.
	if math.Abs(res.Revenue.Dollars()-1350) > 1e-9 {
		t.Errorf("revenue = %v", res.Revenue)
	}
	if res.EnergySold.MegawattHours() != 10 {
		t.Errorf("energy sold = %v", res.EnergySold)
	}
	if _, err := (NegawattBid{OfferPrice: 0, MW: 5}).Evaluate(da); err == nil {
		t.Error("zero offer should fail")
	}
	if _, err := (NegawattBid{OfferPrice: 10, MW: 0}).Evaluate(da); err == nil {
		t.Error("zero MW should fail")
	}
	daily := timeseries.New(t0, timeseries.Daily, 3)
	if _, err := bid.Evaluate(daily); err == nil {
		t.Error("non-hourly DA should fail")
	}
}

func TestNegawattMonotoneInOffer(t *testing.T) {
	d := market.MustGenerate(market.Config{Seed: 6, Months: 6})
	da, _ := d.DA("CHI")
	prev := math.Inf(1)
	for _, offer := range []units.Price{50, 100, 200} {
		res, err := NegawattBid{OfferPrice: offer, MW: 1}.Evaluate(da)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.HoursCleared) > prev {
			t.Errorf("higher offer cleared more hours")
		}
		prev = float64(res.HoursCleared)
	}
}

func TestAggregator(t *testing.T) {
	var a Aggregator
	a.Add(Bloc{Name: "hotel-laundry", KW: 400, Availability: 0.9})
	a.Add(Bloc{Name: "cdn-rack-row", KW: 800, Availability: 1.0})
	a.Add(Bloc{Name: "flaky", KW: 1000, Availability: 0.1})
	// 400·0.9 + 800·1.0 + 1000·0.1 = 1260 kW = 1.26 MW.
	if math.Abs(a.FirmMW()-1.26) > 1e-9 {
		t.Errorf("FirmMW = %v", a.FirmMW())
	}
	if !a.MeetsMinimum(1.0) || a.MeetsMinimum(2.0) {
		t.Error("MeetsMinimum wrong")
	}
	// Availability clamped.
	b := Aggregator{Blocs: []Bloc{{KW: 100, Availability: 2}, {KW: 100, Availability: -1}}}
	if math.Abs(b.FirmMW()-0.1) > 1e-9 {
		t.Errorf("clamped FirmMW = %v", b.FirmMW())
	}
}
