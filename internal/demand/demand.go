// Package demand models the §7 market-participation mechanisms that let a
// distributed system sell its load flexibility instead of (or on top of)
// passively chasing cheap prices:
//
//   - Negawatt bids: offering load reductions into the day-ahead auction;
//     the bid clears whenever the day-ahead price reaches the offer.
//   - Triggered demand response: enrolling capacity in an RTO program that
//     calls events when the grid is stressed (proxied here by real-time
//     prices crossing a trigger), paying an energy credit per MWh shed plus
//     a monthly capacity payment.
//   - Aggregation: pooling many small consumers into blocs large enough to
//     participate ("even consumers using as little as 10kW — a few racks —
//     can participate", §7).
package demand

import (
	"errors"
	"fmt"
	"time"

	"powerroute/internal/timeseries"
	"powerroute/internal/units"
)

// Event is one triggered demand-response event.
type Event struct {
	Start time.Time
	Hours int
	// PeakPrice is the highest real-time price observed during the event
	// (diagnostic: how stressed the grid was).
	PeakPrice units.Price
}

// Program describes a triggered demand-response enrollment.
type Program struct {
	// TriggerPrice proxies grid stress: an event begins when the real-time
	// price crosses it. Real programs trigger on reserve shortfalls; price
	// spikes are the market's expression of the same conditions (§2.2).
	TriggerPrice units.Price
	// MaxEventHours caps a single event's length (programs bound the
	// downtime they may demand).
	MaxEventHours int
	// CooldownHours is the minimum gap between events.
	CooldownHours int
	// EnergyCredit is paid per MWh actually shed during events.
	EnergyCredit units.Price
	// CapacityCredit is paid per enrolled MW per month, whether or not
	// events occur.
	CapacityCredit units.Money
}

// Validate checks program parameters.
func (p Program) Validate() error {
	if p.TriggerPrice <= 0 {
		return errors.New("demand: trigger price must be positive")
	}
	if p.MaxEventHours <= 0 {
		return errors.New("demand: max event hours must be positive")
	}
	if p.CooldownHours < 0 {
		return errors.New("demand: negative cooldown")
	}
	if p.EnergyCredit < 0 || p.CapacityCredit < 0 {
		return errors.New("demand: negative credits")
	}
	return nil
}

// Events scans an hourly real-time price series for triggered events.
func (p Program) Events(prices *timeseries.Series) ([]Event, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if prices.Step != timeseries.Hourly {
		return nil, fmt.Errorf("demand: need hourly prices, got step %v", prices.Step)
	}
	var events []Event
	cooldown := 0
	for t := 0; t < prices.Len(); {
		if cooldown > 0 {
			cooldown--
			t++
			continue
		}
		if units.Price(prices.Values[t]) < p.TriggerPrice {
			t++
			continue
		}
		ev := Event{Start: prices.TimeAt(t), PeakPrice: units.Price(prices.Values[t])}
		for t < prices.Len() && units.Price(prices.Values[t]) >= p.TriggerPrice && ev.Hours < p.MaxEventHours {
			if pr := units.Price(prices.Values[t]); pr > ev.PeakPrice {
				ev.PeakPrice = pr
			}
			ev.Hours++
			t++
		}
		events = append(events, ev)
		cooldown = p.CooldownHours
	}
	return events, nil
}

// Settlement is the outcome of participating in a program.
type Settlement struct {
	Events      int
	EventHours  int
	EnergyShed  units.Energy
	EnergyPay   units.Money
	CapacityPay units.Money
	Total       units.Money
}

// Settle computes compensation for an enrollment of shedMW megawatts over
// the given events and number of whole months enrolled.
func (p Program) Settle(events []Event, shedMW float64, months int) (Settlement, error) {
	if err := p.Validate(); err != nil {
		return Settlement{}, err
	}
	if shedMW < 0 {
		return Settlement{}, errors.New("demand: negative shed capacity")
	}
	if months < 0 {
		return Settlement{}, errors.New("demand: negative enrollment months")
	}
	var s Settlement
	for _, ev := range events {
		s.Events++
		s.EventHours += ev.Hours
		s.EnergyShed += units.Energy(shedMW * float64(ev.Hours) * 1e6) // MW·h → Wh
	}
	s.EnergyPay = s.EnergyShed.Cost(p.EnergyCredit)
	s.CapacityPay = units.Money(float64(p.CapacityCredit) * shedMW * float64(months))
	s.Total = s.EnergyPay + s.CapacityPay
	return s, nil
}

// NegawattBid is a standing day-ahead offer to reduce load.
type NegawattBid struct {
	// OfferPrice is the $/MWh at or above which the reduction clears.
	OfferPrice units.Price
	// MW is the offered reduction.
	MW float64
}

// NegawattResult summarizes a bid evaluated against a day-ahead series.
type NegawattResult struct {
	HoursCleared int
	EnergySold   units.Energy
	Revenue      units.Money
}

// Evaluate clears the bid against hourly day-ahead prices: each hour whose
// price reaches the offer accepts the reduction at the clearing price
// ("Some RTOs allow energy users to bid negawatts ... into the day-ahead
// market auction", §7).
func (b NegawattBid) Evaluate(da *timeseries.Series) (NegawattResult, error) {
	if b.OfferPrice <= 0 || b.MW <= 0 {
		return NegawattResult{}, errors.New("demand: bid needs positive price and MW")
	}
	if da.Step != timeseries.Hourly {
		return NegawattResult{}, fmt.Errorf("demand: need hourly day-ahead prices, got %v", da.Step)
	}
	var res NegawattResult
	for _, p := range da.Values {
		if units.Price(p) >= b.OfferPrice {
			res.HoursCleared++
			res.EnergySold += units.Energy(b.MW * 1e6)
			res.Revenue += units.Energy(b.MW * 1e6).Cost(units.Price(p))
		}
	}
	return res, nil
}

// Bloc is one consumer in an aggregated demand-response pool.
type Bloc struct {
	Name string
	// KW the bloc can shed on request.
	KW float64
	// Availability ∈ [0,1]: fraction of events the bloc can actually serve.
	Availability float64
}

// Aggregator pools blocs EnerNOC-style: "a company that collects many
// consumers, packages them, and sells their aggregate ability to make
// on-demand reductions" (§7).
type Aggregator struct {
	Blocs []Bloc
}

// Add appends a bloc.
func (a *Aggregator) Add(b Bloc) { a.Blocs = append(a.Blocs, b) }

// FirmMW returns the dependable aggregate capacity: Σ kW·availability.
func (a *Aggregator) FirmMW() float64 {
	sum := 0.0
	for _, b := range a.Blocs {
		av := b.Availability
		if av < 0 {
			av = 0
		}
		if av > 1 {
			av = 1
		}
		sum += b.KW * av
	}
	return sum / 1000
}

// MeetsMinimum reports whether the pool reaches a program's minimum
// enrollment (programs admit blocs, not individuals).
func (a *Aggregator) MeetsMinimum(minMW float64) bool {
	return a.FirmMW() >= minMW
}
