package demand

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Forecaster answers §7's open question for day-ahead participation: "How
// do operators construct bids for the day-ahead auctions if they don't know
// next-day client demand for each region?"
//
// It maintains a per-slot (hour-of-week) exponentially weighted average of
// observed demand — the structure behind the paper's own synthetic workload
// ("demand is generally predictable") — plus an error tracker so a bidder
// can discount its offers by forecast risk. Heavy unpredictable days
// ("there will be heavy traffic days that are impossible to predict")
// surface as large tracked errors rather than silent bid shortfalls.
type Forecaster struct {
	alpha  float64
	mean   [168]float64
	absErr [168]float64
	warm   [168]int
}

// NewForecaster creates a forecaster with the given EWMA weight α ∈ (0, 1];
// larger α adapts faster but remembers less.
func NewForecaster(alpha float64) (*Forecaster, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("demand: alpha %v outside (0,1]", alpha)
	}
	return &Forecaster{alpha: alpha}, nil
}

// slot returns the hour-of-week index of an instant (UTC).
func slot(at time.Time) int {
	return int(at.UTC().Weekday())*24 + at.UTC().Hour()
}

// Observe records a demand sample for its hour-of-week slot.
func (f *Forecaster) Observe(at time.Time, demand float64) error {
	if demand < 0 || math.IsNaN(demand) || math.IsInf(demand, 0) {
		return errors.New("demand: invalid observation")
	}
	s := slot(at)
	if f.warm[s] == 0 {
		f.mean[s] = demand
	} else {
		err := math.Abs(demand - f.mean[s])
		f.absErr[s] = (1-f.alpha)*f.absErr[s] + f.alpha*err
		f.mean[s] = (1-f.alpha)*f.mean[s] + f.alpha*demand
	}
	f.warm[s]++
	return nil
}

// Forecast predicts demand at an instant. It returns an error until the
// instant's hour-of-week slot has at least one observation.
func (f *Forecaster) Forecast(at time.Time) (float64, error) {
	s := slot(at)
	if f.warm[s] == 0 {
		return 0, fmt.Errorf("demand: no observations for hour-of-week %d", s)
	}
	return f.mean[s], nil
}

// Uncertainty returns the tracked mean absolute forecast error for the
// instant's slot (0 until two observations have landed).
func (f *Forecaster) Uncertainty(at time.Time) float64 {
	return f.absErr[slot(at)]
}

// Ready reports whether every hour-of-week slot has observations (one full
// week of data).
func (f *Forecaster) Ready() bool {
	for _, n := range f.warm {
		if n == 0 {
			return false
		}
	}
	return true
}

// ConservativeBidMW converts a demand forecast into a day-ahead negawatt
// offer: the sheddable megawatts implied by the forecast, discounted by k
// standard-deviation-equivalents of forecast error so the operator does not
// promise reductions a surprise traffic day would make it break. shedPerUnit
// converts a unit of demand into sheddable MW (the caller derives it from
// its energy model).
func (f *Forecaster) ConservativeBidMW(at time.Time, shedPerUnit, k float64) (float64, error) {
	if shedPerUnit < 0 || k < 0 {
		return 0, errors.New("demand: negative bid parameters")
	}
	fc, err := f.Forecast(at)
	if err != nil {
		return 0, err
	}
	// 1.2533·MAE approximates σ for Gaussian-ish errors.
	sigma := 1.2533 * f.Uncertainty(at)
	bid := (fc - k*sigma) * shedPerUnit
	if bid < 0 {
		bid = 0
	}
	return bid, nil
}
