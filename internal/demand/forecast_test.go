package demand

import (
	"math"
	"testing"
	"time"

	"powerroute/internal/traffic"
)

func TestForecasterValidation(t *testing.T) {
	if _, err := NewForecaster(0); err == nil {
		t.Error("alpha 0 should fail")
	}
	if _, err := NewForecaster(1.5); err == nil {
		t.Error("alpha > 1 should fail")
	}
	f, err := NewForecaster(0.3)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2008, 12, 19, 0, 0, 0, 0, time.UTC)
	if err := f.Observe(now, -5); err == nil {
		t.Error("negative demand should fail")
	}
	if err := f.Observe(now, math.NaN()); err == nil {
		t.Error("NaN should fail")
	}
	if err := f.Observe(now, math.Inf(1)); err == nil {
		t.Error("Inf should fail")
	}
	if _, err := f.Forecast(now.Add(time.Hour)); err == nil {
		t.Error("unseen slot should fail")
	}
}

func TestForecasterLearnsPattern(t *testing.T) {
	f, _ := NewForecaster(0.3)
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	// Feed four weeks of a deterministic hour-of-week pattern.
	pattern := func(at time.Time) float64 {
		return 1000 + 500*float64(slot(at)%24)
	}
	for h := 0; h < 4*168; h++ {
		at := start.Add(time.Duration(h) * time.Hour)
		if err := f.Observe(at, pattern(at)); err != nil {
			t.Fatal(err)
		}
	}
	if !f.Ready() {
		t.Fatal("forecaster not ready after four weeks")
	}
	// Predictions for the next week match the pattern exactly.
	for h := 0; h < 168; h++ {
		at := start.Add(time.Duration(4*168+h) * time.Hour)
		got, err := f.Forecast(at)
		if err != nil {
			t.Fatal(err)
		}
		want := pattern(at)
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("hour %d: forecast %v, want %v", h, got, want)
		}
		if f.Uncertainty(at) > 1e-6 {
			t.Fatalf("hour %d: uncertainty %v for deterministic data", h, f.Uncertainty(at))
		}
	}
}

func TestForecasterOnSyntheticTraffic(t *testing.T) {
	// Train on the first 17 days of a CDN trace, test on the last 7.
	tr := traffic.MustGenerate(traffic.Config{Seed: 99})
	ny, err := tr.StateIndex("NY")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := NewForecaster(0.25)
	trainSamples := 17 * traffic.SamplesPerDay
	// Downsample 5-minute data to hourly observations.
	for s := 0; s+traffic.SamplesPerHour <= trainSamples; s += traffic.SamplesPerHour {
		sum := 0.0
		for k := 0; k < traffic.SamplesPerHour; k++ {
			sum += tr.States[ny].Rate[s+k]
		}
		if err := f.Observe(tr.TimeAt(s), sum/traffic.SamplesPerHour); err != nil {
			t.Fatal(err)
		}
	}
	if !f.Ready() {
		t.Fatal("17 days should warm all 168 slots")
	}
	// Mean absolute percentage error over the test week stays modest
	// ("demand is generally predictable", §7).
	var mape float64
	n := 0
	for s := trainSamples; s+traffic.SamplesPerHour <= tr.Samples; s += traffic.SamplesPerHour {
		sum := 0.0
		for k := 0; k < traffic.SamplesPerHour; k++ {
			sum += tr.States[ny].Rate[s+k]
		}
		actual := sum / traffic.SamplesPerHour
		fc, err := f.Forecast(tr.TimeAt(s))
		if err != nil {
			t.Fatal(err)
		}
		if actual > 0 {
			mape += math.Abs(fc-actual) / actual
			n++
		}
	}
	mape /= float64(n)
	if mape > 0.25 {
		t.Errorf("test-week MAPE = %.1f%%, want ≤ 25%%", 100*mape)
	}
}

func TestForecastSingleSample(t *testing.T) {
	// A series with exactly one observation: the forecast for that slot is
	// the sample itself, uncertainty is still zero (no error has been
	// measured yet), and every other slot refuses to guess.
	f, _ := NewForecaster(0.3)
	at := time.Date(2006, 3, 6, 9, 0, 0, 0, time.UTC)
	if err := f.Observe(at, 4200); err != nil {
		t.Fatal(err)
	}
	got, err := f.Forecast(at)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4200 {
		t.Errorf("single-sample forecast = %v, want 4200", got)
	}
	if u := f.Uncertainty(at); u != 0 {
		t.Errorf("single-sample uncertainty = %v, want 0", u)
	}
	if f.Ready() {
		t.Error("one sample must not mark a full week ready")
	}
	// With zero measured error the risk discount is a no-op: k=0 and a huge
	// k produce the same bid.
	full, err := f.ConservativeBidMW(at, 0.001, 0)
	if err != nil {
		t.Fatal(err)
	}
	cautious, err := f.ConservativeBidMW(at, 0.001, 100)
	if err != nil {
		t.Fatal(err)
	}
	if full != 4.2 || cautious != full {
		t.Errorf("single-sample bids: full=%v cautious=%v, want both 4.2", full, cautious)
	}
	// Neighbouring slots have no data and must error, not extrapolate.
	for _, dt := range []time.Duration{time.Hour, -time.Hour, 24 * time.Hour} {
		if _, err := f.Forecast(at.Add(dt)); err == nil {
			t.Errorf("forecast at %v offset should fail with one sample", dt)
		}
	}
	// A second sample on the same slot starts the error tracker.
	if err := f.Observe(at.AddDate(0, 0, 7), 5200); err != nil {
		t.Fatal(err)
	}
	if u := f.Uncertainty(at); u <= 0 {
		t.Errorf("uncertainty after second sample = %v, want > 0", u)
	}
}

func TestForecastHorizonBeyondTrace(t *testing.T) {
	// Asking for instants far past the last observation is the normal
	// day-ahead case: the hour-of-week model extends indefinitely, so a
	// horizon longer than the remaining trace still yields the slot mean —
	// identical whether the instant is one hour or one year past the data.
	f, _ := NewForecaster(0.3)
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	pattern := func(at time.Time) float64 {
		return 2000 + 100*float64(slot(at)%24)
	}
	for h := 0; h < 2*168; h++ {
		at := start.Add(time.Duration(h) * time.Hour)
		if err := f.Observe(at, pattern(at)); err != nil {
			t.Fatal(err)
		}
	}
	end := start.Add(2 * 168 * time.Hour)
	for _, horizon := range []time.Duration{
		time.Hour,            // next interval
		36 * time.Hour,       // day-ahead auction horizon
		90 * 24 * time.Hour,  // far past the two-week trace
		365 * 24 * time.Hour, // a year out
	} {
		at := end.Add(horizon)
		got, err := f.Forecast(at)
		if err != nil {
			t.Fatalf("horizon %v: %v", horizon, err)
		}
		if want := pattern(at); math.Abs(got-want) > 1e-9*want {
			t.Errorf("horizon %v: forecast %v, want %v", horizon, got, want)
		}
	}
	// A partial trace (shorter than one week) answers only for trained
	// slots, no matter the horizon: 24h of Sunday data says nothing about
	// a Monday a month away.
	p, _ := NewForecaster(0.3)
	for h := 0; h < 24; h++ {
		if err := p.Observe(start.Add(time.Duration(h)*time.Hour), 1000); err != nil {
			t.Fatal(err)
		}
	}
	if p.Ready() {
		t.Error("24h trace must not be ready")
	}
	sameSlot := start.AddDate(0, 0, 28)
	if got, err := p.Forecast(sameSlot); err != nil || got != 1000 {
		t.Errorf("trained slot four weeks out: got %v, %v; want 1000, nil", got, err)
	}
	if _, err := p.Forecast(sameSlot.AddDate(0, 0, 1)); err == nil {
		t.Error("untrained weekday slot should fail at any horizon")
	}
}

func TestConservativeBid(t *testing.T) {
	f, _ := NewForecaster(0.3)
	at := time.Date(2006, 1, 2, 15, 0, 0, 0, time.UTC)
	// Noisy observations around 10000 on one slot (one week apart).
	for w := 0; w < 20; w++ {
		v := 10000.0
		if w%2 == 0 {
			v = 11000
		}
		if err := f.Observe(at.AddDate(0, 0, 7*w), v); err != nil {
			t.Fatal(err)
		}
	}
	full, err := f.ConservativeBidMW(at, 0.001, 0)
	if err != nil {
		t.Fatal(err)
	}
	discounted, err := f.ConservativeBidMW(at, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	if full <= 0 || discounted <= 0 {
		t.Fatalf("bids: full=%v discounted=%v", full, discounted)
	}
	if discounted >= full {
		t.Error("risk discount did not reduce the bid")
	}
	// Extreme risk aversion floors at zero rather than going negative.
	zero, err := f.ConservativeBidMW(at, 0.001, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Errorf("extreme k bid = %v, want 0", zero)
	}
	if _, err := f.ConservativeBidMW(at, -1, 0); err == nil {
		t.Error("negative shedPerUnit should fail")
	}
	if _, err := f.ConservativeBidMW(at.Add(time.Hour), 1, 0); err == nil {
		t.Error("unseen slot should fail")
	}
}
