package demand

import (
	"math"
	"testing"
	"time"

	"powerroute/internal/traffic"
)

func TestForecasterValidation(t *testing.T) {
	if _, err := NewForecaster(0); err == nil {
		t.Error("alpha 0 should fail")
	}
	if _, err := NewForecaster(1.5); err == nil {
		t.Error("alpha > 1 should fail")
	}
	f, err := NewForecaster(0.3)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2008, 12, 19, 0, 0, 0, 0, time.UTC)
	if err := f.Observe(now, -5); err == nil {
		t.Error("negative demand should fail")
	}
	if err := f.Observe(now, math.NaN()); err == nil {
		t.Error("NaN should fail")
	}
	if err := f.Observe(now, math.Inf(1)); err == nil {
		t.Error("Inf should fail")
	}
	if _, err := f.Forecast(now.Add(time.Hour)); err == nil {
		t.Error("unseen slot should fail")
	}
}

func TestForecasterLearnsPattern(t *testing.T) {
	f, _ := NewForecaster(0.3)
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	// Feed four weeks of a deterministic hour-of-week pattern.
	pattern := func(at time.Time) float64 {
		return 1000 + 500*float64(slot(at)%24)
	}
	for h := 0; h < 4*168; h++ {
		at := start.Add(time.Duration(h) * time.Hour)
		if err := f.Observe(at, pattern(at)); err != nil {
			t.Fatal(err)
		}
	}
	if !f.Ready() {
		t.Fatal("forecaster not ready after four weeks")
	}
	// Predictions for the next week match the pattern exactly.
	for h := 0; h < 168; h++ {
		at := start.Add(time.Duration(4*168+h) * time.Hour)
		got, err := f.Forecast(at)
		if err != nil {
			t.Fatal(err)
		}
		want := pattern(at)
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("hour %d: forecast %v, want %v", h, got, want)
		}
		if f.Uncertainty(at) > 1e-6 {
			t.Fatalf("hour %d: uncertainty %v for deterministic data", h, f.Uncertainty(at))
		}
	}
}

func TestForecasterOnSyntheticTraffic(t *testing.T) {
	// Train on the first 17 days of a CDN trace, test on the last 7.
	tr := traffic.MustGenerate(traffic.Config{Seed: 99})
	ny, err := tr.StateIndex("NY")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := NewForecaster(0.25)
	trainSamples := 17 * traffic.SamplesPerDay
	// Downsample 5-minute data to hourly observations.
	for s := 0; s+traffic.SamplesPerHour <= trainSamples; s += traffic.SamplesPerHour {
		sum := 0.0
		for k := 0; k < traffic.SamplesPerHour; k++ {
			sum += tr.States[ny].Rate[s+k]
		}
		if err := f.Observe(tr.TimeAt(s), sum/traffic.SamplesPerHour); err != nil {
			t.Fatal(err)
		}
	}
	if !f.Ready() {
		t.Fatal("17 days should warm all 168 slots")
	}
	// Mean absolute percentage error over the test week stays modest
	// ("demand is generally predictable", §7).
	var mape float64
	n := 0
	for s := trainSamples; s+traffic.SamplesPerHour <= tr.Samples; s += traffic.SamplesPerHour {
		sum := 0.0
		for k := 0; k < traffic.SamplesPerHour; k++ {
			sum += tr.States[ny].Rate[s+k]
		}
		actual := sum / traffic.SamplesPerHour
		fc, err := f.Forecast(tr.TimeAt(s))
		if err != nil {
			t.Fatal(err)
		}
		if actual > 0 {
			mape += math.Abs(fc-actual) / actual
			n++
		}
	}
	mape /= float64(n)
	if mape > 0.25 {
		t.Errorf("test-week MAPE = %.1f%%, want ≤ 25%%", 100*mape)
	}
}

func TestConservativeBid(t *testing.T) {
	f, _ := NewForecaster(0.3)
	at := time.Date(2006, 1, 2, 15, 0, 0, 0, time.UTC)
	// Noisy observations around 10000 on one slot (one week apart).
	for w := 0; w < 20; w++ {
		v := 10000.0
		if w%2 == 0 {
			v = 11000
		}
		if err := f.Observe(at.AddDate(0, 0, 7*w), v); err != nil {
			t.Fatal(err)
		}
	}
	full, err := f.ConservativeBidMW(at, 0.001, 0)
	if err != nil {
		t.Fatal(err)
	}
	discounted, err := f.ConservativeBidMW(at, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	if full <= 0 || discounted <= 0 {
		t.Fatalf("bids: full=%v discounted=%v", full, discounted)
	}
	if discounted >= full {
		t.Error("risk discount did not reduce the bid")
	}
	// Extreme risk aversion floors at zero rather than going negative.
	zero, err := f.ConservativeBidMW(at, 0.001, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Errorf("extreme k bid = %v, want 0", zero)
	}
	if _, err := f.ConservativeBidMW(at, -1, 0); err == nil {
		t.Error("negative shedPerUnit should fail")
	}
	if _, err := f.ConservativeBidMW(at.Add(time.Hour), 1, 0); err == nil {
		t.Error("unseen slot should fail")
	}
}
