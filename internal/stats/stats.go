// Package stats implements the descriptive statistics the paper's empirical
// market analysis relies on (§3): moments (including 1%-trimmed versions and
// kurtosis, Fig 6–7, 10), quantiles and inter-quartile ranges (Fig 11–12),
// histograms (Fig 7, 10, 13), Pearson correlation (Fig 8), mutual
// information (§3.2 footnote 8), and windowed volatility (Fig 5).
//
// Everything operates on plain []float64 so the package has no dependencies
// beyond the standard library.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (denominator n), or 0 for
// fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Kurtosis returns the (raw, non-excess) kurtosis μ₄/σ⁴ of xs. A Gaussian
// has kurtosis 3; the paper reports values from 4.6 (Chicago prices) to 466
// (Austin−Virginia differentials), i.e. very heavy tails. Returns 0 for
// fewer than two samples or zero variance.
func Kurtosis(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	n := float64(len(xs))
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4 / (m2 * m2)
}

// Skewness returns the standardized third moment of xs.
func Skewness(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(xs))
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Summary bundles the moments the paper tabulates per location (Fig 6).
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	Kurtosis float64
	Min      float64
	Max      float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Kurtosis = Kurtosis(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// Trim returns a copy of xs with the lowest and highest frac/2 fraction of
// samples removed (so Trim(xs, 0.01) discards 1% of the data in total,
// matching the paper's "1% trimmed" statistics in Fig 6). frac is clamped
// to [0, 0.5].
func Trim(xs []float64, frac float64) []float64 {
	if frac < 0 {
		frac = 0
	}
	if frac > 0.5 {
		frac = 0.5
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	k := int(math.Round(float64(len(sorted)) * frac / 2))
	if 2*k >= len(sorted) {
		return nil
	}
	return sorted[k : len(sorted)-k]
}

// TrimmedSummary computes Summarize over the trimmed sample.
func TrimmedSummary(xs []float64, frac float64) Summary {
	return Summarize(Trim(xs, frac))
}

// Quantile returns the q-th quantile of xs (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. It returns an error for an empty
// sample; q is clamped to [0,1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// quantileSorted computes the interpolated quantile of an already-sorted
// non-empty slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	w := pos - float64(lo)
	return sorted[lo]*(1-w) + sorted[hi]*w
}

// Quantiles returns several quantiles of xs in one sort.
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// IQR describes a distribution by its median and inter-quartile range, the
// representation used by the paper's monthly and hour-of-day differential
// plots (Fig 11, 12).
type IQR struct {
	Q25, Median, Q75 float64
}

// ComputeIQR returns the quartiles of xs.
func ComputeIQR(xs []float64) (IQR, error) {
	qs, err := Quantiles(xs, 0.25, 0.5, 0.75)
	if err != nil {
		return IQR{}, err
	}
	return IQR{Q25: qs[0], Median: qs[1], Q75: qs[2]}, nil
}

// Correlation returns the Pearson correlation coefficient of the paired
// samples xs and ys. It returns 0 when either side has zero variance and an
// error when the lengths differ or the sample is empty.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: correlation length mismatch")
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Autocorrelation returns the lag-k autocorrelation of xs.
func Autocorrelation(xs []float64, lag int) (float64, error) {
	if lag < 0 || lag >= len(xs) {
		return 0, errors.New("stats: invalid lag")
	}
	return Correlation(xs[:len(xs)-lag], xs[lag:])
}

// Diff returns the successive differences xs[i+1]-xs[i]; the paper's
// hour-to-hour price change distributions (Fig 7) are Diff applied to an
// hourly price series.
func Diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}

// FractionWithin returns the fraction of samples with |x| ≤ bound, as used
// in Fig 7's "78% of samples within ±$20" annotations.
func FractionWithin(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if math.Abs(x) <= bound {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionBelow returns the fraction of samples strictly below threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// WindowMeans averages xs over consecutive non-overlapping windows of the
// given size, discarding any incomplete trailing window. Fig 5 applies this
// with windows of 1–24 hours before taking standard deviations.
func WindowMeans(xs []float64, window int) []float64 {
	if window <= 0 || len(xs) < window {
		return nil
	}
	n := len(xs) / window
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = Mean(xs[i*window : (i+1)*window])
	}
	return out
}
