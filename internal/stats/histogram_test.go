package stats

import (
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	xs := []float64{-50, -10, 0, 10, 50, 200}
	h, err := NewHistogram(xs, -100, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 6 {
		t.Errorf("Total = %d, want 6", h.Total)
	}
	if h.Over != 1 || h.Under != 0 {
		t.Errorf("Over/Under = %d/%d, want 1/0", h.Over, h.Under)
	}
	sum := h.Under + h.Over
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Total {
		t.Errorf("counts sum %d != total %d", sum, h.Total)
	}
	// -50 goes to bin 1, -10/0/10 straddle the middle, 50 to bin 3.
	if h.Counts[1] != 2 { // [-50,0): -50, -10
		t.Errorf("Counts[1] = %d, want 2", h.Counts[1])
	}
}

func TestHistogramBinEdges(t *testing.T) {
	h, err := NewHistogram(nil, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0)  // first bin
	h.Add(10) // exactly max: must land in last bin, not overflow
	h.Add(2)  // bin 1
	if h.Counts[0] != 1 || h.Counts[4] != 1 || h.Counts[1] != 1 {
		t.Errorf("edge binning wrong: %v (over=%d)", h.Counts, h.Over)
	}
	if c := h.BinCenter(0); math.Abs(c-1) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 1", c)
	}
	if f := h.Fraction(0); math.Abs(f-1.0/3) > 1e-12 {
		t.Errorf("Fraction(0) = %v, want 1/3", f)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 10, 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := NewHistogram(nil, 10, 10, 4); err == nil {
		t.Error("min==max should fail")
	}
	if _, err := NewHistogram(nil, 10, 0, 4); err == nil {
		t.Error("max<min should fail")
	}
}

func TestHistogramFractionsSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(n uint16) bool {
		xs := make([]float64, int(n)%500+1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 30
		}
		h, err := NewHistogram(xs, -60, 60, 24)
		if err != nil {
			return false
		}
		sum := 0.0
		for i := range h.Counts {
			sum += h.Fraction(i)
		}
		outside := float64(h.Under+h.Over) / float64(h.Total)
		return math.Abs(sum+outside-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h, _ := NewHistogram(nil, 0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
	if got := h.Fractions(); len(got) != 2 || got[0] != 0 {
		t.Errorf("Fractions() = %v", got)
	}
}

func TestMutualInformationIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	// I(X;X) is large; I(X;independent Y) ≈ 0.
	self, err := MutualInformation(xs, xs, 16)
	if err != nil {
		t.Fatal(err)
	}
	ys := make([]float64, len(xs))
	for i := range ys {
		ys[i] = rng.NormFloat64()
	}
	indep, err := MutualInformation(xs, ys, 16)
	if err != nil {
		t.Fatal(err)
	}
	if self < 1 {
		t.Errorf("I(X;X) = %v, want > 1 bit", self)
	}
	if indep > 0.1 {
		t.Errorf("I(X;Y) for independent = %v, want ≈ 0", indep)
	}
	if self <= indep {
		t.Error("self-information should exceed independent information")
	}
}

func TestMutualInformationSeparatesCoupling(t *testing.T) {
	// A nonlinearly coupled pair (y = x²+noise) has near-zero correlation
	// but clearly positive mutual information — the effect behind the
	// paper's footnote 8 (same-RTO nonlinear relationships).
	rng := rand.New(rand.NewSource(10))
	xs := make([]float64, 30000)
	ys := make([]float64, 30000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = xs[i]*xs[i] + 0.1*rng.NormFloat64()
	}
	r, _ := Correlation(xs, ys)
	mi, _ := MutualInformation(xs, ys, 16)
	if math.Abs(r) > 0.1 {
		t.Errorf("correlation = %v, want ≈ 0 for symmetric nonlinear coupling", r)
	}
	if mi < 0.3 {
		t.Errorf("mutual information = %v, want clearly > 0", mi)
	}
}

func TestMutualInformationErrors(t *testing.T) {
	if _, err := MutualInformation([]float64{1}, []float64{1, 2}, 4); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := MutualInformation(nil, nil, 4); err == nil {
		t.Error("empty should fail")
	}
	if _, err := MutualInformation([]float64{1, 2}, []float64{1, 2}, 1); err == nil {
		t.Error("1 bin should fail")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 10000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*37 + 55
		o.Add(xs[i])
	}
	if o.N() != len(xs) {
		t.Errorf("N = %d", o.N())
	}
	approx(t, "online mean", o.Mean(), Mean(xs), 1e-9)
	approx(t, "online variance", o.Variance(), Variance(xs), 1e-6)
	approx(t, "online stddev", o.StdDev(), StdDev(xs), 1e-6)
}

func TestOnlineMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var a, b, whole Online
	for i := 0; i < 5000; i++ {
		x := rng.ExpFloat64() * 10
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	approx(t, "merged mean", a.Mean(), whole.Mean(), 1e-9)
	approx(t, "merged variance", a.Variance(), whole.Variance(), 1e-6)
	if a.N() != whole.N() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Error("merged N/min/max mismatch")
	}
	// Merging an empty accumulator is a no-op; merging into empty copies.
	var empty Online
	before := a
	a.Merge(&empty)
	if a != before {
		t.Error("merge with empty changed state")
	}
	var fresh Online
	fresh.Merge(&a)
	if fresh != a {
		t.Error("merge into empty should copy")
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.StdDev() != 0 || o.N() != 0 {
		t.Error("empty Online should be all zeros")
	}
}

func TestWeightedMeanAndQuantile(t *testing.T) {
	samples := []WeightedSample{
		{Value: 10, Weight: 1},
		{Value: 20, Weight: 3},
	}
	approx(t, "WeightedMean", WeightedMean(samples), 17.5, 1e-12)
	q, err := WeightedQuantile(samples, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "WeightedQuantile(0.5)", q, 20, 1e-12)
	q, _ = WeightedQuantile(samples, 0.1)
	approx(t, "WeightedQuantile(0.1)", q, 10, 1e-12)
	if _, err := WeightedQuantile(nil, 0.5); err == nil {
		t.Error("empty weighted quantile should fail")
	}
	if _, err := WeightedQuantile([]WeightedSample{{1, 0}}, 0.5); err == nil {
		t.Error("zero-weight quantile should fail")
	}
	if WeightedMean(nil) != 0 {
		t.Error("empty weighted mean should be 0")
	}
}

func TestWeightedQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(n uint8) bool {
		size := int(n)%100 + 1
		samples := make([]WeightedSample, size)
		for i := range samples {
			samples[i] = WeightedSample{Value: rng.NormFloat64() * 100, Weight: rng.Float64() + 0.01}
		}
		q1, e1 := WeightedQuantile(samples, 0.25)
		q2, e2 := WeightedQuantile(samples, 0.75)
		return e1 == nil && e2 == nil && q1 <= q2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedHistogram(t *testing.T) {
	w := NewWeightedHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		w.Add(float64(i), 1)
	}
	approx(t, "WeightedHistogram.Mean", w.Mean(), 49.5, 1e-9)
	q := w.Quantile(0.99)
	if q < 95 || q > 100 {
		t.Errorf("Quantile(0.99) = %v, want ≈ 99", q)
	}
	if w.Total() != 100 {
		t.Errorf("Total = %v", w.Total())
	}
	// Clamping out-of-range values.
	w.Add(-50, 1)
	w.Add(500, 1)
	if w.Total() != 102 {
		t.Error("clamped values must still be counted")
	}
	// Ignored weights.
	w.Add(50, 0)
	w.Add(50, -3)
	if w.Total() != 102 {
		t.Error("non-positive weights must be ignored")
	}
	// Degenerate construction.
	d := NewWeightedHistogram(5, 5, 0)
	d.Add(5, 1)
	if d.Total() != 1 {
		t.Error("degenerate histogram should still count")
	}
	var empty WeightedHistogram
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty weighted histogram should return zeros")
	}
}

// TestHistogramNonFinite checks NaN/±Inf samples are tallied, not binned:
// int(NaN) is implementation-defined (negative on amd64) and used to panic
// on the Counts index.
func TestHistogramNonFinite(t *testing.T) {
	h, err := NewHistogram(nil, -10, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(math.NaN())
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	h.Add(5)
	if h.NonFinite != 3 {
		t.Errorf("NonFinite = %d, want 3", h.NonFinite)
	}
	if h.Total != 4 {
		t.Errorf("Total = %d, want 4", h.Total)
	}
	if h.Under != 0 || h.Over != 0 {
		t.Errorf("±Inf leaked into Under/Over: %d/%d", h.Under, h.Over)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 1 {
		t.Errorf("binned %d samples, want only the finite one", sum)
	}
	// Construction from a slice containing non-finite values must not panic.
	h2, err := NewHistogram([]float64{math.NaN(), 0, math.Inf(1)}, -1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NonFinite != 2 || h2.Total != 3 {
		t.Errorf("NonFinite/Total = %d/%d, want 2/3", h2.NonFinite, h2.Total)
	}
}

// TestWeightedHistogramNonFinite checks that NaN/±Inf values and weights
// cannot poison the running sum (Mean would become NaN for the whole run).
func TestWeightedHistogramNonFinite(t *testing.T) {
	w := NewWeightedHistogram(0, 100, 10)
	w.Add(50, 2)
	w.Add(math.NaN(), 1)
	w.Add(math.Inf(1), 1)
	w.Add(math.Inf(-1), 1)
	w.Add(60, math.NaN())
	w.Add(60, math.Inf(1))
	if got := w.NonFinite(); got != 3 {
		t.Errorf("NonFinite = %v, want 3", got)
	}
	if got := w.Total(); got != 2 {
		t.Errorf("Total = %v, want 2 (only the finite sample)", got)
	}
	if got := w.Mean(); math.IsNaN(got) || got != 50 {
		t.Errorf("Mean = %v, want 50", got)
	}
	if got := w.Quantile(0.5); got < 50 || got > 60 {
		t.Errorf("Quantile(0.5) = %v, want within bin of 50", got)
	}
}

// TestWeightedHistogramBinaryRoundTrip: MarshalBinary/UnmarshalBinary are
// a bit-exact round trip, and corrupted blobs are rejected.
func TestWeightedHistogramBinaryRoundTrip(t *testing.T) {
	w := NewWeightedHistogram(0, 5500, 1100)
	w.Add(120, 3.5)
	w.Add(4800, 0.25)
	w.Add(-10, 1)           // clamps into bin 0
	w.Add(math.NaN(), 2)    // non-finite tally
	w.Add(math.Inf(1), 0.5) // non-finite tally

	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got WeightedHistogram
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, w) {
		t.Fatalf("round trip changed histogram: %+v vs %+v", got, *w)
	}
	if got.Mean() != w.Mean() || got.Quantile(0.99) != w.Quantile(0.99) ||
		got.Total() != w.Total() || got.NonFinite() != w.NonFinite() {
		t.Fatal("round trip changed derived statistics")
	}

	clone := w.Clone()
	clone.Add(100, 1)
	if clone.Total() == w.Total() {
		t.Fatal("Clone shares bins with the original")
	}

	corrupt := [][]byte{
		nil,
		blob[:8],
		blob[:len(blob)-1],
		append(append([]byte(nil), blob...), 0),
		append([]byte("XXXXXXXX"), blob[8:]...),
	}
	for i, b := range corrupt {
		var h WeightedHistogram
		if err := h.UnmarshalBinary(b); err == nil {
			t.Errorf("case %d: corrupt blob accepted", i)
		}
	}
	// Oversized bin count must be rejected before allocation.
	huge := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(huge[8:], 1<<40)
	var h WeightedHistogram
	if err := h.UnmarshalBinary(huge); err == nil {
		t.Error("absurd bin count accepted")
	}
}

// TestWeightedHistogramMerge: merging adds bins, totals, sums, and
// non-finite tallies; mismatched geometry and nil are rejected.
func TestWeightedHistogramMerge(t *testing.T) {
	a := NewWeightedHistogram(0, 100, 10)
	b := NewWeightedHistogram(0, 100, 10)
	a.Add(5, 2)
	a.Add(95, 1)
	a.Add(math.NaN(), 3)
	b.Add(5, 1)
	b.Add(55, 4)

	joint := NewWeightedHistogram(0, 100, 10)
	for _, add := range [][2]float64{{5, 2}, {95, 1}, {5, 1}, {55, 4}} {
		joint.Add(add[0], add[1])
	}
	joint.Add(math.NaN(), 3)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Total(), joint.Total(); got != want {
		t.Errorf("merged total %v, want %v", got, want)
	}
	if got, want := a.Mean(), joint.Mean(); got != want {
		t.Errorf("merged mean %v, want %v", got, want)
	}
	if got, want := a.NonFinite(), joint.NonFinite(); got != want {
		t.Errorf("merged non-finite %v, want %v", got, want)
	}
	if got, want := a.Quantile(0.5), joint.Quantile(0.5); got != want {
		t.Errorf("merged median %v, want %v", got, want)
	}

	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
	if err := a.Merge(NewWeightedHistogram(0, 100, 11)); err == nil {
		t.Error("bin-count mismatch accepted")
	}
	if err := a.Merge(NewWeightedHistogram(0, 200, 10)); err == nil {
		t.Error("bounds mismatch accepted")
	}
}
