package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Online accumulates streaming moments with Welford's algorithm. The
// simulation engine meters per-cluster costs and distances this way so long
// runs (39 months of hours) do not need to retain every sample.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 if empty).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance (0 if fewer than two
// observations).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (0 if empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 if empty).
func (o *Online) Max() float64 { return o.max }

// Merge folds another accumulator into o (parallel reduction).
func (o *Online) Merge(p *Online) {
	if p.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *p
		return
	}
	n := o.n + p.n
	d := p.mean - o.mean
	mean := o.mean + d*float64(p.n)/float64(n)
	m2 := o.m2 + p.m2 + d*d*float64(o.n)*float64(p.n)/float64(n)
	min := o.min
	if p.min < min {
		min = p.min
	}
	max := o.max
	if p.max > max {
		max = p.max
	}
	*o = Online{n: n, mean: mean, m2: m2, min: min, max: max}
}

// WeightedSample is a value with a non-negative weight; the simulator uses
// hit counts as weights when describing client-server distance (Fig 17's
// mean and 99th-percentile distances are hit-weighted).
type WeightedSample struct {
	Value  float64
	Weight float64
}

// WeightedMean returns Σwv/Σw, or 0 when the total weight is zero.
func WeightedMean(samples []WeightedSample) float64 {
	var sw, swv float64
	for _, s := range samples {
		sw += s.Weight
		swv += s.Weight * s.Value
	}
	if sw == 0 {
		return 0
	}
	return swv / sw
}

// WeightedQuantile returns the smallest value v such that the weight of
// samples ≤ v is at least q of the total weight. Returns an error when the
// sample is empty or total weight is zero.
func WeightedQuantile(samples []WeightedSample, q float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]WeightedSample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Value < sorted[j].Value })
	var total float64
	for _, s := range sorted {
		total += s.Weight
	}
	if total == 0 {
		return 0, ErrEmpty
	}
	target := q * total
	var cum float64
	for _, s := range sorted {
		cum += s.Weight
		if cum >= target {
			return s.Value, nil
		}
	}
	return sorted[len(sorted)-1].Value, nil
}

// WeightedHistogram accumulates weighted values into fixed-width bins and
// can answer weighted quantile queries in O(bins); the simulator uses it to
// track client-server distance distributions over millions of allocations
// without retaining them.
//
// ckpt:state MarshalBinary,UnmarshalBinary,Merge
type WeightedHistogram struct {
	min, max  float64
	bins      []float64
	total     float64
	sum       float64 // Σ weight·value, for the mean
	nonFinite float64 // weight carried by NaN/±Inf values

	// span and nbinsF cache max−min and float64(len(bins)) for Add's bin
	// arithmetic. Derived, never serialized; every constructor (New and
	// UnmarshalBinary) sets them from the same expressions Add used to
	// evaluate inline, so bin placement is bit-identical.
	span   float64 // ckpt:derived max−min, rebuilt by every constructor
	nbinsF float64 // ckpt:derived float64(len(bins)), rebuilt by every constructor
}

// NewWeightedHistogram creates a histogram over [min,max] with the given
// number of bins. Values are clamped into range. The full bin array is
// allocated up front — the histogram never grows.
func NewWeightedHistogram(min, max float64, bins int) *WeightedHistogram {
	if bins < 1 {
		bins = 1
	}
	if max <= min {
		max = min + 1
	}
	return &WeightedHistogram{min: min, max: max, bins: make([]float64, bins), span: max - min, nbinsF: float64(bins)}
}

// Add records value with the given weight. Non-positive or non-finite
// weights are ignored; non-finite values are tallied in NonFinite instead
// of a bin (a NaN would clamp into bin 0 and poison the running sum, so
// Mean would return NaN for the whole run).
func (w *WeightedHistogram) Add(value, weight float64) {
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		w.nonFinite += weight
		return
	}
	w.bins[w.BinIndex(value)] += weight
	w.total += weight
	w.sum += weight * value
}

// BinIndex returns the bin a finite value falls into, including the
// clamping into range. Callers that record the same value repeatedly (the
// simulation engine's fixed client-to-cluster distances) precompute it
// once and use AddToBin on the hot path.
func (w *WeightedHistogram) BinIndex(value float64) int {
	// NOTE: keep this a division by span — folding it into a reciprocal
	// multiply changes rounding and shifts edge values across bins.
	i := int((value - w.min) / w.span * w.nbinsF)
	if i < 0 {
		i = 0
	}
	if i >= len(w.bins) {
		i = len(w.bins) - 1
	}
	return i
}

// AddToBin records a finite value with its precomputed BinIndex, skipping
// the bin arithmetic. The weight guard and the accumulation are Add's,
// bit for bit; the value must be finite (non-finite values have no bin —
// use Add, which tallies them separately).
func (w *WeightedHistogram) AddToBin(i int, value, weight float64) {
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return
	}
	w.bins[i] += weight
	w.total += weight
	w.sum += weight * value
}

// Mean returns the weighted mean of the recorded values.
func (w *WeightedHistogram) Mean() float64 {
	if w.total == 0 {
		return 0
	}
	return w.sum / w.total
}

// Quantile returns the approximate weighted q-quantile (upper edge of the
// bin where the cumulative weight crosses q).
func (w *WeightedHistogram) Quantile(q float64) float64 {
	if w.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * w.total
	var cum float64
	width := (w.max - w.min) / float64(len(w.bins))
	for i, b := range w.bins {
		cum += b
		if cum >= target {
			return w.min + float64(i+1)*width
		}
	}
	return w.max
}

// Total returns the total recorded weight (finite values only).
func (w *WeightedHistogram) Total() float64 { return w.total }

// NonFinite returns the weight offered with NaN/±Inf values.
func (w *WeightedHistogram) NonFinite() float64 { return w.nonFinite }

// Bounds returns the histogram's [min, max] value range.
func (w *WeightedHistogram) Bounds() (min, max float64) { return w.min, w.max }

// NumBins returns the number of bins.
func (w *WeightedHistogram) NumBins() int { return len(w.bins) }

// Clone returns an independent deep copy.
func (w *WeightedHistogram) Clone() *WeightedHistogram {
	c := *w
	c.bins = append([]float64(nil), w.bins...)
	return &c
}

// Merge folds another histogram with identical geometry into this one:
// per-bin weights, totals, value sums, and non-finite tallies all add.
// The simulation engine's shard merge uses it to combine per-region
// distance distributions into the fleet-wide one.
func (w *WeightedHistogram) Merge(o *WeightedHistogram) error {
	if o == nil {
		return errors.New("stats: merging nil histogram")
	}
	if w.min != o.min || w.max != o.max || len(w.bins) != len(o.bins) {
		return fmt.Errorf("stats: merging histogram [%v, %v]×%d into [%v, %v]×%d",
			o.min, o.max, len(o.bins), w.min, w.max, len(w.bins))
	}
	for i, b := range o.bins {
		w.bins[i] += b
	}
	w.total += o.total
	w.sum += o.sum
	w.nonFinite += o.nonFinite
	return nil
}
