package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMomentsSmall(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "Mean", Mean(xs), 5, 1e-12)
	approx(t, "Variance", Variance(xs), 4, 1e-12)
	approx(t, "StdDev", StdDev(xs), 2, 1e-12)
}

func TestMomentsEdgeCases(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice moments should be 0")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("single-sample variance should be 0")
	}
	if Kurtosis([]float64{3, 3, 3}) != 0 {
		t.Error("zero-variance kurtosis should be 0")
	}
	if Skewness([]float64{1}) != 0 {
		t.Error("single-sample skewness should be 0")
	}
}

func TestKurtosisGaussian(t *testing.T) {
	// A large Gaussian sample has raw kurtosis ≈ 3.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	approx(t, "Gaussian kurtosis", Kurtosis(xs), 3, 0.15)
	approx(t, "Gaussian skewness", Skewness(xs), 0, 0.05)
}

func TestKurtosisHeavyTails(t *testing.T) {
	// Adding rare large spikes to a Gaussian must raise kurtosis well above
	// 3 — the mechanism behind the paper's κ=17.8 price changes (Fig 7).
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		if rng.Float64() < 0.002 {
			xs[i] += 30 * rng.NormFloat64()
		}
	}
	if k := Kurtosis(xs); k < 10 {
		t.Errorf("spiked kurtosis = %v, want > 10", k)
	}
}

func TestTrim(t *testing.T) {
	xs := make([]float64, 0, 1000)
	for i := 1; i <= 1000; i++ {
		xs = append(xs, float64(i))
	}
	trimmed := Trim(xs, 0.01) // drop 5 from each end
	if len(trimmed) != 990 {
		t.Fatalf("Trim kept %d samples, want 990", len(trimmed))
	}
	if trimmed[0] != 6 || trimmed[len(trimmed)-1] != 995 {
		t.Errorf("Trim bounds = [%v, %v], want [6, 995]", trimmed[0], trimmed[len(trimmed)-1])
	}
	// Trimming tames outliers: spike one value and compare means.
	spiked := append([]float64(nil), xs...)
	spiked[0] = 1e9
	if m := Mean(Trim(spiked, 0.01)); m > 1000 {
		t.Errorf("trimmed mean %v still dominated by outlier", m)
	}
	// Degenerate cases.
	if got := Trim([]float64{1, 2}, 1.0); got != nil {
		t.Errorf("full trim should return nil, got %v", got)
	}
	if got := Trim([]float64{7}, 0.5); len(got) != 1 {
		t.Errorf("single sample with max trim should survive, got %v", got)
	}
	if got := Trim(xs, -1); len(got) != 1000 {
		t.Errorf("negative frac should trim nothing, kept %d", len(got))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {0.75, 7.75},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "Quantile", got, c.want, 1e-12)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(empty) should fail")
	}
	// Clamping.
	if got, _ := Quantile(xs, -3); got != 1 {
		t.Errorf("Quantile(-3) = %v, want 1", got)
	}
	if got, _ := Quantile(xs, 42); got != 10 {
		t.Errorf("Quantile(42) = %v, want 10", got)
	}
}

func TestQuantileOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8) bool {
		if n == 0 {
			return true
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		q1, _ := Quantile(xs, 0.1)
		q5, _ := Quantile(xs, 0.5)
		q9, _ := Quantile(xs, 0.9)
		return q1 <= q5 && q5 <= q9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	iqr, err := ComputeIQR(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Q25", iqr.Q25, 3.25, 1e-12)
	approx(t, "Median", iqr.Median, 5.5, 1e-12)
	approx(t, "Q75", iqr.Q75, 7.75, 1e-12)
	if _, err := ComputeIQR(nil); err == nil {
		t.Error("ComputeIQR(empty) should fail")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r, _ := Correlation(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect positive correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r, _ := Correlation(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect negative correlation = %v", r)
	}
	if r, _ := Correlation(xs, []float64{7, 7, 7, 7, 7}); r != 0 {
		t.Errorf("constant series correlation = %v, want 0", r)
	}
	if _, err := Correlation(xs, ys[:3]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Correlation(nil, nil); err == nil {
		t.Error("empty should fail")
	}
}

func TestCorrelationIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 50000)
	ys := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	r, _ := Correlation(xs, ys)
	approx(t, "independent correlation", r, 0, 0.02)
}

func TestCorrelationBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(n uint8, mix float64) bool {
		size := int(n)%200 + 2
		mix = math.Mod(math.Abs(mix), 1)
		xs := make([]float64, size)
		ys := make([]float64, size)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = mix*xs[i] + (1-mix)*rng.NormFloat64()
		}
		r, err := Correlation(xs, ys)
		return err == nil && r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A strongly persistent AR(1) has high lag-1 autocorrelation.
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 20000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.95*xs[i-1] + rng.NormFloat64()
	}
	r, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 {
		t.Errorf("AR(1) lag-1 autocorrelation = %v, want > 0.9", r)
	}
	if _, err := Autocorrelation(xs, -1); err == nil {
		t.Error("negative lag should fail")
	}
	if _, err := Autocorrelation(xs, len(xs)); err == nil {
		t.Error("lag >= n should fail")
	}
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Diff length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Diff[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Diff([]float64{1}) != nil || Diff(nil) != nil {
		t.Error("Diff of short input should be nil")
	}
}

func TestFractionWithinBelow(t *testing.T) {
	xs := []float64{-30, -10, 0, 10, 30}
	approx(t, "FractionWithin(20)", FractionWithin(xs, 20), 0.6, 1e-12)
	approx(t, "FractionBelow(0)", FractionBelow(xs, 0), 0.4, 1e-12)
	if FractionWithin(nil, 5) != 0 || FractionBelow(nil, 5) != 0 {
		t.Error("empty fractions should be 0")
	}
}

func TestWindowMeans(t *testing.T) {
	xs := []float64{1, 3, 2, 4, 10, 20, 7}
	got := WindowMeans(xs, 2)
	want := []float64{2, 3, 15}
	if len(got) != 3 {
		t.Fatalf("WindowMeans length %d, want 3", len(got))
	}
	for i := range want {
		approx(t, "WindowMeans", got[i], want[i], 1e-12)
	}
	if WindowMeans(xs, 0) != nil || WindowMeans(xs, 8) != nil {
		t.Error("degenerate windows should return nil")
	}
	// Averaging reduces dispersion: σ of window means ≤ σ of raw data
	// (the effect Fig 5 tabulates).
	rng := rand.New(rand.NewSource(7))
	raw := make([]float64, 10000)
	for i := range raw {
		raw[i] = rng.NormFloat64()
	}
	if StdDev(WindowMeans(raw, 24)) >= StdDev(raw) {
		t.Error("24-sample window means should have lower σ than raw data")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summarize = %+v", s)
	}
	approx(t, "Summary.Mean", s.Mean, 2.5, 1e-12)
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v", empty)
	}
}

func TestTrimmedSummary(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i % 100)
	}
	xs[0] = 1e12 // outlier the trim must remove
	s := TrimmedSummary(xs, 0.01)
	if s.Max > 1e6 {
		t.Errorf("TrimmedSummary kept outlier: max=%v", s.Max)
	}
}
