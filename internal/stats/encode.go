package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of a WeightedHistogram, used by the simulation engine's
// checkpoint format: long-horizon histograms are pure numeric bulk, so they
// travel as a fixed little-endian layout instead of JSON. The layout is
// versioned through its magic so a reader can never misinterpret a blob
// from a different release:
//
//	[8]byte  magic "PRWHIST1"
//	uint64   number of bins
//	float64  min, max, total, sum, nonFinite
//	float64  bins[0..n)
const (
	whMagic = "PRWHIST1"

	// maxHistogramBins bounds decode-side allocation: no histogram in this
	// codebase is within orders of magnitude of it, so anything larger is a
	// corrupt or hostile length field, not data.
	maxHistogramBins = 1 << 24

	whHeaderBytes = 8 + 8 + 5*8
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (w *WeightedHistogram) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, whHeaderBytes+8*len(w.bins))
	out = append(out, whMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(w.bins)))
	for _, v := range []float64{w.min, w.max, w.total, w.sum, w.nonFinite} {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	for _, b := range w.bins {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(b))
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The blob must be
// exactly one MarshalBinary output: wrong magic, truncation, trailing
// bytes, or a structurally invalid histogram (no bins, max ≤ min,
// non-finite bounds) all fail loudly.
func (w *WeightedHistogram) UnmarshalBinary(data []byte) error {
	if len(data) < whHeaderBytes {
		return fmt.Errorf("stats: histogram blob truncated (%d bytes)", len(data))
	}
	if string(data[:8]) != whMagic {
		return fmt.Errorf("stats: histogram blob has wrong magic %q", data[:8])
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if n < 1 || n > maxHistogramBins {
		return fmt.Errorf("stats: histogram bin count %d out of range", n)
	}
	if want := whHeaderBytes + 8*int(n); len(data) != want {
		return fmt.Errorf("stats: histogram blob is %d bytes, want %d for %d bins", len(data), want, n)
	}
	f := func(i int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(data[16+8*i:]))
	}
	min, max, total, sum, nonFinite := f(0), f(1), f(2), f(3), f(4)
	if math.IsNaN(min) || math.IsInf(min, 0) || math.IsNaN(max) || math.IsInf(max, 0) || !(max > min) {
		return fmt.Errorf("stats: histogram bounds [%v, %v] invalid", min, max)
	}
	for _, v := range []float64{total, sum, nonFinite} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stats: non-finite histogram total/sum")
		}
	}
	bins := make([]float64, n)
	for i := range bins {
		v := f(5 + i)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("stats: histogram bin %d weight %v invalid", i, v)
		}
		bins[i] = v
	}
	*w = WeightedHistogram{
		min: min, max: max, bins: bins, total: total, sum: sum, nonFinite: nonFinite,
		span: max - min, nbinsF: float64(n),
	}
	return nil
}
