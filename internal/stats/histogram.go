package stats

import (
	"errors"
	"math"
)

// Histogram is a fixed-width binned empirical distribution, used to render
// the paper's price change and differential histograms (Fig 7, 10, 13).
type Histogram struct {
	Min, Max  float64 // bounds of the binned range
	Width     float64 // bin width
	Counts    []int   // per-bin counts
	Under     int     // samples below Min
	Over      int     // samples above Max
	NonFinite int     // NaN and ±Inf samples
	Total     int     // all samples offered, including out-of-range and non-finite
}

// NewHistogram builds a histogram of xs with the given number of equal-width
// bins over [min, max]. Samples outside the range are tallied in Under/Over
// rather than dropped, so heavy tails remain visible in the totals.
func NewHistogram(xs []float64, min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(max > min) {
		return nil, errors.New("stats: histogram needs max > min")
	}
	h := &Histogram{
		Min:    min,
		Max:    max,
		Width:  (max - min) / float64(bins),
		Counts: make([]int, bins),
	}
	for _, x := range xs {
		h.Add(x)
	}
	return h, nil
}

// Add tallies one sample. Non-finite samples land in NonFinite rather
// than a bin: a NaN fails both range comparisons, and int(NaN) — like
// int(±Inf) — is implementation-defined (negative on amd64), which would
// panic on the Counts index.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case math.IsNaN(x) || math.IsInf(x, 0):
		h.NonFinite++
	case x < h.Min:
		h.Under++
	case x > h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / h.Width)
		if i >= len(h.Counts) { // x == Max lands in the last bin
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.Width
}

// Fraction returns bin i's share of all samples (including out-of-range
// samples in the denominator).
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Fractions returns every bin's share of the total.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range h.Counts {
		out[i] = h.Fraction(i)
	}
	return out
}

// MutualInformation estimates I(X;Y) in bits between two paired samples by
// binning each marginal into the given number of equal-width bins. The
// paper uses mutual information to show that same-RTO hub pairs separate
// from different-RTO pairs more cleanly than linear correlation does
// (§3.2, footnote 8).
func MutualInformation(xs, ys []float64, bins int) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: mutual information length mismatch")
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if bins <= 1 {
		return 0, errors.New("stats: mutual information needs >= 2 bins")
	}
	binOf := func(v, lo, hi float64) int {
		if hi <= lo {
			return 0
		}
		i := int((v - lo) / (hi - lo) * float64(bins))
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		return i
	}
	minMax := func(vs []float64) (float64, float64) {
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lo, hi
	}
	xlo, xhi := minMax(xs)
	ylo, yhi := minMax(ys)

	joint := make([]float64, bins*bins)
	px := make([]float64, bins)
	py := make([]float64, bins)
	n := float64(len(xs))
	for i := range xs {
		bx := binOf(xs[i], xlo, xhi)
		by := binOf(ys[i], ylo, yhi)
		joint[bx*bins+by]++
		px[bx]++
		py[by]++
	}
	mi := 0.0
	for bx := 0; bx < bins; bx++ {
		for by := 0; by < bins; by++ {
			j := joint[bx*bins+by]
			if j == 0 {
				continue
			}
			pj := j / n
			mi += pj * math.Log2(pj*n*n/(px[bx]*py[by]))
		}
	}
	if mi < 0 { // guard against rounding producing -0.0000…
		mi = 0
	}
	return mi, nil
}
