// Package load type-checks Go packages for the powerroute-vet analyzers
// without golang.org/x/tools/go/packages. It shells out to
// `go list -export -json -deps`, which compiles (or reuses from the build
// cache) export data for every dependency, then parses the target
// packages' sources and type-checks them with the standard gc importer
// reading that export data. The result carries full cross-package type
// information — enough for the intra-package analyses powerroute-vet
// performs.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string // path to export data in the build cache
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir and returns the
// matched packages, type-checked. Dependencies — including the standard
// library — are loaded from compiler export data, so only the targets'
// sources are parsed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		return nil, errors.New("load: no package patterns")
	}
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path → export data file
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("load: no packages match %v", patterns)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
