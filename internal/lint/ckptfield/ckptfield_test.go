package ckptfield_test

import (
	"testing"

	"powerroute/internal/lint/analysistest"
	"powerroute/internal/lint/ckptfield"
)

func TestCkptfield(t *testing.T) {
	analysistest.Run(t, "testdata", ckptfield.Analyzer, "engine", "queue")
}
