// Package ckptfield cross-checks checkpoint coverage: a struct annotated
//
//	// ckpt:state Checkpoint,loadCheckpoint
//
// declares that every one of its fields must be referenced — directly or
// through same-package calls — by each named function, or carry a
//
//	// ckpt:derived <why>    (rebuilt from other state, not serialized)
//	// ckpt:immutable <why>  (configuration fixed at construction)
//
// exemption. This is what makes "a new Engine field silently escapes the
// checkpoint" a compile-gate failure instead of a code-review hope: add a
// field to sim.Engine without serializing, restoring, and merging it (or
// writing down why that is safe) and powerroute-vet fails CI.
package ckptfield

import (
	"go/ast"
	"go/types"
	"strings"

	"powerroute/internal/lint/analysis"
	"powerroute/internal/lint/annot"
)

var Analyzer = &analysis.Analyzer{
	Name: "ckptfield",
	Doc: "every field of a ckpt:state struct must be referenced by each named checkpoint function\n\n" +
		"References are collected transitively through same-package calls, so a\n" +
		"State() that delegates to a helper still covers the fields the helper\n" +
		"reads. Exempt a field with // ckpt:derived <why> or // ckpt:immutable <why>.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// Index the package's function declarations by name (methods on any
	// receiver included: ckpt:state names functions, and a name that is
	// serialized by several sibling types lists decls for each).
	fnsByName := make(map[string][]*ast.FuncDecl)
	declOf := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fnsByName[fd.Name.Name] = append(fnsByName[fd.Name.Name], fd)
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				declOf[obj] = fd
			}
		}
	}

	refCache := make(map[string]map[types.Object]bool)
	refs := func(fnName string) map[types.Object]bool {
		if r, ok := refCache[fnName]; ok {
			return r
		}
		r := make(map[types.Object]bool)
		visited := make(map[*ast.FuncDecl]bool)
		var work []*ast.FuncDecl
		work = append(work, fnsByName[fnName]...)
		for len(work) > 0 {
			fd := work[len(work)-1]
			work = work[:len(work)-1]
			if visited[fd] || fd.Body == nil {
				continue
			}
			visited[fd] = true
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					return true
				}
				r[obj] = true
				if callee, ok := obj.(*types.Func); ok {
					if next, ok := declOf[callee]; ok {
						work = append(work, next)
					}
				}
				return true
			})
		}
		refCache[fnName] = r
		return r
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				list, ok := stateFunctions(gd, ts)
				if !ok {
					continue
				}
				if len(list) == 0 {
					pass.Reportf(ts.Pos(), "ckpt:state on %s names no functions", ts.Name.Name)
					continue
				}
				for _, fnName := range list {
					if len(fnsByName[fnName]) == 0 {
						pass.Reportf(ts.Pos(), "ckpt:state on %s names %s, but no function or method of that name exists in this package", ts.Name.Name, fnName)
					}
				}
				checkStruct(pass, ts, st, list, fnsByName, refs)
			}
		}
	}
	return nil, nil
}

// stateFunctions extracts the comma-separated function list from a
// ckpt:state annotation in the type's doc or trailing comment.
func stateFunctions(gd *ast.GenDecl, ts *ast.TypeSpec) ([]string, bool) {
	for _, g := range []*ast.CommentGroup{ts.Doc, gd.Doc, ts.Comment} {
		if rest, ok := annot.Directive(g, "ckpt:state"); ok {
			var list []string
			for _, name := range strings.Split(rest, ",") {
				if name = strings.TrimSpace(name); name != "" {
					list = append(list, name)
				}
			}
			return list, true
		}
	}
	return nil, false
}

func checkStruct(pass *analysis.Pass, ts *ast.TypeSpec, st *ast.StructType, fns []string, fnsByName map[string][]*ast.FuncDecl, refs func(string) map[types.Object]bool) {
	for _, field := range st.Fields.List {
		if exempt(field) {
			continue
		}
		if len(field.Names) == 0 {
			// Embedded fields carry no declared identifier to track;
			// checkpoint state structs in this repo name every field.
			pass.Reportf(field.Pos(), "embedded field in ckpt:state struct %s: name it so checkpoint coverage can be verified, or annotate // ckpt:derived / // ckpt:immutable", ts.Name.Name)
			continue
		}
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			for _, fnName := range fns {
				if len(fnsByName[fnName]) == 0 {
					continue // already reported at the struct
				}
				if !refs(fnName)[obj] {
					pass.Reportf(name.Pos(), "field %s.%s is not referenced by %s: checkpoint coverage is incomplete; serialize/restore it there or annotate // ckpt:derived <why> or // ckpt:immutable <why>", ts.Name.Name, name.Name, fnName)
				}
			}
		}
	}
}

func exempt(field *ast.Field) bool {
	for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if _, ok := annot.Directive(g, "ckpt:derived"); ok {
			return true
		}
		if _, ok := annot.Directive(g, "ckpt:immutable"); ok {
			return true
		}
	}
	return false
}
