// Package queue is a miniature of sched.Scheduler, demonstrating that
// ckptfield catches unserialized scheduler state: the queues field is
// the live run state and must flow through both State and RestoreState;
// dropping it from either side would silently lose every queued job
// across a checkpoint.
package queue

// Job is one queued batch job (the wire form of the real QueuedJob).
type Job struct {
	Deadline int
	Total    float64
	Served   float64
}

// Scheduler mirrors the real scheduler's shape: serialized queues plus
// derived cursors and scratch.
//
// ckpt:state State,RestoreState
type Scheduler struct {
	queues [][]Job
	// shed was added to track per-queue shed totals but never wired into
	// either serialization function — ckptfield must flag both sides.
	shed []float64 // want `Scheduler\.shed is not referenced by State` `Scheduler\.shed is not referenced by RestoreState`

	// nextJob is re-derived from the restored step cursor.
	nextJob int // ckpt:derived recomputed from the step cursor on restore

	// maxKW is configuration fixed at construction.
	maxKW []float64 // ckpt:immutable configuration, not run state

	// scratch is per-step dispatch workspace.
	scratch []float64 // ckpt:derived per-step scratch
}

// State deep-copies every queue (transitively, through copyQueue).
func (s *Scheduler) State() [][]Job {
	out := make([][]Job, len(s.queues))
	for c := range s.queues {
		out[c] = copyQueue(s.queues[c])
	}
	return out
}

// copyQueue shows transitive coverage: State reaches queues through a
// same-package helper.
func copyQueue(q []Job) []Job {
	return append([]Job(nil), q...)
}

// RestoreState loads serialized queues and re-derives the cursor.
func (s *Scheduler) RestoreState(states [][]Job, step int) {
	for c := range states {
		s.queues[c] = append(s.queues[c][:0], states[c]...)
	}
	s.nextJob = step
}
