// Package engine is a miniature of sim.Engine, demonstrating what
// ckptfield enforces: the serialization line for lastAt was deleted from
// Restore, and the seed field was added without touching Checkpoint or
// Restore at all — both must fail.
package engine

// Engine mirrors the real engine's shape: run state plus derived caches.
//
// ckpt:state Checkpoint,Restore
type Engine struct {
	steps  int
	cost   []float64
	lastAt int64 // want `Engine\.lastAt is not referenced by Restore`
	seed   int64 // want `Engine\.seed is not referenced by Checkpoint` `Engine\.seed is not referenced by Restore`

	// cache is rebuilt from cost on first use; never serialized.
	cache []float64 // ckpt:derived recomputed from cost by Quantile

	// stepHours comes from the scenario, fixed at construction.
	stepHours float64 // ckpt:immutable configuration, not run state
}

// State is the wire form; it must round-trip through both functions too.
//
// ckpt:state Checkpoint,Restore
type State struct {
	Steps  int
	Cost   []float64
	LastAt int64 // want `State\.LastAt is not referenced by Restore`
}

func (e *Engine) Checkpoint() State {
	return State{
		Steps:  e.steps,
		Cost:   append([]float64(nil), e.cost...),
		LastAt: e.lastAt,
	}
}

func (e *Engine) Restore(s State) {
	e.steps = s.Steps
	e.restoreCost(s)
	// The line restoring e.lastAt from s.LastAt was deleted; ckptfield
	// flags the field above.
}

// restoreCost shows transitive coverage: Restore reaches cost through a
// same-package helper call.
func (e *Engine) restoreCost(s State) {
	e.cost = append([]float64(nil), s.Cost...)
}

// Orphan names a function that does not exist.
//
// ckpt:state Serialize
type Orphan struct { // want `ckpt:state on Orphan names Serialize, but no function or method of that name exists`
	n int
}
