// Package other is not one of the deterministic packages, so map ranges
// here are not maprange's business.
package other

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
