package sim

import "fmt"

// Validate feeds map iteration order into error text: nondeterministic.
func Validate(sections map[string]int, nc int) error {
	for name, n := range sections { // want `range over map in deterministic package sim`
		if n != nc {
			return fmt.Errorf("%d %s for %d clusters", n, name, nc)
		}
	}
	return nil
}

// Invert only writes map elements keyed independently per iteration, so
// the result is the same under any visit order: exempt.
func Invert(src map[string]int) map[int]string {
	out := make(map[int]string)
	for k, v := range src {
		out[v] = k
	}
	return out
}

// Tally accumulates through guards and += into maps only: exempt.
func Tally(src map[string]int) map[string]int {
	out := make(map[string]int)
	for k, v := range src {
		if v == 0 {
			continue
		}
		out[k] += v
	}
	return out
}

// CountLarge carries a justification for an order-sensitive body.
func CountLarge(m map[string]int) int {
	n := 0
	//lint:deterministic an integer count is identical under any iteration order
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// Keys appends under iteration: order-sensitive, flagged.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map in deterministic package sim`
		out = append(out, k)
	}
	return out
}
