package maprange_test

import (
	"testing"

	"powerroute/internal/lint/analysistest"
	"powerroute/internal/lint/maprange"
)

func TestMaprange(t *testing.T) {
	analysistest.Run(t, "testdata", maprange.Analyzer, "sim", "other")
}
