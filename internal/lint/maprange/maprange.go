// Package maprange flags `range` over a map in the deterministic
// packages. Go randomizes map iteration order per run, so any map range
// whose body feeds output, serialization, or error text makes the result
// nondeterministic — which this repo forbids: replay, restore, and shard
// merge must reproduce the batch run bit for bit.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"powerroute/internal/lint/analysis"
	"powerroute/internal/lint/annot"
)

var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag range-over-map in deterministic packages\n\n" +
		"A loop is exempt when its body provably commutes across iteration\n" +
		"orders (it only writes map elements, each keyed independently) or\n" +
		"when it carries a //lint:deterministic <why> justification.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !annot.IsDeterministic(pass.Pkg) {
		return nil, nil
	}
	cm := annot.NewComments(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rs.Body.List) {
				return true
			}
			if cm.Suppressed(rs.Pos(), "lint:deterministic") {
				return true
			}
			pass.Reportf(rs.Pos(), "range over map in deterministic package %s: iteration order is randomized; iterate a fixed or sorted key list, or annotate //lint:deterministic <why>", pass.Pkg.Name())
			return true
		})
	}
	return nil, nil
}

// orderInsensitive reports whether every statement is pure accumulation
// into maps: each iteration writes only elements of some map, so the
// final contents do not depend on visit order. Anything else — appends,
// running scalars, early returns, calls — is treated as order-sensitive.
func orderInsensitive(pass *analysis.Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return false
			}
			for _, lhs := range s.Lhs {
				if !isMapIndex(pass, lhs) {
					return false
				}
			}
		case *ast.IncDecStmt:
			if !isMapIndex(pass, s.X) {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || !orderInsensitive(pass, s.Body.List) {
				return false
			}
			if s.Else != nil {
				eb, ok := s.Else.(*ast.BlockStmt)
				if !ok || !orderInsensitive(pass, eb.List) {
					return false
				}
			}
		case *ast.EmptyStmt:
		default:
			return false
		}
	}
	return true
}

func isMapIndex(pass *analysis.Pass, e ast.Expr) bool {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
