// Package lint assembles the powerroute-vet analyzer suite: the static
// checks that enforce this repo's determinism and checkpoint-completeness
// invariants (see each analyzer's package documentation, and the README's
// "Static analysis" section for the annotation grammar).
package lint

import (
	"powerroute/internal/lint/analysis"
	"powerroute/internal/lint/ckptfield"
	"powerroute/internal/lint/lockcheck"
	"powerroute/internal/lint/maprange"
	"powerroute/internal/lint/wallclock"
)

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maprange.Analyzer,
		wallclock.Analyzer,
		ckptfield.Analyzer,
		lockcheck.Analyzer,
	}
}
