// Package wallclock forbids ambient-state reads in the deterministic
// packages: wall-clock time (time.Now, time.Since), the process
// environment (os.Getenv and friends), and math/rand's implicitly seeded
// global source. The simulation engine must be a pure function of
// scenario + inputs; time and randomness arrive as arguments, and
// explicitly seeded generators (rand.New(rand.NewSource(seed))) remain
// allowed.
package wallclock

import (
	"go/ast"
	"go/types"

	"powerroute/internal/lint/analysis"
	"powerroute/internal/lint/annot"
)

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since, os.Getenv, and unseeded math/rand in deterministic packages\n\n" +
		"Suppress a deliberate use with //lint:deterministic <why>.",
	Run: run,
}

// forbidden maps import path → function name → reason fragment. For
// math/rand, absence from the allowed set means the function draws from
// the implicitly seeded global source.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
		"Environ":   "reads the process environment",
	},
}

// seededConstructors are the math/rand functions that do not touch the
// global source: they build explicitly seeded generators.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !annot.IsDeterministic(pass.Pkg) {
		return nil, nil
	}
	cm := annot.NewComments(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path, name := pn.Imported().Path(), sel.Sel.Name
			var reason string
			if r, ok := forbidden[path][name]; ok {
				reason = r
			} else if (path == "math/rand" || path == "math/rand/v2") && !seededConstructors[name] {
				reason = "draws from the implicitly seeded global source"
			}
			if reason == "" {
				return true
			}
			if cm.Suppressed(sel.Pos(), "lint:deterministic") {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s %s in deterministic package %s: thread the value through the scenario or step arguments, or annotate //lint:deterministic <why>", path, name, reason, pass.Pkg.Name())
			return true
		})
	}
	return nil, nil
}
