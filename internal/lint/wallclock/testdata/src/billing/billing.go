package billing

import (
	"math/rand"
	"os"
	"time"
)

func StampNow() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func Roll() int {
	return rand.Intn(6) // want `math/rand\.Intn draws from the implicitly seeded global source`
}

func DebugDir() string {
	return os.Getenv("POWERROUTE_DEBUG_DIR") // want `os\.Getenv reads the process environment`
}

// SeededRoll builds an explicitly seeded generator: allowed.
func SeededRoll(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

// LogStamp documents a deliberate wall-clock read.
func LogStamp() time.Time {
	//lint:deterministic operator-log timestamp, never feeds simulation output
	return time.Now()
}
