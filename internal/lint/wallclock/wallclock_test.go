package wallclock_test

import (
	"testing"

	"powerroute/internal/lint/analysistest"
	"powerroute/internal/lint/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer, "billing")
}
