// Package analysis is a minimal, dependency-free subset of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one
// type-checked package and reports diagnostics through its Pass.
//
// The module deliberately has no dependencies outside the standard
// library, so the x/tools framework itself is off the table; this
// package keeps the same shape (Analyzer, Pass, Diagnostic, a Run
// function per analyzer) so the checkers could be ported to the real
// API by changing imports if the module ever takes the dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to a single package.
	Run func(*Pass) (any, error)
}

// Pass provides one type-checked package to an Analyzer's Run and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // the package's non-test sources, parsed with comments
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
