// Package annot parses the comment annotations the powerroute-vet
// analyzers understand:
//
//	//lint:deterministic <why>      suppress maprange/wallclock at a statement
//	//lint:held <mutex> <why>       function runs with <mutex> already held
//	// ckpt:state <fn>[,<fn>...]    struct is checkpoint state; every field
//	//                              must be referenced by each named function
//	// ckpt:derived <why>           field is rebuilt, not serialized
//	// ckpt:immutable <why>         field is configuration, not run state
//	// guarded_by: <mutex>          field may only be touched holding <mutex>
//
// Annotations are read from raw comment text, not CommentGroup.Text,
// because Text strips //name:value directive comments (the //lint: forms).
package annot

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterministicPackages names the packages whose code must be a pure
// function of its inputs: they feed simulation results, serialized bytes,
// or user-visible output that the repo guarantees bit-for-bit.
var DeterministicPackages = map[string]bool{
	"sim":        true,
	"billing":    true,
	"sched":      true,
	"storage":    true,
	"stats":      true,
	"routing":    true,
	"cluster":    true,
	"timeseries": true,
}

// IsDeterministic reports whether pkg is one of the deterministic
// packages (matched by package name, so fixture packages qualify too).
func IsDeterministic(pkg *types.Package) bool {
	return DeterministicPackages[pkg.Name()]
}

// Directive scans a comment group for a comment of the form
// "// <name> <rest>" (the space after // is optional) and returns the
// trimmed remainder. ok is true even when rest is empty.
func Directive(g *ast.CommentGroup, name string) (rest string, ok bool) {
	if g == nil {
		return "", false
	}
	for _, c := range g.List {
		if r, found := directiveText(c.Text, name); found {
			return r, true
		}
	}
	return "", false
}

func directiveText(comment, name string) (rest string, ok bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, name) {
		return "", false
	}
	rest = text[len(name):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // longer word that merely shares the prefix
	}
	return strings.TrimSpace(rest), true
}

// Comments indexes every comment in a pass by the line it starts on, for
// statement-level suppression lookups.
type Comments struct {
	fset   *token.FileSet
	byLine map[string]map[int][]string // file → line → comment texts
}

// NewComments indexes the comments of files.
func NewComments(fset *token.FileSet, files []*ast.File) *Comments {
	cm := &Comments{fset: fset, byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				pos := fset.Position(c.Pos())
				lines := cm.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					cm.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], c.Text)
			}
		}
	}
	return cm
}

// Suppressed reports whether the statement at pos carries the named
// directive with a non-empty justification, either trailing on the same
// line or on the line directly above.
func (cm *Comments) Suppressed(pos token.Pos, name string) bool {
	p := cm.fset.Position(pos)
	lines := cm.byLine[p.Filename]
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, text := range lines[line] {
			if why, ok := directiveText(text, name); ok && why != "" {
				return true
			}
		}
	}
	return false
}
