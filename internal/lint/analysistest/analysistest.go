// Package analysistest runs an analyzer over fixture packages and
// compares its diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixture sources live under <testdata>/src/<pkg>/. Because testdata is
// invisible to the go tool, Run copies the requested packages into a
// throwaway module in t.TempDir() and loads them with the same loader the
// production powerroute-vet binary uses — fixtures are type-checked
// exactly like real code, standard-library imports included.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"powerroute/internal/lint/analysis"
	"powerroute/internal/lint/load"
)

// wantRE matches one double- or back-quoted pattern in a // want comment.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run applies a to each named fixture package and reports mismatches
// between its diagnostics and the fixtures' // want comments on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		src := filepath.Join(testdata, "src", pkg)
		dst := filepath.Join(dir, pkg)
		if err := copyDir(src, dst); err != nil {
			t.Fatalf("copying fixture %s: %v", pkg, err)
		}
	}
	loaded, err := load.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, p := range loaded {
		expected := wantComments(t, p)
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := p.Fset.Position(d.Pos)
			key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
			for i, re := range expected[key] {
				if re.MatchString(d.Message) {
					expected[key] = append(expected[key][:i], expected[key][i+1:]...)
					return
				}
			}
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer error: %v", p.ImportPath, err)
		}
		for key, res := range expected {
			for _, re := range res {
				t.Errorf("%s: no diagnostic matching %q", key, re)
			}
		}
	}
}

// wantComments extracts // want "re" ["re" ...] expectations, keyed by
// "file.go:line".
func wantComments(t *testing.T, p *load.Package) map[string][]*regexp.Regexp {
	t.Helper()
	out := make(map[string][]*regexp.Regexp)
	for _, f := range p.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, m := range wantRE.FindAllString(text[len("want "):], -1) {
					pat, err := strconv.Unquote(m)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, m, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					out[key] = append(out[key], re)
				}
			}
		}
	}
	return out
}

func copyDir(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}
