// Package lockcheck enforces `// guarded_by: <mutex>` field annotations:
// an annotated field may only be read or written while the named mutex is
// held. The check is an intra-package, intra-function heuristic — it
// walks each function body in source order tracking Lock/RLock and
// Unlock/RUnlock calls on fields whose type ends in "Mutex" (a deferred
// unlock keeps the mutex held to the end of the function) and flags any
// guarded-field access outside a held region.
//
// Two escapes keep the heuristic honest rather than noisy:
//
//   - accesses rooted at a variable declared inside the function body are
//     skipped (the constructor pattern: s := &Server{...}; s.f = ... is
//     safe before the value is shared), and
//   - a function whose callers lock on its behalf is annotated
//     //lint:held <mutex> <why>, which treats the mutex as held for the
//     whole body.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"powerroute/internal/lint/analysis"
	"powerroute/internal/lint/annot"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "fields annotated // guarded_by: <mutex> may only be accessed holding that mutex\n\n" +
		"Annotate caller-locked helpers with //lint:held <mutex> <why>.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	guarded := guardedFields(pass)
	if len(guarded) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guarded)
		}
	}
	return nil, nil
}

// guardedFields maps each annotated field object to its mutex name.
func guardedFields(pass *analysis.Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := ""
				for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if rest, ok := annot.Directive(g, "guarded_by:"); ok && rest != "" {
						mutex = strings.Fields(rest)[0]
						break
					}
				}
				if mutex == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = mutex
					}
				}
			}
			return true
		})
	}
	return out
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	held := make(map[string]int)
	if rest, ok := annot.Directive(fd.Doc, "lint:held"); ok && rest != "" {
		held[strings.Fields(rest)[0]]++
	}
	locals := bodyLocals(pass, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred unlock runs at return: the mutex stays held for
			// the rest of the body, so the release is not recorded.
			if _, kind := lockCall(pass, n.Call); kind == "unlock" {
				return false
			}
		case *ast.CallExpr:
			if mutex, kind := lockCall(pass, n); mutex != "" {
				switch kind {
				case "lock":
					held[mutex]++
				case "unlock":
					held[mutex]--
				}
			}
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.Uses[n.Sel]
			mutex, ok := guarded[obj]
			if !ok {
				return true
			}
			if held[mutex] > 0 || rootIsLocal(pass, n, locals) {
				return true
			}
			pass.Reportf(n.Sel.Pos(), "%s is guarded_by: %s but accessed without holding %s: lock around the access or annotate the function //lint:held %s <why>", n.Sel.Name, mutex, mutex, mutex)
		}
		return true
	})
}

// lockCall recognizes <recv>.<mutex>.Lock/RLock/Unlock/RUnlock() where the
// method receiver's type name ends in "Mutex", returning the mutex field
// or variable name and "lock" or "unlock".
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (mutex, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return "", ""
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !strings.HasSuffix(types.TypeString(tv.Type, nil), "Mutex") {
		return "", ""
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name, kind
	case *ast.Ident:
		return x.Name, kind
	}
	return "", ""
}

// bodyLocals collects the objects declared inside the function body, so
// constructor-pattern accesses (via a not-yet-shared local value) are
// exempt from the guard.
func bodyLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	locals := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				locals[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					record(lhs)
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				record(name)
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				record(n.Key)
				record(n.Value)
			}
		}
		return true
	})
	return locals
}

// rootIsLocal reports whether the base of a selector chain is a variable
// declared inside the enclosing function body (or an intermediate call
// result, which is likewise not shared state reached from the receiver).
func rootIsLocal(pass *analysis.Pass, sel *ast.SelectorExpr, locals map[types.Object]bool) bool {
	e := sel.X
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			return true
		case *ast.Ident:
			return locals[pass.TypesInfo.Uses[x]]
		default:
			return false
		}
	}
}
