package server

import (
	"sync"
	"sync/atomic"
)

// View is an immutable snapshot published through an atomic pointer.
type View struct {
	entries []int
}

// Feed models the RCU pattern the daemon's sharded price feed uses:
// canonical state is guarded by a commit mutex, and readers go through an
// atomically swapped immutable view instead of the lock. The atomic
// pointer itself needs no guarded_by — Load/Store are the
// synchronization — which is exactly what this fixture pins down: the
// justified pattern passes, while touching the canonical arrays off-lock
// still fails.
type Feed struct {
	commitMu sync.Mutex
	entries  []int // guarded_by: commitMu
	view     atomic.Pointer[View]
}

// Publish mutates canonical state under the commit lock and swaps in an
// immutable successor view.
func (f *Feed) Publish(n int) {
	f.commitMu.Lock()
	defer f.commitMu.Unlock()
	f.entries = append(f.entries, n)
	v := &View{entries: append([]int(nil), f.entries...)}
	f.view.Store(v)
}

// Read loads the current view without any lock: the atomic swap is the
// synchronization edge, so no diagnostic is expected here.
func (f *Feed) Read() *View {
	return f.view.Load()
}

// BadLen bypasses the commit lock: publishing through the atomic view
// does not license touching the canonical arrays off-lock.
func (f *Feed) BadLen() int {
	return len(f.entries) // want `entries is guarded_by: commitMu but accessed without holding commitMu`
}
