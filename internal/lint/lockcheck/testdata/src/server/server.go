package server

import "sync"

type Server struct {
	mu sync.Mutex
	// state is the live engine snapshot.
	state int // guarded_by: mu

	reqMu sync.RWMutex
	hits  map[string]int // guarded_by: reqMu
}

// New is the constructor pattern: s is function-local, not yet shared, so
// initializing guarded fields without the lock is fine.
func New() *Server {
	s := &Server{}
	s.state = 1
	s.hits = make(map[string]int)
	return s
}

func (s *Server) Good() int {
	s.mu.Lock()
	v := s.state
	s.mu.Unlock()
	return v
}

// GoodDefer holds the mutex to the end of the function.
func (s *Server) GoodDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state++
	return s.state
}

func (s *Server) Bad() int {
	return s.state // want `state is guarded_by: mu but accessed without holding mu`
}

// WrongMutex holds mu, but hits is guarded by reqMu.
func (s *Server) WrongMutex() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits["x"]++ // want `hits is guarded_by: reqMu but accessed without holding reqMu`
}

// AfterUnlock releases before the access.
func (s *Server) AfterUnlock() int {
	s.mu.Lock()
	s.mu.Unlock()
	return s.state // want `state is guarded_by: mu but accessed without holding mu`
}

// ReadHits takes the read side of the RWMutex.
func (s *Server) ReadHits(k string) int {
	s.reqMu.RLock()
	defer s.reqMu.RUnlock()
	return s.hits[k]
}

// bumpLocked is caller-locked: Good callers take mu before dispatching.
//
//lint:held mu every caller locks mu before calling
func (s *Server) bumpLocked() {
	s.state++
}
