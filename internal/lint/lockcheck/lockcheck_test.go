package lockcheck_test

import (
	"testing"

	"powerroute/internal/lint/analysistest"
	"powerroute/internal/lint/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "server")
}
