package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)

func TestGeometry(t *testing.T) {
	s := New(t0, Hourly, 48)
	if s.Len() != 48 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.TimeAt(0).Equal(t0) {
		t.Errorf("TimeAt(0) = %v", s.TimeAt(0))
	}
	if !s.TimeAt(25).Equal(t0.Add(25 * time.Hour)) {
		t.Errorf("TimeAt(25) = %v", s.TimeAt(25))
	}
	if !s.End().Equal(t0.Add(48 * time.Hour)) {
		t.Errorf("End = %v", s.End())
	}
}

func TestIndexOfAndAt(t *testing.T) {
	s := New(t0, Hourly, 24)
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	// Mid-hour instants map to the covering sample.
	i, err := s.IndexOf(t0.Add(90 * time.Minute))
	if err != nil || i != 1 {
		t.Errorf("IndexOf(+90m) = %d, %v; want 1", i, err)
	}
	v, err := s.At(t0.Add(23*time.Hour + 59*time.Minute))
	if err != nil || v != 23 {
		t.Errorf("At(last minute) = %v, %v; want 23", v, err)
	}
	if _, err := s.IndexOf(t0.Add(-time.Second)); err == nil {
		t.Error("IndexOf before start should fail")
	}
	if _, err := s.IndexOf(t0.Add(24 * time.Hour)); err == nil {
		t.Error("IndexOf at end should fail")
	}
}

func TestSlice(t *testing.T) {
	s := New(t0, Hourly, 24)
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	mid := s.Slice(t0.Add(6*time.Hour), t0.Add(12*time.Hour))
	if mid.Len() != 6 || mid.Values[0] != 6 || mid.Values[5] != 11 {
		t.Errorf("Slice(6h,12h) = %v", mid.Values)
	}
	if !mid.Start.Equal(t0.Add(6 * time.Hour)) {
		t.Errorf("Slice start = %v", mid.Start)
	}
	// Clamped bounds.
	all := s.Slice(t0.Add(-100*time.Hour), t0.Add(1000*time.Hour))
	if all.Len() != 24 {
		t.Errorf("clamped slice len = %d", all.Len())
	}
	empty := s.Slice(t0.Add(10*time.Hour), t0.Add(5*time.Hour))
	if empty.Len() != 0 {
		t.Errorf("inverted slice len = %d", empty.Len())
	}
	before := s.Slice(t0.Add(-5*time.Hour), t0.Add(-2*time.Hour))
	if before.Len() != 0 {
		t.Errorf("pre-start slice len = %d", before.Len())
	}
}

func TestSub(t *testing.T) {
	a := New(t0, Hourly, 3)
	b := New(t0, Hourly, 3)
	copy(a.Values, []float64{10, 20, 30})
	copy(b.Values, []float64{1, 2, 3})
	d, err := Sub(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{9, 18, 27} {
		if d.Values[i] != want {
			t.Errorf("Sub[%d] = %v, want %v", i, d.Values[i], want)
		}
	}
	// Geometry mismatches.
	if _, err := Sub(a, New(t0, FiveMinute, 3)); err == nil {
		t.Error("step mismatch should fail")
	}
	if _, err := Sub(a, New(t0.Add(time.Hour), Hourly, 3)); err == nil {
		t.Error("start mismatch should fail")
	}
	if _, err := Sub(a, New(t0, Hourly, 4)); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestDownsample(t *testing.T) {
	s := New(t0, FiveMinute, 25) // 2 full hours + one extra sample
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	h, err := s.Downsample(12)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("Downsample len = %d, want 2 (trailing partial discarded)", h.Len())
	}
	if h.Step != time.Hour {
		t.Errorf("Downsample step = %v", h.Step)
	}
	if math.Abs(h.Values[0]-5.5) > 1e-12 || math.Abs(h.Values[1]-17.5) > 1e-12 {
		t.Errorf("Downsample values = %v", h.Values)
	}
	if _, err := s.Downsample(0); err == nil {
		t.Error("factor 0 should fail")
	}
}

func TestDailyMeans(t *testing.T) {
	s := New(t0, Hourly, 49)
	for i := range s.Values {
		s.Values[i] = 10
	}
	s.Values[0] = 34 // perturb first day
	d, err := s.DailyMeans()
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("DailyMeans len = %d, want 2", d.Len())
	}
	if math.Abs(d.Values[0]-11) > 1e-12 {
		t.Errorf("day 0 mean = %v, want 11", d.Values[0])
	}
	if math.Abs(d.Values[1]-10) > 1e-12 {
		t.Errorf("day 1 mean = %v, want 10", d.Values[1])
	}
	odd := New(t0, 7*time.Hour, 10)
	if _, err := odd.DailyMeans(); err == nil {
		t.Error("step not dividing a day should fail")
	}
}

func TestGroupByHourOfDay(t *testing.T) {
	s := New(t0, Hourly, 48)
	for i := range s.Values {
		s.Values[i] = float64(i % 24) // value equals its UTC hour
	}
	utc := s.GroupByHourOfDay(0)
	for h := 0; h < 24; h++ {
		if len(utc[h]) != 2 {
			t.Fatalf("hour %d has %d samples, want 2", h, len(utc[h]))
		}
		if utc[h][0] != float64(h) {
			t.Errorf("hour %d sample = %v", h, utc[h][0])
		}
	}
	// Eastern offset shifts buckets: local hour 19 holds UTC-hour-0 values.
	est := s.GroupByHourOfDay(-5)
	if est[19][0] != 0 {
		t.Errorf("EST hour 19 = %v, want 0 (UTC midnight)", est[19][0])
	}
	total := 0
	for h := range est {
		total += len(est[h])
	}
	if total != 48 {
		t.Errorf("grouping lost samples: %d", total)
	}
}

func TestGroupByMonth(t *testing.T) {
	// 90 days spanning Jan, Feb, Mar 2006.
	s := New(t0, Daily, 90)
	keys, groups := s.GroupByMonth()
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	want := []MonthKey{{2006, time.January}, {2006, time.February}, {2006, time.March}}
	for i, k := range want {
		if keys[i] != k {
			t.Errorf("keys[%d] = %v, want %v", i, keys[i], k)
		}
	}
	if len(groups[want[0]]) != 31 || len(groups[want[1]]) != 28 {
		t.Errorf("group sizes: jan=%d feb=%d", len(groups[want[0]]), len(groups[want[1]]))
	}
	if want[0].String() != "2006-01" {
		t.Errorf("MonthKey.String = %q", want[0].String())
	}
	if !want[0].Before(want[1]) || want[1].Before(want[0]) {
		t.Error("MonthKey.Before wrong")
	}
	if want[0].Before(want[0]) {
		t.Error("MonthKey.Before should be strict")
	}
	// Cross-year ordering.
	if !(MonthKey{2006, time.December}).Before(MonthKey{2007, time.January}) {
		t.Error("cross-year Before wrong")
	}
}

func TestGroupByWeekday(t *testing.T) {
	// 2006-01-01 is a Sunday.
	s := New(t0, Daily, 14)
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	byDay := s.GroupByWeekday()
	if len(byDay[time.Sunday]) != 2 || byDay[time.Sunday][0] != 0 {
		t.Errorf("Sunday bucket = %v", byDay[time.Sunday])
	}
	if len(byDay[time.Monday]) != 2 || byDay[time.Monday][0] != 1 {
		t.Errorf("Monday bucket = %v", byDay[time.Monday])
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(t0, Hourly, 4)
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestStepsFromStart(t *testing.T) {
	s := New(t0, Hourly, 10)
	if s.StepsFromStart(t0.Add(3*time.Hour+30*time.Minute)) != 3 {
		t.Error("StepsFromStart mid-step wrong")
	}
	if s.StepsFromStart(t0.Add(-2*time.Hour)) != -2 {
		t.Error("StepsFromStart negative wrong")
	}
	// Floor semantics: instants inside the step before the start belong to
	// step −1, not step 0 (toward-zero truncation would report 0).
	if got := s.StepsFromStart(t0.Add(-time.Minute)); got != -1 {
		t.Errorf("StepsFromStart just before start = %d, want -1", got)
	}
	if got := s.StepsFromStart(t0.Add(-90 * time.Minute)); got != -2 {
		t.Errorf("StepsFromStart mid-step before start = %d, want -2", got)
	}
	if got := s.StepsFromStart(t0); got != 0 {
		t.Errorf("StepsFromStart at start = %d, want 0", got)
	}
}

func TestRoundTripIndexProperty(t *testing.T) {
	s := New(t0, FiveMinute, 1000)
	f := func(n uint16) bool {
		i := int(n) % s.Len()
		j, err := s.IndexOf(s.TimeAt(i))
		return err == nil && j == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
