// Package timeseries provides the time-indexed sample containers used for
// electricity prices (hourly and 5-minute, §3) and CDN traffic (5-minute,
// §4), plus the grouping operations the paper's figures need: daily
// averages (Fig 3), month buckets (Fig 11), and hour-of-day buckets
// (Fig 12).
//
// A Series is a start instant, a fixed step, and a dense []float64. All
// times are UTC; callers that need local-time grouping pass a geo.TimeZone
// style offset through the grouping helpers.
package timeseries

import (
	"errors"
	"fmt"
	"time"
)

// Common steps.
const (
	Hourly     = time.Hour
	FiveMinute = 5 * time.Minute
	Daily      = 24 * time.Hour
)

// Series is a regularly sampled time series.
type Series struct {
	Start  time.Time // instant of Values[0] (UTC)
	Step   time.Duration
	Values []float64
}

// New creates a Series with the given geometry and all-zero values.
func New(start time.Time, step time.Duration, n int) *Series {
	return &Series{Start: start.UTC(), Step: step, Values: make([]float64, n)}
}

// FromValues wraps an existing slice (not copied).
func FromValues(start time.Time, step time.Duration, values []float64) *Series {
	return &Series{Start: start.UTC(), Step: step, Values: values}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// End returns the instant one step past the final sample.
func (s *Series) End() time.Time {
	return s.Start.Add(time.Duration(len(s.Values)) * s.Step)
}

// TimeAt returns the instant of sample i.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// IndexOf returns the sample index covering instant t, or an error when t
// is outside the series.
func (s *Series) IndexOf(t time.Time) (int, error) {
	d := t.Sub(s.Start)
	if d < 0 {
		return 0, fmt.Errorf("timeseries: %v precedes series start %v", t, s.Start)
	}
	i := int(d / s.Step)
	if i >= len(s.Values) {
		return 0, fmt.Errorf("timeseries: %v past series end %v", t, s.End())
	}
	return i, nil
}

// At returns the value covering instant t.
func (s *Series) At(t time.Time) (float64, error) {
	i, err := s.IndexOf(t)
	if err != nil {
		return 0, err
	}
	return s.Values[i], nil
}

// Slice returns a view of the samples in [from, to). Both instants are
// clamped to the series bounds.
func (s *Series) Slice(from, to time.Time) *Series {
	startIdx := 0
	if d := from.Sub(s.Start); d > 0 {
		startIdx = int(d / s.Step)
		if startIdx > len(s.Values) {
			startIdx = len(s.Values)
		}
	}
	endIdx := len(s.Values)
	if d := to.Sub(s.Start); d >= 0 {
		e := int(d / s.Step)
		if e < endIdx {
			endIdx = e
		}
	} else {
		endIdx = startIdx
	}
	if endIdx < startIdx {
		endIdx = startIdx
	}
	return &Series{
		Start:  s.TimeAt(startIdx),
		Step:   s.Step,
		Values: s.Values[startIdx:endIdx],
	}
}

// Sub returns a new series a-b for two series with identical geometry.
// The paper's price differentials (Fig 9–13) are Sub applied to two hubs'
// hourly prices.
func Sub(a, b *Series) (*Series, error) {
	if a.Step != b.Step || !a.Start.Equal(b.Start) || len(a.Values) != len(b.Values) {
		return nil, errors.New("timeseries: Sub requires identical geometry")
	}
	out := New(a.Start, a.Step, len(a.Values))
	for i := range a.Values {
		out.Values[i] = a.Values[i] - b.Values[i]
	}
	return out, nil
}

// Downsample aggregates consecutive groups of factor samples into one via
// the mean, e.g. 5-minute traffic into hourly load (factor 12). Any
// incomplete trailing group is discarded.
func (s *Series) Downsample(factor int) (*Series, error) {
	if factor <= 0 {
		return nil, errors.New("timeseries: downsample factor must be positive")
	}
	n := len(s.Values) / factor
	out := New(s.Start, s.Step*time.Duration(factor), n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < factor; j++ {
			sum += s.Values[i*factor+j]
		}
		out.Values[i] = sum / float64(factor)
	}
	return out, nil
}

// DailyMeans returns one mean per UTC day (used for Fig 3's daily average
// prices). Incomplete trailing days are discarded.
func (s *Series) DailyMeans() (*Series, error) {
	if s.Step <= 0 || Daily%s.Step != 0 {
		return nil, fmt.Errorf("timeseries: step %v does not divide a day", s.Step)
	}
	return s.Downsample(int(Daily / s.Step))
}

// GroupByHourOfDay buckets every sample by its local hour of day, where
// utcOffsetHours is the local standard-time offset (e.g. -5 for Eastern).
// The result maps hour (0–23) to the samples observed at that local hour,
// the grouping behind Fig 12.
func (s *Series) GroupByHourOfDay(utcOffsetHours int) [24][]float64 {
	var out [24][]float64
	for i, v := range s.Values {
		h := (s.TimeAt(i).Hour() + utcOffsetHours) % 24
		if h < 0 {
			h += 24
		}
		out[h] = append(out[h], v)
	}
	return out
}

// MonthKey identifies a calendar month.
type MonthKey struct {
	Year  int
	Month time.Month
}

// String formats the key as "2006-01".
func (k MonthKey) String() string { return fmt.Sprintf("%04d-%02d", k.Year, k.Month) }

// Before reports whether k precedes other.
func (k MonthKey) Before(other MonthKey) bool {
	if k.Year != other.Year {
		return k.Year < other.Year
	}
	return k.Month < other.Month
}

// GroupByMonth buckets samples by calendar month (UTC), the grouping behind
// Fig 11's month-by-month differential distributions. The keys slice is
// returned in chronological order.
func (s *Series) GroupByMonth() ([]MonthKey, map[MonthKey][]float64) {
	groups := make(map[MonthKey][]float64)
	var keys []MonthKey
	for i, v := range s.Values {
		t := s.TimeAt(i)
		k := MonthKey{t.Year(), t.Month()}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], v)
	}
	return keys, groups
}

// GroupByWeekday buckets samples by UTC weekday.
func (s *Series) GroupByWeekday() [7][]float64 {
	var out [7][]float64
	for i, v := range s.Values {
		d := int(s.TimeAt(i).Weekday())
		out[d] = append(out[d], v)
	}
	return out
}

// Clone returns a deep copy.
func (s *Series) Clone() *Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return &Series{Start: s.Start, Step: s.Step, Values: v}
}

// StepsFromStart returns the index of the step covering instant t: the
// floor of (t − Start)/Step. Instants before the start map to negative
// indices — an instant just before Start is step −1, never 0, which plain
// toward-zero integer division would claim. The result may also lie past
// the series end; callers bound it separately.
func (s *Series) StepsFromStart(t time.Time) int {
	d := t.Sub(s.Start)
	i := int(d / s.Step)
	if d < 0 && time.Duration(i)*s.Step != d {
		i-- // toward-zero truncation rounds negatives up; floor instead
	}
	return i
}
