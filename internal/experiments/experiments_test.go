package experiments

import (
	"strings"
	"testing"
)

func env(t *testing.T) *Env {
	t.Helper()
	e, err := SharedEnv()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRegistry(t *testing.T) {
	defs := All()
	if len(defs) != 32 {
		t.Fatalf("registry has %d entries, want 32 (20 figures + 4 ablations + 8 extensions)", len(defs))
	}
	seen := map[string]bool{}
	for _, d := range defs {
		if d.ID == "" || d.Title == "" || d.Run == nil {
			t.Errorf("incomplete definition %+v", d)
		}
		if seen[d.ID] {
			t.Errorf("duplicate ID %q", d.ID)
		}
		seen[d.ID] = true
	}
	for i := 1; i <= 20; i++ {
		id := "fig" + itoa(i)
		if !seen[id] {
			t.Errorf("missing %s", id)
		}
	}
	if _, ok := Get("fig15"); !ok {
		t.Error("Get(fig15) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) should fail")
	}
	if len(IDs()) != len(defs) {
		t.Error("IDs() length mismatch")
	}
}

func itoa(i int) string {
	if i >= 10 {
		return string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return string(rune('0' + i))
}

// TestMarketFigures runs the light experiments (price analysis, Figs 1-14)
// and checks key claims appear in the rendered output.
func TestMarketFigures(t *testing.T) {
	e := env(t)
	wantPhrases := map[string][]string{
		"fig1":  {"Google", "Akamai", "$"},
		"fig2":  {"ISONE", "ERCOT", "NP15", "MIDC"},
		"fig3":  {"Portland", "Palo Alto", "April"},
		"fig4":  {"RT 5-min", "Day-ahead"},
		"fig5":  {"Real-time σ", "Day-ahead σ"},
		"fig6":  {"Chicago", "New York", "Paper mean"},
		"fig7":  {"±$20", "Palo Alto"},
		"fig8":  {"406 pairs", "LA-Palo Alto"},
		"fig9":  {"NP15 minus DOM", "ERS minus DOM"},
		"fig10": {"PaloAlto - Virginia", "Boston-NYC"},
		"fig11": {"2006-01", "2009-03"},
		"fig12": {"PaloAlto minus Richmond", "Chicago minus Peoria"},
		"fig13": {"36h+", "<3h"},
		"fig14": {"Global traffic", "9-region subset"},
	}
	for id, phrases := range wantPhrases {
		def, ok := Get(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		res, err := def.Run(e)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID != id || res.Text == "" {
			t.Fatalf("%s: empty result", id)
		}
		for _, p := range phrases {
			if !strings.Contains(res.Text, p) {
				t.Errorf("%s output missing %q:\n%s", id, p, res.Text)
			}
		}
	}
}

// TestSimulationFigures runs the heavyweight simulation experiments and
// verifies the paper's qualitative claims hold in the rendered output.
func TestSimulationFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figures are expensive; run without -short")
	}
	e := env(t)

	t.Run("fig15", func(t *testing.T) {
		res, err := Fig15ElasticitySavings(e)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Text, "(0% idle, 1.0 PUE)") || !strings.Contains(res.Text, "(65% idle, 2.0 PUE)") {
			t.Errorf("fig15 missing model rows:\n%s", res.Text)
		}
	})
	t.Run("fig16", func(t *testing.T) {
		res, err := Fig16CostVsDistance(e)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Text, "2500") {
			t.Errorf("fig16 missing sweep end:\n%s", res.Text)
		}
	})
	t.Run("fig17", func(t *testing.T) {
		res, err := Fig17ClientDistance(e)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Text, "99th") {
			t.Errorf("fig17 missing 99th percentile column:\n%s", res.Text)
		}
	})
	t.Run("fig18", func(t *testing.T) {
		res, err := Fig18LongRun(e)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Text, "Dynamic beats static") {
			t.Errorf("fig18: dynamic did not beat static:\n%s", res.Text)
		}
		if !strings.Contains(res.Text, "unconstrained") {
			t.Errorf("fig18 missing unconstrained row:\n%s", res.Text)
		}
	})
	t.Run("fig19", func(t *testing.T) {
		res, err := Fig19PerCluster(e)
		if err != nil {
			t.Fatal(err)
		}
		for _, code := range []string{"CA1", "NY", "TX2"} {
			if !strings.Contains(res.Text, code) {
				t.Errorf("fig19 missing cluster %s:\n%s", code, res.Text)
			}
		}
	})
	t.Run("fig20", func(t *testing.T) {
		res, err := Fig20ReactionDelay(e)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Text, "Local minimum at 24 h") {
			t.Errorf("fig20 missing the 24h local minimum:\n%s", res.Text)
		}
		if !strings.Contains(res.Text, "Initial jump") {
			t.Errorf("fig20 missing the initial jump:\n%s", res.Text)
		}
	})
}

// TestAblations runs the four ablation studies.
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are expensive; run without -short")
	}
	e := env(t)
	for _, id := range []string{"ablation-deadband", "ablation-exponent", "ablation-hardcap", "ablation-uniform"} {
		def, ok := Get(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		res, err := def.Run(e)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Text == "" {
			t.Errorf("%s: empty output", id)
		}
	}
	// The uniform-fleet ablation must preserve the paper's decreasing
	// cost/distance curve.
	res, _ := AblationUniformFleet(e)
	if strings.Contains(res.Text, "NOTE: the curve was not monotone") {
		t.Errorf("uniform fleet lost monotonicity:\n%s", res.Text)
	}
}

// TestExtensions runs the §7/§8 extension experiments and checks their
// qualitative outcomes.
func TestExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extensions are expensive; run without -short")
	}
	e := env(t)
	res, err := ExtCarbonAware(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "cuts emissions below both") {
		t.Errorf("carbon-aware routing did not cut emissions:\n%s", res.Text)
	}
	res, err = ExtDemandResponse(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "Total DR settlement") {
		t.Errorf("demand-response output incomplete:\n%s", res.Text)
	}
}

// TestStorageExtensions runs the energy-storage experiments and checks the
// battery actually pays off: arbitrage must beat both routers, and the
// largest battery in the tariff sweep must shave the demand charge.
func TestStorageExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("storage extensions are expensive; run without -short")
	}
	e := env(t)
	res, err := ExtStorageArbitrage(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "composes with the geographic lever") {
		t.Errorf("battery arbitrage did not save money:\n%s", res.Text)
	}
	res, err = ExtPeakShaving(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "stored energy attacks the component") {
		t.Errorf("battery sweep did not shave the demand charge:\n%s", res.Text)
	}
}

// TestBatchExtensions runs the deferrable-batch experiments and checks
// their qualitative outcomes: deferral must beat serve-on-arrival, and
// loosening deadlines must reduce the bill.
func TestBatchExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("batch extensions are expensive; run without -short")
	}
	e := env(t)
	res, err := ExtDeferrableBatch(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "turns deadline slack directly into money") {
		t.Errorf("deferral did not beat serve-on-arrival:\n%s", res.Text)
	}
	res, err = ExtBatchPareto(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "slack is the currency the scheduler spends") {
		t.Errorf("looser deadlines did not reduce the bill:\n%s", res.Text)
	}
}

// TestOptimalExtension runs the oracle experiment and checks the
// acceptance criteria: the offline bound is reported for all four online
// policies, and the Lyapunov controller strictly beats the greedy
// threshold's captured fraction.
func TestOptimalExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle extension is expensive; run without -short")
	}
	e := env(t)
	res, err := ExtOptimalDispatch(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Greedy threshold", "Per-hub percentile", "Peak shaver",
		"Lyapunov drift-plus-penalty", "Offline oracle",
	} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("missing %q in oracle report:\n%s", want, res.Text)
		}
	}
	if !strings.Contains(res.Text, "fixed thresholds sleep through") {
		t.Errorf("lyapunov did not beat the greedy threshold:\n%s", res.Text)
	}
}
