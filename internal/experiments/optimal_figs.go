package experiments

import (
	"fmt"
	"strings"
	"time"

	"powerroute/internal/energy"
	"powerroute/internal/report"
	"powerroute/internal/routing"
	"powerroute/internal/sim"
	"powerroute/internal/stats"
	"powerroute/internal/storage"
	"powerroute/internal/units"
)

func init() {
	registry = append(registry,
		Definition{"ext-optimal", "Extension: offline dispatch oracle & captured fraction per policy", ExtOptimalDispatch},
	)
}

// traceRecorder is a do-nothing dispatch policy that records the exact
// (billing price, IT draw) pair the engine offers each cluster every
// interval. Installed alongside zero-capacity batteries it leaves the run
// byte-identical to a storage-free simulation (its action is always zero
// and the batteries cannot move energy anyway) while capturing precisely
// the trace the offline oracle prices against — the driver's own lookup
// semantics and billing instants, not a reimplementation of them.
type traceRecorder struct {
	prices [][]float64 // per cluster, per step, $/MWh as billed
	itKW   [][]float64 // per cluster, per step, IT grid draw before storage
}

func newTraceRecorder(clusters, steps int) *traceRecorder {
	r := &traceRecorder{
		prices: make([][]float64, clusters),
		itKW:   make([][]float64, clusters),
	}
	for c := range r.prices {
		r.prices[c] = make([]float64, 0, steps)
		r.itKW[c] = make([]float64, 0, steps)
	}
	return r
}

func (r *traceRecorder) Name() string { return "trace-recorder" }

func (r *traceRecorder) Action(c int, price, itLoadKW float64, _ *storage.State) float64 {
	r.prices[c] = append(r.prices[c], price)
	r.itKW[c] = append(r.itKW[c], itLoadKW)
	return 0
}

// ExtOptimalDispatch scores every online dispatch policy against the
// offline optimum. A first pass runs the Akamai-like baseline with a
// zero-capacity recording installation to (a) reproduce the storage-free
// bill and (b) capture each cluster's billed price and IT-draw trace. The
// DP oracle (storage.OptimalDispatch) then prices the best possible
// dispatch of the real battery over that fixed trace — routing here is
// never storage-aware, so cluster loads are identical across every
// configuration and the per-cluster decomposition is exact. Each online
// policy's report card is its captured fraction: the share of the oracle's
// 39-month bill cut that the policy realizes knowing only the current
// price.
func ExtOptimalDispatch(env *Env) (*Result, error) {
	var b strings.Builder
	sys := env.System
	nc := len(sys.Fleet.Clusters)
	prices, err := clusterPrices(env)
	if err != nil {
		return nil, err
	}
	batteries := fleetBatteries(sys.Fleet, 1.0, 150, 150, 0.85)

	base := sim.Scenario{
		Fleet: sys.Fleet, Energy: energy.OptimisticFuture, Market: sys.Market,
		Demand: sys.LongRun, Start: sys.Market.Start, Steps: sys.Market.Hours,
		Step: time.Hour, ReactionDelay: sim.DefaultReactionDelay,
	}
	stepHours := base.Step.Hours()

	// Pass 1: storage-free reference + trace capture in a single run.
	rec := newTraceRecorder(nc, base.Steps)
	refSc := base
	refSc.Policy = routing.NewBaseline(sys.Fleet)
	refSc.Storage = &storage.Config{Batteries: make([]storage.Battery, nc), Policy: rec}
	ref, err := sim.Run(refSc)
	if err != nil {
		return nil, err
	}
	baseUSD := float64(ref.EnergyCost)

	// Pass 2: the oracle, one DP per cluster. 100 SoC levels keep the
	// grid fine enough to resolve the per-server rates (13/16 grid steps
	// of charge/discharge reach per hour) while bounding the traceback to
	// a few MB per cluster.
	const socLevels = 100
	oracle := make([]storage.OptimalResult, nc)
	if err := forEach(0, nc, func(c int) error {
		var err error
		oracle[c], err = storage.OptimalDispatch(batteries[c], rec.prices[c], rec.itKW[c], stepHours, socLevels)
		return err
	}); err != nil {
		return nil, err
	}
	var oracleUSD float64
	for c := range oracle {
		oracleUSD += oracle[c].CostUSD
	}
	headroomUSD := baseUSD - oracleUSD

	// Pass 3: the four online policies over identical loads.
	var all []float64
	for c := range rec.prices {
		all = append(all, rec.prices[c]...)
	}
	qs, err := stats.Quantiles(all, 0.20, 0.80)
	if err != nil {
		return nil, err
	}
	threshold, err := storage.NewThreshold(qs[0], qs[1])
	if err != nil {
		return nil, err
	}
	percentile, err := storage.NewPercentile(prices, 0.20, 0.80)
	if err != nil {
		return nil, err
	}
	targets := make([]float64, nc)
	floors := make([]float64, nc)
	for c, trace := range rec.itKW {
		var peak float64
		for _, kw := range trace {
			if kw > peak {
				peak = kw
			}
		}
		targets[c] = 0.9 * peak
		floors[c] = 0.7 * peak
	}
	shaver, err := storage.NewPeakShaver(targets, floors)
	if err != nil {
		return nil, err
	}
	lyapunov, err := storage.NewLyapunov(prices, batteries, stepHours, 0)
	if err != nil {
		return nil, err
	}

	type config struct {
		label    string
		dispatch storage.Policy
	}
	configs := []config{
		{"Greedy threshold (fleet p20/p80)", threshold},
		{"Per-hub percentile (p20/p80)", percentile},
		{"Peak shaver (90%/70% of peak draw)", shaver},
		{"Lyapunov drift-plus-penalty (auto V)", lyapunov},
	}
	results := make([]*sim.Result, len(configs))
	tasks := make([]func() error, len(configs))
	for i, cfg := range configs {
		tasks[i] = func() error {
			sc := base
			sc.Policy = routing.NewBaseline(sys.Fleet)
			sc.Storage = &storage.Config{Batteries: batteries, Policy: cfg.dispatch}
			var err error
			results[i], err = sim.Run(sc)
			return err
		}
	}
	if err := runTasks(tasks...); err != nil {
		return nil, err
	}

	captured := func(r *sim.Result) float64 {
		return (baseUSD - float64(r.EnergyCost)) / headroomUSD
	}
	t := report.NewTable("Online dispatch vs the offline oracle (1 kWh/150 W per server, 85% RTE, Akamai-like routing, 39 months)",
		"Dispatch", "Energy bill", "Saved", "Captured")
	t.Add("No battery", ref.EnergyCost.String(), pct(0), "—")
	for i, cfg := range configs {
		r := results[i]
		t.Add(cfg.label, r.EnergyCost.String(),
			pct(1-float64(r.EnergyCost)/baseUSD), fmt.Sprintf("%.4f", captured(r)))
	}
	t.Add("Offline oracle (DP, full price trace)", units.Money(oracleUSD).String(),
		pct(1-oracleUSD/baseUSD), "1.0000")
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}

	fmt.Fprintf(&b, "\nPerfect hindsight cuts the %s bill by %s (%s); no causal policy can beat\nthat bound over these loads.\n",
		ref.EnergyCost, units.Money(headroomUSD).String(), pct(headroomUSD/baseUSD))
	ly, th := captured(results[3]), captured(results[0])
	if ly > th {
		fmt.Fprintf(&b, "The Lyapunov controller captures %s of the offline optimum against the greedy\nthreshold's %s — its SoC-dependent indifference price keeps headroom for price\nspikes that fixed thresholds sleep through.\n",
			pct(ly), pct(th))
	} else {
		fmt.Fprintf(&b, "NOTE: the Lyapunov controller (%s captured) did not beat the greedy\nthreshold (%s) under this seed.\n", pct(ly), pct(th))
	}
	return render("ext-optimal", "Offline oracle & captured fraction", &b), nil
}
