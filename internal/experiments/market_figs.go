package experiments

import (
	"fmt"
	"strings"
	"time"

	"powerroute/internal/energy"
	"powerroute/internal/market"
	"powerroute/internal/report"
	"powerroute/internal/stats"
	"powerroute/internal/timeseries"
)

// Fig01AnnualCosts reproduces Figure 1: back-of-the-envelope annual
// electricity costs for large companies at $60/MWh.
func Fig01AnnualCosts(*Env) (*Result, error) {
	var b strings.Builder
	t := report.NewTable("", "Company", "Servers", "Electricity (MWh/yr)", "Cost @ $60/MWh")
	for _, f := range energy.Fig1Fleets() {
		t.Add(f.Name,
			fmt.Sprintf("%dK", f.Servers/1000),
			fmt.Sprintf("%.2g", f.AnnualEnergy().MegawattHours()),
			f.AnnualCost(60).String())
	}
	// The paper's context rows (2006 US totals) for scale.
	t.Add("USA (2006, EPA report)", "10.9M", "6.1e+07", "$4.50B")
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	b.WriteString("\nAssumptions (§2.1): 250 W peak servers (140 W for Google), ~30% average\n" +
		"utilization, PUE 2.0 (1.3 for Google), idle draw 70% of peak.\n")
	return render("fig1", "Estimated annual electricity costs", &b), nil
}

// Fig02Hubs reproduces Figure 2: the RTOs and their regional hubs.
func Fig02Hubs(*Env) (*Result, error) {
	var b strings.Builder
	t := report.NewTable("", "RTO", "Region", "Hub", "City", "Akamai cluster")
	for _, r := range market.RTOs() {
		for _, h := range market.Hubs() {
			if h.RTO != r {
				continue
			}
			clusterNote := "-"
			if h.Cluster != "" {
				clusterNote = h.Cluster
			}
			t.Add(r.String(), r.Region(), h.ID, h.City, clusterNote)
		}
	}
	nw := market.Northwest()
	t.Add("(none)", "Pacific Northwest", nw.ID, nw.City, "- (daily market only)")
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	return render("fig2", "RTO regions and hubs", &b), nil
}

// Fig03DailyPrices reproduces Figure 3: daily averages of day-ahead peak
// prices at four locations, with the 2008 gas run-up and the Northwest's
// April dips.
func Fig03DailyPrices(env *Env) (*Result, error) {
	var b strings.Builder
	mkt := env.System.Market

	type row struct {
		label string
		hubID string
	}
	rows := []row{
		{"Portland, OR (MID-C)", "MIDC"},
		{"Richmond, VA (Dominion)", "DOM"},
		{"Houston, TX (ERCOT-H)", "ERH"},
		{"Palo Alto, CA (NP15)", "NP15"},
	}
	t := report.NewTable("Yearly mean of daily day-ahead peak prices ($/MWh)",
		"Location", "2006", "2007", "2008", "Q1 2009", "2008/2007")
	sparks := make(map[string]string, len(rows))
	for _, r := range rows {
		var daily *timeseries.Series
		if r.hubID == "MIDC" {
			daily = mkt.NorthwestDaily()
		} else {
			hub, err := market.HubByID(r.hubID)
			if err != nil {
				return nil, err
			}
			da, err := mkt.DA(r.hubID)
			if err != nil {
				return nil, err
			}
			daily, err = market.DailyPeakMeans(da, int(hub.Zone))
			if err != nil {
				return nil, err
			}
		}
		year := func(y int) float64 {
			s := daily.Slice(time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC), time.Date(y+1, 1, 1, 0, 0, 0, 0, time.UTC))
			return stats.Mean(s.Values)
		}
		q109 := stats.Mean(daily.Slice(time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC), time.Date(2009, 4, 1, 0, 0, 0, 0, time.UTC)).Values)
		t.Addf(r.label, year(2006), year(2007), year(2008), q109, year(2008)/year(2007))
		// Monthly sparkline across the 39 months.
		keys, groups := daily.GroupByMonth()
		var monthly []float64
		for _, k := range keys {
			monthly = append(monthly, stats.Mean(groups[k]))
		}
		sparks[r.label] = report.Sparkline(monthly)
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	b.WriteString("\nMonthly-mean price paths (one glyph per month, Jan 2006 - Mar 2009):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %s\n", r.label, sparks[r.label])
	}
	// The Northwest April dip, quantified.
	nw := mkt.NorthwestDaily()
	keys, groups := nw.GroupByMonth()
	var april, all []float64
	for _, k := range keys {
		all = append(all, groups[k]...)
		if k.Month == time.April {
			april = append(april, groups[k]...)
		}
	}
	fmt.Fprintf(&b, "\nNorthwest April mean %.1f vs annual mean %.1f (the paper's seasonal hydro dip).\n",
		stats.Mean(april), stats.Mean(all))
	return render("fig3", "Daily day-ahead peak prices", &b), nil
}

// Fig04MarketComparison reproduces Figure 4: price variation in the three
// NYC markets over two ten-day February/March 2009 windows.
func Fig04MarketComparison(env *Env) (*Result, error) {
	var b strings.Builder
	mkt := env.System.Market
	rt, err := mkt.RT("NYC")
	if err != nil {
		return nil, err
	}
	da, err := mkt.DA("NYC")
	if err != nil {
		return nil, err
	}
	windows := []struct {
		label string
		from  time.Time
		days  int
	}{
		{"2009-02-10 .. 2009-02-19", time.Date(2009, 2, 10, 0, 0, 0, 0, time.UTC), 10},
		{"2009-03-03 .. 2009-03-12", time.Date(2009, 3, 3, 0, 0, 0, 0, time.UTC), 10},
	}
	t := report.NewTable("NYC market comparison (window mean / σ, $/MWh)",
		"Window", "RT 5-min", "RT hourly", "Day-ahead")
	for _, w := range windows {
		to := w.from.AddDate(0, 0, w.days)
		five, err := mkt.FiveMinute("NYC", w.from, w.days*24*12)
		if err != nil {
			return nil, err
		}
		rtw := rt.Slice(w.from, to)
		daw := da.Slice(w.from, to)
		cell := func(vs []float64) string {
			return fmt.Sprintf("%.1f / %.1f", stats.Mean(vs), stats.StdDev(vs))
		}
		t.Add(w.label, cell(five.Values), cell(rtw.Values), cell(daw.Values))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	b.WriteString("\nThe real-time market is more volatile than day-ahead; the underlying\n" +
		"5-minute prices are more volatile still (§3.1).\n")
	return render("fig4", "RT vs DA price variation (NYC)", &b), nil
}

// Fig05VolatilityWindows reproduces Figure 5: standard deviations of NYC
// Q1 2009 prices averaged over windows of 5 minutes to 24 hours.
func Fig05VolatilityWindows(env *Env) (*Result, error) {
	var b strings.Builder
	mkt := env.System.Market
	rt, err := mkt.RT("NYC")
	if err != nil {
		return nil, err
	}
	da, err := mkt.DA("NYC")
	if err != nil {
		return nil, err
	}
	rtQ, err := market.QuarterSlice(rt, 2009, 1)
	if err != nil {
		return nil, err
	}
	daQ, err := market.QuarterSlice(da, 2009, 1)
	if err != nil {
		return nil, err
	}
	five, err := mkt.FiveMinute("NYC", rtQ.Start, rtQ.Len()*12)
	if err != nil {
		return nil, err
	}

	t := report.NewTable("σ of Q1 2009 NYC prices by averaging window ($/MWh)",
		"Window", "5 min", "1 hr", "3 hr", "12 hr", "24 hr")
	rtRow := []string{"Real-time σ", fmt.Sprintf("%.1f", stats.StdDev(five.Values))}
	daRow := []string{"Day-ahead σ", "N/A"}
	for _, w := range []int{1, 3, 12, 24} {
		rtRow = append(rtRow, fmt.Sprintf("%.1f", market.WindowStdDev(rtQ.Values, w)))
		daRow = append(daRow, fmt.Sprintf("%.1f", market.WindowStdDev(daQ.Values, w)))
	}
	t.Add(rtRow...)
	t.Add(daRow...)
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	b.WriteString("\nPaper's Fig 5: RT 28.5/24.8/21.9/18.1/15.6, DA -/20.0/19.4/17.1/16.0.\n")
	return render("fig5", "Volatility by averaging window", &b), nil
}

// Fig06HubStats reproduces Figure 6: 1%-trimmed mean, σ, and kurtosis for
// the six published hubs.
func Fig06HubStats(env *Env) (*Result, error) {
	var b strings.Builder
	mkt := env.System.Market
	rows := []struct {
		location  string
		hubID     string
		paperMean float64
		paperStd  float64
		paperKurt float64
	}{
		{"Chicago, IL", "CHI", 40.6, 26.9, 4.6},
		{"Indianapolis, IN", "CIN", 44.0, 28.3, 5.8},
		{"Palo Alto, CA", "NP15", 54.0, 34.2, 11.9},
		{"Richmond, VA", "DOM", 57.8, 39.2, 6.6},
		{"Boston, MA", "BOS", 66.5, 25.8, 5.7},
		{"New York, NY", "NYC", 77.9, 40.26, 7.9},
	}
	t := report.NewTable("Real-time hourly prices, Jan 2006 - Mar 2009 (1% trimmed)",
		"Location", "RTO", "Mean", "StDev", "Kurt.", "Paper mean", "Paper σ", "Paper κ")
	for _, r := range rows {
		hub, err := market.HubByID(r.hubID)
		if err != nil {
			return nil, err
		}
		rt, err := mkt.RT(r.hubID)
		if err != nil {
			return nil, err
		}
		s := stats.TrimmedSummary(rt.Values, 0.01)
		t.Add(r.location, hub.RTO.String(),
			fmt.Sprintf("%.1f", s.Mean), fmt.Sprintf("%.1f", s.StdDev), fmt.Sprintf("%.1f", s.Kurtosis),
			fmt.Sprintf("%.1f", r.paperMean), fmt.Sprintf("%.1f", r.paperStd), fmt.Sprintf("%.1f", r.paperKurt))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	return render("fig6", "Hub price statistics", &b), nil
}

// Fig07HourlyDeltas reproduces Figure 7: histograms of hour-to-hour price
// changes for Palo Alto and Chicago.
func Fig07HourlyDeltas(env *Env) (*Result, error) {
	var b strings.Builder
	mkt := env.System.Market
	for _, hubID := range []string{"NP15", "CHI"} {
		rt, err := mkt.RT(hubID)
		if err != nil {
			return nil, err
		}
		delta := stats.Diff(rt.Values)
		s := stats.Summarize(delta)
		hub, _ := market.HubByID(hubID)
		fmt.Fprintf(&b, "%s (%s): μ=%.1f σ=%.1f κ=%.1f; %s of samples within ±$20, %s within ±$40\n",
			hub.City, hubID, s.Mean, s.StdDev, s.Kurtosis,
			pct(stats.FractionWithin(delta, 20)), pct(stats.FractionWithin(delta, 40)))
		h, err := stats.NewHistogram(delta, -50, 50, 20)
		if err != nil {
			return nil, err
		}
		labels := make([]string, len(h.Counts))
		for i := range h.Counts {
			labels[i] = fmt.Sprintf("%+.0f", h.BinCenter(i))
		}
		if err := report.Histogram(&b, "  hourly change $/MWh:", labels, h.Fractions()); err != nil {
			return nil, err
		}
		b.WriteString("\n")
	}
	b.WriteString("Paper: ±$20 covered 78% (Palo Alto) and 82% (Chicago); both zero-mean,\nGaussian-like with very long tails.\n")
	return render("fig7", "Hour-to-hour price changes", &b), nil
}

// Fig08Correlation reproduces Figure 8: hub-pair price correlation against
// distance, split by same/different RTO.
func Fig08Correlation(env *Env) (*Result, error) {
	var b strings.Builder
	pairs, err := env.System.Market.AllPairCorrelations()
	if err != nil {
		return nil, err
	}
	buckets := []struct {
		lo, hi float64
	}{
		{0, 100}, {100, 300}, {300, 600}, {600, 1000}, {1000, 2000}, {2000, 3000}, {3000, 5000},
	}
	t := report.NewTable("Pairwise hourly price correlation by distance (29 hubs, 406 pairs)",
		"Distance (km)", "Same-RTO pairs", "mean r", "Diff-RTO pairs", "mean r")
	for _, bk := range buckets {
		var sSum, dSum float64
		var sN, dN int
		for _, p := range pairs {
			if p.DistanceKm < bk.lo || p.DistanceKm >= bk.hi {
				continue
			}
			if p.SameRTO {
				sSum += p.Correlation
				sN++
			} else {
				dSum += p.Correlation
				dN++
			}
		}
		sCell, dCell := "-", "-"
		if sN > 0 {
			sCell = fmt.Sprintf("%.2f", sSum/float64(sN))
		}
		if dN > 0 {
			dCell = fmt.Sprintf("%.2f", dSum/float64(dN))
		}
		t.Add(fmt.Sprintf("%.0f-%.0f", bk.lo, bk.hi),
			fmt.Sprintf("%d", sN), sCell, fmt.Sprintf("%d", dN), dCell)
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	var sameBelow, diffAbove int
	var sameN, diffN int
	for _, p := range pairs {
		if p.SameRTO {
			sameN++
			if p.Correlation < 0.6 {
				sameBelow++
			}
		} else {
			diffN++
			if p.Correlation >= 0.6 {
				diffAbove++
			}
		}
	}
	fmt.Fprintf(&b, "\nSame-RTO pairs below the 0.6 line: %d of %d; different-RTO pairs above it: %d of %d.\n",
		sameBelow, sameN, diffAbove, diffN)
	caiso := 0.0
	for _, p := range pairs {
		if (p.HubA == "NP15" && p.HubB == "SP15") || (p.HubA == "SP15" && p.HubB == "NP15") {
			caiso = p.Correlation
		}
	}
	fmt.Fprintf(&b, "LA-Palo Alto coefficient: %.2f (paper: 0.94). No pairs negatively correlated.\n", caiso)
	return render("fig8", "Correlation vs distance and RTO", &b), nil
}

// Fig09Differentials reproduces Figure 9: hourly differentials for
// PaloAlto−Richmond and Austin−Richmond over the paper's August 2008 week.
func Fig09Differentials(env *Env) (*Result, error) {
	var b strings.Builder
	mkt := env.System.Market
	from := time.Date(2008, 8, 9, 0, 0, 0, 0, time.UTC)
	to := from.AddDate(0, 0, 14)
	for _, pair := range [][2]string{{"NP15", "DOM"}, {"ERS", "DOM"}} {
		diff, err := mkt.Differential(pair[0], pair[1])
		if err != nil {
			return nil, err
		}
		window := diff.Slice(from, to)
		s := stats.Summarize(window.Values)
		full := stats.Summarize(diff.Values)
		fmt.Fprintf(&b, "%s minus %s (2008-08-09 +14d): window μ=%.1f σ=%.1f range [%.0f, %.0f]\n",
			pair[0], pair[1], s.Mean, s.StdDev, s.Min, s.Max)
		daily, err := window.DailyMeans()
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  daily means: %s\n", report.Sparkline(daily.Values))
		fmt.Fprintf(&b, "  full 39-month extremes: [%.0f, %.0f] $/MWh (paper notes spikes to $1900)\n\n",
			full.Min, full.Max)
	}
	b.WriteString("Price spikes and extended periods of asymmetry are visible; sometimes the\nasymmetry favours one location, sometimes the other (§3.3).\n")
	return render("fig9", "Differentials over one week", &b), nil
}

// Fig10DiffHistograms reproduces Figure 10: differential distributions for
// the five published pairs.
func Fig10DiffHistograms(env *Env) (*Result, error) {
	var b strings.Builder
	mkt := env.System.Market
	rows := []struct {
		label      string
		a, b       string
		paperMu    float64
		paperSigma float64
		paperKurt  float64
	}{
		{"(a) PaloAlto - Virginia", "NP15", "DOM", 0.0, 55.7, 10},
		{"(b) Austin - Virginia", "ERS", "DOM", 0.9, 87.7, 466},
		{"(c) Boston - NYC", "BOS", "NYC", -17.2, 31.3, 20},
		{"(d) Chicago - Virginia", "CHI", "DOM", -12.3, 52.5, 146},
		{"(e) Chicago - Peoria", "CHI", "IL", -4.2, 32.0, 32},
	}
	t := report.NewTable("Differential distributions over 39 months of hourly prices ($/MWh)",
		"Pair", "μ", "σ", "κ", "Paper μ", "Paper σ", "Paper κ", "A cheaper")
	for _, r := range rows {
		diff, err := mkt.Differential(r.a, r.b)
		if err != nil {
			return nil, err
		}
		s := stats.Summarize(diff.Values)
		t.Add(r.label,
			fmt.Sprintf("%.1f", s.Mean), fmt.Sprintf("%.1f", s.StdDev), fmt.Sprintf("%.0f", s.Kurtosis),
			fmt.Sprintf("%.1f", r.paperMu), fmt.Sprintf("%.1f", r.paperSigma), fmt.Sprintf("%.0f", r.paperKurt),
			pct(stats.FractionBelow(diff.Values, 0)))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	// The Boston-NYC skew callout (§3.3).
	diff, err := mkt.Differential("BOS", "NYC")
	if err != nil {
		return nil, err
	}
	nycCheaper := 1 - stats.FractionBelow(diff.Values, 0)
	bigSave := 1 - stats.FractionBelow(diff.Values, 10)
	fmt.Fprintf(&b, "\nBoston-NYC: NYC is less expensive %s of the time (paper: 36%%); the savings\nexceed $10/MWh %s of the time (paper: 18%%).\n",
		pct(nycCheaper), pct(bigSave))
	return render("fig10", "Differential distributions", &b), nil
}

// Fig11MonthlyDiff reproduces Figure 11: monthly median and IQR of the
// PaloAlto−Virginia differential.
func Fig11MonthlyDiff(env *Env) (*Result, error) {
	var b strings.Builder
	diff, err := env.System.Market.Differential("NP15", "DOM")
	if err != nil {
		return nil, err
	}
	keys, groups := diff.GroupByMonth()
	t := report.NewTable("PaloAlto - Virginia differential by month ($/MWh)",
		"Month", "Median", "Q25", "Q75", "IQR span")
	var medians []float64
	for _, k := range keys {
		iqr, err := stats.ComputeIQR(groups[k])
		if err != nil {
			return nil, err
		}
		medians = append(medians, iqr.Median)
		t.Add(k.String(),
			fmt.Sprintf("%.1f", iqr.Median), fmt.Sprintf("%.1f", iqr.Q25),
			fmt.Sprintf("%.1f", iqr.Q75), fmt.Sprintf("%.1f", iqr.Q75-iqr.Q25))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "\nMonthly medians: %s\n", report.Sparkline(medians))
	b.WriteString("Sustained asymmetries last months before reversing; spreads double month to\nmonth (§3.3).\n")
	return render("fig11", "Monthly differential evolution", &b), nil
}

// Fig12HourOfDay reproduces Figure 12: hour-of-day differential medians and
// IQRs for the paper's three pairs.
func Fig12HourOfDay(env *Env) (*Result, error) {
	var b strings.Builder
	mkt := env.System.Market
	pairs := []struct {
		label string
		a, b  string
	}{
		{"PaloAlto minus Richmond", "NP15", "DOM"},
		{"Boston minus NYC", "BOS", "NYC"},
		{"Chicago minus Peoria", "CHI", "IL"},
	}
	for _, p := range pairs {
		diff, err := mkt.Differential(p.a, p.b)
		if err != nil {
			return nil, err
		}
		byHour := diff.GroupByHourOfDay(-5) // EST, as in the paper's axis
		var medians []float64
		t := report.NewTable(p.label+" by hour of day (EST)", "Hour", "Median", "Q25", "Q75")
		for h := 0; h < 24; h++ {
			iqr, err := stats.ComputeIQR(byHour[h])
			if err != nil {
				return nil, err
			}
			medians = append(medians, iqr.Median)
			t.Add(fmt.Sprintf("%02d", h),
				fmt.Sprintf("%.1f", iqr.Median), fmt.Sprintf("%.1f", iqr.Q25), fmt.Sprintf("%.1f", iqr.Q75))
		}
		if _, err := t.WriteTo(&b); err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "hourly medians: %s\n\n", report.Sparkline(medians))
	}
	b.WriteString("For PaloAlto-Richmond the sign flips with the hour (non-overlapping coastal\ndemand peaks, §3.3).\n")
	return render("fig12", "Hour-of-day differentials", &b), nil
}

// Fig13Durations reproduces Figure 13: how much time is spent in sustained
// differentials of each duration for PaloAlto−Virginia.
func Fig13Durations(env *Env) (*Result, error) {
	var b strings.Builder
	diff, err := env.System.Market.Differential("NP15", "DOM")
	if err != nil {
		return nil, err
	}
	runs := market.SustainedDifferentials(diff.Values, 5)
	fr := market.DurationFractions(runs, diff.Len(), 36)
	labels := make([]string, 0, 36)
	fracs := make([]float64, 0, 36)
	for h := 1; h <= 36; h++ {
		label := fmt.Sprintf("%2dh", h)
		if h == 36 {
			label = "36h+"
		}
		labels = append(labels, label)
		fracs = append(fracs, fr[h])
	}
	if err := report.Histogram(&b, "Fraction of total time by differential duration (>$5/MWh):", labels, fracs); err != nil {
		return nil, err
	}
	var short, medium, dayPlus float64
	for h := 1; h <= 36; h++ {
		switch {
		case h < 3:
			short += fr[h]
		case h < 9:
			medium += fr[h]
		case h >= 24:
			dayPlus += fr[h]
		}
	}
	fmt.Fprintf(&b, "\nTime in <3h differentials: %s; 3-8h: %s; ≥24h: %s (paper: short differentials\nare most frequent, day-plus rare for this balanced pair).\n",
		pct(short), pct(medium), pct(dayPlus))
	return render("fig13", "Sustained differential durations", &b), nil
}
