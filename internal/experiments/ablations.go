package experiments

import (
	"fmt"
	"strings"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/market"
	"powerroute/internal/report"
	"powerroute/internal/routing"
	"powerroute/internal/sim"
	"powerroute/internal/units"
)

// AblationPriceThreshold sweeps the optimizer's price dead-band (the paper
// fixes it at $5/MWh, §6.1): $0 chases every differential, large values
// approach proximity routing.
func AblationPriceThreshold(env *Env) (*Result, error) {
	var b strings.Builder
	t := report.NewTable("24-day savings by price threshold ((0% idle, 1.1 PUE), 1500 km)",
		"Dead-band ($/MWh)", "Relax 95/5", "Follow 95/5", "Mean distance (km)")
	thresholds := []float64{0, 5, 10, 20, 40}
	cfgs := make([]core.RunConfig, 0, 2*len(thresholds))
	for _, th := range thresholds {
		cfgs = append(cfgs,
			core.RunConfig{
				Horizon: core.Trace24Day, Energy: energy.OptimisticFuture,
				DistanceThresholdKm: 1500, PriceThresholdDollars: th, NoPriceThresholdDefault: true,
			},
			core.RunConfig{
				Horizon: core.Trace24Day, Energy: energy.OptimisticFuture,
				DistanceThresholdKm: 1500, PriceThresholdDollars: th, NoPriceThresholdDefault: true,
				Follow95: true,
			})
	}
	outs, err := runConfigs(env.System, cfgs)
	if err != nil {
		return nil, err
	}
	for i, th := range thresholds {
		relaxed, follow := outs[2*i], outs[2*i+1]
		t.Add(fmt.Sprintf("%.0f", th), pct(relaxed.Savings), pct(follow.Savings),
			fmt.Sprintf("%.0f", relaxed.Optimized.MeanDistanceKm))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	b.WriteString("\nSmall dead-bands barely change savings but a large one forfeits them;\nthe paper's $5 sits on the flat part of the curve.\n")
	return render("ablation-deadband", "Price threshold ablation", &b), nil
}

// AblationExponent compares the §5.1 energy curve exponent r=1.4 against
// the linear model r=1, which the Google study also found reasonably
// accurate.
func AblationExponent(env *Env) (*Result, error) {
	var b strings.Builder
	t := report.NewTable("24-day savings by energy-curve exponent (1500 km, relax 95/5)",
		"Model", "r", "Savings")
	exponents := []float64{1.0, 1.4}
	var models []energy.Model
	for _, r := range exponents {
		em := energy.OptimisticFuture
		em.Exponent = r
		em2 := energy.CuttingEdge
		em2.Exponent = r
		models = append(models, em, em2)
	}
	cfgs := make([]core.RunConfig, len(models))
	for i, em := range models {
		cfgs[i] = core.RunConfig{Horizon: core.Trace24Day, Energy: em, DistanceThresholdKm: 1500}
	}
	outs, err := runConfigs(env.System, cfgs)
	if err != nil {
		return nil, err
	}
	for i, em := range models {
		t.Add(em.String(), fmt.Sprintf("%.1f", em.Exponent), pct(outs[i].Savings))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	b.WriteString("\nThe exponent choice barely moves the result — savings are governed by the\nfixed/variable power split, not the curve's shape (§5.1).\n")
	return render("ablation-exponent", "Energy exponent ablation", &b), nil
}

// AblationHardCap contrasts the burst-budget 95/5 enforcement (any 5% of
// intervals may exceed the cap — what the billing model actually permits)
// with hard caps that never burst.
func AblationHardCap(env *Env) (*Result, error) {
	var b strings.Builder
	sys := env.System
	caps, base, err := sys.Baseline(core.Trace24Day, energy.OptimisticFuture)
	if err != nil {
		return nil, err
	}
	var budget *core.Outcome
	var res *sim.Result
	err = runTasks(
		// Burst-budget mode: the library default.
		func() (err error) {
			budget, err = sys.Run(core.RunConfig{
				Horizon: core.Trace24Day, Energy: energy.OptimisticFuture,
				DistanceThresholdKm: 1500, Follow95: true,
			})
			return err
		},
		// Hard-cap mode: shrink each cluster's physical capacity to its cap
		// so no allocation can ever exceed it, then run relaxed.
		func() error {
			hard := make([]cluster.Cluster, len(sys.Fleet.Clusters))
			copy(hard, sys.Fleet.Clusters)
			for i := range hard {
				if c := units.HitRate(caps[i]); c < hard[i].Capacity {
					hard[i].Capacity = c
				}
			}
			hardFleet, err := cluster.NewFleet(hard)
			if err != nil {
				return err
			}
			demand, err := sim.FromTrace(sys.Trace)
			if err != nil {
				return err
			}
			opt, err := routing.NewPriceOptimizer(hardFleet, 1500, routing.DefaultPriceThreshold)
			if err != nil {
				return err
			}
			res, err = sim.Run(sim.Scenario{
				Fleet: hardFleet, Policy: opt, Energy: energy.OptimisticFuture,
				Market: sys.Market, Demand: demand,
				Start: sys.Trace.Start, Steps: sys.Trace.Samples, Step: 5 * time.Minute,
				ReactionDelay: sim.DefaultReactionDelay,
			})
			return err
		})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("95/5 enforcement modes ((0% idle, 1.1 PUE), 1500 km)",
		"Mode", "Savings", "Overload (hit-hours)", "p95 within caps")
	t.Add("Burst budget (5% of intervals)", pct(budget.Savings),
		"0", "yes")
	hardOK := "yes"
	for c := range res.BillableP95 {
		if res.BillableP95[c] > caps[c]+1e-6 {
			hardOK = "no"
		}
	}
	t.Add("Hard caps (never exceed)", pct(res.SavingsVersus(base)),
		fmt.Sprintf("%.0f", res.OverloadHitSeconds/3600), hardOK)
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	b.WriteString("\nHard caps cannot serve peak demand the baseline itself only covered by\nexceeding its p95 in 5% of intervals — the overload column shows demand\nthat had nowhere to go. The burst budget matches real 95/5 billing.\n")
	return render("ablation-hardcap", "95/5 enforcement ablation", &b), nil
}

// AblationUniformFleet re-runs the long-horizon sweep with servers spread
// uniformly across all 29 hubs instead of the Akamai-like 9-cluster
// deployment ("we simulated other server distributions ... and saw similar
// decreasing cost/distance curves", §6.3).
func AblationUniformFleet(env *Env) (*Result, error) {
	var b strings.Builder
	sys := env.System
	hubs := market.Hubs()
	total := sys.Fleet.TotalServers()
	per := total / len(hubs)
	if per < 1 {
		per = 1
	}
	clusters := make([]cluster.Cluster, len(hubs))
	for i, h := range hubs {
		clusters[i] = cluster.Cluster{
			Code: h.ID, HubID: h.ID, Location: h.Location, Zone: h.Zone,
			Servers:  per,
			Capacity: units.HitRate(float64(per) * cluster.HitsPerServer),
		}
	}
	fleet, err := cluster.NewFleet(clusters)
	if err != nil {
		return nil, err
	}
	base := sim.Scenario{
		Fleet: fleet, Energy: energy.OptimisticFuture, Market: sys.Market,
		Demand: sys.LongRun, Start: sys.Market.Start, Steps: sys.Market.Hours,
		Step: time.Hour, ReactionDelay: sim.DefaultReactionDelay,
	}
	// The baseline and every sweep point are independent simulations; run
	// them all concurrently and normalize afterwards.
	thresholds := []float64{0, 500, 1000, 1500, 2000, 2500}
	var baseRes *sim.Result
	results := make([]*sim.Result, len(thresholds))
	tasks := []func() error{func() (err error) {
		_, baseRes, err = sim.DeriveCaps(base)
		return err
	}}
	for i, km := range thresholds {
		tasks = append(tasks, func() error {
			opt, err := routing.NewPriceOptimizer(fleet, km, routing.DefaultPriceThreshold)
			if err != nil {
				return err
			}
			sc := base
			sc.Policy = opt
			results[i], err = sim.Run(sc)
			return err
		})
	}
	if err := runTasks(tasks...); err != nil {
		return nil, err
	}
	t := report.NewTable("39-month normalized cost, uniform 29-hub fleet ((0% idle, 1.1 PUE), relax 95/5)",
		"Threshold (km)", "Normalized cost", "Mean distance (km)")
	prev := 2.0
	monotone := true
	for i, km := range thresholds {
		res := results[i]
		norm := res.NormalizedCost(baseRes)
		if norm > prev+0.005 {
			monotone = false
		}
		prev = norm
		t.Add(fmt.Sprintf("%.0f", km), fmt.Sprintf("%.3f", norm), fmt.Sprintf("%.0f", res.MeanDistanceKm))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	if monotone {
		b.WriteString("\nThe decreasing cost/distance curve persists under a uniform 29-hub\ndistribution, as the paper reports (§6.3).\n")
	} else {
		b.WriteString("\nNOTE: the curve was not monotone for this seed.\n")
	}
	return render("ablation-uniform", "Uniform fleet ablation", &b), nil
}
