package experiments

import (
	"fmt"
	"strings"
	"time"

	"powerroute/internal/carbon"
	"powerroute/internal/core"
	"powerroute/internal/demand"
	"powerroute/internal/energy"
	"powerroute/internal/report"
	"powerroute/internal/routing"
	"powerroute/internal/sim"
)

func init() {
	registry = append(registry,
		Definition{"ext-carbon", "Extension (§8): carbon-aware vs price-aware routing", ExtCarbonAware},
		Definition{"ext-demand", "Extension (§7): selling flexibility (negawatts, demand response)", ExtDemandResponse},
		Definition{"ext-joint", "Extension (§8): joint price/performance optimization", ExtJointOptimization},
	)
}

// ExtJointOptimization implements §8's "Implementing Joint Optimization":
// replace the hard distance threshold with a weighted objective
// price + w·distance and sweep the exchange rate w, tracing the cost/
// performance frontier a traffic-engineering framework would expose.
func ExtJointOptimization(env *Env) (*Result, error) {
	var b strings.Builder
	sys := env.System
	sc := sim.Scenario{
		Fleet: sys.Fleet, Energy: energy.OptimisticFuture, Market: sys.Market,
		Demand: sys.LongRun, Start: sys.Market.Start, Steps: sys.Market.Hours,
		Step: time.Hour, ReactionDelay: sim.DefaultReactionDelay,
	}
	weights := []float64{0, 0.005, 0.01, 0.02, 0.05, 0.2}
	var base *sim.Result
	var ref *core.Outcome
	results := make([]*sim.Result, len(weights))
	tasks := []func() error{
		func() (err error) {
			_, base, err = sys.Baseline(core.LongRun39Months, energy.OptimisticFuture)
			return err
		},
		// Reference: the paper's threshold scheme at 1500 km.
		func() (err error) {
			ref, err = sys.Run(core.RunConfig{
				Horizon: core.LongRun39Months, Energy: energy.OptimisticFuture, DistanceThresholdKm: 1500,
			})
			return err
		},
	}
	for i, w := range weights {
		tasks = append(tasks, func() error {
			pol, err := routing.NewJointOptimizer(sys.Fleet, w)
			if err != nil {
				return err
			}
			run := sc
			run.Policy = pol
			results[i], err = sim.Run(run)
			return err
		})
	}
	if err := runTasks(tasks...); err != nil {
		return nil, err
	}
	t := report.NewTable("Joint optimization: price + w·distance, 39 months, (0% idle, 1.1 PUE)",
		"w ($/MWh per km)", "Normalized cost", "Mean distance (km)", "p99 distance (km)")
	prevCost := 0.0
	frontier := true
	for i, w := range weights {
		res := results[i]
		cost := res.NormalizedCost(base)
		if cost < prevCost-0.005 {
			frontier = false // cost should rise as distance is penalized more
		}
		prevCost = cost
		t.Add(fmt.Sprintf("%.3g", w), fmt.Sprintf("%.3f", cost),
			fmt.Sprintf("%.0f", res.MeanDistanceKm), fmt.Sprintf("%.0f", res.P99DistanceKm))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "\nThreshold scheme at 1500 km for reference: cost %.3f at mean %.0f km.\n",
		ref.NormalizedCost, ref.Optimized.MeanDistanceKm)
	if frontier {
		b.WriteString("The weighted objective traces a smooth cost/performance frontier — the\nknob a joint traffic-engineering framework would expose (§8).\n")
	} else {
		b.WriteString("NOTE: frontier not monotone for this seed.\n")
	}
	return render("ext-joint", "Joint optimization frontier", &b), nil
}

// ExtCarbonAware implements the §8 "Environmental Cost" sketch: route on a
// time-varying gCO₂/kWh signal instead of dollars and compare both ledgers.
func ExtCarbonAware(env *Env) (*Result, error) {
	var b strings.Builder
	sys := env.System
	intensity, err := carbon.FleetSeries(DefaultSeed, sys.Fleet, sys.Market.Start, sys.Market.Hours)
	if err != nil {
		return nil, err
	}
	base := sim.Scenario{
		Fleet: sys.Fleet, Energy: energy.OptimisticFuture, Market: sys.Market,
		Demand: sys.LongRun, Start: sys.Market.Start, Steps: sys.Market.Hours,
		Step: time.Hour, ReactionDelay: sim.DefaultReactionDelay,
		Carbon: intensity,
	}
	run := func(decision string) (*sim.Result, error) {
		sc := base
		opt, err := routing.NewPriceOptimizer(sys.Fleet, 1500, routing.DefaultPriceThreshold)
		if err != nil {
			return nil, err
		}
		sc.Policy = opt
		switch decision {
		case "baseline":
			sc.Policy = routing.NewBaseline(sys.Fleet)
		case "price":
			// default: optimizer over dollar prices
		case "carbon":
			sc.DecisionSeries = intensity
			// Carbon intensities differ by ~100s of g/kWh; a $5-scale
			// dead-band would be oversized. Use a 10 g/kWh dead-band.
			opt, err := routing.NewPriceOptimizer(sys.Fleet, 1500, 10)
			if err != nil {
				return nil, err
			}
			sc.Policy = opt
		}
		return sim.Run(sc)
	}
	var baseline, price, green *sim.Result
	err = runTasks(
		func() (err error) { baseline, err = run("baseline"); return err },
		func() (err error) { price, err = run("price"); return err },
		func() (err error) { green, err = run("carbon"); return err })
	if err != nil {
		return nil, err
	}
	t := report.NewTable("39-month routing signal comparison ((0% idle, 1.1 PUE), 1500 km, relax 95/5)",
		"Router", "Cost (normalized)", "Emissions (normalized)", "tCO2")
	norm := func(r *sim.Result) (string, string, string) {
		return fmt.Sprintf("%.3f", r.NormalizedCost(baseline)),
			fmt.Sprintf("%.3f", r.TotalCarbonKg/baseline.TotalCarbonKg),
			fmt.Sprintf("%.0f", r.TotalCarbonKg/1000)
	}
	c1, e1, t1 := norm(baseline)
	t.Add("Akamai-like baseline", c1, e1, t1)
	c2, e2, t2 := norm(price)
	t.Add("Price-aware ($/MWh)", c2, e2, t2)
	c3, e3, t3 := norm(green)
	t.Add("Carbon-aware (gCO2/kWh)", c3, e3, t3)
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	if green.TotalCarbonKg < price.TotalCarbonKg && green.TotalCarbonKg < baseline.TotalCarbonKg {
		b.WriteString("\nThe carbon-aware router cuts emissions below both the baseline and the\nprice router — at a higher dollar cost: the §8 trade-off.\n")
	} else {
		b.WriteString("\nNOTE: carbon-aware routing did not reduce emissions for this seed.\n")
	}
	return render("ext-carbon", "Carbon-aware routing", &b), nil
}

// ExtDemandResponse implements §7's participation mechanisms on top of the
// simulated world: negawatt bids into the day-ahead market and a triggered
// demand-response enrollment sized by the fleet's elastic power.
func ExtDemandResponse(env *Env) (*Result, error) {
	var b strings.Builder
	sys := env.System

	// Shed capacity: the variable (routable) power of each cluster at its
	// mean utilization — what suspending servers and routing away frees.
	_, baseRes, err := sys.Baseline(core.LongRun39Months, energy.OptimisticFuture)
	if err != nil {
		return nil, err
	}
	em := energy.OptimisticFuture
	t := report.NewTable("Per-cluster flexibility and program yields (39 months)",
		"Cluster", "Hub", "Shed (MW)", "DR events", "DR revenue", "Negawatt hours", "Negawatt revenue")
	program := demand.Program{
		TriggerPrice:   250,
		MaxEventHours:  4,
		CooldownHours:  12,
		EnergyCredit:   100,
		CapacityCredit: 4000,
	}
	const months = 39
	type clusterYield struct {
		shedMW float64
		settle demand.Settlement
		nega   demand.NegawattResult
	}
	yields := make([]clusterYield, len(sys.Fleet.Clusters))
	err = forEach(0, len(sys.Fleet.Clusters), func(ci int) error {
		cl := sys.Fleet.Clusters[ci]
		u := baseRes.MeanUtilization[ci]
		shedMW := em.VariablePower(u, cl.Servers).Megawatts()
		rt, err := sys.Market.RT(cl.HubID)
		if err != nil {
			return err
		}
		events, err := program.Events(rt)
		if err != nil {
			return err
		}
		settle, err := program.Settle(events, shedMW, months)
		if err != nil {
			return err
		}
		da, err := sys.Market.DA(cl.HubID)
		if err != nil {
			return err
		}
		bid := demand.NegawattBid{OfferPrice: 150, MW: shedMW}
		nega, err := bid.Evaluate(da)
		if err != nil {
			return err
		}
		yields[ci] = clusterYield{shedMW: shedMW, settle: settle, nega: nega}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var totalDR, totalNega float64
	for ci, cl := range sys.Fleet.Clusters {
		y := yields[ci]
		totalDR += y.settle.Total.Dollars()
		totalNega += y.nega.Revenue.Dollars()
		t.Add(cl.Code, cl.HubID, fmt.Sprintf("%.1f", y.shedMW),
			fmt.Sprintf("%d", y.settle.Events), y.settle.Total.String(),
			fmt.Sprintf("%d", y.nega.HoursCleared), y.nega.Revenue.String())
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "\nTotal DR settlement: $%.2fM; total negawatt revenue: $%.2fM; the 39-month\nelectricity bill under the baseline was %v.\n",
		totalDR/1e6, totalNega/1e6, baseRes.TotalCost)
	// Aggregation note (§7: blocs as small as a few racks participate).
	var agg demand.Aggregator
	for _, cl := range sys.Fleet.Clusters {
		agg.Add(demand.Bloc{Name: cl.Code, KW: 50, Availability: 0.95})
	}
	fmt.Fprintf(&b, "An EnerNOC-style pool of one 50 kW rack-row per cluster is %.2f MW firm;\nclears a 0.4 MW bloc minimum: %v.\n",
		agg.FirmMW(), agg.MeetsMinimum(0.4))
	b.WriteString("\nSelling flexibility \"is valued even where wholesale markets do not exist\"\n(§7): revenue accrues even under fixed-price supply contracts.\n")
	return render("ext-demand", "Selling flexibility", &b), nil
}
