package experiments

import (
	"fmt"
	"strings"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/report"
	"powerroute/internal/stats"
)

// Fig14Traffic reproduces Figure 14: the traffic trace's global, US, and
// 9-region hit rates over the 24-day window.
func Fig14Traffic(env *Env) (*Result, error) {
	var b strings.Builder
	tr := env.System.Trace
	global := stats.Summarize(tr.Global().Values)
	us := stats.Summarize(tr.US().Values)
	nine := stats.Summarize(tr.NineRegion().Values)

	t := report.NewTable("Traffic in the synthesized 24-day trace (hits/s)",
		"Series", "Peak", "Mean", "Min")
	add := func(name string, s stats.Summary) {
		t.Add(name, fmt.Sprintf("%.2fM", s.Max/1e6), fmt.Sprintf("%.2fM", s.Mean/1e6), fmt.Sprintf("%.2fM", s.Min/1e6))
	}
	add("Global traffic", global)
	add("USA traffic", us)
	add("9-region subset", nine)
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	daily, err := tr.US().Downsample(288)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "\nUS daily means (2008-12-19 onward): %s\n", report.Sparkline(daily.Values))
	hourly, err := tr.US().Downsample(12)
	if err != nil {
		return nil, err
	}
	first3 := hourly.Values[:72]
	fmt.Fprintf(&b, "US hourly, first 3 days:          %s\n", report.Sparkline(first3))
	b.WriteString("\nPaper: >2M hits/s global peak, ~1.25M from the US; the holiday dip is\nvisible mid-trace (Fig 14).\n")
	return render("fig14", "CDN traffic trace", &b), nil
}

// fig15Thresholds is the distance threshold the paper uses for Fig 15.
const fig15ThresholdKm = 1500

// Fig15ElasticitySavings reproduces Figure 15: maximum 24-day savings for
// seven (idle, PUE) energy models, with and without 95/5 constraints.
func Fig15ElasticitySavings(env *Env) (*Result, error) {
	var b strings.Builder
	t := report.NewTable(
		fmt.Sprintf("24-day savings vs the Akamai-like allocation (%d km threshold)", fig15ThresholdKm),
		"Energy model", "Elasticity", "Relax 95/5", "Follow 95/5")
	models := energy.Fig15Models()
	cfgs := make([]core.RunConfig, 0, 2*len(models))
	for _, em := range models {
		cfgs = append(cfgs,
			core.RunConfig{Horizon: core.Trace24Day, Energy: em, DistanceThresholdKm: fig15ThresholdKm},
			core.RunConfig{Horizon: core.Trace24Day, Energy: em, DistanceThresholdKm: fig15ThresholdKm, Follow95: true})
	}
	outs, err := runConfigs(env.System, cfgs)
	if err != nil {
		return nil, err
	}
	for i, em := range models {
		relaxed, follow := outs[2*i], outs[2*i+1]
		t.Add(em.String(), fmt.Sprintf("%.2f", em.Elasticity()), pct(relaxed.Savings), pct(follow.Savings))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	b.WriteString("\nPaper's shape: ~40% at (0%,1.0) relaxed falling to ~5% at (65%,1.3);\nfollowing 95/5 constraints cuts savings to roughly a third (Fig 15).\n")
	return render("fig15", "Savings by energy elasticity", &b), nil
}

// fig16Thresholds is the Fig 16/17/18 sweep.
var fig16Thresholds = []float64{0, 250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2250, 2500}

// runThresholdPairs sweeps distance thresholds under the (0% idle, 1.1 PUE)
// model concurrently, returning a (follow 95/5, relax 95/5) outcome pair
// per threshold — the shared shape of Figs 16, 17, and 18.
func runThresholdPairs(env *Env, h core.Horizon, thresholds []float64) ([]*core.Outcome, error) {
	cfgs := make([]core.RunConfig, 0, 2*len(thresholds))
	for _, km := range thresholds {
		cfgs = append(cfgs,
			core.RunConfig{Horizon: h, Energy: energy.OptimisticFuture, DistanceThresholdKm: km, Follow95: true},
			core.RunConfig{Horizon: h, Energy: energy.OptimisticFuture, DistanceThresholdKm: km})
	}
	return runConfigs(env.System, cfgs)
}

// Fig16CostVsDistance reproduces Figure 16: normalized 24-day electricity
// cost against the distance threshold under the (0% idle, 1.1 PUE) model.
func Fig16CostVsDistance(env *Env) (*Result, error) {
	var b strings.Builder
	t := report.NewTable("Normalized 24-day cost, (0% idle, 1.1 PUE) model",
		"Threshold (km)", "Akamai allocation", "Follow 95/5", "Relax 95/5")
	outs, err := runThresholdPairs(env, core.Trace24Day, fig16Thresholds)
	if err != nil {
		return nil, err
	}
	for i, km := range fig16Thresholds {
		follow, relaxed := outs[2*i], outs[2*i+1]
		t.Add(fmt.Sprintf("%.0f", km), "1.000",
			fmt.Sprintf("%.3f", follow.NormalizedCost), fmt.Sprintf("%.3f", relaxed.NormalizedCost))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	b.WriteString("\nCosts fall as the threshold rises, with diminishing returns past the\n~1500 km elbow (Boston-Chicago is about 1400 km, §6.2).\n")
	return render("fig16", "Cost vs distance threshold", &b), nil
}

// Fig17ClientDistance reproduces Figure 17: mean and 99th-percentile
// client-server distance against the distance threshold.
func Fig17ClientDistance(env *Env) (*Result, error) {
	var b strings.Builder
	t := report.NewTable("Client-server distance vs threshold (24-day, (0% idle, 1.1 PUE))",
		"Threshold (km)", "Mean (95/5)", "99th (95/5)", "Mean (relax)", "99th (relax)")
	outs, err := runThresholdPairs(env, core.Trace24Day, fig16Thresholds)
	if err != nil {
		return nil, err
	}
	for i, km := range fig16Thresholds {
		follow, relaxed := outs[2*i], outs[2*i+1]
		t.Add(fmt.Sprintf("%.0f", km),
			fmt.Sprintf("%.0f", follow.Optimized.MeanDistanceKm),
			fmt.Sprintf("%.0f", follow.Optimized.P99DistanceKm),
			fmt.Sprintf("%.0f", relaxed.Optimized.MeanDistanceKm),
			fmt.Sprintf("%.0f", relaxed.Optimized.P99DistanceKm))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	_, base, err := env.System.Baseline(core.Trace24Day, energy.OptimisticFuture)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "\nAkamai-like baseline: mean %.0f km, 99th percentile %.0f km.\n",
		base.MeanDistanceKm, base.P99DistanceKm)
	b.WriteString("At an 1100 km threshold the 99th percentile stays near the paper's\n~800 km comfort bound (Boston-Alexandria is ~650 km, RTT ≈ 20 ms, §6.2).\n")
	return render("fig17", "Client-server distance vs threshold", &b), nil
}

// Fig18LongRun reproduces Figure 18: normalized 39-month cost against the
// distance threshold, including the static cheapest-hub comparison.
func Fig18LongRun(env *Env) (*Result, error) {
	var b strings.Builder
	// The paper's sweep plus an unconstrained row ("If we remove the
	// distance constraint", §1): 4500 km exceeds any US client-hub pair.
	sweep := append(append([]float64{}, fig16Thresholds...), 3000, 4500)
	var static *core.StaticChoice
	var outs []*core.Outcome
	err := runTasks(
		func() (err error) {
			static, err = env.System.StaticCheapest(core.LongRun39Months, energy.OptimisticFuture)
			return err
		},
		func() (err error) {
			outs, err = runThresholdPairs(env, core.LongRun39Months, sweep)
			return err
		})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Normalized 39-month cost, (0% idle, 1.1 PUE) model",
		"Threshold (km)", "Akamai-like", "Cheapest hub only", "Follow 95/5", "Relax 95/5")
	var bestRelax float64 = 1
	for i, km := range sweep {
		follow, relaxed := outs[2*i], outs[2*i+1]
		if relaxed.NormalizedCost < bestRelax {
			bestRelax = relaxed.NormalizedCost
		}
		label := fmt.Sprintf("%.0f", km)
		if km >= 4500 {
			label = "unconstrained"
		}
		t.Add(label, "1.000",
			fmt.Sprintf("%.3f", static.NormalizedCost),
			fmt.Sprintf("%.3f", follow.NormalizedCost),
			fmt.Sprintf("%.3f", relaxed.NormalizedCost))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "\nStatic winner: all servers at %s (normalized cost %.3f).\n",
		static.HubID, static.NormalizedCost)
	if bestRelax < static.NormalizedCost {
		fmt.Fprintf(&b, "Dynamic beats static: %.3f < %.3f (paper: ~0.55 vs ~0.65, §6.3).\n",
			bestRelax, static.NormalizedCost)
	} else {
		fmt.Fprintf(&b, "NOTE: dynamic (%.3f) did not beat static (%.3f) in this world.\n",
			bestRelax, static.NormalizedCost)
	}
	return render("fig18", "39-month cost vs distance threshold", &b), nil
}

// fig19Thresholds are the four panels of Figure 19.
var fig19Thresholds = []float64{500, 1000, 1500, 2000}

// Fig19PerCluster reproduces Figure 19: the change in per-cluster cost for
// 39-month simulations at four thresholds, (0% idle, 1.1 PUE), following
// 95/5 constraints. Values are each cluster's cost change as a percentage
// of the total baseline cost.
func Fig19PerCluster(env *Env) (*Result, error) {
	var b strings.Builder
	order := []string{"CA1", "CA2", "MA", "NY", "IL", "VA", "NJ", "TX1", "TX2"}
	headers := append([]string{"Threshold"}, order...)
	t := report.NewTable("Per-cluster cost change (% of total baseline cost)", headers...)
	cfgs := make([]core.RunConfig, len(fig19Thresholds))
	for i, km := range fig19Thresholds {
		cfgs[i] = core.RunConfig{
			Horizon: core.LongRun39Months, Energy: energy.OptimisticFuture,
			DistanceThresholdKm: km, Follow95: true,
		}
	}
	outs, err := runConfigs(env.System, cfgs)
	if err != nil {
		return nil, err
	}
	for i, km := range fig19Thresholds {
		out := outs[i]
		row := []string{fmt.Sprintf("<%.0fkm", km)}
		baseTotal := float64(out.Baseline.TotalCost)
		for _, code := range order {
			ci, err := env.System.Fleet.Index(code)
			if err != nil {
				return nil, err
			}
			delta := float64(out.Optimized.ClusterCost[ci]-out.Baseline.ClusterCost[ci]) / baseTotal
			row = append(row, fmt.Sprintf("%+.1f%%", 100*delta))
		}
		t.Add(row...)
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	b.WriteString("\nThe largest reduction is at NY — NYC has the highest peak prices — but\nrequests are not always routed away from it (time-of-day dependent, §6.3).\n")
	return render("fig19", "Per-cluster cost changes", &b), nil
}

// fig20Delays are the reaction delays swept in Figure 20.
var fig20Delays = []int{0, 1, 2, 3, 6, 9, 12, 15, 18, 21, 24, 27, 30}

// Fig20ReactionDelay reproduces Figure 20: the increase in electricity cost
// as the system's reaction to prices is delayed, for the (65% idle, 1.3
// PUE) model at a 1500 km threshold.
func Fig20ReactionDelay(env *Env) (*Result, error) {
	var b strings.Builder
	t := report.NewTable("Cost increase vs immediate reaction ((65% idle, 1.3 PUE), 1500 km, follow 95/5)",
		"Delay (h)", "Savings", "Cost increase")
	cfgs := make([]core.RunConfig, len(fig20Delays))
	for i, d := range fig20Delays {
		cfgs[i] = core.RunConfig{
			Horizon: core.LongRun39Months, Energy: energy.CuttingEdge,
			DistanceThresholdKm: 1500, Follow95: true,
			ReactionDelay: time.Duration(d) * time.Hour,
		}
		if d == 0 {
			cfgs[i].ReactImmediately = true
		}
	}
	outs, err := runConfigs(env.System, cfgs)
	if err != nil {
		return nil, err
	}
	immediate := float64(outs[0].Optimized.TotalCost)
	var incs []float64
	for i, d := range fig20Delays {
		out := outs[i]
		inc := float64(out.Optimized.TotalCost)/immediate - 1
		incs = append(incs, inc)
		t.Add(fmt.Sprintf("%d", d), pct(out.Savings), fmt.Sprintf("%+.2f%%", 100*inc))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	// Call out the two features the paper highlights.
	oneHourJump := incs[1]
	idx := func(d int) int {
		for i, v := range fig20Delays {
			if v == d {
				return i
			}
		}
		return -1
	}
	at := func(d int) float64 { return incs[idx(d)] }
	fmt.Fprintf(&b, "\nInitial jump (immediate → 1 hour): %+.2f%%. ", 100*oneHourJump)
	if at(24) < at(21) && at(24) < at(27) {
		fmt.Fprintf(&b, "Local minimum at 24 h: %+.2f%% vs %+.2f%% (21 h) and %+.2f%% (27 h)\n— day-over-day price correlation, as in the paper (§6.4).\n",
			100*at(24), 100*at(21), 100*at(27))
	} else {
		fmt.Fprintf(&b, "24 h: %+.2f%%, 21 h: %+.2f%%, 27 h: %+.2f%%.\n", 100*at(24), 100*at(21), 100*at(27))
	}
	return render("fig20", "Reaction delay cost", &b), nil
}
