// Package experiments reproduces every table and figure in the paper's
// evaluation (Figs 1–20) plus the ablations called out in DESIGN.md. Each
// experiment is a named runner over a shared Env (one assembled world);
// runners return rendered text reports whose rows correspond to the paper's
// rows/series.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"powerroute/internal/core"
)

// DefaultSeed assembles the canonical world used by the CLI, benchmarks,
// and EXPERIMENTS.md.
const DefaultSeed = 42

// Env is the shared experimental environment.
type Env struct {
	System *core.System
}

// NewEnv assembles a full-size world (39-month market, 24-day trace).
func NewEnv(seed int64) (*Env, error) {
	return NewEnvWith(core.Options{Seed: seed})
}

// NewEnvWith assembles a world from explicit options. Smoke tests and fast
// iteration shrink the horizons through MarketMonths/TraceDays.
func NewEnvWith(opts core.Options) (*Env, error) {
	sys, err := core.NewSystem(opts)
	if err != nil {
		return nil, err
	}
	return &Env{System: sys}, nil
}

// sharedEnv returns a lazily built package-level environment (used by
// benchmarks so repeated runs amortize world construction).
var sharedEnv = sync.OnceValues(func() (*Env, error) {
	return NewEnv(DefaultSeed)
})

// SharedEnv returns the canonical environment.
func SharedEnv() (*Env, error) { return sharedEnv() }

// Result is a rendered experiment.
type Result struct {
	ID    string
	Title string
	Text  string
}

// Runner executes one experiment.
type Runner func(*Env) (*Result, error)

// Definition registers an experiment.
type Definition struct {
	ID    string
	Title string
	Run   Runner
}

// registry holds every experiment in presentation order.
var registry = []Definition{
	{"fig1", "Estimated annual electricity costs for large companies", Fig01AnnualCosts},
	{"fig2", "RTO regions and hubs", Fig02Hubs},
	{"fig3", "Daily averages of day-ahead peak prices, 2006-2009", Fig03DailyPrices},
	{"fig4", "Real-time vs day-ahead price variation (NYC)", Fig04MarketComparison},
	{"fig5", "Price volatility by averaging window (NYC, Q1 2009)", Fig05VolatilityWindows},
	{"fig6", "Real-time market statistics by hub (1% trimmed)", Fig06HubStats},
	{"fig7", "Hour-to-hour price change distributions", Fig07HourlyDeltas},
	{"fig8", "Price correlation vs distance and RTO boundary", Fig08Correlation},
	{"fig9", "Price differentials over one week", Fig09Differentials},
	{"fig10", "Price differential distributions for five hub pairs", Fig10DiffHistograms},
	{"fig11", "Monthly evolution of the PaloAlto-Virginia differential", Fig11MonthlyDiff},
	{"fig12", "Hour-of-day differential distributions", Fig12HourOfDay},
	{"fig13", "Sustained differential durations (PaloAlto-Virginia)", Fig13Durations},
	{"fig14", "CDN traffic trace: global, US, and 9-region hit rates", Fig14Traffic},
	{"fig15", "Maximum savings by energy model and 95/5 constraints", Fig15ElasticitySavings},
	{"fig16", "24-day cost vs distance threshold", Fig16CostVsDistance},
	{"fig17", "Client-server distance vs distance threshold", Fig17ClientDistance},
	{"fig18", "39-month cost vs distance threshold; dynamic vs static", Fig18LongRun},
	{"fig19", "Per-cluster cost change by distance threshold", Fig19PerCluster},
	{"fig20", "Cost increase vs price reaction delay", Fig20ReactionDelay},
	{"ablation-deadband", "Ablation: price threshold dead-band", AblationPriceThreshold},
	{"ablation-exponent", "Ablation: energy model exponent r=1 vs r=1.4", AblationExponent},
	{"ablation-hardcap", "Ablation: hard 95/5 caps vs burst budget", AblationHardCap},
	{"ablation-uniform", "Ablation: uniform 29-hub server distribution", AblationUniformFleet},
}

// All returns every experiment definition in presentation order.
func All() []Definition {
	out := make([]Definition, len(registry))
	copy(out, registry)
	return out
}

// Get finds an experiment by ID.
func Get(id string) (Definition, bool) {
	for _, d := range registry {
		if d.ID == id {
			return d, true
		}
	}
	return Definition{}, false
}

// IDs lists the registered experiment IDs.
func IDs() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.ID
	}
	return out
}

// render assembles a Result from builder content.
func render(id, title string, b *strings.Builder) *Result {
	return &Result{ID: id, Title: title, Text: strings.TrimRight(b.String(), "\n") + "\n"}
}

// sortedCopy returns a sorted copy of xs (ascending).
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
