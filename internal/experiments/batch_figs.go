package experiments

import (
	"fmt"
	"strings"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/energy"
	"powerroute/internal/report"
	"powerroute/internal/routing"
	"powerroute/internal/sched"
	"powerroute/internal/sim"
	"powerroute/internal/stats"
)

func init() {
	registry = append(registry,
		Definition{"ext-deferrable", "Extension: deferrable batch class — price gates, peak guard, migration", ExtDeferrableBatch},
		Definition{"ext-batchpareto", "Extension: batch SLA vs bill Pareto (deadline slack × execution floor)", ExtBatchPareto},
	)
}

// fleetBatchJobs builds the synthetic deferrable workload the batch
// experiments replay: every `every` steps each cluster receives one job of
// kwhPerServer×servers energy, due `slack` steps later, with the given
// partial-execution floor. Arrivals stop early enough that every deadline
// lands inside the horizon, so nothing is left pending at finalize and
// served+shed accounts for the whole workload.
func fleetBatchJobs(f *cluster.Fleet, every, slack, horizon int, kwhPerServer, floor float64) []sched.Job {
	var jobs []sched.Job
	for arrival := 0; arrival+slack <= horizon; arrival += every {
		for c, cl := range f.Clusters {
			jobs = append(jobs, sched.Job{
				Cluster:     c,
				Arrival:     arrival,
				Deadline:    arrival + slack,
				EnergyKWh:   kwhPerServer * float64(cl.Servers),
				MinFraction: floor,
			})
		}
	}
	return jobs
}

// batchVectors derives the per-cluster scheduler vectors: wattsPerServer
// of batch serving capacity, and a price gate at the pctl-th quantile of
// each cluster's own hub real-time history.
func batchVectors(env *Env, wattsPerServer, pctl float64) (maxKW, thresholds []float64, err error) {
	fleet := env.System.Fleet
	prices, err := clusterPrices(env)
	if err != nil {
		return nil, nil, err
	}
	nc := len(fleet.Clusters)
	maxKW = make([]float64, nc)
	thresholds = make([]float64, nc)
	for c, cl := range fleet.Clusters {
		maxKW[c] = wattsPerServer * float64(cl.Servers) / 1000
		q, err := stats.Quantile(prices[c].Values, pctl)
		if err != nil {
			return nil, nil, err
		}
		thresholds[c] = q
	}
	return maxKW, thresholds, nil
}

// batchWorkloadKWh sums a job list's total energy.
func batchWorkloadKWh(jobs []sched.Job) float64 {
	var sum float64
	for _, j := range jobs {
		sum += j.EnergyKWh
	}
	return sum
}

// openGate is a price threshold no generated price reaches: the
// serve-on-arrival baseline's gate, always open.
const openGate = 1e9

// ExtDeferrableBatch layers a daily deferrable workload (0.6 kWh/server,
// 48 h of slack, 50% execution floor) on the 39-month price-routed world
// under a demand-charge tariff, and switches the scheduler's levers on one
// at a time: serve-on-arrival (gate open, no guard), the p30 price gate,
// the demand-peak guard, and cross-region migration. The bill delta
// against serve-on-arrival is the value of deferral; shed energy and mean
// queue delay are its SLA price.
func ExtDeferrableBatch(env *Env) (*Result, error) {
	var b strings.Builder
	sys := env.System
	const (
		wattsPerServer = 50
		kwhPerServer   = 0.6
		everySteps     = 24
		slackSteps     = 48
		floor          = 0.5
		gatePctl       = 0.30
	)
	maxKW, thresholds, err := batchVectors(env, wattsPerServer, gatePctl)
	if err != nil {
		return nil, err
	}
	jobs := fleetBatchJobs(sys.Fleet, everySteps, slackSteps, sys.Market.Hours, kwhPerServer, floor)
	workload := batchWorkloadKWh(jobs)

	base := sim.Scenario{
		Fleet: sys.Fleet, Energy: energy.OptimisticFuture, Market: sys.Market,
		Demand: sys.LongRun, Start: sys.Market.Start, Steps: sys.Market.Hours,
		Step: time.Hour, ReactionDelay: sim.DefaultReactionDelay,
		DemandChargePerKW: 12.0,
	}

	type config struct {
		label          string
		gate           bool // p30 price gate instead of the open gate
		guard, migrate bool
	}
	configs := []config{
		{"Serve on arrival", false, false, false},
		{"Price gate (p30)", true, false, false},
		{"Gate + peak guard", true, true, false},
		{"Gate + guard + migration", true, true, true},
	}
	results := make([]*sim.Result, len(configs))
	tasks := make([]func() error, len(configs))
	for i, cfg := range configs {
		tasks[i] = func() error {
			opt, err := routing.NewPriceOptimizer(sys.Fleet, 1500, routing.DefaultPriceThreshold)
			if err != nil {
				return err
			}
			sc := base
			sc.Policy = opt
			th := thresholds
			if !cfg.gate {
				th = make([]float64, len(thresholds))
				for c := range th {
					th[c] = openGate
				}
			}
			sc.Batch = &sched.Config{
				MaxBatchKW: maxKW, Thresholds: th,
				PeakGuard: cfg.guard, Migrate: cfg.migrate,
				Jobs: jobs,
			}
			results[i], err = sim.Run(sc)
			return err
		}
	}
	if err := runTasks(tasks...); err != nil {
		return nil, err
	}

	ref := results[0]
	t := report.NewTable(
		fmt.Sprintf("Deferrable batch on the 39-month market ($12/kW-month tariff; %.0f W/server batch, %.1f kWh/server/day, %dh slack, %.0f%% floor)",
			float64(wattsPerServer), kwhPerServer, slackSteps, 100*floor),
		"Scheduler", "Total bill", "Demand charge", "Served", "Shed", "Mean delay (h)", "Normalized")
	for i, cfg := range configs {
		r := results[i]
		delay := 0.0
		if r.BatchServedKWh > 0 {
			delay = r.BatchDeferredKWhSteps / (r.BatchServedKWh + r.BatchShedKWh)
		}
		t.Add(cfg.label, r.TotalCost.String(), r.DemandCharge.String(),
			pct(r.BatchServedKWh/workload), pct(r.BatchShedKWh/workload),
			fmt.Sprintf("%.1f", delay), fmt.Sprintf("%.4f", r.NormalizedCost(ref)))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	full := results[len(results)-1]
	if full.TotalCost < ref.TotalCost {
		fmt.Fprintf(&b, "\nDeferring batch into cheap hours cuts the total bill %s against\nserve-on-arrival while still serving %s of the workload: the batch class\nturns deadline slack directly into money.\n",
			pct(1-full.NormalizedCost(ref)), pct(full.BatchServedKWh/workload))
	} else {
		b.WriteString("\nNOTE: deferral did not beat serve-on-arrival for this seed.\n")
	}
	return render("ext-deferrable", "Deferrable batch class", &b), nil
}

// ExtBatchPareto sweeps the two SLA knobs — deadline slack and the
// partial-execution floor — over the full scheduler (p30 gate, peak
// guard, migration) and maps the SLA-vs-bill Pareto frontier: looser
// deadlines and lower floors buy cheaper bills, paid for in queue delay
// and shed energy.
func ExtBatchPareto(env *Env) (*Result, error) {
	var b strings.Builder
	sys := env.System
	const (
		wattsPerServer = 50
		kwhPerServer   = 0.6
		everySteps     = 24
		gatePctl       = 0.30
	)
	maxKW, thresholds, err := batchVectors(env, wattsPerServer, gatePctl)
	if err != nil {
		return nil, err
	}
	slacks := []int{12, 48, 168}
	floors := []float64{0.0, 0.5, 1.0}

	type point struct {
		slack     int
		floor     float64
		res       *sim.Result
		workload  float64
		reference bool
	}
	var points []point
	// The serve-on-arrival reference uses the tightest slack's workload:
	// what the bill looks like when nothing is deferrable.
	points = append(points, point{slack: slacks[0], floor: 1.0, reference: true})
	for _, slack := range slacks {
		for _, floor := range floors {
			points = append(points, point{slack: slack, floor: floor})
		}
	}

	tasks := make([]func() error, len(points))
	for i := range points {
		p := &points[i]
		tasks[i] = func() error {
			opt, err := routing.NewPriceOptimizer(sys.Fleet, 1500, routing.DefaultPriceThreshold)
			if err != nil {
				return err
			}
			jobs := fleetBatchJobs(sys.Fleet, everySteps, p.slack, sys.Market.Hours, kwhPerServer, p.floor)
			p.workload = batchWorkloadKWh(jobs)
			th := thresholds
			guard, migrate := true, true
			if p.reference {
				th = make([]float64, len(thresholds))
				for c := range th {
					th[c] = openGate
				}
				guard, migrate = false, false
			}
			sc := sim.Scenario{
				Fleet: sys.Fleet, Energy: energy.OptimisticFuture, Market: sys.Market,
				Demand: sys.LongRun, Start: sys.Market.Start, Steps: sys.Market.Hours,
				Step: time.Hour, ReactionDelay: sim.DefaultReactionDelay,
				DemandChargePerKW: 12.0,
				Policy:            opt,
				Batch: &sched.Config{
					MaxBatchKW: maxKW, Thresholds: th,
					PeakGuard: guard, Migrate: migrate,
					Jobs: jobs,
				},
			}
			p.res, err = sim.Run(sc)
			return err
		}
	}
	if err := runTasks(tasks...); err != nil {
		return nil, err
	}

	ref := points[0].res
	t := report.NewTable(
		fmt.Sprintf("Batch SLA vs bill (full scheduler, p%d gate; %.1f kWh/server/day)", int(100*gatePctl), kwhPerServer),
		"Slack (h)", "Floor", "Total bill", "Served", "Shed", "Mean delay (h)", "vs serve-now")
	for _, p := range points {
		r := p.res
		delay := 0.0
		if done := r.BatchServedKWh + r.BatchShedKWh; done > 0 {
			delay = r.BatchDeferredKWhSteps / done
		}
		label := fmt.Sprintf("%d", p.slack)
		if p.reference {
			label = fmt.Sprintf("%d (serve now)", p.slack)
		}
		t.Add(label, fmt.Sprintf("%.1f", p.floor), r.TotalCost.String(),
			pct(r.BatchServedKWh/p.workload), pct(r.BatchShedKWh/p.workload),
			fmt.Sprintf("%.1f", delay), fmt.Sprintf("%.4f", r.NormalizedCost(ref)))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	// Compare like with like: the floor-1.0 column serves the whole
	// workload at every slack, so its bill isolates the deadline knob.
	loosest := points[len(points)-1].res // slack 168h, floor 1.0
	tightest := points[len(floors)].res  // slack 12h, floor 1.0
	if loosest.TotalCost < tightest.TotalCost {
		fmt.Fprintf(&b, "\nLoosening the deadline from %dh to %dh moves the bill from %.4f to %.4f of\nthe serve-now reference: slack is the currency the scheduler spends at the\nprice gate.\n",
			slacks[0], slacks[len(slacks)-1],
			tightest.NormalizedCost(ref), loosest.NormalizedCost(ref))
	} else {
		b.WriteString("\nNOTE: looser deadlines did not reduce the bill for this seed.\n")
	}
	return render("ext-batchpareto", "Batch SLA vs bill Pareto", &b), nil
}
