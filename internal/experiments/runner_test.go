package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/energy"
)

func TestForEach(t *testing.T) {
	// Results land at their own index regardless of worker interleaving.
	out := make([]int, 100)
	if err := forEach(8, len(out), func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// The reported error is the lowest-index failure, independent of
	// scheduling.
	errA, errB := errors.New("a"), errors.New("b")
	err := forEach(4, 50, func(i int) error {
		switch i {
		case 7:
			return errA
		case 31:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want lowest-index error %v", err, errA)
	}
	// Degenerate sizes.
	if err := forEach(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := forEach(1, 3, func(int) error { calls++; return nil }); err != nil || calls != 3 {
		t.Fatalf("serial path: calls=%d err=%v", calls, err)
	}
}

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got != DefaultParallelism() {
		t.Fatalf("Parallelism() = %d, want default %d", got, DefaultParallelism())
	}
}

// fakeDef builds a registry entry that records its run and returns canned
// text.
func fakeDef(id string, delay time.Duration, ran *atomic.Int32, fail error) Definition {
	return Definition{ID: id, Title: "fake " + id, Run: func(*Env) (*Result, error) {
		time.Sleep(delay)
		ran.Add(1)
		if fail != nil {
			return nil, fail
		}
		return &Result{ID: id, Title: "fake " + id, Text: id + "\n"}, nil
	}}
}

// TestRunStreamOrder checks results are emitted in definition order even
// when later entries finish first.
func TestRunStreamOrder(t *testing.T) {
	var ran atomic.Int32
	defs := []Definition{
		fakeDef("slow", 30*time.Millisecond, &ran, nil),
		fakeDef("mid", 10*time.Millisecond, &ran, nil),
		fakeDef("fast", 0, &ran, nil),
	}
	var got []string
	err := RunStream(nil, defs, 3, func(res *Result, _ time.Duration) error {
		got = append(got, res.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := "slow,mid,fast"; strings.Join(got, ",") != want {
		t.Fatalf("emit order %v, want %s", got, want)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran %d experiments, want 3", ran.Load())
	}
}

// TestRunStreamError checks the lowest-index failure is surfaced, wrapped
// with its experiment ID.
func TestRunStreamError(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	defs := []Definition{
		fakeDef("ok", 0, &ran, nil),
		fakeDef("bad", 0, &ran, boom),
		fakeDef("late-bad", 20*time.Millisecond, &ran, errors.New("other")),
	}
	err := RunStream(nil, defs, 3, func(*Result, time.Duration) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error %q missing experiment ID", err)
	}
}

// shortDeterminismIDs are the cheap experiments exercised under -short: the
// market analyses plus the 24-day simulation figures and light ablations.
var shortDeterminismIDs = []string{
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
	"ablation-deadband", "ablation-exponent", "ablation-hardcap",
}

func determinismDefs(t *testing.T) []Definition {
	if !testing.Short() {
		return All()
	}
	defs := make([]Definition, 0, len(shortDeterminismIDs))
	for _, id := range shortDeterminismIDs {
		def, ok := Get(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		defs = append(defs, def)
	}
	return defs
}

// renderAll runs defs at the given parallelism against a fresh world and
// returns the concatenated rendered output. A fresh Env per call means the
// parallel pass exercises concurrent baseline computation (the single-
// flight cache) rather than reading results the serial pass warmed.
func renderAll(t *testing.T, defs []Definition, parallel int) string {
	t.Helper()
	env, err := NewEnv(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(parallel)
	defer SetParallelism(0)
	results, err := RunAll(env, defs, parallel)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, res := range results {
		fmt.Fprintf(&b, "=== %s: %s ===\n%s\n", res.ID, res.Title, res.Text)
	}
	return b.String()
}

// TestParallelDeterminism verifies the headline contract of the concurrent
// engine: the rendered figure output of a parallel run is byte-identical
// to a serial run.
func TestParallelDeterminism(t *testing.T) {
	defs := determinismDefs(t)
	serial := renderAll(t, defs, 1)
	parallel := renderAll(t, defs, 4)
	if serial != parallel {
		t.Fatalf("parallel output differs from serial run:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if len(serial) == 0 || !strings.Contains(serial, "=== fig1:") {
		t.Fatalf("suspiciously empty output:\n%s", serial)
	}
}

// TestParallelSpeedup pins the point of the worker pool: on a multi-core
// machine the parallel registry run must be at least 2.5x faster than the
// serial one. Skipped on small machines and under -short, where the
// comparison is meaningless.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement is expensive; run without -short")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 CPUs to assert a 2.5x speedup, have %d", runtime.GOMAXPROCS(0))
	}
	defs := All()
	measure := func() (serial, parallel time.Duration) {
		start := time.Now()
		renderAll(t, defs, 1)
		serial = time.Since(start)
		start = time.Now()
		renderAll(t, defs, runtime.GOMAXPROCS(0))
		parallel = time.Since(start)
		t.Logf("serial %v, parallel %v (%.2fx)", serial, parallel, float64(serial)/float64(parallel))
		return serial, parallel
	}
	serial, parallel := measure()
	if float64(serial) < 2.5*float64(parallel) {
		// Wall-clock ratios wobble on loaded machines; believe a miss only
		// if a second measurement agrees.
		serial, parallel = measure()
	}
	if float64(serial) < 2.5*float64(parallel) {
		t.Errorf("parallel run not >= 2.5x faster: serial %v vs parallel %v", serial, parallel)
	}
}

// TestRunConfigsSharedBaseline checks concurrent sweep entries sharing a
// (horizon, energy) pair observe one baseline computation (single flight),
// not several.
func TestRunConfigsSharedBaseline(t *testing.T) {
	env, err := SharedEnv()
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]core.RunConfig, 6)
	for i := range cfgs {
		cfgs[i] = core.RunConfig{
			Horizon:             core.Trace24Day,
			Energy:              energy.OptimisticFuture,
			DistanceThresholdKm: float64(250 * (i + 1)),
		}
	}
	outs, err := runConfigs(env.System, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].Baseline != outs[0].Baseline {
			t.Fatalf("entry %d got a different baseline pointer", i)
		}
	}
}
