package experiments

import (
	"fmt"
	"strings"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/energy"
	"powerroute/internal/report"
	"powerroute/internal/routing"
	"powerroute/internal/sim"
	"powerroute/internal/storage"
	"powerroute/internal/timeseries"
)

func init() {
	registry = append(registry,
		Definition{"ext-storage", "Extension: battery arbitrage & storage-aware routing", ExtStorageArbitrage},
		Definition{"ext-peakshave", "Extension: demand-charge tariff & battery peak shaving", ExtPeakShaving},
	)
}

// fleetBatteries sizes one battery per cluster in proportion to its server
// count — the natural deployment unit, since battery containers are
// installed per data center floor. Capacities and rates are per server;
// the paper's servers peak at 250 W, so 150 W of discharge rides through
// most of a cluster's routable draw.
func fleetBatteries(f *cluster.Fleet, kwhPerServer, chargeWPerServer, dischargeWPerServer, rte float64) []storage.Battery {
	out := make([]storage.Battery, len(f.Clusters))
	for i, cl := range f.Clusters {
		n := float64(cl.Servers)
		out[i] = storage.Battery{
			CapacityKWh:         kwhPerServer * n,
			MaxChargeKW:         chargeWPerServer * n / 1000,
			MaxDischargeKW:      dischargeWPerServer * n / 1000,
			RoundTripEfficiency: rte,
		}
	}
	return out
}

// clusterPrices resolves each cluster's hourly real-time series (fleet
// order), the history the percentile dispatch policy derives its
// thresholds from.
func clusterPrices(env *Env) ([]*timeseries.Series, error) {
	sys := env.System
	prices := make([]*timeseries.Series, len(sys.Fleet.Clusters))
	for c, cl := range sys.Fleet.Clusters {
		s, err := sys.Market.RT(cl.HubID)
		if err != nil {
			return nil, err
		}
		prices[c] = s
	}
	return prices, nil
}

// ExtStorageArbitrage compares {no battery, battery} × {Akamai-like
// baseline, price-aware routing} on the 39-month market: the storage lever
// of Urgaonkar et al. composed with the paper's geographic lever. Each
// cluster gets 1 kWh / 150 W / 150 W per server at 85% round-trip
// efficiency, dispatched against its own hub's p20/p80 price quantiles;
// the battery-plus-router run also feeds the charge state back into the
// routing signal (a charged site's decision price is capped at its
// discharge threshold).
func ExtStorageArbitrage(env *Env) (*Result, error) {
	var b strings.Builder
	sys := env.System
	prices, err := clusterPrices(env)
	if err != nil {
		return nil, err
	}
	dispatch, err := storage.NewPercentile(prices, 0.20, 0.80)
	if err != nil {
		return nil, err
	}
	batteries := fleetBatteries(sys.Fleet, 1.0, 150, 150, 0.85)

	base := sim.Scenario{
		Fleet: sys.Fleet, Energy: energy.OptimisticFuture, Market: sys.Market,
		Demand: sys.LongRun, Start: sys.Market.Start, Steps: sys.Market.Hours,
		Step: time.Hour, ReactionDelay: sim.DefaultReactionDelay,
	}
	type config struct {
		label   string
		price   bool // price optimizer instead of the Akamai-like baseline
		battery bool
	}
	configs := []config{
		{"Akamai-like baseline", false, false},
		{"Baseline + battery", false, true},
		{"Price router (1500 km)", true, false},
		{"Price router + battery (storage-aware)", true, true},
	}
	results := make([]*sim.Result, len(configs))
	tasks := make([]func() error, len(configs))
	for i, cfg := range configs {
		tasks[i] = func() error {
			sc := base
			if cfg.price {
				opt, err := routing.NewPriceOptimizer(sys.Fleet, 1500, routing.DefaultPriceThreshold)
				if err != nil {
					return err
				}
				sc.Policy = opt
			} else {
				sc.Policy = routing.NewBaseline(sys.Fleet)
			}
			if cfg.battery {
				sc.Storage = &storage.Config{Batteries: batteries, Policy: dispatch, RoutingAware: cfg.price}
			}
			var err error
			results[i], err = sim.Run(sc)
			return err
		}
	}
	if err := runTasks(tasks...); err != nil {
		return nil, err
	}

	ref := results[0]
	t := report.NewTable("Battery arbitrage on the 39-month market (0% idle, 1.1 PUE; p20/p80 dispatch)",
		"Configuration", "Energy bill", "Normalized", "Bought (GWh)", "Served (GWh)")
	for i, cfg := range configs {
		r := results[i]
		t.Add(cfg.label, r.EnergyCost.String(), fmt.Sprintf("%.4f", r.NormalizedCost(ref)),
			fmt.Sprintf("%.2f", r.StorageBoughtKWh/1e6), fmt.Sprintf("%.2f", r.StorageServedKWh/1e6))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	batterySaves := results[1].TotalCost < results[0].TotalCost && results[3].TotalCost < results[2].TotalCost
	if batterySaves {
		fmt.Fprintf(&b, "\nThe battery cuts the bill under both routers (%.2f%% alone, %.2f%% on top of\nrouting): storage arbitrage composes with the geographic lever.\n",
			100*(1-results[1].NormalizedCost(results[0])),
			100*(1-float64(results[3].TotalCost)/float64(results[2].TotalCost)))
	} else {
		b.WriteString("\nNOTE: the battery did not pay for its round-trip losses under this seed.\n")
	}
	return render("ext-storage", "Battery arbitrage", &b), nil
}

// ExtPeakShaving puts every cluster on a demand-charge tariff
// ($12/kW-month on the monthly peak grid draw, billed alongside energy)
// and contrasts the two dispatch disciplines. Price-threshold arbitrage
// charges flat out in cheap hours, and the demand meter bills exactly that
// draw — the energy bill falls but the demand charge balloons. The
// peak-shaving dispatch instead defends a grid-draw target derived from
// the no-battery run's observed peaks (discharge above 90%, refill only
// below 70%), shaving the component the router cannot touch (Xu & Li).
func ExtPeakShaving(env *Env) (*Result, error) {
	var b strings.Builder
	sys := env.System
	prices, err := clusterPrices(env)
	if err != nil {
		return nil, err
	}
	arbitrage, err := storage.NewPercentile(prices, 0.20, 0.80)
	if err != nil {
		return nil, err
	}
	const ratePerKWMonth = 12.0
	base := sim.Scenario{
		Fleet: sys.Fleet, Energy: energy.OptimisticFuture, Market: sys.Market,
		Demand: sys.LongRun, Start: sys.Market.Start, Steps: sys.Market.Hours,
		Step: time.Hour, ReactionDelay: sim.DefaultReactionDelay,
		DemandChargePerKW: ratePerKWMonth,
	}
	// The no-battery reference first: its observed peaks parameterize the
	// shaver's per-cluster target (90%) and refill floor (70%).
	ref := base
	ref.Policy = routing.NewBaseline(sys.Fleet)
	noBattery, err := sim.Run(ref)
	if err != nil {
		return nil, err
	}
	targets := make([]float64, len(noBattery.PeakGridKW))
	floors := make([]float64, len(noBattery.PeakGridKW))
	for c, kw := range noBattery.PeakGridKW {
		targets[c] = 0.9 * kw
		floors[c] = 0.7 * kw
	}
	shaver, err := storage.NewPeakShaver(targets, floors)
	if err != nil {
		return nil, err
	}

	type config struct {
		label    string
		kwh      float64 // battery size per server
		dispatch storage.Policy
	}
	configs := []config{
		{"Arbitrage p20/p80, 1.0 kWh/server", 1.0, arbitrage},
		{"Peak shaver, 0.5 kWh/server", 0.5, shaver},
		{"Peak shaver, 1.0 kWh/server", 1.0, shaver},
		{"Peak shaver, 2.0 kWh/server", 2.0, shaver},
	}
	results := make([]*sim.Result, len(configs))
	tasks := make([]func() error, len(configs))
	for i, cfg := range configs {
		tasks[i] = func() error {
			sc := base
			sc.Policy = routing.NewBaseline(sys.Fleet)
			sc.Storage = &storage.Config{
				Batteries: fleetBatteries(sys.Fleet, cfg.kwh, 150, 150, 0.85),
				Policy:    cfg.dispatch,
			}
			var err error
			results[i], err = sim.Run(sc)
			return err
		}
	}
	if err := runTasks(tasks...); err != nil {
		return nil, err
	}

	peakMW := func(r *sim.Result) float64 {
		var sum float64
		for _, kw := range r.PeakGridKW {
			sum += kw
		}
		return sum / 1000
	}
	t := report.NewTable(fmt.Sprintf("Demand-charge tariff, $%.0f/kW-month, Akamai-like routing, 39 months", ratePerKWMonth),
		"Dispatch", "Energy bill", "Demand charge", "Total", "Σ peak (MW)", "Normalized")
	t.Add("No battery", noBattery.EnergyCost.String(), noBattery.DemandCharge.String(),
		noBattery.TotalCost.String(), fmt.Sprintf("%.2f", peakMW(noBattery)), "1.0000")
	for i, cfg := range configs {
		r := results[i]
		t.Add(cfg.label, r.EnergyCost.String(), r.DemandCharge.String(),
			r.TotalCost.String(), fmt.Sprintf("%.2f", peakMW(r)), fmt.Sprintf("%.4f", r.NormalizedCost(noBattery)))
	}
	if _, err := t.WriteTo(&b); err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "\nWithout a battery the demand charge is %s — %s of the total bill.\n",
		noBattery.DemandCharge, pct(float64(noBattery.DemandCharge)/float64(noBattery.TotalCost)))
	if arb := results[0]; arb.DemandCharge > noBattery.DemandCharge {
		fmt.Fprintf(&b, "Arbitrage dispatch cuts the energy bill %s but raises the demand charge %s:\nthe meter bills its own charging draw.\n",
			pct(1-float64(arb.EnergyCost)/float64(noBattery.EnergyCost)),
			pct(float64(arb.DemandCharge)/float64(noBattery.DemandCharge)-1))
	}
	largest := results[len(results)-1]
	if largest.DemandCharge < noBattery.DemandCharge && largest.TotalCost < noBattery.TotalCost {
		fmt.Fprintf(&b, "The largest peak-shaver battery cuts the demand charge by %s and the total\nbill by %s: stored energy attacks the component the router cannot.\n",
			pct(1-float64(largest.DemandCharge)/float64(noBattery.DemandCharge)),
			pct(1-float64(largest.TotalCost)/float64(noBattery.TotalCost)))
	} else {
		b.WriteString("NOTE: peak shaving did not reduce the demand charge for this seed.\n")
	}
	return render("ext-peakshave", "Demand-charge peak shaving", &b), nil
}
