package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"powerroute/internal/core"
)

// parallelism is the worker budget each pool reads: experiment dispatch
// (RunStream/RunAll) and every in-figure parameter sweep bound their own
// concurrency by it independently, so nested levels can briefly run up to
// parallel² goroutines. That oversubscription is deliberate — the work is
// CPU-bound and the scheduler time-slices it; per-run buffers are small —
// and keeps the pools deadlock-free (a shared semaphore held across
// nesting levels could starve inner sweeps). Zero means
// DefaultParallelism.
var parallelism atomic.Int32

// DefaultParallelism is the worker count used when none is configured.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// SetParallelism sets the package-wide worker budget (n <= 0 restores the
// default). The CLI's -parallel flag lands here.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the configured worker budget.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return DefaultParallelism()
}

// forEach runs fn(0..n-1) on up to parallel goroutines. All n calls run to
// completion; the returned error is the lowest-index failure, so the error
// a caller observes does not depend on goroutine scheduling.
func forEach(parallel, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallel <= 0 {
		parallel = Parallelism()
	}
	if parallel > n {
		parallel = n
	}
	if parallel == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runTasks executes heterogeneous closures concurrently under the package
// worker budget, failing with the lowest-index error.
func runTasks(tasks ...func() error) error {
	return forEach(0, len(tasks), func(i int) error { return tasks[i]() })
}

// runConfigs executes a sweep of optimizer configurations concurrently and
// returns the outcomes in input order. Concurrent entries that share a
// (horizon, energy) pair dedupe their baseline through the System's
// single-flight cache.
func runConfigs(sys *core.System, cfgs []core.RunConfig) ([]*core.Outcome, error) {
	outs := make([]*core.Outcome, len(cfgs))
	err := forEach(0, len(cfgs), func(i int) error {
		var err error
		outs[i], err = sys.Run(cfgs[i])
		return err
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// RunStream executes defs on a bounded worker pool and delivers each result
// to emit in defs order — as soon as it and every predecessor have
// finished, so output streams while later experiments are still running.
// The rendered results are identical to a serial run; only wall time
// changes. parallel <= 0 uses the package default; 1 degenerates to a
// serial loop. On failure the lowest-index error is returned and workers
// stop picking up new experiments.
func RunStream(env *Env, defs []Definition, parallel int, emit func(res *Result, took time.Duration) error) error {
	type item struct {
		res  *Result
		took time.Duration
		err  error
	}
	n := len(defs)
	if n == 0 {
		return nil
	}
	if parallel <= 0 {
		parallel = Parallelism()
	}
	if parallel > n {
		parallel = n
	}
	slots := make([]chan item, n)
	for i := range slots {
		slots[i] = make(chan item, 1)
	}
	var next atomic.Int64
	var stopped atomic.Bool
	for w := 0; w < parallel; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if stopped.Load() {
					// The consumer already returned; push a placeholder so
					// the slot is filled without doing the work.
					slots[i] <- item{}
					continue
				}
				start := time.Now()
				res, err := defs[i].Run(env)
				if err != nil {
					err = fmt.Errorf("%s: %w", defs[i].ID, err)
				}
				slots[i] <- item{res: res, took: time.Since(start), err: err}
			}
		}()
	}
	for i := 0; i < n; i++ {
		it := <-slots[i]
		if it.err != nil {
			stopped.Store(true)
			return it.err
		}
		if err := emit(it.res, it.took); err != nil {
			stopped.Store(true)
			return err
		}
	}
	return nil
}

// RunAll executes defs concurrently and returns the results in defs order.
func RunAll(env *Env, defs []Definition, parallel int) ([]*Result, error) {
	out := make([]*Result, 0, len(defs))
	err := RunStream(env, defs, parallel, func(res *Result, _ time.Duration) error {
		out = append(out, res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
