// In-process parallel shard execution: run the routing-closed regions of
// one world concurrently inside a single process. Where shard.go splits a
// scenario across *processes* (one powerrouted per region, merged by a
// coordinator), ParallelEngine keeps the split internal: one engine per
// region, each on its own goroutine, stepped in lock-step by a single
// caller. Because the partition is routing-closed, the shards never
// exchange state mid-interval — each Step fans the joint demand and price
// vectors out, runs every region concurrently, and joins — and the merged
// books reproduce the joint single-engine run exactly (see
// MergeCheckpoints for the argument).
package sim

import (
	"errors"
	"fmt"
	"time"

	"powerroute/internal/cluster"
)

// stepCmd carries one interval's shard-local inputs to a shard worker.
type stepCmd struct {
	at     time.Time
	prices StepPrices
	demand []float64
}

// shardWorker owns one shard engine on a dedicated goroutine. The worker
// only ever touches its engine between a cmd receive and the matching res
// send, so whenever the caller is not blocked inside Step the engine is
// quiescent and safe to read from the caller's goroutine (Checkpoint does
// exactly that).
type shardWorker struct {
	eng      *Engine
	clusters []int // parent fleet indices of this shard's clusters
	states   []int // parent fleet indices of this shard's states

	// Per-shard input scratch, refilled from the joint vectors every Step.
	// The engine copies its inputs, so reuse across steps is safe.
	dec, bill, carbon, rates []float64

	cmd chan stepCmd
	res chan error
}

func (w *shardWorker) loop() {
	for c := range w.cmd {
		w.res <- w.eng.Step(c.at, c.prices, c.demand)
	}
}

// ParallelEngine runs one scenario as concurrent routing-closed shard
// engines behind the Engine's incremental API. Step is synchronous: it
// scatters the joint per-cluster prices and per-state demand to the shard
// workers, blocks until every region has advanced, and returns the first
// error. Reads (Snapshot, Assignments, Checkpoint, Finalize) see the
// world at the joint cursor by merging the shard checkpoints and
// restoring them into a joint engine, memoized per cursor — bit for bit
// the state a single engine fed the same vectors would hold.
//
// A soft-capped scenario with a BurstGate runs the burst-token broker
// in-process: Step derives the joint gate bit from the full demand row
// (resolving it through the scenario's own gate) and hands it to every
// shard engine through a shared stepGate, so the regions burst exactly
// when the joint engine would — still bit for bit.
//
// Like Engine, a ParallelEngine is not safe for concurrent use; wrap it
// in a lock to serve concurrent feeds (internal/server does).
type ParallelEngine struct {
	sc      Scenario
	hash    string
	workers []*shardWorker

	// Burst-token broker state, set only when sc.BurstGate is non-nil:
	// gate resolves the joint bit, broker replays it to the shard
	// engines, room caches the fleet's soft-capped total (a run
	// constant, summed in fleet cluster order like the joint engine's).
	gate   BurstGate
	broker *stepGate
	room   float64

	stepsRun int
	lastAt   time.Time

	// joint is the materialized whole-world engine as of jointAt steps —
	// the fresh engine at construction, then each merge's product. It is
	// the read model; the shard engines are the write model.
	joint   *Engine
	jointAt int

	finalized bool
	err       error // poison: set when a step left the shard cursors split
}

// NewParallelEngine builds one engine per shard of the partition and
// starts their workers. The partition must be routing-closed under the
// scenario's policy — PartitionByRouting's output or any coarsening of
// it — which Scenario.Shard verifies.
func NewParallelEngine(sc Scenario, p ShardPartition) (*ParallelEngine, error) {
	subs, err := sc.Shard(p)
	if err != nil {
		return nil, err
	}
	// The joint engine validates the whole scenario and serves reads
	// until the first merge.
	joint, err := NewEngine(sc)
	if err != nil {
		return nil, err
	}
	e := &ParallelEngine{
		sc:      sc,
		hash:    joint.WorldHash(),
		workers: make([]*shardWorker, len(subs)),
		joint:   joint,
	}
	if sc.BurstGate != nil {
		room, err := BurstRoomTotal(sc.Fleet, sc.SoftCaps)
		if err != nil {
			return nil, err
		}
		e.gate = sc.BurstGate
		e.broker = &stepGate{}
		e.room = room
	}
	for i, sub := range subs {
		if e.broker != nil {
			sub.BurstGate = e.broker
		}
		eng, err := NewEngine(sub)
		if err != nil {
			return nil, fmt.Errorf("sim: shard %d: %w", i, err)
		}
		w := &shardWorker{
			eng:      eng,
			clusters: p.Clusters[i],
			states:   p.States[i],
			dec:      make([]float64, len(p.Clusters[i])),
			bill:     make([]float64, len(p.Clusters[i])),
			rates:    make([]float64, len(p.States[i])),
			cmd:      make(chan stepCmd),
			res:      make(chan error),
		}
		if sc.Carbon != nil {
			w.carbon = make([]float64, len(p.Clusters[i]))
		}
		e.workers[i] = w
		go w.loop()
	}
	return e, nil
}

// Shards returns the number of concurrently running regions.
func (e *ParallelEngine) Shards() int { return len(e.workers) }

// Fleet returns the joint fleet the engine serves.
func (e *ParallelEngine) Fleet() *cluster.Fleet { return e.sc.Fleet }

// StepSize returns the scenario's interval length.
func (e *ParallelEngine) StepSize() time.Duration { return e.sc.Step }

// Start returns the scenario's first interval instant.
func (e *ParallelEngine) Start() time.Time { return e.sc.Start }

// ReactionDelay returns the scenario's price-signal staleness.
func (e *ParallelEngine) ReactionDelay() time.Duration { return e.sc.ReactionDelay }

// StepsRun returns how many intervals have been advanced.
func (e *ParallelEngine) StepsRun() int { return e.stepsRun }

// Next returns the instant the next Step should cover.
func (e *ParallelEngine) Next() time.Time {
	return e.sc.Start.Add(time.Duration(e.stepsRun) * e.sc.Step)
}

// WorldHash returns the joint world's identity digest — the hash a
// single-engine run of the same scenario reports, and the parent hash
// every shard checkpoint is stamped with.
func (e *ParallelEngine) WorldHash() string { return e.hash }

// Scenario returns the joint scenario the engine was built from.
func (e *ParallelEngine) Scenario() Scenario { return e.sc }

// Step advances every region through the interval starting at `at`,
// concurrently. The joint vectors are validated before anything is
// dispatched, so a malformed input rejects cleanly; an error *inside* a
// shard's step, however, leaves the regions at split cursors, and the
// engine poisons itself — every later call returns the same error —
// rather than serve books that no longer describe one world.
func (e *ParallelEngine) Step(at time.Time, prices StepPrices, demand []float64) error {
	if e.err != nil {
		return e.err
	}
	if e.finalized {
		return errors.New("sim: engine already finalized")
	}
	nc, ns := len(e.sc.Fleet.Clusters), len(e.sc.Fleet.States)
	if len(demand) != ns {
		return fmt.Errorf("sim: demand source returned %d states, want %d", len(demand), ns)
	}
	if len(prices.Decision) != nc {
		return fmt.Errorf("sim: %d decision prices for %d clusters", len(prices.Decision), nc)
	}
	if len(prices.Bill) != nc {
		return fmt.Errorf("sim: %d billing prices for %d clusters", len(prices.Bill), nc)
	}
	if e.sc.Carbon != nil && len(prices.Carbon) != nc {
		return fmt.Errorf("sim: %d carbon intensities for %d clusters", len(prices.Carbon), nc)
	}
	if e.broker != nil {
		// Resolve the joint gate bit before fan-out; the cmd sends below
		// publish the broker update to every worker goroutine.
		open, err := e.gate.GateOpen(e.stepsRun, SumDemand(demand), e.room)
		if err != nil {
			return fmt.Errorf("sim: burst gate at %v: %w", at, err)
		}
		e.broker.step, e.broker.open = e.stepsRun, open
	}
	for _, w := range e.workers {
		for i, c := range w.clusters {
			w.dec[i] = prices.Decision[c]
			w.bill[i] = prices.Bill[c]
		}
		if w.carbon != nil {
			for i, c := range w.clusters {
				w.carbon[i] = prices.Carbon[c]
			}
		}
		for i, s := range w.states {
			w.rates[i] = demand[s]
		}
		w.cmd <- stepCmd{at: at, prices: StepPrices{Decision: w.dec, Bill: w.bill, Carbon: w.carbon}, demand: w.rates}
	}
	var firstErr error
	for i, w := range e.workers {
		if err := <-w.res; err != nil && firstErr == nil {
			firstErr = fmt.Errorf("sim: shard %d: %w", i, err)
		}
	}
	if firstErr != nil {
		e.err = fmt.Errorf("sim: parallel engine poisoned at step %d: %w", e.stepsRun, firstErr)
		return e.err
	}
	e.stepsRun++
	e.lastAt = at
	return nil
}

// materialize returns a joint engine at the current cursor, merging the
// shard checkpoints when the memoized one is stale. All workers are idle
// here (Step is synchronous), so reading the shard engines is safe.
func (e *ParallelEngine) materialize() (*Engine, error) {
	if e.err != nil {
		return nil, e.err
	}
	if e.jointAt == e.stepsRun {
		return e.joint, nil
	}
	cp, err := e.mergedCheckpoint()
	if err != nil {
		return nil, err
	}
	joint, err := Restore(e.sc, cp)
	if err != nil {
		return nil, fmt.Errorf("sim: restoring merged shard checkpoint: %w", err)
	}
	e.joint, e.jointAt = joint, e.stepsRun
	return joint, nil
}

// mergedCheckpoint checkpoints every shard and merges under the parent
// world hash — the same bytes a single engine at this cursor would write.
func (e *ParallelEngine) mergedCheckpoint() (*Checkpoint, error) {
	parts := make([]*Checkpoint, len(e.workers))
	for i, w := range e.workers {
		cp, err := w.eng.Checkpoint()
		if err != nil {
			return nil, fmt.Errorf("sim: shard %d: %w", i, err)
		}
		parts[i] = cp
	}
	return MergeCheckpoints(parts)
}

// Checkpoint merges the shard checkpoints into the joint world's — a
// checkpoint that restores into a single-engine run of the same scenario
// (the daemon's durable state stays portable across -parallel-shards).
func (e *ParallelEngine) Checkpoint() (*Checkpoint, error) {
	if e.err != nil {
		return nil, e.err
	}
	if e.finalized {
		return nil, errors.New("sim: cannot checkpoint a finalized engine")
	}
	return e.mergedCheckpoint()
}

// Snapshot captures the joint running state into a fresh Snapshot.
func (e *ParallelEngine) Snapshot() *Snapshot { return e.SnapshotInto(nil) }

// SnapshotInto captures the joint running state, reusing dst's slices
// like Engine.SnapshotInto. When the engine is poisoned the merge is
// impossible, so the snapshot is served from the last consistent joint
// cursor instead of failing the caller's status endpoint; the poison
// error itself surfaces on every Step/Checkpoint/Finalize.
func (e *ParallelEngine) SnapshotInto(dst *Snapshot) *Snapshot {
	joint, err := e.materialize()
	if err != nil {
		joint = e.joint
	}
	return joint.SnapshotInto(dst)
}

// Assignments copies the last interval's joint state×cluster assignment
// matrix into dst, falling back like SnapshotInto when poisoned.
func (e *ParallelEngine) Assignments(dst [][]float64) [][]float64 {
	joint, err := e.materialize()
	if err != nil {
		joint = e.joint
	}
	return joint.Assignments(dst)
}

// Finalize merges the shards one last time, closes the joint books, and
// stops the workers. Idempotent like Engine.Finalize: the second call
// returns the same Result.
func (e *ParallelEngine) Finalize() (*Result, error) {
	if e.err != nil {
		return nil, e.err
	}
	if e.finalized {
		return e.joint.Finalize()
	}
	joint, err := e.materialize()
	if err != nil {
		return nil, err
	}
	res, err := joint.Finalize()
	if err != nil {
		return nil, err
	}
	e.finalized = true
	for _, w := range e.workers {
		close(w.cmd)
	}
	return res, nil
}
