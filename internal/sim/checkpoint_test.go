package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"powerroute/internal/energy"
	"powerroute/internal/routing"
	"powerroute/internal/stats"
)

// checkpointAt drives a fresh engine k steps into sc, checkpoints it, and
// pushes the checkpoint through a full encode/decode cycle so every test
// exercises the wire format, not just the in-memory copy.
func checkpointAt(t testing.TB, sc Scenario, k int) (*Engine, *Checkpoint) {
	t.Helper()
	eng, err := NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, eng, sc, k)
	cp, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return eng, decoded
}

// TestRestoreMatchesUninterrupted is the headline durability invariant:
// for every registry scenario (optimizer, soft caps, carbon-aware,
// storage + demand charge), replaying N steps, checkpointing through the
// wire format, restoring into a fresh engine, and replaying the rest must
// reproduce the uninterrupted batch Run's Result bit for bit. The
// interrupted engine itself must also finish identically — Checkpoint is
// a pure read.
func TestRestoreMatchesUninterrupted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, sc := range engineScenarios(t) {
		t.Run(name, func(t *testing.T) {
			batch, err := Run(clonePolicy(t, sc))
			if err != nil {
				t.Fatal(err)
			}
			offsets := []int{1, sc.Steps / 2, sc.Steps - 1}
			for i := 0; i < 2; i++ {
				offsets = append(offsets, 1+rng.Intn(sc.Steps-1))
			}
			for _, k := range offsets {
				interrupted, cp := checkpointAt(t, clonePolicy(t, sc), k)
				snapAtK := interrupted.Snapshot()

				restored, err := Restore(clonePolicy(t, sc), cp)
				if err != nil {
					t.Fatalf("offset %d: %v", k, err)
				}
				if !reflect.DeepEqual(restored.Snapshot(), snapAtK) {
					t.Fatalf("offset %d: restored snapshot diverges:\nwant %+v\ngot  %+v", k, snapAtK, restored.Snapshot())
				}

				driveSteps(t, restored, sc, sc.Steps-k)
				res, err := restored.Finalize()
				if err != nil {
					t.Fatalf("offset %d: %v", k, err)
				}
				if !reflect.DeepEqual(res, batch) {
					t.Fatalf("offset %d: kill-and-restore result diverges from batch Run:\nbatch:    %+v\nrestored: %+v", k, batch, res)
				}

				// The checkpointed engine keeps running unperturbed.
				driveSteps(t, interrupted, sc, sc.Steps-k)
				cont, err := interrupted.Finalize()
				if err != nil {
					t.Fatalf("offset %d: %v", k, err)
				}
				if !reflect.DeepEqual(cont, batch) {
					t.Fatalf("offset %d: Checkpoint mutated the live engine: %+v vs %+v", k, cont, batch)
				}
			}
		})
	}
}

// TestCheckpointRoundTrip is the encode/decode property: for every
// scenario and randomized offsets, Checkpoint → Encode → Decode must be
// DeepEqual to the original — every float bit, every month bucket, every
// histogram bin.
func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, sc := range engineScenarios(t) {
		t.Run(name, func(t *testing.T) {
			for _, k := range []int{0, 1 + rng.Intn(sc.Steps-1), sc.Steps - 1} {
				eng, err := NewEngine(clonePolicy(t, sc))
				if err != nil {
					t.Fatal(err)
				}
				driveSteps(t, eng, sc, k)
				cp, err := eng.Checkpoint()
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := cp.Encode(&buf); err != nil {
					t.Fatal(err)
				}
				decoded, err := DecodeCheckpoint(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("offset %d: %v", k, err)
				}
				if !reflect.DeepEqual(cp, decoded) {
					t.Fatalf("offset %d: decode(encode(cp)) != cp:\nwant %+v\ngot  %+v", k, cp, decoded)
				}
			}
		})
	}
}

// TestCheckpointRejectsCorruption: truncated, bit-flipped, version-bumped,
// and trailing-garbage files must all fail loudly, never restore wrong.
func TestCheckpointRejectsCorruption(t *testing.T) {
	sc := engineScenarios(t)["optimizer"]
	_, cp := checkpointAt(t, clonePolicy(t, sc), 50)
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := DecodeCheckpoint(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}

	headerLen := bytes.IndexByte(good, '\n') + 1
	envLen := bytes.IndexByte(good[headerLen:], '\n') + 1
	payloadStart := headerLen + envLen
	truncations := map[string]int{
		"empty":        0,
		"mid-magic":    headerLen / 2,
		"mid-envelope": headerLen + envLen/2,
		"no-payload":   payloadStart,
		"mid-payload":  payloadStart + (len(good)-payloadStart)/2,
		"last-byte":    len(good) - 1,
	}
	for name, cut := range truncations {
		if _, err := DecodeCheckpoint(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation %q (%d of %d bytes) accepted", name, cut, len(good))
		}
	}

	flipped := append([]byte(nil), good...)
	flipped[payloadStart+(len(good)-payloadStart)/3] ^= 0x40
	if _, err := DecodeCheckpoint(bytes.NewReader(flipped)); err == nil {
		t.Error("bit-flipped payload accepted")
	} else if !strings.Contains(err.Error(), "digest") {
		t.Errorf("bit flip rejected for the wrong reason: %v", err)
	}

	future := append([]byte(nil), good...)
	future = bytes.Replace(future, []byte(checkpointMagic), []byte("powerroute-checkpoint v9"), 1)
	if _, err := DecodeCheckpoint(bytes.NewReader(future)); err == nil {
		t.Error("future-version checkpoint accepted")
	} else if !strings.Contains(err.Error(), "unsupported") {
		t.Errorf("future version rejected for the wrong reason: %v", err)
	}

	if _, err := DecodeCheckpoint(bytes.NewReader(append(append([]byte(nil), good...), 0x00))); err == nil {
		t.Error("trailing garbage accepted")
	}

	if _, err := DecodeCheckpoint(strings.NewReader("not a checkpoint at all\n")); err == nil {
		t.Error("foreign file accepted")
	}
}

// TestDecodeRejectsOverflowingSampleCounts: a crafted envelope whose
// per-cluster meter-sample counts overflow their int64 sum must be
// rejected with an error, not drive the section parser into an absurd
// allocation. The payload here is sized to match exactly what the
// *wrapped* sum would predict (hist blob + 32 bytes), which is the shape
// that defeated a sum-only check.
func TestDecodeRejectsOverflowingSampleCounts(t *testing.T) {
	hist := stats.NewWeightedHistogram(0, 5500, 1100)
	blob, err := hist.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	payload := append(append([]byte(nil), blob...), make([]byte, 32)...)
	digest := sha256.Sum256(payload)
	env := checkpointEnvelope{
		Version:       CheckpointVersion,
		Clusters:      2,
		States:        1,
		ClusterCodes:  []string{"A", "B"},
		StateCodes:    []string{"XX"},
		StepsRun:      1,
		MeterSamples:  []int{1 << 62, 1 << 62},
		HistBytes:     []int{len(blob), 0},
		PayloadBytes:  int64(len(payload)),
		PayloadSHA256: hex.EncodeToString(digest[:]),
	}
	envJSON, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	fmt.Fprintf(&file, "%s\n%s\n", checkpointMagic, envJSON)
	file.Write(payload)
	if _, err := DecodeCheckpoint(bytes.NewReader(file.Bytes())); err == nil {
		t.Fatal("overflowing sample counts accepted")
	} else if !strings.Contains(err.Error(), "meter samples") {
		t.Fatalf("rejected for the wrong reason: %v", err)
	}
}

// TestRestoreRefusesForeignWorlds: a checkpoint must only load into the
// exact world that produced it — different reaction delay (world hash),
// different policy, or a tampered step cursor are all refused.
func TestRestoreRefusesForeignWorlds(t *testing.T) {
	fx := fixtures()
	sc := engineScenarios(t)["optimizer"]
	_, cp := checkpointAt(t, clonePolicy(t, sc), 40)

	// Same geometry, different world: reaction delay participates in the
	// world hash but not in the envelope's structural echoes.
	delayed := clonePolicy(t, sc)
	delayed.ReactionDelay = 0
	if _, err := Restore(delayed, cp); err == nil {
		t.Error("restore accepted a checkpoint from a different reaction delay")
	} else if !strings.Contains(err.Error(), "world hash mismatch") {
		t.Errorf("wrong error for world mismatch: %v", err)
	}

	// Different policy name fails on the configuration echo.
	other := clonePolicy(t, sc)
	other.Policy = routing.NewBaseline(fx.Fleet)
	if _, err := Restore(other, cp); err == nil {
		t.Error("restore accepted a checkpoint from a different policy")
	}

	// Tampered cursor: meters no longer line up with the claimed step.
	tampered := *cp
	tampered.StepsRun++
	if _, err := Restore(clonePolicy(t, sc), &tampered); err == nil {
		t.Error("restore accepted a cursor that disagrees with the meter record")
	}

	// A finalized engine has closed books; checkpointing it must fail.
	eng, err := NewEngine(clonePolicy(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, eng, sc, 3)
	if _, err := eng.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(); err == nil {
		t.Error("checkpoint of a finalized engine accepted")
	}
}

// TestWriteCheckpointFileAtomic: the published file decodes, and the
// directory never holds a partial file under the real name (temp files
// are cleaned up on success).
func TestWriteCheckpointFileAtomic(t *testing.T) {
	sc := engineScenarios(t)["storage"]
	_, cp := checkpointAt(t, clonePolicy(t, sc), 25)
	dir := t.TempDir()
	path := dir + "/checkpoint.ckpt"
	if err := WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place — the rename replaces the old file atomically.
	if err := WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatal("file round-trip changed the checkpoint")
	}
	if _, err := Restore(clonePolicy(t, sc), got); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkCheckpoint39Month measures the encode+decode cycle of a
// full-horizon engine state (the acceptance budget is < 100 ms for the
// 39-month world).
func BenchmarkCheckpoint39Month(b *testing.B) {
	fx := fixtures()
	opt, err := routing.NewPriceOptimizer(fx.Fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		b.Fatal(err)
	}
	sc := Scenario{
		Fleet:         fx.Fleet,
		Policy:        opt,
		Energy:        energy.OptimisticFuture,
		Market:        fx.Market,
		Demand:        fx.LR,
		Start:         fx.Market.Start,
		Steps:         fx.Market.Hours,
		Step:          time.Hour,
		ReactionDelay: DefaultReactionDelay,
	}
	eng, err := NewEngine(sc)
	if err != nil {
		b.Fatal(err)
	}
	driveSteps(b, eng, sc, sc.Steps)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp, err := eng.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		buf.Reset()
		if err := cp.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "checkpoint-bytes")
}
