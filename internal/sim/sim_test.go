package sim

import (
	"math"
	"sync"
	"testing"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/energy"
	"powerroute/internal/market"
	"powerroute/internal/routing"
	"powerroute/internal/traffic"
	"powerroute/internal/units"
)

// Shared fixtures: one market, one trace, one fleet for the whole package.
var fixtures = sync.OnceValue(func() (fx struct {
	Market *market.Dataset
	Trace  *traffic.Trace
	Fleet  *cluster.Fleet
	Demand *TraceDemand
	LR     *traffic.LongRun
}) {
	fx.Market = market.MustGenerate(market.Config{Seed: 42})
	fx.Trace = traffic.MustGenerate(traffic.Config{Seed: 11})
	peaks := make([]float64, len(fx.Trace.States))
	for i, sd := range fx.Trace.States {
		for _, v := range sd.Rate {
			if v > peaks[i] {
				peaks[i] = v
			}
		}
	}
	fleet, err := cluster.DeriveFleet(peaks, 0.7)
	if err != nil {
		panic(err)
	}
	fx.Fleet = fleet
	demand, err := FromTrace(fx.Trace)
	if err != nil {
		panic(err)
	}
	fx.Demand = demand
	fx.LR = fx.Trace.LongRun()
	return fx
})

// shortScenario is a 4-day, 5-minute-step scenario for fast unit tests.
func shortScenario() Scenario {
	fx := fixtures()
	return Scenario{
		Fleet:         fx.Fleet,
		Energy:        energy.OptimisticFuture,
		Market:        fx.Market,
		Demand:        fx.Demand,
		Start:         fx.Trace.Start,
		Steps:         4 * traffic.SamplesPerDay,
		Step:          5 * time.Minute,
		ReactionDelay: DefaultReactionDelay,
	}
}

func TestValidateScenario(t *testing.T) {
	good := shortScenario()
	good.Policy = routing.NewBaseline(good.Fleet)
	cases := []func(*Scenario){
		func(s *Scenario) { s.Fleet = nil },
		func(s *Scenario) { s.Policy = nil },
		func(s *Scenario) { s.Market = nil },
		func(s *Scenario) { s.Demand = nil },
		func(s *Scenario) { s.Steps = 0 },
		func(s *Scenario) { s.Step = 0 },
		func(s *Scenario) { s.ReactionDelay = -time.Hour },
		func(s *Scenario) { s.Energy = energy.Model{} },
		func(s *Scenario) { s.SoftCaps = []float64{1, 2} },
	}
	for i, mutate := range cases {
		sc := good
		mutate(&sc)
		if _, err := Run(sc); err == nil {
			t.Errorf("case %d: invalid scenario accepted", i)
		}
	}
	if _, err := Run(good); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

func TestBaselineRunAccounting(t *testing.T) {
	sc := shortScenario()
	caps, res, err := DeriveCaps(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCost <= 0 || res.TotalEnergy <= 0 {
		t.Fatalf("degenerate result: cost=%v energy=%v", res.TotalCost, res.TotalEnergy)
	}
	// Cluster sums equal totals.
	var cSum units.Money
	var eSum units.Energy
	for c := range res.ClusterCost {
		cSum += res.ClusterCost[c]
		eSum += res.ClusterEnergy[c]
	}
	if math.Abs(float64(cSum-res.TotalCost)) > 1e-6*math.Abs(float64(res.TotalCost)) {
		t.Errorf("cluster costs sum %v != total %v", cSum, res.TotalCost)
	}
	if math.Abs(float64(eSum-res.TotalEnergy)) > 1e-6*float64(res.TotalEnergy) {
		t.Errorf("cluster energies sum %v != total %v", eSum, res.TotalEnergy)
	}
	// Caps are positive and at or below peaks.
	for c := range caps {
		if caps[c] <= 0 {
			t.Errorf("cap[%d] = %v", c, caps[c])
		}
		if caps[c] > res.PeakRate[c]+1e-9 {
			t.Errorf("cap[%d] = %v above peak %v", c, caps[c], res.PeakRate[c])
		}
	}
	// Utilizations in range; no overload for the baseline.
	for c, u := range res.MeanUtilization {
		if u < 0 || u > 1 {
			t.Errorf("cluster %d: mean utilization %v", c, u)
		}
	}
	if res.OverloadHitSeconds != 0 {
		t.Errorf("baseline overload = %v", res.OverloadHitSeconds)
	}
	if res.MeanDistanceKm <= 0 || res.P99DistanceKm < res.MeanDistanceKm {
		t.Errorf("distance stats: mean=%v p99=%v", res.MeanDistanceKm, res.P99DistanceKm)
	}
}

func TestRunDeterminism(t *testing.T) {
	sc := shortScenario()
	sc.Policy = routing.NewBaseline(sc.Fleet)
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc2 := shortScenario()
	sc2.Policy = routing.NewBaseline(sc2.Fleet)
	r2, err := Run(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalCost != r2.TotalCost || r1.MeanDistanceKm != r2.MeanDistanceKm {
		t.Error("identical scenarios produced different results")
	}
}

// TestOptimizerSavesMoney is the paper's core claim in miniature: with
// elastic clusters the price optimizer beats the proximity baseline.
func TestOptimizerSavesMoney(t *testing.T) {
	sc := shortScenario()
	_, base, err := DeriveCaps(sc)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := routing.NewPriceOptimizer(sc.Fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sc.Policy = opt
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	savings := res.SavingsVersus(base)
	if savings < 0.05 {
		t.Errorf("savings = %.1f%%, want ≥ 5%% for (0%% idle, 1.1 PUE) at 1500 km", 100*savings)
	}
	if res.OverloadHitSeconds != 0 {
		t.Errorf("optimizer overloaded clusters: %v hit-seconds", res.OverloadHitSeconds)
	}
	// Energy may rise slightly (longer paths are not modeled; identical
	// fleet) but cannot explode.
	if float64(res.TotalEnergy) > 1.05*float64(base.TotalEnergy) {
		t.Errorf("energy rose from %v to %v", base.TotalEnergy, res.TotalEnergy)
	}
}

// TestElasticityGatesSavings: inelastic clusters cannot route power demand
// away (§1 "Energy Elasticity", Fig 15).
func TestElasticityGatesSavings(t *testing.T) {
	models := []energy.Model{
		energy.FullyProportional,
		energy.CuttingEdge,
		energy.NoPowerManagement,
	}
	var prev float64 = math.Inf(1)
	for _, em := range models {
		sc := shortScenario()
		sc.Energy = em
		_, base, err := DeriveCaps(sc)
		if err != nil {
			t.Fatal(err)
		}
		opt, _ := routing.NewPriceOptimizer(sc.Fleet, 1500, 5)
		sc.Policy = opt
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		s := res.SavingsVersus(base)
		if s > prev+0.005 {
			t.Errorf("%v: savings %.1f%% above more-elastic model's %.1f%%", em, 100*s, 100*prev)
		}
		prev = s
	}
	if prev > 0.02 {
		t.Errorf("no-power-management savings = %.1f%%, want ≈ 0 (inelastic)", 100*prev)
	}
}

// Test95ConstraintReducesButKeepsSavings (Fig 15: "obeying existing 95/5
// bandwidth constraints reduces, but does not eliminate savings").
func Test95ConstraintReducesButKeepsSavings(t *testing.T) {
	sc := shortScenario()
	caps, base, err := DeriveCaps(sc)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := routing.NewPriceOptimizer(sc.Fleet, 1500, 5)

	relaxed := sc
	relaxed.Policy = opt
	rRes, err := Run(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	follow := sc
	follow.Policy = opt
	follow.SoftCaps = caps
	fRes, err := Run(follow)
	if err != nil {
		t.Fatal(err)
	}
	rs, fs := rRes.SavingsVersus(base), fRes.SavingsVersus(base)
	if fs <= 0 {
		t.Errorf("follow-95/5 savings = %.2f%%, want > 0", 100*fs)
	}
	if fs >= rs {
		t.Errorf("follow-95/5 savings %.1f%% not below relaxed %.1f%%", 100*fs, 100*rs)
	}
	// The billable p95 never rises above the baseline cap.
	for c := range fRes.BillableP95 {
		if fRes.BillableP95[c] > caps[c]+1e-6 {
			t.Errorf("cluster %d: billable p95 %.0f above cap %.0f", c, fRes.BillableP95[c], caps[c])
		}
	}
	if fRes.BurstsUsed == nil {
		t.Error("follow run should report burst usage")
	}
}

// TestDistanceThresholdMonotonicity (Fig 16/17): larger thresholds cannot
// increase cost, and client-server distance grows.
func TestDistanceThresholdMonotonicity(t *testing.T) {
	sc := shortScenario()
	_, base, err := DeriveCaps(sc)
	if err != nil {
		t.Fatal(err)
	}
	prevCost := math.Inf(1)
	prevDist := 0.0
	for _, km := range []float64{0, 1000, 2500} {
		opt, _ := routing.NewPriceOptimizer(sc.Fleet, km, 5)
		run := sc
		run.Policy = opt
		res, err := Run(run)
		if err != nil {
			t.Fatal(err)
		}
		cost := res.NormalizedCost(base)
		if cost > prevCost+0.005 {
			t.Errorf("threshold %v km: cost %.3f rose above %.3f", km, cost, prevCost)
		}
		if res.MeanDistanceKm < prevDist-25 {
			t.Errorf("threshold %v km: mean distance %.0f fell below %.0f", km, res.MeanDistanceKm, prevDist)
		}
		prevCost, prevDist = cost, res.MeanDistanceKm
	}
}

// TestReactionDelayCostsMoney (Fig 20): reacting to stale prices erodes
// savings.
func TestReactionDelayCostsMoney(t *testing.T) {
	sc := shortScenario()
	sc.Steps = 8 * traffic.SamplesPerDay
	opt, _ := routing.NewPriceOptimizer(sc.Fleet, 1500, 5)
	run := func(delay time.Duration) units.Money {
		s := sc
		s.Policy = opt
		s.ReactionDelay = delay
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalCost
	}
	immediate := run(0)
	hour := run(time.Hour)
	stale := run(12 * time.Hour)
	if hour < immediate {
		t.Errorf("1h delay cheaper than immediate: %v < %v", hour, immediate)
	}
	if stale < hour {
		t.Errorf("12h delay cheaper than 1h: %v < %v", stale, hour)
	}
}

func TestLongRunDemandSource(t *testing.T) {
	fx := fixtures()
	sc := Scenario{
		Fleet:         fx.Fleet,
		Policy:        routing.NewBaseline(fx.Fleet),
		Energy:        energy.OptimisticFuture,
		Market:        fx.Market,
		Demand:        fx.LR,
		Start:         fx.Market.Start,
		Steps:         30 * 24, // one month hourly
		Step:          time.Hour,
		ReactionDelay: time.Hour,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCost <= 0 {
		t.Error("long-run cost should be positive")
	}
}

func TestTraceDemandAdapter(t *testing.T) {
	fx := fixtures()
	td := fx.Demand
	// In-range instants return demand.
	rates := td.Rates(fx.Trace.Start.Add(time.Hour), nil)
	if len(rates) != 51 {
		t.Fatalf("rates len %d", len(rates))
	}
	var sum float64
	for _, r := range rates {
		sum += r
	}
	if sum <= 0 {
		t.Error("in-range demand should be positive")
	}
	// Out-of-range instants return zeros.
	rates = td.Rates(fx.Trace.Start.Add(-time.Hour), rates)
	for _, r := range rates {
		if r != 0 {
			t.Fatal("pre-trace demand should be zero")
		}
	}
	rates = td.Rates(fx.Trace.Start.AddDate(1, 0, 0), rates)
	for _, r := range rates {
		if r != 0 {
			t.Fatal("post-trace demand should be zero")
		}
	}
}

func TestNewTraceDemandErrors(t *testing.T) {
	if _, err := NewTraceDemand(time.Now(), 10, nil); err == nil {
		t.Error("empty demand should fail")
	}
	bad := [][]float64{make([]float64, 5)}
	if _, err := NewTraceDemand(time.Now(), 10, bad); err == nil {
		t.Error("sample mismatch should fail")
	}
}

func TestRunOutsideMarketFails(t *testing.T) {
	sc := shortScenario()
	sc.Policy = routing.NewBaseline(sc.Fleet)
	sc.Start = time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := Run(sc); err == nil {
		t.Error("simulation outside market data should fail")
	}
}

func TestSavingsHelpers(t *testing.T) {
	a := &Result{TotalCost: 80}
	b := &Result{TotalCost: 100}
	if s := a.SavingsVersus(b); math.Abs(s-0.2) > 1e-12 {
		t.Errorf("SavingsVersus = %v", s)
	}
	if n := a.NormalizedCost(b); math.Abs(n-0.8) > 1e-12 {
		t.Errorf("NormalizedCost = %v", n)
	}
	zero := &Result{}
	if a.SavingsVersus(zero) != 0 || a.NormalizedCost(zero) != 0 {
		t.Error("zero-cost base should return 0")
	}
}
