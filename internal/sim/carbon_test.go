package sim

import (
	"testing"
	"time"

	"powerroute/internal/carbon"
	"powerroute/internal/energy"
	"powerroute/internal/routing"
)

// TestCarbonMetering exercises the §8 extension hooks: emissions metering
// and routing on an overridden decision signal.
func TestCarbonMetering(t *testing.T) {
	fx := fixtures()
	intensity, err := carbon.FleetSeries(1, fx.Fleet, fx.Market.Start, fx.Market.Hours)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Fleet:         fx.Fleet,
		Policy:        routing.NewBaseline(fx.Fleet),
		Energy:        energy.OptimisticFuture,
		Market:        fx.Market,
		Demand:        fx.LR,
		Start:         fx.Market.Start,
		Steps:         14 * 24,
		Step:          time.Hour,
		ReactionDelay: time.Hour,
		Carbon:        intensity,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCarbonKg <= 0 {
		t.Fatal("no emissions metered")
	}
	var sum float64
	for _, kg := range res.ClusterCarbonKg {
		if kg < 0 {
			t.Fatal("negative cluster emissions")
		}
		sum += kg
	}
	if diff := sum - res.TotalCarbonKg; diff > 1e-6*res.TotalCarbonKg || diff < -1e-6*res.TotalCarbonKg {
		t.Errorf("cluster emissions sum %v != total %v", sum, res.TotalCarbonKg)
	}
	// Sanity scale: total energy × plausible intensity band.
	kWh := res.TotalEnergy.KilowattHours()
	if res.TotalCarbonKg < kWh*0.05 || res.TotalCarbonKg > kWh*1.0 {
		t.Errorf("emissions %v kg for %v kWh implausible", res.TotalCarbonKg, kWh)
	}
}

// TestDecisionSeriesOverride: routing on carbon intensity must yield lower
// emissions than routing on dollars, and the validation must catch
// mis-sized series.
func TestDecisionSeriesOverride(t *testing.T) {
	fx := fixtures()
	intensity, err := carbon.FleetSeries(1, fx.Fleet, fx.Market.Start, fx.Market.Hours)
	if err != nil {
		t.Fatal(err)
	}
	base := Scenario{
		Fleet:         fx.Fleet,
		Energy:        energy.OptimisticFuture,
		Market:        fx.Market,
		Demand:        fx.LR,
		Start:         fx.Market.Start,
		Steps:         60 * 24,
		Step:          time.Hour,
		ReactionDelay: time.Hour,
		Carbon:        intensity,
	}
	priceOpt, _ := routing.NewPriceOptimizer(fx.Fleet, 2500, 5)
	priceRun := base
	priceRun.Policy = priceOpt
	priceRes, err := Run(priceRun)
	if err != nil {
		t.Fatal(err)
	}
	carbonOpt, _ := routing.NewPriceOptimizer(fx.Fleet, 2500, 10)
	carbonRun := base
	carbonRun.Policy = carbonOpt
	carbonRun.DecisionSeries = intensity
	carbonRes, err := Run(carbonRun)
	if err != nil {
		t.Fatal(err)
	}
	if carbonRes.TotalCarbonKg >= priceRes.TotalCarbonKg {
		t.Errorf("carbon-aware emissions %v not below price-aware %v",
			carbonRes.TotalCarbonKg, priceRes.TotalCarbonKg)
	}
	if carbonRes.TotalCost <= priceRes.TotalCost {
		t.Errorf("carbon-aware cost %v unexpectedly below price-aware %v",
			carbonRes.TotalCost, priceRes.TotalCost)
	}
	// Mis-sized hook slices are rejected.
	bad := base
	bad.Policy = priceOpt
	bad.DecisionSeries = intensity[:2]
	if _, err := Run(bad); err == nil {
		t.Error("short decision series accepted")
	}
	bad = base
	bad.Policy = priceOpt
	bad.Carbon = intensity[:2]
	if _, err := Run(bad); err == nil {
		t.Error("short carbon series accepted")
	}
}
