package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"powerroute/internal/routing"
)

// driveParallel advances a ParallelEngine through the next `steps`
// intervals with the same lookup semantics as driveSteps — billing prices
// at the interval instant, the decision signal ReactionDelay in the past,
// clamped to the market start — so a full drive must reproduce the batch
// Run bit for bit. The price series are resolved through `series`, a
// joint engine over the same world.
func driveParallel(t testing.TB, eng *ParallelEngine, series *Engine, sc Scenario, steps int) {
	t.Helper()
	prices := series.PriceSeries()
	nc := len(sc.Fleet.Clusters)
	decision := make([]float64, nc)
	bill := make([]float64, nc)
	var demand []float64
	marketStart := prices[0].Start
	for step := 0; step < steps; step++ {
		at := eng.Next()
		demand = sc.Demand.Rates(at, demand)
		decisionAt := at.Add(-sc.ReactionDelay)
		if decisionAt.Before(marketStart) {
			decisionAt = marketStart
		}
		for c := range prices {
			v, err := prices[c].At(decisionAt)
			if err != nil {
				t.Fatal(err)
			}
			decision[c] = v
			if v, err = prices[c].At(at); err != nil {
				t.Fatal(err)
			}
			bill[c] = v
		}
		if err := eng.Step(at, StepPrices{Decision: decision, Bill: bill}, demand); err != nil {
			t.Fatal(err)
		}
	}
}

// newParallel builds a ParallelEngine over sc's finest routing-closed
// partition.
func newParallel(t testing.TB, sc Scenario) *ParallelEngine {
	t.Helper()
	p, err := PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallelEngine(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	return par
}

// TestParallelEngineMatchesJointRun is the in-process counterpart of
// TestShardMergeMatchesJointRun: the world split into 3 concurrently
// running regions (600 km threshold: CA, Texas, East) must be
// indistinguishable from the single-engine run through every read
// surface — mid-run snapshots and assignment matrices exactly, mid-run
// checkpoints exactly outside the distance histogram (whose bins absorb
// the same weights in a different order across the merge), and the final
// Result through Finalize.
func TestParallelEngineMatchesJointRun(t *testing.T) {
	sc := longRunScenario(t, 600)
	sc.Steps = 60 * 24
	half := sc.Steps / 2

	jointSc := clonePolicy(t, sc)
	joint, err := NewEngine(jointSc)
	if err != nil {
		t.Fatal(err)
	}
	par := newParallel(t, clonePolicy(t, sc))
	if par.Shards() != 3 {
		t.Fatalf("partition has %d shards, want 3", par.Shards())
	}
	if par.WorldHash() != joint.WorldHash() {
		t.Fatalf("parallel world hash %s, joint %s", par.WorldHash(), joint.WorldHash())
	}

	// A pre-step snapshot must work (the daemon answers /v1/status before
	// any demand arrives).
	if snap := par.Snapshot(); snap.Steps != 0 || snap.TotalCost != 0 {
		t.Fatalf("fresh parallel snapshot = %d steps, cost %v", snap.Steps, snap.TotalCost)
	}

	driveSteps(t, joint, jointSc, half)
	driveParallel(t, par, joint, sc, half)

	// Mid-run: snapshots and assignments are exact (no distance fields).
	js, ps := joint.Snapshot(), par.Snapshot()
	if !reflect.DeepEqual(js, ps) {
		t.Fatalf("mid-run snapshot differs:\njoint    %+v\nparallel %+v", js, ps)
	}
	if ja, pa := joint.Assignments(nil), par.Assignments(nil); !reflect.DeepEqual(ja, pa) {
		t.Fatal("mid-run assignment matrices differ")
	}

	// Mid-run checkpoints: bit-identical, per-cluster distance histograms
	// included (they scatter across the merge, no re-summation).
	jcp, err := joint.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	pcp, err := par.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jcp, pcp) {
		t.Fatalf("mid-run checkpoint differs:\njoint    %+v\nparallel %+v", jcp, pcp)
	}

	// The merged checkpoint survives the wire and restores into a plain
	// single-engine run of the joint world.
	wire, err := par.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wire.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Restore(clonePolicy(t, sc), decoded)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.StepsRun() != half {
		t.Fatalf("restored single engine at step %d, want %d", resumed.StepsRun(), half)
	}

	// Finish both and close the books.
	driveSteps(t, joint, jointSc, sc.Steps-half)
	driveParallel(t, par, joint, sc, sc.Steps-half)
	want, err := joint.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	requireResultsMatch(t, "parallel run", got, want)

	// Finalize is idempotent and terminal, like Engine's.
	again, err := par.Finalize()
	if err != nil || again != got {
		t.Fatalf("second Finalize = (%p, %v), want the same Result", again, err)
	}
	if err := par.Step(par.Next(), StepPrices{}, nil); err == nil || !strings.Contains(err.Error(), "finalized") {
		t.Fatalf("Step after Finalize: %v", err)
	}
	if _, err := par.Checkpoint(); err == nil || !strings.Contains(err.Error(), "finalized") {
		t.Fatalf("Checkpoint after Finalize: %v", err)
	}
}

// TestParallelEngineActiveBursts: the in-process broker counterpart of
// TestShardMergeActiveBursts — a soft-capped clique world whose burst
// gate genuinely fires, run through ParallelEngine (whose stepGate
// broker replays the joint gate bit to every region), matches the joint
// SelfGate run bit for bit through Finalize, and its mid-run merged
// checkpoint carries the shard lease ledgers.
func TestParallelEngineActiveBursts(t *testing.T) {
	sc := cliqueScenario(t, 600, [][2]string{{"NP15", "SP15"}, {"ERN", "ERS"}, {"NYC", "DOM"}})
	sc.SoftCaps = tightSoftCaps(t, sc)
	sc.BurstGate = SelfGate{}
	half := sc.Steps / 2

	jointSc := clonePolicy(t, sc)
	joint, err := NewEngine(jointSc)
	if err != nil {
		t.Fatal(err)
	}
	par := newParallel(t, clonePolicy(t, sc))

	driveSteps(t, joint, jointSc, half)
	driveParallel(t, par, joint, sc, half)

	jcp, err := joint.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	pcp, err := par.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jcp, pcp) {
		t.Fatalf("mid-run checkpoint differs:\njoint    %+v\nparallel %+v", jcp, pcp)
	}
	var granted int
	for _, l := range pcp.BurstLeases {
		granted += l.TokensGranted
	}
	if granted == 0 {
		t.Fatal("no burst tokens granted by mid-run — the scenario does not arm the gate")
	}

	driveSteps(t, joint, jointSc, sc.Steps-half)
	driveParallel(t, par, joint, sc, sc.Steps-half)
	want, err := joint.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	requireResultsMatch(t, "parallel active-burst run", got, want)
}

// TestParallelEngineValidatesBeforeDispatch: malformed joint vectors are
// rejected before anything is fanned out, so a bad request cannot split
// the shard cursors — the engine keeps stepping afterwards.
func TestParallelEngineValidatesBeforeDispatch(t *testing.T) {
	sc := longRunScenario(t, 600)
	par := newParallel(t, sc)
	joint, err := NewEngine(clonePolicy(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	nc, ns := len(sc.Fleet.Clusters), len(sc.Fleet.States)
	good := make([]float64, nc)
	demand := make([]float64, ns)
	at := par.Next()

	for _, tc := range []struct {
		name   string
		prices StepPrices
		demand []float64
	}{
		{"short-demand", StepPrices{Decision: good, Bill: good}, demand[:ns-1]},
		{"short-decision", StepPrices{Decision: good[:nc-1], Bill: good}, demand},
		{"short-bill", StepPrices{Decision: good, Bill: good[:nc-1]}, demand},
	} {
		if err := par.Step(at, tc.prices, tc.demand); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	if par.StepsRun() != 0 {
		t.Fatalf("rejected steps advanced the cursor to %d", par.StepsRun())
	}
	driveParallel(t, par, joint, sc, 1)
	if par.StepsRun() != 1 {
		t.Fatalf("engine poisoned by a rejected vector: %d steps run", par.StepsRun())
	}
}

// TestParallelEnginePoison: when a region errors mid-step the cursors are
// split and the books no longer describe one world — every write and
// checkpoint surface must return the poison error, while snapshots keep
// serving the last consistent cursor (the daemon's status endpoint must
// not panic or lie mid-incident).
func TestParallelEnginePoison(t *testing.T) {
	sc := longRunScenario(t, 600)
	par := newParallel(t, sc)
	joint, err := NewEngine(clonePolicy(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	driveParallel(t, par, joint, sc, 3)
	if snap := par.Snapshot(); snap.Steps != 3 {
		t.Fatalf("snapshot at %d steps, want 3", snap.Steps)
	}

	// Finalize one region's engine out from under the parallel engine:
	// its next Step fails while the others advance — exactly the split
	// the poison guards against.
	if _, err := par.workers[0].eng.Finalize(); err != nil {
		t.Fatal(err)
	}
	prices := make([]float64, len(sc.Fleet.Clusters))
	demand := make([]float64, len(sc.Fleet.States))
	stepErr := par.Step(par.Next(), StepPrices{Decision: prices, Bill: prices}, demand)
	if stepErr == nil || !strings.Contains(stepErr.Error(), "poisoned") || !strings.Contains(stepErr.Error(), "shard 0") {
		t.Fatalf("poisoning step: %v", stepErr)
	}
	if err := par.Step(par.Next(), StepPrices{Decision: prices, Bill: prices}, demand); err != stepErr {
		t.Fatalf("second step after poison: %v, want the poison error", err)
	}
	if _, err := par.Checkpoint(); err != stepErr {
		t.Fatalf("checkpoint after poison: %v, want the poison error", err)
	}
	if _, err := par.Finalize(); err != stepErr {
		t.Fatalf("finalize after poison: %v, want the poison error", err)
	}
	// Snapshots fall back to the last consistent cursor.
	if snap := par.Snapshot(); snap.Steps != 3 {
		t.Fatalf("post-poison snapshot at %d steps, want the last consistent 3", snap.Steps)
	}
}
