package sim

import (
	"reflect"
	"testing"
	"time"

	"powerroute/internal/energy"
	"powerroute/internal/routing"
	"powerroute/internal/timeseries"
)

func TestSeriesLookupSharedFastPath(t *testing.T) {
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	a := timeseries.FromValues(start, time.Hour, []float64{1, 2, 3})
	b := timeseries.FromValues(start, time.Hour, []float64{4, 5, 6})
	l := newSeriesLookup([]*timeseries.Series{a, b})
	if !l.shared {
		t.Fatal("identical geometry not detected")
	}
	dst := make([]float64, 2)
	if err := l.values(start.Add(90*time.Minute), dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 2 || dst[1] != 5 {
		t.Fatalf("dst = %v", dst)
	}
	// Out-of-range instants error on both sides of the series.
	if err := l.values(start.Add(-time.Minute), dst); err == nil {
		t.Error("instant before start accepted")
	}
	if err := l.values(start.Add(3*time.Hour), dst); err == nil {
		t.Error("instant past end accepted")
	}
}

func TestSeriesLookupFallbackMatchesFastPath(t *testing.T) {
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	hourly := timeseries.FromValues(start, time.Hour, []float64{1, 2, 3, 4})
	// A 30-minute series holding each hourly value twice resolves to the
	// same value at every instant but breaks the shared-geometry check.
	half := timeseries.FromValues(start, 30*time.Minute, []float64{1, 1, 2, 2, 3, 3, 4, 4})
	mixed := newSeriesLookup([]*timeseries.Series{hourly, half})
	if mixed.shared {
		t.Fatal("mismatched geometry not detected")
	}
	fast := newSeriesLookup([]*timeseries.Series{hourly, hourly})
	for m := 0; m < 4*60; m += 25 {
		at := start.Add(time.Duration(m) * time.Minute)
		got := make([]float64, 2)
		want := make([]float64, 2)
		if err := mixed.values(at, got); err != nil {
			t.Fatal(err)
		}
		if err := fast.values(at, want); err != nil {
			t.Fatal(err)
		}
		if got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("at %v: fallback %v vs fast %v", at, got, want)
		}
	}
}

// TestRunDecisionGeometryFallback runs the same scenario with an hourly
// decision series (shared fast path) and a 30-minute resampling of it
// (fallback path) and demands identical results — the lookup strategy must
// never change simulation outcomes.
func TestRunDecisionGeometryFallback(t *testing.T) {
	fx := fixtures()
	sc := shortScenario()
	opt, err := routing.NewPriceOptimizer(fx.Fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sc.Policy = opt
	sc.Energy = energy.OptimisticFuture

	hourly := make([]*timeseries.Series, len(fx.Fleet.Clusters))
	resampled := make([]*timeseries.Series, len(fx.Fleet.Clusters))
	for c, cl := range fx.Fleet.Clusters {
		rt, err := fx.Market.RT(cl.HubID)
		if err != nil {
			t.Fatal(err)
		}
		hourly[c] = rt
		vals := make([]float64, 2*len(rt.Values))
		for i, v := range rt.Values {
			vals[2*i], vals[2*i+1] = v, v
		}
		resampled[c] = timeseries.FromValues(rt.Start, 30*time.Minute, vals)
	}

	scFast := sc
	scFast.DecisionSeries = hourly
	fast, err := Run(scFast)
	if err != nil {
		t.Fatal(err)
	}
	scSlow := sc
	scSlow.DecisionSeries = resampled
	slow, err := Run(scSlow)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Errorf("fallback lookup changed the result:\nfast: %+v\nslow: %+v", fast, slow)
	}
}
