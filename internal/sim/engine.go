// The incremental simulation engine: all per-run state of a Scenario —
// billing meters, 95/5 burst budgets, battery state-of-charge, the distance
// histogram — held explicitly and advanced one interval at a time. The
// batch Run is a thin loop over an Engine; long-running services
// (cmd/powerrouted) drive the same engine from live price and demand feeds
// instead of pre-generated series, one Step per routing interval.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"powerroute/internal/billing"
	"powerroute/internal/cluster"
	"powerroute/internal/energy"
	"powerroute/internal/routing"
	"powerroute/internal/sched"
	"powerroute/internal/stats"
	"powerroute/internal/storage"
	"powerroute/internal/timeseries"
	"powerroute/internal/units"
)

// StepPrices carries one interval's per-cluster price vectors into Step.
type StepPrices struct {
	// Decision is the signal the router optimizes ($/MWh, or whatever the
	// scenario's DecisionSeries meters). Any reaction delay is the caller's
	// concern: batch Run looks these up ReactionDelay in the past, an online
	// daemon's staleness is however old its freshest feed entry is.
	Decision []float64
	// Bill is the real-time price each cluster's grid draw is billed at.
	Bill []float64
	// Carbon is the hourly intensity (gCO₂/kWh); required exactly when the
	// scenario meters carbon, ignored otherwise.
	Carbon []float64
}

// Engine advances a Scenario one interval at a time. Build one with
// NewEngine, call Step once per interval in chronological order, then
// Finalize to close the books and obtain the Result. Engines are not
// goroutine-safe; wrap them in a lock to serve concurrent feeds
// (internal/server does).
//
// Every field is per-run state unless annotated otherwise: ckptfield
// (cmd/powerroute-vet) verifies each one is referenced by Checkpoint and
// loadCheckpoint, so a new field cannot silently escape the checkpoint.
//
// ckpt:state Checkpoint,loadCheckpoint
type Engine struct {
	sc        Scenario
	nc, ns    int
	stepHours float64 // ckpt:immutable derived from sc.Step at construction

	prices []*timeseries.Series // resolved per-cluster RT series

	constraints []*billing.Constraint
	// Coordinated burst gating (Scenario.BurstGate); nil otherwise.
	gate   BurstGate // ckpt:immutable scenario configuration, rebuilt by NewEngine
	leases []*billing.LeaseLedger
	// leaseGranted marks the clusters granted a burst token this step, so
	// the commit loop can book each token as used or expired.
	leaseGranted []bool // ckpt:derived per-step scratch cleared by the gate block

	batteries    []*storage.State
	dispatch     storage.Policy      // ckpt:immutable scenario configuration, rebuilt by NewEngine
	dispatchName string              // ckpt:immutable cached Policy.Name(), so status paths never format on the hot path
	priceCapper  storage.PriceCapper // ckpt:immutable the dispatch policy's capper interface, rebuilt by NewEngine
	priceCaps    []float64           // ckpt:derived scratch recomputed from priceCapper every Step
	demandMeters []*billing.DemandMeter

	res    *Result
	meters []billing.Meter
	// distHists holds one hit-weighted distance histogram per cluster.
	// Routing closure means cluster c sees the same adds in the same order
	// whether it runs in the joint engine or its own shard, so each
	// per-cluster histogram is bit-identical across a split; the fleet
	// distribution is re-derived by a fixed fleet-order fold (distTotal),
	// which is what makes the merged mean/p99 exact rather than
	// float-associativity-close.
	distHists []*stats.WeightedHistogram
	assign    [][]float64
	// assignBuf is the flat backing array of assign's rows, so Step clears
	// the whole matrix with one range loop (compiled to a memclr) instead of
	// ns short loops.
	assignBuf []float64        // ckpt:derived scratch; assign's rows alias it and carry the state
	ctx       *routing.Context // ckpt:derived scratch rebuilt from fleet and loads every Step
	loads     []float64
	// capacities caches the fleet's per-cluster capacities as floats.
	capacities []float64 // ckpt:immutable derived from sc.Fleet at construction
	// powerEval holds each cluster's energy model bound to its server count
	// with the load-independent terms folded (bit-identical to sc.Energy).
	powerEval []energy.Evaluator // ckpt:immutable derived from sc.Energy and sc.Fleet at construction
	// distBin caches each state→cluster distance's histogram bin, since the
	// geometry never changes; Step feeds weights straight into the bin.
	distBin [][]int // ckpt:immutable derived from sc.Fleet and the histogram geometry at construction

	// Fleet-wide scalars (total cost/energy, overload seconds, storage
	// totals, carbon) are never accumulated across clusters during Step:
	// each cluster owns its running sum and the fleet figures are derived
	// in fleet order at Snapshot/Finalize time. That makes every number a
	// shard merge produces bit-identical to the joint run's — a shard
	// scatters its per-cluster sums into fleet positions and the same
	// fleet-order summation runs over them.
	overloadSec   []float64
	storageBought []float64 // nil unless storage is configured
	storageServed []float64 // nil unless storage is configured

	// Deferrable (batch) class state; all nil unless sc.Batch is set.
	sched         *sched.Scheduler
	batchServed   []float64 // kWh of batch energy served at each cluster
	batchShed     []float64 // kWh abandoned at expired deadlines, at the home cluster
	batchDeferred []float64 // kWh left queued after each dispatch, summed over steps
	batchKW       []float64 // ckpt:derived per-step scratch filled by Dispatch
	batchShedKWh  []float64 // ckpt:derived per-step scratch filled by Dispatch
	headroomKW    []float64 // ckpt:derived per-step scratch for the peak guard

	// gridWh stages each cluster's grid energy (Wh) between the metering
	// and billing halves of Step, so batch dispatch can see every
	// cluster's interactive draw before any of it is billed.
	gridWh []units.Energy // ckpt:derived per-step scratch

	stepsRun  int
	lastAt    time.Time
	finalized bool

	// worldHash is computed lazily by WorldHash (checkpoint.go) and cached;
	// the step hot path never reads it.
	worldHash string
}

// NewEngine validates the scenario and builds the per-run state. The
// scenario's Demand source and horizon (Start/Steps) describe the batch
// run the engine was sized for — constraint burst budgets derive from
// Steps — but Step itself is driven entirely by its arguments, so an
// online caller may feed any aligned sequence of intervals.
func NewEngine(sc Scenario) (*Engine, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	nc := len(sc.Fleet.Clusters)
	ns := len(sc.Fleet.States)

	e := &Engine{
		sc:        sc,
		nc:        nc,
		ns:        ns,
		stepHours: sc.Step.Hours(),
	}

	// Resolve per-cluster hourly price series once.
	e.prices = make([]*timeseries.Series, nc)
	for c, cl := range sc.Fleet.Clusters {
		s, err := sc.Market.RT(cl.HubID)
		if err != nil {
			return nil, fmt.Errorf("sim: cluster %s: %w", cl.Code, err)
		}
		e.prices[c] = s
	}

	// 95/5 constraint state.
	if sc.SoftCaps != nil {
		e.constraints = make([]*billing.Constraint, nc)
		for c := range e.constraints {
			con, err := billing.NewConstraint(sc.SoftCaps[c], sc.Steps)
			if err != nil {
				return nil, err
			}
			e.constraints[c] = con
		}
	}
	// Coordinated burst gating: the gate decision is externalized and
	// every token is booked per cluster. validate() guarantees SoftCaps
	// (hence constraints) whenever a gate is configured.
	if sc.BurstGate != nil {
		e.gate = sc.BurstGate
		e.leases = make([]*billing.LeaseLedger, nc)
		for c := range e.leases {
			e.leases[c] = new(billing.LeaseLedger)
		}
		e.leaseGranted = make([]bool, nc)
	}

	// Battery and demand-charge state. Both stay nil for storage-free,
	// energy-only scenarios so those runs take the exact code path (and
	// produce the exact results) they did before this subsystem existed.
	if sc.Storage != nil {
		e.batteries = make([]*storage.State, nc)
		for c := range e.batteries {
			e.batteries[c] = storage.NewState(sc.Storage.Batteries[c])
		}
		e.storageBought = make([]float64, nc)
		e.storageServed = make([]float64, nc)
		e.dispatch = sc.Storage.Policy
		e.dispatchName = sc.Storage.Policy.Name()
		if sc.Storage.RoutingAware {
			if pc, ok := e.dispatch.(storage.PriceCapper); ok {
				e.priceCapper = pc
				e.priceCaps = make([]float64, nc)
			}
		}
	}
	if sc.DemandChargePerKW > 0 {
		e.demandMeters = make([]*billing.DemandMeter, nc)
		for c := range e.demandMeters {
			e.demandMeters[c] = new(billing.DemandMeter)
		}
	}

	// Deferrable (batch) class. Everything stays nil for batch-free
	// scenarios so those runs keep their exact pre-batch code path.
	if sc.Batch != nil {
		var siblings [][]int
		if sc.Batch.Migrate {
			shr, ok := sc.Policy.(routing.Sharder)
			if !ok {
				return nil, fmt.Errorf("sim: batch migration needs a policy with routing candidates; %s has none", sc.Policy.Name())
			}
			part, err := PartitionByRouting(shr, sc.Fleet)
			if err != nil {
				return nil, err
			}
			siblings = make([][]int, nc)
			for _, members := range part.Clusters {
				for _, c := range members {
					for _, t := range members {
						if t != c {
							siblings[c] = append(siblings[c], t)
						}
					}
				}
			}
		}
		s, err := sched.NewScheduler(sc.Batch, nc, siblings)
		if err != nil {
			return nil, err
		}
		e.sched = s
		e.batchServed = make([]float64, nc)
		e.batchShed = make([]float64, nc)
		e.batchDeferred = make([]float64, nc)
		e.batchKW = make([]float64, nc)
		e.batchShedKWh = make([]float64, nc)
		e.headroomKW = make([]float64, nc)
	}

	e.res = &Result{
		Policy:          sc.Policy.Name(),
		Steps:           sc.Steps,
		ClusterCost:     make([]units.Money, nc),
		ClusterEnergy:   make([]units.Energy, nc),
		BillableP95:     make([]float64, nc),
		PeakRate:        make([]float64, nc),
		MeanUtilization: make([]float64, nc),
	}
	if sc.Carbon != nil {
		e.res.ClusterCarbonKg = make([]float64, nc)
	}
	e.meters = make([]billing.Meter, nc)
	for c := range e.meters {
		e.meters[c].Reserve(sc.Steps)
	}
	e.distHists = make([]*stats.WeightedHistogram, nc)
	for c := range e.distHists {
		e.distHists[c] = newDistHist()
	}
	e.assignBuf = make([]float64, ns*nc)
	e.assign = make([][]float64, ns)
	e.distBin = make([][]int, ns)
	for s := range e.assign {
		e.assign[s] = e.assignBuf[s*nc : (s+1)*nc : (s+1)*nc]
		e.distBin[s] = make([]int, nc)
		for c, d := range sc.Fleet.DistanceKm[s] {
			if math.IsNaN(d) || math.IsInf(d, 0) {
				// No bin: Step falls back to Add, which tallies the
				// weight as non-finite exactly as before.
				e.distBin[s][c] = -1
				continue
			}
			e.distBin[s][c] = e.distHists[c].BinIndex(d)
		}
	}
	e.ctx = &routing.Context{
		Demand:         make([]float64, ns),
		DecisionPrices: make([]float64, nc),
		Room:           make([]float64, nc),
		BurstRoom:      make([]float64, nc),
	}
	e.loads = make([]float64, nc)
	e.gridWh = make([]units.Energy, nc)
	e.overloadSec = make([]float64, nc)
	e.capacities = make([]float64, nc)
	e.powerEval = make([]energy.Evaluator, nc)
	for c, cl := range sc.Fleet.Clusters {
		e.capacities[c] = float64(cl.Capacity)
		e.powerEval[c] = sc.Energy.Evaluator(cl.Servers)
	}
	return e, nil
}

// Distance histogram geometry: 0–5500 km at 5 km resolution. One shared
// definition so the per-cluster histograms, the fleet-order fold, and the
// checkpoint restore path can never drift apart.
const (
	distHistMaxKm = 5500
	distHistBins  = 1100
)

// newDistHist builds one distance histogram with the engine geometry.
func newDistHist() *stats.WeightedHistogram {
	return stats.NewWeightedHistogram(0, distHistMaxKm, distHistBins)
}

// distTotal folds the per-cluster distance histograms into the fleet
// distribution, always in fleet order. The fold is a fixed-order pairwise
// merge over bit-identical per-cluster parts, so a merged shard fleet
// derives the same mean/p99 bits as the joint engine.
func (e *Engine) distTotal() (*stats.WeightedHistogram, error) {
	m := newDistHist()
	for c, h := range e.distHists {
		if err := m.Merge(h); err != nil {
			return nil, fmt.Errorf("sim: cluster %s distance histogram: %w", e.sc.Fleet.Clusters[c].Code, err)
		}
	}
	return m, nil
}

// PriceSeries returns the per-cluster real-time price series resolved from
// the scenario's market (fleet order). Batch Run builds its lookups from
// these; online callers use them to seed a feed or clamp decision times.
func (e *Engine) PriceSeries() []*timeseries.Series { return e.prices }

// Fleet returns the scenario's fleet.
func (e *Engine) Fleet() *cluster.Fleet { return e.sc.Fleet }

// StepSize returns the scenario's interval length.
func (e *Engine) StepSize() time.Duration { return e.sc.Step }

// Start returns the scenario's first interval instant.
func (e *Engine) Start() time.Time { return e.sc.Start }

// ReactionDelay returns the scenario's configured routing reaction delay.
func (e *Engine) ReactionDelay() time.Duration { return e.sc.ReactionDelay }

// StepsRun returns the number of intervals advanced so far.
func (e *Engine) StepsRun() int { return e.stepsRun }

// Next returns the instant the next Step is expected to cover:
// Start + StepsRun·Step.
func (e *Engine) Next() time.Time {
	return e.sc.Start.Add(time.Duration(e.stepsRun) * e.sc.Step)
}

// Step advances the engine through the interval starting at `at`: the
// policy allocates demand onto clusters under the 95/5 room tiers, every
// cluster's grid draw is metered and billed at prices.Bill, batteries
// dispatch, and the distance histogram absorbs the assignment. Inputs are
// copied, never retained.
func (e *Engine) Step(at time.Time, prices StepPrices, demand []float64) error {
	if e.finalized {
		return errors.New("sim: engine already finalized")
	}
	sc := &e.sc
	ctx := e.ctx
	res := e.res
	ctx.At = at

	// Demand.
	if len(demand) != e.ns {
		return fmt.Errorf("sim: demand source returned %d states, want %d", len(demand), e.ns)
	}
	copy(ctx.Demand, demand)

	// Decision signal (delay already applied by the caller).
	if len(prices.Decision) != e.nc {
		return fmt.Errorf("sim: %d decision prices for %d clusters", len(prices.Decision), e.nc)
	}
	copy(ctx.DecisionPrices, prices.Decision)
	// Billing prices for this instant (always real-time dollars).
	if len(prices.Bill) != e.nc {
		return fmt.Errorf("sim: %d billing prices for %d clusters", len(prices.Bill), e.nc)
	}
	if sc.Carbon != nil && len(prices.Carbon) != e.nc {
		return fmt.Errorf("sim: %d carbon intensities for %d clusters", len(prices.Carbon), e.nc)
	}
	// Storage-aware signal: a charged battery caps how expensive its
	// cluster can look to the router (the battery absorbs anything
	// above its discharge threshold).
	if e.priceCapper != nil {
		for c := range e.priceCaps {
			e.priceCaps[c] = e.priceCapper.PriceCap(c, e.batteries[c])
		}
		routing.ApplyPriceCaps(ctx.DecisionPrices, e.priceCaps)
	}

	// Room tiers. Burst room above the 95/5 caps is unlocked only when
	// this interval is infeasible under the caps alone — reserving each
	// cluster's 5% burst budget for the true peak intervals rather than
	// letting the router spend it chasing cheap prices.
	if e.constraints != nil {
		totalDemand := SumDemand(ctx.Demand)
		var totalRoom float64
		for c := range sc.Fleet.Clusters {
			capacity := e.capacities[c]
			cap95 := e.constraints[c].Cap
			if cap95 > capacity {
				cap95 = capacity
			}
			ctx.Room[c] = cap95
			ctx.BurstRoom[c] = 0
			totalRoom += cap95
		}
		open := BurstGateOpen(totalDemand, totalRoom)
		if e.gate != nil {
			for c := range e.leaseGranted {
				e.leaseGranted[c] = false
			}
			var err error
			open, err = e.gate.GateOpen(e.stepsRun, totalDemand, totalRoom)
			if err != nil {
				return fmt.Errorf("sim: burst gate at %v: %w", at, err)
			}
		}
		if open {
			for c := range sc.Fleet.Clusters {
				if e.constraints[c].CanBurst() {
					ctx.BurstRoom[c] = e.capacities[c] - ctx.Room[c]
					if e.leases != nil {
						e.leases[c].Grant()
						e.leaseGranted[c] = true
					}
				}
			}
		}
	} else {
		for c := range sc.Fleet.Clusters {
			ctx.Room[c] = e.capacities[c]
			ctx.BurstRoom[c] = 0
		}
	}

	// Allocate.
	for i := range e.assignBuf {
		e.assignBuf[i] = 0
	}
	if err := sc.Policy.Allocate(ctx, e.assign); err != nil {
		return err
	}

	// Meter.
	for c := range e.loads {
		e.loads[c] = 0
	}
	stepHours := e.stepHours
	for s := range e.assign {
		row := e.assign[s]
		dist := sc.Fleet.DistanceKm[s]
		bins := e.distBin[s]
		for c, rate := range row {
			if rate <= 0 {
				continue
			}
			e.loads[c] += rate
			if b := bins[c]; b >= 0 {
				e.distHists[c].AddToBin(b, dist[c], rate*stepHours)
			} else {
				e.distHists[c].Add(dist[c], rate*stepHours)
			}
		}
	}
	for c := range sc.Fleet.Clusters {
		load := e.loads[c]
		capacity := e.capacities[c]
		e.meters[c].Record(load)
		if load > res.PeakRate[c] {
			res.PeakRate[c] = load
		}
		// Epsilon absorbs float residue from the allocator's room
		// arithmetic; genuine overloads are orders of magnitude larger.
		if over := load - capacity; over > 1e-6+1e-9*capacity {
			e.overloadSec[c] += over * sc.Step.Seconds()
		}
		if e.constraints != nil {
			if err := e.constraints[c].Commit(load); err != nil {
				return fmt.Errorf("sim: cluster %s at %v: %w", sc.Fleet.Clusters[c].Code, at, err)
			}
			// Book the step's burst token: used by an over-cap interval,
			// expired (reclaimed at the step boundary) otherwise.
			if e.leases != nil && e.leaseGranted[c] {
				if e.constraints[c].Over(load) {
					e.leases[c].Use()
				} else {
					e.leases[c].Expire()
				}
			}
		}
		// Cluster.Utilization over the cached float capacity: the same
		// division, the same clamps.
		u := 0.0
		if capacity > 0 {
			u = load / capacity
			if u < 0 {
				u = 0
			} else if u > 1 {
				u = 1
			}
		}
		res.MeanUtilization[c] += u
		en := e.powerEval[c].Energy(u, stepHours)
		// Grid draw = IT draw + battery charging − battery discharging;
		// everything downstream (bill, demand meter, carbon ledger) is
		// metered at the grid interconnect.
		grid := en
		if e.batteries != nil {
			b := e.batteries[c]
			itKW := en.KilowattHours() / stepHours
			if act := e.dispatch.Action(c, prices.Bill[c], itKW, b); act > 0 {
				bought := b.Charge(act, stepHours)
				grid += units.Energy(bought * 1000)
				e.storageBought[c] += bought
			} else if act < 0 {
				want := -act
				if want > itKW {
					want = itKW // no grid export
				}
				served := b.Discharge(want, stepHours)
				grid -= units.Energy(served * 1000)
				e.storageServed[c] += served
			}
		}
		e.gridWh[c] = grid
	}

	// Deferrable (batch) class: dispatch sits between metering and
	// billing so batch draw is billed and demand-metered at whichever
	// cluster serves it, on top of that cluster's interactive draw.
	if e.sched != nil {
		e.sched.EnqueueArrivals(e.stepsRun)
		var headroom []float64
		if e.sched.PeakGuarded() && e.demandMeters != nil {
			for c := range e.headroomKW {
				h := e.demandMeters[c].MonthPeak(at) - e.gridWh[c].KilowattHours()/stepHours
				if h < 0 {
					h = 0
				}
				e.headroomKW[c] = h
			}
			headroom = e.headroomKW
		}
		// The gate reads the same lagged decision prices the router saw,
		// before any storage price caps: batch deferral is its own lever.
		e.sched.Dispatch(e.stepsRun, stepHours, prices.Decision, headroom, e.batchKW, e.batchShedKWh)
		e.sched.Compact()
		for c := range e.batchKW {
			if kwh := e.batchKW[c] * stepHours; kwh > 0 {
				e.gridWh[c] += units.Energy(kwh * 1000)
				e.batchServed[c] += kwh
			}
			e.batchShed[c] += e.batchShedKWh[c]
			e.batchDeferred[c] += e.sched.QueuedKWh(c)
		}
	}

	// Bill. Split from the metering loop above only so batch dispatch can
	// run in between; per-cluster arithmetic is untouched, so batch-free
	// scenarios produce bit-identical results to the single-loop form.
	for c := range sc.Fleet.Clusters {
		grid := e.gridWh[c]
		cost := grid.Cost(units.Price(prices.Bill[c]))
		res.ClusterEnergy[c] += grid
		res.ClusterCost[c] += cost
		if e.demandMeters != nil {
			e.demandMeters[c].Record(at, grid.KilowattHours()/stepHours)
		}
		if sc.Carbon != nil {
			res.ClusterCarbonKg[c] += grid.KilowattHours() * prices.Carbon[c] / 1000
		}
	}
	e.stepsRun++
	e.lastAt = at
	return nil
}

// QueueJobs enqueues externally arriving batch jobs — the daemon ingest
// path. Deadlines are absolute step indices and must lie beyond the
// current step cursor (a job must have at least one interval to run in).
// All jobs are validated before any is enqueued; unlike Step, this path
// may allocate as queues grow.
func (e *Engine) QueueJobs(jobs []sched.Job) error {
	if e.finalized {
		return errors.New("sim: engine already finalized")
	}
	if e.sched == nil {
		return errors.New("sim: scenario configures no batch class")
	}
	for i, j := range jobs {
		if j.Cluster < 0 || j.Cluster >= e.nc {
			return fmt.Errorf("sim: batch job %d targets cluster %d of %d", i, j.Cluster, e.nc)
		}
		if j.Deadline <= e.stepsRun {
			return fmt.Errorf("sim: batch job %d has deadline %d at or behind step cursor %d", i, j.Deadline, e.stepsRun)
		}
		if math.IsNaN(j.EnergyKWh) || math.IsInf(j.EnergyKWh, 0) || j.EnergyKWh <= 0 {
			return fmt.Errorf("sim: batch job %d has energy %v kWh", i, j.EnergyKWh)
		}
		if math.IsNaN(j.MinFraction) || j.MinFraction < 0 || j.MinFraction > 1 {
			return fmt.Errorf("sim: batch job %d has min fraction %v", i, j.MinFraction)
		}
	}
	for _, j := range jobs {
		e.sched.Push(j.Cluster, sched.QueuedJob{
			Deadline:    j.Deadline,
			TotalKWh:    j.EnergyKWh,
			MinFraction: j.MinFraction,
		})
	}
	return nil
}

// batchTotals derives the fleet-wide batch ledgers from the per-cluster
// accumulators, in fleet order (same merge-exactness argument as totals).
func (e *Engine) batchTotals() (served, shed, deferred float64) {
	for c := range e.batchServed {
		served += e.batchServed[c]
		shed += e.batchShed[c]
		deferred += e.batchDeferred[c]
	}
	return served, shed, deferred
}

// totals derives the fleet-wide running sums from the per-cluster
// accumulators, always in fleet order. Snapshot and Finalize both go
// through here, so a merged shard checkpoint — whose per-cluster values
// are scattered back into their fleet positions — reproduces the joint
// run's fleet figures bit for bit.
func (e *Engine) totals() (cost units.Money, energy units.Energy, overload, bought, served, carbon float64) {
	res := e.res
	for c := range res.ClusterCost {
		cost += res.ClusterCost[c]
		energy += res.ClusterEnergy[c]
		overload += e.overloadSec[c]
	}
	for c := range e.storageBought {
		bought += e.storageBought[c]
		served += e.storageServed[c]
	}
	for _, kg := range res.ClusterCarbonKg {
		carbon += kg
	}
	return cost, energy, overload, bought, served, carbon
}

// Finalize closes the books — billable 95th percentiles, burst-budget
// verification, demand charges, final battery state, the distance
// distribution — and returns the Result. It is idempotent; Step returns an
// error after the first call.
func (e *Engine) Finalize() (*Result, error) {
	if e.finalized {
		return e.res, nil
	}
	if e.stepsRun == 0 {
		return nil, errors.New("sim: finalize before any step")
	}
	res := e.res
	for c := range e.meters {
		p95, err := e.meters[c].Percentile95()
		if err != nil {
			return nil, err
		}
		res.BillableP95[c] = p95
		res.MeanUtilization[c] /= float64(e.stepsRun)
		if e.constraints != nil {
			if res.BurstsUsed == nil {
				res.BurstsUsed = make([]int, e.nc)
			}
			res.BurstsUsed[c] = e.constraints[c].BurstsUsed()
			if err := e.constraints[c].Verify(); err != nil {
				return nil, err
			}
		}
	}
	res.TotalCost, res.TotalEnergy, res.OverloadHitSeconds,
		res.StorageBoughtKWh, res.StorageServedKWh, res.TotalCarbonKg = e.totals()
	res.Steps = e.stepsRun
	res.EnergyCost = res.TotalCost
	if e.demandMeters != nil {
		res.ClusterDemandCharge = make([]units.Money, e.nc)
		res.PeakGridKW = make([]float64, e.nc)
		for c, m := range e.demandMeters {
			ch := m.Charge(e.sc.DemandChargePerKW)
			res.ClusterDemandCharge[c] = ch
			res.PeakGridKW[c] = m.PeakKW()
			res.ClusterCost[c] += ch
			res.DemandCharge += ch
			res.TotalCost += ch
		}
	}
	if e.batteries != nil {
		res.FinalSoCKWh = make([]float64, e.nc)
		for c, b := range e.batteries {
			res.FinalSoCKWh[c] = b.SoCKWh()
		}
	}
	if e.sched != nil {
		res.BatchServedKWh, res.BatchShedKWh, res.BatchDeferredKWhSteps = e.batchTotals()
		for c := 0; c < e.nc; c++ {
			res.BatchQueuedKWh += e.sched.QueuedKWh(c)
		}
	}
	dist, err := e.distTotal()
	if err != nil {
		return nil, err
	}
	res.MeanDistanceKm = dist.Mean()
	res.P99DistanceKm = dist.Quantile(0.99)
	e.finalized = true
	return res, nil
}

// Snapshot is a cheap, copy-safe view of the engine's running state for
// status endpoints: totals so far, the last interval's per-cluster rates,
// and battery/demand-charge state when those subsystems are active.
type Snapshot struct {
	Policy string // routing policy name
	// StoragePolicy names the battery dispatch policy ("" when the
	// scenario configures no storage); /v1/status and /v1/world report it.
	StoragePolicy string
	Steps         int // intervals advanced so far
	// At is the instant of the last advanced interval (zero before the
	// first Step); Next is the instant the next Step should cover.
	At   time.Time
	Next time.Time

	TotalCost   units.Money  // running bill so far (incl. open-month demand charges)
	TotalEnergy units.Energy // running grid energy so far
	// EnergyCost and DemandCharge split TotalCost exactly as in Result;
	// the demand charge is the bill if every open month ended now.
	EnergyCost   units.Money
	DemandCharge units.Money

	ClusterCost []units.Money // running per-cluster bill, fleet order
	// ClusterRate is the last interval's per-cluster assigned rate.
	ClusterRate []float64
	PeakRate    []float64 // per-cluster maximum assigned rate so far

	PeakGridKW         []float64 // nil unless a demand-charge tariff is metered
	SoCKWh             []float64 // nil unless storage is configured
	StorageBoughtKWh   float64   // grid energy bought into batteries so far
	StorageServedKWh   float64   // load energy served from batteries so far
	TotalCarbonKg      float64   // emissions so far (zero unless carbon is metered)
	OverloadHitSeconds float64   // demand-beyond-capacity seconds so far

	// Batch (deferrable) class ledgers; BatchQueuedKWh is nil unless the
	// scenario configures the class.
	BatchQueuedKWh        []float64 // per-cluster unserved queued energy right now
	BatchServedKWh        float64   // batch energy served so far, fleet-wide
	BatchShedKWh          float64   // batch energy abandoned at deadlines so far
	BatchDeferredKWhSteps float64   // queue residence integral (kWh·steps) so far

	// BurstLeases books the coordinated burst-token traffic per cluster,
	// fleet order; nil unless the scenario configures a BurstGate.
	BurstLeases []billing.LeaseLedgerState
}

// Snapshot captures the running state into a fresh Snapshot. It never
// mutates the engine and is valid before, during, and after Finalize.
// Callers polling on a hot path should hold a Snapshot and pass it to
// SnapshotInto instead.
func (e *Engine) Snapshot() *Snapshot { return e.SnapshotInto(nil) }

// SnapshotInto captures the running state, reusing dst's slices when their
// capacity allows (a nil dst allocates a fresh Snapshot). Every field of
// dst is overwritten, so a recycled Snapshot never leaks stale state. This
// keeps /v1/status and /metrics polling from pressuring the GC: after the
// first call a reused Snapshot makes the capture allocation-free.
func (e *Engine) SnapshotInto(dst *Snapshot) *Snapshot {
	if dst == nil {
		dst = new(Snapshot)
	}
	dst.Policy = e.res.Policy
	dst.StoragePolicy = e.dispatchName
	dst.Steps = e.stepsRun
	dst.At = e.lastAt
	dst.Next = e.Next()
	dst.ClusterCost = append(dst.ClusterCost[:0], e.res.ClusterCost...)
	dst.ClusterRate = append(dst.ClusterRate[:0], e.loads...)
	dst.PeakRate = append(dst.PeakRate[:0], e.res.PeakRate...)
	dst.DemandCharge = 0
	if e.finalized {
		// Result already folded the demand charge into the totals.
		dst.TotalCost = e.res.TotalCost
		dst.TotalEnergy = e.res.TotalEnergy
		dst.EnergyCost = e.res.EnergyCost
		dst.DemandCharge = e.res.DemandCharge
		dst.OverloadHitSeconds = e.res.OverloadHitSeconds
		dst.StorageBoughtKWh = e.res.StorageBoughtKWh
		dst.StorageServedKWh = e.res.StorageServedKWh
		dst.TotalCarbonKg = e.res.TotalCarbonKg
	} else {
		cost, energy, overload, bought, served, carbon := e.totals()
		dst.TotalCost, dst.EnergyCost = cost, cost
		dst.TotalEnergy = energy
		dst.OverloadHitSeconds = overload
		dst.StorageBoughtKWh = bought
		dst.StorageServedKWh = served
		dst.TotalCarbonKg = carbon
		if e.demandMeters != nil {
			for _, m := range e.demandMeters {
				dst.DemandCharge += m.Charge(e.sc.DemandChargePerKW)
			}
			dst.TotalCost += dst.DemandCharge
		}
	}
	if e.demandMeters != nil {
		dst.PeakGridKW = dst.PeakGridKW[:0]
		for _, m := range e.demandMeters {
			dst.PeakGridKW = append(dst.PeakGridKW, m.PeakKW())
		}
	} else {
		dst.PeakGridKW = nil
	}
	if e.batteries != nil {
		dst.SoCKWh = dst.SoCKWh[:0]
		for _, b := range e.batteries {
			dst.SoCKWh = append(dst.SoCKWh, b.SoCKWh())
		}
	} else {
		dst.SoCKWh = nil
	}
	if e.sched != nil {
		dst.BatchQueuedKWh = dst.BatchQueuedKWh[:0]
		for c := 0; c < e.nc; c++ {
			dst.BatchQueuedKWh = append(dst.BatchQueuedKWh, e.sched.QueuedKWh(c))
		}
		dst.BatchServedKWh, dst.BatchShedKWh, dst.BatchDeferredKWhSteps = e.batchTotals()
	} else {
		dst.BatchQueuedKWh = nil
		dst.BatchServedKWh, dst.BatchShedKWh, dst.BatchDeferredKWhSteps = 0, 0, 0
	}
	if e.leases != nil {
		dst.BurstLeases = dst.BurstLeases[:0]
		for _, l := range e.leases {
			dst.BurstLeases = append(dst.BurstLeases, l.State())
		}
	} else {
		dst.BurstLeases = nil
	}
	return dst
}

// Assignments copies the last interval's full state×cluster assignment
// matrix into dst (allocating when dst is nil or mis-sized) and returns it.
func (e *Engine) Assignments(dst [][]float64) [][]float64 {
	if len(dst) != e.ns {
		dst = make([][]float64, e.ns)
	}
	for s := range e.assign {
		if len(dst[s]) != e.nc {
			dst[s] = make([]float64, e.nc)
		}
		copy(dst[s], e.assign[s])
	}
	return dst
}
