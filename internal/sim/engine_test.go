package sim

import (
	"reflect"
	"testing"
	"time"

	"powerroute/internal/carbon"
	"powerroute/internal/energy"
	"powerroute/internal/routing"
	"powerroute/internal/sched"
	"powerroute/internal/stats"
	"powerroute/internal/storage"
	"powerroute/internal/timeseries"
	"powerroute/internal/traffic"
)

// driveSteps advances eng through the next `steps` intervals the way an
// online caller (the powerrouted daemon) would: explicit per-interval
// price and demand vectors fed into Step, picking up from wherever the
// engine's cursor stands. It mirrors Run's lookup semantics exactly —
// same delay clamp, same covering sample — so driving a full scenario
// must be bit-for-bit the batch Result.
func driveSteps(t testing.TB, eng *Engine, sc Scenario, steps int) {
	t.Helper()
	prices := eng.PriceSeries()
	signal := prices
	if sc.DecisionSeries != nil {
		signal = sc.DecisionSeries
	}
	nc := len(sc.Fleet.Clusters)
	decision := make([]float64, nc)
	bill := make([]float64, nc)
	var carbonVec []float64
	if sc.Carbon != nil {
		carbonVec = make([]float64, nc)
	}
	var demand []float64
	marketStart := prices[0].Start
	for step := 0; step < steps; step++ {
		at := eng.Next()
		demand = sc.Demand.Rates(at, demand)
		decisionAt := at.Add(-sc.ReactionDelay)
		if decisionAt.Before(marketStart) {
			decisionAt = marketStart
		}
		for c := range signal {
			v, err := signal[c].At(decisionAt)
			if err != nil {
				t.Fatal(err)
			}
			decision[c] = v
		}
		for c := range prices {
			v, err := prices[c].At(at)
			if err != nil {
				t.Fatal(err)
			}
			bill[c] = v
		}
		if sc.Carbon != nil {
			for c := range sc.Carbon {
				v, err := sc.Carbon[c].At(at)
				if err != nil {
					t.Fatal(err)
				}
				carbonVec[c] = v
			}
		}
		if err := eng.Step(at, StepPrices{Decision: decision, Bill: bill, Carbon: carbonVec}, demand); err != nil {
			t.Fatalf("step %d at %v: %v", step, at, err)
		}
	}
}

// driveEngine replays the whole scenario through a fresh Engine and closes
// the books.
func driveEngine(t testing.TB, sc Scenario) *Result {
	t.Helper()
	eng, err := NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, eng, sc, sc.Steps)
	res, err := eng.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// engineScenarios covers every subsystem the step loop threads state
// through: plain routing, 95/5 constraints, carbon-aware decision
// override, and batteries plus a demand-charge tariff.
func engineScenarios(t testing.TB) map[string]Scenario {
	t.Helper()
	fx := fixtures()

	base := shortScenario()
	opt, err := routing.NewPriceOptimizer(fx.Fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	base.Policy = opt

	capped := shortScenario()
	caps, _, err := DeriveCaps(capped)
	if err != nil {
		t.Fatal(err)
	}
	opt2, err := routing.NewPriceOptimizer(fx.Fleet, 2500, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	capped.Policy = opt2
	capped.SoftCaps = caps

	intensity, err := carbon.FleetSeries(1, fx.Fleet, fx.Market.Start, fx.Market.Hours)
	if err != nil {
		t.Fatal(err)
	}
	carbonAware := Scenario{
		Fleet:          fx.Fleet,
		Policy:         routing.NewBaseline(fx.Fleet),
		Energy:         energy.OptimisticFuture,
		Market:         fx.Market,
		Demand:         fx.LR,
		Start:          fx.Market.Start,
		Steps:          10 * 24,
		Step:           time.Hour,
		ReactionDelay:  DefaultReactionDelay,
		Carbon:         intensity,
		DecisionSeries: intensity,
	}

	dispatch, err := storage.NewThreshold(25, 55)
	if err != nil {
		t.Fatal(err)
	}
	stored := Scenario{
		Fleet:         fx.Fleet,
		Policy:        routing.NewBaseline(fx.Fleet),
		Energy:        energy.OptimisticFuture,
		Market:        fx.Market,
		Demand:        fx.LR,
		Start:         fx.Market.Start,
		Steps:         10 * 24,
		Step:          time.Hour,
		ReactionDelay: DefaultReactionDelay,
		Storage: &storage.Config{
			Batteries: uniformBatteries(len(fx.Fleet.Clusters)),
			Policy:    dispatch,
		},
		DemandChargePerKW: 3,
	}
	stored.Storage.RoutingAware = true

	// The Lyapunov scenario exercises the fourth dispatch policy through
	// every harness built on this map: zero allocs per Step, checkpoint
	// round-trip bit-exactness, and restore-equals-uninterrupted.
	lyPrices := make([]*timeseries.Series, len(fx.Fleet.Clusters))
	for c, cl := range fx.Fleet.Clusters {
		s, err := fx.Market.RT(cl.HubID)
		if err != nil {
			t.Fatal(err)
		}
		lyPrices[c] = s
	}
	lyapunov, err := storage.NewLyapunov(lyPrices, uniformBatteries(len(fx.Fleet.Clusters)), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lyStored := stored
	lyStored.Storage = &storage.Config{
		Batteries:    uniformBatteries(len(fx.Fleet.Clusters)),
		Policy:       lyapunov,
		RoutingAware: true,
	}

	// The batch scenario threads the deferrable scheduler through every
	// harness built on this map: zero allocs per Step, checkpoint
	// round-trip bit-exactness, and restore-equals-uninterrupted. Tight
	// capacity, a peak guard, migration, and mixed floors keep all four
	// dispatch phases (expiry, urgent, gated, migrated) busy.
	batched := shortScenario()
	batched.Policy = opt
	batched.DemandChargePerKW = 3
	batched.Batch = batchTestConfig(t, batched)

	return map[string]Scenario{
		"optimizer":    base,
		"softcaps":     capped,
		"carbon-aware": carbonAware,
		"storage":      stored,
		"lyapunov":     lyStored,
		"batch":        batched,
	}
}

// batchTestConfig builds a deferrable-batch config sized to a short
// scenario: per-cluster price gates at the hub's p40 real-time quantile,
// a modest serving capacity, and a job stream with staggered arrivals,
// deadlines, and execution floors.
func batchTestConfig(t testing.TB, sc Scenario) *sched.Config {
	t.Helper()
	fx := fixtures()
	nc := len(sc.Fleet.Clusters)
	cfg := &sched.Config{
		MaxBatchKW: make([]float64, nc),
		Thresholds: make([]float64, nc),
		PeakGuard:  true,
		Migrate:    true,
	}
	for c, cl := range sc.Fleet.Clusters {
		cfg.MaxBatchKW[c] = 40
		rt, err := fx.Market.RT(cl.HubID)
		if err != nil {
			t.Fatal(err)
		}
		q, err := stats.Quantile(rt.Values, 0.40)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Thresholds[c] = q
	}
	for arrival := 0; arrival+12 < sc.Steps; arrival += 6 {
		for c := 0; c < nc; c++ {
			cfg.Jobs = append(cfg.Jobs, sched.Job{
				Cluster:     c,
				Arrival:     arrival,
				Deadline:    arrival + 4 + 3*(c%4),
				EnergyKWh:   120 + 15*float64(c),
				MinFraction: []float64{0, 0.5, 1}[(arrival/6+c)%3],
			})
		}
	}
	return cfg
}

func uniformBatteries(n int) []storage.Battery {
	bs := make([]storage.Battery, n)
	for i := range bs {
		bs[i] = storage.Battery{
			CapacityKWh:         800,
			MaxChargeKW:         300,
			MaxDischargeKW:      200,
			RoundTripEfficiency: 0.81,
		}
	}
	return bs
}

// TestEngineMatchesRunExactly: feeding an Engine by hand must reproduce
// the batch Run bit for bit — same costs, same float residue, same
// everything — across every subsystem combination.
func TestEngineMatchesRunExactly(t *testing.T) {
	for name, sc := range engineScenarios(t) {
		t.Run(name, func(t *testing.T) {
			// Policies carry per-run caches, so each side gets its own.
			batch, err := Run(clonePolicy(t, sc))
			if err != nil {
				t.Fatal(err)
			}
			stepped := driveEngine(t, clonePolicy(t, sc))
			if !reflect.DeepEqual(batch, stepped) {
				t.Fatalf("engine result diverges from batch Run:\nbatch:   %+v\nstepped: %+v", batch, stepped)
			}
		})
	}
}

// clonePolicy returns sc with a fresh policy instance of the same kind, so
// two runs never share a PriceOptimizer's order cache.
func clonePolicy(t testing.TB, sc Scenario) Scenario {
	t.Helper()
	switch p := sc.Policy.(type) {
	case *routing.PriceOptimizer:
		fresh, err := routing.NewPriceOptimizer(sc.Fleet, p.ThresholdKm(), routing.DefaultPriceThreshold)
		if err != nil {
			t.Fatal(err)
		}
		sc.Policy = fresh
	case *routing.Baseline:
		sc.Policy = routing.NewBaseline(sc.Fleet)
	}
	return sc
}

// TestEngineLifecycle pins the incremental API contract: Next advances
// with the clock, Snapshot tracks running totals without finalizing,
// Finalize is idempotent, and Step after Finalize fails.
func TestEngineLifecycle(t *testing.T) {
	fx := fixtures()
	sc := shortScenario()
	sc.Policy = routing.NewBaseline(fx.Fleet)
	eng, err := NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Next(); !got.Equal(sc.Start) {
		t.Fatalf("Next before first step = %v, want %v", got, sc.Start)
	}

	prices := eng.PriceSeries()
	nc := len(sc.Fleet.Clusters)
	bill := make([]float64, nc)
	var demand []float64
	for step := 0; step < 2*traffic.SamplesPerDay; step++ {
		at := eng.Next()
		demand = sc.Demand.Rates(at, demand)
		for c := range prices {
			v, err := prices[c].At(at)
			if err != nil {
				t.Fatal(err)
			}
			bill[c] = v
		}
		if err := eng.Step(at, StepPrices{Decision: bill, Bill: bill}, demand); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.StepsRun(); got != 2*traffic.SamplesPerDay {
		t.Fatalf("StepsRun = %d, want %d", got, 2*traffic.SamplesPerDay)
	}
	if want := sc.Start.Add(time.Duration(2*traffic.SamplesPerDay) * sc.Step); !eng.Next().Equal(want) {
		t.Fatalf("Next = %v, want %v", eng.Next(), want)
	}

	snap := eng.Snapshot()
	if snap.Steps != 2*traffic.SamplesPerDay || snap.TotalCost <= 0 || snap.TotalEnergy <= 0 {
		t.Fatalf("implausible snapshot: %+v", snap)
	}
	var rate float64
	for _, r := range snap.ClusterRate {
		rate += r
	}
	if rate <= 0 {
		t.Fatal("snapshot lost the last interval's rates")
	}

	res, err := eng.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 2*traffic.SamplesPerDay {
		t.Fatalf("finalized Steps = %d", res.Steps)
	}
	again, err := eng.Finalize()
	if err != nil || again != res {
		t.Fatalf("Finalize not idempotent: %v, %v", again, err)
	}
	if err := eng.Step(eng.Next(), StepPrices{Decision: bill, Bill: bill}, demand); err == nil {
		t.Fatal("Step after Finalize must fail")
	}
	if _, err := eng.Finalize(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineInputValidation: mis-sized vectors fail fast with the books
// untouched.
func TestEngineInputValidation(t *testing.T) {
	fx := fixtures()
	sc := shortScenario()
	sc.Policy = routing.NewBaseline(fx.Fleet)
	eng, err := NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	nc := len(sc.Fleet.Clusters)
	ns := len(sc.Fleet.States)
	good := make([]float64, nc)
	demand := make([]float64, ns)
	cases := []struct {
		name     string
		decision []float64
		bill     []float64
		demand   []float64
	}{
		{"short demand", good, good, make([]float64, ns-1)},
		{"short decision", make([]float64, nc-1), good, demand},
		{"short bill", good, make([]float64, nc+1), demand},
	}
	for _, tc := range cases {
		if err := eng.Step(eng.Next(), StepPrices{Decision: tc.decision, Bill: tc.bill}, tc.demand); err == nil {
			t.Errorf("%s: Step accepted bad input", tc.name)
		}
	}
	if eng.StepsRun() != 0 {
		t.Fatalf("failed steps advanced the engine: %d", eng.StepsRun())
	}
	// Finalize with zero steps has no percentiles to report.
	if _, err := eng.Finalize(); err == nil {
		t.Fatal("Finalize before any step must fail")
	}
}

// TestValidateStepAlignment: steps that do not tile the market hour are
// rejected instead of silently drifting across hourly price boundaries.
func TestValidateStepAlignment(t *testing.T) {
	good := shortScenario()
	good.Policy = routing.NewBaseline(good.Fleet)
	for _, step := range []time.Duration{7 * time.Minute, 25 * time.Minute, 90 * time.Minute, time.Hour + time.Nanosecond} {
		sc := good
		sc.Step = step
		if _, err := Run(sc); err == nil {
			t.Errorf("step %v accepted; misaligned price lookups", step)
		}
	}
	for _, step := range []time.Duration{5 * time.Minute, 30 * time.Minute, time.Hour, 2 * time.Hour} {
		sc := good
		sc.Step = step
		if err := sc.validate(); err != nil {
			t.Errorf("step %v rejected: %v", step, err)
		}
	}
}
