// Package sim is the discrete-time simulation engine of §6: it steps
// through a workload, lets a routing policy allocate traffic to clusters at
// each step (seeing prices delayed by the configured reaction time), models
// each cluster's power draw with the §5.1 energy model, and prices the
// energy with the market's hourly real-time prices.
//
// Costs are metered per cluster (Fig 19), client-server distance is metered
// as a hit-weighted distribution (Fig 17), and per-cluster 95/5 constraints
// derived from a baseline run can be enforced (Fig 15, 16, 18).
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/energy"
	"powerroute/internal/market"
	"powerroute/internal/routing"
	"powerroute/internal/sched"
	"powerroute/internal/storage"
	"powerroute/internal/timeseries"
	"powerroute/internal/traffic"
	"powerroute/internal/units"
)

// DemandSource yields per-state demand at an instant. traffic.LongRun
// satisfies it directly; TraceDemand adapts a 5-minute trace.
type DemandSource interface {
	Rates(at time.Time, dst []float64) []float64
}

// DefaultReactionDelay is the paper's conservative assumption: "there was a
// one hour delay between the market setting new prices and the system
// propagating new routes" (§6.1).
const DefaultReactionDelay = time.Hour

// Scenario describes one simulation run. Every field is treated as
// immutable once an Engine is built from it: the world hash
// (Engine.WorldHash) digests the fleet, prices, policy name, tariffs,
// and storage configuration, and checkpoints refuse to restore into a
// scenario whose hash differs. Runs are deterministic functions of the
// scenario — same scenario, same Result, bit for bit.
type Scenario struct {
	Fleet  *cluster.Fleet  // cluster geometry and client states (fleet order defines every per-cluster vector)
	Policy routing.Policy  // routing policy; its Name() is echoed in results and checkpoints
	Energy energy.Model    // §5.1 power model mapping utilization to grid draw
	Market *market.Dataset // per-hub hourly real-time price history (the billing signal)
	Demand DemandSource    // per-state demand rates for each interval

	Start time.Time     // instant the first interval covers
	Steps int           // horizon length in intervals
	Step  time.Duration // interval length; must tile the market hour exactly

	// ReactionDelay lags the prices the router sees behind the prices the
	// bill is computed with (§6.4). Zero means immediate reaction; the
	// paper's default is one hour.
	ReactionDelay time.Duration

	// SoftCaps, when non-nil, enforces per-cluster 95/5 constraints: the
	// cluster's rate may exceed SoftCaps[c] in at most 5% of intervals.
	// Derive the caps from a baseline run (DeriveCaps).
	SoftCaps []float64

	// BurstGate, when non-nil, puts the 95/5 burst gate under coordinated
	// (fleet-wide) control: instead of comparing its own total demand
	// against its own total room, the engine asks the gate whether this
	// step's fleet-wide demand unlocks burst headroom, and books every
	// granted/used/expired burst token in per-cluster lease ledgers that
	// ride in checkpoints. SelfGate reproduces the local decision (for
	// whole-world engines that must stay byte-comparable with a merged
	// shard fleet); a LeaseStore replays gate bits brokered by a
	// coordinator. Requires SoftCaps. Nil keeps the exact engine-local
	// code path with no ledgers.
	BurstGate BurstGate

	// DecisionSeries, when non-nil, overrides the per-cluster signal the
	// router optimizes (still subject to ReactionDelay). The bill is
	// always computed from real-time dollar prices; this hook lets a
	// carbon-aware router minimize gCO₂ while the ledger stays in dollars
	// (§8 "Environmental Cost").
	DecisionSeries []*timeseries.Series

	// Carbon, when non-nil, meters per-cluster emissions using these
	// hourly intensity series (gCO₂/kWh).
	Carbon []*timeseries.Series

	// Storage, when non-nil, installs a battery behind each cluster's grid
	// meter. Each step the dispatch policy sees the cluster's current
	// real-time price (site controllers react locally, so no reaction
	// delay) and the grid draw becomes IT draw + charging − discharging;
	// discharge is capped at the IT draw so the meter never runs backwards.
	// Zero-capacity batteries reproduce a storage-free run exactly.
	Storage *storage.Config

	// DemandChargePerKW, when positive, adds a demand-charge tariff on top
	// of energy billing: each cluster pays its monthly peak grid draw (kW)
	// times this rate ($/kW-month). Zero keeps pure energy billing.
	DemandChargePerKW float64

	// Batch, when non-nil, adds the deferrable traffic class: batch jobs
	// with deadlines and partial-execution floors held in per-cluster
	// scheduler queues, deferred past price spikes and demand-charge
	// peaks, and (optionally) migrated across the routing candidates.
	// Nil keeps the exact interactive-only code path.
	Batch *sched.Config

	// Shard identity, set by Scenario.Shard: the parent world's hash and
	// this shard's cluster/state positions in the parent fleet. Zero for
	// ordinary (whole-world) scenarios. Checkpoints echo these so
	// MergeCheckpoints can scatter per-cluster state back into fleet
	// positions and verify every part came from the same parent world.
	shardOf       string
	shardClusters []int
	shardStates   []int
}

func (sc *Scenario) validate() error {
	if sc.Fleet == nil || sc.Policy == nil || sc.Market == nil || sc.Demand == nil {
		return errors.New("sim: scenario missing fleet, policy, market, or demand")
	}
	if err := sc.Energy.Validate(); err != nil {
		return err
	}
	if sc.Steps <= 0 {
		return errors.New("sim: non-positive step count")
	}
	if sc.Step <= 0 {
		return errors.New("sim: non-positive step duration")
	}
	// Market prices are hourly; a step that does not tile the hour (or a
	// multi-hour step that is not a whole number of hours) drifts across
	// price boundaries, so each interval would silently be billed at the
	// price of whichever hour its start happens to land in.
	if sc.Step < time.Hour && time.Hour%sc.Step != 0 {
		return fmt.Errorf("sim: step %v does not divide the market hour", sc.Step)
	}
	if sc.Step > time.Hour && sc.Step%time.Hour != 0 {
		return fmt.Errorf("sim: step %v is not a whole number of market hours", sc.Step)
	}
	if sc.ReactionDelay < 0 {
		return errors.New("sim: negative reaction delay")
	}
	if sc.SoftCaps != nil && len(sc.SoftCaps) != len(sc.Fleet.Clusters) {
		return fmt.Errorf("sim: %d soft caps for %d clusters", len(sc.SoftCaps), len(sc.Fleet.Clusters))
	}
	if sc.BurstGate != nil && sc.SoftCaps == nil {
		return errors.New("sim: burst gate configured without soft caps")
	}
	if sc.DecisionSeries != nil && len(sc.DecisionSeries) != len(sc.Fleet.Clusters) {
		return fmt.Errorf("sim: %d decision series for %d clusters", len(sc.DecisionSeries), len(sc.Fleet.Clusters))
	}
	if sc.Carbon != nil && len(sc.Carbon) != len(sc.Fleet.Clusters) {
		return fmt.Errorf("sim: %d carbon series for %d clusters", len(sc.Carbon), len(sc.Fleet.Clusters))
	}
	if sc.Storage != nil {
		if err := sc.Storage.Validate(len(sc.Fleet.Clusters)); err != nil {
			return err
		}
	}
	// NaN would slip past a plain sign check and silently disable the
	// tariff at the > 0 metering gate; +Inf would bill infinite charges.
	if !(sc.DemandChargePerKW >= 0) || math.IsInf(sc.DemandChargePerKW, 1) {
		return errors.New("sim: demand charge rate must be non-negative and finite")
	}
	if sc.Batch != nil {
		if err := sc.Batch.Validate(len(sc.Fleet.Clusters)); err != nil {
			return err
		}
	}
	return nil
}

// Result is the outcome of a run. Per-cluster vectors are in fleet
// order; fleet-wide figures are derived from them in fleet order at
// Finalize time (never accumulated across clusters), which is what lets
// a shard-merged run reproduce the joint run's totals bit for bit.
type Result struct {
	Policy string // routing policy name (configuration echo)
	Steps  int    // intervals actually run

	TotalCost   units.Money  // the full bill: energy plus any demand charge
	TotalEnergy units.Energy // total grid energy drawn

	ClusterCost   []units.Money  // per-cluster bill (incl. demand charge once finalized)
	ClusterEnergy []units.Energy // per-cluster grid energy
	// BillableP95 is each cluster's 95th-percentile rate over the run: its
	// 95/5 bandwidth bill (§4).
	BillableP95 []float64
	// PeakRate is each cluster's maximum rate over the run.
	PeakRate []float64
	// MeanUtilization is each cluster's time-averaged utilization.
	MeanUtilization []float64

	// MeanDistanceKm and P99DistanceKm describe the hit-weighted
	// client-server distance distribution (Fig 17). The histogram is kept
	// per cluster and folded in fleet order at Finalize time, so like
	// every other figure they reproduce bit for bit across a shard merge.
	MeanDistanceKm float64
	P99DistanceKm  float64

	// OverloadHitSeconds accumulates demand assigned beyond physical
	// capacity (clamped in the power model). Should be ≈ 0 in healthy runs.
	OverloadHitSeconds float64

	// BurstsUsed is the number of over-cap intervals per cluster when 95/5
	// constraints were enforced.
	BurstsUsed []int

	// TotalCarbonKg and ClusterCarbonKg report emissions when the scenario
	// supplied carbon intensity series (§8 extension); zero and nil
	// otherwise.
	TotalCarbonKg   float64
	ClusterCarbonKg []float64

	// EnergyCost and DemandCharge split TotalCost under a demand-charge
	// tariff: TotalCost = EnergyCost + DemandCharge. Without a tariff,
	// EnergyCost equals TotalCost and DemandCharge is zero.
	// ClusterDemandCharge is the per-cluster tariff split (nil unless
	// metered).
	EnergyCost          units.Money
	DemandCharge        units.Money
	ClusterDemandCharge []units.Money
	// PeakGridKW is each cluster's maximum interval-average grid draw,
	// the demand-charge billing determinant (non-nil only when metered).
	PeakGridKW []float64

	// StorageBoughtKWh and StorageServedKWh total the grid energy bought
	// into batteries and the load energy they served; FinalSoCKWh is each
	// battery's remaining charge (non-nil only when storage is configured).
	StorageBoughtKWh float64
	StorageServedKWh float64
	FinalSoCKWh      []float64

	// Batch class ledgers, all zero unless the scenario configures it:
	// energy served, energy shed at expired deadlines, energy still queued
	// at finalize, and the queue residence integral (kWh·steps) — the
	// SLA-side axis of the deferral-vs-bill trade.
	BatchServedKWh        float64
	BatchShedKWh          float64
	BatchQueuedKWh        float64
	BatchDeferredKWhSteps float64
}

// SavingsVersus returns 1 − cost/base, the percentage-style savings of this
// run against a reference.
func (r *Result) SavingsVersus(base *Result) float64 {
	if base.TotalCost == 0 {
		return 0
	}
	return 1 - float64(r.TotalCost)/float64(base.TotalCost)
}

// NormalizedCost returns cost/base (Fig 16/18's y-axis).
func (r *Result) NormalizedCost(base *Result) float64 {
	if base.TotalCost == 0 {
		return 0
	}
	return float64(r.TotalCost) / float64(base.TotalCost)
}

// seriesLookup resolves one value per cluster at an instant. When every
// series shares one geometry — the common case: all hub price series come
// from the same hourly market — the sample index is computed once per
// instant instead of once per series, keeping the time arithmetic out of
// the per-cluster hot loop. Mismatched geometries fall back to Series.At.
type seriesLookup struct {
	series []*timeseries.Series
	start  time.Time
	step   time.Duration
	n      int
	shared bool
}

func newSeriesLookup(series []*timeseries.Series) seriesLookup {
	l := seriesLookup{series: series}
	if len(series) == 0 {
		return l
	}
	first := series[0]
	l.start, l.step, l.n = first.Start, first.Step, first.Len()
	l.shared = l.step > 0
	for _, s := range series[1:] {
		if !s.Start.Equal(l.start) || s.Step != l.step || s.Len() != l.n {
			l.shared = false
			break
		}
	}
	return l
}

// values fills dst[c] with series[c]'s value covering instant at.
func (l *seriesLookup) values(at time.Time, dst []float64) error {
	if l.shared {
		d := at.Sub(l.start)
		if d < 0 {
			return fmt.Errorf("timeseries: %v precedes series start %v", at, l.start)
		}
		i := int(d / l.step)
		if i >= l.n {
			return fmt.Errorf("timeseries: %v past series end %v", at, l.start.Add(time.Duration(l.n)*l.step))
		}
		for c, s := range l.series {
			dst[c] = s.Values[i]
		}
		return nil
	}
	for c, s := range l.series {
		v, err := s.At(at)
		if err != nil {
			return err
		}
		dst[c] = v
	}
	return nil
}

// Run executes the scenario as a batch: a thin loop that looks up each
// interval's prices, demand, and carbon intensity from the scenario's
// series and advances an Engine one Step at a time.
func Run(sc Scenario) (*Result, error) {
	eng, err := NewEngine(sc)
	if err != nil {
		return nil, err
	}
	nc := len(sc.Fleet.Clusters)
	prices := eng.PriceSeries()

	signal := prices
	if sc.DecisionSeries != nil {
		signal = sc.DecisionSeries
	}
	billLookup := newSeriesLookup(prices)
	decisionLookup := newSeriesLookup(signal)
	var carbonLookup seriesLookup
	var carbonIntensity []float64
	if sc.Carbon != nil {
		carbonLookup = newSeriesLookup(sc.Carbon)
		carbonIntensity = make([]float64, nc)
	}

	var demand []float64
	decisionPrices := make([]float64, nc)
	billPrices := make([]float64, nc)

	marketStart := prices[0].Start
	for step := 0; step < sc.Steps; step++ {
		at := sc.Start.Add(time.Duration(step) * sc.Step)

		// Demand.
		demand = sc.Demand.Rates(at, demand)

		// Decision signal: delayed, clamped to the start of market data.
		decisionAt := at.Add(-sc.ReactionDelay)
		if decisionAt.Before(marketStart) {
			decisionAt = marketStart
		}
		if err := decisionLookup.values(decisionAt, decisionPrices); err != nil {
			return nil, fmt.Errorf("sim: decision signal at %v: %w", decisionAt, err)
		}
		// Billing prices for this instant (always real-time dollars).
		if err := billLookup.values(at, billPrices); err != nil {
			return nil, fmt.Errorf("sim: billing price at %v: %w", at, err)
		}
		if sc.Carbon != nil {
			if err := carbonLookup.values(at, carbonIntensity); err != nil {
				return nil, fmt.Errorf("sim: carbon intensity at %v: %w", at, err)
			}
		}
		if err := eng.Step(at, StepPrices{
			Decision: decisionPrices,
			Bill:     billPrices,
			Carbon:   carbonIntensity,
		}, demand); err != nil {
			return nil, err
		}
	}
	return eng.Finalize()
}

// DeriveCaps runs the scenario under the Akamai-like baseline policy with
// no constraints and returns the observed per-cluster 95th percentiles
// (the caps a constrained run must not exceed, §4) along with the baseline
// result itself.
func DeriveCaps(sc Scenario) ([]float64, *Result, error) {
	sc.Policy = routing.NewBaseline(sc.Fleet)
	sc.SoftCaps = nil
	res, err := Run(sc)
	if err != nil {
		return nil, nil, err
	}
	caps := make([]float64, len(res.BillableP95))
	copy(caps, res.BillableP95)
	return caps, res, nil
}

// TraceDemand adapts a 5-minute traffic trace to the DemandSource
// interface. Instants are snapped to the covering 5-minute sample; times
// outside the trace return an all-zero demand vector.
type TraceDemand struct {
	start   time.Time
	samples int
	rates   [][]float64 // [state][sample]
}

// NewTraceDemand builds the adapter from per-state rate slices.
func NewTraceDemand(start time.Time, samples int, perState [][]float64) (*TraceDemand, error) {
	if len(perState) == 0 {
		return nil, errors.New("sim: empty trace demand")
	}
	for i := range perState {
		if len(perState[i]) != samples {
			return nil, fmt.Errorf("sim: state %d has %d samples, want %d", i, len(perState[i]), samples)
		}
	}
	return &TraceDemand{start: start.UTC(), samples: samples, rates: perState}, nil
}

// Rates implements DemandSource.
func (td *TraceDemand) Rates(at time.Time, dst []float64) []float64 {
	if len(dst) != len(td.rates) {
		dst = make([]float64, len(td.rates))
	}
	// Go's integer division truncates toward zero, so a bare int(d/step)
	// would map instants up to one step *before* the trace start onto
	// sample 0; the pre-start side needs its own check.
	idx := -1
	if !at.Before(td.start) {
		idx = int(at.Sub(td.start) / timeseries.FiveMinute)
	}
	if idx < 0 || idx >= td.samples {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i := range td.rates {
		dst[i] = td.rates[i][idx]
	}
	return dst
}

// FromTrace builds a TraceDemand view over a traffic trace (the underlying
// rate slices are shared, not copied).
func FromTrace(tr *traffic.Trace) (*TraceDemand, error) {
	perState := make([][]float64, len(tr.States))
	for i := range tr.States {
		perState[i] = tr.States[i].Rate
	}
	return NewTraceDemand(tr.Start, tr.Samples, perState)
}
