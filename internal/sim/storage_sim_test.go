package sim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/energy"
	"powerroute/internal/market"
	"powerroute/internal/routing"
	"powerroute/internal/storage"
	"powerroute/internal/timeseries"
	"powerroute/internal/units"
)

// oneClusterWorld builds a deterministic single-cluster world over a
// 1-month market whose NYC hourly prices are overwritten with a square
// wave: cheap for local hours [0,12), expensive for [12,24). The market is
// generated fresh per call, so tests may mutate its series freely.
func oneClusterWorld(t *testing.T, cheap, dear float64) (*cluster.Fleet, *market.Dataset, routing.Policy) {
	t.Helper()
	mkt := market.MustGenerate(market.Config{Seed: 7, Months: 1})
	hub, err := market.HubByID("NYC")
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := cluster.NewFleet([]cluster.Cluster{{
		Code: "NY", HubID: hub.ID, Location: hub.Location, Zone: hub.Zone,
		Servers: 1000, Capacity: units.HitRate(1000 * cluster.HitsPerServer),
	}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := mkt.RT("NYC")
	if err != nil {
		t.Fatal(err)
	}
	for i := range rt.Values {
		if rt.TimeAt(i).Hour() < 12 {
			rt.Values[i] = cheap
		} else {
			rt.Values[i] = dear
		}
	}
	pol, err := routing.NewAllToOne(fleet, 0)
	if err != nil {
		t.Fatal(err)
	}
	return fleet, mkt, pol
}

// steadyDemand yields a constant per-state demand vector.
type steadyDemand struct {
	ns    int
	total float64
}

func (d steadyDemand) Rates(_ time.Time, dst []float64) []float64 {
	if len(dst) != d.ns {
		dst = make([]float64, d.ns)
	}
	per := d.total / float64(d.ns)
	for i := range dst {
		dst[i] = per
	}
	return dst
}

// dayNightDemand is low during local hours [0,12) and high during [12,24),
// aligned with oneClusterWorld's price wave.
type dayNightDemand struct {
	ns        int
	low, high float64
}

func (d dayNightDemand) Rates(at time.Time, dst []float64) []float64 {
	if len(dst) != d.ns {
		dst = make([]float64, d.ns)
	}
	total := d.low
	if at.Hour() >= 12 {
		total = d.high
	}
	per := total / float64(d.ns)
	for i := range dst {
		dst[i] = per
	}
	return dst
}

// TestStorageArbitrageSavesMoney checks the battery buys cheap hours and
// serves expensive ones: with a square-wave price and constant load, the
// energy bill with a battery is strictly below the no-battery bill.
func TestStorageArbitrageSavesMoney(t *testing.T) {
	fleet, mkt, pol := oneClusterWorld(t, 10, 100)
	sc := Scenario{
		Fleet:  fleet,
		Policy: pol,
		Energy: energy.OptimisticFuture,
		Market: mkt,
		Demand: steadyDemand{ns: fleet.StateCount(), total: 0.5 * float64(fleet.TotalCapacity())},
		Start:  mkt.Start,
		Steps:  10 * 24,
		Step:   time.Hour,
	}
	base, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	dispatch, err := storage.NewThreshold(20, 50)
	if err != nil {
		t.Fatal(err)
	}
	sc.Storage = storage.Uniform(storage.Battery{
		CapacityKWh:         500,
		MaxChargeKW:         250,
		MaxDischargeKW:      150, // below the ~180 kW IT draw: no grid export
		RoundTripEfficiency: 0.81,
	}, 1, dispatch)
	withBattery, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	if withBattery.StorageBoughtKWh <= 0 || withBattery.StorageServedKWh <= 0 {
		t.Fatalf("battery idle: bought %v kWh, served %v kWh",
			withBattery.StorageBoughtKWh, withBattery.StorageServedKWh)
	}
	if withBattery.TotalCost >= base.TotalCost {
		t.Errorf("battery run cost %v, baseline %v — arbitrage should save strictly",
			withBattery.TotalCost, base.TotalCost)
	}
	if withBattery.EnergyCost != withBattery.TotalCost || withBattery.DemandCharge != 0 {
		t.Errorf("no tariff configured but EnergyCost %v / DemandCharge %v / TotalCost %v",
			withBattery.EnergyCost, withBattery.DemandCharge, withBattery.TotalCost)
	}
	// Round-trip losses: served energy ≤ η × bought energy.
	if withBattery.StorageServedKWh > 0.81*withBattery.StorageBoughtKWh+1e-6 {
		t.Errorf("served %v kWh from %v kWh bought exceeds round-trip efficiency",
			withBattery.StorageServedKWh, withBattery.StorageBoughtKWh)
	}
}

// TestStoragePeakShaving checks the demand-charge component falls strictly
// when a battery rides through the expensive (and busy) half of each day:
// the monthly peak grid draw drops by the battery's discharge rate.
func TestStoragePeakShaving(t *testing.T) {
	fleet, mkt, pol := oneClusterWorld(t, 10, 100)
	capacity := float64(fleet.TotalCapacity())
	sc := Scenario{
		Fleet:  fleet,
		Policy: pol,
		Energy: energy.OptimisticFuture,
		Market: mkt,
		Demand: dayNightDemand{ns: fleet.StateCount(), low: 0.2 * capacity, high: 0.9 * capacity},
		Start:  mkt.Start,
		Steps:  10 * 24,
		Step:   time.Hour,
		// $10/kW-month, a typical commercial demand rate.
		DemandChargePerKW: 10,
	}
	base, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if base.DemandCharge <= 0 || base.TotalCost != base.EnergyCost+base.DemandCharge {
		t.Fatalf("tariff accounting broken: total %v = energy %v + demand %v?",
			base.TotalCost, base.EnergyCost, base.DemandCharge)
	}

	dispatch, err := storage.NewThreshold(20, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Sized so the battery sustains its full 50 kW for the entire 12-hour
	// expensive block (needs 600 kWh served = 667 kWh stored), while the
	// 80 kW charging draw keeps cheap-hour grid below the shaved peak.
	sc.Storage = storage.Uniform(storage.Battery{
		CapacityKWh:         800,
		MaxChargeKW:         80,
		MaxDischargeKW:      50,
		RoundTripEfficiency: 0.81,
	}, 1, dispatch)
	shaved, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	if shaved.PeakGridKW[0] >= base.PeakGridKW[0] {
		t.Errorf("peak grid draw %v kW not below baseline %v kW",
			shaved.PeakGridKW[0], base.PeakGridKW[0])
	}
	if want := base.PeakGridKW[0] - 50; math.Abs(shaved.PeakGridKW[0]-want) > 1 {
		t.Errorf("peak grid draw %v kW, want ≈ %v (baseline − discharge rate)",
			shaved.PeakGridKW[0], want)
	}
	if shaved.DemandCharge >= base.DemandCharge {
		t.Errorf("demand charge %v not below baseline %v", shaved.DemandCharge, base.DemandCharge)
	}
	if shaved.EnergyCost >= base.EnergyCost {
		t.Errorf("energy bill %v not below baseline %v", shaved.EnergyCost, base.EnergyCost)
	}
	if shaved.TotalCost != shaved.EnergyCost+shaved.DemandCharge {
		t.Errorf("total %v != energy %v + demand %v",
			shaved.TotalCost, shaved.EnergyCost, shaved.DemandCharge)
	}
}

// TestZeroCapacityBatteryIsIdentity checks the acceptance criterion that a
// configured-but-empty storage subsystem reproduces a storage-free run
// bit for bit.
func TestZeroCapacityBatteryIsIdentity(t *testing.T) {
	sc := shortScenario()
	sc.Policy = routing.NewBaseline(sc.Fleet)
	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	dispatch, err := storage.NewThreshold(20, 60)
	if err != nil {
		t.Fatal(err)
	}
	withZero := sc
	withZero.Policy = routing.NewBaseline(sc.Fleet) // fresh policy state
	withZero.Storage = storage.Uniform(storage.Battery{}, len(sc.Fleet.Clusters), dispatch)
	withZero.Storage.RoutingAware = true
	got, err := Run(withZero)
	if err != nil {
		t.Fatal(err)
	}
	if got.FinalSoCKWh == nil {
		t.Error("storage-configured run should report FinalSoCKWh")
	}
	if got.StorageBoughtKWh != 0 || got.StorageServedKWh != 0 {
		t.Errorf("zero-capacity battery moved energy: %v/%v kWh",
			got.StorageBoughtKWh, got.StorageServedKWh)
	}
	// Apart from the storage bookkeeping fields, every number must be
	// bit-identical to the storage-free run.
	got.FinalSoCKWh = nil
	if !reflect.DeepEqual(plain, got) {
		t.Errorf("zero-capacity battery changed the result:\nplain: %+v\n with: %+v", plain, got)
	}
}

// TestZeroCapacityLyapunovIsIdentity repeats the byte-identity acceptance
// criterion for the Lyapunov controller: with zero-capacity batteries its
// actions clamp to ±0 and its price cap stays +Inf, so a routing-aware
// configured-but-empty installation must reproduce the storage-free run
// bit for bit.
func TestZeroCapacityLyapunovIsIdentity(t *testing.T) {
	sc := shortScenario()
	sc.Policy = routing.NewBaseline(sc.Fleet)
	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	prices := make([]*timeseries.Series, len(sc.Fleet.Clusters))
	for c, cl := range sc.Fleet.Clusters {
		s, err := sc.Market.RT(cl.HubID)
		if err != nil {
			t.Fatal(err)
		}
		prices[c] = s
	}
	zero := make([]storage.Battery, len(sc.Fleet.Clusters))
	dispatch, err := storage.NewLyapunov(prices, zero, sc.Step.Hours(), 0)
	if err != nil {
		t.Fatal(err)
	}
	withZero := sc
	withZero.Policy = routing.NewBaseline(sc.Fleet) // fresh policy state
	withZero.Storage = &storage.Config{Batteries: zero, Policy: dispatch, RoutingAware: true}
	got, err := Run(withZero)
	if err != nil {
		t.Fatal(err)
	}
	if got.StorageBoughtKWh != 0 || got.StorageServedKWh != 0 {
		t.Errorf("zero-capacity lyapunov battery moved energy: %v/%v kWh",
			got.StorageBoughtKWh, got.StorageServedKWh)
	}
	got.FinalSoCKWh = nil
	if !reflect.DeepEqual(plain, got) {
		t.Errorf("zero-capacity lyapunov battery changed the result:\nplain: %+v\n with: %+v", plain, got)
	}
}

// TestStorageScenarioValidation checks the new scenario knobs reject
// malformed configurations.
func TestStorageScenarioValidation(t *testing.T) {
	dispatch, err := storage.NewThreshold(20, 60)
	if err != nil {
		t.Fatal(err)
	}
	good := shortScenario()
	good.Policy = routing.NewBaseline(good.Fleet)
	cases := []func(*Scenario){
		func(s *Scenario) { s.Storage = &storage.Config{Policy: dispatch} }, // battery count mismatch
		func(s *Scenario) { s.Storage = storage.Uniform(storage.Battery{}, len(s.Fleet.Clusters), nil) },
		func(s *Scenario) {
			s.Storage = storage.Uniform(storage.Battery{CapacityKWh: -5}, len(s.Fleet.Clusters), dispatch)
		},
		func(s *Scenario) { s.DemandChargePerKW = -1 },
		// NaN would silently disable the tariff; +Inf would bill it infinite.
		func(s *Scenario) { s.DemandChargePerKW = math.NaN() },
		func(s *Scenario) { s.DemandChargePerKW = math.Inf(1) },
	}
	for i, mutate := range cases {
		sc := good
		mutate(&sc)
		if _, err := Run(sc); err == nil {
			t.Errorf("case %d: invalid storage scenario accepted", i)
		}
	}
}

// TestStorageAwareRoutingSignal checks the decision-price cap steers the
// router: with two clusters, a spiking hub that holds a charged battery
// keeps receiving load when RoutingAware is set, and sheds it when not.
func TestStorageAwareRoutingSignal(t *testing.T) {
	fx := fixtures()
	sc := Scenario{
		Fleet:         fx.Fleet,
		Energy:        energy.OptimisticFuture,
		Market:        fx.Market,
		Demand:        fx.Demand,
		Start:         fx.Trace.Start,
		Steps:         2 * 288,
		Step:          5 * time.Minute,
		ReactionDelay: 0,
	}
	opt, err := routing.NewPriceOptimizer(fx.Fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sc.Policy = opt
	dispatch, err := storage.NewThreshold(15, 40)
	if err != nil {
		t.Fatal(err)
	}
	battery := storage.Battery{
		CapacityKWh: 200, MaxChargeKW: 100, MaxDischargeKW: 100,
		RoundTripEfficiency: 0.9, InitialSoC: 1,
	}
	run := func(aware bool) *Result {
		s := sc
		pol, err := routing.NewPriceOptimizer(fx.Fleet, 1500, routing.DefaultPriceThreshold)
		if err != nil {
			t.Fatal(err)
		}
		s.Policy = pol
		s.Storage = storage.Uniform(battery, len(fx.Fleet.Clusters), dispatch)
		s.Storage.RoutingAware = aware
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	aware, blind := run(true), run(false)
	// The capped signal must change the allocation (different realized
	// costs or distances); identical results would mean the cap never bit.
	if aware.TotalCost == blind.TotalCost && aware.MeanDistanceKm == blind.MeanDistanceKm {
		t.Error("storage-aware signal did not change routing")
	}
}
