// Burst-token gating: the fleet-coupled half of the 95/5 constraint.
//
// Per-cluster burst budgets (billing.BurstAccount) are intrinsically
// shard-local and exact. The one fleet-wide coupling is the gate that
// decides *when* burst headroom unlocks: the engine compares the step's
// total demand against the fleet's total soft-capped room. A shard
// engine summing only its own columns would answer that question with
// different bits than the joint engine, which is why soft-capped shard
// splits used to be exact only while the gate never fired. The BurstGate
// interface externalizes the decision so a broker that sees the full
// demand row can hand every shard the joint engine's exact gate bit.
//
// Bit-exactness contract: every party — the engine's local path,
// SelfGate, the coordinator's broker, tracegen's direct-ingest path —
// MUST derive the bit with the same float operations in the same order:
// SumDemand over the full row in parent-fleet state order, BurstRoomTotal
// over min(softcap, capacity) in parent-fleet cluster order, compared by
// BurstGateOpen. These three helpers are that single definition.
package sim

import (
	"fmt"
	"sync"

	"powerroute/internal/cluster"
)

// BurstGate decides whether the fleet-wide 95/5 burst gate is open for
// one step. localDemand and localRoom are the calling engine's own sums
// (the whole-world values for a joint engine, the shard's column sums
// for a shard engine) — SelfGate uses them, a LeaseStore ignores them.
type BurstGate interface {
	GateOpen(step int, localDemand, localRoom float64) (bool, error)
}

// BurstGateOpen is the gate predicate itself: total demand within 0.1%
// of the soft-capped room (or beyond it) unlocks burst headroom.
func BurstGateOpen(totalDemand, totalRoom float64) bool {
	return totalDemand > totalRoom*0.999
}

// SumDemand totals a demand row in slice (fleet state) order — the exact
// accumulation the engine performs, exported so external brokers derive
// the same bits.
func SumDemand(row []float64) float64 {
	var total float64
	for _, dem := range row {
		total += dem
	}
	return total
}

// BurstRoomTotal totals min(softCaps[c], capacity[c]) in fleet cluster
// order — the engine's per-step totalRoom, a run constant for a fixed
// world. External brokers use it to reproduce the joint gate exactly.
func BurstRoomTotal(fleet *cluster.Fleet, softCaps []float64) (float64, error) {
	if len(softCaps) != len(fleet.Clusters) {
		return 0, fmt.Errorf("sim: %d soft caps for %d clusters", len(softCaps), len(fleet.Clusters))
	}
	var total float64
	for c, cl := range fleet.Clusters {
		capacity := float64(cl.Capacity)
		cap95 := softCaps[c]
		if cap95 > capacity {
			cap95 = capacity
		}
		total += cap95
	}
	return total, nil
}

// FractionalCaps derives per-cluster soft caps as pct × capacity in
// fleet order. It is the one shared definition behind the daemons'
// -softcap-pct flag: the coordinator, every shard, and the load
// generator must all derive identical cap bits or the worlds' hashes
// (and the gate's room constant) would silently disagree.
func FractionalCaps(fleet *cluster.Fleet, pct float64) ([]float64, error) {
	if !(pct > 0) {
		return nil, fmt.Errorf("sim: softcap fraction %v must be positive", pct)
	}
	caps := make([]float64, len(fleet.Clusters))
	for c, cl := range fleet.Clusters {
		caps[c] = pct * float64(cl.Capacity)
	}
	return caps, nil
}

// SelfGate is the coordinated gate for an engine that sees the whole
// world: it answers with the engine's own demand-vs-room comparison —
// the same bits as the uncoordinated local path — while switching the
// engine into lease accounting. A joint engine under SelfGate is
// byte-comparable (status, checkpoints, burst_leases sections) with a
// merged fleet of lease-fed shards.
type SelfGate struct{}

// GateOpen implements BurstGate from the caller's own sums.
func (SelfGate) GateOpen(step int, localDemand, localRoom float64) (bool, error) {
	return BurstGateOpen(localDemand, localRoom), nil
}

// LeaseStore replays externally brokered gate bits to a shard engine.
// A coordinator (or tracegen's direct-ingest path) computes the joint
// gate bit for each step from the full demand row and posts it here —
// over HTTP via POST /v1/leases — before the step's demand arrives; the
// engine then consults the store inside Step. A step with no posted
// lease fails loudly: guessing would silently fork the shard's books
// from the joint run.
type LeaseStore struct {
	mu sync.Mutex
	// base is the step index of gates[0]. guarded_by: mu
	base int
	// gates holds the brokered bits for steps [base, base+len). guarded_by: mu
	gates []bool
}

// Post records gate bits for steps [from, from+len(gates)). Posting may
// extend the window or overwrite bits not yet consumed; gaps are
// rejected because a missing middle step could never be filled in time.
func (ls *LeaseStore) Post(from int, gates []bool) error {
	if from < 0 {
		return fmt.Errorf("sim: lease window starts at negative step %d", from)
	}
	if len(gates) == 0 {
		return nil
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if len(ls.gates) == 0 {
		ls.base = from
		ls.gates = append(ls.gates[:0], gates...)
		return nil
	}
	end := ls.base + len(ls.gates)
	if from > end {
		return fmt.Errorf("sim: lease window starting at step %d leaves a gap after step %d", from, end-1)
	}
	if from < ls.base {
		return fmt.Errorf("sim: lease window starting at step %d precedes the stored window at %d", from, ls.base)
	}
	for i, g := range gates {
		step := from + i
		if step < end {
			ls.gates[step-ls.base] = g
		} else {
			ls.gates = append(ls.gates, g)
		}
	}
	return nil
}

// GateOpen implements BurstGate by looking up the brokered bit; the
// local sums are ignored (the broker derived the joint ones).
func (ls *LeaseStore) GateOpen(step int, localDemand, localRoom float64) (bool, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if len(ls.gates) == 0 || step < ls.base || step >= ls.base+len(ls.gates) {
		return false, fmt.Errorf("sim: no burst-token lease posted for step %d (POST /v1/leases must precede the step's demand)", step)
	}
	return ls.gates[step-ls.base], nil
}

// Prune drops stored bits for steps below the cursor, bounding the
// window to the unconsumed tail.
func (ls *LeaseStore) Prune(below int) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if below <= ls.base {
		return
	}
	if drop := below - ls.base; drop >= len(ls.gates) {
		ls.base, ls.gates = below, ls.gates[:0]
	} else {
		ls.gates = append(ls.gates[:0], ls.gates[drop:]...)
		ls.base = below
	}
}

// stepGate is the in-process broker behind ParallelEngine: the parent
// computes the joint gate bit once per step (before fan-out) and every
// shard worker reads it under the step command's happens-before edge.
type stepGate struct {
	step int
	open bool
}

// GateOpen implements BurstGate for shard workers sharing the parent's
// per-step bit.
func (g *stepGate) GateOpen(step int, localDemand, localRoom float64) (bool, error) {
	if step != g.step {
		return false, fmt.Errorf("sim: parallel burst broker holds step %d, engine asked for %d", g.step, step)
	}
	return g.open, nil
}
