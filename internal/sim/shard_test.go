package sim

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"powerroute/internal/carbon"
	"powerroute/internal/energy"
	"powerroute/internal/routing"
	"powerroute/internal/storage"
	"powerroute/internal/timeseries"
)

// longRunScenario is the full synthetic price horizon at hourly steps —
// the world powerrouted serves — under a price optimizer with the given
// distance threshold.
func longRunScenario(t testing.TB, thresholdKm float64) Scenario {
	t.Helper()
	fx := fixtures()
	opt, err := routing.NewPriceOptimizer(fx.Fleet, thresholdKm, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	return Scenario{
		Fleet:         fx.Fleet,
		Policy:        opt,
		Energy:        energy.OptimisticFuture,
		Market:        fx.Market,
		Demand:        fx.LR,
		Start:         fx.Market.Start,
		Steps:         fx.Market.Hours,
		Step:          time.Hour,
		ReactionDelay: DefaultReactionDelay,
	}
}

// shardEngines splits sc by its policy's routing components and drives
// every shard engine k steps.
func shardEngines(t testing.TB, sc Scenario, k int) ([]*Engine, []Scenario) {
	t.Helper()
	p, err := PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := sc.Shard(p)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*Engine, len(subs))
	for i, sub := range subs {
		eng, err := NewEngine(sub)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		driveSteps(t, eng, sub, k)
		engines[i] = eng
	}
	return engines, subs
}

// mergeThroughWire checkpoints every shard engine, pushes each checkpoint
// through the full encode/decode cycle, and merges.
func mergeThroughWire(t testing.TB, engines []*Engine) *Checkpoint {
	t.Helper()
	parts := make([]*Checkpoint, len(engines))
	for i, eng := range engines {
		cp, err := eng.Checkpoint()
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		var buf bytes.Buffer
		if err := cp.Encode(&buf); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		decoded, err := DecodeCheckpoint(&buf)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		parts[i] = decoded
	}
	merged, err := MergeCheckpoints(parts)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

// requireResultsMatch compares two Results bit for bit, except the
// distance distribution: histogram bins add in a different order across a
// shard merge, so the mean and p99 carry float-associativity noise.
func requireResultsMatch(t *testing.T, label string, got, want *Result) {
	t.Helper()
	gd, wd := *got, *want
	if math.Abs(gd.MeanDistanceKm-wd.MeanDistanceKm) > 1e-6*(1+math.Abs(wd.MeanDistanceKm)) {
		t.Errorf("%s: mean distance %v, want %v", label, gd.MeanDistanceKm, wd.MeanDistanceKm)
	}
	if math.Abs(gd.P99DistanceKm-wd.P99DistanceKm) > 1e-6*(1+math.Abs(wd.P99DistanceKm)) {
		t.Errorf("%s: p99 distance %v, want %v", label, gd.P99DistanceKm, wd.P99DistanceKm)
	}
	gd.MeanDistanceKm, wd.MeanDistanceKm = 0, 0
	gd.P99DistanceKm, wd.P99DistanceKm = 0, 0
	if !reflect.DeepEqual(&gd, &wd) {
		t.Errorf("%s: merged result differs from the joint run's:\ngot  %+v\nwant %+v", label, gd, wd)
	}
}

// TestShardMergeMatchesJointRun is the headline invariant: the full
// synthetic horizon split across 2 shards (threshold 1000 km: the
// California markets vs everything east) and 3 shards (600 km: CA, Texas,
// East), replayed independently, merges to the single-engine batch run's
// final bill bit for bit. The merge is exercised both at the end of the
// horizon and mid-run (merge, restore into the joint world, finish
// jointly).
func TestShardMergeMatchesJointRun(t *testing.T) {
	for _, tc := range []struct {
		name        string
		thresholdKm float64
		shards      int
	}{
		{"2-shard-1000km", 1000, 2},
		{"3-shard-600km", 600, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := longRunScenario(t, tc.thresholdKm)
			if testing.Short() {
				sc.Steps = 90 * 24
			}
			want, err := Run(clonePolicy(t, sc))
			if err != nil {
				t.Fatal(err)
			}

			// Full-horizon shard replay, merged and finalized jointly.
			engines, subs := shardEngines(t, clonePolicy(t, sc), sc.Steps)
			if len(subs) != tc.shards {
				t.Fatalf("partition has %d shards, want %d", len(subs), tc.shards)
			}
			merged := mergeThroughWire(t, engines)
			joint, err := Restore(clonePolicy(t, sc), merged)
			if err != nil {
				t.Fatal(err)
			}
			got, err := joint.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			requireResultsMatch(t, "full-horizon merge", got, want)

			// Mid-run merge: shards pause at half the horizon, the merged
			// checkpoint restores into the joint world, and the joint
			// engine finishes the rest.
			half := sc.Steps / 2
			midEngines, _ := shardEngines(t, clonePolicy(t, sc), half)
			midMerged := mergeThroughWire(t, midEngines)
			resumed, err := Restore(clonePolicy(t, sc), midMerged)
			if err != nil {
				t.Fatal(err)
			}
			driveSteps(t, resumed, sc, sc.Steps-half)
			got2, err := resumed.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			requireResultsMatch(t, "mid-run merge", got2, want)
		})
	}
}

// TestShardMergePerStructure exercises every optional per-cluster
// structure through a split-and-merge: 95/5 constraints (caps generous
// enough that the burst gate — a fleet-wide coupling — never fires),
// batteries with a routing-aware percentile dispatch plus a demand-charge
// tariff, and a carbon ledger.
func TestShardMergePerStructure(t *testing.T) {
	fx := fixtures()
	newScenario := func(t *testing.T) Scenario {
		sc := longRunScenario(t, 600)
		sc.Steps = 45 * 24
		return sc
	}

	t.Run("softcaps", func(t *testing.T) {
		sc := newScenario(t)
		caps := make([]float64, len(fx.Fleet.Clusters))
		for c, cl := range fx.Fleet.Clusters {
			caps[c] = 2 * float64(cl.Capacity)
		}
		sc.SoftCaps = caps
		runSplitMerge(t, sc)
	})

	t.Run("storage-demand-charge", func(t *testing.T) {
		sc := newScenario(t)
		rts := make([]*timeseries.Series, len(fx.Fleet.Clusters))
		for c, cl := range fx.Fleet.Clusters {
			rt, err := sc.Market.RT(cl.HubID)
			if err != nil {
				t.Fatal(err)
			}
			rts[c] = rt
		}
		dispatch, err := storage.NewPercentile(rts, 0.25, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		sc.Storage = &storage.Config{
			Batteries:    uniformBatteries(len(fx.Fleet.Clusters)),
			Policy:       dispatch,
			RoutingAware: true,
		}
		sc.DemandChargePerKW = 4
		runSplitMerge(t, sc)
	})

	t.Run("carbon", func(t *testing.T) {
		sc := newScenario(t)
		intensity, err := carbon.FleetSeries(3, fx.Fleet, fx.Market.Start, fx.Market.Hours)
		if err != nil {
			t.Fatal(err)
		}
		sc.Carbon = intensity
		runSplitMerge(t, sc)
	})
}

// runSplitMerge runs sc jointly and as merged shards and requires the
// results to match.
func runSplitMerge(t *testing.T, sc Scenario) {
	t.Helper()
	want, err := Run(clonePolicy(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	engines, _ := shardEngines(t, clonePolicy(t, sc), sc.Steps)
	merged := mergeThroughWire(t, engines)
	joint, err := Restore(clonePolicy(t, sc), merged)
	if err != nil {
		t.Fatal(err)
	}
	got, err := joint.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	requireResultsMatch(t, "split-merge", got, want)
}

// TestPartitionByRouting pins the component structure of the synthetic
// fleet: the paper's 1500 km reach spans one component (unshardable),
// 1000 km separates the California markets, 600 km also splits Texas off.
func TestPartitionByRouting(t *testing.T) {
	fx := fixtures()
	for _, tc := range []struct {
		thresholdKm float64
		shards      int
	}{
		{1500, 1},
		{1000, 2},
		{600, 3},
	} {
		opt, err := routing.NewPriceOptimizer(fx.Fleet, tc.thresholdKm, routing.DefaultPriceThreshold)
		if err != nil {
			t.Fatal(err)
		}
		p, err := PartitionByRouting(opt, fx.Fleet)
		if err != nil {
			t.Fatal(err)
		}
		if p.Shards() != tc.shards {
			t.Errorf("threshold %.0f km: %d shards, want %d", tc.thresholdKm, p.Shards(), tc.shards)
		}
		nc, ns := 0, 0
		for i := range p.Clusters {
			nc += len(p.Clusters[i])
			ns += len(p.States[i])
		}
		if nc != len(fx.Fleet.Clusters) || ns != len(fx.Fleet.States) {
			t.Errorf("threshold %.0f km: partition covers %d clusters and %d states", tc.thresholdKm, nc, ns)
		}
	}
}

// TestShardRejectsBadPartitions: non-closed, overlapping, or incomplete
// partitions and unshardable policies must all fail loudly.
func TestShardRejectsBadPartitions(t *testing.T) {
	sc := longRunScenario(t, 1000)
	opt := sc.Policy.(routing.Sharder)
	good, err := PartitionByRouting(opt, sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}

	swap := func() ShardPartition {
		p := ShardPartition{
			Clusters: [][]int{append([]int(nil), good.Clusters[0]...), append([]int(nil), good.Clusters[1]...)},
			States:   [][]int{append([]int(nil), good.States[0]...), append([]int(nil), good.States[1]...)},
		}
		return p
	}

	notClosed := swap()
	notClosed.States[0], notClosed.States[1] = notClosed.States[1], notClosed.States[0]
	if _, err := sc.Shard(notClosed); err == nil || !strings.Contains(err.Error(), "routing-closed") {
		t.Errorf("non-closed partition: %v", err)
	}

	overlap := swap()
	overlap.Clusters[0] = append(overlap.Clusters[0], overlap.Clusters[1][0])
	if _, err := sc.Shard(SortPartition(overlap)); err == nil {
		t.Error("overlapping partition accepted")
	}

	missing := swap()
	missing.States[1] = missing.States[1][:len(missing.States[1])-1]
	if _, err := sc.Shard(missing); err == nil {
		t.Error("incomplete partition accepted")
	}

	static, err := routing.NewAllToOne(sc.Fleet, 0)
	if err != nil {
		t.Fatal(err)
	}
	unshardable := sc
	unshardable.Policy = static
	if _, err := unshardable.Shard(good); err == nil || !strings.Contains(err.Error(), "not shardable") {
		t.Errorf("unshardable policy: %v", err)
	}

	if subs, err := sc.Shard(good); err != nil {
		t.Fatal(err)
	} else if _, err := subs[0].Shard(good); err == nil {
		t.Error("re-sharding a shard accepted")
	}
}

// TestMergeCheckpointsRejectsIncompatibleParts: merging requires shard
// checkpoints of one parent world paused at one cursor.
func TestMergeCheckpointsRejectsIncompatibleParts(t *testing.T) {
	sc := longRunScenario(t, 1000)
	sc.Steps = 30 * 24
	engines, _ := shardEngines(t, clonePolicy(t, sc), sc.Steps)

	parts := make([]*Checkpoint, len(engines))
	for i, eng := range engines {
		cp, err := eng.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = cp
	}

	if _, err := MergeCheckpoints(nil); err == nil {
		t.Error("empty merge accepted")
	}

	// A whole-world checkpoint is not a shard.
	joint, err := NewEngine(clonePolicy(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, joint, sc, 10)
	wholeCp, err := joint.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints([]*Checkpoint{wholeCp}); err == nil {
		t.Error("whole-world checkpoint accepted as a shard")
	}

	// Shards of different worlds (different threshold → different parent
	// hash).
	other := longRunScenario(t, 600)
	other.Steps = sc.Steps
	otherEngines, _ := shardEngines(t, other, sc.Steps)
	otherCp, err := otherEngines[0].Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints([]*Checkpoint{parts[0], otherCp}); err == nil {
		t.Error("shards of different parent worlds merged")
	}

	// Cursor mismatch.
	behindEngines, _ := shardEngines(t, clonePolicy(t, sc), sc.Steps-1)
	behindCp, err := behindEngines[1].Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints([]*Checkpoint{parts[0], behindCp}); err == nil {
		t.Error("shards at different cursors merged")
	}

	// Duplicated shard.
	if _, err := MergeCheckpoints([]*Checkpoint{parts[0], parts[0]}); err == nil {
		t.Error("duplicate shard merged")
	}

	// Incomplete cover: a lone shard's positions cannot tile the parent
	// fleet, so the merge itself refuses.
	if _, err := MergeCheckpoints(parts[:1]); err == nil {
		t.Error("partial merge accepted")
	}
}
