package sim

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"powerroute/internal/carbon"
	"powerroute/internal/cluster"
	"powerroute/internal/energy"
	"powerroute/internal/market"
	"powerroute/internal/routing"
	"powerroute/internal/storage"
	"powerroute/internal/timeseries"
	"powerroute/internal/units"
)

// longRunScenario is the full synthetic price horizon at hourly steps —
// the world powerrouted serves — under a price optimizer with the given
// distance threshold.
func longRunScenario(t testing.TB, thresholdKm float64) Scenario {
	t.Helper()
	fx := fixtures()
	opt, err := routing.NewPriceOptimizer(fx.Fleet, thresholdKm, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	return Scenario{
		Fleet:         fx.Fleet,
		Policy:        opt,
		Energy:        energy.OptimisticFuture,
		Market:        fx.Market,
		Demand:        fx.LR,
		Start:         fx.Market.Start,
		Steps:         fx.Market.Hours,
		Step:          time.Hour,
		ReactionDelay: DefaultReactionDelay,
	}
}

// shardEngines splits sc by its policy's routing components and drives
// every shard engine k steps.
func shardEngines(t testing.TB, sc Scenario, k int) ([]*Engine, []Scenario) {
	t.Helper()
	p, err := PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := sc.Shard(p)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*Engine, len(subs))
	for i, sub := range subs {
		eng, err := NewEngine(sub)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		driveSteps(t, eng, sub, k)
		engines[i] = eng
	}
	return engines, subs
}

// mergeThroughWire checkpoints every shard engine, pushes each checkpoint
// through the full encode/decode cycle, and merges.
func mergeThroughWire(t testing.TB, engines []*Engine) *Checkpoint {
	t.Helper()
	parts := make([]*Checkpoint, len(engines))
	for i, eng := range engines {
		cp, err := eng.Checkpoint()
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		var buf bytes.Buffer
		if err := cp.Encode(&buf); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		decoded, err := DecodeCheckpoint(&buf)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		parts[i] = decoded
	}
	merged, err := MergeCheckpoints(parts)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

// requireResultsMatch compares two Results bit for bit, distance
// distribution included: histograms are per-cluster and scatter across
// a shard merge, so the fleet mean and p99 fold from identical bins in
// identical order on both sides.
func requireResultsMatch(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: merged result differs from the joint run's:\ngot  %+v\nwant %+v", label, got, want)
	}
}

// TestShardMergeMatchesJointRun is the headline invariant: the full
// synthetic horizon split across 2 shards (threshold 1000 km: the
// California markets vs everything east) and 3 shards (600 km: CA, Texas,
// East), replayed independently, merges to the single-engine batch run's
// final bill bit for bit. The merge is exercised both at the end of the
// horizon and mid-run (merge, restore into the joint world, finish
// jointly).
func TestShardMergeMatchesJointRun(t *testing.T) {
	for _, tc := range []struct {
		name        string
		thresholdKm float64
		shards      int
	}{
		{"2-shard-1000km", 1000, 2},
		{"3-shard-600km", 600, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := longRunScenario(t, tc.thresholdKm)
			if testing.Short() {
				sc.Steps = 90 * 24
			}
			want, err := Run(clonePolicy(t, sc))
			if err != nil {
				t.Fatal(err)
			}

			// Full-horizon shard replay, merged and finalized jointly.
			engines, subs := shardEngines(t, clonePolicy(t, sc), sc.Steps)
			if len(subs) != tc.shards {
				t.Fatalf("partition has %d shards, want %d", len(subs), tc.shards)
			}
			merged := mergeThroughWire(t, engines)
			joint, err := Restore(clonePolicy(t, sc), merged)
			if err != nil {
				t.Fatal(err)
			}
			got, err := joint.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			requireResultsMatch(t, "full-horizon merge", got, want)

			// Mid-run merge: shards pause at half the horizon, the merged
			// checkpoint restores into the joint world, and the joint
			// engine finishes the rest.
			half := sc.Steps / 2
			midEngines, _ := shardEngines(t, clonePolicy(t, sc), half)
			midMerged := mergeThroughWire(t, midEngines)
			resumed, err := Restore(clonePolicy(t, sc), midMerged)
			if err != nil {
				t.Fatal(err)
			}
			driveSteps(t, resumed, sc, sc.Steps-half)
			got2, err := resumed.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			requireResultsMatch(t, "mid-run merge", got2, want)
		})
	}
}

// TestShardMergePerStructure exercises every optional per-cluster
// structure through a split-and-merge: 95/5 constraints with caps
// generous enough that the burst gate never fires (the active-gate case
// has its own test, TestShardMergeActiveBursts), batteries with a
// routing-aware percentile dispatch plus a demand-charge tariff, and a
// carbon ledger.
func TestShardMergePerStructure(t *testing.T) {
	fx := fixtures()
	newScenario := func(t *testing.T) Scenario {
		sc := longRunScenario(t, 600)
		sc.Steps = 45 * 24
		return sc
	}

	t.Run("softcaps", func(t *testing.T) {
		sc := newScenario(t)
		caps := make([]float64, len(fx.Fleet.Clusters))
		for c, cl := range fx.Fleet.Clusters {
			caps[c] = 2 * float64(cl.Capacity)
		}
		sc.SoftCaps = caps
		runSplitMerge(t, sc)
	})

	t.Run("storage-demand-charge", func(t *testing.T) {
		sc := newScenario(t)
		rts := make([]*timeseries.Series, len(fx.Fleet.Clusters))
		for c, cl := range fx.Fleet.Clusters {
			rt, err := sc.Market.RT(cl.HubID)
			if err != nil {
				t.Fatal(err)
			}
			rts[c] = rt
		}
		dispatch, err := storage.NewPercentile(rts, 0.25, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		sc.Storage = &storage.Config{
			Batteries:    uniformBatteries(len(fx.Fleet.Clusters)),
			Policy:       dispatch,
			RoutingAware: true,
		}
		sc.DemandChargePerKW = 4
		runSplitMerge(t, sc)
	})

	t.Run("carbon", func(t *testing.T) {
		sc := newScenario(t)
		intensity, err := carbon.FleetSeries(3, fx.Fleet, fx.Market.Start, fx.Market.Hours)
		if err != nil {
			t.Fatal(err)
		}
		sc.Carbon = intensity
		runSplitMerge(t, sc)
	})
}

// runSplitMerge runs sc jointly and as merged shards and requires the
// results to match.
func runSplitMerge(t *testing.T, sc Scenario) {
	t.Helper()
	want, err := Run(clonePolicy(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	engines, _ := shardEngines(t, clonePolicy(t, sc), sc.Steps)
	merged := mergeThroughWire(t, engines)
	joint, err := Restore(clonePolicy(t, sc), merged)
	if err != nil {
		t.Fatal(err)
	}
	got, err := joint.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	requireResultsMatch(t, "split-merge", got, want)
}

// comonotoneDemand is a demand source whose regional sums all follow
// one shared curve: per-state demand is a fixed spatial base times a
// time factor g(at). That comonotonicity is what makes tight soft caps
// compatible with exact sharding — every region crosses its q-th
// demand quantile at the same instants the fleet total crosses its own,
// so a region can only saturate (and invite the optimizer's
// cross-region outward walk) on steps where the fleet-wide burst gate
// is open and burst headroom absorbs the excess in-region instead.
type comonotoneDemand struct {
	start time.Time
	base  []float64
}

// Rates implements DemandSource, a pure function of at.
func (d *comonotoneDemand) Rates(at time.Time, dst []float64) []float64 {
	if len(dst) != len(d.base) {
		dst = make([]float64, len(d.base))
	}
	h := at.Sub(d.start).Hours()
	g := 1 + 0.5*math.Sin(2*math.Pi*h/24) + 0.3*math.Sin(2*math.Pi*h/(24*7))
	for s, b := range d.base {
		dst[s] = b * g
	}
	return dst
}

// newComonotoneDemand freezes the fixture demand's spatial distribution
// at the scenario start as the base vector.
func newComonotoneDemand(sc Scenario) *comonotoneDemand {
	return &comonotoneDemand{
		start: sc.Start,
		base:  append([]float64(nil), sc.Demand.Rates(sc.Start, nil)...),
	}
}

// cliqueScenario builds a world whose routing regions are complete
// cliques: each region is a pair of clusters co-located at one market
// hub's spot (distinct hubs, so in-region price optimization still has
// choices to make), the spots far enough apart that no state reaches two
// of them. Every state's candidate set is then a full region — within
// the threshold directly, or through the <50km fallback that pulls in
// the co-located sibling — so the price optimizer's outward walk can
// only leave a region when the region as a whole is saturated. Combined
// with comonotone demand, that makes regional saturation coincide with
// the fleet-wide burst gate opening: the precondition for sharding a
// bursting world exactly. Capacities are sized per region at 1.3× the
// regional demand peak, split evenly, so open-gate overflow always
// absorbs in-region.
func cliqueScenario(t testing.TB, thresholdKm float64, spotHubs [][2]string) Scenario {
	t.Helper()
	fx := fixtures()
	start := fx.Market.Start

	build := func(caps []float64) *cluster.Fleet {
		clusters := make([]cluster.Cluster, 0, 2*len(spotHubs))
		for i, pair := range spotHubs {
			anchor, err := market.HubByID(pair[0])
			if err != nil {
				t.Fatal(err)
			}
			for j, id := range pair {
				servers := int(caps[2*i+j]/cluster.HitsPerServer) + 1
				clusters = append(clusters, cluster.Cluster{
					Code:     id,
					HubID:    id,
					Location: anchor.Location,
					Zone:     anchor.Zone,
					Servers:  servers,
					Capacity: units.HitRate(float64(servers) * cluster.HitsPerServer),
				})
			}
		}
		f, err := cluster.NewFleet(clusters)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	// Pass 1: a dummy-capacity fleet discovers the state partition, which
	// sizes the real capacities off each region's demand peak.
	dummy := make([]float64, 2*len(spotHubs))
	for i := range dummy {
		dummy[i] = 1e9
	}
	probe := build(dummy)
	opt, err := routing.NewPriceOptimizer(probe, thresholdKm, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionByRouting(opt, probe)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != len(spotHubs) {
		t.Fatalf("clique fleet partitioned into %d regions, want %d", p.Shards(), len(spotHubs))
	}
	demand := &comonotoneDemand{start: start, base: fx.LR.Rates(start, nil)}
	steps := 60 * 24
	caps := make([]float64, 2*len(spotHubs))
	var row []float64
	peaks := make([]float64, p.Shards())
	for i := 0; i < steps; i++ {
		row = demand.Rates(start.Add(time.Duration(i)*time.Hour), row)
		for r, states := range p.States {
			var sum float64
			for _, s := range states {
				sum += row[s]
			}
			if sum > peaks[r] {
				peaks[r] = sum
			}
		}
	}
	for r, peak := range peaks {
		caps[2*r] = 1.3 * peak / 2
		caps[2*r+1] = 1.3 * peak / 2
	}

	fleet := build(caps)
	policy, err := routing.NewPriceOptimizer(fleet, thresholdKm, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	return Scenario{
		Fleet:         fleet,
		Policy:        policy,
		Energy:        energy.OptimisticFuture,
		Market:        fx.Market,
		Demand:        demand,
		Start:         start,
		Steps:         steps,
		Step:          time.Hour,
		ReactionDelay: DefaultReactionDelay,
	}
}

// tightSoftCaps derives per-cluster soft caps under which the burst
// gate genuinely fires without ever bankrupting a budget. The knob is
// regional: cross-region placement happens exactly when a routing
// region's demand exceeds its soft-capped room (the optimizer's
// outward walk ignores shard boundaries), so each region's room is
// pinned at the 97th percentile of its own demand — saturating ~3% of
// steps, under the 95/5 budget (5%) — and split among its clusters by
// capacity share. Under comonotone demand the regions saturate exactly
// when the fleet-wide gate opens.
func tightSoftCaps(t testing.TB, sc Scenario) []float64 {
	t.Helper()
	p, err := PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	regTotals := make([][]float64, p.Shards())
	for r := range regTotals {
		regTotals[r] = make([]float64, sc.Steps)
	}
	var row []float64
	for i := 0; i < sc.Steps; i++ {
		at := sc.Start.Add(time.Duration(i) * sc.Step)
		row = sc.Demand.Rates(at, row)
		for r, states := range p.States {
			var sum float64
			for _, s := range states {
				sum += row[s]
			}
			regTotals[r][i] = sum
		}
	}
	caps := make([]float64, len(sc.Fleet.Clusters))
	for r, clusters := range p.Clusters {
		sort.Float64s(regTotals[r])
		room := regTotals[r][len(regTotals[r])*97/100] / 0.999
		var capacity float64
		for _, c := range clusters {
			capacity += float64(sc.Fleet.Clusters[c].Capacity)
		}
		if !(room > 0 && room < capacity) {
			t.Fatalf("region %d: room %v vs capacity %v cannot arm the burst gate", r, room, capacity)
		}
		for _, c := range clusters {
			caps[c] = room * float64(sc.Fleet.Clusters[c].Capacity) / capacity
		}
	}
	return caps
}

// jointGateBits replays the scenario's demand and derives the joint
// burst-gate bit per step with the exported helpers — exactly what the
// coordinator's burst-token broker does from the full demand row.
func jointGateBits(t testing.TB, sc Scenario) []bool {
	t.Helper()
	room, err := BurstRoomTotal(sc.Fleet, sc.SoftCaps)
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]bool, sc.Steps)
	var row []float64
	for i := range bits {
		at := sc.Start.Add(time.Duration(i) * sc.Step)
		row = sc.Demand.Rates(at, row)
		bits[i] = BurstGateOpen(SumDemand(row), room)
	}
	return bits
}

// leaseFedShardEngines shards sc, hands every sub-engine a LeaseStore
// pre-posted with the joint gate bits, and drives each k steps — the
// in-test double of a coordinator-brokered shard fleet.
func leaseFedShardEngines(t testing.TB, sc Scenario, gates []bool, k int) []*Engine {
	t.Helper()
	p, err := PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := sc.Shard(p)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*Engine, len(subs))
	for i, sub := range subs {
		store := &LeaseStore{}
		if err := store.Post(0, gates); err != nil {
			t.Fatal(err)
		}
		sub.BurstGate = store
		eng, err := NewEngine(sub)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		driveSteps(t, eng, sub, k)
		engines[i] = eng
	}
	return engines
}

// TestShardMergeActiveBursts is the invariant PR "fleet-exact sharding"
// exists for: a soft-capped world whose burst gate actually fires,
// split across 2 and 3 shards whose engines replay coordinator-brokered
// gate bits from LeaseStores, merges to the joint SelfGate run bit for
// bit — burst budgets, lease ledgers, and distance distribution
// included. The merge is exercised at the full horizon and mid-run
// (merge, restore into the joint world, finish jointly).
func TestShardMergeActiveBursts(t *testing.T) {
	for _, tc := range []struct {
		name        string
		thresholdKm float64
		spotHubs    [][2]string
	}{
		{"2-shard-1000km", 1000, [][2]string{{"NP15", "SP15"}, {"NYC", "DOM"}}},
		{"3-shard-600km", 600, [][2]string{{"NP15", "SP15"}, {"ERN", "ERS"}, {"NYC", "DOM"}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := cliqueScenario(t, tc.thresholdKm, tc.spotHubs)
			sc.SoftCaps = tightSoftCaps(t, sc)
			sc.BurstGate = SelfGate{}

			want, err := Run(clonePolicy(t, sc))
			if err != nil {
				t.Fatal(err)
			}
			gates := jointGateBits(t, sc)

			engines := leaseFedShardEngines(t, clonePolicy(t, sc), gates, sc.Steps)
			merged := mergeThroughWire(t, engines)

			// The scenario must actually exercise the gate, or the test
			// proves nothing: tokens granted, some spent, some returned.
			var granted, used, expired, burst int
			for _, l := range merged.BurstLeases {
				granted += l.TokensGranted
				used += l.TokensUsed
				expired += l.TokensExpired
			}
			for _, cs := range merged.Constraints {
				burst += cs.BurstsUsed
			}
			if granted == 0 || used == 0 || expired == 0 || burst == 0 {
				t.Fatalf("burst gate barely fired (granted %d, used %d, expired %d, bursts %d) — caps not tight enough",
					granted, used, expired, burst)
			}

			joint, err := Restore(clonePolicy(t, sc), merged)
			if err != nil {
				t.Fatal(err)
			}
			got, err := joint.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			requireResultsMatch(t, "active-burst merge", got, want)

			// Mid-run: pause the shards at half the horizon, restore the
			// merged books (lease ledgers included) into the joint world,
			// and let the joint engine finish under its own SelfGate.
			half := sc.Steps / 2
			midEngines := leaseFedShardEngines(t, clonePolicy(t, sc), gates, half)
			midMerged := mergeThroughWire(t, midEngines)
			resumed, err := Restore(clonePolicy(t, sc), midMerged)
			if err != nil {
				t.Fatal(err)
			}
			driveSteps(t, resumed, sc, sc.Steps-half)
			got2, err := resumed.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			requireResultsMatch(t, "mid-run active-burst merge", got2, want)
		})
	}
}

// TestMergeRejectsBurstLeasePresenceMismatch: a merge where one shard
// books burst leases and another does not describes two different
// configurations of the same world — rejected loudly, never blended.
func TestMergeRejectsBurstLeasePresenceMismatch(t *testing.T) {
	sc := longRunScenario(t, 1000)
	sc.Steps = 24
	sc.SoftCaps = tightSoftCaps(t, sc)
	p, err := PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := sc.Shard(p)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*Checkpoint, len(subs))
	for i, sub := range subs {
		if i == 0 {
			store := &LeaseStore{}
			if err := store.Post(0, make([]bool, sc.Steps)); err != nil {
				t.Fatal(err)
			}
			sub.BurstGate = store
		}
		eng, err := NewEngine(sub)
		if err != nil {
			t.Fatal(err)
		}
		parts[i], err = eng.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := MergeCheckpoints(parts); err == nil || !strings.Contains(err.Error(), "burst lease ledgers") {
		t.Fatalf("presence mismatch not rejected: %v", err)
	}
}

// TestPartitionByRouting pins the component structure of the synthetic
// fleet: the paper's 1500 km reach spans one component (unshardable),
// 1000 km separates the California markets, 600 km also splits Texas off.
func TestPartitionByRouting(t *testing.T) {
	fx := fixtures()
	for _, tc := range []struct {
		thresholdKm float64
		shards      int
	}{
		{1500, 1},
		{1000, 2},
		{600, 3},
	} {
		opt, err := routing.NewPriceOptimizer(fx.Fleet, tc.thresholdKm, routing.DefaultPriceThreshold)
		if err != nil {
			t.Fatal(err)
		}
		p, err := PartitionByRouting(opt, fx.Fleet)
		if err != nil {
			t.Fatal(err)
		}
		if p.Shards() != tc.shards {
			t.Errorf("threshold %.0f km: %d shards, want %d", tc.thresholdKm, p.Shards(), tc.shards)
		}
		nc, ns := 0, 0
		for i := range p.Clusters {
			nc += len(p.Clusters[i])
			ns += len(p.States[i])
		}
		if nc != len(fx.Fleet.Clusters) || ns != len(fx.Fleet.States) {
			t.Errorf("threshold %.0f km: partition covers %d clusters and %d states", tc.thresholdKm, nc, ns)
		}
	}
}

// TestShardRejectsBadPartitions: non-closed, overlapping, or incomplete
// partitions and unshardable policies must all fail loudly.
func TestShardRejectsBadPartitions(t *testing.T) {
	sc := longRunScenario(t, 1000)
	opt := sc.Policy.(routing.Sharder)
	good, err := PartitionByRouting(opt, sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}

	swap := func() ShardPartition {
		p := ShardPartition{
			Clusters: [][]int{append([]int(nil), good.Clusters[0]...), append([]int(nil), good.Clusters[1]...)},
			States:   [][]int{append([]int(nil), good.States[0]...), append([]int(nil), good.States[1]...)},
		}
		return p
	}

	notClosed := swap()
	notClosed.States[0], notClosed.States[1] = notClosed.States[1], notClosed.States[0]
	if _, err := sc.Shard(notClosed); err == nil || !strings.Contains(err.Error(), "routing-closed") {
		t.Errorf("non-closed partition: %v", err)
	}

	overlap := swap()
	overlap.Clusters[0] = append(overlap.Clusters[0], overlap.Clusters[1][0])
	if _, err := sc.Shard(SortPartition(overlap)); err == nil {
		t.Error("overlapping partition accepted")
	}

	missing := swap()
	missing.States[1] = missing.States[1][:len(missing.States[1])-1]
	if _, err := sc.Shard(missing); err == nil {
		t.Error("incomplete partition accepted")
	}

	static, err := routing.NewAllToOne(sc.Fleet, 0)
	if err != nil {
		t.Fatal(err)
	}
	unshardable := sc
	unshardable.Policy = static
	if _, err := unshardable.Shard(good); err == nil || !strings.Contains(err.Error(), "not shardable") {
		t.Errorf("unshardable policy: %v", err)
	}

	if subs, err := sc.Shard(good); err != nil {
		t.Fatal(err)
	} else if _, err := subs[0].Shard(good); err == nil {
		t.Error("re-sharding a shard accepted")
	}
}

// TestMergeCheckpointsRejectsIncompatibleParts: merging requires shard
// checkpoints of one parent world paused at one cursor.
func TestMergeCheckpointsRejectsIncompatibleParts(t *testing.T) {
	sc := longRunScenario(t, 1000)
	sc.Steps = 30 * 24
	engines, _ := shardEngines(t, clonePolicy(t, sc), sc.Steps)

	parts := make([]*Checkpoint, len(engines))
	for i, eng := range engines {
		cp, err := eng.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = cp
	}

	if _, err := MergeCheckpoints(nil); err == nil {
		t.Error("empty merge accepted")
	}

	// A whole-world checkpoint is not a shard.
	joint, err := NewEngine(clonePolicy(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, joint, sc, 10)
	wholeCp, err := joint.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints([]*Checkpoint{wholeCp}); err == nil {
		t.Error("whole-world checkpoint accepted as a shard")
	}

	// Shards of different worlds (different threshold → different parent
	// hash).
	other := longRunScenario(t, 600)
	other.Steps = sc.Steps
	otherEngines, _ := shardEngines(t, other, sc.Steps)
	otherCp, err := otherEngines[0].Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints([]*Checkpoint{parts[0], otherCp}); err == nil {
		t.Error("shards of different parent worlds merged")
	}

	// Cursor mismatch.
	behindEngines, _ := shardEngines(t, clonePolicy(t, sc), sc.Steps-1)
	behindCp, err := behindEngines[1].Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints([]*Checkpoint{parts[0], behindCp}); err == nil {
		t.Error("shards at different cursors merged")
	}

	// Duplicated shard.
	if _, err := MergeCheckpoints([]*Checkpoint{parts[0], parts[0]}); err == nil {
		t.Error("duplicate shard merged")
	}

	// Incomplete cover: a lone shard's positions cannot tile the parent
	// fleet, so the merge itself refuses.
	if _, err := MergeCheckpoints(parts[:1]); err == nil {
		t.Error("partial merge accepted")
	}
}
