package sim

import (
	"strings"
	"testing"

	"powerroute/internal/routing"
)

// TestBurstGatePredicate pins the single bit definition every party —
// engine, SelfGate, coordinator broker, tracegen — must share: demand
// within 0.1% of the soft-capped room opens the gate.
func TestBurstGatePredicate(t *testing.T) {
	if BurstGateOpen(998.9, 1000) {
		t.Fatal("gate open below the 0.1% band")
	}
	if !BurstGateOpen(999.1, 1000) {
		t.Fatal("gate closed inside the 0.1% band")
	}
	if !BurstGateOpen(1001, 1000) {
		t.Fatal("gate closed above the room")
	}
	if sum := SumDemand([]float64{1, 2, 3.5}); sum != 6.5 {
		t.Fatalf("SumDemand = %v, want 6.5", sum)
	}

	open, err := SelfGate{}.GateOpen(7, 999.1, 1000)
	if err != nil || !open {
		t.Fatalf("SelfGate = (%v, %v), want (true, nil)", open, err)
	}
}

// TestBurstRoomTotal: per-cluster room is min(softcap, capacity), summed
// in fleet cluster order; a cap vector of the wrong length is rejected.
func TestBurstRoomTotal(t *testing.T) {
	fleet := fixtures().Fleet
	caps := make([]float64, len(fleet.Clusters))
	var want float64
	for c, cl := range fleet.Clusters {
		caps[c] = float64(cl.Capacity) * 0.5
		want += caps[c]
	}
	// One cap above capacity must clamp to capacity.
	caps[0] = float64(fleet.Clusters[0].Capacity) * 2
	want += float64(fleet.Clusters[0].Capacity) - float64(fleet.Clusters[0].Capacity)*0.5
	got, err := BurstRoomTotal(fleet, caps)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("room total %v, want %v", got, want)
	}
	if _, err := BurstRoomTotal(fleet, caps[:1]); err == nil {
		t.Fatal("short cap vector accepted")
	}
}

// TestFractionalCaps: the shared -softcap-pct definition is pct × capacity
// in fleet order, with non-positive fractions rejected.
func TestFractionalCaps(t *testing.T) {
	fleet := fixtures().Fleet
	caps, err := FractionalCaps(fleet, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for c, cl := range fleet.Clusters {
		if caps[c] != 0.8*float64(cl.Capacity) {
			t.Fatalf("cluster %d cap %v, want %v", c, caps[c], 0.8*float64(cl.Capacity))
		}
	}
	for _, pct := range []float64{0, -0.5} {
		if _, err := FractionalCaps(fleet, pct); err == nil {
			t.Fatalf("fraction %v accepted", pct)
		}
	}
}

// TestLeaseStoreProtocol pins the broker-to-shard lease window contract:
// contiguous posts extend or overwrite, gaps and rewinds are rejected,
// unposted steps fail loudly, and pruning bounds the window.
func TestLeaseStoreProtocol(t *testing.T) {
	store := &LeaseStore{}

	// Reading before any post fails loudly — guessing a bit would fork
	// the shard's books from the joint run.
	if _, err := store.GateOpen(0, 0, 0); err == nil || !strings.Contains(err.Error(), "no burst-token lease") {
		t.Fatalf("unposted step served: %v", err)
	}

	if err := store.Post(-1, []bool{true}); err == nil {
		t.Fatal("negative window start accepted")
	}
	if err := store.Post(5, nil); err != nil {
		t.Fatalf("empty post: %v", err)
	}

	if err := store.Post(0, []bool{true, false, true}); err != nil {
		t.Fatal(err)
	}
	// A gap after the stored window could never be filled in time.
	if err := store.Post(4, []bool{true}); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gapped window accepted: %v", err)
	}
	// Contiguous append plus overwrite of a not-yet-consumed bit.
	if err := store.Post(2, []bool{false, true}); err != nil {
		t.Fatal(err)
	}
	for step, want := range []bool{true, false, false, true} {
		got, err := store.GateOpen(step, 0, 0)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got != want {
			t.Fatalf("step %d bit %v, want %v", step, got, want)
		}
	}
	if _, err := store.GateOpen(4, 0, 0); err == nil {
		t.Fatal("step beyond the window served")
	}

	store.Prune(2)
	if _, err := store.GateOpen(1, 0, 0); err == nil {
		t.Fatal("pruned step served")
	}
	if got, err := store.GateOpen(3, 0, 0); err != nil || !got {
		t.Fatalf("surviving step after prune = (%v, %v)", got, err)
	}
	// A post rewinding before the pruned base is a stale broker.
	if err := store.Post(0, []bool{true}); err == nil || !strings.Contains(err.Error(), "precedes") {
		t.Fatalf("pre-base window accepted: %v", err)
	}
	// Pruning everything empties the window; the next post re-bases it.
	store.Prune(100)
	if err := store.Post(42, []bool{true}); err != nil {
		t.Fatal(err)
	}
	if got, err := store.GateOpen(42, 0, 0); err != nil || !got {
		t.Fatalf("re-based window = (%v, %v)", got, err)
	}
}

// TestStepGateMismatch: the in-process broker serves exactly the step the
// parent resolved; a shard asking for any other step is a lock-step bug.
func TestStepGateMismatch(t *testing.T) {
	g := &stepGate{step: 3, open: true}
	open, err := g.GateOpen(3, 0, 0)
	if err != nil || !open {
		t.Fatalf("matching step = (%v, %v)", open, err)
	}
	if _, err := g.GateOpen(4, 0, 0); err == nil {
		t.Fatal("step mismatch served")
	}
}

// TestScenarioRejectsGateWithoutSoftCaps: a burst gate is meaningless
// without soft caps to gate — configuration error, not a silent no-op.
func TestScenarioRejectsGateWithoutSoftCaps(t *testing.T) {
	sc := shortScenario()
	sc.Policy = routing.NewBaseline(sc.Fleet)
	sc.BurstGate = SelfGate{}
	if _, err := NewEngine(sc); err == nil || !strings.Contains(err.Error(), "burst gate") {
		t.Fatalf("gate without soft caps accepted: %v", err)
	}
}
