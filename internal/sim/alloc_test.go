package sim

import "testing"

// TestStepDoesNotAllocate guards the zero-allocation contract of the step
// hot path: once an engine is past its first few intervals, Step must not
// allocate — scratch is engine-owned and sized at construction, meters are
// reserved from the scenario horizon, and the routing fast path reuses its
// order buffers even when the price signal changes every interval.
func TestStepDoesNotAllocate(t *testing.T) {
	for name, sc := range engineScenarios(t) {
		sc := sc
		t.Run(name, func(t *testing.T) {
			eng, err := NewEngine(sc)
			if err != nil {
				t.Fatal(err)
			}
			// Reach steady state: order caches warm, battery SoC settled.
			driveSteps(t, eng, sc, 50)

			prices := eng.PriceSeries()
			nc := len(sc.Fleet.Clusters)
			decision := make([]float64, nc)
			bill := make([]float64, nc)
			var carbonVec []float64
			if sc.Carbon != nil {
				carbonVec = make([]float64, nc)
			}
			var demand []float64
			demand = sc.Demand.Rates(eng.Next(), demand)
			step := 0
			allocs := testing.AllocsPerRun(100, func() {
				at := eng.Next()
				demand = sc.Demand.Rates(at, demand)
				for c := range prices {
					v, err := prices[c].At(at)
					if err != nil {
						panic(err)
					}
					bill[c] = v
					// Perturb the decision signal every interval so the
					// optimizer's preference-order cache misses and the
					// rebuild path is measured too.
					decision[c] = v + float64(step%7)
				}
				if sc.Carbon != nil {
					for c := range sc.Carbon {
						v, err := sc.Carbon[c].At(at)
						if err != nil {
							panic(err)
						}
						carbonVec[c] = v
					}
				}
				if err := eng.Step(at, StepPrices{Decision: decision, Bill: bill, Carbon: carbonVec}, demand); err != nil {
					panic(err)
				}
				step++
			})
			if allocs != 0 {
				t.Fatalf("Engine.Step allocates %v times per interval in steady state, want 0", allocs)
			}
		})
	}
}
