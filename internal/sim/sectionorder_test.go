package sim

import (
	"fmt"
	"testing"

	"powerroute/internal/billing"
	"powerroute/internal/storage"
	"powerroute/internal/units"
)

// These are regression tests for the section validators' error ordering:
// they used to range over a map[string]int, so a checkpoint with several
// wrong-sized sections blamed a random one per process. The validators
// now walk a fixed slice; with many sections wrong at once, the error
// text must be byte-identical on every attempt.

func TestRestoreSectionErrorTextStable(t *testing.T) {
	sc := engineScenarios(t)["optimizer"]
	_, cp := checkpointAt(t, clonePolicy(t, sc), 10)
	want := fmt.Sprintf("sim: restore: checkpoint has %d cluster costs for %d clusters", cp.Clusters+1, cp.Clusters)
	for i := 0; i < 20; i++ {
		bad := *cp
		bad.Totals.ClusterCost = make([]units.Money, cp.Clusters+1)
		bad.Totals.ClusterEnergy = make([]units.Energy, cp.Clusters+1)
		bad.Totals.PeakRate = make([]float64, cp.Clusters+1)
		bad.Loads = make([]float64, cp.Clusters+1)
		_, err := Restore(clonePolicy(t, sc), &bad)
		if err == nil || err.Error() != want {
			t.Fatalf("attempt %d: error = %v, want %q", i, err, want)
		}
	}
}

func TestMergeSectionErrorTextStable(t *testing.T) {
	sc := longRunScenario(t, 600)
	engines, _ := shardEngines(t, sc, 8)
	if len(engines) < 2 {
		t.Fatalf("scenario split into %d shards, need at least 2", len(engines))
	}
	parts := make([]*Checkpoint, len(engines))
	for i, eng := range engines {
		cp, err := eng.Checkpoint()
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		parts[i] = cp
	}

	// Several mandatory per-cluster vectors wrong at once: the first
	// section in declaration order takes the blame, every time.
	want := fmt.Sprintf("sim: checkpoint 1: %d cluster costs for %d clusters", parts[1].Clusters+1, parts[1].Clusters)
	for i := 0; i < 20; i++ {
		bad := append([]*Checkpoint(nil), parts...)
		b := *parts[1]
		b.Totals.ClusterCost = make([]units.Money, b.Clusters+1)
		b.Totals.ClusterEnergy = make([]units.Energy, b.Clusters+1)
		b.Loads = make([]float64, b.Clusters+1)
		bad[1] = &b
		_, err := MergeCheckpoints(bad)
		if err == nil || err.Error() != want {
			t.Fatalf("attempt %d: error = %v, want %q", i, err, want)
		}
	}

	// Several optional sections diverging at once: same rule.
	want = "sim: checkpoint 1 carries 95/5 constraint state but checkpoint 0 does not (or vice versa)"
	for i := 0; i < 20; i++ {
		bad := append([]*Checkpoint(nil), parts...)
		b := *parts[1]
		b.Constraints = make([]billing.ConstraintState, b.Clusters)
		b.Batteries = make([]storage.Snapshot, b.Clusters)
		bad[1] = &b
		_, err := MergeCheckpoints(bad)
		if err == nil || err.Error() != want {
			t.Fatalf("attempt %d: error = %v, want %q", i, err, want)
		}
	}
}
