package sim

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeCheckpoint hammers the checkpoint decoder with arbitrary
// bytes. The decoder must never panic or over-allocate, and anything it
// does accept must re-encode and re-decode to the same value (a decoded
// checkpoint is always a well-formed one).
func FuzzDecodeCheckpoint(f *testing.F) {
	// Seed from two scenario families: "storage" covers the battery and
	// demand-meter sections, "batch" covers the scheduler queue sections
	// (non-empty queues with partial progress at step 7).
	for _, name := range []string{"storage", "batch"} {
		sc := engineScenarios(f)[name]
		for _, k := range []int{0, 7} {
			_, cp := checkpointAt(f, clonePolicy(f, sc), k)
			var buf bytes.Buffer
			if err := cp.Encode(&buf); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
			f.Add(buf.Bytes()[:buf.Len()/2])
			mutated := append([]byte(nil), buf.Bytes()...)
			mutated[len(mutated)/3] ^= 0xff
			f.Add(mutated)
		}
	}
	f.Add([]byte("powerroute-checkpoint v1\n{}\n"))
	f.Add([]byte("powerroute-checkpoint v2\n{}\n"))
	f.Add([]byte("powerroute-checkpoint v3\n"))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := cp.Encode(&buf); err != nil {
			t.Fatalf("accepted checkpoint fails to re-encode: %v", err)
		}
		again, err := DecodeCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded checkpoint fails to decode: %v", err)
		}
		if !reflect.DeepEqual(cp, again) {
			t.Fatal("decode(encode(decode(data))) != decode(data)")
		}
	})
}
