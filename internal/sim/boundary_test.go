package sim

import (
	"testing"
	"time"

	"powerroute/internal/timeseries"
)

// TestTraceDemandBoundaries pins the trace edges: instants before the
// start — including the sub-step window that toward-zero truncation used
// to map onto sample 0 — and at or past the end return zero demand, while
// in-range instants snap to their covering 5-minute sample.
func TestTraceDemandBoundaries(t *testing.T) {
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	td, err := NewTraceDemand(start, 2, [][]float64{{7, 9}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		at   time.Time
		want float64
	}{
		{"one step before start", start.Add(-5 * time.Minute), 0},
		{"mid-step before start", start.Add(-150 * time.Second), 0},
		{"just before start", start.Add(-time.Nanosecond), 0},
		{"exactly at start", start, 7},
		{"end of first sample", start.Add(5*time.Minute - time.Nanosecond), 7},
		{"second sample", start.Add(5 * time.Minute), 9},
		{"just before end", start.Add(10*time.Minute - time.Nanosecond), 9},
		{"exactly at end", start.Add(10 * time.Minute), 0},
		{"past end", start.Add(time.Hour), 0},
	}
	for _, c := range cases {
		got := td.Rates(c.at, nil)
		if got[0] != c.want {
			t.Errorf("%s: demand = %v, want %v", c.name, got[0], c.want)
		}
	}
}

// TestSeriesLookupBoundaryInstants checks the shared-geometry fast path
// and the mismatched-geometry fallback agree at the exact series edges:
// the first and last covered nanoseconds resolve, one nanosecond outside
// on either side errors.
func TestSeriesLookupBoundaryInstants(t *testing.T) {
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	shared := newSeriesLookup([]*timeseries.Series{
		timeseries.FromValues(start, time.Hour, []float64{1, 2, 3}),
		timeseries.FromValues(start, time.Hour, []float64{4, 5, 6}),
	})
	if !shared.shared {
		t.Fatal("identical geometry not detected")
	}
	// Different lengths force the Series.At fallback over the same window.
	fallback := newSeriesLookup([]*timeseries.Series{
		timeseries.FromValues(start, time.Hour, []float64{1, 2, 3}),
		timeseries.FromValues(start, time.Hour, []float64{4, 5, 6, 6}),
	})
	if fallback.shared {
		t.Fatal("mismatched geometry not detected")
	}
	end := start.Add(3 * time.Hour)
	for name, l := range map[string]*seriesLookup{"shared": &shared, "fallback": &fallback} {
		dst := make([]float64, 2)
		if err := l.values(start.Add(-time.Nanosecond), dst); err == nil {
			t.Errorf("%s: instant just before start accepted", name)
		}
		if err := l.values(start, dst); err != nil || dst[0] != 1 || dst[1] != 4 {
			t.Errorf("%s: at start: %v, dst=%v", name, err, dst)
		}
		if err := l.values(end.Add(-time.Nanosecond), dst); err != nil || dst[0] != 3 || dst[1] != 6 {
			t.Errorf("%s: last covered instant: %v, dst=%v", name, err, dst)
		}
		if err := l.values(end, dst); err == nil {
			t.Errorf("%s: instant at end accepted", name)
		}
	}
}
