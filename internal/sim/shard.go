// Multi-region sharding: split one simulated world into per-region
// sub-scenarios — one per electricity market region, the paper's natural
// deployment unit — run each on its own engine (its own powerrouted
// instance), and merge their checkpoints back into the joint world's.
//
// The split is exact, not approximate. A partition is *routing-closed*
// when every client state's candidate clusters live in the state's own
// shard; then the joint run's allocations decompose perfectly — states in
// shard A never consume room on shard B's clusters — and because the
// engine accumulates every running sum per cluster (see Totals), the
// merged checkpoint reproduces the single-engine run bit for bit, final
// bill included. PartitionByRouting computes the finest routing-closed
// partition (connected components of the policy's candidate sets);
// Scenario.Shard validates closure and carves the sub-scenarios;
// MergeCheckpoints recombines shard checkpoints under the parent world
// hash each shard was stamped with.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"powerroute/internal/billing"
	"powerroute/internal/routing"
	"powerroute/internal/sched"
	"powerroute/internal/stats"
	"powerroute/internal/storage"
	"powerroute/internal/timeseries"
	"powerroute/internal/units"
)

// ShardPartition assigns every cluster and every client state of a fleet
// to exactly one shard. Clusters[i] and States[i] are shard i's members as
// strictly increasing fleet indices (preserving fleet order keeps the
// allocation loops deterministic across the split).
type ShardPartition struct {
	Clusters [][]int // per shard: member clusters as ascending fleet indices
	States   [][]int // per shard: member client states as ascending fleet indices
}

// Shards returns the number of shards in the partition.
func (p *ShardPartition) Shards() int { return len(p.Clusters) }

// PartitionByRouting computes the finest routing-closed partition of the
// fleet under the policy: the connected components of the policy's
// candidate sets (two clusters share a component when some state considers
// both), with each state assigned to its candidates' component. Coarser
// groupings of these components are also routing-closed; anything finer is
// not. The component count depends on the policy's reach — the paper's
// 1500 km optimizer spans the whole map (one component), while tighter
// thresholds split the coasts from Texas.
func PartitionByRouting(pol routing.Sharder, f interface {
	ClusterCount() int
	StateCount() int
}) (ShardPartition, error) {
	nc, ns := f.ClusterCount(), f.StateCount()
	parent := make([]int, nc)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for s := 0; s < ns; s++ {
		cands := pol.Candidates(s)
		if len(cands) == 0 {
			return ShardPartition{}, fmt.Errorf("sim: state %d has no candidate clusters", s)
		}
		for _, c := range cands[1:] {
			parent[find(c)] = find(cands[0])
		}
	}
	// Shards ordered by their smallest cluster index, members ascending.
	byRoot := map[int]int{}
	var p ShardPartition
	for c := 0; c < nc; c++ {
		root := find(c)
		i, ok := byRoot[root]
		if !ok {
			i = len(p.Clusters)
			byRoot[root] = i
			p.Clusters = append(p.Clusters, nil)
			p.States = append(p.States, nil)
		}
		p.Clusters[i] = append(p.Clusters[i], c)
	}
	for s := 0; s < ns; s++ {
		i := byRoot[find(pol.Candidates(s)[0])]
		p.States[i] = append(p.States[i], s)
	}
	for i, states := range p.States {
		if len(states) == 0 {
			return ShardPartition{}, fmt.Errorf("sim: shard %d (clusters %v) serves no states", i, p.Clusters[i])
		}
	}
	return p, nil
}

// WorldHash returns the scenario's world identity digest — the same value
// an engine built from it reports. Scenario.Shard stamps it into every
// sub-scenario as the parent hash, and the shard coordinator uses it to
// verify shards against the joint world without building an engine.
func (sc Scenario) WorldHash() (string, error) {
	if err := sc.validate(); err != nil {
		return "", err
	}
	prices := make([]*timeseries.Series, len(sc.Fleet.Clusters))
	for c, cl := range sc.Fleet.Clusters {
		s, err := sc.Market.RT(cl.HubID)
		if err != nil {
			return "", fmt.Errorf("sim: cluster %s: %w", cl.Code, err)
		}
		prices[c] = s
	}
	return worldHash(&sc, prices), nil
}

// Shard splits the scenario into one sub-scenario per partition shard:
// the shard's clusters as a sub-fleet, its states' demand, and every
// per-cluster configuration (soft caps, decision/carbon series, batteries)
// sliced to match. The routing policy must implement routing.Sharder and
// the partition must be routing-closed under it — every state's candidate
// clusters in the state's own shard — which is what makes the union of the
// shard runs reproduce the joint run exactly (see MergeCheckpoints).
//
// The engine's one fleet-wide coupling — the 95/5 burst gate's
// demand-vs-room comparison — no longer limits the split: a shard run
// whose BurstGate replays the joint gate bits (a LeaseStore fed by the
// coordinator's burst-token broker, or ParallelEngine's in-process
// broker) reproduces the joint soft-capped run exactly even while
// bursts fire, because burst *budgets* are per-cluster and therefore
// shard-local. Set each sub-scenario's BurstGate after Shard returns;
// Shard itself leaves the field as inherited. One caveat remains: when
// a whole region saturates, the optimizer's outward spill walks beyond
// the shard's clusters in the joint run but cannot in the shard run —
// saturation shows up as overload in both, but the placements then
// differ (the coordinator's -spill rerouting mitigates, approximately).
func (sc Scenario) Shard(p ShardPartition) ([]Scenario, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	if sc.shardOf != "" {
		return nil, errors.New("sim: scenario is already a shard")
	}
	if len(p.Clusters) == 0 || len(p.Clusters) != len(p.States) {
		return nil, fmt.Errorf("sim: partition has %d cluster groups and %d state groups", len(p.Clusters), len(p.States))
	}
	pol, ok := sc.Policy.(routing.Sharder)
	if !ok {
		return nil, fmt.Errorf("sim: policy %s is not shardable", sc.Policy.Name())
	}
	nc, ns := len(sc.Fleet.Clusters), len(sc.Fleet.States)
	clusterShard := make([]int, nc)
	stateShard := make([]int, ns)
	if err := assignOnce(p.Clusters, clusterShard, "cluster"); err != nil {
		return nil, err
	}
	if err := assignOnce(p.States, stateShard, "state"); err != nil {
		return nil, err
	}
	for s := 0; s < ns; s++ {
		for _, c := range pol.Candidates(s) {
			if c < 0 || c >= nc {
				return nil, fmt.Errorf("sim: state %d candidate %d out of range", s, c)
			}
			if clusterShard[c] != stateShard[s] {
				return nil, fmt.Errorf("sim: partition is not routing-closed: state %s (shard %d) considers cluster %s (shard %d)",
					sc.Fleet.States[s].Code, stateShard[s], sc.Fleet.Clusters[c].Code, clusterShard[c])
			}
		}
	}
	parentHash, err := sc.WorldHash()
	if err != nil {
		return nil, err
	}

	subs := make([]Scenario, len(p.Clusters))
	for i := range p.Clusters {
		clusters, states := p.Clusters[i], p.States[i]
		subFleet, err := sc.Fleet.Subfleet(clusters, states)
		if err != nil {
			return nil, fmt.Errorf("sim: shard %d: %w", i, err)
		}
		subPolicy, err := pol.ShardPolicy(subFleet)
		if err != nil {
			return nil, fmt.Errorf("sim: shard %d policy: %w", i, err)
		}
		sub := sc
		sub.Fleet = subFleet
		sub.Policy = subPolicy
		sub.Demand = &subsetDemand{src: sc.Demand, idx: states}
		if sc.SoftCaps != nil {
			sub.SoftCaps = pickFloats(sc.SoftCaps, clusters)
		}
		if sc.DecisionSeries != nil {
			sub.DecisionSeries = pickSeries(sc.DecisionSeries, clusters)
		}
		if sc.Carbon != nil {
			sub.Carbon = pickSeries(sc.Carbon, clusters)
		}
		if sc.Storage != nil {
			cfg := *sc.Storage
			cfg.Batteries = make([]storage.Battery, len(clusters))
			for j, c := range clusters {
				cfg.Batteries[j] = sc.Storage.Batteries[c]
			}
			cfg.Policy = wrapStoragePolicy(sc.Storage.Policy, clusters)
			sub.Storage = &cfg
		}
		if sc.Batch != nil {
			cfg := *sc.Batch
			cfg.MaxBatchKW = pickFloats(sc.Batch.MaxBatchKW, clusters)
			cfg.Thresholds = pickFloats(sc.Batch.Thresholds, clusters)
			// Keep each job with its home cluster, remapped to the shard's
			// local index; arrival order is preserved. Routing closure
			// guarantees the job's whole migration component came along.
			local := make(map[int]int, len(clusters))
			for j, c := range clusters {
				local[c] = j
			}
			cfg.Jobs = nil
			for _, job := range sc.Batch.Jobs {
				if j, ok := local[job.Cluster]; ok {
					job.Cluster = j
					cfg.Jobs = append(cfg.Jobs, job)
				}
			}
			sub.Batch = &cfg
		}
		sub.shardOf = parentHash
		sub.shardClusters = append([]int(nil), clusters...)
		sub.shardStates = append([]int(nil), states...)
		subs[i] = sub
	}
	return subs, nil
}

// assignOnce records each index's shard in dst, requiring every index to
// appear exactly once across the groups.
func assignOnce(groups [][]int, dst []int, kind string) error {
	for i := range dst {
		dst[i] = -1
	}
	for shard, members := range groups {
		for _, idx := range members {
			if idx < 0 || idx >= len(dst) {
				return fmt.Errorf("sim: partition %s index %d out of range", kind, idx)
			}
			if dst[idx] != -1 {
				return fmt.Errorf("sim: partition assigns %s %d to shards %d and %d", kind, idx, dst[idx], shard)
			}
			dst[idx] = shard
		}
	}
	for idx, shard := range dst {
		if shard == -1 {
			return fmt.Errorf("sim: partition leaves %s %d unassigned", kind, idx)
		}
	}
	return nil
}

func pickFloats(src []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = src[j]
	}
	return out
}

func pickSeries(src []*timeseries.Series, idx []int) []*timeseries.Series {
	out := make([]*timeseries.Series, len(idx))
	for i, j := range idx {
		out[i] = src[j]
	}
	return out
}

// subsetDemand projects a full-fleet demand source onto a shard's states.
// Like other DemandSources it is not safe for concurrent use; each shard
// engine owns its own wrapper (the scratch buffer is per-instance).
type subsetDemand struct {
	src     DemandSource
	idx     []int
	scratch []float64
}

// Rates implements DemandSource.
func (d *subsetDemand) Rates(at time.Time, dst []float64) []float64 {
	d.scratch = d.src.Rates(at, d.scratch)
	if len(dst) != len(d.idx) {
		dst = make([]float64, len(d.idx))
	}
	for i, s := range d.idx {
		dst[i] = d.scratch[s]
	}
	return dst
}

// shardStoragePolicy translates a shard's local cluster indices to parent
// fleet indices before consulting the parent dispatch policy, so
// per-cluster dispatch state (e.g. percentile thresholds derived from each
// hub's own price history) follows the cluster into its shard.
type shardStoragePolicy struct {
	inner storage.Policy
	idx   []int
}

// Name implements storage.Policy.
func (p *shardStoragePolicy) Name() string { return p.inner.Name() }

// Action implements storage.Policy.
func (p *shardStoragePolicy) Action(c int, price, itLoadKW float64, s *storage.State) float64 {
	return p.inner.Action(p.idx[c], price, itLoadKW, s)
}

// ClusterCount sizes the wrapper to its shard for storage.Config.Validate.
func (p *shardStoragePolicy) ClusterCount() int { return len(p.idx) }

// shardStorageCapper additionally forwards the price-cap signal for
// routing-aware dispatch policies.
type shardStorageCapper struct {
	shardStoragePolicy
	capper storage.PriceCapper
}

// PriceCap implements storage.PriceCapper.
func (p *shardStorageCapper) PriceCap(c int, s *storage.State) float64 {
	return p.capper.PriceCap(p.idx[c], s)
}

// wrapStoragePolicy builds the index-translating wrapper, preserving the
// PriceCapper capability exactly when the parent policy has it (the engine
// only looks for the interface, so a wrapper must not invent it).
func wrapStoragePolicy(inner storage.Policy, idx []int) storage.Policy {
	base := shardStoragePolicy{inner: inner, idx: idx}
	if pc, ok := inner.(storage.PriceCapper); ok {
		return &shardStorageCapper{shardStoragePolicy: base, capper: pc}
	}
	return &base
}

// ErrShardCursorMismatch marks a merge attempted while the shards were
// not paused at one step cursor — the transient state of a fleet that is
// mid-ingest, not a topology error. Coordinators match it with errors.Is
// to retry instead of alarming.
var ErrShardCursorMismatch = errors.New("shards must pause at the same cursor")

// MergeCheckpoints recombines one checkpoint per shard into the joint
// world's checkpoint. Every part must be a shard checkpoint of the same
// parent world (identical ShardOf hash — the shard-compatibility guard),
// at the same step cursor, with disjoint cluster and state positions that
// together cover the parent fleet exactly. Per-structure combine rules:
// per-cluster state (meter samples, burst budgets, burst lease ledgers,
// monthly demand peaks, battery snapshots, running
// cost/energy/overload/storage/carbon sums, last-interval rates,
// distance histograms) scatters into its fleet position — disjoint
// across shards, so no arithmetic happens at all — and the assignment
// matrix scatters by state row and cluster column. Distance histograms
// being per-cluster (routing closure sends a cluster the same hits in
// the same order either way) is what makes the merged histograms, and
// the fleet mean/p99 folded from them, bit-exact rather than merely
// close. The merged checkpoint carries the parent
// world hash and restores only into the joint world, where Snapshot and
// Finalize re-derive every fleet-wide figure in fleet order — bit for bit
// what the single-engine run reports.
func MergeCheckpoints(parts []*Checkpoint) (*Checkpoint, error) {
	if len(parts) == 0 {
		return nil, errors.New("sim: merging zero checkpoints")
	}
	first := parts[0]
	if first == nil {
		return nil, errors.New("sim: merging nil checkpoint")
	}
	if first.ShardOf == "" {
		return nil, errors.New("sim: checkpoint 0 is not a shard checkpoint (no parent world hash)")
	}
	firstHas := optionalSections(first)
	nc, ns := 0, 0
	for i, cp := range parts {
		if cp == nil {
			return nil, fmt.Errorf("sim: merging nil checkpoint %d", i)
		}
		if cp.Version != CheckpointVersion {
			return nil, fmt.Errorf("sim: checkpoint %d is v%d, this build merges v%d", i, cp.Version, CheckpointVersion)
		}
		if cp.ShardOf != first.ShardOf {
			return nil, fmt.Errorf("sim: checkpoint %d is a shard of world %s, checkpoint 0 of %s", i, cp.ShardOf, first.ShardOf)
		}
		if cp.Policy != first.Policy {
			return nil, fmt.Errorf("sim: checkpoint %d ran policy %q, checkpoint 0 ran %q", i, cp.Policy, first.Policy)
		}
		if !cp.Start.Equal(first.Start) || cp.Step != first.Step || cp.ScenarioSteps != first.ScenarioSteps {
			return nil, fmt.Errorf("sim: checkpoint %d horizon (start %v, step %v, %d steps) differs from checkpoint 0's (start %v, step %v, %d steps)",
				i, cp.Start, cp.Step, cp.ScenarioSteps, first.Start, first.Step, first.ScenarioSteps)
		}
		if cp.StepsRun != first.StepsRun || !cp.LastAt.Equal(first.LastAt) {
			return nil, fmt.Errorf("sim: checkpoint %d at step %d (%v), checkpoint 0 at %d (%v): %w",
				i, cp.StepsRun, cp.LastAt, first.StepsRun, first.LastAt, ErrShardCursorMismatch)
		}
		if len(cp.ClusterIndex) != cp.Clusters || len(cp.StateIndex) != cp.States ||
			len(cp.ClusterCodes) != cp.Clusters || len(cp.StateCodes) != cp.States {
			return nil, fmt.Errorf("sim: checkpoint %d shard identity covers %d/%d clusters and %d/%d states",
				i, len(cp.ClusterIndex), cp.Clusters, len(cp.StateIndex), cp.States)
		}
		for j, sec := range optionalSections(cp) {
			if (sec.n > 0) != (firstHas[j].n > 0) {
				return nil, fmt.Errorf("sim: checkpoint %d carries %s but checkpoint 0 does not (or vice versa)", i, sec.name)
			}
		}
		if err := checkShardVectors(cp); err != nil {
			return nil, fmt.Errorf("sim: checkpoint %d: %w", i, err)
		}
		nc += cp.Clusters
		ns += cp.States
	}

	m := &Checkpoint{
		Version:       CheckpointVersion,
		WorldHash:     first.ShardOf,
		Policy:        first.Policy,
		Start:         first.Start,
		Step:          first.Step,
		ScenarioSteps: first.ScenarioSteps,
		Clusters:      nc,
		States:        ns,
		ClusterCodes:  make([]string, nc),
		StateCodes:    make([]string, ns),
		StepsRun:      first.StepsRun,
		LastAt:        first.LastAt,
		Totals: Totals{
			ClusterCost:        make([]units.Money, nc),
			ClusterEnergy:      make([]units.Energy, nc),
			PeakRate:           make([]float64, nc),
			MeanUtilizationSum: make([]float64, nc),
			OverloadSec:        make([]float64, nc),
		},
		MeterSamples: make([][]float64, nc),
		Loads:        make([]float64, nc),
		DistHists:    make([]*stats.WeightedHistogram, nc),
		Assign:       make([][]float64, ns),
	}
	if len(first.Constraints) > 0 {
		m.Constraints = make([]billing.ConstraintState, nc)
	}
	if len(first.BurstLeases) > 0 {
		m.BurstLeases = make([]billing.LeaseLedgerState, nc)
	}
	if len(first.Batteries) > 0 {
		m.Batteries = make([]storage.Snapshot, nc)
		m.Totals.StorageBoughtKWh = make([]float64, nc)
		m.Totals.StorageServedKWh = make([]float64, nc)
	}
	if len(first.DemandMeters) > 0 {
		m.DemandMeters = make([]billing.DemandMeterState, nc)
	}
	if len(first.Totals.ClusterCarbonKg) > 0 {
		m.Totals.ClusterCarbonKg = make([]float64, nc)
	}
	if len(first.BatchQueues) > 0 {
		m.BatchQueues = make([]sched.QueueState, nc)
		m.Totals.BatchServedKWh = make([]float64, nc)
		m.Totals.BatchShedKWh = make([]float64, nc)
		m.Totals.BatchDeferredKWh = make([]float64, nc)
	}

	seenCluster := make([]bool, nc)
	seenState := make([]bool, ns)
	for i, cp := range parts {
		for j, c := range cp.ClusterIndex {
			if c < 0 || c >= nc || seenCluster[c] {
				return nil, fmt.Errorf("sim: checkpoint %d cluster position %d out of range or duplicated (the parts must cover the parent fleet exactly)", i, c)
			}
			seenCluster[c] = true
			m.ClusterCodes[c] = cp.ClusterCodes[j]
			m.Totals.ClusterCost[c] = cp.Totals.ClusterCost[j]
			m.Totals.ClusterEnergy[c] = cp.Totals.ClusterEnergy[j]
			m.Totals.PeakRate[c] = cp.Totals.PeakRate[j]
			m.Totals.MeanUtilizationSum[c] = cp.Totals.MeanUtilizationSum[j]
			m.Totals.OverloadSec[c] = cp.Totals.OverloadSec[j]
			m.MeterSamples[c] = append([]float64(nil), cp.MeterSamples[j]...)
			m.Loads[c] = cp.Loads[j]
			if m.Constraints != nil {
				m.Constraints[c] = cp.Constraints[j]
			}
			if m.BurstLeases != nil {
				m.BurstLeases[c] = cp.BurstLeases[j]
			}
			if cp.DistHists[j] == nil {
				return nil, fmt.Errorf("sim: checkpoint %d missing cluster %d distance histogram", i, j)
			}
			m.DistHists[c] = cp.DistHists[j].Clone()
			if m.Batteries != nil {
				m.Batteries[c] = cp.Batteries[j]
				m.Totals.StorageBoughtKWh[c] = cp.Totals.StorageBoughtKWh[j]
				m.Totals.StorageServedKWh[c] = cp.Totals.StorageServedKWh[j]
			}
			if m.DemandMeters != nil {
				m.DemandMeters[c] = cloneDemandMeterState(cp.DemandMeters[j])
			}
			if m.Totals.ClusterCarbonKg != nil {
				m.Totals.ClusterCarbonKg[c] = cp.Totals.ClusterCarbonKg[j]
			}
			if m.BatchQueues != nil {
				m.BatchQueues[c] = sched.QueueState{Jobs: append([]sched.QueuedJob(nil), cp.BatchQueues[j].Jobs...)}
				m.Totals.BatchServedKWh[c] = cp.Totals.BatchServedKWh[j]
				m.Totals.BatchShedKWh[c] = cp.Totals.BatchShedKWh[j]
				m.Totals.BatchDeferredKWh[c] = cp.Totals.BatchDeferredKWh[j]
			}
		}
		for sj, s := range cp.StateIndex {
			if s < 0 || s >= ns || seenState[s] {
				return nil, fmt.Errorf("sim: checkpoint %d state position %d out of range or duplicated across shards", i, s)
			}
			seenState[s] = true
			m.StateCodes[s] = cp.StateCodes[sj]
			row := make([]float64, nc)
			for j, c := range cp.ClusterIndex {
				row[c] = cp.Assign[sj][j]
			}
			m.Assign[s] = row
		}
	}
	return m, nil
}

// optionalSections lists the optional per-cluster sections and their
// lengths, in the fixed order validation reports them; a section is
// carried when its length is non-zero, and every part of a merge must
// carry the same set.
func optionalSections(cp *Checkpoint) []section {
	return []section{
		{"95/5 constraint state", len(cp.Constraints)},
		{"burst lease ledgers", len(cp.BurstLeases)},
		{"battery snapshots", len(cp.Batteries)},
		{"demand meters", len(cp.DemandMeters)},
		{"carbon ledgers", len(cp.Totals.ClusterCarbonKg)},
		{"storage total ledgers", len(cp.Totals.StorageBoughtKWh)},
		{"storage served ledgers", len(cp.Totals.StorageServedKWh)},
		{"batch queues", len(cp.BatchQueues)},
		{"batch served ledgers", len(cp.Totals.BatchServedKWh)},
		{"batch shed ledgers", len(cp.Totals.BatchShedKWh)},
		{"batch deferral ledgers", len(cp.Totals.BatchDeferredKWh)},
	}
}

// checkShardVectors verifies a shard checkpoint's per-cluster and
// per-state vectors match its declared geometry before the merge indexes
// into them.
func checkShardVectors(cp *Checkpoint) error {
	nc, ns := cp.Clusters, cp.States
	for _, sec := range perClusterSections(cp) {
		if sec.n != nc {
			return fmt.Errorf("%d %s for %d clusters", sec.n, sec.name, nc)
		}
	}
	if len(cp.Assign) != ns {
		return fmt.Errorf("assignment matrix has %d rows for %d states", len(cp.Assign), ns)
	}
	for s, row := range cp.Assign {
		if len(row) != nc {
			return fmt.Errorf("assignment row %d has %d clusters, want %d", s, len(row), nc)
		}
	}
	for _, n := range []int{len(cp.Constraints), len(cp.BurstLeases), len(cp.Batteries), len(cp.DemandMeters),
		len(cp.Totals.ClusterCarbonKg), len(cp.Totals.StorageBoughtKWh), len(cp.Totals.StorageServedKWh),
		len(cp.BatchQueues), len(cp.Totals.BatchServedKWh), len(cp.Totals.BatchShedKWh), len(cp.Totals.BatchDeferredKWh)} {
		if n != 0 && n != nc {
			return fmt.Errorf("optional per-cluster section sized %d for %d clusters", n, nc)
		}
	}
	return nil
}

// cloneDemandMeterState deep-copies a demand meter's month/peak record so
// the merged checkpoint shares no slices with its parts.
func cloneDemandMeterState(s billing.DemandMeterState) billing.DemandMeterState {
	return billing.DemandMeterState{
		Months: append([]timeseries.MonthKey(nil), s.Months...),
		Peaks:  append([]float64(nil), s.Peaks...),
	}
}

// SortPartition orders each shard's members ascending, in place — the
// form Subfleet and Shard require — and returns it for chaining.
func SortPartition(p ShardPartition) ShardPartition {
	for i := range p.Clusters {
		sort.Ints(p.Clusters[i])
		sort.Ints(p.States[i])
	}
	return p
}
