package sim

import (
	"math"
	"testing"

	"powerroute/internal/sched"
)

// TestBatchEnergyConservation drives the batch scenario one step at a
// time and checks the scheduler's books balance at every step: every kWh
// of batch energy that has arrived is either served, shed at a deadline,
// or still queued — nothing is minted and nothing silently disappears.
func TestBatchEnergyConservation(t *testing.T) {
	sc := engineScenarios(t)["batch"]
	eng, err := NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	jobs := sc.Batch.Jobs
	arrived := 0.0
	cursor := 0
	var snap *Snapshot
	for step := 1; step <= sc.Steps; step++ {
		driveSteps(t, eng, sc, 1)
		// Jobs with Arrival <= step-1 were enqueued during the steps run
		// so far (jobs are sorted by Arrival).
		for cursor < len(jobs) && jobs[cursor].Arrival < step {
			arrived += jobs[cursor].EnergyKWh
			cursor++
		}
		snap = eng.SnapshotInto(snap)
		queued := 0.0
		for _, kwh := range snap.BatchQueuedKWh {
			queued += kwh
		}
		got := snap.BatchServedKWh + snap.BatchShedKWh + queued
		if diff := math.Abs(got - arrived); diff > 1e-6*math.Max(1, arrived) {
			t.Fatalf("step %d: served %v + shed %v + queued %v = %v, but %v kWh arrived (off by %v)",
				step, snap.BatchServedKWh, snap.BatchShedKWh, queued, got, arrived, diff)
		}
	}
	res, err := eng.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	// The scenario must actually exercise every ledger, or the invariant
	// above is vacuous.
	if res.BatchServedKWh <= 0 {
		t.Error("scenario served no batch energy")
	}
	if res.BatchShedKWh <= 0 {
		t.Error("scenario shed no batch energy (deadlines never bound)")
	}
	if res.BatchDeferredKWhSteps <= 0 {
		t.Error("scenario deferred no batch energy (queues never waited)")
	}
	total := 0.0
	for _, j := range jobs {
		total += j.EnergyKWh
	}
	final := res.BatchServedKWh + res.BatchShedKWh + res.BatchQueuedKWh
	if diff := math.Abs(final - total); diff > 1e-6*total {
		t.Fatalf("final books: served %v + shed %v + queued %v = %v, workload %v",
			res.BatchServedKWh, res.BatchShedKWh, res.BatchQueuedKWh, final, total)
	}
}

// TestQueueJobsValidation checks the daemon ingest path: invalid jobs are
// rejected atomically — a bad job anywhere in the slice leaves nothing
// enqueued — and valid ones land in their home queues.
func TestQueueJobsValidation(t *testing.T) {
	sc := engineScenarios(t)["batch"]
	sc.Batch = &sched.Config{
		MaxBatchKW: sc.Batch.MaxBatchKW,
		Thresholds: sc.Batch.Thresholds,
		PeakGuard:  sc.Batch.PeakGuard,
		Migrate:    sc.Batch.Migrate,
	}
	eng, err := NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, eng, sc, 3)
	good := sched.Job{Cluster: 0, Arrival: 3, Deadline: 10, EnergyKWh: 5, MinFraction: 0.5}

	bad := []struct {
		name string
		job  sched.Job
	}{
		{"cluster out of range", sched.Job{Cluster: len(sc.Fleet.Clusters), Deadline: 10, EnergyKWh: 5}},
		{"deadline not in the future", sched.Job{Cluster: 0, Deadline: 3, EnergyKWh: 5}},
		{"non-positive energy", sched.Job{Cluster: 0, Deadline: 10, EnergyKWh: 0}},
		{"non-finite energy", sched.Job{Cluster: 0, Deadline: 10, EnergyKWh: math.Inf(1)}},
		{"bad fraction", sched.Job{Cluster: 0, Deadline: 10, EnergyKWh: 5, MinFraction: 1.5}},
	}
	for _, tc := range bad {
		if err := eng.QueueJobs([]sched.Job{good, tc.job}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	var snap *Snapshot
	snap = eng.SnapshotInto(snap)
	for c, kwh := range snap.BatchQueuedKWh {
		if kwh != 0 {
			t.Fatalf("cluster %d has %v kWh queued after rejected posts (atomicity broken)", c, kwh)
		}
	}

	if err := eng.QueueJobs([]sched.Job{good, {Cluster: 1, Arrival: 3, Deadline: 8, EnergyKWh: 2, MinFraction: 1}}); err != nil {
		t.Fatal(err)
	}
	snap = eng.SnapshotInto(snap)
	if snap.BatchQueuedKWh[0] != 5 || snap.BatchQueuedKWh[1] != 2 {
		t.Fatalf("queued = %v, want 5 and 2 at clusters 0 and 1", snap.BatchQueuedKWh[:2])
	}

	// An engine without a batch class refuses jobs outright.
	plain := engineScenarios(t)["optimizer"]
	peng, err := NewEngine(plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := peng.QueueJobs([]sched.Job{good}); err == nil {
		t.Error("engine without a scheduler accepted jobs")
	}
}
