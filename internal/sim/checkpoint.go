// Durable engine state: a Checkpoint captures every per-step structure an
// Engine owns — billing meters (including per-month demand peaks), 95/5
// burst budgets, battery state-of-charge, the distance histogram, step
// cursor, and running totals — so a long-horizon run survives a process
// death. The encoding is versioned and self-describing: a text magic line
// names the format, a JSON envelope carries the small state plus the
// declared length and SHA-256 of a binary payload holding the numeric bulk
// (meter samples, histogram bins, the last assignment matrix). Old or
// foreign checkpoints fail loudly instead of loading wrong, and a world
// hash ties every checkpoint to the exact world (fleet, prices, policy,
// tariffs) that produced it.
//
// The restore invariant, enforced by test and by CI's crash-recovery job:
// replay N steps → Checkpoint → kill → Restore → replay the rest produces
// the uninterrupted batch Run's Result bit for bit. Everything in the
// checkpoint round-trips exactly — floats travel as raw bits in the
// payload and as Go's shortest-round-trip decimals in the envelope.
package sim

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"powerroute/internal/billing"
	"powerroute/internal/sched"
	"powerroute/internal/stats"
	"powerroute/internal/storage"
	"powerroute/internal/timeseries"
	"powerroute/internal/units"
)

// CheckpointVersion is the format this build writes and the only one it
// restores. Bump it whenever the engine grows per-step state the old
// layout cannot carry; old files then fail with a version error rather
// than restoring a silently incomplete engine.
//
// v2 made checkpoints mergeable across shards: fleet-wide scalars
// (total cost/energy, overload, storage totals, carbon) became
// per-cluster vectors, and the envelope gained the cluster/state codes
// plus the shard identity (parent world hash and fleet positions). A v1
// file cannot express per-cluster overload or storage totals, so it
// refuses to load instead of restoring zeros silently.
//
// v3 finished the per-cluster program for the distance distribution: the
// single fleet histogram became one histogram per cluster (hist_bytes is
// now a per-cluster length vector framing per-cluster payload blobs), so
// MergeCheckpoints scatters them disjointly and the merged mean/p99 are
// bit-exact instead of float-associativity-close. v3 also added the
// optional burst_leases section for coordinated (fleet-gated) burst
// accounting. A v2 file's joint histogram cannot be split back into
// per-cluster parts, so it refuses to load.
const CheckpointVersion = 3

const (
	checkpointMagicPrefix = "powerroute-checkpoint v"
	checkpointMagic       = "powerroute-checkpoint v3"

	// maxCheckpointPayload bounds the declared payload size a decoder will
	// read: a 39-month hourly world checkpoints in single-digit megabytes,
	// so anything near this cap is corrupt or hostile.
	maxCheckpointPayload = 1 << 30
)

// Totals holds the running sums that accumulate while stepping — all of
// them per cluster. Fleet-wide figures (the Result's TotalCost,
// TotalEnergy, overload seconds, storage totals, carbon) are derived from
// these in fleet order at Snapshot/Finalize time, never accumulated across
// clusters, which is what lets a shard merge scatter each cluster's sums
// into fleet positions and reproduce the joint run's figures bit for bit.
// Finalize-only fields (billable p95s, demand charges) are recomputed from
// the restored meters when the run ends.
//
// ckpt:state Checkpoint,loadCheckpoint,MergeCheckpoints
type Totals struct {
	ClusterCost   []units.Money  `json:"cluster_cost_usd"`  // running bill per cluster (dollars)
	ClusterEnergy []units.Energy `json:"cluster_energy_wh"` // running grid energy per cluster (watt-hours)
	PeakRate      []float64      `json:"peak_rate"`         // maximum assigned rate per cluster so far
	// MeanUtilizationSum is the running per-cluster utilization sum;
	// Finalize divides by the step count.
	MeanUtilizationSum []float64 `json:"mean_utilization_sum"`
	// OverloadSec is each cluster's demand-beyond-capacity seconds.
	OverloadSec []float64 `json:"overload_sec"`

	// StorageBoughtKWh and StorageServedKWh are per-cluster storage
	// totals, present exactly when the scenario configures storage.
	StorageBoughtKWh []float64 `json:"storage_bought_kwh,omitempty"`
	StorageServedKWh []float64 `json:"storage_served_kwh,omitempty"`

	// ClusterCarbonKg is the per-cluster emissions ledger, present when
	// the scenario meters carbon (may be absent at step 0).
	ClusterCarbonKg []float64 `json:"cluster_carbon_kg,omitempty"`

	// Batch class ledgers (served / shed-at-deadline / queue residence
	// integral per cluster), present exactly when the scenario configures
	// the deferrable class.
	BatchServedKWh   []float64 `json:"batch_served_kwh,omitempty"`
	BatchShedKWh     []float64 `json:"batch_shed_kwh,omitempty"`
	BatchDeferredKWh []float64 `json:"batch_deferred_kwh_steps,omitempty"`
}

// Checkpoint is a complete, self-contained snapshot of an Engine mid-run.
// Build one with Engine.Checkpoint, persist it with Encode/WriteFile, and
// turn it back into a live engine with Restore.
//
// ckpt:state Encode,DecodeCheckpoint,MergeCheckpoints
type Checkpoint struct {
	Version   int    // format version; Restore accepts only CheckpointVersion
	WorldHash string // sha256 over the world definition; ties the state to its exact world

	// ShardOf carries the parent world's hash when this checkpoint was
	// taken by a shard engine (a scenario built by Scenario.Shard), and is
	// empty for whole-world checkpoints. MergeCheckpoints requires every
	// part to name the same parent — that is the shard-compatibility
	// guard — and stamps the merged checkpoint's WorldHash with it, so
	// the merge restores only into the exact joint world.
	ShardOf string

	// Configuration echoes: Restore refuses a checkpoint whose geometry
	// disagrees with the target scenario even before the world hash check,
	// so error messages name the exact mismatch.
	Policy        string        // routing policy name
	Start         time.Time     // scenario start
	Step          time.Duration // interval length
	ScenarioSteps int           // horizon length in intervals
	Clusters      int           // fleet cluster count
	States        int           // fleet client-state count

	// ClusterCodes and StateCodes name the engine's fleet slots in order;
	// ClusterIndex and StateIndex give each slot's position in the parent
	// fleet when sharded (nil otherwise). Codes make restore mismatches
	// nameable; indices are what MergeCheckpoints scatters by.
	ClusterCodes []string
	StateCodes   []string
	ClusterIndex []int
	StateIndex   []int

	StepsRun int       // step cursor: intervals already advanced
	LastAt   time.Time // instant of the last advanced interval

	// Totals carries the per-cluster running sums; the optional sections
	// below are present exactly when the scenario configures the matching
	// subsystem (95/5 soft caps, storage, demand-charge tariff) — Restore
	// rejects a checkpoint whose optional sections disagree with the
	// target scenario's configuration.
	Totals       Totals
	Constraints  []billing.ConstraintState
	Batteries    []storage.Snapshot
	DemandMeters []billing.DemandMeterState
	// BatchQueues holds each cluster's live deferrable-job queue, present
	// exactly when the scenario configures the batch class (jobs stay in
	// their home cluster's queue even when served elsewhere, so the
	// section scatters disjointly across a shard merge).
	BatchQueues []sched.QueueState
	// BurstLeases books each cluster's coordinated burst-token traffic
	// (granted/used/expired), present exactly when the scenario configures
	// a BurstGate. Tokens are booked at the cluster they were leased to,
	// so the section scatters disjointly across a shard merge.
	BurstLeases []billing.LeaseLedgerState

	// MeterSamples holds each cluster's full per-interval rate record (the
	// 95/5 bill needs every sample); DistHists the per-cluster hit-weighted
	// distance histograms (fleet order); Loads and Assign the last
	// interval's rates and full state×cluster assignment matrix
	// (status/assignments endpoints). These travel as raw little-endian
	// float64 bits in the binary payload, so they round-trip bit-exactly.
	MeterSamples [][]float64
	DistHists    []*stats.WeightedHistogram
	Loads        []float64
	Assign       [][]float64
}

// Checkpoint captures the engine's complete per-run state. The engine is
// not mutated and keeps stepping afterwards; a finalized engine cannot be
// checkpointed (its books are closed — restore targets a live run).
func (e *Engine) Checkpoint() (*Checkpoint, error) {
	if e.finalized {
		return nil, errors.New("sim: cannot checkpoint a finalized engine")
	}
	cp := &Checkpoint{
		Version:       CheckpointVersion,
		WorldHash:     e.WorldHash(),
		ShardOf:       e.sc.shardOf,
		Policy:        e.res.Policy,
		Start:         e.sc.Start,
		Step:          e.sc.Step,
		ScenarioSteps: e.sc.Steps,
		Clusters:      e.nc,
		States:        e.ns,
		ClusterCodes:  make([]string, e.nc),
		StateCodes:    make([]string, e.ns),
		ClusterIndex:  append([]int(nil), e.sc.shardClusters...),
		StateIndex:    append([]int(nil), e.sc.shardStates...),
		StepsRun:      e.stepsRun,
		LastAt:        e.lastAt,
		Totals: Totals{
			ClusterCost:        append([]units.Money(nil), e.res.ClusterCost...),
			ClusterEnergy:      append([]units.Energy(nil), e.res.ClusterEnergy...),
			PeakRate:           append([]float64(nil), e.res.PeakRate...),
			MeanUtilizationSum: append([]float64(nil), e.res.MeanUtilization...),
			OverloadSec:        append([]float64(nil), e.overloadSec...),
			StorageBoughtKWh:   append([]float64(nil), e.storageBought...),
			StorageServedKWh:   append([]float64(nil), e.storageServed...),
			ClusterCarbonKg:    append([]float64(nil), e.res.ClusterCarbonKg...),
			BatchServedKWh:     append([]float64(nil), e.batchServed...),
			BatchShedKWh:       append([]float64(nil), e.batchShed...),
			BatchDeferredKWh:   append([]float64(nil), e.batchDeferred...),
		},
		MeterSamples: make([][]float64, e.nc),
		DistHists:    make([]*stats.WeightedHistogram, e.nc),
		Loads:        append([]float64(nil), e.loads...),
		Assign:       make([][]float64, e.ns),
	}
	for c, h := range e.distHists {
		cp.DistHists[c] = h.Clone()
	}
	for c, cl := range e.sc.Fleet.Clusters {
		cp.ClusterCodes[c] = cl.Code
	}
	for s, st := range e.sc.Fleet.States {
		cp.StateCodes[s] = st.Code
	}
	for c := range e.meters {
		cp.MeterSamples[c] = e.meters[c].Samples()
	}
	for s := range e.assign {
		cp.Assign[s] = append([]float64(nil), e.assign[s]...)
	}
	if e.constraints != nil {
		cp.Constraints = make([]billing.ConstraintState, e.nc)
		for c, con := range e.constraints {
			cp.Constraints[c] = con.State()
		}
	}
	if e.batteries != nil {
		cp.Batteries = make([]storage.Snapshot, e.nc)
		for c, b := range e.batteries {
			cp.Batteries[c] = b.Snapshot()
		}
	}
	if e.demandMeters != nil {
		cp.DemandMeters = make([]billing.DemandMeterState, e.nc)
		for c, m := range e.demandMeters {
			cp.DemandMeters[c] = m.State()
		}
	}
	if e.sched != nil {
		cp.BatchQueues = e.sched.State()
	}
	if e.leases != nil {
		cp.BurstLeases = make([]billing.LeaseLedgerState, e.nc)
		for c, l := range e.leases {
			cp.BurstLeases[c] = l.State()
		}
	}
	return cp, nil
}

// Restore builds a fresh engine for the scenario and loads the checkpoint
// into it, resuming the run mid-horizon. The scenario must describe the
// exact world the checkpoint came from: the world hash (fleet, price
// series, policy, tariffs, storage config) and every configuration echo
// are verified before any state is applied.
func Restore(sc Scenario, cp *Checkpoint) (*Engine, error) {
	eng, err := NewEngine(sc)
	if err != nil {
		return nil, err
	}
	if err := eng.loadCheckpoint(cp); err != nil {
		return nil, fmt.Errorf("sim: restore: %w", err)
	}
	return eng, nil
}

// Scenario returns the scenario the engine was built from. Slice and
// pointer fields (fleet, market, policy) are shared with the engine; the
// intended use is rebuilding an equivalent engine, e.g. Restore after a
// PUT /v1/checkpoint.
func (e *Engine) Scenario() Scenario { return e.sc }

// loadCheckpoint validates cp against the freshly built engine and applies
// it. The engine must not have stepped yet.
func (e *Engine) loadCheckpoint(cp *Checkpoint) error {
	if cp == nil {
		return errors.New("nil checkpoint")
	}
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("checkpoint version %d, this build restores only v%d", cp.Version, CheckpointVersion)
	}
	if e.stepsRun != 0 || e.finalized {
		return errors.New("restore target engine already advanced")
	}
	if cp.Policy != e.res.Policy {
		return fmt.Errorf("checkpoint from policy %q, scenario runs %q", cp.Policy, e.res.Policy)
	}
	if cp.Clusters != e.nc || cp.States != e.ns {
		return fmt.Errorf("checkpoint geometry %d clusters × %d states, scenario has %d × %d",
			cp.Clusters, cp.States, e.nc, e.ns)
	}
	if !cp.Start.Equal(e.sc.Start) || cp.Step != e.sc.Step || cp.ScenarioSteps != e.sc.Steps {
		return fmt.Errorf("checkpoint horizon (start %v, step %v, %d steps) differs from scenario (start %v, step %v, %d steps)",
			cp.Start, cp.Step, cp.ScenarioSteps, e.sc.Start, e.sc.Step, e.sc.Steps)
	}
	if got, want := cp.WorldHash, e.WorldHash(); got != want {
		return fmt.Errorf("world hash mismatch: checkpoint %s, scenario %s (different seed, market, fleet, or tariff)", got, want)
	}
	if cp.ShardOf != e.sc.shardOf {
		return fmt.Errorf("checkpoint shard parent %q, scenario's is %q", cp.ShardOf, e.sc.shardOf)
	}
	if !equalInts(cp.ClusterIndex, e.sc.shardClusters) || !equalInts(cp.StateIndex, e.sc.shardStates) {
		return errors.New("checkpoint shard positions differ from the scenario's partition")
	}
	if cp.StepsRun < 0 {
		return fmt.Errorf("negative step cursor %d", cp.StepsRun)
	}
	if len(cp.ClusterCodes) != e.nc || len(cp.StateCodes) != e.ns {
		return fmt.Errorf("checkpoint names %d clusters and %d states, scenario has %d and %d",
			len(cp.ClusterCodes), len(cp.StateCodes), e.nc, e.ns)
	}
	for c, cl := range e.sc.Fleet.Clusters {
		if cp.ClusterCodes[c] != cl.Code {
			return fmt.Errorf("checkpoint cluster %d is %q, scenario's is %q", c, cp.ClusterCodes[c], cl.Code)
		}
	}
	for s, st := range e.sc.Fleet.States {
		if cp.StateCodes[s] != st.Code {
			return fmt.Errorf("checkpoint state %d is %q, scenario's is %q", s, cp.StateCodes[s], st.Code)
		}
	}

	// Per-cluster vectors, checked in fixed order so a multi-section
	// mismatch always reports the same error text.
	for _, sec := range perClusterSections(cp) {
		if sec.n != e.nc {
			return fmt.Errorf("checkpoint has %d %s for %d clusters", sec.n, sec.name, e.nc)
		}
	}
	for c, samples := range cp.MeterSamples {
		if len(samples) != cp.StepsRun {
			return fmt.Errorf("cluster %d meter has %d samples for %d steps", c, len(samples), cp.StepsRun)
		}
	}
	if len(cp.Assign) != e.ns {
		return fmt.Errorf("assignment matrix has %d state rows, want %d", len(cp.Assign), e.ns)
	}
	for s, row := range cp.Assign {
		if len(row) != e.nc {
			return fmt.Errorf("assignment row %d has %d clusters, want %d", s, len(row), e.nc)
		}
	}

	// Optional subsystems must match the scenario's configuration exactly.
	if (e.constraints != nil) != (len(cp.Constraints) > 0) {
		return fmt.Errorf("scenario 95/5 constraints %v, checkpoint carries %d constraint states",
			e.constraints != nil, len(cp.Constraints))
	}
	if e.constraints != nil && len(cp.Constraints) != e.nc {
		return fmt.Errorf("checkpoint has %d constraint states for %d clusters", len(cp.Constraints), e.nc)
	}
	if (e.batteries != nil) != (len(cp.Batteries) > 0) {
		return fmt.Errorf("scenario storage %v, checkpoint carries %d battery snapshots",
			e.batteries != nil, len(cp.Batteries))
	}
	if e.batteries != nil && len(cp.Batteries) != e.nc {
		return fmt.Errorf("checkpoint has %d battery snapshots for %d clusters", len(cp.Batteries), e.nc)
	}
	if e.batteries != nil && (len(cp.Totals.StorageBoughtKWh) != e.nc || len(cp.Totals.StorageServedKWh) != e.nc) {
		return fmt.Errorf("checkpoint has %d/%d storage total ledgers for %d clusters",
			len(cp.Totals.StorageBoughtKWh), len(cp.Totals.StorageServedKWh), e.nc)
	}
	if e.batteries == nil && (len(cp.Totals.StorageBoughtKWh) > 0 || len(cp.Totals.StorageServedKWh) > 0) {
		return errors.New("checkpoint carries storage totals the scenario does not configure")
	}
	if (e.demandMeters != nil) != (len(cp.DemandMeters) > 0) {
		return fmt.Errorf("scenario demand-charge metering %v, checkpoint carries %d demand meters",
			e.demandMeters != nil, len(cp.DemandMeters))
	}
	if e.demandMeters != nil && len(cp.DemandMeters) != e.nc {
		return fmt.Errorf("checkpoint has %d demand meters for %d clusters", len(cp.DemandMeters), e.nc)
	}
	if (e.sched != nil) != (len(cp.BatchQueues) > 0) {
		return fmt.Errorf("scenario batch class %v, checkpoint carries %d batch queues",
			e.sched != nil, len(cp.BatchQueues))
	}
	if e.sched != nil && len(cp.BatchQueues) != e.nc {
		return fmt.Errorf("checkpoint has %d batch queues for %d clusters", len(cp.BatchQueues), e.nc)
	}
	if e.sched != nil && (len(cp.Totals.BatchServedKWh) != e.nc || len(cp.Totals.BatchShedKWh) != e.nc || len(cp.Totals.BatchDeferredKWh) != e.nc) {
		return fmt.Errorf("checkpoint has %d/%d/%d batch ledgers for %d clusters",
			len(cp.Totals.BatchServedKWh), len(cp.Totals.BatchShedKWh), len(cp.Totals.BatchDeferredKWh), e.nc)
	}
	if e.sched == nil && (len(cp.Totals.BatchServedKWh) > 0 || len(cp.Totals.BatchShedKWh) > 0 || len(cp.Totals.BatchDeferredKWh) > 0) {
		return errors.New("checkpoint carries batch ledgers the scenario does not configure")
	}
	if (e.leases != nil) != (len(cp.BurstLeases) > 0) {
		return fmt.Errorf("scenario burst gate %v, checkpoint carries %d burst lease ledgers",
			e.leases != nil, len(cp.BurstLeases))
	}
	if e.leases != nil && len(cp.BurstLeases) != e.nc {
		return fmt.Errorf("checkpoint has %d burst lease ledgers for %d clusters", len(cp.BurstLeases), e.nc)
	}
	if (e.res.ClusterCarbonKg != nil) != (len(cp.Totals.ClusterCarbonKg) > 0) && cp.StepsRun > 0 {
		// Carbon totals can be legitimately absent at step 0 (all zeros).
		if e.res.ClusterCarbonKg != nil {
			return errors.New("scenario meters carbon but checkpoint has no carbon ledger")
		}
		return errors.New("checkpoint carries a carbon ledger the scenario does not meter")
	}
	if len(cp.Totals.ClusterCarbonKg) > 0 && len(cp.Totals.ClusterCarbonKg) != e.nc {
		return fmt.Errorf("checkpoint has %d carbon ledgers for %d clusters", len(cp.Totals.ClusterCarbonKg), e.nc)
	}

	// Distance histogram geometry must match the engine's fixed layout,
	// cluster by cluster (the count itself is a mandatory per-cluster
	// section checked above).
	for c, h := range cp.DistHists {
		if h == nil {
			return fmt.Errorf("checkpoint missing cluster %d distance histogram", c)
		}
		gotMin, gotMax := h.Bounds()
		wantMin, wantMax := e.distHists[c].Bounds()
		if gotMin != wantMin || gotMax != wantMax || h.NumBins() != e.distHists[c].NumBins() {
			return fmt.Errorf("cluster %d distance histogram geometry [%v, %v]×%d differs from engine's [%v, %v]×%d",
				c, gotMin, gotMax, h.NumBins(), wantMin, wantMax, e.distHists[c].NumBins())
		}
	}

	// Validation done — apply. Order mirrors NewEngine's construction.
	for c, con := range e.constraints {
		if cp.Constraints[c].IntervalsRun != cp.StepsRun {
			return fmt.Errorf("cluster %d constraint ran %d intervals, checkpoint at step %d",
				c, cp.Constraints[c].IntervalsRun, cp.StepsRun)
		}
		if err := con.RestoreState(cp.Constraints[c]); err != nil {
			return fmt.Errorf("cluster %d: %w", c, err)
		}
	}
	for c, b := range e.batteries {
		if err := b.RestoreSnapshot(cp.Batteries[c]); err != nil {
			return fmt.Errorf("cluster %d: %w", c, err)
		}
	}
	for c, m := range e.demandMeters {
		if err := m.RestoreState(cp.DemandMeters[c]); err != nil {
			return fmt.Errorf("cluster %d: %w", c, err)
		}
	}
	if e.sched != nil {
		if err := e.sched.RestoreState(cp.BatchQueues, cp.StepsRun); err != nil {
			return err
		}
	}
	for c, l := range e.leases {
		if err := l.RestoreState(cp.BurstLeases[c]); err != nil {
			return fmt.Errorf("cluster %d: %w", c, err)
		}
	}
	for c := range e.meters {
		e.meters[c].RestoreSamples(cp.MeterSamples[c])
		// RestoreSamples copies at exact capacity; re-reserve the horizon so
		// the remaining steps record without reallocating.
		e.meters[c].Reserve(e.sc.Steps)
	}
	for c, h := range cp.DistHists {
		e.distHists[c] = h.Clone()
	}
	copy(e.loads, cp.Loads)
	for s := range e.assign {
		copy(e.assign[s], cp.Assign[s])
	}

	res := e.res
	copy(res.ClusterCost, cp.Totals.ClusterCost)
	copy(res.ClusterEnergy, cp.Totals.ClusterEnergy)
	copy(res.PeakRate, cp.Totals.PeakRate)
	copy(res.MeanUtilization, cp.Totals.MeanUtilizationSum)
	copy(e.overloadSec, cp.Totals.OverloadSec)
	if e.batteries != nil {
		copy(e.storageBought, cp.Totals.StorageBoughtKWh)
		copy(e.storageServed, cp.Totals.StorageServedKWh)
	}
	if res.ClusterCarbonKg != nil && len(cp.Totals.ClusterCarbonKg) == e.nc {
		copy(res.ClusterCarbonKg, cp.Totals.ClusterCarbonKg)
	}
	if e.sched != nil {
		copy(e.batchServed, cp.Totals.BatchServedKWh)
		copy(e.batchShed, cp.Totals.BatchShedKWh)
		copy(e.batchDeferred, cp.Totals.BatchDeferredKWh)
	}

	e.stepsRun = cp.StepsRun
	e.lastAt = cp.LastAt
	return nil
}

// equalInts reports whether a and b hold the same values (nil equals nil
// and the empty slice).
// section names one checkpoint section and carries its length; the
// validators walk sections as fixed slices, in declaration order, so a
// checkpoint with several wrong-sized sections always fails with the
// same error text (a map range here would pick one at random per run).
type section struct {
	name string
	n    int
}

// perClusterSections lists the mandatory per-cluster vectors in the
// order validation reports them.
func perClusterSections(cp *Checkpoint) []section {
	return []section{
		{"cluster costs", len(cp.Totals.ClusterCost)},
		{"cluster energies", len(cp.Totals.ClusterEnergy)},
		{"peak rates", len(cp.Totals.PeakRate)},
		{"utilization sums", len(cp.Totals.MeanUtilizationSum)},
		{"overload ledgers", len(cp.Totals.OverloadSec)},
		{"meter sample lists", len(cp.MeterSamples)},
		{"last-interval rates", len(cp.Loads)},
		{"distance histograms", len(cp.DistHists)},
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WorldHash returns a SHA-256 digest ("sha256:…") over everything that
// defines the engine's world and billing contract: the fleet geometry, the
// full per-cluster price series (so two different market seeds can never
// be confused), the routing policy, the reaction delay, soft caps, storage
// configuration, carbon/decision series, and the demand-charge tariff.
// Computed once per engine and cached; the step hot path never touches it.
func (e *Engine) WorldHash() string {
	if e.worldHash == "" {
		e.worldHash = worldHash(&e.sc, e.prices)
	}
	return e.worldHash
}

func worldHash(sc *Scenario, prices []*timeseries.Series) string {
	h := sha256.New()
	fmt.Fprintf(h, "powerroute-world v1\npolicy=%s\nstart=%d step=%d steps=%d delay=%d demand_charge=%x\nenergy=%+v\n",
		sc.Policy.Name(), sc.Start.UnixNano(), int64(sc.Step), sc.Steps,
		int64(sc.ReactionDelay), math.Float64bits(sc.DemandChargePerKW), sc.Energy)
	for _, cl := range sc.Fleet.Clusters {
		fmt.Fprintf(h, "cluster %s hub=%s servers=%d capacity=%x\n",
			cl.Code, cl.HubID, cl.Servers, math.Float64bits(float64(cl.Capacity)))
	}
	for _, st := range sc.Fleet.States {
		fmt.Fprintf(h, "state %s\n", st.Code)
	}
	if sc.SoftCaps != nil {
		fmt.Fprint(h, "softcaps")
		for _, v := range sc.SoftCaps {
			fmt.Fprintf(h, " %x", math.Float64bits(v))
		}
		fmt.Fprintln(h)
	}
	if sc.Storage != nil {
		fmt.Fprintf(h, "storage policy=%s routing_aware=%v\n", sc.Storage.Policy.Name(), sc.Storage.RoutingAware)
		for _, b := range sc.Storage.Batteries {
			fmt.Fprintf(h, "battery %x %x %x %x %x\n",
				math.Float64bits(b.CapacityKWh), math.Float64bits(b.MaxChargeKW),
				math.Float64bits(b.MaxDischargeKW), math.Float64bits(b.RoundTripEfficiency),
				math.Float64bits(b.InitialSoC))
		}
	}
	if sc.Batch != nil {
		fmt.Fprintf(h, "batch peak_guard=%v migrate=%v\nbatch_max_kw", sc.Batch.PeakGuard, sc.Batch.Migrate)
		for _, v := range sc.Batch.MaxBatchKW {
			fmt.Fprintf(h, " %x", math.Float64bits(v))
		}
		fmt.Fprint(h, "\nbatch_thresholds")
		for _, v := range sc.Batch.Thresholds {
			fmt.Fprintf(h, " %x", math.Float64bits(v))
		}
		fmt.Fprintln(h)
		for _, j := range sc.Batch.Jobs {
			fmt.Fprintf(h, "batch_job %d %d %d %x %x\n",
				j.Cluster, j.Arrival, j.Deadline,
				math.Float64bits(j.EnergyKWh), math.Float64bits(j.MinFraction))
		}
	}
	hashSeries := func(label string, series []*timeseries.Series) {
		for i, s := range series {
			fmt.Fprintf(h, "%s %d start=%d step=%d n=%d\n", label, i, s.Start.UnixNano(), int64(s.Step), len(s.Values))
			_ = binary.Write(h, binary.LittleEndian, s.Values)
		}
	}
	hashSeries("rt", prices)
	if sc.DecisionSeries != nil {
		hashSeries("decision", sc.DecisionSeries)
	}
	if sc.Carbon != nil {
		hashSeries("carbon", sc.Carbon)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// --- wire format -----------------------------------------------------------

// checkpointEnvelope is the JSON line after the magic: every small field
// plus the payload's section lengths and digest. Numeric bulk lives in the
// binary payload that follows.
//
// ckpt:state Encode,DecodeCheckpoint
type checkpointEnvelope struct {
	Version       int       `json:"version"`
	WorldHash     string    `json:"world_hash"`
	ShardOf       string    `json:"shard_of,omitempty"`
	Policy        string    `json:"policy"`
	Start         time.Time `json:"start"`
	StepNS        int64     `json:"step_ns"`
	ScenarioSteps int       `json:"scenario_steps"`
	Clusters      int       `json:"clusters"`
	States        int       `json:"states"`
	ClusterCodes  []string  `json:"cluster_codes"`
	StateCodes    []string  `json:"state_codes"`
	ClusterIndex  []int     `json:"cluster_index,omitempty"`
	StateIndex    []int     `json:"state_index,omitempty"`
	StepsRun      int       `json:"steps_run"`
	LastAt        time.Time `json:"last_at"`

	Totals       Totals                     `json:"totals"`
	Constraints  []billing.ConstraintState  `json:"constraints,omitempty"`
	Batteries    []storage.Snapshot         `json:"batteries,omitempty"`
	DemandMeters []billing.DemandMeterState `json:"demand_meters,omitempty"`
	BatchQueues  []sched.QueueState         `json:"batch_queues,omitempty"`
	BurstLeases  []billing.LeaseLedgerState `json:"burst_leases,omitempty"`

	// Payload layout: HistBytes[c] bytes of histogram blob per cluster in
	// fleet order, then MeterSamples[c] float64s per cluster, then
	// Clusters last-interval rates, then the States×Clusters assignment
	// matrix row-major — all little-endian.
	HistBytes     []int  `json:"hist_bytes"`
	MeterSamples  []int  `json:"meter_samples"`
	PayloadBytes  int64  `json:"payload_bytes"`
	PayloadSHA256 string `json:"payload_sha256"`
}

// Encode writes the checkpoint: the magic line, the JSON envelope line,
// then the binary payload.
func (cp *Checkpoint) Encode(w io.Writer) error {
	histBlobs := make([][]byte, len(cp.DistHists))
	histBytes := make([]int, len(cp.DistHists))
	var histTotal int
	for c, h := range cp.DistHists {
		blob, err := h.MarshalBinary()
		if err != nil {
			return fmt.Errorf("sim: encoding cluster %d distance histogram: %w", c, err)
		}
		histBlobs[c] = blob
		histBytes[c] = len(blob)
		histTotal += len(blob)
	}
	var sampleTotal int
	counts := make([]int, len(cp.MeterSamples))
	for c, samples := range cp.MeterSamples {
		counts[c] = len(samples)
		sampleTotal += len(samples)
	}
	payload := make([]byte, 0, histTotal+8*(sampleTotal+len(cp.Loads)+cp.States*cp.Clusters))
	for _, blob := range histBlobs {
		payload = append(payload, blob...)
	}
	for _, samples := range cp.MeterSamples {
		payload = appendFloats(payload, samples)
	}
	payload = appendFloats(payload, cp.Loads)
	for _, row := range cp.Assign {
		payload = appendFloats(payload, row)
	}
	digest := sha256.Sum256(payload)

	env := checkpointEnvelope{
		Version:       cp.Version,
		WorldHash:     cp.WorldHash,
		ShardOf:       cp.ShardOf,
		Policy:        cp.Policy,
		Start:         cp.Start,
		StepNS:        int64(cp.Step),
		ScenarioSteps: cp.ScenarioSteps,
		Clusters:      cp.Clusters,
		States:        cp.States,
		ClusterCodes:  cp.ClusterCodes,
		StateCodes:    cp.StateCodes,
		ClusterIndex:  cp.ClusterIndex,
		StateIndex:    cp.StateIndex,
		StepsRun:      cp.StepsRun,
		LastAt:        cp.LastAt,
		Totals:        cp.Totals,
		Constraints:   cp.Constraints,
		Batteries:     cp.Batteries,
		DemandMeters:  cp.DemandMeters,
		BatchQueues:   cp.BatchQueues,
		BurstLeases:   cp.BurstLeases,
		HistBytes:     histBytes,
		MeterSamples:  counts,
		PayloadBytes:  int64(len(payload)),
		PayloadSHA256: hex.EncodeToString(digest[:]),
	}
	envJSON, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("sim: encoding checkpoint envelope: %w", err)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "%s\n%s\n", checkpointMagic, envJSON); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	return bw.Flush()
}

func appendFloats(b []byte, vals []float64) []byte {
	for _, v := range vals {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// DecodeCheckpoint parses one encoded checkpoint. Every failure mode is
// loud and specific: wrong magic, unsupported version, malformed envelope,
// declared/actual payload length mismatch (truncated file), digest
// mismatch (corruption), trailing bytes, or internally inconsistent
// section lengths.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sim: reading checkpoint magic: %w", err)
	}
	magic = strings.TrimSuffix(magic, "\n")
	if magic != checkpointMagic {
		if strings.HasPrefix(magic, checkpointMagicPrefix) {
			return nil, fmt.Errorf("sim: unsupported checkpoint format %q (this build reads %q)", magic, checkpointMagic)
		}
		return nil, errors.New("sim: not a powerroute checkpoint")
	}
	envLine, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sim: reading checkpoint envelope: %w", err)
	}
	var env checkpointEnvelope
	if err := json.Unmarshal([]byte(envLine), &env); err != nil {
		return nil, fmt.Errorf("sim: decoding checkpoint envelope: %w", err)
	}
	if env.Version != CheckpointVersion {
		return nil, fmt.Errorf("sim: checkpoint version %d, this build reads v%d", env.Version, CheckpointVersion)
	}
	if env.Clusters <= 0 || env.Clusters > 1<<20 || env.States <= 0 || env.States > 1<<20 {
		return nil, fmt.Errorf("sim: checkpoint geometry %d clusters × %d states out of range", env.Clusters, env.States)
	}
	if env.StepsRun < 0 {
		return nil, fmt.Errorf("sim: negative step cursor %d", env.StepsRun)
	}
	if len(env.ClusterCodes) != env.Clusters || len(env.StateCodes) != env.States {
		return nil, fmt.Errorf("sim: checkpoint names %d clusters and %d states for geometry %d × %d",
			len(env.ClusterCodes), len(env.StateCodes), env.Clusters, env.States)
	}
	if (len(env.ClusterIndex) > 0) != (len(env.StateIndex) > 0) || (env.ShardOf == "") != (len(env.ClusterIndex) == 0) {
		return nil, errors.New("sim: checkpoint shard identity is incomplete (needs shard_of, cluster_index, and state_index together)")
	}
	if len(env.ClusterIndex) > 0 && (len(env.ClusterIndex) != env.Clusters || len(env.StateIndex) != env.States) {
		return nil, fmt.Errorf("sim: checkpoint shard positions cover %d clusters and %d states for geometry %d × %d",
			len(env.ClusterIndex), len(env.StateIndex), env.Clusters, env.States)
	}
	if len(env.MeterSamples) != env.Clusters {
		return nil, fmt.Errorf("sim: %d meter sample counts for %d clusters", len(env.MeterSamples), env.Clusters)
	}
	if len(env.HistBytes) != env.Clusters {
		return nil, fmt.Errorf("sim: %d histogram lengths for %d clusters", len(env.HistBytes), env.Clusters)
	}
	var histTotal int64
	for c, n := range env.HistBytes {
		// Per-length bound before summing, same overflow guard as the
		// meter sample counts below.
		if n < 0 || n > maxCheckpointPayload {
			return nil, fmt.Errorf("sim: cluster %d histogram length %d out of range", c, n)
		}
		histTotal += int64(n)
	}
	if histTotal > maxCheckpointPayload {
		return nil, fmt.Errorf("sim: %d total histogram bytes exceed the payload cap", histTotal)
	}
	var sampleTotal int64
	for c, n := range env.MeterSamples {
		// Per-count bound before summing: without it a pair of huge counts
		// overflows sampleTotal and the consistency check below compares
		// wrapped garbage, letting a crafted envelope drive the section
		// parser into an absurd allocation instead of an error.
		if n < 0 || n > maxCheckpointPayload/8 {
			return nil, fmt.Errorf("sim: cluster %d declares %d meter samples", c, n)
		}
		sampleTotal += int64(n)
	}
	if sampleTotal > maxCheckpointPayload/8 {
		return nil, fmt.Errorf("sim: %d total meter samples exceed the payload cap", sampleTotal)
	}
	want := histTotal + 8*(sampleTotal+int64(env.Clusters)+int64(env.States)*int64(env.Clusters))
	if env.PayloadBytes != want {
		return nil, fmt.Errorf("sim: declared payload %d bytes, sections sum to %d", env.PayloadBytes, want)
	}
	if env.PayloadBytes > maxCheckpointPayload {
		return nil, fmt.Errorf("sim: payload %d bytes exceeds the %d-byte cap", env.PayloadBytes, maxCheckpointPayload)
	}

	// Read the payload through a limit so a truncated file surfaces as a
	// short read (memory use tracks the bytes actually present).
	var buf bytes.Buffer
	n, err := io.Copy(&buf, io.LimitReader(br, env.PayloadBytes))
	if err != nil {
		return nil, fmt.Errorf("sim: reading checkpoint payload: %w", err)
	}
	if n != env.PayloadBytes {
		return nil, fmt.Errorf("sim: checkpoint truncated: payload has %d of %d declared bytes", n, env.PayloadBytes)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, errors.New("sim: trailing bytes after checkpoint payload")
	}
	payload := buf.Bytes()
	digest := sha256.Sum256(payload)
	if got := hex.EncodeToString(digest[:]); got != strings.ToLower(env.PayloadSHA256) {
		return nil, fmt.Errorf("sim: checkpoint payload digest %s does not match declared %s (corrupt file)", got, env.PayloadSHA256)
	}

	// The envelope's optional sections use omitempty, so an empty slice in
	// a hand-crafted file would not survive a re-encode; normalize to nil
	// (absent) so decode(encode(decode(x))) is a fixed point.
	if len(env.Constraints) == 0 {
		env.Constraints = nil
	}
	if len(env.Batteries) == 0 {
		env.Batteries = nil
	}
	if len(env.DemandMeters) == 0 {
		env.DemandMeters = nil
	}
	if len(env.BatchQueues) == 0 {
		env.BatchQueues = nil
	}
	for i := range env.BatchQueues {
		if len(env.BatchQueues[i].Jobs) == 0 {
			env.BatchQueues[i].Jobs = nil
		}
	}
	if len(env.Totals.BatchServedKWh) == 0 {
		env.Totals.BatchServedKWh = nil
	}
	if len(env.Totals.BatchShedKWh) == 0 {
		env.Totals.BatchShedKWh = nil
	}
	if len(env.Totals.BatchDeferredKWh) == 0 {
		env.Totals.BatchDeferredKWh = nil
	}
	if len(env.Totals.ClusterCarbonKg) == 0 {
		env.Totals.ClusterCarbonKg = nil
	}
	if len(env.Totals.StorageBoughtKWh) == 0 {
		env.Totals.StorageBoughtKWh = nil
	}
	if len(env.Totals.StorageServedKWh) == 0 {
		env.Totals.StorageServedKWh = nil
	}
	if len(env.ClusterIndex) == 0 {
		env.ClusterIndex = nil
	}
	if len(env.StateIndex) == 0 {
		env.StateIndex = nil
	}
	if len(env.BurstLeases) == 0 {
		env.BurstLeases = nil
	}
	cp := &Checkpoint{
		Version:       env.Version,
		WorldHash:     env.WorldHash,
		ShardOf:       env.ShardOf,
		Policy:        env.Policy,
		Start:         env.Start,
		Step:          time.Duration(env.StepNS),
		ScenarioSteps: env.ScenarioSteps,
		Clusters:      env.Clusters,
		States:        env.States,
		ClusterCodes:  env.ClusterCodes,
		StateCodes:    env.StateCodes,
		ClusterIndex:  env.ClusterIndex,
		StateIndex:    env.StateIndex,
		StepsRun:      env.StepsRun,
		LastAt:        env.LastAt,
		Totals:        env.Totals,
		Constraints:   env.Constraints,
		Batteries:     env.Batteries,
		DemandMeters:  env.DemandMeters,
		BatchQueues:   env.BatchQueues,
		BurstLeases:   env.BurstLeases,
	}
	off := 0
	take := func(n int) []byte {
		b := payload[off : off+n]
		off += n
		return b
	}
	cp.DistHists = make([]*stats.WeightedHistogram, env.Clusters)
	for c := range cp.DistHists {
		cp.DistHists[c] = new(stats.WeightedHistogram)
		if err := cp.DistHists[c].UnmarshalBinary(take(env.HistBytes[c])); err != nil {
			return nil, fmt.Errorf("sim: decoding cluster %d distance histogram: %w", c, err)
		}
	}
	cp.MeterSamples = make([][]float64, env.Clusters)
	for c, cnt := range env.MeterSamples {
		cp.MeterSamples[c] = readFloats(take(8*cnt), cnt)
	}
	cp.Loads = readFloats(take(8*env.Clusters), env.Clusters)
	cp.Assign = make([][]float64, env.States)
	for s := range cp.Assign {
		cp.Assign[s] = readFloats(take(8*env.Clusters), env.Clusters)
	}
	return cp, nil
}

func readFloats(b []byte, n int) []float64 {
	if n == 0 {
		// A zero-step meter serializes as nil; keep decode(encode(x)) == x.
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// WriteCheckpointFile encodes cp to path atomically: the bytes land in a
// temp file in the same directory, are synced, and replace path with one
// rename — a crash mid-write can never leave a half-written checkpoint
// under the real name.
func WriteCheckpointFile(path string, cp *Checkpoint) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("sim: checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err := cp.Encode(f); err != nil {
		return fmt.Errorf("sim: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sim: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("sim: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sim: publishing checkpoint: %w", err)
	}
	tmp = "" // renamed away; nothing to clean up
	return nil
}

// ReadCheckpointFile decodes the checkpoint at path.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}
