// Package tracefile reads and writes the simulator's time series as CSV,
// so synthetic traces can be exported for external plotting and — more
// importantly — real price archives (RTO published data) or CDN logs can
// replace the synthetic world without code changes.
//
// Price CSV format (hourly or daily):
//
//	timestamp,price
//	2006-01-01T00:00:00Z,43.75
//
// Demand CSV format (5-minute, one column per state):
//
//	timestamp,AL,AK,AZ,...
//	2008-12-19T00:00:00Z,1201.5,88.2,...
package tracefile

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"powerroute/internal/timeseries"
)

// timeLayout is RFC 3339 UTC with second precision.
const timeLayout = time.RFC3339

// WriteSeries emits a series as a two-column CSV.
func WriteSeries(w io.Writer, s *timeseries.Series, valueHeader string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", valueHeader}); err != nil {
		return err
	}
	for i, v := range s.Values {
		if err := cw.Write([]string{
			s.TimeAt(i).UTC().Format(timeLayout),
			strconv.FormatFloat(v, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSeries parses a two-column CSV back into a series. The sampling step
// is inferred from the first two rows and every subsequent timestamp must
// follow it exactly (the simulator requires dense regular series).
func ReadSeries(r io.Reader) (*timeseries.Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	if len(rows) < 3 { // header + at least two samples
		return nil, fmt.Errorf("tracefile: need at least two samples, got %d rows", len(rows))
	}
	rows = rows[1:] // drop header
	times := make([]time.Time, len(rows))
	values := make([]float64, len(rows))
	for i, row := range rows {
		at, err := time.Parse(timeLayout, row[0])
		if err != nil {
			return nil, fmt.Errorf("tracefile: row %d: %w", i+2, err)
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("tracefile: row %d: %w", i+2, err)
		}
		times[i] = at.UTC()
		values[i] = v
	}
	step := times[1].Sub(times[0])
	if step <= 0 {
		return nil, fmt.Errorf("tracefile: non-increasing timestamps")
	}
	for i := 1; i < len(times); i++ {
		if times[i].Sub(times[i-1]) != step {
			return nil, fmt.Errorf("tracefile: irregular step at row %d", i+2)
		}
	}
	return timeseries.FromValues(times[0], step, values), nil
}

// Demand is a multi-column demand trace: one series of per-entity values
// (e.g. per state) sampled at a fixed step.
type Demand struct {
	Start   time.Time
	Step    time.Duration
	Columns []string
	// Rows[i][j] is the value of column j at sample i.
	Rows [][]float64
}

// WriteDemand emits a demand trace as CSV.
func WriteDemand(w io.Writer, d *Demand) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"timestamp"}, d.Columns...)); err != nil {
		return err
	}
	row := make([]string, 1+len(d.Columns))
	for i, values := range d.Rows {
		if len(values) != len(d.Columns) {
			return fmt.Errorf("tracefile: row %d has %d values for %d columns", i, len(values), len(d.Columns))
		}
		row[0] = d.Start.Add(time.Duration(i) * d.Step).UTC().Format(timeLayout)
		for j, v := range values {
			row[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDemand parses a demand CSV.
func ReadDemand(r io.Reader) (*Demand, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	if len(rows) < 3 {
		return nil, fmt.Errorf("tracefile: need at least two samples, got %d rows", len(rows))
	}
	header := rows[0]
	if len(header) < 2 || header[0] != "timestamp" {
		return nil, fmt.Errorf("tracefile: bad header %v", header)
	}
	d := &Demand{Columns: append([]string(nil), header[1:]...)}
	var prev time.Time
	for i, row := range rows[1:] {
		at, err := time.Parse(timeLayout, row[0])
		if err != nil {
			return nil, fmt.Errorf("tracefile: row %d: %w", i+2, err)
		}
		at = at.UTC()
		switch i {
		case 0:
			d.Start = at
		case 1:
			d.Step = at.Sub(prev)
			if d.Step <= 0 {
				return nil, fmt.Errorf("tracefile: non-increasing timestamps")
			}
		default:
			if at.Sub(prev) != d.Step {
				return nil, fmt.Errorf("tracefile: irregular step at row %d", i+2)
			}
		}
		prev = at
		values := make([]float64, len(d.Columns))
		for j, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("tracefile: row %d col %d: %w", i+2, j+1, err)
			}
			values[j] = v
		}
		d.Rows = append(d.Rows, values)
	}
	return d, nil
}

// ByColumn transposes the demand rows into per-column slices (the layout
// the simulation engine's TraceDemand adapter takes).
func (d *Demand) ByColumn() [][]float64 {
	out := make([][]float64, len(d.Columns))
	for j := range out {
		col := make([]float64, len(d.Rows))
		for i := range d.Rows {
			col[i] = d.Rows[i][j]
		}
		out[j] = col
	}
	return out
}
