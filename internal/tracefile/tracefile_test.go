package tracefile

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"powerroute/internal/market"
	"powerroute/internal/timeseries"
)

func TestSeriesRoundTrip(t *testing.T) {
	start := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	s := timeseries.New(start, timeseries.Hourly, 48)
	for i := range s.Values {
		s.Values[i] = float64(i) * 1.5
	}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, s, "price"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(s.Start) || got.Step != s.Step || got.Len() != s.Len() {
		t.Fatalf("geometry mismatch: %v/%v/%d", got.Start, got.Step, got.Len())
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] {
			t.Fatalf("value %d: %v != %v", i, got.Values[i], s.Values[i])
		}
	}
}

func TestSeriesRoundTripMarketData(t *testing.T) {
	// A real generated series survives the round trip bit-exactly.
	d := market.MustGenerate(market.Config{Seed: 1, Months: 1})
	rt, _ := d.RT("NYC")
	var buf bytes.Buffer
	if err := WriteSeries(&buf, rt, "price"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rt.Values {
		if got.Values[i] != rt.Values[i] {
			t.Fatalf("value %d not bit-exact", i)
		}
	}
}

func TestReadSeriesErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"too short", "timestamp,price\n2006-01-01T00:00:00Z,1\n"},
		{"bad time", "timestamp,price\nnot-a-time,1\n2006-01-01T01:00:00Z,2\n"},
		{"bad value", "timestamp,price\n2006-01-01T00:00:00Z,x\n2006-01-01T01:00:00Z,2\n"},
		{"irregular", "timestamp,price\n2006-01-01T00:00:00Z,1\n2006-01-01T01:00:00Z,2\n2006-01-01T03:00:00Z,3\n"},
		{"backwards", "timestamp,price\n2006-01-01T01:00:00Z,1\n2006-01-01T00:00:00Z,2\n"},
		{"ragged", "timestamp,price\n2006-01-01T00:00:00Z,1,extra\n"},
	}
	for _, c := range cases {
		if _, err := ReadSeries(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDemandRoundTrip(t *testing.T) {
	d := &Demand{
		Start:   time.Date(2008, 12, 19, 0, 0, 0, 0, time.UTC),
		Step:    timeseries.FiveMinute,
		Columns: []string{"CA", "NY", "TX"},
		Rows: [][]float64{
			{100, 200, 300},
			{110, 210, 310},
			{120, 220, 320},
		},
	}
	var buf bytes.Buffer
	if err := WriteDemand(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDemand(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(d.Start) || got.Step != d.Step {
		t.Fatalf("geometry: %v %v", got.Start, got.Step)
	}
	if len(got.Columns) != 3 || got.Columns[1] != "NY" {
		t.Fatalf("columns: %v", got.Columns)
	}
	for i := range d.Rows {
		for j := range d.Rows[i] {
			if got.Rows[i][j] != d.Rows[i][j] {
				t.Fatalf("row %d col %d mismatch", i, j)
			}
		}
	}
	// Transpose.
	cols := got.ByColumn()
	if len(cols) != 3 || cols[2][1] != 310 {
		t.Fatalf("ByColumn: %v", cols)
	}
}

func TestWriteDemandRaggedRows(t *testing.T) {
	d := &Demand{
		Start:   time.Now(),
		Step:    time.Minute,
		Columns: []string{"a", "b"},
		Rows:    [][]float64{{1}},
	}
	var buf bytes.Buffer
	if err := WriteDemand(&buf, d); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestReadDemandErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"short", "timestamp,CA\n2008-12-19T00:00:00Z,1\n"},
		{"bad header", "time,CA\n2008-12-19T00:00:00Z,1\n2008-12-19T00:05:00Z,2\n"},
		{"bad time", "timestamp,CA\nxx,1\n2008-12-19T00:05:00Z,2\n"},
		{"bad value", "timestamp,CA\n2008-12-19T00:00:00Z,zz\n2008-12-19T00:05:00Z,2\n"},
		{"irregular", "timestamp,CA\n2008-12-19T00:00:00Z,1\n2008-12-19T00:05:00Z,2\n2008-12-19T00:20:00Z,3\n"},
	}
	for _, c := range cases {
		if _, err := ReadDemand(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
