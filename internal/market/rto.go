// Package market implements the wholesale electricity market substrate: the
// six Regional Transmission Organizations the paper studies (Fig 2), 29
// hubs with hourly real-time and day-ahead markets plus the Pacific
// Northwest's daily-only market, and a calibrated stochastic price process
// that reproduces the statistical structure of 2006–2009 US wholesale
// prices documented in §3: per-hub means, volatilities and kurtosis
// (Fig 6–7), correlation that decays with distance and drops across RTO
// boundaries (Fig 8), heavy-tailed price differentials (Fig 9–13), and the
// volatility ordering of the real-time versus day-ahead markets (Fig 4–5).
//
// The paper used historical price archives (Platts, RTO data); those are
// proprietary or bulky, so this package generates synthetic traces with the
// same statistics from documented, seeded random processes (see DESIGN.md,
// "Substitutions").
package market

import (
	"fmt"
	"math"

	"powerroute/internal/geo"
)

// RTO identifies a Regional Transmission Organization, the pseudo-
// governmental body that operates a region's grid and wholesale markets
// (§2.2).
type RTO int

// The six RTOs covered by the paper (Fig 2).
const (
	ISONE RTO = iota // New England
	NYISO            // New York
	PJM              // Eastern (PJM Interconnection)
	MISO             // Midwest
	CAISO            // California
	ERCOT            // Texas
	numRTOs
)

// String returns the RTO's conventional abbreviation.
func (r RTO) String() string {
	switch r {
	case ISONE:
		return "ISONE"
	case NYISO:
		return "NYISO"
	case PJM:
		return "PJM"
	case MISO:
		return "MISO"
	case CAISO:
		return "CAISO"
	case ERCOT:
		return "ERCOT"
	default:
		return fmt.Sprintf("RTO(%d)", int(r))
	}
}

// Region returns the paper's regional description (Fig 2).
func (r RTO) Region() string {
	switch r {
	case ISONE:
		return "New England"
	case NYISO:
		return "New York"
	case PJM:
		return "Eastern"
	case MISO:
		return "Midwest"
	case CAISO:
		return "California"
	case ERCOT:
		return "Texas"
	default:
		return "unknown"
	}
}

// Centroid returns an approximate geographic center of the RTO's footprint,
// used to model how inter-regional price coupling decays with distance
// (Fig 8: all different-RTO hub pairs fall below the 0.6 correlation line).
func (r RTO) Centroid() geo.Point {
	switch r {
	case ISONE:
		return geo.Point{Lat: 43.0, Lon: -71.5}
	case NYISO:
		return geo.Point{Lat: 42.5, Lon: -75.0}
	case PJM:
		return geo.Point{Lat: 40.0, Lon: -79.0}
	case MISO:
		return geo.Point{Lat: 42.5, Lon: -90.0}
	case CAISO:
		return geo.Point{Lat: 36.5, Lon: -120.0}
	case ERCOT:
		return geo.Point{Lat: 31.0, Lon: -97.5}
	default:
		return geo.Point{}
	}
}

// RTOs lists all modeled RTOs.
func RTOs() []RTO {
	out := make([]RTO, numRTOs)
	for i := range out {
		out[i] = RTO(i)
	}
	return out
}

// factorCorrelation returns the correlation between two RTOs' regional
// price factors. Same-RTO is 1 by definition. Cross-RTO coupling decays
// with the distance between the RTO footprints and carries a market
// boundary discount: "even geographically close locations in different
// markets tend to see uncorrelated prices" (§2.2), because the markets
// evolved different rules and pricing models.
func factorCorrelation(a, b RTO) float64 {
	if a == b {
		return 1
	}
	const (
		boundaryDiscount = 0.42 // economic transaction inefficiency at seams
		decayKm          = 1800 // e-folding distance of grid coupling
	)
	d := geo.Distance(a.Centroid(), b.Centroid()).Km()
	return boundaryDiscount * math.Exp(-d/decayKm)
}
