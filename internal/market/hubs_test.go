package market

import (
	"math"
	"sort"
	"testing"

	"powerroute/internal/geo"
)

func TestHubRegistry(t *testing.T) {
	hs := Hubs()
	if len(hs) != 29 {
		t.Fatalf("Hubs() = %d entries, want 29 (paper §3/§6.1)", len(hs))
	}
	seen := map[string]bool{}
	perRTO := map[RTO]int{}
	for _, h := range hs {
		if h.ID == "" || seen[h.ID] {
			t.Errorf("bad or duplicate hub ID %q", h.ID)
		}
		seen[h.ID] = true
		if h.RTO < 0 || h.RTO >= numRTOs {
			t.Errorf("hub %s: RTO out of range: %v", h.ID, h.RTO)
		}
		perRTO[h.RTO]++
		if !h.Location.Valid() {
			t.Errorf("hub %s: invalid location", h.ID)
		}
		if h.MeanTarget <= 0 || h.StdTarget <= 0 {
			t.Errorf("hub %s: non-positive calibration targets", h.ID)
		}
		if h.RTOLoading <= 0 || h.RTOLoading > 1 {
			t.Errorf("hub %s: loading %v outside (0,1]", h.ID, h.RTOLoading)
		}
		if h.DailyOnly {
			t.Errorf("hub %s: hourly registry must not contain daily-only hubs", h.ID)
		}
		if h.SpikeRate < 0 || h.SpikeScale < 0 || h.NegRate < 0 {
			t.Errorf("hub %s: negative spike parameters", h.ID)
		}
	}
	// Every RTO is represented (Fig 2 covers all six).
	for _, r := range RTOs() {
		if perRTO[r] == 0 {
			t.Errorf("RTO %v has no hubs", r)
		}
	}
	// Sorted by ID.
	if !sort.SliceIsSorted(hs, func(i, j int) bool { return hs[i].ID < hs[j].ID }) {
		t.Error("Hubs() not sorted by ID")
	}
}

func TestClusterHubs(t *testing.T) {
	cs := ClusterHubs()
	if len(cs) != 9 {
		t.Fatalf("ClusterHubs() = %d, want 9 (Fig 19: CA1 CA2 MA NY IL VA NJ TX1 TX2)", len(cs))
	}
	want := map[string]bool{
		"CA1": true, "CA2": true, "MA": true, "NY": true, "IL": true,
		"VA": true, "NJ": true, "TX1": true, "TX2": true,
	}
	for _, h := range cs {
		if !want[h.Cluster] {
			t.Errorf("unexpected cluster code %q at hub %s", h.Cluster, h.ID)
		}
		delete(want, h.Cluster)
	}
	if len(want) != 0 {
		t.Errorf("missing clusters: %v", want)
	}
}

func TestHubByID(t *testing.T) {
	h, err := HubByID("NYC")
	if err != nil {
		t.Fatal(err)
	}
	if h.RTO != NYISO || h.Cluster != "NY" {
		t.Errorf("NYC = %+v", h)
	}
	nw, err := HubByID("MIDC")
	if err != nil {
		t.Fatal(err)
	}
	if !nw.DailyOnly {
		t.Error("MIDC should be daily-only")
	}
	if _, err := HubByID("NOPE"); err == nil {
		t.Error("unknown hub should fail")
	}
}

func TestHubsReturnsCopy(t *testing.T) {
	a := Hubs()
	a[0].MeanTarget = -1
	b := Hubs()
	if b[0].MeanTarget == -1 {
		t.Error("Hubs() exposes internal storage")
	}
}

func TestNorthwest(t *testing.T) {
	nw := Northwest()
	if !nw.DailyOnly || nw.Season != Hydro {
		t.Errorf("Northwest = %+v", nw)
	}
	// The Northwest is hydro-dominated: nearly insensitive to gas prices
	// ("does not affect the hydroelectric dominated Northwest", Fig 3).
	if nw.GasGamma > 0.3 {
		t.Errorf("Northwest gas sensitivity %v too high", nw.GasGamma)
	}
}

func TestRTOMetadata(t *testing.T) {
	for _, r := range RTOs() {
		if r.String() == "" || r.Region() == "unknown" {
			t.Errorf("RTO %d lacks metadata", int(r))
		}
		if !r.Centroid().Valid() {
			t.Errorf("RTO %v centroid invalid", r)
		}
	}
	if RTO(99).String() != "RTO(99)" || RTO(99).Region() != "unknown" {
		t.Error("out-of-range RTO formatting wrong")
	}
	if (RTO(99).Centroid() != geo.Point{}) {
		t.Error("out-of-range RTO centroid should be zero")
	}
	if ISONE.String() != "ISONE" || ERCOT.Region() != "Texas" {
		t.Error("RTO names wrong")
	}
}

func TestSeasonProfileString(t *testing.T) {
	if SummerPeak.String() != "summer-peak" || Hydro.String() != "hydro" || DualPeak.String() != "dual-peak" {
		t.Error("season profile names wrong")
	}
	if SeasonProfile(42).String() != "SeasonProfile(42)" {
		t.Error("unknown season profile formatting wrong")
	}
}

func TestFactorCorrelationStructure(t *testing.T) {
	for _, a := range RTOs() {
		if factorCorrelation(a, a) != 1 {
			t.Errorf("self-correlation of %v != 1", a)
		}
		for _, b := range RTOs() {
			ab := factorCorrelation(a, b)
			if ab != factorCorrelation(b, a) {
				t.Errorf("asymmetric correlation %v-%v", a, b)
			}
			if a != b && (ab <= 0 || ab >= 0.6) {
				t.Errorf("cross-RTO factor correlation %v-%v = %v, want (0, 0.6)", a, b, ab)
			}
		}
	}
	// Coupling decays with distance: the neighboring eastern markets are
	// more coupled than California is to anyone.
	if factorCorrelation(ISONE, NYISO) <= factorCorrelation(CAISO, ISONE) {
		t.Error("ISONE-NYISO should couple more than CAISO-ISONE")
	}
	if factorCorrelation(PJM, MISO) <= factorCorrelation(CAISO, PJM) {
		t.Error("PJM-MISO should couple more than CAISO-PJM")
	}
}

func TestCholesky(t *testing.T) {
	m := rtoCorrelationMatrix()
	n := int(numRTOs)
	l, err := cholesky(m, n)
	if err != nil {
		t.Fatalf("RTO correlation matrix not factorizable: %v", err)
	}
	// Reconstruct L·Lᵀ and compare.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += l[i*n+k] * l[j*n+k]
			}
			if math.Abs(sum-m[i*n+j]) > 1e-9 {
				t.Errorf("LLᵀ[%d][%d] = %v, want %v", i, j, sum, m[i*n+j])
			}
		}
	}
	// Upper triangle of L must be zero.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if l[i*n+j] != 0 {
				t.Errorf("L[%d][%d] = %v, want 0", i, j, l[i*n+j])
			}
		}
	}
}

func TestCholeskyErrors(t *testing.T) {
	if _, err := cholesky([]float64{1, 2, 3}, 2); err == nil {
		t.Error("dimension mismatch should fail")
	}
	// Not positive definite: correlation 1.5 is impossible.
	bad := []float64{1, 1.5, 1.5, 1}
	if _, err := cholesky(bad, 2); err == nil {
		t.Error("non-SPD matrix should fail")
	}
}

func TestMulLower(t *testing.T) {
	// L = [[2,0],[1,3]], z = [1,2] → y = [2, 7].
	l := []float64{2, 0, 1, 3}
	y := make([]float64, 2)
	mulLower(l, []float64{1, 2}, y, 2)
	if y[0] != 2 || y[1] != 7 {
		t.Errorf("mulLower = %v, want [2 7]", y)
	}
}

func TestParticipatesDeterministicAndShare(t *testing.T) {
	// Deterministic.
	for i := int64(0); i < 100; i++ {
		if participates("NYC", i) != participates("NYC", i) {
			t.Fatal("participates not deterministic")
		}
	}
	// Frequency close to the configured share.
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if participates("CHI", int64(i)) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-spikeShare) > 0.02 {
		t.Errorf("participation rate = %v, want ≈ %v", got, spikeShare)
	}
	// Different hubs decide independently for the same event.
	agree := 0
	for i := 0; i < n; i++ {
		if participates("CHI", int64(i)) == participates("NYC", int64(i)) {
			agree++
		}
	}
	// If independent with p=0.85: agreement ≈ 0.85²+0.15² ≈ 0.745.
	f := float64(agree) / float64(n)
	if f > 0.80 || f < 0.68 {
		t.Errorf("cross-hub agreement %v suggests correlated decisions", f)
	}
}

func TestTailWeightDefault(t *testing.T) {
	h := Hub{}
	if h.tailWeight() != 0.10 {
		t.Errorf("default tail weight = %v", h.tailWeight())
	}
	h.TailWeight = 0.2
	if h.tailWeight() != 0.2 {
		t.Error("explicit tail weight ignored")
	}
}
