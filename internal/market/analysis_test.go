package market

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"powerroute/internal/stats"
	"powerroute/internal/timeseries"
)

// TestFig10DifferentialDistributions: the five published pairs.
func TestFig10DifferentialDistributions(t *testing.T) {
	d := testData()
	cases := []struct {
		a, b    string
		maxMean float64 // |μ| bound, $/MWh
		minStd  float64
		label   string
	}{
		// (a) PaloAlto−Virginia: zero mean, high variance (paper σ=55.7).
		{"NP15", "DOM", 10, 35, "PaloAlto-Virginia"},
		// (b) Austin−Virginia: zero-ish mean, high variance (paper σ=87.7).
		{"ERS", "DOM", 15, 35, "Austin-Virginia"},
		// (e) Chicago−Peoria: market-boundary dispersion (paper σ=32.0).
		{"CHI", "IL", 10, 20, "Chicago-Peoria"},
	}
	for _, c := range cases {
		diff, err := d.Differential(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		s := stats.Summarize(diff.Values)
		if math.Abs(s.Mean) > c.maxMean {
			t.Errorf("%s: |μ| = %.1f, want ≤ %.1f", c.label, math.Abs(s.Mean), c.maxMean)
		}
		if s.StdDev < c.minStd {
			t.Errorf("%s: σ = %.1f, want ≥ %.1f", c.label, s.StdDev, c.minStd)
		}
		if s.Kurtosis < 5 {
			t.Errorf("%s: κ = %.1f, want ≥ 5 (very heavy differential tails)", c.label, s.Kurtosis)
		}
	}
}

// TestFig10BostonNYCSkew: "Boston tends to be cheaper than NYC, but NYC is
// less expensive 36% of the time (the savings are greater than $10/MWh 18%
// of the time)".
func TestFig10BostonNYCSkew(t *testing.T) {
	d := testData()
	diff, err := d.Differential("BOS", "NYC")
	if err != nil {
		t.Fatal(err)
	}
	if m := stats.Mean(diff.Values); m >= -3 {
		t.Errorf("BOS−NYC mean %.1f, want clearly negative (Boston cheaper)", m)
	}
	nycCheaper := 1 - stats.FractionBelow(diff.Values, 0)
	if nycCheaper < 0.15 || nycCheaper > 0.50 {
		t.Errorf("NYC cheaper %.0f%% of hours, want 15–50%% (paper: 36%%)", 100*nycCheaper)
	}
	// The exploitable share: NYC at least $10 cheaper a meaningful
	// fraction of the time.
	bigSave := 1 - stats.FractionBelow(diff.Values, 10)
	if bigSave < 0.05 {
		t.Errorf("NYC ≥$10 cheaper only %.1f%% of hours, want ≥ 5%% (paper: 18%%)", 100*bigSave)
	}
}

// TestFig10ChicagoVirginiaDominance: "Virginia is less expensive 8% of the
// time, but the savings almost never exceed $10/MWh" — a pair where one
// location strictly dominates and dynamic adaptation is unnecessary.
func TestFig10ChicagoVirginiaDominance(t *testing.T) {
	d := testData()
	diff, err := d.Differential("CHI", "DOM") // Chicago minus Virginia
	if err != nil {
		t.Fatal(err)
	}
	if m := stats.Mean(diff.Values); m >= -8 {
		t.Errorf("CHI−DOM mean %.1f, want strongly negative (Chicago much cheaper)", m)
	}
	vaCheaper := 1 - stats.FractionBelow(diff.Values, 0)
	if vaCheaper > 0.35 {
		t.Errorf("Virginia cheaper %.0f%% of hours, want a small minority (paper: 8%%)", 100*vaCheaper)
	}
}

// TestFig11MonthlyEvolution: monthly differential distributions move around
// and sustained asymmetries exist but eventually reverse.
func TestFig11MonthlyEvolution(t *testing.T) {
	d := testData()
	diff, err := d.Differential("NP15", "DOM")
	if err != nil {
		t.Fatal(err)
	}
	keys, groups := diff.GroupByMonth()
	if len(keys) != 39 {
		t.Fatalf("months = %d, want 39", len(keys))
	}
	var medians []float64
	for _, k := range keys {
		med, err := stats.Median(groups[k])
		if err != nil {
			t.Fatal(err)
		}
		medians = append(medians, med)
	}
	// Both signs occur across months (asymmetry "sometimes favours one,
	// sometimes the other").
	pos, neg := 0, 0
	for _, m := range medians {
		if m > 0 {
			pos++
		}
		if m < 0 {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Errorf("monthly medians never change sign (pos=%d neg=%d)", pos, neg)
	}
	// The monthly spread itself varies in time ("the spread of prices in
	// one month may double the next month").
	var spreads []float64
	for _, k := range keys {
		iqr, _ := stats.ComputeIQR(groups[k])
		spreads = append(spreads, iqr.Q75-iqr.Q25)
	}
	minS, maxS := spreads[0], spreads[0]
	for _, s := range spreads {
		minS = math.Min(minS, s)
		maxS = math.Max(maxS, s)
	}
	if maxS < 1.5*minS {
		t.Errorf("monthly IQR nearly constant: min %.1f max %.1f", minS, maxS)
	}
}

// TestFig12HourOfDayPattern: the PaloAlto−Virginia differential depends
// strongly on hour of day because the two coasts' demand peaks do not
// overlap: "Before 5am (eastern), Virginia has a significant edge; by 6am
// the situation has reversed".
func TestFig12HourOfDayPattern(t *testing.T) {
	d := testData()
	diff, err := d.Differential("NP15", "DOM")
	if err != nil {
		t.Fatal(err)
	}
	byHour := diff.GroupByHourOfDay(-5) // group by Eastern local hour
	med := func(h int) float64 {
		m, err := stats.Median(byHour[h])
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// Small hours eastern: California's evening peak is still running while
	// Virginia sleeps → differential (CA−VA) elevated; by Virginia's
	// morning/afternoon the sign flips.
	early := med(2)   // 2am eastern = 11pm pacific
	midday := med(15) // 3pm eastern = noon pacific
	if early <= midday {
		t.Errorf("hour-of-day pattern missing: med@2amET %.1f ≤ med@3pmET %.1f", early, midday)
	}
	// The medians must actually change sign across the day (Fig 12 top).
	minM, maxM := math.Inf(1), math.Inf(-1)
	for h := 0; h < 24; h++ {
		m := med(h)
		minM = math.Min(minM, m)
		maxM = math.Max(maxM, m)
	}
	if minM >= 0 || maxM <= 0 {
		t.Errorf("PaloAlto−Virginia hourly medians span [%.1f, %.1f]; want sign change", minM, maxM)
	}
}

func TestSustainedDifferentialsCrafted(t *testing.T) {
	// +: favours B beyond threshold; −: favours A; ·: dead band.
	diff := []float64{8, 9, 7, 2, -6, -7, 3, 8, -9, 9}
	runs := SustainedDifferentials(diff, 5)
	want := []int{3, 2, 1, 1, 1}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
	// Sign reversal without visiting the dead band still splits runs.
	runs = SustainedDifferentials([]float64{10, -10, 10}, 5)
	if len(runs) != 3 || runs[0] != 1 {
		t.Errorf("reversal runs = %v, want [1 1 1]", runs)
	}
	if got := SustainedDifferentials(nil, 5); got != nil {
		t.Errorf("empty input runs = %v", got)
	}
	if got := SustainedDifferentials([]float64{1, 2, 3}, 5); got != nil {
		t.Errorf("all-dead-band runs = %v", got)
	}
}

func TestSustainedDifferentialsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		runs := SustainedDifferentials(raw, 5)
		total := 0
		for _, r := range runs {
			if r <= 0 {
				return false
			}
			total += r
		}
		// Run hours can never exceed the series length.
		return total <= len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFig13DurationDistribution: short differentials dominate; day-plus
// differentials are rare for a balanced pair.
func TestFig13DurationDistribution(t *testing.T) {
	d := testData()
	diff, err := d.Differential("NP15", "DOM")
	if err != nil {
		t.Fatal(err)
	}
	runs := SustainedDifferentials(diff.Values, 5)
	if len(runs) == 0 {
		t.Fatal("no sustained differentials found")
	}
	fr := DurationFractions(runs, diff.Len(), 36)
	short := fr[1] + fr[2] + fr[3]
	var dayPlus float64
	for h := 24; h <= 36; h++ {
		dayPlus += fr[h]
	}
	if short <= dayPlus {
		t.Errorf("short-differential time %.3f not above day-plus time %.3f", short, dayPlus)
	}
	// Mid-length differentials (<9h) are common (paper: "Medium length
	// differentials (<9 hrs) are common").
	var under9 float64
	for h := 1; h < 9; h++ {
		under9 += fr[h]
	}
	if under9 < 0.2 {
		t.Errorf("time in <9h differentials = %.2f, want ≥ 0.2", under9)
	}
}

func TestDurationFractionsEdges(t *testing.T) {
	if DurationFractions([]int{1}, 0, 10) != nil {
		t.Error("zero total hours should return nil")
	}
	if DurationFractions([]int{1}, 10, 0) != nil {
		t.Error("zero max hours should return nil")
	}
	fr := DurationFractions([]int{2, 50}, 100, 10)
	// Run of 50 accumulates its full 50 hours in the final bucket.
	if math.Abs(fr[10]-0.5) > 1e-12 {
		t.Errorf("overflow bucket = %v, want 0.5", fr[10])
	}
	if math.Abs(fr[2]-0.02) > 1e-12 {
		t.Errorf("fr[2] = %v, want 0.02", fr[2])
	}
}

func TestDailyPeakMeans(t *testing.T) {
	// Two days of hourly data valued by their UTC hour.
	s := timeseries.New(time.Date(2008, 8, 11, 0, 0, 0, 0, time.UTC), timeseries.Hourly, 48)
	for i := range s.Values {
		s.Values[i] = float64(i % 24)
	}
	// UTC zone: peak hours 7..22 → mean of 7..22 = 14.5.
	pm, err := DailyPeakMeans(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Len() != 2 {
		t.Fatalf("days = %d", pm.Len())
	}
	if math.Abs(pm.Values[0]-14.5) > 1e-12 {
		t.Errorf("peak mean = %v, want 14.5", pm.Values[0])
	}
	// Eastern zone shifts which UTC hours count as local peak.
	pmE, err := DailyPeakMeans(s, -5)
	if err != nil {
		t.Fatal(err)
	}
	if pmE.Values[0] == pm.Values[0] {
		t.Error("zone offset had no effect on peak selection")
	}
	if _, err := DailyPeakMeans(timeseries.New(time.Now(), timeseries.Daily, 5), 0); err == nil {
		t.Error("non-hourly series should fail")
	}
}

func TestQuarterSlice(t *testing.T) {
	d := testData()
	rt, _ := d.RT("NYC")
	q1, err := QuarterSlice(rt, 2009, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !q1.Start.Equal(time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("Q1 start = %v", q1.Start)
	}
	if q1.Len() != (31+28+31)*24 {
		t.Errorf("Q1 2009 hours = %d, want %d", q1.Len(), (31+28+31)*24)
	}
	if _, err := QuarterSlice(rt, 2009, 5); err == nil {
		t.Error("invalid quarter should fail")
	}
	if _, err := QuarterSlice(rt, 2020, 1); err == nil {
		t.Error("out-of-range year should fail")
	}
}

func TestDifferentialErrors(t *testing.T) {
	d := testData()
	if _, err := d.Differential("NOPE", "NYC"); err == nil {
		t.Error("unknown first hub should fail")
	}
	if _, err := d.Differential("NYC", "NOPE"); err == nil {
		t.Error("unknown second hub should fail")
	}
}

// TestFig9SpikesInDifferentials: differential series show price spikes; the
// paper's Fig 9 notes some extend far off the ±$100 scale.
func TestFig9SpikesInDifferentials(t *testing.T) {
	d := testData()
	diff, err := d.Differential("ERS", "DOM")
	if err != nil {
		t.Fatal(err)
	}
	s := stats.Summarize(diff.Values)
	if s.Max < 150 && s.Min > -150 {
		t.Errorf("differential range [%.0f, %.0f] lacks large spikes", s.Min, s.Max)
	}
}
