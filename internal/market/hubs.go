package market

import (
	"fmt"
	"sort"

	"powerroute/internal/geo"
)

// SeasonProfile selects a hub's annual price seasonality, reflecting its
// region's generation mix and demand pattern (§2.2: "Different regions may
// have very different power generation profiles").
type SeasonProfile int

const (
	// SummerPeak: cooling-driven demand peaks in July–August (Texas,
	// California, mid-Atlantic).
	SummerPeak SeasonProfile = iota
	// DualPeak: both winter heating and summer cooling peaks (New England,
	// New York).
	DualPeak
	// Hydro: spring snowmelt floods the market with cheap hydro power; the
	// paper observes the Northwest "consistently experiences dips near
	// April" (Fig 3).
	Hydro
)

// String names the profile.
func (s SeasonProfile) String() string {
	switch s {
	case SummerPeak:
		return "summer-peak"
	case DualPeak:
		return "dual-peak"
	case Hydro:
		return "hydro"
	default:
		return fmt.Sprintf("SeasonProfile(%d)", int(s))
	}
}

// Hub is one wholesale market location: a pricing node/zone with an hourly
// real-time and day-ahead market (§2.2), plus the calibration parameters of
// its synthetic price process.
type Hub struct {
	ID       string       // short identifier, e.g. "NYC"
	Name     string       // market name, e.g. "NYISO Zone J (New York City)"
	City     string       // reference city (Fig 2 maps hubs to cities)
	RTO      RTO          // parent market
	Location geo.Point    // hub coordinates (reference city)
	Zone     geo.TimeZone // local standard time zone
	Cluster  string       // Akamai cluster code served at this hub ("" if none)

	// DailyOnly marks locations without an hourly wholesale market. The
	// paper's footnote 6: the Northwest "lacks an hourly wholesale market,
	// forcing us to omit the region from the remainder of our analysis".
	// Such hubs appear only in the Fig 3 daily-price view.
	DailyOnly bool

	// Calibration targets and process parameters (see model.go).
	MeanTarget float64 // long-run mean, $/MWh (Fig 6 for the six published hubs)
	StdTarget  float64 // long-run standard deviation, $/MWh
	RTOLoading float64 // λ ∈ (0,1]: share of stochastic variance from the regional factor
	GasGamma   float64 // sensitivity of price level to the natural gas factor
	Season     SeasonProfile
	DiurnalAmp float64 // multiplier on the common diurnal amplitude
	SpikeRate  float64 // per-hour probability of a price spike
	SpikeScale float64 // mean spike magnitude, $/MWh
	NegRate    float64 // per-hour probability of a negative-price dip at night
	TailWeight float64 // innovation tail-mixing probability (0 ⇒ default 0.06)
}

// tailWeight returns the hub's innovation tail-mixing probability with the
// registry default applied.
func (h Hub) tailWeight() float64 {
	if h.TailWeight == 0 {
		return 0.10
	}
	return h.TailWeight
}

// hubs is the registry of the paper's 29 hourly-market locations (§3 uses
// "price data for 30 locations": 29 hubs with hourly markets plus the
// daily-only Pacific Northwest). The six hubs in Fig 6 carry its published
// mean/σ targets; the rest carry plausible values interpolated from their
// region. Spike parameters are tuned so kurtosis falls in the published
// range (4.6–11.9 for prices, far higher for differentials).
var hubs = []Hub{
	// ISONE — New England (dual peak, gas-heavy generation).
	{ID: "BOS", Name: "ISONE MA-Boston", City: "Boston, MA", RTO: ISONE, Location: geo.Point{Lat: 42.36, Lon: -71.06}, Zone: geo.Eastern, Cluster: "MA",
		MeanTarget: 66.5, StdTarget: 25.8, RTOLoading: 0.90, GasGamma: 0.85, Season: DualPeak, DiurnalAmp: 0.85, SpikeRate: 0.0075, SpikeScale: 43, NegRate: 0.0006},
	{ID: "ME", Name: "ISONE Maine", City: "Portland, ME", RTO: ISONE, Location: geo.Point{Lat: 43.66, Lon: -70.26}, Zone: geo.Eastern,
		MeanTarget: 62.0, StdTarget: 24.5, RTOLoading: 0.88, GasGamma: 0.80, Season: DualPeak, DiurnalAmp: 0.80, SpikeRate: 0.0065, SpikeScale: 40, NegRate: 0.0008},
	{ID: "CT", Name: "ISONE Connecticut", City: "Hartford, CT", RTO: ISONE, Location: geo.Point{Lat: 41.76, Lon: -72.69}, Zone: geo.Eastern,
		MeanTarget: 68.0, StdTarget: 27.0, RTOLoading: 0.89, GasGamma: 0.85, Season: DualPeak, DiurnalAmp: 0.88, SpikeRate: 0.0080, SpikeScale: 45, NegRate: 0.0005},
	{ID: "NH", Name: "ISONE New Hampshire", City: "Concord, NH", RTO: ISONE, Location: geo.Point{Lat: 43.21, Lon: -71.54}, Zone: geo.Eastern,
		MeanTarget: 64.0, StdTarget: 25.0, RTOLoading: 0.88, GasGamma: 0.82, Season: DualPeak, DiurnalAmp: 0.82, SpikeRate: 0.0068, SpikeScale: 41, NegRate: 0.0007},
	{ID: "VT", Name: "ISONE Vermont", City: "Burlington, VT", RTO: ISONE, Location: geo.Point{Lat: 44.48, Lon: -73.21}, Zone: geo.Eastern,
		MeanTarget: 63.0, StdTarget: 24.0, RTOLoading: 0.87, GasGamma: 0.80, Season: DualPeak, DiurnalAmp: 0.80, SpikeRate: 0.0065, SpikeScale: 40, NegRate: 0.0008},

	// NYISO — New York (NYC congestion premium, highest peaks in the set:
	// "the highest peak prices tend to be in NYC", §6.3).
	{ID: "NYC", Name: "NYISO Zone J (New York City)", City: "New York, NY", RTO: NYISO, Location: geo.Point{Lat: 40.71, Lon: -74.01}, Zone: geo.Eastern, Cluster: "NY",
		MeanTarget: 77.9, StdTarget: 40.3, RTOLoading: 0.82, GasGamma: 0.95, Season: DualPeak, DiurnalAmp: 1.15, SpikeRate: 0.0150, SpikeScale: 68, NegRate: 0.0003, TailWeight: 0.08},
	{ID: "CAPITL", Name: "NYISO Capital (Albany)", City: "Albany, NY", RTO: NYISO, Location: geo.Point{Lat: 42.65, Lon: -73.75}, Zone: geo.Eastern,
		MeanTarget: 65.0, StdTarget: 30.0, RTOLoading: 0.85, GasGamma: 0.85, Season: DualPeak, DiurnalAmp: 0.95, SpikeRate: 0.0095, SpikeScale: 50, NegRate: 0.0006},
	{ID: "WEST", Name: "NYISO West (Buffalo)", City: "Buffalo, NY", RTO: NYISO, Location: geo.Point{Lat: 42.89, Lon: -78.88}, Zone: geo.Eastern,
		MeanTarget: 55.0, StdTarget: 27.0, RTOLoading: 0.80, GasGamma: 0.70, Season: DualPeak, DiurnalAmp: 0.90, SpikeRate: 0.0075, SpikeScale: 43, NegRate: 0.0012},
	{ID: "LONGIL", Name: "NYISO Long Island", City: "Hempstead, NY", RTO: NYISO, Location: geo.Point{Lat: 40.79, Lon: -73.13}, Zone: geo.Eastern,
		MeanTarget: 85.0, StdTarget: 45.0, RTOLoading: 0.78, GasGamma: 1.00, Season: DualPeak, DiurnalAmp: 1.20, SpikeRate: 0.0175, SpikeScale: 72, NegRate: 0.0002, TailWeight: 0.1},

	// PJM — Eastern interconnection (coal-heavy west, congested east).
	{ID: "CHI", Name: "PJM ComEd (Chicago)", City: "Chicago, IL", RTO: PJM, Location: geo.Point{Lat: 41.88, Lon: -87.63}, Zone: geo.Central, Cluster: "IL",
		MeanTarget: 40.6, StdTarget: 26.9, RTOLoading: 0.84, GasGamma: 0.45, Season: SummerPeak, DiurnalAmp: 1.00, SpikeRate: 0.0070, SpikeScale: 38, NegRate: 0.0020},
	{ID: "DOM", Name: "PJM Dominion (Virginia)", City: "Richmond, VA", RTO: PJM, Location: geo.Point{Lat: 37.54, Lon: -77.44}, Zone: geo.Eastern, Cluster: "VA",
		MeanTarget: 57.8, StdTarget: 39.2, RTOLoading: 0.80, GasGamma: 0.75, Season: SummerPeak, DiurnalAmp: 1.10, SpikeRate: 0.0125, SpikeScale: 61, NegRate: 0.0008, TailWeight: 0.09},
	{ID: "NJ", Name: "PJM PSEG (New Jersey)", City: "Newark, NJ", RTO: PJM, Location: geo.Point{Lat: 40.74, Lon: -74.17}, Zone: geo.Eastern, Cluster: "NJ",
		MeanTarget: 65.0, StdTarget: 35.0, RTOLoading: 0.83, GasGamma: 0.90, Season: DualPeak, DiurnalAmp: 1.05, SpikeRate: 0.0112, SpikeScale: 54, NegRate: 0.0004},
	{ID: "BGE", Name: "PJM BGE (Baltimore)", City: "Baltimore, MD", RTO: PJM, Location: geo.Point{Lat: 39.29, Lon: -76.61}, Zone: geo.Eastern,
		MeanTarget: 62.0, StdTarget: 34.0, RTOLoading: 0.84, GasGamma: 0.85, Season: SummerPeak, DiurnalAmp: 1.05, SpikeRate: 0.0105, SpikeScale: 52, NegRate: 0.0005},
	{ID: "PECO", Name: "PJM PECO (Philadelphia)", City: "Philadelphia, PA", RTO: PJM, Location: geo.Point{Lat: 39.95, Lon: -75.17}, Zone: geo.Eastern,
		MeanTarget: 60.0, StdTarget: 33.0, RTOLoading: 0.86, GasGamma: 0.85, Season: SummerPeak, DiurnalAmp: 1.02, SpikeRate: 0.0100, SpikeScale: 50, NegRate: 0.0005},
	{ID: "DUQ", Name: "PJM Duquesne (Pittsburgh)", City: "Pittsburgh, PA", RTO: PJM, Location: geo.Point{Lat: 40.44, Lon: -79.99}, Zone: geo.Eastern,
		MeanTarget: 52.0, StdTarget: 30.0, RTOLoading: 0.83, GasGamma: 0.55, Season: SummerPeak, DiurnalAmp: 0.98, SpikeRate: 0.0080, SpikeScale: 43, NegRate: 0.0015},
	{ID: "AEP", Name: "PJM AEP (Columbus)", City: "Columbus, OH", RTO: PJM, Location: geo.Point{Lat: 39.96, Lon: -83.00}, Zone: geo.Eastern,
		MeanTarget: 48.0, StdTarget: 28.0, RTOLoading: 0.82, GasGamma: 0.50, Season: SummerPeak, DiurnalAmp: 0.95, SpikeRate: 0.0075, SpikeScale: 40, NegRate: 0.0018},

	// MISO — Midwest (coal base load, lowest means, occasional negative
	// prices at night).
	{ID: "IL", Name: "MISO Illinois (Peoria)", City: "Peoria, IL", RTO: MISO, Location: geo.Point{Lat: 40.69, Lon: -89.59}, Zone: geo.Central,
		MeanTarget: 38.0, StdTarget: 26.0, RTOLoading: 0.82, GasGamma: 0.40, Season: SummerPeak, DiurnalAmp: 1.00, SpikeRate: 0.0065, SpikeScale: 37, NegRate: 0.0030},
	{ID: "MN", Name: "MISO Minnesota", City: "Minneapolis, MN", RTO: MISO, Location: geo.Point{Lat: 44.98, Lon: -93.27}, Zone: geo.Central,
		MeanTarget: 42.0, StdTarget: 27.0, RTOLoading: 0.80, GasGamma: 0.42, Season: SummerPeak, DiurnalAmp: 0.95, SpikeRate: 0.0070, SpikeScale: 38, NegRate: 0.0028},
	{ID: "CIN", Name: "MISO Cinergy (Indiana)", City: "Indianapolis, IN", RTO: MISO, Location: geo.Point{Lat: 39.77, Lon: -86.16}, Zone: geo.Eastern,
		MeanTarget: 44.0, StdTarget: 28.3, RTOLoading: 0.83, GasGamma: 0.45, Season: SummerPeak, DiurnalAmp: 1.00, SpikeRate: 0.0075, SpikeScale: 40, NegRate: 0.0024},
	{ID: "MI", Name: "MISO Michigan", City: "Detroit, MI", RTO: MISO, Location: geo.Point{Lat: 42.33, Lon: -83.05}, Zone: geo.Eastern,
		MeanTarget: 50.0, StdTarget: 29.0, RTOLoading: 0.81, GasGamma: 0.55, Season: SummerPeak, DiurnalAmp: 1.00, SpikeRate: 0.0080, SpikeScale: 43, NegRate: 0.0015},
	{ID: "WI", Name: "MISO Wisconsin", City: "Milwaukee, WI", RTO: MISO, Location: geo.Point{Lat: 43.04, Lon: -87.91}, Zone: geo.Central,
		MeanTarget: 45.0, StdTarget: 27.0, RTOLoading: 0.81, GasGamma: 0.48, Season: SummerPeak, DiurnalAmp: 0.96, SpikeRate: 0.0070, SpikeScale: 39, NegRate: 0.0022},
	{ID: "AMIL", Name: "MISO Ameren (St. Louis)", City: "St. Louis, MO", RTO: MISO, Location: geo.Point{Lat: 38.63, Lon: -90.20}, Zone: geo.Central,
		MeanTarget: 41.0, StdTarget: 26.0, RTOLoading: 0.82, GasGamma: 0.42, Season: SummerPeak, DiurnalAmp: 0.98, SpikeRate: 0.0065, SpikeScale: 38, NegRate: 0.0026},

	// CAISO — California. The paper measures a 0.94 correlation between LA
	// and Palo Alto (§3.2), so CAISO hubs carry very high loadings.
	{ID: "NP15", Name: "CAISO NP15 (Palo Alto)", City: "Palo Alto, CA", RTO: CAISO, Location: geo.Point{Lat: 37.44, Lon: -122.14}, Zone: geo.Pacific, Cluster: "CA1",
		MeanTarget: 54.0, StdTarget: 34.2, RTOLoading: 0.985, GasGamma: 0.90, Season: SummerPeak, DiurnalAmp: 1.00, SpikeRate: 0.0137, SpikeScale: 63, NegRate: 0.0010, TailWeight: 0.13},
	{ID: "SP15", Name: "CAISO SP15 (Los Angeles)", City: "Los Angeles, CA", RTO: CAISO, Location: geo.Point{Lat: 34.05, Lon: -118.24}, Zone: geo.Pacific, Cluster: "CA2",
		MeanTarget: 56.0, StdTarget: 35.0, RTOLoading: 0.985, GasGamma: 0.92, Season: SummerPeak, DiurnalAmp: 1.05, SpikeRate: 0.0137, SpikeScale: 63, NegRate: 0.0008, TailWeight: 0.13},
	{ID: "ZP26", Name: "CAISO ZP26 (Central Valley)", City: "Fresno, CA", RTO: CAISO, Location: geo.Point{Lat: 36.75, Lon: -119.77}, Zone: geo.Pacific,
		MeanTarget: 55.0, StdTarget: 34.0, RTOLoading: 0.975, GasGamma: 0.90, Season: SummerPeak, DiurnalAmp: 1.02, SpikeRate: 0.0130, SpikeScale: 61, NegRate: 0.0009, TailWeight: 0.13},

	// ERCOT — Texas ("86% of the energy was generated using natural gas and
	// coal", §2.2: strong gas sensitivity).
	{ID: "ERN", Name: "ERCOT North (Dallas)", City: "Dallas, TX", RTO: ERCOT, Location: geo.Point{Lat: 32.78, Lon: -96.80}, Zone: geo.Central, Cluster: "TX1",
		MeanTarget: 48.0, StdTarget: 32.0, RTOLoading: 0.85, GasGamma: 1.05, Season: SummerPeak, DiurnalAmp: 1.10, SpikeRate: 0.0120, SpikeScale: 58, NegRate: 0.0015},
	{ID: "ERS", Name: "ERCOT South (Austin)", City: "Austin, TX", RTO: ERCOT, Location: geo.Point{Lat: 30.27, Lon: -97.74}, Zone: geo.Central, Cluster: "TX2",
		MeanTarget: 49.0, StdTarget: 33.0, RTOLoading: 0.84, GasGamma: 1.05, Season: SummerPeak, DiurnalAmp: 1.10, SpikeRate: 0.0125, SpikeScale: 61, NegRate: 0.0014},
	{ID: "ERH", Name: "ERCOT Houston", City: "Houston, TX", RTO: ERCOT, Location: geo.Point{Lat: 29.76, Lon: -95.37}, Zone: geo.Central,
		MeanTarget: 52.0, StdTarget: 34.0, RTOLoading: 0.86, GasGamma: 1.10, Season: SummerPeak, DiurnalAmp: 1.12, SpikeRate: 0.0130, SpikeScale: 63, NegRate: 0.0010},
	{ID: "ERW", Name: "ERCOT West (Midland)", City: "Midland, TX", RTO: ERCOT, Location: geo.Point{Lat: 31.99, Lon: -102.08}, Zone: geo.Central,
		MeanTarget: 45.0, StdTarget: 31.0, RTOLoading: 0.80, GasGamma: 1.00, Season: SummerPeak, DiurnalAmp: 1.05, SpikeRate: 0.0112, SpikeScale: 56, NegRate: 0.0040},
}

// northwest is the daily-only Pacific Northwest location shown in Fig 3
// (Portland's MID-C hub). It has no hourly market, so it participates only
// in daily day-ahead price views and is excluded from routing analysis,
// exactly as in the paper (footnote 6).
var northwest = Hub{
	ID: "MIDC", Name: "Mid-Columbia (Pacific Northwest)", City: "Portland, OR",
	RTO: -1, Location: geo.Point{Lat: 45.52, Lon: -122.68}, Zone: geo.Pacific,
	DailyOnly:  true,
	MeanTarget: 45.0, StdTarget: 20.0, RTOLoading: 0.90, GasGamma: 0.10,
	Season: Hydro, DiurnalAmp: 0.70, SpikeRate: 0.0037, SpikeScale: 32, NegRate: 0.0030,
}

// Hubs returns the 29 hourly-market hubs, sorted by ID. The slice is a
// copy.
func Hubs() []Hub {
	out := make([]Hub, len(hubs))
	copy(out, hubs)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Northwest returns the daily-only Pacific Northwest location (Fig 3).
func Northwest() Hub { return northwest }

// HubByID looks a hub up by its identifier (the Northwest hub included).
func HubByID(id string) (Hub, error) {
	for i := range hubs {
		if hubs[i].ID == id {
			return hubs[i], nil
		}
	}
	if id == northwest.ID {
		return northwest, nil
	}
	return Hub{}, fmt.Errorf("market: unknown hub %q", id)
}

// ClusterHubs returns the nine hubs that host Akamai public clusters in the
// paper's data set (§6.1: eighteen usable cities grouped by market hub as
// nine clusters: CA1 CA2 MA NY IL VA NJ TX1 TX2, Fig 19).
func ClusterHubs() []Hub {
	var out []Hub
	for _, h := range Hubs() {
		if h.Cluster != "" {
			out = append(out, h)
		}
	}
	return out
}
