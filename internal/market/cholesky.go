package market

import (
	"errors"
	"math"
)

// cholesky returns the lower-triangular factor L of a symmetric positive
// definite matrix m (row-major, n×n) such that L·Lᵀ = m. It is used to draw
// correlated innovations for the six RTO regional price factors.
func cholesky(m []float64, n int) ([]float64, error) {
	if len(m) != n*n {
		return nil, errors.New("market: cholesky dimension mismatch")
	}
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, errors.New("market: matrix not positive definite")
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return l, nil
}

// mulLower computes y = L·z for a lower-triangular L (row-major n×n),
// writing into y.
func mulLower(l []float64, z, y []float64, n int) {
	for i := 0; i < n; i++ {
		sum := 0.0
		for k := 0; k <= i; k++ {
			sum += l[i*n+k] * z[k]
		}
		y[i] = sum
	}
}

// rtoCorrelationMatrix builds the innovation correlation matrix for the
// regional factors from pairwise factorCorrelation values.
func rtoCorrelationMatrix() []float64 {
	n := int(numRTOs)
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m[i*n+j] = factorCorrelation(RTO(i), RTO(j))
		}
	}
	return m
}
