package market

import (
	"math"
	"sync"
	"testing"
	"time"

	"powerroute/internal/stats"
	"powerroute/internal/timeseries"
)

// testData lazily generates one full 39-month dataset shared by all tests
// in the package (generation takes ~100 ms).
var testData = sync.OnceValue(func() *Dataset {
	return MustGenerate(Config{Seed: 7})
})

func TestGenerateGeometry(t *testing.T) {
	d := testData()
	if !d.Start.Equal(DefaultStart) {
		t.Errorf("Start = %v", d.Start)
	}
	// Jan 2006 through March 2009 inclusive: 1186 days.
	if d.Hours != 1186*24 {
		t.Errorf("Hours = %d, want %d", d.Hours, 1186*24)
	}
	for _, h := range d.Hubs() {
		rt, err := d.RT(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		da, err := d.DA(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Len() != d.Hours || da.Len() != d.Hours {
			t.Errorf("hub %s: series lengths %d/%d", h.ID, rt.Len(), da.Len())
		}
		if rt.Step != timeseries.Hourly {
			t.Errorf("hub %s: RT step %v", h.ID, rt.Step)
		}
	}
	nw := d.NorthwestDaily()
	if nw.Len() != 1186 || nw.Step != timeseries.Daily {
		t.Errorf("Northwest daily: len=%d step=%v", nw.Len(), nw.Step)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Months: -1}); err == nil {
		t.Error("negative months should fail")
	}
	d := testData()
	if _, err := d.RT("NOPE"); err == nil {
		t.Error("unknown hub RT should fail")
	}
	if _, err := d.DA("NOPE"); err == nil {
		t.Error("unknown hub DA should fail")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := MustGenerate(Config{Seed: 123, Months: 2})
	b := MustGenerate(Config{Seed: 123, Months: 2})
	c := MustGenerate(Config{Seed: 124, Months: 2})
	ra, _ := a.RT("NYC")
	rb, _ := b.RT("NYC")
	rc, _ := c.RT("NYC")
	for i := range ra.Values {
		if ra.Values[i] != rb.Values[i] {
			t.Fatalf("same seed diverged at hour %d", i)
		}
	}
	same := true
	for i := range ra.Values {
		if ra.Values[i] != rc.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical series")
	}
}

func TestPricesBounded(t *testing.T) {
	d := testData()
	for _, h := range d.Hubs() {
		rt, _ := d.RT(h.ID)
		neg := 0
		for _, p := range rt.Values {
			if p < priceFloor || p > priceCeil {
				t.Fatalf("hub %s: price %v outside clamp", h.ID, p)
			}
			if p < 0 {
				neg++
			}
		}
		// Negative prices occur "for brief periods" (§2.2): present in the
		// aggregate but rare everywhere.
		if frac := float64(neg) / float64(rt.Len()); frac > 0.03 {
			t.Errorf("hub %s: %.1f%% negative prices, want < 3%%", h.ID, 100*frac)
		}
	}
}

func TestNegativePricesExist(t *testing.T) {
	d := testData()
	total := 0
	for _, h := range d.Hubs() {
		rt, _ := d.RT(h.ID)
		for _, p := range rt.Values {
			if p < 0 {
				total++
			}
		}
	}
	if total == 0 {
		t.Error("no negative prices anywhere; §2.2 says they occur for brief periods")
	}
}

// TestFig6Calibration checks the six published hubs against Fig 6's
// 1%-trimmed statistics.
func TestFig6Calibration(t *testing.T) {
	d := testData()
	cases := []struct {
		hub      string
		mean, sd float64
	}{
		{"CHI", 40.6, 26.9},
		{"CIN", 44.0, 28.3},
		{"NP15", 54.0, 34.2},
		{"DOM", 57.8, 39.2},
		{"BOS", 66.5, 25.8},
		{"NYC", 77.9, 40.26},
	}
	for _, c := range cases {
		rt, _ := d.RT(c.hub)
		s := stats.TrimmedSummary(rt.Values, 0.01)
		if math.Abs(s.Mean-c.mean) > 0.08*c.mean {
			t.Errorf("%s: trimmed mean %.1f, want %.1f ±8%%", c.hub, s.Mean, c.mean)
		}
		if math.Abs(s.StdDev-c.sd) > 0.20*c.sd {
			t.Errorf("%s: trimmed σ %.1f, want %.1f ±20%%", c.hub, s.StdDev, c.sd)
		}
		// Leptokurtic even after trimming (paper: 4.6–11.9; the generator
		// lands lower but must stay clearly above a flat-topped mixture).
		if s.Kurtosis < 3.0 {
			t.Errorf("%s: trimmed kurtosis %.2f, want ≥ 3", c.hub, s.Kurtosis)
		}
	}
	// Ordering of means matches Fig 6: Chicago cheapest … NYC priciest.
	means := make([]float64, len(cases))
	for i, c := range cases {
		rt, _ := d.RT(c.hub)
		means[i] = stats.Mean(rt.Values)
	}
	for i := 1; i < len(means); i++ {
		if means[i] <= means[i-1] {
			t.Errorf("mean ordering violated between %s and %s", cases[i-1].hub, cases[i].hub)
		}
	}
}

func TestRawKurtosisHeavy(t *testing.T) {
	d := testData()
	for _, id := range []string{"CHI", "NP15", "NYC", "DOM"} {
		rt, _ := d.RT(id)
		if k := stats.Kurtosis(rt.Values); k < 5 {
			t.Errorf("%s: raw kurtosis %.1f, want ≥ 5 (heavy spike tails)", id, k)
		}
	}
}

// TestFig7HourlyChanges checks the hour-to-hour change distribution: zero
// mean, Gaussian-like body with very long tails, and a substantial fraction
// of changes beyond ±$20 ("the price per MWh changed hourly by $20 or more
// roughly 20% of the time").
func TestFig7HourlyChanges(t *testing.T) {
	d := testData()
	for _, id := range []string{"NP15", "CHI"} {
		rt, _ := d.RT(id)
		delta := stats.Diff(rt.Values)
		if m := stats.Mean(delta); math.Abs(m) > 0.5 {
			t.Errorf("%s: Δ mean %v, want ≈ 0", id, m)
		}
		within := stats.FractionWithin(delta, 20)
		if within < 0.60 || within > 0.92 {
			t.Errorf("%s: %.0f%% of changes within $20, want 60–92%% (paper ≈ 80%%)", id, 100*within)
		}
		if k := stats.Kurtosis(delta); k < 5 {
			t.Errorf("%s: Δ kurtosis %.1f, want ≥ 5 (very long tails)", id, k)
		}
	}
}

// TestFig8CorrelationStructure verifies the headline finding of §3.2:
// same-RTO pairs are well correlated, different-RTO pairs never are, and
// correlation decays with distance.
func TestFig8CorrelationStructure(t *testing.T) {
	d := testData()
	pairs, err := d.AllPairCorrelations()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 29*28/2 {
		t.Fatalf("pairs = %d, want 406", len(pairs))
	}
	var nearSum, nearN, farSum, farN float64
	for _, p := range pairs {
		if p.Correlation < 0 {
			t.Errorf("%s-%s: negative correlation %.2f (paper: no pairs were)", p.HubA, p.HubB, p.Correlation)
		}
		if !p.SameRTO && p.Correlation >= 0.6 {
			t.Errorf("%s-%s: cross-RTO correlation %.2f ≥ 0.6", p.HubA, p.HubB, p.Correlation)
		}
		if p.SameRTO && p.Correlation <= 0.5 {
			t.Errorf("%s-%s: same-RTO correlation %.2f ≤ 0.5", p.HubA, p.HubB, p.Correlation)
		}
		if p.DistanceKm < 600 {
			nearSum += p.Correlation
			nearN++
		}
		if p.DistanceKm > 2500 {
			farSum += p.Correlation
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Fatal("distance buckets empty")
	}
	if nearSum/nearN <= farSum/farN {
		t.Errorf("correlation does not decay with distance: near %.2f vs far %.2f",
			nearSum/nearN, farSum/farN)
	}
}

func TestCAISOPairHighlyCorrelated(t *testing.T) {
	// "LA and Palo Alto have a coefficient of 0.94" (§3.2).
	d := testData()
	a, _ := d.RT("NP15")
	b, _ := d.RT("SP15")
	r, _ := stats.Correlation(a.Values, b.Values)
	if r < 0.85 {
		t.Errorf("NP15-SP15 correlation %.3f, want ≥ 0.85 (paper: 0.94)", r)
	}
}

func TestMutualInformationSeparatesRTOs(t *testing.T) {
	// Footnote 8: mutual information divides same-RTO from different-RTO
	// pairs more cleanly than correlation.
	d := testData()
	pairs, _ := d.AllPairCorrelations()
	var sameMin, diffMax float64 = math.Inf(1), 0
	for _, p := range pairs {
		if p.SameRTO {
			if p.MutualInfo < sameMin {
				sameMin = p.MutualInfo
			}
		} else if p.MutualInfo > diffMax {
			diffMax = p.MutualInfo
		}
	}
	// A clean separation is not guaranteed in general, but same-RTO MI
	// should at least reach well into the different-RTO range's top.
	if sameMin <= 0 || diffMax <= 0 {
		t.Fatalf("degenerate MI: sameMin=%v diffMax=%v", sameMin, diffMax)
	}
	if sameMin < 0.25*diffMax {
		t.Errorf("same-RTO MI floor %.3f far below diff-RTO ceiling %.3f", sameMin, diffMax)
	}
}

func TestDiurnalPattern(t *testing.T) {
	d := testData()
	for _, h := range d.Hubs() {
		rt, _ := d.RT(h.ID)
		byHour := rt.GroupByHourOfDay(int(h.Zone))
		night := stats.Mean(byHour[3])
		afternoon := stats.Mean(byHour[17])
		if afternoon <= night {
			t.Errorf("hub %s: 5pm mean %.1f not above 3am mean %.1f", h.ID, afternoon, night)
		}
	}
}

func TestWeekendEffect(t *testing.T) {
	d := testData()
	rt, _ := d.RT("CHI")
	byDay := rt.GroupByWeekday()
	weekend := stats.Mean(append(append([]float64{}, byDay[time.Saturday]...), byDay[time.Sunday]...))
	midweek := stats.Mean(byDay[time.Wednesday])
	if weekend >= midweek {
		t.Errorf("weekend mean %.1f not below midweek %.1f", weekend, midweek)
	}
}

// TestFig3GasRunUp: 2008 prices are visibly elevated against 2007 for
// gas-sensitive hubs, and the hydro Northwest is not affected.
func TestFig3GasRunUp(t *testing.T) {
	d := testData()
	year := func(s *timeseries.Series, y int) []float64 {
		return s.Slice(time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC),
			time.Date(y+1, 1, 1, 0, 0, 0, 0, time.UTC)).Values
	}
	hou, _ := d.RT("ERH") // Houston: gasGamma 1.1
	ratioTX := stats.Mean(year(hou, 2008)) / stats.Mean(year(hou, 2007))
	if ratioTX < 1.15 {
		t.Errorf("Houston 2008/2007 price ratio %.2f, want ≥ 1.15 (gas run-up)", ratioTX)
	}
	nw := d.NorthwestDaily()
	ratioNW := stats.Mean(year(nw, 2008)) / stats.Mean(year(nw, 2007))
	if ratioNW > 1.10 {
		t.Errorf("Northwest 2008/2007 ratio %.2f, want ≈ 1 (hydro: unaffected)", ratioNW)
	}
	if ratioNW >= ratioTX {
		t.Error("Northwest should be less affected by 2008 gas prices than Houston")
	}
}

// TestNorthwestAprilDip: Fig 3's "dips near April" in the hydro Northwest.
func TestNorthwestAprilDip(t *testing.T) {
	d := testData()
	nw := d.NorthwestDaily()
	keys, groups := nw.GroupByMonth()
	var april, annual []float64
	for _, k := range keys {
		vs := groups[k]
		annual = append(annual, vs...)
		if k.Month == time.April {
			april = append(april, vs...)
		}
	}
	if stats.Mean(april) >= 0.9*stats.Mean(annual) {
		t.Errorf("April mean %.1f not clearly below annual mean %.1f",
			stats.Mean(april), stats.Mean(annual))
	}
}

// TestFig5VolatilityOrdering: the real-time market is more volatile than
// day-ahead at short averaging windows, and both σ sequences fall as the
// window grows, converging at 24 h.
func TestFig5VolatilityOrdering(t *testing.T) {
	d := testData()
	rt, _ := d.RT("NYC")
	da, _ := d.DA("NYC")
	rtQ, err := QuarterSlice(rt, 2009, 1)
	if err != nil {
		t.Fatal(err)
	}
	daQ, _ := QuarterSlice(da, 2009, 1)

	windows := []int{1, 3, 12, 24}
	var prevRT, prevDA float64 = math.Inf(1), math.Inf(1)
	for _, w := range windows {
		sRT := WindowStdDev(rtQ.Values, w)
		sDA := WindowStdDev(daQ.Values, w)
		if sRT > prevRT+1e-9 {
			t.Errorf("RT σ increased at window %d: %.1f > %.1f", w, sRT, prevRT)
		}
		if sDA > prevDA+1e-9 {
			t.Errorf("DA σ increased at window %d: %.1f > %.1f", w, sDA, prevDA)
		}
		prevRT, prevDA = sRT, sDA
	}
	// Short-window ordering: RT(1h) > DA(1h) (Fig 5: 24.8 vs 20.0).
	if WindowStdDev(rtQ.Values, 1) <= WindowStdDev(daQ.Values, 1) {
		t.Error("RT 1h σ not above DA 1h σ")
	}
	// Convergence: the relative gap shrinks from 1 h to 24 h.
	gap1 := WindowStdDev(rtQ.Values, 1) - WindowStdDev(daQ.Values, 1)
	gap24 := math.Abs(WindowStdDev(rtQ.Values, 24) - WindowStdDev(daQ.Values, 24))
	if gap24 >= gap1 {
		t.Errorf("RT/DA σ gap did not shrink: 1h %.1f vs 24h %.1f", gap1, gap24)
	}
}

func TestFiveMinuteSeries(t *testing.T) {
	d := testData()
	from := time.Date(2009, 2, 10, 0, 0, 0, 0, time.UTC)
	s, err := d.FiveMinute("NYC", from, 12*24*7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 12*24*7 || s.Step != timeseries.FiveMinute {
		t.Fatalf("geometry: len=%d step=%v", s.Len(), s.Step)
	}
	// Deterministic regeneration.
	s2, _ := d.FiveMinute("NYC", from, 12*24*7)
	for i := range s.Values {
		if s.Values[i] != s2.Values[i] {
			t.Fatal("FiveMinute not deterministic")
		}
	}
	// The 5-minute series tracks the hourly series but is more volatile
	// ("the underlying five minute RT prices are even more volatile", §3.1).
	rt, _ := d.RT("NYC")
	hourlyWindow := rt.Slice(from, from.Add(7*24*time.Hour))
	if math.Abs(stats.Mean(s.Values)-stats.Mean(hourlyWindow.Values)) > 0.15*stats.Mean(hourlyWindow.Values) {
		t.Errorf("5-min mean %.1f far from hourly mean %.1f", stats.Mean(s.Values), stats.Mean(hourlyWindow.Values))
	}
	if stats.StdDev(s.Values) <= stats.StdDev(hourlyWindow.Values) {
		t.Error("5-min σ not above hourly σ")
	}
	// Out-of-range windows fail.
	if _, err := d.FiveMinute("NYC", time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC), 12); err == nil {
		t.Error("window before series should fail")
	}
	if _, err := d.FiveMinute("NOPE", from, 12); err == nil {
		t.Error("unknown hub should fail")
	}
}

func TestScaleExposed(t *testing.T) {
	d := testData()
	if d.Scale("NYC") <= 0 {
		t.Error("Scale(NYC) should be positive")
	}
}

func TestGasFactorDiagnostic(t *testing.T) {
	d := testData()
	g := d.GasFactor()
	if len(g) != d.Hours {
		t.Fatalf("gas length %d", len(g))
	}
	// 2008 peak well above the 2006 level; Q1 2009 collapse below it.
	mid2008 := g[(2*365+182)*24]
	early2006 := g[24*15]
	early2009 := g[(3*365+31)*24]
	if mid2008 < 1.4*early2006 {
		t.Errorf("2008 gas %.2f not elevated vs 2006 %.2f", mid2008, early2006)
	}
	if early2009 > 0.9*early2006 {
		t.Errorf("2009 gas %.2f did not collapse vs 2006 %.2f", early2009, early2006)
	}
	// Returned slice is a copy.
	g[0] = -1
	if d.GasFactor()[0] == -1 {
		t.Error("GasFactor exposes internal storage")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate with bad config should panic")
		}
	}()
	MustGenerate(Config{Months: -5})
}
