package market

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"powerroute/internal/timeseries"
)

// DefaultStart is the first instant of the paper's 39-month price data set
// (January 2006, §3).
var DefaultStart = time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)

// DefaultMonths is the length of the paper's price history: January 2006
// through March 2009.
const DefaultMonths = 39

// Config parameterizes trace generation.
type Config struct {
	// Seed drives every random stream; identical configs generate identical
	// datasets. Zero is a valid seed.
	Seed int64
	// Start is the first hour (UTC). Defaults to DefaultStart.
	Start time.Time
	// Months is the trace length in calendar months. Defaults to
	// DefaultMonths.
	Months int
}

func (c Config) withDefaults() Config {
	if c.Start.IsZero() {
		c.Start = DefaultStart
	}
	if c.Months == 0 {
		c.Months = DefaultMonths
	}
	return c
}

// Dataset is a generated market history: hourly real-time and day-ahead
// price series for every hourly-market hub, plus the daily day-ahead series
// for the Pacific Northwest (Fig 3 only).
type Dataset struct {
	Config Config
	Start  time.Time
	Hours  int

	hubs   []Hub
	rt     map[string]*timeseries.Series
	da     map[string]*timeseries.Series
	nwDay  *timeseries.Series
	gas    []float64 // per-hour fuel factor (diagnostic)
	scales map[string]float64
}

// Generate builds a complete synthetic market history. Generation is
// deterministic in cfg.
func Generate(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.Months < 0 {
		return nil, fmt.Errorf("market: negative months %d", cfg.Months)
	}
	start := cfg.Start.UTC().Truncate(time.Hour)
	end := start.AddDate(0, cfg.Months, 0)
	hours := int(end.Sub(start) / time.Hour)
	if hours <= 0 {
		return nil, fmt.Errorf("market: empty period")
	}

	d := &Dataset{
		Config: cfg,
		Start:  start,
		Hours:  hours,
		hubs:   Hubs(),
		rt:     make(map[string]*timeseries.Series, len(hubs)),
		da:     make(map[string]*timeseries.Series, len(hubs)),
		scales: make(map[string]float64, len(hubs)),
	}

	d.gas = gasPath(cfg.Seed, start, hours)
	factors := regionalFactors(cfg.Seed, hours)
	dayFactors := regionalDayFactors(cfg.Seed, hours)
	hodFactors := regionalHourOfDayFactors(cfg.Seed, hours)
	spikes := regionalSpikes(cfg.Seed, hours)
	congestion := regionalCongestion(cfg.Seed, hours)
	vols := regionalVolatility(cfg.Seed, start, hours)

	// Pre-mix the three regional components into one track per RTO.
	var regional [numRTOs][]float64
	for r := 0; r < int(numRTOs); r++ {
		track := make([]float64, hours)
		for t := 0; t < hours; t++ {
			track[t] = hourlyWeight*factors[r][t] +
				dailyWeight*dayFactors[r][t] +
				hourOfDayWeight*hodFactors[r][t]
		}
		regional[r] = track
	}

	for i := range d.hubs {
		h := d.hubs[i]
		rt, da, scale := generateHub(cfg.Seed, h, start, hours, d.gas, regional[h.RTO], spikes[h.RTO], congestion[h.RTO], vols[h.RTO])
		d.rt[h.ID] = rt
		d.da[h.ID] = da
		d.scales[h.ID] = scale
	}

	d.nwDay = generateNorthwestDaily(cfg.Seed, start, hours)
	return d, nil
}

// MustGenerate is Generate for known-good configs; it panics on error.
func MustGenerate(cfg Config) *Dataset {
	d, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Hubs returns the hourly-market hubs in the dataset (sorted by ID).
func (d *Dataset) Hubs() []Hub {
	out := make([]Hub, len(d.hubs))
	copy(out, d.hubs)
	return out
}

// RT returns the hourly real-time price series for a hub.
func (d *Dataset) RT(hubID string) (*timeseries.Series, error) {
	s, ok := d.rt[hubID]
	if !ok {
		return nil, fmt.Errorf("market: no real-time series for hub %q", hubID)
	}
	return s, nil
}

// DA returns the hourly day-ahead price series for a hub.
func (d *Dataset) DA(hubID string) (*timeseries.Series, error) {
	s, ok := d.da[hubID]
	if !ok {
		return nil, fmt.Errorf("market: no day-ahead series for hub %q", hubID)
	}
	return s, nil
}

// NorthwestDaily returns the Pacific Northwest's daily day-ahead series.
func (d *Dataset) NorthwestDaily() *timeseries.Series { return d.nwDay }

// GasFactor returns the shared fuel-price factor by hour (diagnostic).
func (d *Dataset) GasFactor() []float64 {
	out := make([]float64, len(d.gas))
	copy(out, d.gas)
	return out
}

// gasPath generates the hourly natural-gas factor: the deterministic
// keypoint path plus a slow AR(1) wobble shared by all hubs.
func gasPath(seed int64, start time.Time, hours int) []float64 {
	rng := rand.New(rand.NewSource(seed ^ 0x67a5_1111))
	out := make([]float64, hours)
	wobble := 0.0
	const phi = 0.995
	sigma := 0.004
	for t := 0; t < hours; t++ {
		wobble = phi*wobble + sigma*rng.NormFloat64()
		m := monthsFrom2006(start.Add(time.Duration(t) * time.Hour))
		g := gasBase(m) * (1 + wobble)
		if g < 0.3 {
			g = 0.3
		}
		out[t] = g
	}
	return out
}

// regionalFactors generates the six RTO AR(1) factors with cross-RTO
// innovation correlation from factorCorrelation. Each factor has unit
// stationary variance.
func regionalFactors(seed int64, hours int) [numRTOs][]float64 {
	rng := rand.New(rand.NewSource(seed ^ 0x52f0_2222))
	l, err := cholesky(rtoCorrelationMatrix(), int(numRTOs))
	if err != nil {
		// The matrix is fixed at compile time; failure is a programming
		// error, not an input error.
		panic(err)
	}
	var out [numRTOs][]float64
	for r := range out {
		out[r] = make([]float64, hours)
	}
	z := make([]float64, numRTOs)
	eps := make([]float64, numRTOs)
	innScale := math.Sqrt(1 - factorPhi*factorPhi)
	state := make([]float64, numRTOs)
	norm := tailNorm(rtoTailP)
	for t := 0; t < hours; t++ {
		for i := range z {
			z[i] = heavyNormal(rng, rtoTailP, norm)
		}
		mulLower(l, z, eps, int(numRTOs))
		for r := 0; r < int(numRTOs); r++ {
			state[r] = factorPhi*state[r] + innScale*eps[r]
			out[r][t] = state[r]
		}
	}
	return out
}

// regionalDayFactors generates the daily regional factors: one unit-
// variance AR(1) value per day per RTO, correlated across RTOs with the
// same structure as the hourly factors. The value is expanded to hourly
// resolution (constant within each UTC day).
func regionalDayFactors(seed int64, hours int) [numRTOs][]float64 {
	rng := rand.New(rand.NewSource(seed ^ 0x2ab9_7777))
	l, err := cholesky(rtoCorrelationMatrix(), int(numRTOs))
	if err != nil {
		panic(err)
	}
	days := (hours + 23) / 24
	var out [numRTOs][]float64
	for r := range out {
		out[r] = make([]float64, hours)
	}
	z := make([]float64, numRTOs)
	eps := make([]float64, numRTOs)
	state := make([]float64, numRTOs)
	innScale := math.Sqrt(1 - dayPhi*dayPhi)
	norm := tailNorm(rtoTailP)
	for day := 0; day < days; day++ {
		for i := range z {
			z[i] = heavyNormal(rng, rtoTailP, norm)
		}
		mulLower(l, z, eps, int(numRTOs))
		for r := 0; r < int(numRTOs); r++ {
			state[r] = dayPhi*state[r] + innScale*eps[r]
			for h := 0; h < 24; h++ {
				t := day*24 + h
				if t >= hours {
					break
				}
				out[r][t] = state[r]
			}
		}
	}
	return out
}

// regionalHourOfDayFactors generates, per RTO, 24 chains — one per hour of
// day — each evolving day-to-day as an AR(1), correlated across RTOs like
// the other factors. out[r][t] is the chain value for t's hour of day.
func regionalHourOfDayFactors(seed int64, hours int) [numRTOs][]float64 {
	rng := rand.New(rand.NewSource(seed ^ 0x5dc3_8888))
	l, err := cholesky(rtoCorrelationMatrix(), int(numRTOs))
	if err != nil {
		panic(err)
	}
	days := (hours + 23) / 24
	var out [numRTOs][]float64
	for r := range out {
		out[r] = make([]float64, hours)
	}
	// chains[r][h] is RTO r's persistent premium for hour-of-day h.
	var chains [numRTOs][24]float64
	z := make([]float64, numRTOs)
	eps := make([]float64, numRTOs)
	innScale := math.Sqrt(1 - hourOfDayPhi*hourOfDayPhi)
	norm := tailNorm(rtoTailP)
	for day := 0; day < days; day++ {
		for h := 0; h < 24; h++ {
			for i := range z {
				z[i] = heavyNormal(rng, rtoTailP, norm)
			}
			mulLower(l, z, eps, int(numRTOs))
			t := day*24 + h
			for r := 0; r < int(numRTOs); r++ {
				chains[r][h] = hourOfDayPhi*chains[r][h] + innScale*eps[r]
				if t < hours {
					out[r][t] = chains[r][h]
				}
			}
		}
	}
	return out
}

// regionalSpike describes an RTO-wide scarcity event at one hour: the decay
// weight of the event at this hour times its severity draw.
type regionalSpike struct {
	severity float64 // 0 when no event is active
	eventID  int64   // identifies the event for per-hub participation draws
}

// regionalSpikes generates per-RTO spike event tracks. Severity is Exp(1)
// with occasional super-spikes; events persist 1–3 hours with decaying
// weight (spikeDecay).
func regionalSpikes(seed int64, hours int) [numRTOs][]regionalSpike {
	var out [numRTOs][]regionalSpike
	for r := 0; r < int(numRTOs); r++ {
		rng := rand.New(rand.NewSource(seed ^ (0x3c91_3333 + int64(r)*7919)))
		track := make([]regionalSpike, hours)
		var eventCounter int64
		for t := 0; t < hours; t++ {
			if rng.Float64() >= rtoSpikeRate[r] {
				continue
			}
			eventCounter++
			severity := rng.ExpFloat64()
			if rng.Float64() < superSpikeP {
				severity *= superSpikeMul
			}
			dur := spikeMinDuration + rng.Intn(spikeMaxDuration-spikeMinDuration+1)
			for k := 0; k < dur && t+k < hours; k++ {
				w := severity * spikeDecay[k]
				// Overlapping events: keep the stronger.
				if w > track[t+k].severity {
					track[t+k] = regionalSpike{severity: w, eventID: eventCounter}
				}
			}
		}
		out[r] = track
	}
	return out
}

// regionalCongestion generates per-RTO hourly congestion severity tracks.
// Congestion binds for multi-hour blocks (transmission constraints persist
// until demand recedes), so the track is event-based: events arrive at a
// rate that keeps the active-hour probability at congP, carry an Exp(1)
// severity, and last 2–5 hours. Persistence is what lets a router acting
// on the previous hour's prices still route around congested hubs (§6.4).
func regionalCongestion(seed int64, hours int) [numRTOs][]regionalSpike {
	const (
		minDur  = 2
		maxDur  = 5
		meanDur = (minDur + maxDur) / 2.0
	)
	arrivalRate := congP / meanDur
	var out [numRTOs][]regionalSpike
	for r := 0; r < int(numRTOs); r++ {
		rng := rand.New(rand.NewSource(seed ^ (0x77d2_5555 + int64(r)*6151)))
		track := make([]regionalSpike, hours)
		var eventCounter int64
		for t := 0; t < hours; t++ {
			if rng.Float64() >= arrivalRate {
				continue
			}
			eventCounter++
			severity := rng.ExpFloat64()
			dur := minDur + rng.Intn(maxDur-minDur+1)
			for k := 0; k < dur && t+k < hours; k++ {
				if severity > track[t+k].severity {
					track[t+k] = regionalSpike{severity: severity, eventID: eventCounter}
				}
			}
		}
		out[r] = track
	}
	return out
}

// regionalVolatility generates a per-RTO hourly volatility multiplier that
// moves month to month (volatility clustering: "the spread of prices in one
// month may double the next month", §3.3/Fig 11). The multiplier is
// log-normal with monthly AR structure and ≈ unit mean; hubs within an RTO
// share it, so within-RTO correlation is unaffected.
func regionalVolatility(seed int64, start time.Time, hours int) [numRTOs][]float64 {
	var out [numRTOs][]float64
	for r := 0; r < int(numRTOs); r++ {
		rng := rand.New(rand.NewSource(seed ^ (0x1f3d_6666 + int64(r)*4099)))
		track := make([]float64, hours)
		const (
			phi      = 0.6
			statStd  = 0.25
			innScale = 0.20 // statStd·√(1−φ²)
		)
		m := statStd * rng.NormFloat64()
		curMonth := -1
		vol := 1.0
		for t := 0; t < hours; t++ {
			at := start.Add(time.Duration(t) * time.Hour)
			mIdx := at.Year()*12 + int(at.Month())
			if mIdx != curMonth {
				curMonth = mIdx
				m = phi*m + innScale*rng.NormFloat64()
				vol = math.Exp(m - statStd*statStd/2)
			}
			track[t] = vol
		}
		out[r] = track
	}
	return out
}

// generateHub produces one hub's hourly RT and DA series and returns the
// stochastic scale s_h used (diagnostics and 5-minute generation).
func generateHub(seed int64, h Hub, start time.Time, hours int, gas []float64, factor []float64, spikes []regionalSpike, congestion []regionalSpike, vol []float64) (rt, da *timeseries.Series, scale float64) {
	// Deterministic profile with unit base, then solve for the base level
	// that hits MeanTarget exactly over the period.
	mu := make([]float64, hours)
	var muSum float64
	for t := 0; t < hours; t++ {
		at := start.Add(time.Duration(t) * time.Hour)
		localHour := h.Zone.LocalHour(at.Hour())
		v := math.Pow(gas[t], h.GasGamma) *
			SeasonFactor(h.Season, at.YearDay()) *
			WeekdayFactor(at.Weekday()) *
			DiurnalFactor(h.DiurnalAmp, localHour)
		mu[t] = v
		muSum += v
	}
	base := h.MeanTarget / (muSum / float64(hours))
	var muVar float64
	for t := range mu {
		mu[t] *= base
		d := mu[t] - h.MeanTarget
		muVar += d * d
	}
	muVar /= float64(hours)

	// Solve s_h so the 1%-trimmed standard deviation lands near StdTarget:
	// solve against an inflated raw target because trimming removes spike
	// mass.
	target := h.StdTarget * trimCompensation
	residual := (target*target - muVar - estimatedSpikeVariance(h)) / (1 + congVarCoeff)
	minScale := 0.30 * h.StdTarget
	if residual < minScale*minScale {
		residual = minScale * minScale
	}
	scale = math.Sqrt(residual)

	rng := rand.New(rand.NewSource(seed ^ hashID(h.ID)))
	rt = timeseries.New(start, timeseries.Hourly, hours)
	da = timeseries.New(start, timeseries.Hourly, hours)

	lambda := h.RTOLoading
	idioW := math.Sqrt(1 - lambda*lambda)
	innScale := math.Sqrt(1 - idioPhi*idioPhi)
	tw := h.tailWeight()
	twNorm := tailNorm(tw)
	idio := 0.0
	daIdio := 0.0

	// Per-hub participation in regional spike events is resolved once per
	// event via a hash of (hub, eventID) so participation is stable across
	// the event's hours.
	ownSpikeRate := h.SpikeRate * ownSpikeFrac

	// Day-level state for the DA market: yesterday's mean regional factor.
	dayFactorMean := 0.0
	var runningSum float64
	var runningN int

	ownSpike := 0.0 // remaining own-spike magnitude track
	ownDecayIdx := 0

	for t := 0; t < hours; t++ {
		at := start.Add(time.Duration(t) * time.Hour)
		localHour := h.Zone.LocalHour(at.Hour())

		// New day: roll the DA forecast factor.
		if t > 0 && at.Hour() == 0 {
			if runningN > 0 {
				dayFactorMean = runningSum / float64(runningN)
			}
			runningSum, runningN = 0, 0
		}
		runningSum += factor[t]
		runningN++

		idio = idioPhi*idio + innScale*heavyNormal(rng, tw, twNorm)
		stoch := scale * (lambda*factor[t] + idioW*idio)

		// Congestion premium (mean-compensated so MeanTarget still holds).
		cong := -congMeanCoeff * scale
		if ev := congestion[t]; ev.severity > 0 && participates2(h.ID, ev.eventID^0x436f6e67 /* "Cong" */, congShare) {
			cong += congScale * scale * ev.severity
		}
		if rng.Float64() < congOwnP {
			cong += congScale * congOwnMul * scale * rng.ExpFloat64()
		}
		stoch += cong

		// Regional spike participation.
		spike := 0.0
		if s := spikes[t]; s.severity > 0 {
			if participates(h.ID, s.eventID) {
				spike += h.SpikeScale * s.severity
			}
		}
		// Hub-own spikes (e.g. local congestion).
		if ownSpike > 0 && ownDecayIdx < len(spikeDecay) {
			spike += ownSpike * spikeDecay[ownDecayIdx]
			ownDecayIdx++
			if ownDecayIdx >= len(spikeDecay) {
				ownSpike = 0
			}
		}
		if rng.Float64() < ownSpikeRate {
			sev := rng.ExpFloat64()
			if rng.Float64() < superSpikeP {
				sev *= superSpikeMul
			}
			ownSpike = h.SpikeScale * sev
			ownDecayIdx = 0
			spike += ownSpike * spikeDecay[0]
			ownDecayIdx = 1
		}

		// Night-time negative dips.
		dip := 0.0
		if localHour <= 6 {
			if rng.Float64() < h.NegRate*24.0/7.0 {
				dip = dipScale * rng.ExpFloat64()
			}
		}

		price := mu[t] + vol[t]*(stoch+spike) - dip
		rt.Values[t] = clampPrice(softenFloor(price, 0.25*h.MeanTarget))

		// Day-ahead: expectation-based, smoother, no extreme tails
		// ("the outcome is based on expected load", §2.2).
		daIdio = idioPhi*daIdio + innScale*rng.NormFloat64()
		daSpike := 0.0
		if rng.Float64() < h.SpikeRate/5 {
			daSpike = h.SpikeScale / 2 * rng.ExpFloat64()
		}
		daPrice := mu[t] + scale*(lambda*daPhi*dayFactorMean+daNoiseFrac*idioW*daIdio) + daSpike
		da.Values[t] = clampPrice(softenFloor(daPrice, 0.25*h.MeanTarget))
	}
	return rt, da, scale
}

// softenFloor compresses the price distribution below a knee: marginal
// generation cost puts a soft floor under clearing prices, so the lower
// tail is far thinner than the upper one (real LMPs are right-skewed).
// Excursions below the knee are scaled by 0.35 — still allowing brief
// negative prices (§2.2) but making them rare.
func softenFloor(p, knee float64) float64 {
	if p >= knee {
		return p
	}
	return knee + 0.35*(p-knee)
}

// heavyNormal draws a unit-variance innovation with tail mixing: with
// probability p the draw is scaled by tailMul, and norm (= tailNorm(p))
// renormalizes the mixture to unit variance. This yields the leptokurtic
// innovation bodies real locational prices exhibit.
func heavyNormal(rng *rand.Rand, p, norm float64) float64 {
	z := rng.NormFloat64()
	if rng.Float64() < p {
		z *= tailMul
	}
	return z * norm
}

// clampPrice bounds prices to the plausible range observed in RTO markets
// (the paper notes spikes past $1900 and brief negative prices).
func clampPrice(p float64) float64 {
	if p < priceFloor {
		return priceFloor
	}
	if p > priceCeil {
		return priceCeil
	}
	return p
}

// participates decides, deterministically per (hub, event), whether the hub
// joins a regional spike event.
func participates(hubID string, eventID int64) bool {
	return participates2(hubID, eventID, spikeShare)
}

// participates2 is the deterministic per-(hub,event) coin flip with an
// arbitrary participation probability.
func participates2(hubID string, eventID int64, share float64) bool {
	x := uint64(hashID(hubID)) ^ (uint64(eventID) * 0x9e3779b97f4a7c15)
	// xorshift mix (splitmix64 finalizer).
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x>>11)/float64(1<<53) < share
}

// hashID maps a hub ID to a stable 64-bit value for seed derivation (FNV-1a).
func hashID(id string) int64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 0x100000001b3
	}
	return int64(h)
}

// generateNorthwestDaily produces the Fig 3 Pacific Northwest daily
// day-ahead series: hydro seasonality (April dips), weak gas coupling, low
// volatility.
func generateNorthwestDaily(seed int64, start time.Time, hours int) *timeseries.Series {
	h := northwest
	days := hours / 24
	rng := rand.New(rand.NewSource(seed ^ hashID(h.ID)))
	out := timeseries.New(start, timeseries.Daily, days)
	gas := gasPath(seed, start, hours) // same shared path; sampled daily
	ar := 0.0
	const phi = 0.92
	innScale := math.Sqrt(1 - phi*phi)
	// Unit profile first, then scale to the mean target.
	var sum float64
	vals := make([]float64, days)
	for d := 0; d < days; d++ {
		at := start.Add(time.Duration(d) * 24 * time.Hour)
		v := math.Pow(gas[d*24], h.GasGamma) * SeasonFactor(Hydro, at.YearDay())
		vals[d] = v
		sum += v
	}
	base := h.MeanTarget / (sum / float64(days))
	for d := 0; d < days; d++ {
		ar = phi*ar + innScale*rng.NormFloat64()
		price := vals[d]*base + h.StdTarget*0.35*ar
		if rng.Float64() < h.SpikeRate*24 {
			price += h.SpikeScale * rng.ExpFloat64()
		}
		out.Values[d] = clampPrice(softenFloor(price, 0.3*h.MeanTarget))
	}
	return out
}

// FiveMinute generates the 5-minute real-time price series for a hub over
// [from, from+n·5min), deterministically derived from the dataset's hourly
// RT prices plus intra-hour noise — the underlying five minute RT prices
// "are even more volatile" than hourly (§3.1, Fig 4).
func (d *Dataset) FiveMinute(hubID string, from time.Time, samples int) (*timeseries.Series, error) {
	hourly, err := d.RT(hubID)
	if err != nil {
		return nil, err
	}
	scale := d.scales[hubID]
	from = from.UTC().Truncate(timeseries.FiveMinute)
	rng := rand.New(rand.NewSource(d.Config.Seed ^ hashID(hubID) ^ 0x5f5f_4444 ^ from.Unix()))
	out := timeseries.New(from, timeseries.FiveMinute, samples)
	ar := 0.0
	innScale := math.Sqrt(1 - fiveMinPhi*fiveMinPhi)
	sigma := fiveMinFrac * scale
	for i := 0; i < samples; i++ {
		at := from.Add(time.Duration(i) * timeseries.FiveMinute)
		base, err := hourly.At(at)
		if err != nil {
			return nil, fmt.Errorf("market: 5-minute window outside hourly series: %w", err)
		}
		ar = fiveMinPhi*ar + innScale*rng.NormFloat64()
		v := base + sigma*ar
		if rng.Float64() < fiveMinSpikeP {
			v += fiveMinSpikeS * rng.ExpFloat64()
		}
		out.Values[i] = clampPrice(v)
	}
	return out, nil
}

// Scale returns the stochastic scale s_h the generator used for a hub
// (diagnostic, exposed for tests).
func (d *Dataset) Scale(hubID string) float64 { return d.scales[hubID] }
