package market

import (
	"math"
	"time"
)

// This file holds the deterministic components of the price process. The
// hourly price at hub h decomposes as
//
//	P_h(t) = μ_h(t) + s_h·( λ_h·F_r(t) + √(1−λ_h²)·I_h(t) ) + spikes − dips
//
// where μ_h is a deterministic profile (base level × gas factor × seasonal ×
// weekday × diurnal shape), F_r is the hub's regional AR(1) factor (shared
// within an RTO, correlated across RTOs per factorCorrelation), I_h is an
// idiosyncratic AR(1), and the spike/dip processes contribute the heavy
// tails (κ up to 12 for prices and far beyond for differentials, Fig 6–10).
// The scale s_h is solved per hub so the total variance matches StdTarget.

// diurnalShape is the zero-mean hour-of-day profile of wholesale prices:
// cheapest in the small hours of the night, an afternoon/evening peak
// ("the most expensive active generation resource determines the market
// clearing price", §2.2 — peak demand activates expensive peaker plants).
// Indexed by local standard hour.
var diurnalShape = func() [24]float64 {
	raw := [24]float64{
		-0.18, -0.22, -0.26, -0.28, -0.28, -0.24, // 0–5: overnight trough
		-0.15, -0.02, 0.08, 0.12, 0.15, 0.17, // 6–11: morning ramp
		0.18, 0.20, 0.24, 0.27, 0.30, 0.32, // 12–17: afternoon rise
		0.30, 0.24, 0.16, 0.08, -0.02, -0.12, // 18–23: evening decline
	}
	mean := 0.0
	for _, v := range raw {
		mean += v
	}
	mean /= 24
	for i := range raw {
		raw[i] -= mean
	}
	return raw
}()

// DiurnalFactor returns the multiplicative hour-of-day price factor for a
// hub with the given amplitude at the given local standard hour. The mean
// over a day is exactly 1.
func DiurnalFactor(amplitude float64, localHour int) float64 {
	h := localHour % 24
	if h < 0 {
		h += 24
	}
	return 1 + amplitude*diurnalShape[h]
}

// WeekdayFactor returns the day-of-week demand factor: weekend demand (and
// hence prices) run lower than weekdays.
func WeekdayFactor(d time.Weekday) float64 {
	switch d {
	case time.Saturday, time.Sunday:
		return 0.90
	case time.Friday:
		return 0.98
	default:
		return 1.0
	}
}

// SeasonFactor returns the multiplicative annual seasonality for the given
// profile and day of year (1–366). Profiles reflect regional generation
// and demand mixes (§2.2); the Hydro profile carries the April snowmelt dip
// the paper observes in the Northwest (Fig 3).
func SeasonFactor(p SeasonProfile, yearDay int) float64 {
	d := float64(yearDay)
	const year = 365.25
	switch p {
	case SummerPeak:
		// Single broad peak in mid-July plus a mild secondary winter bump.
		return 1 + 0.16*math.Cos(2*math.Pi*(d-200)/year) + 0.04*math.Cos(4*math.Pi*(d-15)/year)
	case DualPeak:
		// Winter heating and summer cooling peaks (New England/New York).
		return 1 + 0.08*math.Cos(2*math.Pi*(d-200)/year) + 0.10*math.Cos(4*math.Pi*(d-25)/year)
	case Hydro:
		// Deep April dip when snowmelt floods the market with cheap hydro.
		dip := math.Exp(-sq(d-105) / (2 * 38 * 38))
		return 1 - 0.30*dip + 0.08*math.Cos(2*math.Pi*(d-230)/year)
	default:
		return 1
	}
}

func sq(x float64) float64 { return x * x }

// gasKeypoints traces the natural-gas fuel-price factor over the study
// period as (monthIndex, factor) pairs with month 0 = January 2006. The
// path reproduces Fig 3's macro structure: flat-to-soft 2006–2007, the
// record 2008 run-up ("the elevation in 2008 correlates with record high
// natural gas prices"), and the collapse "correlated with the global
// economic downturn" through Q1 2009.
var gasKeypoints = []struct {
	month  float64
	factor float64
}{
	{0, 1.00}, {3, 0.95}, {6, 0.90}, {9, 0.92}, {12, 0.96},
	{15, 1.00}, {18, 1.02}, {21, 1.05}, {24, 1.12}, {26, 1.30},
	{28, 1.55}, {29, 1.68}, {30, 1.72}, {31, 1.55}, {32, 1.30},
	{33, 1.10}, {34, 0.95}, {35, 0.82}, {36, 0.72}, {37, 0.68},
	{38, 0.65}, {39, 0.64}, {48, 0.70},
}

// gasBase interpolates the deterministic gas factor at a fractional month
// index from the start of 2006.
func gasBase(monthIdx float64) float64 {
	k := gasKeypoints
	if monthIdx <= k[0].month {
		return k[0].factor
	}
	for i := 1; i < len(k); i++ {
		if monthIdx <= k[i].month {
			w := (monthIdx - k[i-1].month) / (k[i].month - k[i-1].month)
			return k[i-1].factor*(1-w) + k[i].factor*w
		}
	}
	return k[len(k)-1].factor
}

// monthsFrom2006 converts an instant to a fractional month index from
// 2006-01-01 (30.44-day months; precision is irrelevant at this scale).
func monthsFrom2006(t time.Time) float64 {
	ref := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	return t.Sub(ref).Hours() / (24 * 30.44)
}

// Regional spike rates: per-hour probability that an RTO-wide scarcity or
// congestion event begins. Spikes are regional because congestion binds at
// the transmission level (§2.2); hubs in the RTO participate with high
// probability, which both couples same-RTO prices (Fig 8) and produces the
// common tails in differentials of same-RTO pairs (Fig 10e).
var rtoSpikeRate = [numRTOs]float64{
	ISONE: 0.0075,
	NYISO: 0.0100,
	PJM:   0.0088,
	MISO:  0.0070,
	CAISO: 0.0112,
	ERCOT: 0.0112,
}

// Process constants.
const (
	factorPhi    = 0.80 // AR(1) persistence of regional factors
	dayPhi       = 0.60 // day-to-day persistence of the daily regional factor
	hourOfDayPhi = 0.55 // day-to-day persistence of each hour-of-day's premium

	// The regional factor mixes three unit-variance components: an hourly
	// AR(1) chain, a daily step (persists across the whole day), and a
	// per-hour-of-day chain that evolves day to day. The third carries the
	// §6.4 observation that "market prices can be correlated for a given
	// hour from one day to the next", which produces Fig 20's local cost
	// minimum at a 24-hour reaction delay. Weights satisfy Σw² = 1.
	hourlyWeight    = 0.822
	dailyWeight     = 0.35
	hourOfDayWeight = 0.45

	idioPhi       = 0.60 // AR(1) persistence of hub idiosyncratic noise
	daPhi         = 0.80 // weight of yesterday's regional factor in DA prices
	daNoiseFrac   = 0.30 // DA idiosyncratic noise as a fraction of s_h
	spikeShare    = 0.85 // probability a hub participates in a regional spike
	ownSpikeFrac  = 0.10 // hub-idiosyncratic spike rate as a fraction of Hub.SpikeRate
	superSpikeP   = 0.02 // probability a spike is a super-spike (×5 severity)
	superSpikeMul = 5.0
	dipScale      = 55.0  // mean magnitude of negative-price night dips
	priceFloor    = -95.0 // clamp: brief negative prices are real (§2.2)
	priceCeil     = 1950.0
	fiveMinPhi    = 0.80 // AR(1) persistence of intra-hour 5-minute noise
	fiveMinFrac   = 0.50 // 5-minute noise σ as a fraction of s_h
	fiveMinSpikeP = 0.01 // per-5-min micro-spike probability
	fiveMinSpikeS = 40.0 // mean micro-spike magnitude

	// trimCompensation inflates the variance solve so the 1%-trimmed
	// standard deviation (what Fig 6 tabulates) lands near StdTarget even
	// though trimming removes spike mass.
	trimCompensation = 1.10

	// Innovation tail mixing: with probability tailP an AR innovation is
	// drawn at tailMul× scale. This produces the leptokurtic price bodies
	// the paper measures even on trimmed data (Fig 6: κ 4.6–11.9) without
	// relying solely on rare spikes. Innovations are renormalized to unit
	// variance.
	rtoTailP = 0.10
	tailMul  = 4.0

	// Congestion premium: with probability congP per hour an RTO clears
	// with a positive congestion component; hubs in the region participate
	// with probability congShare, and additionally see their own local
	// congestion at rate congOwnP (at congOwnMul of the regional scale).
	// Magnitudes are exponential with mean congScale·s_h. "When
	// transmission system restrictions … prevent the least expensive energy
	// supplier from serving demand, congestion is said to exist. More
	// expensive generation units will then need to be activated, driving up
	// prices" (§2.2). These moderate, frequent bumps give prices their
	// right skew and the fat shoulders that survive the 1% trim (Fig 6's κ
	// on trimmed data), and — being regional — they couple same-RTO hubs.
	congP      = 0.12
	congScale  = 1.2
	congShare  = 0.80
	congOwnP   = 0.03
	congOwnMul = 0.7
)

// Congestion moments per unit s_h, used for mean compensation and the
// variance solve.
const (
	congMeanCoeff = (congP*congShare + congOwnP*congOwnMul) * congScale
	congVarCoeff  = congP*congShare*2*congScale*congScale +
		congOwnP*2*(congScale*congOwnMul)*(congScale*congOwnMul) -
		congMeanCoeff*congMeanCoeff
)

// tailNorm is the normalization 1/√(1+(tailMul²−1)·p) cached per p.
func tailNorm(p float64) float64 {
	return 1 / math.Sqrt(1+(tailMul*tailMul-1)*p)
}

// spikeDecay gives the within-event magnitude profile of a multi-hour
// spike: full force, then decaying. Real scarcity events (heat waves,
// outage-driven congestion) bind for afternoon-scale blocks, not single
// hours; events last 2–6 hours (uniform), truncating the profile.
var spikeDecay = [6]float64{1.0, 0.85, 0.7, 0.55, 0.4, 0.25}

// spikeMinDuration and spikeMaxDuration bound event length in hours.
const (
	spikeMinDuration = 2
	spikeMaxDuration = 6
)

// expectedDecaySquares returns E[Σ_{k<d} decay_k²] for d uniform on
// {spikeMinDuration..spikeMaxDuration}.
func expectedDecaySquares() float64 {
	total := 0.0
	for d := spikeMinDuration; d <= spikeMaxDuration; d++ {
		sum := 0.0
		for k := 0; k < d; k++ {
			sum += spikeDecay[k] * spikeDecay[k]
		}
		total += sum
	}
	return total / float64(spikeMaxDuration-spikeMinDuration+1)
}

// estimatedSpikeVariance approximates the price variance contributed by the
// spike and dip processes for a hub, used when solving for s_h.
func estimatedSpikeVariance(h Hub) float64 {
	effRate := rtoSpikeRate[h.RTO]*spikeShare + h.SpikeRate*ownSpikeFrac
	// E[severity²] for Exp(1) is 2; super-spikes add 2% × 25×.
	sev2 := 2 * (1 - superSpikeP + superSpikeP*superSpikeMul*superSpikeMul)
	// Expected sum of squared decay weights for duration uniform on
	// {spikeMinDuration..spikeMaxDuration}.
	decay2 := expectedDecaySquares()
	spikeVar := effRate * decay2 * sev2 * h.SpikeScale * h.SpikeScale
	// Night dips fire only during local hours 0–6 but NegRate is the
	// all-hours average rate, so the variance contribution is simply
	// rate × E[magnitude²] with exponential magnitudes.
	dipVar := h.NegRate * 2 * dipScale * dipScale
	return spikeVar + dipVar
}
