package market

import (
	"fmt"
	"time"

	"powerroute/internal/geo"
	"powerroute/internal/stats"
	"powerroute/internal/timeseries"
)

// Differential returns the hourly price differential series a−b for two
// hubs' real-time prices, the quantity behind Figs 9–13. A positive value
// means hub a is more expensive that hour.
func (d *Dataset) Differential(hubA, hubB string) (*timeseries.Series, error) {
	a, err := d.RT(hubA)
	if err != nil {
		return nil, err
	}
	b, err := d.RT(hubB)
	if err != nil {
		return nil, err
	}
	return timeseries.Sub(a, b)
}

// PairCorrelation is one point of Fig 8's scatter: a hub pair, the distance
// between them, their price correlation, and whether they share an RTO.
type PairCorrelation struct {
	HubA, HubB  string
	RTOA, RTOB  RTO
	SameRTO     bool
	DistanceKm  float64
	Correlation float64
	MutualInfo  float64 // bits; footnote 8's cleaner separator
}

// AllPairCorrelations computes correlation and mutual information for all
// hub pairs (29 hubs → 406 pairs, matching Fig 8's caption).
func (d *Dataset) AllPairCorrelations() ([]PairCorrelation, error) {
	hs := d.Hubs()
	var out []PairCorrelation
	for i := 0; i < len(hs); i++ {
		for j := i + 1; j < len(hs); j++ {
			a, err := d.RT(hs[i].ID)
			if err != nil {
				return nil, err
			}
			b, err := d.RT(hs[j].ID)
			if err != nil {
				return nil, err
			}
			corr, err := stats.Correlation(a.Values, b.Values)
			if err != nil {
				return nil, err
			}
			mi, err := stats.MutualInformation(a.Values, b.Values, 24)
			if err != nil {
				return nil, err
			}
			out = append(out, PairCorrelation{
				HubA: hs[i].ID, HubB: hs[j].ID,
				RTOA: hs[i].RTO, RTOB: hs[j].RTO,
				SameRTO:     hs[i].RTO == hs[j].RTO,
				DistanceKm:  hubDistanceKm(hs[i], hs[j]),
				Correlation: corr,
				MutualInfo:  mi,
			})
		}
	}
	return out, nil
}

func hubDistanceKm(a, b Hub) float64 {
	return geo.Distance(a.Location, b.Location).Km()
}

// SustainedDifferentials segments a differential series into runs where one
// location is favoured by more than threshold $/MWh, returning each run's
// length in hours. The paper defines duration as "the number of hours one
// location is favoured over another by more than $5/MWh. As soon as the
// differential falls below this threshold, or reverses to favour the other
// location, we mark the end of the differential" (§3.3, Fig 13).
func SustainedDifferentials(diff []float64, threshold float64) []int {
	var runs []int
	cur := 0  // length of the current run
	sign := 0 // +1: first location favoured; -1: second; 0: neither
	flush := func() {
		if cur > 0 {
			runs = append(runs, cur)
		}
		cur, sign = 0, 0
	}
	for _, v := range diff {
		switch {
		case v > threshold: // second location cheaper: favours it
			if sign == -1 {
				flush()
			}
			sign = 1
			cur++
		case v < -threshold:
			if sign == 1 {
				flush()
			}
			sign = -1
			cur++
		default:
			flush()
		}
	}
	flush()
	return runs
}

// DurationFractions converts run lengths into Fig 13's "fraction of total
// time" histogram: bucket i (1-indexed by hours) holds the fraction of all
// hours spent in runs of exactly that length, up to maxHours (longer runs
// accumulate in the final bucket).
func DurationFractions(runs []int, totalHours, maxHours int) []float64 {
	if maxHours <= 0 || totalHours <= 0 {
		return nil
	}
	out := make([]float64, maxHours+1) // index = duration in hours; [0] unused
	for _, r := range runs {
		b := r
		if b > maxHours {
			b = maxHours
		}
		out[b] += float64(r)
	}
	for i := range out {
		out[i] /= float64(totalHours)
	}
	return out
}

// DailyPeakMeans returns, per UTC day, the mean of the series over local
// peak hours (7:00–22:59 local standard time). Fig 3 plots "daily averages
// of day-ahead peak prices".
func DailyPeakMeans(s *timeseries.Series, zone int) (*timeseries.Series, error) {
	if s.Step != timeseries.Hourly {
		return nil, fmt.Errorf("market: DailyPeakMeans requires hourly series, got %v", s.Step)
	}
	days := s.Len() / 24
	out := timeseries.New(s.Start, timeseries.Daily, days)
	for d := 0; d < days; d++ {
		sum, n := 0.0, 0
		for h := 0; h < 24; h++ {
			at := s.TimeAt(d*24 + h)
			lh := (at.Hour() + zone) % 24
			if lh < 0 {
				lh += 24
			}
			if lh >= 7 && lh <= 22 {
				sum += s.Values[d*24+h]
				n++
			}
		}
		if n > 0 {
			out.Values[d] = sum / float64(n)
		}
	}
	return out, nil
}

// WindowStdDev computes Fig 5's row: the standard deviation of the series
// after averaging over non-overlapping windows of the given length.
func WindowStdDev(values []float64, window int) float64 {
	return stats.StdDev(stats.WindowMeans(values, window))
}

// QuarterSlice returns the sub-series covering one calendar quarter
// (1–4) of the given year, used by Fig 5 (Q1 2009 statistics).
func QuarterSlice(s *timeseries.Series, year, quarter int) (*timeseries.Series, error) {
	if quarter < 1 || quarter > 4 {
		return nil, fmt.Errorf("market: invalid quarter %d", quarter)
	}
	from := time.Date(year, time.Month(3*(quarter-1)+1), 1, 0, 0, 0, 0, time.UTC)
	to := from.AddDate(0, 3, 0)
	sub := s.Slice(from, to)
	if sub.Len() == 0 {
		return nil, fmt.Errorf("market: quarter %dQ%d outside series", year, quarter)
	}
	return sub, nil
}
