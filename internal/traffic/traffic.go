// Package traffic synthesizes the CDN workload that substitutes for the
// paper's proprietary 24-day Akamai trace (§4): 5-minute samples of request
// load originating from each US state, destined for the CDN's public
// clusters, plus the aggregate global/US/9-region series of Fig 14.
//
// The model drives each state's demand from its census population, a
// local-time diurnal curve, a weekly pattern, the turn-of-year holiday dip
// visible in the paper's trace window (2008-12-19 through 2009-01-12), and
// an AR(1) multiplicative noise stream with occasional flash-crowd bursts.
// The aggregate is normalized so the US series peaks at the configured
// rate (the paper observed ~1.25M hits/s US, ~2M+ global).
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"powerroute/internal/geo"
	"powerroute/internal/timeseries"
	"powerroute/internal/units"
)

// Trace window defaults matching Fig 14.
var DefaultStart = time.Date(2008, 12, 19, 0, 0, 0, 0, time.UTC)

// Default trace geometry and scale (§4, Fig 14).
const (
	DefaultDays        = 24
	DefaultUSPeak      = 1.25e6 // hits/s
	DefaultGlobalPeak  = 2.05e6 // hits/s
	DefaultPublicShare = 0.72   // fraction of US traffic on the 9 public clusters
)

// Config parameterizes workload synthesis.
type Config struct {
	Seed        int64
	Start       time.Time     // default DefaultStart
	Days        int           // default DefaultDays
	USPeak      units.HitRate // default DefaultUSPeak
	GlobalPeak  units.HitRate // default DefaultGlobalPeak
	PublicShare float64       // default DefaultPublicShare
}

func (c Config) withDefaults() Config {
	if c.Start.IsZero() {
		c.Start = DefaultStart
	}
	if c.Days == 0 {
		c.Days = DefaultDays
	}
	if c.USPeak == 0 {
		c.USPeak = DefaultUSPeak
	}
	if c.GlobalPeak == 0 {
		c.GlobalPeak = DefaultGlobalPeak
	}
	if c.PublicShare == 0 {
		c.PublicShare = DefaultPublicShare
	}
	return c
}

// StateDemand is one state's public-cluster request stream at 5-minute
// resolution (hits/s destined to the nine public clusters).
type StateDemand struct {
	State geo.State
	Rate  []float64
}

// Trace is a synthesized workload.
type Trace struct {
	Config  Config
	Start   time.Time
	Samples int // number of 5-minute samples

	// States holds per-state public-cluster demand, sorted by state code.
	States []StateDemand

	global *timeseries.Series
	us     *timeseries.Series
	nine   *timeseries.Series
}

// SamplesPerHour is the number of 5-minute samples per hour.
const SamplesPerHour = 12

// SamplesPerDay is the number of 5-minute samples per day.
const SamplesPerDay = 24 * SamplesPerHour

// Generate synthesizes a workload trace deterministically from cfg.
func Generate(cfg Config) (*Trace, error) {
	cfg = cfg.withDefaults()
	if cfg.Days < 0 {
		return nil, fmt.Errorf("traffic: negative days %d", cfg.Days)
	}
	if cfg.PublicShare <= 0 || cfg.PublicShare > 1 {
		return nil, fmt.Errorf("traffic: public share %v outside (0,1]", cfg.PublicShare)
	}
	samples := cfg.Days * SamplesPerDay
	if samples == 0 {
		return nil, fmt.Errorf("traffic: empty trace")
	}
	start := cfg.Start.UTC().Truncate(timeseries.FiveMinute)

	states := geo.States()
	total := float64(geo.TotalUSPopulation())

	tr := &Trace{Config: cfg, Start: start, Samples: samples}
	tr.States = make([]StateDemand, len(states))

	// Per-state internet-penetration weight (fixed per seed): population
	// share modulated ±20%.
	wrng := rand.New(rand.NewSource(cfg.Seed ^ 0x7ea1_1001))
	weights := make([]float64, len(states))
	var wsum float64
	for i, s := range states {
		w := float64(s.Population) / total * (0.8 + 0.4*wrng.Float64())
		weights[i] = w
		wsum += w
	}
	for i := range weights {
		weights[i] /= wsum
	}

	// Generate per-state series with unit national scale; normalize after.
	usSeries := make([]float64, samples)
	for i, s := range states {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(i)*0x9e37 ^ 0x7ea1_2002))
		rates := make([]float64, samples)
		noise := 0.0
		const (
			noisePhi = 0.97
			noiseSig = 0.012
		)
		burst := 0.0 // flash-crowd multiplier excess, decays
		for t := 0; t < samples; t++ {
			at := start.Add(time.Duration(t) * timeseries.FiveMinute)
			frac := float64(t%SamplesPerHour) / SamplesPerHour
			localHour := float64(s.Zone.LocalHour(at.Hour())) + frac
			base := weights[i] *
				DiurnalLoad(localHour) *
				WeekLoad(at.Weekday()) *
				HolidayLoad(at)
			noise = noisePhi*noise + noiseSig*rng.NormFloat64()
			if rng.Float64() < 0.0004 { // rare flash crowd
				burst += 0.3 + 0.5*rng.Float64()
			}
			burst *= 0.97 // ~30-minute decay
			mult := (1 + noise) * (1 + burst)
			if mult < 0.2 {
				mult = 0.2
			}
			r := base * mult
			rates[t] = r
			usSeries[t] += r
		}
		tr.States[i] = StateDemand{State: s, Rate: rates}
	}

	// Normalize so the US total (public + private) peaks at USPeak; state
	// series carry only the public-cluster share of that.
	peak := 0.0
	for _, v := range usSeries {
		if v > peak {
			peak = v
		}
	}
	scale := float64(cfg.USPeak) / peak * cfg.PublicShare
	for i := range tr.States {
		for t := range tr.States[i].Rate {
			tr.States[i].Rate[t] *= scale
		}
	}
	nine := timeseries.New(start, timeseries.FiveMinute, samples)
	us := timeseries.New(start, timeseries.FiveMinute, samples)
	for t := range usSeries {
		nine.Values[t] = usSeries[t] * scale
		us.Values[t] = nine.Values[t] / cfg.PublicShare
	}

	// Non-US traffic: flatter profile (demand spread across world time
	// zones), normalized so the global series peaks near GlobalPeak.
	grng := rand.New(rand.NewSource(cfg.Seed ^ 0x7ea1_3003))
	global := timeseries.New(start, timeseries.FiveMinute, samples)
	gNoise := 0.0
	nonUSLevel := float64(cfg.GlobalPeak) - float64(cfg.USPeak)
	for t := 0; t < samples; t++ {
		at := start.Add(time.Duration(t) * timeseries.FiveMinute)
		utcHour := float64(at.Hour()) + float64(at.Minute())/60
		// Two broad activity waves (Europe, Asia) on top of a high floor.
		shape := 0.75 +
			0.15*math.Exp(-sqDist(utcHour, 14)/18) + // European afternoon
			0.10*math.Exp(-sqDist(utcHour, 6)/18) // Asian evening
		gNoise = 0.98*gNoise + 0.008*grng.NormFloat64()
		global.Values[t] = us.Values[t] + nonUSLevel*shape*(1+gNoise)*WeekLoad(at.Weekday())*HolidayLoad(at)
	}
	tr.global, tr.us, tr.nine = global, us, nine
	return tr, nil
}

// sqDist is the squared circular distance between two hours of day.
func sqDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 12 {
		d = 24 - d
	}
	return d * d
}

// MustGenerate is Generate for known-good configs; it panics on error.
func MustGenerate(cfg Config) *Trace {
	tr, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return tr
}

// Global returns the total worldwide hit rate series (Fig 14 top curve).
func (t *Trace) Global() *timeseries.Series { return t.global }

// US returns the total US hit rate series (public + private clusters).
func (t *Trace) US() *timeseries.Series { return t.us }

// NineRegion returns the 9-region public-cluster subset series, the
// workload the simulations route (Fig 14 bottom curve).
func (t *Trace) NineRegion() *timeseries.Series { return t.nine }

// TimeAt returns the instant of sample index i.
func (t *Trace) TimeAt(i int) time.Time {
	return t.Start.Add(time.Duration(i) * timeseries.FiveMinute)
}

// StateIndex returns the index of a state by postal code.
func (t *Trace) StateIndex(code string) (int, error) {
	for i := range t.States {
		if t.States[i].State.Code == code {
			return i, nil
		}
	}
	return 0, fmt.Errorf("traffic: unknown state %q", code)
}

// DiurnalLoad is the within-day demand shape by local hour (fractional
// hours supported): a deep overnight trough and a broad evening peak, the
// canonical CDN pattern behind Fig 14's daily oscillation.
func DiurnalLoad(localHour float64) float64 {
	h := math.Mod(localHour, 24)
	if h < 0 {
		h += 24
	}
	// Piecewise-smooth curve anchored at: 04:00 trough (0.35), 10:00
	// shoulder (0.82), 15:00 plateau (0.88), 20:30 peak (1.0), decline.
	anchors := []struct{ h, v float64 }{
		{0, 0.62}, {2, 0.45}, {4, 0.35}, {6, 0.40}, {8, 0.62},
		{10, 0.82}, {12, 0.86}, {15, 0.88}, {18, 0.95}, {20.5, 1.00},
		{22, 0.88}, {24, 0.62},
	}
	for i := 1; i < len(anchors); i++ {
		if h <= anchors[i].h {
			a, b := anchors[i-1], anchors[i]
			w := (h - a.h) / (b.h - a.h)
			// Cosine easing avoids visible kinks at anchor points.
			w = (1 - math.Cos(w*math.Pi)) / 2
			return a.v*(1-w) + b.v*w
		}
	}
	return anchors[len(anchors)-1].v
}

// WeekLoad is the day-of-week demand factor (weekends run slightly lower).
func WeekLoad(d time.Weekday) float64 {
	switch d {
	case time.Saturday:
		return 0.95
	case time.Sunday:
		return 0.93
	default:
		return 1.0
	}
}

// HolidayLoad is the turn-of-year dip: Akamai's trace window spans the
// 2008 holidays, whose depressed traffic is visible in Fig 14.
func HolidayLoad(at time.Time) float64 {
	type md struct {
		m time.Month
		d int
	}
	dips := map[md]float64{
		{time.December, 23}: 0.92,
		{time.December, 24}: 0.82,
		{time.December, 25}: 0.75,
		{time.December, 26}: 0.85,
		{time.December, 31}: 0.88,
		{time.January, 1}:   0.80,
		{time.January, 2}:   0.92,
	}
	if v, ok := dips[md{at.Month(), at.Day()}]; ok {
		return v
	}
	return 1.0
}
