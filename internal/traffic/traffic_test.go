package traffic

import (
	"math"
	"sync"
	"testing"
	"time"

	"powerroute/internal/stats"
)

var testTrace = sync.OnceValue(func() *Trace {
	return MustGenerate(Config{Seed: 11})
})

func TestGeometry(t *testing.T) {
	tr := testTrace()
	if tr.Samples != 24*SamplesPerDay {
		t.Fatalf("Samples = %d, want %d", tr.Samples, 24*SamplesPerDay)
	}
	if len(tr.States) != 51 {
		t.Fatalf("States = %d, want 51", len(tr.States))
	}
	for _, sd := range tr.States {
		if len(sd.Rate) != tr.Samples {
			t.Fatalf("state %s: %d samples", sd.State.Code, len(sd.Rate))
		}
		for k, v := range sd.Rate {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("state %s sample %d: rate %v", sd.State.Code, k, v)
			}
		}
	}
	if tr.Global().Len() != tr.Samples || tr.US().Len() != tr.Samples || tr.NineRegion().Len() != tr.Samples {
		t.Error("aggregate series lengths wrong")
	}
	if !tr.TimeAt(0).Equal(DefaultStart) {
		t.Errorf("TimeAt(0) = %v", tr.TimeAt(0))
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Days: -1}); err == nil {
		t.Error("negative days should fail")
	}
	if _, err := Generate(Config{PublicShare: 1.5}); err == nil {
		t.Error("public share > 1 should fail")
	}
	if _, err := Generate(Config{PublicShare: -0.2}); err == nil {
		t.Error("negative public share should fail")
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(Config{Seed: 5, Days: 3})
	b := MustGenerate(Config{Seed: 5, Days: 3})
	c := MustGenerate(Config{Seed: 6, Days: 3})
	for i := range a.States {
		for k := range a.States[i].Rate {
			if a.States[i].Rate[k] != b.States[i].Rate[k] {
				t.Fatal("same seed diverged")
			}
		}
	}
	diff := false
	for k := range a.US().Values {
		if a.US().Values[k] != c.US().Values[k] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds identical")
	}
}

// TestFig14Peaks: the US series peaks at the configured rate and the global
// series peaks above 2M hits/s.
func TestFig14Peaks(t *testing.T) {
	tr := testTrace()
	usPeak := stats.Summarize(tr.US().Values).Max
	if math.Abs(usPeak-DefaultUSPeak) > 1 {
		t.Errorf("US peak = %.0f, want %.0f (normalized exactly)", usPeak, DefaultUSPeak)
	}
	globalPeak := stats.Summarize(tr.Global().Values).Max
	if globalPeak < 1.8e6 || globalPeak > 2.4e6 {
		t.Errorf("global peak = %.2g, want ≈ 2M hits/s", globalPeak)
	}
	// Series ordering: global ≥ US ≥ nine-region at every sample.
	for k := range tr.US().Values {
		g, u, n := tr.Global().Values[k], tr.US().Values[k], tr.NineRegion().Values[k]
		if g < u || u < n {
			t.Fatalf("sample %d: ordering violated g=%.0f u=%.0f n=%.0f", k, g, u, n)
		}
	}
	// Nine-region subset carries the configured share of US traffic.
	ratio := stats.Mean(tr.NineRegion().Values) / stats.Mean(tr.US().Values)
	if math.Abs(ratio-DefaultPublicShare) > 0.01 {
		t.Errorf("nine-region share = %.3f, want %.2f", ratio, DefaultPublicShare)
	}
}

func TestDiurnalSwing(t *testing.T) {
	tr := testTrace()
	us := tr.US()
	// Compute mean by UTC hour; the US curve should trough in the US night
	// (07:00–10:00 UTC ≈ 2–5am ET) and peak in the US evening
	// (00:00–03:00 UTC ≈ 7–10pm ET).
	byHour := us.GroupByHourOfDay(0)
	trough := stats.Mean(byHour[9])
	peak := stats.Mean(byHour[1])
	if peak < 1.5*trough {
		t.Errorf("diurnal swing too small: peak %.0f vs trough %.0f", peak, trough)
	}
}

func TestGeographicMixFollowsPopulation(t *testing.T) {
	tr := testTrace()
	meanRate := func(code string) float64 {
		i, err := tr.StateIndex(code)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(tr.States[i].Rate)
	}
	ca, wy := meanRate("CA"), meanRate("WY")
	if ca < 20*wy {
		t.Errorf("California (%.0f) should dwarf Wyoming (%.0f)", ca, wy)
	}
	tx, vt := meanRate("TX"), meanRate("VT")
	if tx < 10*vt {
		t.Errorf("Texas (%.0f) should dwarf Vermont (%.0f)", tx, vt)
	}
}

func TestHolidayDip(t *testing.T) {
	tr := testTrace()
	us := tr.US()
	day := func(m time.Month, d int) float64 {
		from := time.Date(2008, m, d, 0, 0, 0, 0, time.UTC)
		if m == time.January {
			from = time.Date(2009, m, d, 0, 0, 0, 0, time.UTC)
		}
		return stats.Mean(us.Slice(from, from.AddDate(0, 0, 1)).Values)
	}
	christmas := day(time.December, 25)
	newYear := day(time.January, 1)
	ordinary := day(time.December, 22) // a Monday before the holidays
	if christmas >= 0.9*ordinary {
		t.Errorf("Christmas traffic %.0f not clearly below ordinary %.0f", christmas, ordinary)
	}
	if newYear >= 0.95*ordinary {
		t.Errorf("New Year traffic %.0f not below ordinary %.0f", newYear, ordinary)
	}
}

func TestStateIndexErrors(t *testing.T) {
	tr := testTrace()
	if _, err := tr.StateIndex("ZZ"); err == nil {
		t.Error("unknown state should fail")
	}
	i, err := tr.StateIndex("MA")
	if err != nil || tr.States[i].State.Name != "Massachusetts" {
		t.Errorf("StateIndex(MA) = %d, %v", i, err)
	}
}

func TestDiurnalLoadShape(t *testing.T) {
	// Trough at 4am, peak near 20:30, continuous everywhere.
	if DiurnalLoad(4) >= DiurnalLoad(12) || DiurnalLoad(12) >= DiurnalLoad(20.5) {
		t.Error("diurnal ordering wrong")
	}
	if math.Abs(DiurnalLoad(0)-DiurnalLoad(24)) > 1e-9 {
		t.Error("diurnal not periodic")
	}
	if math.Abs(DiurnalLoad(-4)-DiurnalLoad(20)) > 1e-9 {
		t.Error("negative hours not wrapped")
	}
	for h := 0.0; h <= 24; h += 0.05 {
		v := DiurnalLoad(h)
		if v < 0.3 || v > 1.01 {
			t.Fatalf("DiurnalLoad(%.2f) = %v outside [0.3, 1]", h, v)
		}
	}
	// Continuity: no jumps larger than a small bound between 5-min steps.
	prev := DiurnalLoad(0)
	for h := 1.0 / 12; h <= 24; h += 1.0 / 12 {
		v := DiurnalLoad(h)
		if math.Abs(v-prev) > 0.03 {
			t.Fatalf("diurnal jump at %.2f: %v -> %v", h, prev, v)
		}
		prev = v
	}
}

func TestWeekAndHolidayFactors(t *testing.T) {
	if WeekLoad(time.Saturday) >= WeekLoad(time.Wednesday) {
		t.Error("Saturday load should be below weekday")
	}
	if HolidayLoad(time.Date(2008, 12, 25, 12, 0, 0, 0, time.UTC)) >= 0.9 {
		t.Error("Christmas factor too high")
	}
	if HolidayLoad(time.Date(2008, 12, 10, 12, 0, 0, 0, time.UTC)) != 1.0 {
		t.Error("ordinary day factor should be 1")
	}
}

func TestLongRunWorkload(t *testing.T) {
	tr := testTrace()
	lr := tr.LongRun()
	if len(lr.States) != 51 {
		t.Fatalf("LongRun states = %d", len(lr.States))
	}
	// The profile preserves the total demand scale.
	var lrTotal, traceTotal float64
	for how := 0; how < 168; how++ {
		at := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(how) * time.Hour)
		lrTotal += lr.Total(at)
	}
	lrTotal /= 168
	traceTotal = stats.Mean(tr.NineRegion().Values)
	if math.Abs(lrTotal-traceTotal) > 0.15*traceTotal {
		t.Errorf("LongRun mean %.0f far from trace mean %.0f", lrTotal, traceTotal)
	}
	// Diurnal structure survives: Wednesday 4am ET well below Wednesday
	// 9pm ET for an Eastern state.
	i, _ := tr.StateIndex("NY")
	low, err := lr.Rate(i, time.Date(2006, 1, 4, 9, 0, 0, 0, time.UTC)) // 4am ET
	if err != nil {
		t.Fatal(err)
	}
	high, _ := lr.Rate(i, time.Date(2006, 1, 5, 2, 0, 0, 0, time.UTC)) // 9pm ET Wed
	if high < 1.4*low {
		t.Errorf("LongRun diurnal washed out: high %.0f vs low %.0f", high, low)
	}
	// Bounds checks.
	if _, err := lr.Rate(-1, time.Now()); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := lr.Rate(99, time.Now()); err == nil {
		t.Error("out-of-range index should fail")
	}
	// Rates fills and reuses buffers.
	buf := lr.Rates(time.Now(), nil)
	if len(buf) != 51 {
		t.Fatalf("Rates buffer len %d", len(buf))
	}
	again := lr.Rates(time.Now(), buf)
	if &again[0] != &buf[0] {
		t.Error("Rates should reuse correctly sized buffer")
	}
}

func TestHourOfWeek(t *testing.T) {
	// 2006-01-01 was a Sunday.
	if HourOfWeek(time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)) != 0 {
		t.Error("Sunday midnight should be hour 0")
	}
	if HourOfWeek(time.Date(2006, 1, 2, 5, 0, 0, 0, time.UTC)) != 29 {
		t.Error("Monday 5am should be hour 29")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate should panic on bad config")
		}
	}()
	MustGenerate(Config{Days: -3})
}
