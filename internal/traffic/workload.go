package traffic

import (
	"fmt"
	"time"

	"powerroute/internal/geo"
)

// LongRun is the synthetic long-horizon workload of §6.3: "In order to
// simulate longer periods we derived a synthetic workload from the 24-day
// Akamai workload (US traffic only). We calculated an average hit rate for
// every hub and client state pair. We produced a different average for each
// hour of the day and each day of the week."
//
// We average demand per state (allocation to hubs is the router's job) for
// each of the 168 hours of the week; evaluating the workload at any instant
// returns the hour-of-week average.
type LongRun struct {
	States  []geo.State
	profile [][]float64 // [state][168]
}

// HourOfWeek returns the hour-of-week index (0 = Sunday 00:00 UTC).
func HourOfWeek(at time.Time) int {
	return int(at.UTC().Weekday())*24 + at.UTC().Hour()
}

// LongRun derives the hour-of-week workload from the trace.
func (t *Trace) LongRun() *LongRun {
	lr := &LongRun{
		States:  make([]geo.State, len(t.States)),
		profile: make([][]float64, len(t.States)),
	}
	for i, sd := range t.States {
		lr.States[i] = sd.State
		sums := make([]float64, 168)
		counts := make([]int, 168)
		for k, v := range sd.Rate {
			how := HourOfWeek(t.TimeAt(k))
			sums[how] += v
			counts[how]++
		}
		prof := make([]float64, 168)
		for h := range prof {
			if counts[h] > 0 {
				prof[h] = sums[h] / float64(counts[h])
			}
		}
		lr.profile[i] = prof
	}
	return lr
}

// Rate returns state i's demand (hits/s, public clusters) at an instant.
func (w *LongRun) Rate(stateIdx int, at time.Time) (float64, error) {
	if stateIdx < 0 || stateIdx >= len(w.profile) {
		return 0, fmt.Errorf("traffic: state index %d out of range", stateIdx)
	}
	return w.profile[stateIdx][HourOfWeek(at)], nil
}

// Rates fills dst (len = number of states) with every state's demand at an
// instant; it allocates when dst is nil or wrongly sized.
func (w *LongRun) Rates(at time.Time, dst []float64) []float64 {
	if len(dst) != len(w.profile) {
		dst = make([]float64, len(w.profile))
	}
	how := HourOfWeek(at)
	for i := range w.profile {
		dst[i] = w.profile[i][how]
	}
	return dst
}

// Total returns the summed demand across states at an instant.
func (w *LongRun) Total(at time.Time) float64 {
	how := HourOfWeek(at)
	sum := 0.0
	for i := range w.profile {
		sum += w.profile[i][how]
	}
	return sum
}
