// Package batchspec parses the -batch-spec flag shared by powerrouted
// and powerroute-coord into a deferrable-batch scheduler configuration.
// Both binaries must agree on the parse: a coordinator merging shard
// checkpoints that carry batch queue sections restores them into its own
// joint-world engine, and sim.Restore requires the restoring scenario to
// have the batch class configured whenever the checkpoint does.
package batchspec

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"powerroute/internal/cluster"
	"powerroute/internal/market"
	"powerroute/internal/sched"
	"powerroute/internal/stats"
)

// Parse builds the deferrable-batch scheduler configuration from a
// -batch-spec value of the form w=<watts/server>,pct=<price quantile>
// [,guard=0|1][,migrate=0|1]. The spec fixes two per-cluster vectors
// against the generated world:
//
//   - serving capacity: w watts of batch headroom per server, so a
//     cluster's MaxBatchKW scales with its size exactly like its
//     interactive capacity does;
//   - price gate: the pct-th quantile of the cluster's hub real-time
//     price history, the paper's "run deferred work when power is cheap"
//     rule anchored to the same price distribution the replay will post.
//
// guard (default 1) keeps batch serving inside the month's established
// demand peak; migrate (default 1) lets price-blocked queues drain into
// routing-reachable siblings. Jobs themselves arrive over the ingest API,
// so the returned config has an empty Jobs list.
func Parse(spec string, fleet *cluster.Fleet, mkt *market.Dataset) (*sched.Config, error) {
	cfg := &sched.Config{PeakGuard: true, Migrate: true}
	var watts, pct float64
	var haveW, havePct bool
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("malformed -batch-spec field %q (want key=value)", field)
		}
		switch key {
		case "w":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("-batch-spec w: %v", err)
			}
			watts, haveW = v, true
		case "pct":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("-batch-spec pct: %v", err)
			}
			pct, havePct = v, true
		case "guard", "migrate":
			on, err := parseBool01(key, val)
			if err != nil {
				return nil, err
			}
			if key == "guard" {
				cfg.PeakGuard = on
			} else {
				cfg.Migrate = on
			}
		default:
			return nil, fmt.Errorf("unknown -batch-spec field %q (want w, pct, guard, migrate)", key)
		}
	}
	if !haveW || !havePct {
		return nil, fmt.Errorf("-batch-spec needs both w=<watts/server> and pct=<price quantile>")
	}
	if !(watts > 0) || math.IsInf(watts, 0) {
		return nil, fmt.Errorf("-batch-spec w=%g out of range (want a positive wattage)", watts)
	}
	if !(pct > 0 && pct < 1) {
		return nil, fmt.Errorf("-batch-spec pct=%g out of range (want a quantile in (0, 1))", pct)
	}

	nc := len(fleet.Clusters)
	cfg.MaxBatchKW = make([]float64, nc)
	cfg.Thresholds = make([]float64, nc)
	for c, cl := range fleet.Clusters {
		cfg.MaxBatchKW[c] = watts * float64(cl.Servers) / 1000
		rt, err := mkt.RT(cl.HubID)
		if err != nil {
			return nil, fmt.Errorf("-batch-spec: cluster %s: %v", cl.Code, err)
		}
		q, err := stats.Quantile(rt.Values, pct)
		if err != nil {
			return nil, fmt.Errorf("-batch-spec: cluster %s price gate: %v", cl.Code, err)
		}
		cfg.Thresholds[c] = q
	}
	return cfg, nil
}

func parseBool01(key, val string) (bool, error) {
	switch val {
	case "0":
		return false, nil
	case "1":
		return true, nil
	}
	return false, fmt.Errorf("-batch-spec %s=%q (want 0 or 1)", key, val)
}
