package energy

import (
	"errors"

	"powerroute/internal/units"
)

// This file reproduces §5.2, "Increase in Routing Energy": price-aware
// routing sends clients to more distant clusters, and the longer network
// paths represent additional work — but the paper's estimate shows it is
// negligible next to the endpoint energy. "The energy used by a packet to
// transit a router is many orders of magnitude below the energy expended at
// the endpoints."

// Per-packet router energies from the paper's Cisco GSR 12008 measurement
// (540k mid-sized packets/s at 770 W): the average energy a packet's
// transit accounts for, and the marginal (incremental) energy it adds given
// routers idle at ~97% of peak power.
const (
	// RouterEnergyPerPacket is the amortized energy per medium-sized
	// packet through a core router: ~2 mJ (§5.2).
	RouterEnergyPerPacket = 2e-3 // joules
	// MarginalRouterEnergyPerPacket is the incremental energy a packet
	// adds: ~50 µJ (§5.2).
	MarginalRouterEnergyPerPacket = 50e-6 // joules
	// EndpointEnergyPerRequest is Google's published ~1 kJ per search
	// (§5.2 cites it as the endpoint scale to compare against).
	EndpointEnergyPerRequest = 1e3 // joules
)

// RoutingEnergy estimates the network-side energy added by detouring
// requests through extra core-router hops.
type RoutingEnergy struct {
	// PacketsPerRequest is the packet count a request exchanges end to
	// end (HTTP request/response with handshake; tens for small objects).
	PacketsPerRequest float64
	// ExtraHops is the number of additional core routers the detoured
	// path traverses.
	ExtraHops float64
	// Marginal selects the incremental per-packet energy (routers are
	// already powered; §5.2 footnote 11) instead of the amortized one.
	Marginal bool
}

// PerRequest returns the added network energy for one request, in joules.
func (r RoutingEnergy) PerRequest() (float64, error) {
	if r.PacketsPerRequest < 0 || r.ExtraHops < 0 {
		return 0, errors.New("energy: negative routing-energy parameters")
	}
	per := RouterEnergyPerPacket
	if r.Marginal {
		per = MarginalRouterEnergyPerPacket
	}
	return r.PacketsPerRequest * r.ExtraHops * per, nil
}

// FractionOfEndpoint returns the added network energy as a fraction of the
// endpoint energy per request — the paper's yardstick for "insignificant".
func (r RoutingEnergy) FractionOfEndpoint(endpointJoules float64) (float64, error) {
	if endpointJoules <= 0 {
		return 0, errors.New("energy: endpoint energy must be positive")
	}
	e, err := r.PerRequest()
	if err != nil {
		return 0, err
	}
	return e / endpointJoules, nil
}

// Total returns the added network energy for a request volume, as a typed
// energy quantity (joules → watt-hours).
func (r RoutingEnergy) Total(requests float64) (units.Energy, error) {
	e, err := r.PerRequest()
	if err != nil {
		return 0, err
	}
	const joulesPerWh = 3600
	return units.Energy(e * requests / joulesPerWh), nil
}
