// Package energy implements the cluster power model of §5.1, adapted from
// Google's empirical data center study (Fan, Weber & Barroso 2007):
//
//	P_cluster(u) = F(n) + V(u, n) + ε
//	F(n) = n · (P_idle + (PUE − 1) · P_peak)
//	V(u, n) = n · (P_peak − P_idle) · (2u − u^r)
//
// where u ∈ [0,1] is average CPU utilization, n is the number of servers,
// r = 1.4 empirically (a linear model r = 1 is also reasonably accurate),
// and the PUE term — added by the paper — accounts for cooling and other
// facility overhead proportional to peak power.
//
// The critical quantity for price-aware routing is the energy elasticity
// P_cluster(0)/P_cluster(1): the fraction of power that cannot be routed
// away by moving load. The package ships the named parameter sets the
// paper simulates (Fig 15).
package energy

import (
	"errors"
	"fmt"

	"powerroute/internal/units"
)

// DefaultExponent is the empirically derived exponent r from the Google
// study; see §5.1.
const DefaultExponent = 1.4

// Model holds per-server power characteristics plus facility overhead.
// The zero value is not useful; use New or a preset.
type Model struct {
	PeakPower units.Power // P_peak: average per-server peak draw
	IdleFrac  float64     // P_idle / P_peak ∈ [0,1]
	PUE       float64     // power usage effectiveness ≥ 1
	Exponent  float64     // r in V(u,n); DefaultExponent if 0
	Epsilon   units.Power // empirical correction constant per server (ε)
}

// New validates and constructs a Model.
func New(peak units.Power, idleFrac, pue float64) (Model, error) {
	m := Model{PeakPower: peak, IdleFrac: idleFrac, PUE: pue, Exponent: DefaultExponent}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.PeakPower <= 0 {
		return errors.New("energy: peak power must be positive")
	}
	if m.IdleFrac < 0 || m.IdleFrac > 1 {
		return fmt.Errorf("energy: idle fraction %v outside [0,1]", m.IdleFrac)
	}
	if m.PUE < 1 {
		return fmt.Errorf("energy: PUE %v < 1", m.PUE)
	}
	if m.Exponent < 0 {
		return fmt.Errorf("energy: negative exponent %v", m.Exponent)
	}
	return nil
}

// exponent returns r with the default applied.
func (m Model) exponent() float64 {
	if m.Exponent == 0 {
		return DefaultExponent
	}
	return m.Exponent
}

// IdlePower returns P_idle for one server.
func (m Model) IdlePower() units.Power {
	return units.Power(float64(m.PeakPower) * m.IdleFrac)
}

// FixedPower returns F(n): the load-independent draw of n servers,
// including the facility overhead (PUE − 1)·P_peak per server.
func (m Model) FixedPower(n int) units.Power {
	perServer := float64(m.IdlePower()) + (m.PUE-1)*float64(m.PeakPower)
	return units.Power(float64(n) * perServer)
}

// VariablePower returns V(u, n): the utilization-dependent draw of n
// servers at average utilization u (clamped to [0,1]).
func (m Model) VariablePower(u float64, n int) units.Power {
	u = clamp01(u)
	r := m.exponent()
	span := float64(m.PeakPower) - float64(m.IdlePower())
	return units.Power(float64(n) * span * (2*u - pow(u, r)))
}

// ClusterPower returns P_cluster(u) for n servers: fixed plus variable plus
// the correction constant.
func (m Model) ClusterPower(u float64, n int) units.Power {
	return m.FixedPower(n) + m.VariablePower(u, n) + units.Power(float64(n)*float64(m.Epsilon))
}

// Elasticity returns P_cluster(0)/P_cluster(1), the paper's critical ratio
// (§5.1: "the value P_cluster(0)/P_cluster(1) is critical in determining
// the savings that can be achieved"). 0 is fully elastic (ideal), 1 is
// fully inelastic.
func (m Model) Elasticity() float64 {
	p1 := m.ClusterPower(1, 1)
	if p1 == 0 {
		return 1
	}
	return float64(m.ClusterPower(0, 1)) / float64(p1)
}

// Energy returns the energy consumed by n servers held at utilization u
// for the given number of hours.
func (m Model) Energy(u float64, n int, hours float64) units.Energy {
	return m.ClusterPower(u, n).OverHours(hours)
}

// Evaluator is a Model bound to a fixed server count with every
// load-independent term folded into constants, for hot loops that evaluate
// the same cluster millions of times. Each coefficient is the exact float64
// an unfused ClusterPower(u, n) computes on its way to the answer —
// fixed = F(n), varCoeff = n·(P_peak − P_idle), eps = n·ε — and Power
// combines them in the same association order, so Evaluator results are
// bit-identical to the Model methods.
type Evaluator struct {
	fixed    float64 // F(n)
	varCoeff float64 // n · (P_peak − P_idle)
	eps      float64 // n · ε
	r        float64 // exponent with the default applied
}

// Evaluator precomputes the per-cluster constants of ClusterPower for n
// servers.
func (m Model) Evaluator(n int) Evaluator {
	span := float64(m.PeakPower) - float64(m.IdlePower())
	return Evaluator{
		fixed:    float64(m.FixedPower(n)),
		varCoeff: float64(n) * span,
		eps:      float64(n) * float64(m.Epsilon),
		r:        m.exponent(),
	}
}

// Power returns P_cluster(u), bit-identical to Model.ClusterPower.
func (ev Evaluator) Power(u float64) units.Power {
	u = clamp01(u)
	return units.Power((ev.fixed + ev.varCoeff*(2*u-pow(u, ev.r))) + ev.eps)
}

// Energy returns the energy consumed over the given number of hours,
// bit-identical to Model.Energy.
func (ev Evaluator) Energy(u float64, hours float64) units.Energy {
	return ev.Power(u).OverHours(hours)
}

// String summarizes the model the way the paper labels Fig 15's x-axis:
// "(idle%, PUE)".
func (m Model) String() string {
	return fmt.Sprintf("(%.0f%% idle, %.1f PUE)", m.IdleFrac*100, m.PUE)
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// pow is math.Pow specialized with fast paths for the common exponents.
func pow(u, r float64) float64 {
	switch r {
	case 1:
		return u
	case 2:
		return u * u
	}
	return powImpl(u, r)
}
