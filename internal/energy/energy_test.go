package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if _, err := New(250, 0.6, 1.3); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := []Model{
		{PeakPower: 0, IdleFrac: 0.5, PUE: 1.5},
		{PeakPower: -10, IdleFrac: 0.5, PUE: 1.5},
		{PeakPower: 250, IdleFrac: -0.1, PUE: 1.5},
		{PeakPower: 250, IdleFrac: 1.1, PUE: 1.5},
		{PeakPower: 250, IdleFrac: 0.5, PUE: 0.9},
		{PeakPower: 250, IdleFrac: 0.5, PUE: 1.5, Exponent: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model %+v accepted", i, m)
		}
	}
}

func TestFixedAndVariablePower(t *testing.T) {
	// 65% idle, PUE 1.3, 250 W peak: F = 162.5 + 75 = 237.5 W per server.
	m := CuttingEdge
	if got := m.FixedPower(1).Watts(); math.Abs(got-237.5) > 1e-9 {
		t.Errorf("FixedPower(1) = %v, want 237.5", got)
	}
	if got := m.FixedPower(100).Watts(); math.Abs(got-23750) > 1e-6 {
		t.Errorf("FixedPower(100) = %v", got)
	}
	// V(0) = 0; V(1) = span·(2−1) = span.
	if got := m.VariablePower(0, 10).Watts(); got != 0 {
		t.Errorf("VariablePower(0) = %v", got)
	}
	span := 250.0 * 0.35
	if got := m.VariablePower(1, 1).Watts(); math.Abs(got-span) > 1e-9 {
		t.Errorf("VariablePower(1) = %v, want %v", got, span)
	}
	// The paper's Google-study curve: V(u)/span = 2u − u^1.4.
	u := 0.3
	want := span * (2*u - math.Pow(u, 1.4))
	if got := m.VariablePower(u, 1).Watts(); math.Abs(got-want) > 1e-9 {
		t.Errorf("VariablePower(0.3) = %v, want %v", got, want)
	}
}

func TestClusterPowerMonotoneInUtilization(t *testing.T) {
	for _, m := range Fig15Models() {
		prev := -1.0
		for u := 0.0; u <= 1.0001; u += 0.05 {
			p := m.ClusterPower(u, 100).Watts()
			if p < prev {
				t.Fatalf("%v: power not monotone at u=%.2f", m, u)
			}
			prev = p
		}
	}
}

func TestClusterPowerClampsUtilization(t *testing.T) {
	m := OptimisticFuture
	if m.ClusterPower(-0.5, 10) != m.ClusterPower(0, 10) {
		t.Error("u<0 not clamped")
	}
	if m.ClusterPower(1.5, 10) != m.ClusterPower(1, 10) {
		t.Error("u>1 not clamped")
	}
}

func TestElasticity(t *testing.T) {
	// Fully proportional: idle cluster draws nothing.
	if e := FullyProportional.Elasticity(); e != 0 {
		t.Errorf("FullyProportional elasticity = %v, want 0", e)
	}
	// The paper: "Present state-of-the-art systems fall somewhere in the
	// middle, with idle power being around 60% of peak" — elasticity grows
	// with idle fraction and PUE.
	prev := -1.0
	for _, m := range Fig15Models() {
		e := m.Elasticity()
		if e < 0 || e >= 1 {
			t.Errorf("%v: elasticity %v outside [0,1)", m, e)
		}
		if e < prev {
			t.Errorf("%v: Fig 15 ordering violated (elasticity %v < previous %v)", m, e, prev)
		}
		prev = e
	}
	// Without power management, nearly inelastic: ~95% + overhead.
	if e := NoPowerManagement.Elasticity(); e < 0.9 {
		t.Errorf("NoPowerManagement elasticity = %v, want ≥ 0.9", e)
	}
}

func TestLinearExponentOption(t *testing.T) {
	// §5.1: "A linear model (r = 1) was also found to be reasonably
	// accurate". With r=1, V(u) = span·u.
	m := Model{PeakPower: 250, IdleFrac: 0.5, PUE: 1.0, Exponent: 1}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.VariablePower(0.4, 1).Watts(); math.Abs(got-125*0.4) > 1e-9 {
		t.Errorf("linear V(0.4) = %v, want 50", got)
	}
}

func TestEpsilonCorrection(t *testing.T) {
	m := OptimisticFuture
	m.Epsilon = 5 // +5 W per server
	base := OptimisticFuture.ClusterPower(0.5, 10).Watts()
	if got := m.ClusterPower(0.5, 10).Watts(); math.Abs(got-(base+50)) > 1e-9 {
		t.Errorf("epsilon not applied: %v vs %v", got, base)
	}
}

func TestEnergyOverTime(t *testing.T) {
	m := FullyProportional
	// 1000 servers at full load for 1 hour: 1000·250 W·h = 250 kWh.
	e := m.Energy(1, 1000, 1)
	if math.Abs(e.KilowattHours()-250) > 1e-9 {
		t.Errorf("Energy = %v kWh, want 250", e.KilowattHours())
	}
}

func TestEnergyScalesWithServersProperty(t *testing.T) {
	m := CuttingEdge
	f := func(nSmall uint8, uRaw float64) bool {
		n := int(nSmall)%100 + 1
		u := math.Abs(math.Mod(uRaw, 1))
		p1 := m.ClusterPower(u, n).Watts()
		p2 := m.ClusterPower(u, 2*n).Watts()
		return math.Abs(p2-2*p1) < 1e-6*(1+p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVariablePowerBoundsProperty(t *testing.T) {
	// 2u − u^r stays within [0, 1] for u ∈ [0,1], r ≥ 1: V never exceeds
	// the idle-to-peak span.
	for _, m := range Fig15Models() {
		f := func(uRaw float64) bool {
			u := math.Abs(math.Mod(uRaw, 1))
			v := m.VariablePower(u, 1).Watts()
			span := float64(m.PeakPower) * (1 - m.IdleFrac)
			return v >= 0 && v <= span+1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestStringFormat(t *testing.T) {
	if s := CuttingEdge.String(); s != "(65% idle, 1.3 PUE)" {
		t.Errorf("String = %q", s)
	}
	if s := OptimisticFuture.String(); s != "(0% idle, 1.1 PUE)" {
		t.Errorf("String = %q", s)
	}
}

func TestFig15ModelCount(t *testing.T) {
	ms := Fig15Models()
	if len(ms) != 7 {
		t.Fatalf("Fig15Models = %d entries, want 7", len(ms))
	}
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			t.Errorf("%v invalid: %v", m, err)
		}
	}
}

// TestFig1Estimates reproduces Figure 1's table within loose bounds.
func TestFig1Estimates(t *testing.T) {
	want := map[string]struct{ lo, hi float64 }{ // annual $ at $60/MWh
		"eBay":      {2.5e6, 5.5e6}, // paper ~$3.7M
		"Akamai":    {7e6, 14e6},    // ~$10M
		"Rackspace": {8e6, 17e6},    // ~$12M
		"Microsoft": {30e6, 55e6},   // >$36M
		"Google":    {30e6, 50e6},   // >$38M
	}
	for _, f := range Fig1Fleets() {
		b, ok := want[f.Name]
		if !ok {
			t.Errorf("unexpected fleet %q", f.Name)
			continue
		}
		cost := f.AnnualCost(60).Dollars()
		if cost < b.lo || cost > b.hi {
			t.Errorf("%s: annual cost $%.1fM outside [%.1fM, %.1fM]",
				f.Name, cost/1e6, b.lo/1e6, b.hi/1e6)
		}
	}
	// Google's energy: paper says > 6.3e5 MWh/year.
	for _, f := range Fig1Fleets() {
		if f.Name == "Google" {
			if e := f.AnnualEnergy().MegawattHours(); e < 5.5e5 || e > 8e5 {
				t.Errorf("Google annual energy = %.2g MWh, want ≈ 6.3e5", e)
			}
		}
	}
}

func TestIdlePower(t *testing.T) {
	m := Model{PeakPower: 200, IdleFrac: 0.6, PUE: 1.0}
	if got := m.IdlePower().Watts(); got != 120 {
		t.Errorf("IdlePower = %v, want 120", got)
	}
}
