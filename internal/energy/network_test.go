package energy

import (
	"math"
	"testing"
)

func TestRoutingEnergyPerRequest(t *testing.T) {
	// 20 packets through 3 extra core routers, amortized: 20·3·2mJ = 120 mJ.
	r := RoutingEnergy{PacketsPerRequest: 20, ExtraHops: 3}
	e, err := r.PerRequest()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-0.12) > 1e-12 {
		t.Errorf("PerRequest = %v J, want 0.12", e)
	}
	// Marginal: 20·3·50µJ = 3 mJ.
	r.Marginal = true
	e, _ = r.PerRequest()
	if math.Abs(e-0.003) > 1e-12 {
		t.Errorf("marginal PerRequest = %v J, want 0.003", e)
	}
}

// TestPaperNegligibilityClaim reproduces §5.2's argument: even amortized,
// the added routing energy is a tiny fraction of the ~1 kJ endpoint cost.
func TestPaperNegligibilityClaim(t *testing.T) {
	r := RoutingEnergy{PacketsPerRequest: 50, ExtraHops: 5}
	frac, err := r.FractionOfEndpoint(EndpointEnergyPerRequest)
	if err != nil {
		t.Fatal(err)
	}
	// 50·5·2mJ = 0.5 J over 1 kJ = 0.05%.
	if frac > 0.001 {
		t.Errorf("amortized fraction = %v, want < 0.1%% (paper: orders of magnitude below)", frac)
	}
	r.Marginal = true
	frac, _ = r.FractionOfEndpoint(EndpointEnergyPerRequest)
	if frac > 1e-4 {
		t.Errorf("marginal fraction = %v, want < 0.01%%", frac)
	}
}

func TestRoutingEnergyTotal(t *testing.T) {
	// A billion detoured requests at 0.12 J each: 1.2e8 J ≈ 33.3 kWh —
	// noise against the megawatt-hours the clusters consume.
	r := RoutingEnergy{PacketsPerRequest: 20, ExtraHops: 3}
	e, err := r.Total(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.KilowattHours()-33.333) > 0.01 {
		t.Errorf("Total = %v kWh, want ≈ 33.3", e.KilowattHours())
	}
}

func TestRoutingEnergyErrors(t *testing.T) {
	if _, err := (RoutingEnergy{PacketsPerRequest: -1}).PerRequest(); err == nil {
		t.Error("negative packets should fail")
	}
	if _, err := (RoutingEnergy{ExtraHops: -1}).PerRequest(); err == nil {
		t.Error("negative hops should fail")
	}
	r := RoutingEnergy{PacketsPerRequest: 1, ExtraHops: 1}
	if _, err := r.FractionOfEndpoint(0); err == nil {
		t.Error("zero endpoint energy should fail")
	}
	if _, err := (RoutingEnergy{PacketsPerRequest: -1}).Total(10); err == nil {
		t.Error("Total with bad params should fail")
	}
	if _, err := (RoutingEnergy{PacketsPerRequest: -1}).FractionOfEndpoint(1); err == nil {
		t.Error("FractionOfEndpoint with bad params should fail")
	}
}
