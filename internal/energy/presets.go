package energy

import (
	"math"

	"powerroute/internal/units"
)

func powImpl(u, r float64) float64 { return math.Pow(u, r) }

// DefaultPeakPower is the average peak server power the paper measured on
// actual Akamai servers (§2.1): 250 W. Only the idle/peak ratio and PUE
// matter for percentage savings (§5.1), so all presets share it.
const DefaultPeakPower = 250 * units.Watt

// Named parameter sets from §6.1 ("Some energy parameters that we used")
// and Fig 15's x-axis.
var (
	// FullyProportional is the ideal: zero idle power and no facility
	// overhead (0% idle, 1.0 PUE).
	FullyProportional = Model{PeakPower: DefaultPeakPower, IdleFrac: 0, PUE: 1.0, Exponent: DefaultExponent}

	// OptimisticFuture is the paper's "optimistic future" setting
	// (0% idle, 1.1 PUE).
	OptimisticFuture = Model{PeakPower: DefaultPeakPower, IdleFrac: 0, PUE: 1.1, Exponent: DefaultExponent}

	// CuttingEdge approximates Google's published numbers ("cutting-
	// edge/google": ~60–65% idle, 1.3 PUE). Fig 15 uses (65%, 1.3).
	CuttingEdge = Model{PeakPower: DefaultPeakPower, IdleFrac: 0.65, PUE: 1.3, Exponent: DefaultExponent}

	// StateOfTheArt is the paper's "state-of-the-art" (65% idle, 1.7 PUE).
	StateOfTheArt = Model{PeakPower: DefaultPeakPower, IdleFrac: 0.65, PUE: 1.7, Exponent: DefaultExponent}

	// NoPowerManagement models an off-the-shelf server without power
	// management: ~95% of peak when idle, PUE 2.0 (§5.1, §6.1).
	NoPowerManagement = Model{PeakPower: DefaultPeakPower, IdleFrac: 0.95, PUE: 2.0, Exponent: DefaultExponent}
)

// Fig15Models returns the seven (idle, PUE) combinations on Fig 15's
// x-axis, in the paper's order.
func Fig15Models() []Model {
	mk := func(idle, pue float64) Model {
		return Model{PeakPower: DefaultPeakPower, IdleFrac: idle, PUE: pue, Exponent: DefaultExponent}
	}
	return []Model{
		mk(0, 1.0),
		mk(0, 1.1),
		mk(0.25, 1.3),
		mk(0.33, 1.3),
		mk(0.33, 1.7),
		mk(0.65, 1.3),
		mk(0.65, 2.0),
	}
}

// ServerFleet describes a company-scale deployment for the Fig 1 style
// back-of-the-envelope estimate.
type ServerFleet struct {
	Name        string
	Servers     int
	PeakPower   units.Power // per server
	IdleFrac    float64
	PUE         float64
	Utilization float64 // average CPU utilization (paper assumes ~30%)
}

// AnnualEnergy reproduces the paper's footnote-3 estimate:
//
//	E ≈ n·(P_idle + (P_peak−P_idle)·U + (PUE−1)·P_peak)·365·24
func (f ServerFleet) AnnualEnergy() units.Energy {
	idle := float64(f.PeakPower) * f.IdleFrac
	perServer := idle + (float64(f.PeakPower)-idle)*f.Utilization + (f.PUE-1)*float64(f.PeakPower)
	return units.Power(float64(f.Servers) * perServer).OverHours(365 * 24)
}

// AnnualCost prices the fleet's annual energy at the given wholesale rate
// (the paper uses $60/MWh).
func (f ServerFleet) AnnualCost(rate units.Price) units.Money {
	return f.AnnualEnergy().Cost(rate)
}

// Fig1Fleets returns the company estimates of Fig 1 with the assumptions
// documented in §2.1: 250 W peak servers at 30% utilization and PUE 2.0 for
// everyone except Google (140 W, PUE 1.3).
func Fig1Fleets() []ServerFleet {
	std := func(name string, servers int) ServerFleet {
		return ServerFleet{Name: name, Servers: servers, PeakPower: 250, IdleFrac: 0.70, PUE: 2.0, Utilization: 0.30}
	}
	google := ServerFleet{Name: "Google", Servers: 500_000, PeakPower: 140, IdleFrac: 0.70, PUE: 1.3, Utilization: 0.30}
	return []ServerFleet{
		std("eBay", 16_000),
		std("Akamai", 40_000),
		std("Rackspace", 50_000),
		std("Microsoft", 200_000),
		google,
	}
}
