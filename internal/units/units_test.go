package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestPowerConversions(t *testing.T) {
	p := 2_500_000 * Watt
	if got := p.Megawatts(); got != 2.5 {
		t.Errorf("Megawatts() = %v, want 2.5", got)
	}
	if got := p.Kilowatts(); got != 2500 {
		t.Errorf("Kilowatts() = %v, want 2500", got)
	}
	if got := p.Watts(); got != 2.5e6 {
		t.Errorf("Watts() = %v, want 2.5e6", got)
	}
}

func TestPowerOverHours(t *testing.T) {
	// 250 W for 24 hours is 6 kWh.
	e := (250 * Watt).OverHours(24)
	if !almostEqual(e.KilowattHours(), 6, 1e-9) {
		t.Errorf("OverHours = %v kWh, want 6", e.KilowattHours())
	}
	// Zero hours consumes nothing.
	if e := (1 * Megawatt).OverHours(0); e != 0 {
		t.Errorf("OverHours(0) = %v, want 0", e)
	}
}

func TestEnergyCost(t *testing.T) {
	// 1 MWh at $60/MWh costs $60 (the paper's reference rate, Fig 1).
	c := (1 * MegawattHour).Cost(60)
	if !almostEqual(c.Dollars(), 60, 1e-9) {
		t.Errorf("Cost = %v, want $60", c)
	}
	// Negative prices yield negative cost (being paid to consume, §2.2).
	c = (2 * MegawattHour).Cost(-10)
	if !almostEqual(c.Dollars(), -20, 1e-9) {
		t.Errorf("Cost at negative price = %v, want -$20", c)
	}
}

func TestGoogleScaleAnnualCost(t *testing.T) {
	// Sanity-check the paper's Figure 1 arithmetic: ~6.3e5 MWh at $60/MWh
	// is about $38M/year.
	annual := Energy(6.3e5 * 1e6).Cost(60)
	if annual.Dollars() < 36e6 || annual.Dollars() > 40e6 {
		t.Errorf("Google-scale annual cost = %v, want ≈ $38M", annual)
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{(1500 * Watt).String(), "1.500 kW"},
		{(2 * Megawatt).String(), "2.000 MW"},
		{(40 * Watt).String(), "40.0 W"},
		{(1 * MegawattHour).String(), "1.000 MWh"},
		{(2 * KilowattHour).String(), "2.000 kWh"},
		{(30 * WattHour).String(), "30.0 Wh"},
		{Price(77.9).String(), "$77.90/MWh"},
		{Money(38e6).String(), "$38.00M"},
		{Money(4.5e9).String(), "$4.50B"},
		{Money(1500).String(), "$1.5K"},
		{Money(12.34).String(), "$12.34"},
		{Distance(1400).String(), "1400 km"},
		{HitRate(2.1e6).String(), "2.10M hits/s"},
		{HitRate(3200).String(), "3.2K hits/s"},
		{HitRate(12).String(), "12.0 hits/s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

// Property: cost scales linearly in both energy and price.
func TestCostLinearityProperty(t *testing.T) {
	f := func(mwh, price float64) bool {
		if math.IsNaN(mwh) || math.IsInf(mwh, 0) || math.IsNaN(price) || math.IsInf(price, 0) {
			return true
		}
		// Keep magnitudes in a numerically comfortable range.
		mwh = math.Mod(mwh, 1e6)
		price = math.Mod(price, 1e4)
		e := Energy(mwh * 1e6)
		c1 := e.Cost(Price(price)).Dollars()
		c2 := (2 * e).Cost(Price(price)).Dollars()
		c3 := e.Cost(Price(2 * price)).Dollars()
		tol := 1e-6 * (1 + math.Abs(c1))
		return almostEqual(c2, 2*c1, tol) && almostEqual(c3, 2*c1, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: OverHours is additive in time.
func TestOverHoursAdditiveProperty(t *testing.T) {
	f := func(w, h1, h2 float64) bool {
		if math.IsNaN(w) || math.IsInf(w, 0) || math.IsNaN(h1) || math.IsInf(h1, 0) || math.IsNaN(h2) || math.IsInf(h2, 0) {
			return true
		}
		w = math.Mod(w, 1e9)
		h1 = math.Abs(math.Mod(h1, 1e4))
		h2 = math.Abs(math.Mod(h2, 1e4))
		p := Power(w)
		lhs := p.OverHours(h1 + h2).WattHours()
		rhs := p.OverHours(h1).WattHours() + p.OverHours(h2).WattHours()
		tol := 1e-6 * (1 + math.Abs(lhs))
		return almostEqual(lhs, rhs, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
