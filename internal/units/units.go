// Package units provides typed physical and monetary quantities used
// throughout the simulator: electrical power and energy, wholesale
// electricity prices, money, and geographic distance.
//
// The types are thin wrappers over float64. They exist to make interfaces
// self-documenting and to prevent unit confusion (for example multiplying a
// price in $/MWh by an energy in Wh without converting). Arithmetic that
// crosses units goes through named methods such as Energy.Cost.
package units

import "fmt"

// Power is an electrical power draw in watts.
type Power float64

// Common power scales.
const (
	Watt     Power = 1
	Kilowatt Power = 1e3
	Megawatt Power = 1e6
)

// Watts returns p as a plain float64 number of watts.
func (p Power) Watts() float64 { return float64(p) }

// Kilowatts returns p in kW.
func (p Power) Kilowatts() float64 { return float64(p) / 1e3 }

// Megawatts returns p in MW.
func (p Power) Megawatts() float64 { return float64(p) / 1e6 }

// OverHours returns the energy consumed by drawing p for the given number
// of hours.
func (p Power) OverHours(hours float64) Energy {
	return Energy(float64(p) * hours)
}

// String formats the power with an adaptive SI prefix.
func (p Power) String() string {
	switch {
	case p >= Megawatt || p <= -Megawatt:
		return fmt.Sprintf("%.3f MW", p.Megawatts())
	case p >= Kilowatt || p <= -Kilowatt:
		return fmt.Sprintf("%.3f kW", p.Kilowatts())
	default:
		return fmt.Sprintf("%.1f W", p.Watts())
	}
}

// Energy is an amount of electrical energy in watt-hours.
type Energy float64

// Common energy scales.
const (
	WattHour     Energy = 1
	KilowattHour Energy = 1e3
	MegawattHour Energy = 1e6
)

// WattHours returns e as a plain float64 number of watt-hours.
func (e Energy) WattHours() float64 { return float64(e) }

// KilowattHours returns e in kWh.
func (e Energy) KilowattHours() float64 { return float64(e) / 1e3 }

// MegawattHours returns e in MWh.
func (e Energy) MegawattHours() float64 { return float64(e) / 1e6 }

// Cost returns the dollar cost of buying e at price p.
func (e Energy) Cost(p Price) Money {
	return Money(e.MegawattHours() * float64(p))
}

// String formats the energy with an adaptive SI prefix.
func (e Energy) String() string {
	switch {
	case e >= MegawattHour || e <= -MegawattHour:
		return fmt.Sprintf("%.3f MWh", e.MegawattHours())
	case e >= KilowattHour || e <= -KilowattHour:
		return fmt.Sprintf("%.3f kWh", e.KilowattHours())
	default:
		return fmt.Sprintf("%.1f Wh", e.WattHours())
	}
}

// Price is a wholesale electricity price in dollars per megawatt-hour,
// the unit used by US RTO locational marginal prices. Negative prices are
// legal: they occur for brief periods in real markets (paper §2.2).
type Price float64

// PerMWh returns the price as a plain float64 in $/MWh.
func (p Price) PerMWh() float64 { return float64(p) }

// String formats the price as dollars per MWh.
func (p Price) String() string { return fmt.Sprintf("$%.2f/MWh", float64(p)) }

// Money is an amount of US dollars.
type Money float64

// Dollars returns m as a plain float64 number of dollars.
func (m Money) Dollars() float64 { return float64(m) }

// String formats the amount with thousands grouping for readability.
func (m Money) String() string {
	switch {
	case m >= 1e9 || m <= -1e9:
		return fmt.Sprintf("$%.2fB", float64(m)/1e9)
	case m >= 1e6 || m <= -1e6:
		return fmt.Sprintf("$%.2fM", float64(m)/1e6)
	case m >= 1e3 || m <= -1e3:
		return fmt.Sprintf("$%.1fK", float64(m)/1e3)
	default:
		return fmt.Sprintf("$%.2f", float64(m))
	}
}

// Distance is a geographic distance in kilometers.
type Distance float64

// Km returns d as a plain float64 number of kilometers.
func (d Distance) Km() float64 { return float64(d) }

// String formats the distance in kilometers.
func (d Distance) String() string { return fmt.Sprintf("%.0f km", float64(d)) }

// HitRate is a request arrival rate in hits per second, the load unit used
// in the Akamai trace (paper §4).
type HitRate float64

// PerSecond returns r as a plain float64 in hits/s.
func (r HitRate) PerSecond() float64 { return float64(r) }

// String formats the rate with an adaptive scale.
func (r HitRate) String() string {
	switch {
	case r >= 1e6 || r <= -1e6:
		return fmt.Sprintf("%.2fM hits/s", float64(r)/1e6)
	case r >= 1e3 || r <= -1e3:
		return fmt.Sprintf("%.1fK hits/s", float64(r)/1e3)
	default:
		return fmt.Sprintf("%.1f hits/s", float64(r))
	}
}
