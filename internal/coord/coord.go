// Package coord is the multi-region shard coordinator: the fleet-wide
// face of N powerrouted instances, one per electricity market region
// (a routing-closed shard of the joint world, see sim.PartitionByRouting).
//
// Ingest fans out. A price post is forwarded verbatim to every shard —
// each shard ignores hubs it hosts no cluster on — and a demand post
// (JSON or binary batch) is split by state ownership, each shard
// receiving exactly its own states' columns. Reads fan in: the
// coordinator pulls every shard's durable checkpoint, merges them with
// sim.MergeCheckpoints under the parent world hash, restores the merged
// state into a joint-world engine, and serves the fleet-wide /v1/status
// and /metrics from that snapshot — the same payloads a single
// powerrouted serving the whole world would produce, bit for bit.
//
// When the joint world runs a coordinated 95/5 burst gate (a soft-capped
// scenario with a BurstGate), the coordinator is also the burst-token
// lease broker: before each demand fan-out it resolves the fleet-wide
// gate bit from the full demand row — the one comparison no single shard
// can make — and posts the lease window to every shard's POST /v1/leases,
// so the shards' burst ledgers replay exactly the joint engine's.
//
// Cross-shard spill (Config.Spill) is the opposite trade: when a region's
// demand exceeds its serving capacity, the coordinator's demand splitter
// reroutes the overflow to the cheapest reachable sibling region with
// open capacity before splitting the row, metered at the clusters that
// actually serve it. Spill changes assignments, so a spilling coordinator
// is deliberately not byte-comparable with a joint engine run.
//
//	POST /v1/prices      forward a price vector or batch to every shard
//	POST /v1/demand      split demand by state ownership and fan out
//	GET  /v1/status      fleet-wide status from the last merged snapshot (?refresh=1 re-pulls)
//	GET  /v1/checkpoint  pull, merge, and stream the joint-world checkpoint
//	GET  /v1/world       the joint world description
//	GET  /metrics        fleet-wide Prometheus metrics
//	GET  /healthz        liveness probe
package coord

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/geo"
	"powerroute/internal/routing"
	"powerroute/internal/server"
	"powerroute/internal/sim"
)

// ErrShardUnreachable tags fan-out and pull failures caused by a shard
// that cannot be reached at all (daemon down, connection refused), as
// opposed to a shard that answered with an application error.
var ErrShardUnreachable = errors.New("coord: shard unreachable")

// Config assembles a Coordinator.
type Config struct {
	// Scenario is the joint world the shards partition. The coordinator
	// never steps it; it is the restore target for merged checkpoints and
	// the source of the parent world hash shards must belong to.
	Scenario sim.Scenario
	// ShardURLs are the powerrouted base URLs, one per shard.
	ShardURLs []string
	// Client overrides the HTTP client used to reach shards.
	Client *http.Client

	// Spill enables cross-shard demand spill: a region whose demand row
	// exceeds its serving capacity has the overflow rerouted to the
	// cheapest reachable sibling region with open capacity before the
	// row is split, so it is metered at the clusters that serve it.
	// Opt-in because spilled assignments diverge from a joint engine's.
	Spill bool
	// SpillRadiusKm bounds which sibling regions overflow may reach
	// (minimum pairwise cluster distance). 0 means any sibling.
	SpillRadiusKm float64
}

// shardInfo is one shard's discovered ownership.
type shardInfo struct {
	url      string
	clusters []int // fleet cluster indices, ascending
	states   []int // fleet state indices, ascending
}

// Coordinator fans ingest out to shards and merges their state back into
// fleet-wide views.
type Coordinator struct {
	sc        sim.Scenario
	fleet     *cluster.Fleet
	worldHash string
	client    *http.Client
	shards    []shardInfo

	// Burst-token broker state, armed when the joint world runs a
	// coordinated burst gate: room is the fleet's soft-capped total (a
	// run constant summed in fleet cluster order, exactly like the joint
	// engine's), the input to every fleet-wide gate decision.
	broker bool
	room   float64

	// Cross-shard spill state (Config.Spill): per-region serving
	// capacity, the reachability mask, and the latest decision price per
	// hub (tracked from the price feed to rank candidate receivers).
	spill    bool
	shardCap []float64
	spillOK  [][]bool
	spillMu  sync.Mutex
	hubPrice map[string]float64 // guarded_by: spillMu
	spilled  float64            // guarded_by: spillMu

	// Cached merged snapshot, refreshed periodically (Run) or on demand.
	mu   sync.Mutex
	snap *sim.Snapshot // guarded_by: mu

	reqMu    sync.Mutex
	requests map[string]uint64 // guarded_by: reqMu
}

// New builds a coordinator for the joint world and discovers each shard's
// cluster/state ownership from its /v1/world. The shards must partition
// the world exactly: disjoint cluster and state sets whose union is the
// whole fleet, same policy, same step.
func New(ctx context.Context, cfg Config) (*Coordinator, error) {
	if len(cfg.ShardURLs) == 0 {
		return nil, errors.New("coord: no shard URLs")
	}
	hash, err := cfg.Scenario.WorldHash()
	if err != nil {
		return nil, fmt.Errorf("coord: joint world: %w", err)
	}
	// Fail fast on a shard-count/partition mismatch: the routing partition
	// is a pure function of the joint world, so a wrong URL count can be
	// rejected before any shard is contacted.
	if sharder, ok := cfg.Scenario.Policy.(routing.Sharder); ok {
		if p, err := sim.PartitionByRouting(sharder, cfg.Scenario.Fleet); err == nil && p.Shards() != len(cfg.ShardURLs) {
			return nil, fmt.Errorf("coord: %d shard URLs for a world that splits into %d market regions at this policy's reach",
				len(cfg.ShardURLs), p.Shards())
		}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	co := &Coordinator{
		sc:        cfg.Scenario,
		fleet:     cfg.Scenario.Fleet,
		worldHash: hash,
		client:    client,
		spill:     cfg.Spill,
		requests:  make(map[string]uint64),
	}
	if cfg.Scenario.BurstGate != nil {
		room, err := sim.BurstRoomTotal(cfg.Scenario.Fleet, cfg.Scenario.SoftCaps)
		if err != nil {
			return nil, fmt.Errorf("coord: burst broker: %w", err)
		}
		co.broker = true
		co.room = room
	}
	if err := co.discover(ctx, cfg.ShardURLs); err != nil {
		return nil, err
	}
	if co.spill {
		co.initSpill(cfg.SpillRadiusKm)
	}
	return co, nil
}

// initSpill precomputes each region's serving capacity and which
// siblings its overflow may reach (minimum pairwise cluster distance
// within radiusKm; 0 = any sibling).
//
//lint:held spillMu construction-time init, before the Coordinator is shared
func (co *Coordinator) initSpill(radiusKm float64) {
	n := len(co.shards)
	co.shardCap = make([]float64, n)
	for i, sh := range co.shards {
		for _, c := range sh.clusters {
			co.shardCap[i] += float64(co.fleet.Clusters[c].Capacity)
		}
	}
	co.spillOK = make([][]bool, n)
	co.hubPrice = make(map[string]float64)
	for i := range co.spillOK {
		co.spillOK[i] = make([]bool, n)
		for j := range co.spillOK[i] {
			if i == j {
				continue
			}
			if radiusKm <= 0 {
				co.spillOK[i][j] = true
				continue
			}
			best := math.Inf(1)
			for _, a := range co.shards[i].clusters {
				for _, b := range co.shards[j].clusters {
					if d := geo.Distance(co.fleet.Clusters[a].Location, co.fleet.Clusters[b].Location).Km(); d < best {
						best = d
					}
				}
			}
			co.spillOK[i][j] = best <= radiusKm
		}
	}
}

// shardWorld is the slice of a shard's /v1/world the coordinator needs.
type shardWorld struct {
	Policy      string  `json:"policy"`
	StepSeconds float64 `json:"step_seconds"`
	LeaseBroker bool    `json:"lease_broker"`
	Clusters    []struct {
		Code string `json:"code"`
	} `json:"clusters"`
	States []string `json:"states"`
}

func (co *Coordinator) discover(ctx context.Context, urls []string) error {
	clusterIdx := make(map[string]int, len(co.fleet.Clusters))
	for c, cl := range co.fleet.Clusters {
		clusterIdx[cl.Code] = c
	}
	stateIdx := make(map[string]int, len(co.fleet.States))
	for s, st := range co.fleet.States {
		stateIdx[st.Code] = s
	}
	clusterOwner := make([]int, len(co.fleet.Clusters))
	stateOwner := make([]int, len(co.fleet.States))
	for i := range clusterOwner {
		clusterOwner[i] = -1
	}
	for i := range stateOwner {
		stateOwner[i] = -1
	}

	co.shards = make([]shardInfo, len(urls))
	for i, url := range urls {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/world", nil)
		if err != nil {
			return fmt.Errorf("coord: shard %s: %w", url, err)
		}
		resp, err := co.client.Do(req)
		if err != nil {
			return fmt.Errorf("coord: shard %s: %w", url, err)
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return fmt.Errorf("coord: shard %s world: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
		}
		var world shardWorld
		err = json.NewDecoder(resp.Body).Decode(&world)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("coord: shard %s world: %w", url, err)
		}
		if world.Policy != co.sc.Policy.Name() {
			return fmt.Errorf("coord: shard %s runs policy %q, joint world runs %q", url, world.Policy, co.sc.Policy.Name())
		}
		if got := time.Duration(world.StepSeconds * float64(time.Second)); got != co.sc.Step {
			return fmt.Errorf("coord: shard %s steps %v, joint world steps %v", url, got, co.sc.Step)
		}
		if co.broker && !world.LeaseBroker {
			return fmt.Errorf("coord: the joint world runs a coordinated burst gate but shard %s accepts no burst-token leases (start it with matching -burst-hubs and -shard-count flags)", url)
		}
		info := shardInfo{url: url}
		for _, cl := range world.Clusters {
			c, ok := clusterIdx[cl.Code]
			if !ok {
				return fmt.Errorf("coord: shard %s serves unknown cluster %q", url, cl.Code)
			}
			if prev := clusterOwner[c]; prev != -1 {
				return fmt.Errorf("coord: cluster %q claimed by shards %s and %s", cl.Code, urls[prev], url)
			}
			clusterOwner[c] = i
			info.clusters = append(info.clusters, c)
		}
		for _, code := range world.States {
			s, ok := stateIdx[code]
			if !ok {
				return fmt.Errorf("coord: shard %s serves unknown state %q", url, code)
			}
			if prev := stateOwner[s]; prev != -1 {
				return fmt.Errorf("coord: state %q claimed by shards %s and %s", code, urls[prev], url)
			}
			stateOwner[s] = i
			info.states = append(info.states, s)
		}
		co.shards[i] = info
	}
	for c, owner := range clusterOwner {
		if owner == -1 {
			return fmt.Errorf("coord: no shard serves cluster %q", co.fleet.Clusters[c].Code)
		}
	}
	for s, owner := range stateOwner {
		if owner == -1 {
			return fmt.Errorf("coord: no shard serves state %q", co.fleet.States[s].Code)
		}
	}
	return nil
}

// Shards returns the discovered shard URLs in configuration order.
func (co *Coordinator) Shards() []string {
	urls := make([]string, len(co.shards))
	for i, sh := range co.shards {
		urls[i] = sh.url
	}
	return urls
}

// WorldHash returns the joint world's hash.
func (co *Coordinator) WorldHash() string { return co.worldHash }

// Handler returns the coordinator's HTTP routes.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/prices", co.counted("prices", co.handlePrices))
	mux.HandleFunc("POST /v1/demand", co.counted("demand", co.handleDemand))
	mux.HandleFunc("GET /v1/status", co.counted("status", co.handleStatus))
	mux.HandleFunc("GET /v1/checkpoint", co.counted("checkpoint", co.handleCheckpoint))
	mux.HandleFunc("GET /v1/world", co.counted("world", co.handleWorld))
	mux.HandleFunc("GET /metrics", co.counted("metrics", co.handleMetrics))
	mux.HandleFunc("GET /healthz", co.counted("healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	return mux
}

// Run refreshes the merged snapshot every `every` until ctx is cancelled,
// reporting pull/merge failures to errw. With every <= 0 it returns
// immediately (status is then refreshed only on demand).
func (co *Coordinator) Run(ctx context.Context, every time.Duration, errw io.Writer) {
	if every <= 0 {
		return
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			// A cursor mismatch here just means the fleet is mid-ingest;
			// the next tick will land on a settled instant. Only real
			// failures are worth the operator's attention.
			if _, err := co.refresh(ctx); err != nil && !errors.Is(err, sim.ErrShardCursorMismatch) {
				fmt.Fprintln(errw, "coord: refresh:", err)
			}
		}
	}
}

func (co *Coordinator) counted(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		co.reqMu.Lock()
		co.requests[name]++
		co.reqMu.Unlock()
		h(w, r)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// fanOut posts one body per shard concurrently and collects the failures.
// A nil body skips that shard. Shards commit independently: when some
// fail, the others have still ingested — exactly like a mid-batch error
// on a single daemon — and the caller reports which shards diverged so
// the feeder can resync them.
func (co *Coordinator) fanOut(ctx context.Context, path, contentType string, bodies [][]byte) error {
	var wg sync.WaitGroup
	errs := make([]error, len(co.shards))
	for i, sh := range co.shards {
		if bodies[i] == nil {
			continue
		}
		wg.Add(1)
		go func(i int, url string, body []byte) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+path, bytes.NewReader(body))
			if err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", url, err)
				return
			}
			req.Header.Set("Content-Type", contentType)
			resp, err := co.client.Do(req)
			if err != nil {
				errs[i] = fmt.Errorf("%w %s: %v", ErrShardUnreachable, url, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode/100 != 2 {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				errs[i] = fmt.Errorf("shard %s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
		}(i, sh.url, bodies[i])
	}
	wg.Wait()
	return errors.Join(errs...)
}

// handlePrices forwards the price post — JSON or binary batch — verbatim
// to every shard. Each shard overlays the hubs it hosts and ignores the
// rest, so no column surgery is needed on the price path.
func (co *Coordinator) handlePrices(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading price post: %v", err)
		return
	}
	if co.spill {
		co.trackPrices(r.Header.Get("Content-Type"), body)
	}
	bodies := make([][]byte, len(co.shards))
	for i := range bodies {
		bodies[i] = body
	}
	if err := co.fanOut(r.Context(), "/v1/prices", r.Header.Get("Content-Type"), bodies); err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"shards": len(co.shards)})
}

// postLeases replays the fleet-wide burst gate bits for steps
// [from, from+len(gates)) to every shard's lease store. It must land
// before the demand that consumes the window — a shard engine refuses to
// route a soft-capped step it holds no lease bit for.
func (co *Coordinator) postLeases(ctx context.Context, from int, gates []bool) error {
	body, err := json.Marshal(struct {
		From  int    `json:"from"`
		Gates []bool `json:"gates"`
	}{From: from, Gates: gates})
	if err != nil {
		return err
	}
	bodies := make([][]byte, len(co.shards))
	for i := range bodies {
		bodies[i] = body
	}
	return co.fanOut(ctx, "/v1/leases", "application/json", bodies)
}

// leaseStep maps a demand timestamp onto the joint step grid; the broker
// needs the absolute step number to address the lease window.
func (co *Coordinator) leaseStep(at time.Time) (int, error) {
	if at.IsZero() {
		return 0, errors.New("a burst-brokered fleet needs an explicit demand timestamp to address the lease window")
	}
	off := at.Sub(co.sc.Start)
	if off < 0 || off%co.sc.Step != 0 {
		return 0, fmt.Errorf("demand at %v is not on the joint world's %v grid from %v", at, co.sc.Step, co.sc.Start)
	}
	return int(off / co.sc.Step), nil
}

// demandPost mirrors the shard daemon's JSON demand body.
type demandPost struct {
	At    time.Time `json:"at"`
	Rates []float64 `json:"rates"`
}

func (co *Coordinator) handleDemand(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == server.ContentTypeDemandBatch {
		co.handleDemandBatch(w, r)
		return
	}
	var post demandPost
	if err := json.NewDecoder(r.Body).Decode(&post); err != nil {
		httpError(w, http.StatusBadRequest, "decoding demand post: %v", err)
		return
	}
	if len(post.Rates) != len(co.fleet.States) {
		httpError(w, http.StatusBadRequest, "%d rates for %d states", len(post.Rates), len(co.fleet.States))
		return
	}
	if co.broker {
		step, err := co.leaseStep(post.At)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		gate := sim.BurstGateOpen(sim.SumDemand(post.Rates), co.room)
		if err := co.postLeases(r.Context(), step, []bool{gate}); err != nil {
			httpError(w, http.StatusBadGateway, "%v", err)
			return
		}
	}
	if co.spill {
		co.spillRow(post.Rates)
	}
	bodies := make([][]byte, len(co.shards))
	for i, sh := range co.shards {
		sub := demandPost{At: post.At, Rates: make([]float64, len(sh.states))}
		for j, s := range sh.states {
			sub.Rates[j] = post.Rates[s]
		}
		b, err := json.Marshal(sub)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		bodies[i] = b
	}
	if err := co.fanOut(r.Context(), "/v1/demand", "application/json", bodies); err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"routed": 1, "shards": len(co.shards)})
}

// handleDemandBatch splits a binary demand batch by state ownership: each
// shard receives a batch with the same horizon but only its own states'
// columns, posted concurrently.
func (co *Coordinator) handleDemandBatch(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReaderSize(r.Body, 1<<16)
	h, err := server.ParseBatchHeader(br)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if h.Kind != "demand" {
		httpError(w, http.StatusBadRequest, "batch kind %q on /v1/demand", h.Kind)
		return
	}
	ns := len(co.fleet.States)
	if h.Cols != ns {
		httpError(w, http.StatusBadRequest, "batch has %d state columns, fleet has %d", h.Cols, ns)
		return
	}
	var gates []bool
	baseStep := 0
	if co.broker {
		if h.Step != co.sc.Step {
			httpError(w, http.StatusBadRequest, "batch steps %v, joint world steps %v", h.Step, co.sc.Step)
			return
		}
		var err error
		if baseStep, err = co.leaseStep(h.Start); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		gates = make([]bool, h.Rows)
	}
	bufs := make([]*bytes.Buffer, len(co.shards))
	subRows := make([][]float64, len(co.shards))
	for i, sh := range co.shards {
		bufs[i] = &bytes.Buffer{}
		if err := server.WriteBatchHeader(bufs[i], "demand", h.Start, h.Step, h.Rows, len(sh.states), nil); err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		subRows[i] = make([]float64, len(sh.states))
	}
	row := make([]float64, ns)
	rowBytes := make([]byte, 8*ns)
	scratch := make([]byte, 0, 8*ns)
	for i := 0; i < h.Rows; i++ {
		if _, err := io.ReadFull(br, rowBytes); err != nil {
			httpError(w, http.StatusBadRequest, "demand row %d: batch body truncated: %v", i, err)
			return
		}
		if err := server.DecodeRow(rowBytes, row); err != nil {
			httpError(w, http.StatusBadRequest, "demand row %d: %v", i, err)
			return
		}
		if gates != nil {
			gates[i] = sim.BurstGateOpen(sim.SumDemand(row), co.room)
		}
		if co.spill {
			co.spillRow(row)
		}
		for j, sh := range co.shards {
			sub := subRows[j]
			for k, s := range sh.states {
				sub[k] = row[s]
			}
			bufs[j].Write(server.AppendRow(scratch[:0], sub))
		}
	}
	if gates != nil {
		if err := co.postLeases(r.Context(), baseStep, gates); err != nil {
			httpError(w, http.StatusBadGateway, "%v", err)
			return
		}
	}
	bodies := make([][]byte, len(co.shards))
	for i, b := range bufs {
		bodies[i] = b.Bytes()
	}
	if err := co.fanOut(r.Context(), "/v1/demand", server.ContentTypeDemandBatch, bodies); err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"routed": h.Rows, "shards": len(co.shards)})
}

// --- cross-shard spill ------------------------------------------------------

// spillRow reroutes overflow between regions in place: any region whose
// share of the row exceeds its serving capacity sheds the excess to the
// cheapest reachable sibling with open capacity (then the next cheapest,
// and so on). The fleet-wide total is preserved — only the split moves —
// and the receiving regions meter the spilled demand on their own
// clusters. Returns the rerouted volume in hits/s.
func (co *Coordinator) spillRow(row []float64) float64 {
	totals := make([]float64, len(co.shards))
	for i, sh := range co.shards {
		for _, s := range sh.states {
			totals[i] += row[s]
		}
	}
	prices := co.regionPrices()
	order := make([]int, len(co.shards))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return prices[order[a]] < prices[order[b]] })

	var moved float64
	for i := range co.shards {
		over := totals[i] - co.shardCap[i]
		if over <= 0 {
			continue
		}
		var out float64
		for _, j := range order {
			if j == i || !co.spillOK[i][j] {
				continue
			}
			open := co.shardCap[j] - totals[j]
			if open <= 0 {
				continue
			}
			take := math.Min(over-out, open)
			if take <= 0 {
				break
			}
			addProportional(row, co.shards[j].states, take)
			totals[j] += take
			out += take
		}
		if out > 0 {
			// Shed the rerouted volume from the sender uniformly across
			// its states, keeping its internal mix intact.
			scale := (totals[i] - out) / totals[i]
			for _, s := range co.shards[i].states {
				row[s] *= scale
			}
			totals[i] -= out
			moved += out
		}
	}
	if moved > 0 {
		co.spillMu.Lock()
		co.spilled += moved
		co.spillMu.Unlock()
	}
	return moved
}

// addProportional distributes amount over the given state columns in
// proportion to their current values (evenly when all are zero), so the
// receiving region's internal mix is preserved.
func addProportional(row []float64, states []int, amount float64) {
	var sum float64
	for _, s := range states {
		sum += row[s]
	}
	if sum <= 0 {
		per := amount / float64(len(states))
		for _, s := range states {
			row[s] += per
		}
		return
	}
	for _, s := range states {
		row[s] += amount * row[s] / sum
	}
}

// regionPrices ranks regions by the mean of their clusters' latest hub
// prices; a region with no price seen yet ranks last (+Inf), so overflow
// never lands on a region whose cost is unknown while a priced one is
// open.
func (co *Coordinator) regionPrices() []float64 {
	co.spillMu.Lock()
	defer co.spillMu.Unlock()
	prices := make([]float64, len(co.shards))
	for i, sh := range co.shards {
		var sum float64
		n := 0
		for _, c := range sh.clusters {
			if v, ok := co.hubPrice[co.fleet.Clusters[c].HubID]; ok {
				sum += v
				n++
			}
		}
		if n == 0 {
			prices[i] = math.Inf(1)
		} else {
			prices[i] = sum / float64(n)
		}
	}
	return prices
}

// trackPrices keeps the latest per-hub price from a forwarded price post
// (the last row of a batch, or the vector of a JSON post) for spill
// ranking. Malformed posts are ignored here — the shards reject them.
func (co *Coordinator) trackPrices(contentType string, body []byte) {
	latest := make(map[string]float64)
	switch contentType {
	case server.ContentTypePricesBatch:
		br := bufio.NewReader(bytes.NewReader(body))
		h, err := server.ParseBatchHeader(br)
		if err != nil || h.Kind != "prices" || h.Rows == 0 || len(h.Hubs) != h.Cols {
			return
		}
		rowBytes := make([]byte, 8*h.Cols)
		row := make([]float64, h.Cols)
		for i := 0; i < h.Rows; i++ {
			if _, err := io.ReadFull(br, rowBytes); err != nil {
				return
			}
		}
		if err := server.DecodeRow(rowBytes, row); err != nil {
			return
		}
		for j, hub := range h.Hubs {
			latest[hub] = row[j]
		}
	default:
		var post struct {
			Prices map[string]float64 `json:"prices"`
		}
		if err := json.Unmarshal(body, &post); err != nil {
			return
		}
		latest = post.Prices
	}
	co.spillMu.Lock()
	for hub, v := range latest {
		co.hubPrice[hub] = v
	}
	co.spillMu.Unlock()
}

// pullMerge fetches every shard's checkpoint and merges them into the
// joint world's.
func (co *Coordinator) pullMerge(ctx context.Context) (*sim.Checkpoint, error) {
	parts := make([]*sim.Checkpoint, len(co.shards))
	errs := make([]error, len(co.shards))
	var wg sync.WaitGroup
	for i, sh := range co.shards {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/checkpoint", nil)
			if err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", url, err)
				return
			}
			resp, err := co.client.Do(req)
			if err != nil {
				errs[i] = fmt.Errorf("%w %s: %v", ErrShardUnreachable, url, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				errs[i] = fmt.Errorf("shard %s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
				return
			}
			cp, err := sim.DecodeCheckpoint(resp.Body)
			if err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", url, err)
				return
			}
			parts[i] = cp
		}(i, sh.url)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	merged, err := sim.MergeCheckpoints(parts)
	if err != nil {
		return nil, err
	}
	if merged.WorldHash != co.worldHash {
		return nil, fmt.Errorf("coord: shards belong to world %s, coordinator runs %s (flag mismatch?)", merged.WorldHash, co.worldHash)
	}
	return merged, nil
}

// pullMergeSettled is pullMerge with a few retries when the shards are
// mid-ingest: concurrent demand fan-out commits shard batches at slightly
// different instants, so two pulls can catch them one batch apart. That
// state is transient (sim.ErrShardCursorMismatch), not a topology error —
// re-pull instead of failing the read.
func (co *Coordinator) pullMergeSettled(ctx context.Context) (*sim.Checkpoint, error) {
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Duration(attempt) * 50 * time.Millisecond):
			}
		}
		var merged *sim.Checkpoint
		if merged, err = co.pullMerge(ctx); err == nil {
			return merged, nil
		}
		if !errors.Is(err, sim.ErrShardCursorMismatch) {
			return nil, err
		}
	}
	return nil, err
}

// refresh pulls, merges, restores into a joint engine, and caches the
// fleet-wide snapshot.
func (co *Coordinator) refresh(ctx context.Context) (*sim.Snapshot, error) {
	merged, err := co.pullMergeSettled(ctx)
	if err != nil {
		return nil, err
	}
	eng, err := sim.Restore(co.sc, merged)
	if err != nil {
		return nil, err
	}
	snap := eng.Snapshot()
	co.mu.Lock()
	co.snap = snap
	co.mu.Unlock()
	return snap, nil
}

// cachedSnapshot returns the last merged snapshot, refreshing first when
// none exists yet or the caller forces it.
func (co *Coordinator) cachedSnapshot(ctx context.Context, force bool) (*sim.Snapshot, error) {
	co.mu.Lock()
	snap := co.snap
	co.mu.Unlock()
	if snap != nil && !force {
		return snap, nil
	}
	return co.refresh(ctx)
}

// degradedSnapshot falls back to the last merged snapshot when a fresh
// pull fails (a shard down mid-replay, say): reads stay up, marked with
// an X-Coord-Degraded header naming the failure. Only when no merge ever
// succeeded is there nothing to serve.
func (co *Coordinator) degradedSnapshot(w http.ResponseWriter, err error) *sim.Snapshot {
	co.mu.Lock()
	snap := co.snap
	co.mu.Unlock()
	if snap == nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return nil
	}
	w.Header().Set("X-Coord-Degraded", err.Error())
	return snap
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap, err := co.cachedSnapshot(r.Context(), r.URL.Query().Get("refresh") == "1")
	if err != nil {
		if snap = co.degradedSnapshot(w, err); snap == nil {
			return
		}
	}
	writeJSON(w, server.StatusPayload(co.fleet, snap, 0))
}

func (co *Coordinator) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	merged, err := co.pullMergeSettled(r.Context())
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	var buf bytes.Buffer
	if err := merged.Encode(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding merged checkpoint: %v", err)
		return
	}
	w.Header().Set("Content-Type", server.ContentTypeCheckpoint)
	_, _ = w.Write(buf.Bytes())
}

func (co *Coordinator) handleWorld(w http.ResponseWriter, r *http.Request) {
	type clusterInfo struct {
		Code     string  `json:"code"`
		Hub      string  `json:"hub"`
		Servers  int     `json:"servers"`
		Capacity float64 `json:"capacity_hits_per_s"`
		Shard    string  `json:"shard"`
	}
	owner := make(map[int]string)
	for _, sh := range co.shards {
		for _, c := range sh.clusters {
			owner[c] = sh.url
		}
	}
	clusters := make([]clusterInfo, len(co.fleet.Clusters))
	for c, cl := range co.fleet.Clusters {
		clusters[c] = clusterInfo{Code: cl.Code, Hub: cl.HubID, Servers: cl.Servers,
			Capacity: float64(cl.Capacity), Shard: owner[c]}
	}
	states := make([]string, len(co.fleet.States))
	for i, st := range co.fleet.States {
		states[i] = st.Code
	}
	writeJSON(w, map[string]any{
		"policy":                 co.sc.Policy.Name(),
		"start":                  co.sc.Start,
		"step_seconds":           co.sc.Step.Seconds(),
		"reaction_delay_seconds": co.sc.ReactionDelay.Seconds(),
		"world_hash":             co.worldHash,
		"shards":                 co.Shards(),
		"lease_broker":           co.broker,
		"spill":                  co.spill,
		"clusters":               clusters,
		"states":                 states,
	})
}

func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap, err := co.cachedSnapshot(r.Context(), false)
	if err != nil {
		if snap = co.degradedSnapshot(w, err); snap == nil {
			return
		}
	}
	co.reqMu.Lock()
	requests := make(map[string]uint64, len(co.requests))
	for name, n := range co.requests {
		requests[name] = n
	}
	co.reqMu.Unlock()
	w.Header().Set("Content-Type", server.MetricsContentType)
	text := server.MetricsText(co.fleet, snap, 0, requests)
	if co.spill {
		co.spillMu.Lock()
		spilled := co.spilled
		co.spillMu.Unlock()
		text += fmt.Sprintf("# HELP powerroute_coord_spilled_hits_total Demand rerouted across regions by the spill splitter.\n# TYPE powerroute_coord_spilled_hits_total counter\npowerroute_coord_spilled_hits_total %g\n", spilled)
	}
	_, _ = w.Write([]byte(text))
}
