package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/routing"
	"powerroute/internal/server"
	"powerroute/internal/sim"
)

// testWorld builds the small deterministic world (1-month market, 7-day
// trace) with an optimizer reach of 1000 km, which splits the fleet into
// two market regions (California vs everything east).
func testWorld(t testing.TB) (*core.System, sim.Scenario) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{Seed: 42, MarketMonths: 1, TraceDays: 7})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := routing.NewPriceOptimizer(sys.Fleet, 1000, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	return sys, sim.Scenario{
		Fleet:         sys.Fleet,
		Policy:        opt,
		Energy:        energy.OptimisticFuture,
		Market:        sys.Market,
		Demand:        sys.LongRun,
		Start:         sys.Market.Start,
		Steps:         sys.Market.Hours,
		Step:          time.Hour,
		ReactionDelay: sim.DefaultReactionDelay,
	}
}

// newShards splits sc into its routing components and serves each from a
// real server.Server behind httptest.
func newShards(t testing.TB, sc sim.Scenario) []string {
	t.Helper()
	p, err := sim.PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := sc.Shard(p)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, len(subs))
	for i, sub := range subs {
		eng, err := sim.NewEngine(sub)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

func newCoordinator(t testing.TB, sc sim.Scenario, urls []string) (*Coordinator, *httptest.Server) {
	t.Helper()
	co, err := New(context.Background(), Config{Scenario: sc, ShardURLs: urls})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(ts.Close)
	return co, ts
}

func postBody(t *testing.T, url, contentType string, body []byte, wantCode int) []byte {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: got %d want %d: %s", url, resp.StatusCode, wantCode, out)
	}
	return out
}

func get(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: got %d want %d: %s", url, resp.StatusCode, wantCode, out)
	}
	return out
}

// feedWorld streams `hours` of generated prices and long-run demand into
// baseURL as binary batches, exactly as the replay load generator does.
func feedWorld(t *testing.T, sys *core.System, sc sim.Scenario, baseURL string, hours int) {
	t.Helper()
	hubs := sys.Market.Hubs()
	hubIDs := make([]string, len(hubs))
	for i, h := range hubs {
		hubIDs[i] = h.ID
	}
	var pb bytes.Buffer
	if err := server.WriteBatchHeader(&pb, "prices", sc.Start, sc.Step, hours, len(hubIDs), hubIDs); err != nil {
		t.Fatal(err)
	}
	row := make([]float64, len(hubIDs))
	for i := 0; i < hours; i++ {
		at := sc.Start.Add(time.Duration(i) * sc.Step)
		for j, h := range hubs {
			rt, err := sys.Market.RT(h.ID)
			if err != nil {
				t.Fatal(err)
			}
			v, err := rt.At(at)
			if err != nil {
				t.Fatal(err)
			}
			row[j] = v
		}
		pb.Write(server.AppendRow(nil, row))
	}
	postBody(t, baseURL+"/v1/prices", server.ContentTypePricesBatch, pb.Bytes(), http.StatusOK)

	ns := len(sc.Fleet.States)
	var db bytes.Buffer
	if err := server.WriteBatchHeader(&db, "demand", sc.Start, sc.Step, hours, ns, nil); err != nil {
		t.Fatal(err)
	}
	var demand []float64
	for i := 0; i < hours; i++ {
		demand = sc.Demand.Rates(sc.Start.Add(time.Duration(i)*sc.Step), demand)
		db.Write(server.AppendRow(nil, demand))
	}
	postBody(t, baseURL+"/v1/demand", server.ContentTypeDemandBatch, db.Bytes(), http.StatusOK)
}

// TestCoordinatorMatchesSingleInstance feeds the same price and demand
// batches through the coordinator (fanning out to two real shard daemons)
// and through one single-instance daemon serving the unsplit world, then
// requires the fleet-wide /v1/status to match bit for bit (modulo the
// price_feed_entries bookkeeping, which is per-process).
func TestCoordinatorMatchesSingleInstance(t *testing.T) {
	sys, sc := testWorld(t)
	const hours = 14 * 24

	// Single instance.
	singleEng, err := sim.NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	singleSrv, err := server.New(server.Config{Engine: singleEng})
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(singleSrv.Handler())
	defer single.Close()
	feedWorld(t, sys, sc, single.URL, hours)

	// Coordinator over two shards.
	_, scForShards := testWorld(t)
	urls := newShards(t, scForShards)
	if len(urls) != 2 {
		t.Fatalf("expected 2 shards, got %d", len(urls))
	}
	_, coordTS := newCoordinator(t, sc, urls)
	feedWorld(t, sys, sc, coordTS.URL, hours)

	normalize := func(raw []byte) map[string]any {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "price_feed_entries")
		return m
	}
	want := normalize(get(t, single.URL+"/v1/status", http.StatusOK))
	got := normalize(get(t, coordTS.URL+"/v1/status?refresh=1", http.StatusOK))
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("coordinator status differs from single instance:\ncoord  %s\nsingle %s", gotJSON, wantJSON)
	}

	// The merged checkpoint restores into the joint world at the same
	// cursor.
	raw := get(t, coordTS.URL+"/v1/checkpoint", http.StatusOK)
	cp, err := sim.DecodeCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if cp.StepsRun != hours {
		t.Fatalf("merged checkpoint at step %d, want %d", cp.StepsRun, hours)
	}
	if _, err := sim.Restore(sc, cp); err != nil {
		t.Fatalf("merged checkpoint does not restore into the joint world: %v", err)
	}

	// Metrics render from the merged snapshot.
	metrics := string(get(t, coordTS.URL+"/metrics", http.StatusOK))
	if !bytes.Contains([]byte(metrics), []byte("powerrouted_steps_total")) {
		t.Fatalf("metrics missing steps counter:\n%s", metrics)
	}

	// JSON single-step demand also fans out (after one more price post the
	// shards can cover the next hour).
	at := sc.Start.Add(time.Duration(hours) * sc.Step)
	var demand []float64
	demand = sc.Demand.Rates(at, demand)
	post := map[string]any{"at": at, "rates": demand}
	body, _ := json.Marshal(post)
	postBody(t, coordTS.URL+"/v1/demand", "application/json", body, http.StatusOK)
}

// burstWorld assembles the burst-exact clique world (2 regions at
// 1000 km) and its joint scenario, the configuration under which sharded
// replays stay byte-identical even while soft-cap bursts fire.
func burstWorld(t testing.TB) (*core.System, *core.BurstWorld, sim.Scenario) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{Seed: 42, MarketMonths: 1, TraceDays: 7})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := core.ParseBurstHubs("NP15+SP15,NYC+DOM")
	if err != nil {
		t.Fatal(err)
	}
	bw, err := sys.BurstWorld(pairs, 1000, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sys.BurstScenario(bw, 1000, routing.DefaultPriceThreshold, sim.DefaultReactionDelay)
	if err != nil {
		t.Fatal(err)
	}
	return sys, bw, sc
}

// newBurstShards carves the burst scenario into lease-replaying shard
// daemons: each sub-engine reads its gate bits from a LeaseStore the
// daemon exposes on POST /v1/leases.
func newBurstShards(t testing.TB, sc sim.Scenario) []string {
	t.Helper()
	p, err := sim.PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := sc.Shard(p)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, len(subs))
	for i, sub := range subs {
		store := &sim.LeaseStore{}
		sub.BurstGate = store
		eng, err := sim.NewEngine(sub)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{Engine: eng, Leases: store})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// TestCoordinatorBurstLeaseBroker is the fleet-exact burst guarantee at
// the coordinator layer: an active-burst horizon fanned out through the
// coordinator (which brokers the lease windows) must produce the same
// fleet-wide status, byte for byte, as one daemon serving the unsplit
// world under SelfGate — with burst tokens genuinely granted and spent.
func TestCoordinatorBurstLeaseBroker(t *testing.T) {
	sys, _, jointSc := burstWorld(t)
	hours := jointSc.Steps - 1

	jointSc.BurstGate = sim.SelfGate{}
	singleEng, err := sim.NewEngine(jointSc)
	if err != nil {
		t.Fatal(err)
	}
	singleSrv, err := server.New(server.Config{Engine: singleEng})
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(singleSrv.Handler())
	defer single.Close()
	feedWorld(t, sys, jointSc, single.URL, hours)

	_, _, shardSc := burstWorld(t)
	urls := newBurstShards(t, shardSc)
	if len(urls) != 2 {
		t.Fatalf("expected 2 shards, got %d", len(urls))
	}
	_, _, coordSc := burstWorld(t)
	coordSc.BurstGate = sim.SelfGate{}
	_, coordTS := newCoordinator(t, coordSc, urls)
	feedWorld(t, sys, coordSc, coordTS.URL, hours)

	// The JSON single-step path brokers too: one more interval, posted as
	// a JSON demand vector, must carry its lease bit ahead of the demand.
	at := jointSc.Start.Add(time.Duration(hours) * jointSc.Step)
	var row []float64
	row = jointSc.Demand.Rates(at, row)
	body, _ := json.Marshal(map[string]any{"at": at, "rates": row})
	postBody(t, single.URL+"/v1/demand", "application/json", body, http.StatusOK)
	postBody(t, coordTS.URL+"/v1/demand", "application/json", body, http.StatusOK)

	normalize := func(raw []byte) ([]byte, map[string]any) {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "price_feed_entries")
		out, _ := json.Marshal(m)
		return out, m
	}
	wantJSON, want := normalize(get(t, single.URL+"/v1/status", http.StatusOK))
	gotJSON, _ := normalize(get(t, coordTS.URL+"/v1/status?refresh=1", http.StatusOK))
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("brokered coordinator status differs from the unsplit daemon:\ncoord  %s\nsingle %s", gotJSON, wantJSON)
	}
	leases, ok := want["burst_leases"].(map[string]any)
	if !ok {
		t.Fatalf("status carries no burst_leases section: %s", wantJSON)
	}
	if used, _ := leases["tokens_used"].(float64); used <= 0 {
		t.Fatalf("burst gate never spent a token over the horizon: %v", leases)
	}
}

// TestCoordinatorRejectsShardCountMismatch: a URL list that cannot match
// the joint world's routing partition fails New before any shard is
// contacted (the URLs here are dead on purpose).
func TestCoordinatorRejectsShardCountMismatch(t *testing.T) {
	_, sc := testWorld(t)
	_, err := New(context.Background(), Config{Scenario: sc, ShardURLs: []string{
		"http://127.0.0.1:1", "http://127.0.0.1:2", "http://127.0.0.1:3",
	}})
	if err == nil || !strings.Contains(err.Error(), "market regions") {
		t.Fatalf("3 URLs for a 2-region world: got %v, want a partition-count error", err)
	}
}

// TestCoordinatorDegradedReads: a shard dying mid-replay turns fan-outs
// into tagged ErrShardUnreachable failures, while status reads fall back
// to the last merged snapshot and say so via X-Coord-Degraded.
func TestCoordinatorDegradedReads(t *testing.T) {
	sys, sc := testWorld(t)
	p, err := sim.PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := sc.Shard(p)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*httptest.Server, len(subs))
	urls := make([]string, len(subs))
	for i, sub := range subs {
		eng, err := sim.NewEngine(sub)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = httptest.NewServer(srv.Handler())
		t.Cleanup(servers[i].Close)
		urls[i] = servers[i].URL
	}
	co, coordTS := newCoordinator(t, sc, urls)

	const hours = 24
	feedWorld(t, sys, sc, coordTS.URL, hours)
	get(t, coordTS.URL+"/v1/status?refresh=1", http.StatusOK) // cache a merged snapshot

	servers[0].Close() // shard 0 dies mid-replay

	// Ingest fan-out reports the unreachable shard as such.
	if _, err := co.refresh(context.Background()); !errors.Is(err, ErrShardUnreachable) {
		t.Fatalf("refresh with a dead shard: got %v, want ErrShardUnreachable", err)
	}

	// A forced refresh degrades to the cached snapshot instead of failing.
	resp, err := http.Get(coordTS.URL + "/v1/status?refresh=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded status: got %d: %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Coord-Degraded"); !strings.Contains(h, "unreachable") {
		t.Fatalf("degraded status header %q does not name the unreachable shard", h)
	}
	var status struct {
		Steps int `json:"steps"`
	}
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if status.Steps != hours {
		t.Fatalf("degraded status serves step %d, want the last merged %d", status.Steps, hours)
	}

	// The cached (unforced) read stays clean — no degradation marker.
	resp, err = http.Get(coordTS.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Coord-Degraded") != "" {
		t.Fatalf("cached status: code %d, degraded %q", resp.StatusCode, resp.Header.Get("X-Coord-Degraded"))
	}

	// Demand fan-out fails loudly, naming the shard.
	at := sc.Start.Add(hours * sc.Step)
	var row []float64
	row = sc.Demand.Rates(at, row)
	body, _ = json.Marshal(map[string]any{"at": at, "rates": row})
	out := postBody(t, coordTS.URL+"/v1/demand", "application/json", body, http.StatusBadGateway)
	if !strings.Contains(string(out), "unreachable") {
		t.Fatalf("demand fan-out error does not tag the unreachable shard: %s", out)
	}
}

// TestCoordinatorSpill: a demand row that saturates one region has its
// overflow rerouted to the open sibling — totals preserved, sender capped
// at capacity — and a tight spill radius keeps the overflow at home.
func TestCoordinatorSpill(t *testing.T) {
	_, sc := testWorld(t)
	urls := newShards(t, sc)
	co, err := New(context.Background(), Config{Scenario: sc, ShardURLs: urls, Spill: true})
	if err != nil {
		t.Fatal(err)
	}

	makeRow := func() ([]float64, float64) {
		row := make([]float64, len(sc.Fleet.States))
		want := 1.5 * co.shardCap[0]
		per := want / float64(len(co.shards[0].states))
		for _, s := range co.shards[0].states {
			row[s] = per
		}
		return row, want
	}
	sum := func(row []float64, states []int) float64 {
		var v float64
		for _, s := range states {
			v += row[s]
		}
		return v
	}

	row, total := makeRow()
	moved := co.spillRow(row)
	// The rerouted volume is the sender's overflow, clipped to the
	// receiver's open capacity.
	if want := math.Min(0.5*co.shardCap[0], co.shardCap[1]); math.Abs(moved-want) > 1e-6*want {
		t.Fatalf("moved %g, want %g", moved, want)
	}
	if got, want := sum(row, co.shards[0].states), total-moved; math.Abs(got-want) > 1e-6*want {
		t.Fatalf("sender kept %g, want %g", got, want)
	}
	if got := sum(row, co.shards[1].states); math.Abs(got-moved) > 1e-6*moved {
		t.Fatalf("receiver got %g, want the moved %g", got, moved)
	}
	fleetSum := sum(row, co.shards[0].states) + sum(row, co.shards[1].states)
	if math.Abs(fleetSum-total) > 1e-6*total {
		t.Fatalf("spill changed the fleet total: %g vs %g", fleetSum, total)
	}

	// The regions sit ~4000 km apart; a 100 km radius makes the sibling
	// unreachable, so the overflow stays (and overloads) at home.
	near, err := New(context.Background(), Config{Scenario: sc, ShardURLs: urls, Spill: true, SpillRadiusKm: 100})
	if err != nil {
		t.Fatal(err)
	}
	row, _ = makeRow()
	if moved := near.spillRow(row); moved != 0 {
		t.Fatalf("100 km spill radius still moved %g across ~4000 km", moved)
	}
}

// TestCoordinatorDiscoveryRejectsBadTopologies: shards that overlap, miss
// clusters, or disagree on the policy must fail New loudly.
func TestCoordinatorDiscoveryRejectsBadTopologies(t *testing.T) {
	_, sc := testWorld(t)
	urls := newShards(t, sc)

	ctx := context.Background()
	if _, err := New(ctx, Config{Scenario: sc}); err == nil {
		t.Error("no shard URLs accepted")
	}
	if _, err := New(ctx, Config{Scenario: sc, ShardURLs: urls[:1]}); err == nil {
		t.Error("incomplete shard cover accepted")
	}
	if _, err := New(ctx, Config{Scenario: sc, ShardURLs: []string{urls[0], urls[0]}}); err == nil {
		t.Error("duplicated shard accepted")
	}

	// A shard serving the whole world overlaps any real shard.
	wholeEng, err := sim.NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	wholeSrv, err := server.New(server.Config{Engine: wholeEng})
	if err != nil {
		t.Fatal(err)
	}
	whole := httptest.NewServer(wholeSrv.Handler())
	defer whole.Close()
	if _, err := New(ctx, Config{Scenario: sc, ShardURLs: []string{whole.URL, urls[1]}}); err == nil {
		t.Error("overlapping shards accepted")
	}

	// Policy mismatch: shards run a different optimizer reach.
	_, sc600 := testWorld(t)
	opt600, err := routing.NewPriceOptimizer(sc600.Fleet, 600, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sc600.Policy = opt600
	urls600 := newShards(t, sc600)
	if _, err := New(ctx, Config{Scenario: sc, ShardURLs: urls600}); err == nil {
		t.Error("shards with a different policy accepted")
	}
}
