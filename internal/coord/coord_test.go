package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/routing"
	"powerroute/internal/server"
	"powerroute/internal/sim"
)

// testWorld builds the small deterministic world (1-month market, 7-day
// trace) with an optimizer reach of 1000 km, which splits the fleet into
// two market regions (California vs everything east).
func testWorld(t testing.TB) (*core.System, sim.Scenario) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{Seed: 42, MarketMonths: 1, TraceDays: 7})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := routing.NewPriceOptimizer(sys.Fleet, 1000, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	return sys, sim.Scenario{
		Fleet:         sys.Fleet,
		Policy:        opt,
		Energy:        energy.OptimisticFuture,
		Market:        sys.Market,
		Demand:        sys.LongRun,
		Start:         sys.Market.Start,
		Steps:         sys.Market.Hours,
		Step:          time.Hour,
		ReactionDelay: sim.DefaultReactionDelay,
	}
}

// newShards splits sc into its routing components and serves each from a
// real server.Server behind httptest.
func newShards(t testing.TB, sc sim.Scenario) []string {
	t.Helper()
	p, err := sim.PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := sc.Shard(p)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, len(subs))
	for i, sub := range subs {
		eng, err := sim.NewEngine(sub)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

func newCoordinator(t testing.TB, sc sim.Scenario, urls []string) (*Coordinator, *httptest.Server) {
	t.Helper()
	co, err := New(context.Background(), Config{Scenario: sc, ShardURLs: urls})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(ts.Close)
	return co, ts
}

func postBody(t *testing.T, url, contentType string, body []byte, wantCode int) []byte {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: got %d want %d: %s", url, resp.StatusCode, wantCode, out)
	}
	return out
}

func get(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: got %d want %d: %s", url, resp.StatusCode, wantCode, out)
	}
	return out
}

// feedWorld streams `hours` of generated prices and long-run demand into
// baseURL as binary batches, exactly as the replay load generator does.
func feedWorld(t *testing.T, sys *core.System, sc sim.Scenario, baseURL string, hours int) {
	t.Helper()
	hubs := sys.Market.Hubs()
	hubIDs := make([]string, len(hubs))
	for i, h := range hubs {
		hubIDs[i] = h.ID
	}
	var pb bytes.Buffer
	if err := server.WriteBatchHeader(&pb, "prices", sc.Start, sc.Step, hours, len(hubIDs), hubIDs); err != nil {
		t.Fatal(err)
	}
	row := make([]float64, len(hubIDs))
	for i := 0; i < hours; i++ {
		at := sc.Start.Add(time.Duration(i) * sc.Step)
		for j, h := range hubs {
			rt, err := sys.Market.RT(h.ID)
			if err != nil {
				t.Fatal(err)
			}
			v, err := rt.At(at)
			if err != nil {
				t.Fatal(err)
			}
			row[j] = v
		}
		pb.Write(server.AppendRow(nil, row))
	}
	postBody(t, baseURL+"/v1/prices", server.ContentTypePricesBatch, pb.Bytes(), http.StatusOK)

	ns := len(sc.Fleet.States)
	var db bytes.Buffer
	if err := server.WriteBatchHeader(&db, "demand", sc.Start, sc.Step, hours, ns, nil); err != nil {
		t.Fatal(err)
	}
	var demand []float64
	for i := 0; i < hours; i++ {
		demand = sc.Demand.Rates(sc.Start.Add(time.Duration(i)*sc.Step), demand)
		db.Write(server.AppendRow(nil, demand))
	}
	postBody(t, baseURL+"/v1/demand", server.ContentTypeDemandBatch, db.Bytes(), http.StatusOK)
}

// TestCoordinatorMatchesSingleInstance feeds the same price and demand
// batches through the coordinator (fanning out to two real shard daemons)
// and through one single-instance daemon serving the unsplit world, then
// requires the fleet-wide /v1/status to match bit for bit (modulo the
// price_feed_entries bookkeeping, which is per-process).
func TestCoordinatorMatchesSingleInstance(t *testing.T) {
	sys, sc := testWorld(t)
	const hours = 14 * 24

	// Single instance.
	singleEng, err := sim.NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	singleSrv, err := server.New(server.Config{Engine: singleEng})
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(singleSrv.Handler())
	defer single.Close()
	feedWorld(t, sys, sc, single.URL, hours)

	// Coordinator over two shards.
	_, scForShards := testWorld(t)
	urls := newShards(t, scForShards)
	if len(urls) != 2 {
		t.Fatalf("expected 2 shards, got %d", len(urls))
	}
	_, coordTS := newCoordinator(t, sc, urls)
	feedWorld(t, sys, sc, coordTS.URL, hours)

	normalize := func(raw []byte) map[string]any {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "price_feed_entries")
		return m
	}
	want := normalize(get(t, single.URL+"/v1/status", http.StatusOK))
	got := normalize(get(t, coordTS.URL+"/v1/status?refresh=1", http.StatusOK))
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("coordinator status differs from single instance:\ncoord  %s\nsingle %s", gotJSON, wantJSON)
	}

	// The merged checkpoint restores into the joint world at the same
	// cursor.
	raw := get(t, coordTS.URL+"/v1/checkpoint", http.StatusOK)
	cp, err := sim.DecodeCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if cp.StepsRun != hours {
		t.Fatalf("merged checkpoint at step %d, want %d", cp.StepsRun, hours)
	}
	if _, err := sim.Restore(sc, cp); err != nil {
		t.Fatalf("merged checkpoint does not restore into the joint world: %v", err)
	}

	// Metrics render from the merged snapshot.
	metrics := string(get(t, coordTS.URL+"/metrics", http.StatusOK))
	if !bytes.Contains([]byte(metrics), []byte("powerrouted_steps_total")) {
		t.Fatalf("metrics missing steps counter:\n%s", metrics)
	}

	// JSON single-step demand also fans out (after one more price post the
	// shards can cover the next hour).
	at := sc.Start.Add(time.Duration(hours) * sc.Step)
	var demand []float64
	demand = sc.Demand.Rates(at, demand)
	post := map[string]any{"at": at, "rates": demand}
	body, _ := json.Marshal(post)
	postBody(t, coordTS.URL+"/v1/demand", "application/json", body, http.StatusOK)
}

// TestCoordinatorDiscoveryRejectsBadTopologies: shards that overlap, miss
// clusters, or disagree on the policy must fail New loudly.
func TestCoordinatorDiscoveryRejectsBadTopologies(t *testing.T) {
	_, sc := testWorld(t)
	urls := newShards(t, sc)

	ctx := context.Background()
	if _, err := New(ctx, Config{Scenario: sc}); err == nil {
		t.Error("no shard URLs accepted")
	}
	if _, err := New(ctx, Config{Scenario: sc, ShardURLs: urls[:1]}); err == nil {
		t.Error("incomplete shard cover accepted")
	}
	if _, err := New(ctx, Config{Scenario: sc, ShardURLs: []string{urls[0], urls[0]}}); err == nil {
		t.Error("duplicated shard accepted")
	}

	// A shard serving the whole world overlaps any real shard.
	wholeEng, err := sim.NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	wholeSrv, err := server.New(server.Config{Engine: wholeEng})
	if err != nil {
		t.Fatal(err)
	}
	whole := httptest.NewServer(wholeSrv.Handler())
	defer whole.Close()
	if _, err := New(ctx, Config{Scenario: sc, ShardURLs: []string{whole.URL, urls[1]}}); err == nil {
		t.Error("overlapping shards accepted")
	}

	// Policy mismatch: shards run a different optimizer reach.
	_, sc600 := testWorld(t)
	opt600, err := routing.NewPriceOptimizer(sc600.Fleet, 600, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sc600.Policy = opt600
	urls600 := newShards(t, sc600)
	if _, err := New(ctx, Config{Scenario: sc, ShardURLs: urls600}); err == nil {
		t.Error("shards with a different policy accepted")
	}
}
