package core

import "sync"

// flightGroup is a keyed single-flight cache: the first caller for a key
// computes the value while concurrent callers for the same key block and
// share the outcome. Completed entries are cached forever — a System's
// worlds are deterministic, so a computed value never invalidates. The zero
// value is ready to use.
type flightGroup[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*flightEntry[V]
}

type flightEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the cached value for key, computing it with fn exactly once
// even under concurrent callers.
func (g *flightGroup[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.entries == nil {
		g.entries = make(map[K]*flightEntry[V])
	}
	e, ok := g.entries[key]
	if !ok {
		e = &flightEntry[V]{}
		g.entries[key] = e
	}
	g.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}
