// Package core is the library's facade: it assembles the substrates — the
// wholesale market simulator, the synthetic CDN workload, the nine-cluster
// fleet, the §5.1 energy model, and the routing policies — into the paper's
// simulated world, and exposes the experiments as single calls.
//
// A System owns one deterministic world (fixed seeds). Run executes a
// cost experiment: an Akamai-like baseline plus a price-conscious optimizer
// under the configured constraints, returning both results and the savings.
// Sweeps reuse cached baselines, so calling Run in a loop over distance
// thresholds or energy models (Figs 15–20) stays fast, and a System is safe
// for concurrent use.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/energy"
	"powerroute/internal/market"
	"powerroute/internal/routing"
	"powerroute/internal/sim"
	"powerroute/internal/traffic"
	"powerroute/internal/units"
)

// Horizon selects the simulated period.
type Horizon int

const (
	// Trace24Day simulates the 24-day trace window at 5-minute steps
	// (§6.2, Figs 15–17).
	Trace24Day Horizon = iota
	// LongRun39Months simulates the full 39-month price history at hourly
	// steps driving the synthetic hour-of-week workload (§6.3, Figs 18–20).
	LongRun39Months
)

// String names the horizon.
func (h Horizon) String() string {
	switch h {
	case Trace24Day:
		return "24-day trace"
	case LongRun39Months:
		return "39-month synthetic"
	default:
		return fmt.Sprintf("Horizon(%d)", int(h))
	}
}

// Options configures system assembly.
type Options struct {
	// Seed drives all synthetic data. Systems with equal options are
	// identical.
	Seed int64
	// TargetUtilization sizes cluster capacity against baseline peaks
	// (default 0.7).
	TargetUtilization float64
	// MarketMonths overrides the price history length (default 39).
	MarketMonths int
	// TraceDays overrides the traffic trace length (default 24).
	TraceDays int
}

// System is one assembled simulated world.
type System struct {
	Market  *market.Dataset
	Trace   *traffic.Trace
	LongRun *traffic.LongRun
	Fleet   *cluster.Fleet

	traceDemand *sim.TraceDemand

	baselines flightGroup[baselineKey, baselineVal]
	statics   flightGroup[baselineKey, *StaticChoice]
}

type baselineKey struct {
	horizon Horizon
	energy  energy.Model
}

type baselineVal struct {
	caps []float64
	res  *sim.Result
}

// NewSystem assembles a world from the given options.
func NewSystem(opts Options) (*System, error) {
	if opts.TargetUtilization == 0 {
		opts.TargetUtilization = 0.7
	}
	mkt, err := market.Generate(market.Config{Seed: opts.Seed, Months: opts.MarketMonths})
	if err != nil {
		return nil, fmt.Errorf("core: market: %w", err)
	}
	tr, err := traffic.Generate(traffic.Config{Seed: opts.Seed + 1, Days: opts.TraceDays})
	if err != nil {
		return nil, fmt.Errorf("core: traffic: %w", err)
	}
	peaks := make([]float64, len(tr.States))
	for i, sd := range tr.States {
		for _, v := range sd.Rate {
			if v > peaks[i] {
				peaks[i] = v
			}
		}
	}
	fleet, err := cluster.DeriveFleet(peaks, opts.TargetUtilization)
	if err != nil {
		return nil, fmt.Errorf("core: fleet: %w", err)
	}
	demand, err := sim.FromTrace(tr)
	if err != nil {
		return nil, fmt.Errorf("core: trace demand: %w", err)
	}
	return &System{
		Market:      mkt,
		Trace:       tr,
		LongRun:     tr.LongRun(),
		Fleet:       fleet,
		traceDemand: demand,
	}, nil
}

// MustNewSystem is NewSystem for known-good options; it panics on error.
func MustNewSystem(opts Options) *System {
	s, err := NewSystem(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// scenario builds the base scenario for a horizon (policy left unset).
func (s *System) scenario(h Horizon, em energy.Model, delay time.Duration) (sim.Scenario, error) {
	sc := sim.Scenario{
		Fleet:         s.Fleet,
		Energy:        em,
		Market:        s.Market,
		ReactionDelay: delay,
	}
	switch h {
	case Trace24Day:
		sc.Demand = s.traceDemand
		sc.Start = s.Trace.Start
		sc.Steps = s.Trace.Samples
		sc.Step = 5 * time.Minute
	case LongRun39Months:
		sc.Demand = s.LongRun
		sc.Start = s.Market.Start
		sc.Steps = s.Market.Hours
		sc.Step = time.Hour
	default:
		return sim.Scenario{}, fmt.Errorf("core: unknown horizon %v", h)
	}
	return sc, nil
}

// Baseline returns the cached Akamai-like baseline result and the derived
// 95/5 caps for a horizon and energy model. Concurrent callers for the same
// key share one computation (single flight), so parallel sweeps dedupe
// baseline runs instead of recomputing them.
func (s *System) Baseline(h Horizon, em energy.Model) ([]float64, *sim.Result, error) {
	v, err := s.baselines.Do(baselineKey{horizon: h, energy: em}, func() (baselineVal, error) {
		sc, err := s.scenario(h, em, sim.DefaultReactionDelay)
		if err != nil {
			return baselineVal{}, err
		}
		caps, res, err := sim.DeriveCaps(sc)
		return baselineVal{caps: caps, res: res}, err
	})
	return v.caps, v.res, err
}

// RunConfig describes one optimizer experiment.
type RunConfig struct {
	Horizon Horizon
	Energy  energy.Model
	// DistanceThresholdKm bounds client-to-cluster distance (§6.1). 0
	// degenerates to nearest-cluster routing.
	DistanceThresholdKm float64
	// PriceThresholdDollars is the differential dead-band; defaults to the
	// paper's $5/MWh when 0 and is forced to 0 when Negative is set.
	PriceThresholdDollars float64
	// NoPriceThresholdDefault uses PriceThresholdDollars as-is even when 0
	// (for the ablation that removes the dead-band).
	NoPriceThresholdDefault bool
	// Follow95 enforces the baseline's per-cluster 95th percentiles.
	Follow95 bool
	// ReactionDelay lags decision prices (default 1 hour).
	ReactionDelay time.Duration
	// ReactImmediately forces a zero reaction delay (ReactionDelay of 0
	// otherwise means "use the default").
	ReactImmediately bool
}

func (c RunConfig) delay() time.Duration {
	if c.ReactImmediately {
		return 0
	}
	if c.ReactionDelay == 0 {
		return sim.DefaultReactionDelay
	}
	return c.ReactionDelay
}

func (c RunConfig) priceThreshold() float64 {
	if c.PriceThresholdDollars == 0 && !c.NoPriceThresholdDefault {
		return routing.DefaultPriceThreshold
	}
	return c.PriceThresholdDollars
}

// Outcome is the result of a Run: the optimizer against its baseline.
type Outcome struct {
	Config    RunConfig
	Baseline  *sim.Result
	Optimized *sim.Result
	Caps      []float64

	// Savings is 1 − optimized/baseline cost (the paper's headline
	// percentages).
	Savings float64
	// NormalizedCost is optimized/baseline (Figs 16/18's y-axis).
	NormalizedCost float64
}

// Run executes a price-optimizer experiment against the cached baseline.
func (s *System) Run(cfg RunConfig) (*Outcome, error) {
	caps, base, err := s.Baseline(cfg.Horizon, cfg.Energy)
	if err != nil {
		return nil, err
	}
	sc, err := s.scenario(cfg.Horizon, cfg.Energy, cfg.delay())
	if err != nil {
		return nil, err
	}
	opt, err := routing.NewPriceOptimizer(s.Fleet, cfg.DistanceThresholdKm, cfg.priceThreshold())
	if err != nil {
		return nil, err
	}
	sc.Policy = opt
	if cfg.Follow95 {
		sc.SoftCaps = caps
	}
	res, err := sim.Run(sc)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Config:         cfg,
		Baseline:       base,
		Optimized:      res,
		Caps:           caps,
		Savings:        res.SavingsVersus(base),
		NormalizedCost: res.NormalizedCost(base),
	}, nil
}

// StaticChoice reports the best single-site deployment (§6.3's static
// comparison).
type StaticChoice struct {
	HubID          string
	Result         *sim.Result
	NormalizedCost float64 // against the Akamai-like baseline
}

// StaticCheapest evaluates placing the entire fleet at each hourly-market
// hub and returns the cheapest choice ("moving all the servers to the
// region with the lowest average price", §6.3). The 29-hub sweep is
// expensive, so results are cached per (horizon, energy) with the same
// single-flight semantics as Baseline; callers must treat the returned
// choice as read-only.
func (s *System) StaticCheapest(h Horizon, em energy.Model) (*StaticChoice, error) {
	return s.statics.Do(baselineKey{horizon: h, energy: em}, func() (*StaticChoice, error) {
		return s.staticCheapest(h, em)
	})
}

func (s *System) staticCheapest(h Horizon, em energy.Model) (*StaticChoice, error) {
	_, base, err := s.Baseline(h, em)
	if err != nil {
		return nil, err
	}
	hubs := market.Hubs()
	results := make([]*sim.Result, len(hubs))
	errs := make([]error, len(hubs))
	var wg sync.WaitGroup
	for i := range hubs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.runStatic(h, em, hubs[i])
		}(i)
	}
	wg.Wait()
	var best *StaticChoice
	for i, res := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if best == nil || res.TotalCost < best.Result.TotalCost {
			best = &StaticChoice{HubID: hubs[i].ID, Result: res}
		}
	}
	if best == nil {
		return nil, errors.New("core: no hubs evaluated")
	}
	best.NormalizedCost = best.Result.NormalizedCost(base)
	return best, nil
}

// runStatic simulates the whole fleet consolidated at one hub.
func (s *System) runStatic(h Horizon, em energy.Model, hub market.Hub) (*sim.Result, error) {
	one := []cluster.Cluster{{
		Code:     "ALL",
		HubID:    hub.ID,
		Location: hub.Location,
		Zone:     hub.Zone,
		Servers:  s.Fleet.TotalServers(),
		Capacity: units.HitRate(float64(s.Fleet.TotalServers()) * cluster.HitsPerServer),
	}}
	fleet, err := cluster.NewFleet(one)
	if err != nil {
		return nil, err
	}
	sc, err := s.scenario(h, em, sim.DefaultReactionDelay)
	if err != nil {
		return nil, err
	}
	sc.Fleet = fleet
	pol, err := routing.NewAllToOne(fleet, 0)
	if err != nil {
		return nil, err
	}
	sc.Policy = pol
	return sim.Run(sc)
}
