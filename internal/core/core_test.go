package core

import (
	"math"
	"sync"
	"testing"

	"powerroute/internal/energy"
)

// testSystem is a reduced world (8-day trace, 3-month market) shared by the
// package's tests; the full-size world is exercised by the experiments
// package and benchmarks.
var testSystem = sync.OnceValue(func() *System {
	return MustNewSystem(Options{Seed: 3, MarketMonths: 3, TraceDays: 8})
})

// fullMarketSystem has a market long enough to cover the default trace
// window (the 24-day trace starts December 2008, so the market must reach
// it).
var fullMarketSystem = sync.OnceValue(func() *System {
	return MustNewSystem(Options{Seed: 3, TraceDays: 8})
})

func TestNewSystem(t *testing.T) {
	s := testSystem()
	if len(s.Fleet.Clusters) != 9 {
		t.Errorf("fleet has %d clusters", len(s.Fleet.Clusters))
	}
	if s.Market.Hours != (31+28+31)*24 {
		t.Errorf("market hours = %d", s.Market.Hours)
	}
	if s.Trace.Samples != 8*288 {
		t.Errorf("trace samples = %d", s.Trace.Samples)
	}
	if s.LongRun == nil {
		t.Error("LongRun missing")
	}
}

func TestNewSystemErrors(t *testing.T) {
	if _, err := NewSystem(Options{TargetUtilization: 2}); err == nil {
		t.Error("bad utilization should fail")
	}
	if _, err := NewSystem(Options{MarketMonths: -1}); err == nil {
		t.Error("bad months should fail")
	}
	if _, err := NewSystem(Options{TraceDays: -1}); err == nil {
		t.Error("bad days should fail")
	}
}

func TestMustNewSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewSystem should panic")
		}
	}()
	MustNewSystem(Options{MarketMonths: -1})
}

func TestHorizonString(t *testing.T) {
	if Trace24Day.String() == "" || LongRun39Months.String() == "" {
		t.Error("horizon names empty")
	}
	if Horizon(9).String() != "Horizon(9)" {
		t.Error("unknown horizon formatting")
	}
}

func TestBaselineCaching(t *testing.T) {
	s := testSystem()
	caps1, res1, err := s.Baseline(LongRun39Months, energy.OptimisticFuture)
	if err != nil {
		t.Fatal(err)
	}
	caps2, res2, err := s.Baseline(LongRun39Months, energy.OptimisticFuture)
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Error("baseline not cached (different pointers)")
	}
	if &caps1[0] != &caps2[0] {
		t.Error("caps not cached")
	}
	// A different energy model is a different cache entry with different
	// cost but identical caps (caps depend only on traffic).
	_, res3, err := s.Baseline(LongRun39Months, energy.CuttingEdge)
	if err != nil {
		t.Fatal(err)
	}
	if res3 == res1 {
		t.Error("distinct energy models share a baseline")
	}
	caps3, _, _ := s.Baseline(LongRun39Months, energy.CuttingEdge)
	for c := range caps1 {
		if math.Abs(caps1[c]-caps3[c]) > 1e-9 {
			t.Error("caps differ across energy models; they must not")
		}
	}
}

func TestRunLongRun(t *testing.T) {
	s := testSystem()
	out, err := s.Run(RunConfig{
		Horizon:             LongRun39Months,
		Energy:              energy.OptimisticFuture,
		DistanceThresholdKm: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Savings <= 0 {
		t.Errorf("savings = %v, want > 0", out.Savings)
	}
	if math.Abs(out.Savings+out.NormalizedCost-1) > 1e-9 {
		t.Error("savings and normalized cost inconsistent")
	}
	if out.Baseline == nil || out.Optimized == nil || out.Caps == nil {
		t.Error("incomplete outcome")
	}
}

func TestRunTraceHorizon(t *testing.T) {
	s := fullMarketSystem()
	relaxed, err := s.Run(RunConfig{
		Horizon:             Trace24Day,
		Energy:              energy.OptimisticFuture,
		DistanceThresholdKm: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	follow, err := s.Run(RunConfig{
		Horizon:             Trace24Day,
		Energy:              energy.OptimisticFuture,
		DistanceThresholdKm: 1500,
		Follow95:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if follow.Savings >= relaxed.Savings {
		t.Errorf("follow-95/5 savings %.3f not below relaxed %.3f", follow.Savings, relaxed.Savings)
	}
	if follow.Savings <= 0 {
		t.Errorf("follow-95/5 savings %.3f, want > 0", follow.Savings)
	}
}

func TestRunConfigDefaults(t *testing.T) {
	cfg := RunConfig{}
	if cfg.priceThreshold() != 5 {
		t.Errorf("default price threshold = %v, want 5", cfg.priceThreshold())
	}
	cfg.NoPriceThresholdDefault = true
	if cfg.priceThreshold() != 0 {
		t.Errorf("ablated price threshold = %v, want 0", cfg.priceThreshold())
	}
	cfg = RunConfig{PriceThresholdDollars: 20}
	if cfg.priceThreshold() != 20 {
		t.Error("explicit price threshold ignored")
	}
	if (RunConfig{}).delay().Hours() != 1 {
		t.Error("default delay should be 1 hour")
	}
	if (RunConfig{ReactImmediately: true}).delay() != 0 {
		t.Error("immediate reaction ignored")
	}
}

func TestStaticCheapest(t *testing.T) {
	s := testSystem()
	choice, err := s.StaticCheapest(LongRun39Months, energy.OptimisticFuture)
	if err != nil {
		t.Fatal(err)
	}
	if choice.HubID == "" || choice.Result == nil {
		t.Fatal("empty static choice")
	}
	// The cheapest static site beats the proximity baseline on cost when
	// clusters are fully elastic (it pays the lowest prices all the time).
	if choice.NormalizedCost >= 1 {
		t.Errorf("static normalized cost %.3f, want < 1", choice.NormalizedCost)
	}
	// The winning hub should be a cheap one (MISO/PJM-west territory in
	// our calibration, mirroring the paper's Midwest pricing).
	cheap := map[string]bool{"IL": true, "CHI": true, "AMIL": true, "MN": true, "WI": true, "AEP": true, "CIN": true}
	if !cheap[choice.HubID] {
		t.Errorf("static winner %s is not one of the cheap hubs", choice.HubID)
	}
}

func TestConcurrentRuns(t *testing.T) {
	s := testSystem()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Run(RunConfig{
				Horizon:             LongRun39Months,
				Energy:              energy.OptimisticFuture,
				DistanceThresholdKm: float64(200 * (i + 1)),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("run %d: %v", i, err)
		}
	}
}

func TestSystemDeterminism(t *testing.T) {
	a := MustNewSystem(Options{Seed: 9, MarketMonths: 2, TraceDays: 4})
	b := MustNewSystem(Options{Seed: 9, MarketMonths: 2, TraceDays: 4})
	oa, err := a.Run(RunConfig{Horizon: LongRun39Months, Energy: energy.OptimisticFuture, DistanceThresholdKm: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ob, err := b.Run(RunConfig{Horizon: LongRun39Months, Energy: energy.OptimisticFuture, DistanceThresholdKm: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if oa.Savings != ob.Savings {
		t.Errorf("same seed, different savings: %v vs %v", oa.Savings, ob.Savings)
	}
}
