package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"powerroute/internal/cluster"
	"powerroute/internal/energy"
	"powerroute/internal/market"
	"powerroute/internal/routing"
	"powerroute/internal/sim"
	"powerroute/internal/units"
)

// This file builds the burst-exact world: a clique-region variant of the
// synthetic fleet on which sharded replays stay bit-identical to the
// joint engine even while 95/5 soft-cap bursts genuinely fire.
//
// On the paper's derived fleet that exactness is structurally out of
// reach: states' candidate sets are strict subsets of their market
// region, so when a set saturates under tight caps the optimizer's
// outward walk (nearest cluster with room, §6.1) can hop to another
// region that happens to be nearer than the remaining in-region room —
// an assignment no shard can reproduce. The burst world removes the
// loophole by construction:
//
//   - every routing region is a complete clique: a pair of clusters
//     co-located at one market hub's spot (distinct hubs, so in-region
//     price optimization still has choices), the spots far enough apart
//     that no state reaches two of them — a candidate set is always a
//     whole region, so the walk can only leave a region the region is
//     saturated as a whole;
//   - demand is comonotone: per-state rates are a fixed spatial base
//     times one shared time curve, so every region crosses its demand
//     quantiles exactly when the fleet total crosses its own — regional
//     saturation coincides with the fleet-wide burst gate opening;
//   - capacities are sized per region at 1.3x the regional demand peak,
//     so open-gate overflow always absorbs in-region.
//
// Every process serving this world (powerrouted shards, the coordinator,
// tracegen's feed) derives it from the same seed and flags, so fleet,
// soft caps, and demand agree bit for bit across the fleet.

// ParseBurstHubs parses a burst-world topology spec: comma-separated
// regions, each a pair of market hub IDs joined by '+', e.g.
// "NP15+SP15,NYC+DOM". Each pair becomes one clique region co-located at
// the first hub's spot.
func ParseBurstHubs(spec string) ([][2]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("core: empty burst-hubs spec")
	}
	regions := strings.Split(spec, ",")
	if len(regions) < 2 {
		return nil, fmt.Errorf("core: burst-hubs spec %q has one region; sharding needs at least two", spec)
	}
	pairs := make([][2]string, len(regions))
	seen := make(map[string]bool)
	for i, region := range regions {
		ids := strings.Split(region, "+")
		if len(ids) != 2 {
			return nil, fmt.Errorf("core: burst-hubs region %q: want exactly two hub IDs joined by '+'", region)
		}
		for j, id := range ids {
			if id == "" {
				return nil, fmt.Errorf("core: burst-hubs region %q: empty hub ID", region)
			}
			if seen[id] {
				return nil, fmt.Errorf("core: burst-hubs hub %q appears twice", id)
			}
			seen[id] = true
			pairs[i][j] = id
		}
	}
	return pairs, nil
}

// ComonotoneDemand is the burst world's demand source: per-state rates
// are a frozen spatial base times one shared diurnal-plus-weekly curve,
// so every subset of states follows the same time profile. It is a pure
// function of the interval instant — every feeder and every engine
// replaying it computes identical rows.
type ComonotoneDemand struct {
	Start time.Time
	Base  []float64
}

// Rates implements sim.DemandSource.
func (d *ComonotoneDemand) Rates(at time.Time, dst []float64) []float64 {
	if len(dst) != len(d.Base) {
		dst = make([]float64, len(d.Base))
	}
	h := at.Sub(d.Start).Hours()
	g := 1 + 0.5*math.Sin(2*math.Pi*h/24) + 0.3*math.Sin(2*math.Pi*h/(24*7))
	for s, b := range d.Base {
		dst[s] = b * g
	}
	return dst
}

// BurstWorld is the assembled burst-exact world: the clique fleet, its
// comonotone demand, and per-cluster soft caps tight enough that the
// fleet burst gate genuinely fires (~3% of intervals, inside the 95/5
// budget) yet regional saturation only ever coincides with it.
type BurstWorld struct {
	Fleet    *cluster.Fleet
	Demand   *ComonotoneDemand
	SoftCaps []float64
}

// BurstWorld builds the burst-exact world for this system's market and
// workload. thresholdKm must keep the regions disjoint (the pairs are
// placed at their anchor hubs' spots — e.g. 1000 km separates NP15+SP15
// from NYC+DOM).
func (s *System) BurstWorld(pairs [][2]string, thresholdKm, priceThreshold float64) (*BurstWorld, error) {
	if len(pairs) < 2 {
		return nil, fmt.Errorf("core: burst world needs at least two regions, got %d", len(pairs))
	}
	steps := s.Market.Hours
	start := s.Market.Start
	demand := &ComonotoneDemand{Start: start, Base: s.LongRun.Rates(start, nil)}

	build := func(caps []float64) (*cluster.Fleet, error) {
		clusters := make([]cluster.Cluster, 0, 2*len(pairs))
		for i, pair := range pairs {
			anchor, err := market.HubByID(pair[0])
			if err != nil {
				return nil, fmt.Errorf("core: burst-hubs region %d: %w", i, err)
			}
			for j, id := range pair {
				if _, err := market.HubByID(id); err != nil {
					return nil, fmt.Errorf("core: burst-hubs region %d: %w", i, err)
				}
				servers := int(caps[2*i+j]/cluster.HitsPerServer) + 1
				clusters = append(clusters, cluster.Cluster{
					Code:     id,
					HubID:    id,
					Location: anchor.Location,
					Zone:     anchor.Zone,
					Servers:  servers,
					Capacity: units.HitRate(float64(servers) * cluster.HitsPerServer),
				})
			}
		}
		return cluster.NewFleet(clusters)
	}

	// Pass 1: a dummy-capacity fleet discovers the state partition, which
	// sizes the real capacities off each region's demand peak.
	dummy := make([]float64, 2*len(pairs))
	for i := range dummy {
		dummy[i] = 1e9
	}
	probe, err := build(dummy)
	if err != nil {
		return nil, err
	}
	opt, err := routing.NewPriceOptimizer(probe, thresholdKm, priceThreshold)
	if err != nil {
		return nil, fmt.Errorf("core: burst world: %w", err)
	}
	p, err := sim.PartitionByRouting(opt, probe)
	if err != nil {
		return nil, fmt.Errorf("core: burst world: %w", err)
	}
	if p.Shards() != len(pairs) {
		return nil, fmt.Errorf("core: burst-hubs fleet splits into %d market regions at threshold %g km, want %d — the anchors are within reach of each other; spread the pairs or lower the threshold",
			p.Shards(), thresholdKm, len(pairs))
	}

	// Regional demand series over the full horizon: peaks size capacity,
	// the 97th percentile pins the soft-capped room (saturating ~3% of
	// intervals, under the 5% burst budget).
	regTotals := make([][]float64, p.Shards())
	for r := range regTotals {
		regTotals[r] = make([]float64, steps)
	}
	var row []float64
	for i := 0; i < steps; i++ {
		row = demand.Rates(start.Add(time.Duration(i)*time.Hour), row)
		for r, states := range p.States {
			var sum float64
			for _, st := range states {
				sum += row[st]
			}
			regTotals[r][i] = sum
		}
	}

	caps := make([]float64, 2*len(pairs))
	for r := range p.States {
		var peak float64
		for _, v := range regTotals[r] {
			if v > peak {
				peak = v
			}
		}
		if peak <= 0 {
			return nil, fmt.Errorf("core: burst world: region %d (%s+%s) attracts no demand", r, pairs[r][0], pairs[r][1])
		}
		caps[2*r] = 1.3 * peak / 2
		caps[2*r+1] = 1.3 * peak / 2
	}
	fleet, err := build(caps)
	if err != nil {
		return nil, err
	}

	softCaps := make([]float64, len(fleet.Clusters))
	for r := range p.States {
		sorted := append([]float64(nil), regTotals[r]...)
		sort.Float64s(sorted)
		room := sorted[len(sorted)*97/100] / 0.999
		var capacity float64
		for _, c := range []int{2 * r, 2*r + 1} {
			capacity += float64(fleet.Clusters[c].Capacity)
		}
		if !(room > 0 && room < capacity) {
			return nil, fmt.Errorf("core: burst world: region %d room %g vs capacity %g cannot arm the burst gate", r, room, capacity)
		}
		for _, c := range []int{2 * r, 2*r + 1} {
			softCaps[c] = room * float64(fleet.Clusters[c].Capacity) / capacity
		}
	}

	return &BurstWorld{Fleet: fleet, Demand: demand, SoftCaps: softCaps}, nil
}

// BurstScenario assembles the joint hourly scenario over a burst world —
// the exact configuration powerrouted, powerroute-coord, and tracegen
// must share. The burst gate is left for the caller: sim.SelfGate for a
// joint or in-process-parallel engine, a sim.LeaseStore for a shard
// daemon fed by a lease broker.
func (s *System) BurstScenario(bw *BurstWorld, thresholdKm, priceThreshold float64, delay time.Duration) (sim.Scenario, error) {
	opt, err := routing.NewPriceOptimizer(bw.Fleet, thresholdKm, priceThreshold)
	if err != nil {
		return sim.Scenario{}, fmt.Errorf("core: burst scenario: %w", err)
	}
	return sim.Scenario{
		Fleet:         bw.Fleet,
		Policy:        opt,
		Energy:        energy.OptimisticFuture,
		Market:        s.Market,
		Demand:        bw.Demand,
		Start:         s.Market.Start,
		Steps:         s.Market.Hours,
		Step:          time.Hour,
		ReactionDelay: delay,
		SoftCaps:      append([]float64(nil), bw.SoftCaps...),
	}, nil
}
