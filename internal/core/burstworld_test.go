package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"powerroute/internal/routing"
	"powerroute/internal/sim"
)

func TestParseBurstHubs(t *testing.T) {
	pairs, err := ParseBurstHubs("NP15+SP15,NYC+DOM")
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"NP15", "SP15"}, {"NYC", "DOM"}}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	for spec, wantErr := range map[string]string{
		"":                    "empty",
		"NP15+SP15":           "one region",
		"NP15,NYC+DOM":        "two hub IDs",
		"NP15+SP15+ERN,NYC+X": "two hub IDs",
		"NP15+SP15,NP15+DOM":  "twice",
		"NP15+SP15,+DOM":      "empty hub ID",
	} {
		if _, err := ParseBurstHubs(spec); err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("spec %q: error %v, want %q", spec, err, wantErr)
		}
	}
}

// driveBurst advances eng through `steps` intervals exactly like the
// daemon fed by tracegen would: billing prices at the interval instant,
// the decision signal ReactionDelay in the past clamped to the market
// start, demand from the scenario's source.
func driveBurst(t *testing.T, eng *sim.Engine, sc sim.Scenario, steps int) {
	t.Helper()
	prices := eng.PriceSeries()
	nc := len(sc.Fleet.Clusters)
	decision := make([]float64, nc)
	bill := make([]float64, nc)
	var demand []float64
	marketStart := prices[0].Start
	for step := 0; step < steps; step++ {
		at := eng.Next()
		demand = sc.Demand.Rates(at, demand)
		decisionAt := at.Add(-sc.ReactionDelay)
		if decisionAt.Before(marketStart) {
			decisionAt = marketStart
		}
		for c := range prices {
			v, err := prices[c].At(decisionAt)
			if err != nil {
				t.Fatal(err)
			}
			decision[c] = v
			if v, err = prices[c].At(at); err != nil {
				t.Fatal(err)
			}
			bill[c] = v
		}
		if err := eng.Step(at, sim.StepPrices{Decision: decision, Bill: bill}, demand); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestBurstWorldShardExact is the guarantee the burst-exact CI scenario
// rides on: the burst world run jointly under SelfGate equals, bit for
// bit, the same world split into lease-fed shard engines and merged —
// while the gate genuinely fires and burst tokens are spent.
func TestBurstWorldShardExact(t *testing.T) {
	for _, tc := range []struct {
		name        string
		thresholdKm float64
		spec        string
	}{
		{"2-region-1000km", 1000, "NP15+SP15,NYC+DOM"},
		{"3-region-600km", 600, "NP15+SP15,ERN+ERS,NYC+DOM"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys := MustNewSystem(Options{Seed: 42})
			pairs, err := ParseBurstHubs(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			bw, err := sys.BurstWorld(pairs, tc.thresholdKm, routing.DefaultPriceThreshold)
			if err != nil {
				t.Fatal(err)
			}

			jointSc, err := sys.BurstScenario(bw, tc.thresholdKm, routing.DefaultPriceThreshold, sim.DefaultReactionDelay)
			if err != nil {
				t.Fatal(err)
			}
			jointSc.BurstGate = sim.SelfGate{}
			want, err := sim.Run(jointSc)
			if err != nil {
				t.Fatal(err)
			}

			// The joint gate bits every broker must replay to the shards.
			room, err := sim.BurstRoomTotal(bw.Fleet, bw.SoftCaps)
			if err != nil {
				t.Fatal(err)
			}
			shardSc, err := sys.BurstScenario(bw, tc.thresholdKm, routing.DefaultPriceThreshold, sim.DefaultReactionDelay)
			if err != nil {
				t.Fatal(err)
			}
			gates := make([]bool, shardSc.Steps)
			var row []float64
			open := 0
			for i := range gates {
				row = shardSc.Demand.Rates(shardSc.Start.Add(time.Duration(i)*shardSc.Step), row)
				gates[i] = sim.BurstGateOpen(sim.SumDemand(row), room)
				if gates[i] {
					open++
				}
			}
			if open == 0 || open > shardSc.Steps/20 {
				t.Fatalf("gate open on %d of %d steps — outside (0, budget]", open, shardSc.Steps)
			}

			p, err := sim.PartitionByRouting(shardSc.Policy.(routing.Sharder), bw.Fleet)
			if err != nil {
				t.Fatal(err)
			}
			if p.Shards() != len(pairs) {
				t.Fatalf("%d shards, want %d", p.Shards(), len(pairs))
			}
			subs, err := shardSc.Shard(p)
			if err != nil {
				t.Fatal(err)
			}
			parts := make([]*sim.Checkpoint, len(subs))
			for i, sub := range subs {
				store := &sim.LeaseStore{}
				if err := store.Post(0, gates); err != nil {
					t.Fatal(err)
				}
				sub.BurstGate = store
				eng, err := sim.NewEngine(sub)
				if err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
				driveBurst(t, eng, sub, sub.Steps)
				if parts[i], err = eng.Checkpoint(); err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
			}
			merged, err := sim.MergeCheckpoints(parts)
			if err != nil {
				t.Fatal(err)
			}
			var granted, used int
			for _, l := range merged.BurstLeases {
				granted += l.TokensGranted
				used += l.TokensUsed
			}
			if granted == 0 || used == 0 {
				t.Fatalf("burst gate never spent a token (granted %d, used %d)", granted, used)
			}

			restoreSc, err := sys.BurstScenario(bw, tc.thresholdKm, routing.DefaultPriceThreshold, sim.DefaultReactionDelay)
			if err != nil {
				t.Fatal(err)
			}
			restoreSc.BurstGate = sim.SelfGate{}
			joint, err := sim.Restore(restoreSc, merged)
			if err != nil {
				t.Fatal(err)
			}
			got, err := joint.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("merged shard result differs from the joint run:\ngot  %+v\nwant %+v", got, want)
			}
		})
	}
}
