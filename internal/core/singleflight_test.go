package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"powerroute/internal/energy"
)

func TestFlightGroupSingleFlight(t *testing.T) {
	var g flightGroup[int, int]
	var calls atomic.Int32
	var wg sync.WaitGroup
	vals := make([]int, 32)
	for i := 0; i < len(vals); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := g.Do(7, func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("computed %d times, want 1", calls.Load())
	}
	for i, v := range vals {
		if v != 42 {
			t.Errorf("caller %d got %d", i, v)
		}
	}
	// A different key is an independent computation.
	if v, _ := g.Do(8, func() (int, error) { return 13, nil }); v != 13 {
		t.Errorf("key 8 = %d", v)
	}
}

func TestFlightGroupCachesErrors(t *testing.T) {
	var g flightGroup[string, int]
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := g.Do("k", func() (int, error) {
			calls++
			return 0, boom
		})
		if err != boom {
			t.Fatalf("got %v, want %v", err, boom)
		}
	}
	if calls != 1 {
		t.Errorf("failed computation ran %d times, want 1 (deterministic worlds fail deterministically)", calls)
	}
}

// TestConcurrentBaselineSingleFlight hammers one baseline key from many
// goroutines: every caller must observe the same result pointer and the
// derivation must run once.
func TestConcurrentBaselineSingleFlight(t *testing.T) {
	s := MustNewSystem(Options{Seed: 11, MarketMonths: 2, TraceDays: 4})
	const n = 16
	var wg sync.WaitGroup
	ptrs := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, res, err := s.Baseline(LongRun39Months, energy.OptimisticFuture)
			ptrs[i] = res
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ptrs[i] != ptrs[0] {
			t.Fatalf("caller %d observed a different baseline result", i)
		}
	}
}

// TestStaticCheapestCached checks the 29-hub static sweep is computed once
// per (horizon, energy) key.
func TestStaticCheapestCached(t *testing.T) {
	s := testSystem()
	a, err := s.StaticCheapest(LongRun39Months, energy.OptimisticFuture)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.StaticCheapest(LongRun39Months, energy.OptimisticFuture)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("static choice not cached (different pointers)")
	}
	c, err := s.StaticCheapest(LongRun39Months, energy.CuttingEdge)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("distinct energy models share a static choice")
	}
}
